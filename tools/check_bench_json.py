#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts emitted by `lacc_bench --json-dir`.

Used by the perf-smoke CI job: fails (exit 1) on missing, empty,
unparseable, or schema-violating documents so malformed artifacts never
get archived as a "good" perf record. Schema v3 (v2 plus per-run
"status"/"fail_reason", per-config fault-plan fields, and per-stats
fault counters) is documented in docs/BENCHMARKS.md. Runs recorded as
"failed" (watchdog timeout, unrecoverable injected fault) are noted
and skipped: a failed run is a legitimate resilience datum, not a
malformed artifact.
"""

import json
import sys
from pathlib import Path

SCHEMA_VERSION = 3

# Config-only tables legitimately run zero simulations.
NO_SWEEP_EXPERIMENTS = {"table1", "table2"}

TOP_LEVEL_KEYS = {
    "schema_version",
    "experiment",
    "title",
    "description",
    "op_scale",
    "repeat",
    "jobs",
    "wall_seconds",
    "sim_ops",
    "wall_ms",
    "ops_per_sec",
    "figure",
    "runs",
}

# Optional "profile" object of a --profile run (sim/profiler.hh).
PROFILE_KEYS = {"total_ns", "buckets"}
PROFILE_BUCKETS = {"workload", "cache", "protocol", "network", "dram"}
PROFILE_BUCKET_KEYS = {"ns", "calls", "share"}

RUN_KEYS = {
    "label",
    "bench",
    "wall_seconds",
    "sim_ops",
    "wall_ms",
    "ops_per_sec",
    "status",
    "config",
    "result",
}

CONFIG_KEYS = {
    "num_cores",
    "pct",
    "classifier",
    "directory",
    "network",
    "seed",
    "faults",
    "fault_rate",
    "fault_seed",
}

RESULT_KEYS = {
    "completion_time",
    "energy_total",
    "functional_errors",
    "sim_ops",
    "stats",
}

STATS_KEYS = {
    "cores",
    "completion_time",
    "latency",
    "energy",
    "misses",
    "l1d",
    "l2",
    "network",
    "protocol",
    "eviction_util",
    "invalidation_util",
    "faults",
}


def fail(path, message):
    print(f"FAIL {path}: {message}")
    return False


def check_document(path):
    text = path.read_text()
    if not text.strip():
        return fail(path, "empty file")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        return fail(path, f"unparseable JSON: {e}")
    if not isinstance(doc, dict):
        return fail(path, "top level is not an object")

    missing = TOP_LEVEL_KEYS - doc.keys()
    if missing:
        return fail(path, f"missing top-level keys: {sorted(missing)}")
    if doc["schema_version"] != SCHEMA_VERSION:
        return fail(
            path,
            f"schema_version {doc['schema_version']} != {SCHEMA_VERSION}",
        )

    name = doc["experiment"]
    if path.name != f"BENCH_{name}.json":
        return fail(path, f"experiment '{name}' mismatches filename")
    if not isinstance(doc["figure"], dict) or (
        not doc["figure"] and name not in NO_SWEEP_EXPERIMENTS
    ):
        return fail(path, "figure payload empty")

    runs = doc["runs"]
    if not isinstance(runs, list):
        return fail(path, "runs is not an array")
    if len(runs) != doc["jobs"]:
        return fail(path, f"jobs={doc['jobs']} but {len(runs)} runs")
    if not runs and name not in NO_SWEEP_EXPERIMENTS:
        return fail(path, "sweep experiment recorded zero runs")

    if not (isinstance(doc["op_scale"], (int, float)) and doc["op_scale"] > 0):
        return fail(path, f"bad op_scale {doc['op_scale']!r}")
    if not (isinstance(doc["repeat"], int) and doc["repeat"] >= 1):
        return fail(path, f"bad repeat {doc['repeat']!r}")
    ok_runs = [r for r in runs if r.get("status") == "ok"]
    if ok_runs and name not in NO_SWEEP_EXPERIMENTS:
        if not (isinstance(doc["sim_ops"], int) and doc["sim_ops"] > 0):
            return fail(path, f"bad sim_ops {doc['sim_ops']!r}")
        if not (
            isinstance(doc["ops_per_sec"], (int, float))
            and doc["ops_per_sec"] > 0
        ):
            return fail(path, f"bad ops_per_sec {doc['ops_per_sec']!r}")

    profile = doc.get("profile")
    if profile is not None:
        missing = PROFILE_KEYS - profile.keys()
        if missing:
            return fail(path, f"profile missing keys: {sorted(missing)}")
        buckets = profile["buckets"]
        if set(buckets) != PROFILE_BUCKETS:
            return fail(
                path, f"profile buckets {sorted(buckets)} !="
                f" {sorted(PROFILE_BUCKETS)}"
            )
        for bucket, payload in buckets.items():
            missing = PROFILE_BUCKET_KEYS - payload.keys()
            if missing:
                return fail(
                    path,
                    f"profile.buckets.{bucket} missing keys:"
                    f" {sorted(missing)}",
                )

    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        missing = RUN_KEYS - run.keys()
        if missing:
            return fail(path, f"{where} missing keys: {sorted(missing)}")
        missing = CONFIG_KEYS - run["config"].keys()
        if missing:
            return fail(
                path, f"{where}.config missing keys: {sorted(missing)}"
            )
        if run["status"] == "failed":
            reason = run.get("fail_reason", "<missing fail_reason>")
            print(f"note {path}: {where} failed ({reason}); skipped")
            continue
        if run["status"] != "ok":
            return fail(path, f"{where} has bad status {run['status']!r}")
        missing = RESULT_KEYS - run["result"].keys()
        if missing:
            return fail(
                path, f"{where}.result missing keys: {sorted(missing)}"
            )
        missing = STATS_KEYS - run["result"]["stats"].keys()
        if missing:
            return fail(
                path,
                f"{where}.result.stats missing keys: {sorted(missing)}",
            )
        if run["result"]["completion_time"] <= 0:
            return fail(path, f"{where} has zero completion_time")
        if run["sim_ops"] != run["result"]["sim_ops"]:
            return fail(
                path,
                f"{where} sim_ops mismatches its result payload",
            )

    print(f"ok   {path}: {name}, {len(runs)} runs")
    return True


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} <json-dir>")
        return 2
    directory = Path(argv[1])
    files = sorted(directory.glob("BENCH_*.json"))
    if not files:
        print(f"FAIL: no BENCH_*.json files in {directory}")
        return 1
    ok = all([check_document(path) for path in files])
    print(f"{'PASS' if ok else 'FAIL'}: {len(files)} documents checked")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
