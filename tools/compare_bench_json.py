#!/usr/bin/env python3
"""Diff two `lacc_bench --json-dir` output directories.

Prints per-experiment deltas of the headline metrics (completion time,
total energy, run counts) plus per-run regressions beyond a threshold,
so a perf PR's artifact can be compared against the previous commit's
artifact at a glance. Wall-clock fields — including the simulator
throughput (ops/sec) comparison table printed at the end — are
reported informationally but never affect the exit status (they depend
on the machine), and runs are matched by label so grid reorderings are
detected rather than misattributed.

Experiments present in only one directory are skipped with a printed
note and never count as drift: a PR that adds (or retires) an
experiment would otherwise permanently fail the perf-smoke comparison
against the previous commit's artifact at the PR boundary.

Throughput: schema-v2 documents carry ops_per_sec directly; for v1
documents the rate is derived from the per-run instruction totals and
wall clocks, so old/new artifacts of different schema versions still
produce a speedup column.

With --fail-below RATIO the throughput comparison becomes a soft perf
gate: the exit status also fails when the geomean ops/sec speedup
(new/old) falls below RATIO. Use a ratio comfortably under 1.0 (e.g.
0.90) so machine noise doesn't trip it; simulated-metric drift is
still checked independently.

Exit codes:
  0  both directories parsed, every common experiment matched within
     --tolerance (simulated metrics only), and — when --fail-below is
     given — the geomean ops/sec speedup is at or above the ratio
  1  simulated metrics drifted beyond --tolerance, a common
     experiment's run grids disagree, or the geomean speedup fell
     below --fail-below
  2  usage / IO error

Typical CI usage (warn-only while the gate beds in):
  python3 tools/compare_bench_json.py prev-json bench-json \
      --tolerance 0 --fail-below 0.90
"""

import argparse
import json
import math
import sys
from pathlib import Path


def load_dir(directory):
    docs = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as e:
            print(f"ERROR {path}: unparseable JSON: {e}")
            return None
        docs[doc.get("experiment", path.stem)] = doc
    if not docs:
        print(f"ERROR: no BENCH_*.json files in {directory}")
        return None
    return docs


def fmt_delta(old, new):
    if old == new:
        return "unchanged"
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        if old:
            return f"{old} -> {new} ({(new - old) / old * +100.0:+.3f}%)"
        return f"{old} -> {new}"
    return f"{old!r} -> {new!r}"


def rel_delta(old, new):
    if old == new:
        return 0.0
    if old is None or new is None or not old:
        # A missing metric (schema drift) is always a reportable diff.
        return float("inf")
    return abs(new - old) / abs(old)


def ops_per_sec(doc):
    """Simulator throughput of one document (0.0 when underivable).

    Schema v2 carries the rate; v1 documents derive it from each run's
    summed instruction count and wall clock.
    """
    rate = doc.get("ops_per_sec")
    if isinstance(rate, (int, float)) and rate > 0:
        return float(rate)
    ops = 0
    wall = 0.0
    for run in doc.get("runs", []):
        wall += run.get("wall_seconds", 0.0)
        sim_ops = run.get("sim_ops")
        if sim_ops is None:
            sim_ops = (
                run.get("result", {})
                .get("stats", {})
                .get("core_totals", {})
                .get("instructions", 0)
            )
        ops += sim_ops * doc.get("repeat", 1)
    return ops / wall if wall > 0 else 0.0


def print_throughput_table(old_docs, new_docs):
    """ops/sec comparison table; returns the geomean speedup (or None).

    The table itself is informational; the returned geomean only
    affects the exit code when --fail-below is given.
    """
    rows = []
    speedups = []
    for name in sorted(set(old_docs) & set(new_docs)):
        old_rate = ops_per_sec(old_docs[name])
        new_rate = ops_per_sec(new_docs[name])
        if old_rate > 0 and new_rate > 0:
            speedup = new_rate / old_rate
            speedups.append(speedup)
            rows.append((name, old_rate, new_rate, f"{speedup:.2f}x"))
        else:
            rows.append((name, old_rate, new_rate, "n/a"))
    if not rows:
        return None
    print()
    print("Simulator throughput (machine-dependent):")
    print(f"  {'experiment':<12} {'old ops/sec':>14} {'new ops/sec':>14}"
          f" {'speedup':>8}")
    for name, old_rate, new_rate, speedup in rows:
        print(f"  {name:<12} {old_rate:>14,.0f} {new_rate:>14,.0f}"
              f" {speedup:>8}")
    if not speedups:
        return None
    geo = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    print(f"  geomean speedup: {geo:.2f}x over {len(speedups)}"
          " experiment(s)")
    return geo


def duplicate_labels(runs):
    seen, dups = set(), set()
    for r in runs:
        label = r["label"]
        (dups if label in seen else seen).add(label)
    return sorted(dups)


def compare_runs(name, runs_a, runs_b, tolerance):
    """Compare matched runs; returns (drift_count, lines)."""
    lines = []
    drift = 0
    # Labels are the matching key; a duplicate silently shadows a run
    # in the dicts below, so treat it as drift rather than skip it.
    for side, runs in (("OLD", runs_a), ("NEW", runs_b)):
        for label in duplicate_labels(runs):
            lines.append(
                f"    duplicate label in {side} (shadowed runs not"
                f" compared): {label}")
            drift += 1
    by_label_a = {r["label"]: r for r in runs_a}
    by_label_b = {r["label"]: r for r in runs_b}
    only_a = [l for l in by_label_a if l not in by_label_b]
    only_b = [l for l in by_label_b if l not in by_label_a]
    for label in only_a:
        lines.append(f"    run only in OLD: {label}")
        drift += 1
    for label in only_b:
        lines.append(f"    run only in NEW: {label}")
        drift += 1

    for label, ra in by_label_a.items():
        rb = by_label_b.get(label)
        if rb is None:
            continue
        # Schema-v3 failed runs (watchdog timeout, unrecoverable
        # injected fault) carry placeholder results: comparing them
        # would flag meaningless deltas, and a status flip itself is
        # a visible note rather than drift (fault experiments abort
        # by design).
        sa = ra.get("status", "ok")
        sb = rb.get("status", "ok")
        if sa != sb:
            lines.append(
                f"    {label}: status {sa} -> {sb} (skipped; failed"
                " runs carry no comparable metrics)")
            continue
        if sa == "failed":
            lines.append(f"    {label}: failed in both (skipped)")
            continue
        for key in ("completion_time", "energy_total",
                    "functional_errors"):
            va = ra["result"].get(key)
            vb = rb["result"].get(key)
            if rel_delta(va, vb) > tolerance:
                lines.append(
                    f"    {label}: {key} {fmt_delta(va, vb)}")
                drift += 1
    return drift, lines


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("old_dir", help="baseline --json-dir output")
    parser.add_argument("new_dir", help="candidate --json-dir output")
    parser.add_argument(
        "--tolerance", type=float, default=0.0,
        help="relative drift allowed in simulated metrics"
             " (default 0: bit-identical)")
    parser.add_argument(
        "--fail-below", type=float, default=None, metavar="RATIO",
        help="exit nonzero when the geomean ops/sec speedup"
             " (new/old) is below RATIO (e.g. 0.90 tolerates a 10%%"
             " slowdown); off by default because wall clocks are"
             " machine-dependent")
    args = parser.parse_args(argv[1:])

    old_docs = load_dir(args.old_dir)
    new_docs = load_dir(args.new_dir)
    if old_docs is None or new_docs is None:
        return 2

    drift = 0
    only_old = sorted(set(old_docs) - set(new_docs))
    only_new = sorted(set(new_docs) - set(old_docs))
    for name in only_old:
        print(f"SKIP {name}: experiment only in {args.old_dir}"
              " (skipped; not counted as drift)")
    for name in only_new:
        print(f"NEW  {name}: experiment only in {args.new_dir}"
              " (skipped; not counted as drift)")

    for name in sorted(set(old_docs) & set(new_docs)):
        da, db = old_docs[name], new_docs[name]
        lines = []
        exp_drift = 0

        if da.get("op_scale") != db.get("op_scale"):
            lines.append(
                f"    op_scale {fmt_delta(da.get('op_scale'), db.get('op_scale'))}"
                " (directories ran at different scales; metric deltas"
                " below are not meaningful)")
            exp_drift += 1
        if da.get("jobs") != db.get("jobs"):
            lines.append(
                f"    jobs {fmt_delta(da.get('jobs'), db.get('jobs'))}")
            exp_drift += 1
        else:
            run_drift, run_lines = compare_runs(
                name, da.get("runs", []), db.get("runs", []),
                args.tolerance)
            exp_drift += run_drift
            lines.extend(run_lines)

        wall = fmt_delta(round(da.get("wall_seconds", 0.0), 2),
                         round(db.get("wall_seconds", 0.0), 2))
        status = "DIFF" if exp_drift else "ok  "
        print(f"{status} {name}: {len(da.get('runs', []))} runs,"
              f" wall {wall} (informational)")
        for line in lines:
            print(line)
        drift += exp_drift

    geomean = print_throughput_table(old_docs, new_docs)

    if drift:
        print(f"DRIFT: {drift} simulated-metric difference(s) beyond"
              f" tolerance {args.tolerance}")
        return 1
    if args.fail_below is not None:
        if geomean is None:
            print(f"SLOW: --fail-below {args.fail_below} given but no"
                  " geomean speedup could be derived")
            return 1
        if geomean < args.fail_below:
            print(f"SLOW: geomean ops/sec speedup {geomean:.3f}x is"
                  f" below --fail-below {args.fail_below}")
            return 1
    print("PASS: all common experiments match"
          + (f" within tolerance {args.tolerance}"
             if args.tolerance else " bit-identically")
          + (f"; geomean speedup {geomean:.2f}x >="
             f" {args.fail_below}"
             if args.fail_below is not None else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
