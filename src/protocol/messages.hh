/**
 * @file
 * Explicit coherence-message descriptors (§3.1-§3.2 traffic classes).
 *
 * Every on-chip transfer the protocol performs — requests, replies,
 * invalidations and their acknowledgements, eviction notices, DRAM
 * traffic, and barrier messages — is described as a Message: a kind, a
 * source/destination tile, and a payload class (none / one word / one
 * line). The MessageTransport turns the description into interconnect
 * traffic: it derives the flit count from the configured header and
 * payload widths, records the hop count, and charges router/link
 * energy through the NetworkModel (net/network.hh — mesh by default,
 * any factory-built topology in general). Timing and energy
 * accounting are therefore driven by the message description, not by
 * ad-hoc flit arithmetic at each protocol call site.
 */

#ifndef LACC_PROTOCOL_MESSAGES_HH
#define LACC_PROTOCOL_MESSAGES_HH

#include <cstdint>
#include <vector>

#include "net/network.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace lacc {

class FaultInjector;

/** Coherence message kinds exchanged by the controllers. */
enum class MsgKind : std::uint8_t {
    // ---- Core -> home-directory requests --------------------------------
    ShReq,        //!< read miss (shared request)
    ExReq,        //!< write miss (exclusive request; carries the word)
    UpgradeReq,   //!< S->M upgrade (carries the word)
    EvictNotice,  //!< fire-and-forget L1 eviction (utilization in header)

    // ---- Home-directory -> core replies ---------------------------------
    LineGrant,    //!< private grant: full line copy
    UpgradeGrant, //!< upgrade grant: no data transfer
    WordData,     //!< remote word read serviced at the L2 home
    WordAck,      //!< remote word write acknowledgement

    // ---- Directory -> sharer control, and the acks ----------------------
    InvalReq,     //!< invalidate a private copy (unicast or broadcast)
    InvalAck,     //!< ack; carries the line when the copy was dirty
    DowngradeReq, //!< owner downgrade (sync write-back request)
    DowngradeAck, //!< ack; carries the line when the copy was dirty

    // ---- Home <-> memory controller -------------------------------------
    DramFetchReq,  //!< L2 miss request to the line's controller tile
    DramFetchData, //!< line fill from DRAM
    DramWriteback, //!< dirty L2 victim to DRAM

    // ---- Synchronization (message-based barrier) ------------------------
    BarrierArrive,
    BarrierRelease,

    // ---- Transport-level recovery (fault/injector.hh) --------------------
    Nack, //!< CRC-failure reject; sender retransmits on receipt
};

/** Payload carried on top of the header flits. */
enum class MsgPayload : std::uint8_t {
    None, //!< header only
    Word, //!< one 64-bit word
    Line, //!< a full cache line
};

/** Human-readable name for a MsgKind (logging / debug). */
const char *msgKindName(MsgKind k);

/**
 * One coherence message. Built by a controller with kind, endpoints,
 * and payload; flit count and hop count are filled by the transport
 * when the message is sent.
 */
struct Message
{
    MsgKind kind = MsgKind::ShReq;
    CoreId src = 0;
    CoreId dst = 0;
    MsgPayload payload = MsgPayload::None;

    std::uint32_t flits = 0; //!< header + payload; set by the transport
    std::uint32_t hops = 0;  //!< route length; set by the transport

    /**
     * Transport-assigned sequence id, used by the retransmit machinery
     * to label resends of the same logical message. Pure modeling
     * metadata: never an input to a fault roll, so the schedule stays
     * independent of send ordering.
     */
    std::uint64_t seq = 0;
};

/**
 * Sends Messages over the interconnect. Thin stateless adapter: flit
 * sizing comes from the SystemConfig, timing/contention/energy from
 * the NetworkModel (which charges router and link energy per
 * flit-hop).
 */
class MessageTransport
{
  public:
    MessageTransport(const SystemConfig &cfg, NetworkModel &net)
        : cfg_(cfg), net_(net)
    {}

    /** Flits a payload class occupies on the wire. */
    std::uint32_t
    payloadFlits(MsgPayload p) const
    {
        switch (p) {
          case MsgPayload::Word: return cfg_.wordFlits;
          case MsgPayload::Line: return cfg_.lineFlits;
          default: return 0;
        }
    }

    /** Total flits of a message (header + payload). */
    std::uint32_t
    flitsOf(const Message &m) const
    {
        return cfg_.headerFlits + payloadFlits(m.payload);
    }

    /**
     * Send @p m as a unicast departing at @p depart; fills in flit and
     * hop counts. @return arrival time of the last flit at m.dst.
     *
     * Under FaultPlan none the entire fault-layer cost is the one
     * untaken branch below (pinned by bench_micro); with faults armed
     * the out-of-line retransmit path takes over.
     */
    Cycle
    send(Message &m, Cycle depart)
    {
        m.flits = flitsOf(m);
        m.hops = net_.hopCount(m.src, m.dst);
        if (fault_ == nullptr)
            return net_.unicast(m.src, m.dst, m.flits, depart);
        return sendWithRetry(m, depart);
    }

    /**
     * Broadcast @p m from m.src to all tiles (ACKwise overflow
     * invalidations, barrier release) — a single injection on fabrics
     * with native broadcast, serialized unicasts otherwise. Per-tile
     * arrival times are written to @p arrivals.
     * @return the maximum arrival time.
     */
    Cycle
    broadcast(Message &m, Cycle depart, std::vector<Cycle> &arrivals)
    {
        m.flits = flitsOf(m);
        m.hops = 0; // delivery tree: no single route length
        if (fault_ == nullptr)
            return net_.broadcast(m.src, m.flits, depart, arrivals);
        return broadcastWithRetry(m, depart, arrivals);
    }

    /** Arm the lossy-link recovery path (Multicore wiring). */
    void setFaultInjector(FaultInjector *fi) { fault_ = fi; }

    NetworkModel &network() { return net_; }

  private:
    Cycle sendWithRetry(Message &m, Cycle depart);
    Cycle broadcastWithRetry(Message &m, Cycle depart,
                             std::vector<Cycle> &arrivals);

    const SystemConfig &cfg_;
    NetworkModel &net_;
    FaultInjector *fault_ = nullptr; //!< null under FaultPlan none
    std::uint64_t seq_ = 0;          //!< next Message::seq to assign
};

} // namespace lacc

#endif // LACC_PROTOCOL_MESSAGES_HH
