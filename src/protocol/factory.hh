/**
 * @file
 * Protocol factory: builds the CoherenceProtocol selected by a
 * SystemConfig, and maps protocol names <-> configurations so the
 * harness can sweep protocols by name (`lacc_bench --protocol`).
 */

#ifndef LACC_PROTOCOL_FACTORY_HH
#define LACC_PROTOCOL_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "protocol/protocol.hh"

namespace lacc {

/**
 * Build the protocol selected by @p cfg (DirectoryKind::Ackwise ->
 * LaccProtocol, DirectoryKind::FullMap -> FullMapProtocol). The
 * returned protocol holds a copy of @p ctx (references into the
 * enclosing Multicore, which must outlive it).
 */
std::unique_ptr<CoherenceProtocol>
makeProtocol(const SystemConfig &cfg, const ProtocolContext &ctx);

/** Registered protocol names, in factory order: {"lacc", "fullmap"}. */
const std::vector<std::string> &protocolNames();

/** Name the factory would select for @p cfg. */
const char *protocolNameFor(const SystemConfig &cfg);

/**
 * Reconfigure @p cfg to select the named protocol (harness sweeps by
 * name). fatal() on an unknown name, listing the valid ones.
 */
void applyProtocolName(SystemConfig &cfg, const std::string &name);

} // namespace lacc

#endif // LACC_PROTOCOL_FACTORY_HH
