#include "protocol/messages.hh"

namespace lacc {

const char *
msgKindName(MsgKind k)
{
    switch (k) {
      case MsgKind::ShReq: return "ShReq";
      case MsgKind::ExReq: return "ExReq";
      case MsgKind::UpgradeReq: return "UpgradeReq";
      case MsgKind::EvictNotice: return "EvictNotice";
      case MsgKind::LineGrant: return "LineGrant";
      case MsgKind::UpgradeGrant: return "UpgradeGrant";
      case MsgKind::WordData: return "WordData";
      case MsgKind::WordAck: return "WordAck";
      case MsgKind::InvalReq: return "InvalReq";
      case MsgKind::InvalAck: return "InvalAck";
      case MsgKind::DowngradeReq: return "DowngradeReq";
      case MsgKind::DowngradeAck: return "DowngradeAck";
      case MsgKind::DramFetchReq: return "DramFetchReq";
      case MsgKind::DramFetchData: return "DramFetchData";
      case MsgKind::DramWriteback: return "DramWriteback";
      case MsgKind::BarrierArrive: return "BarrierArrive";
      case MsgKind::BarrierRelease: return "BarrierRelease";
      default: return "?";
    }
}

} // namespace lacc
