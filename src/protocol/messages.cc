#include "protocol/messages.hh"

#include <algorithm>

#include "fault/injector.hh"

namespace lacc {

const char *
msgKindName(MsgKind k)
{
    switch (k) {
      case MsgKind::ShReq: return "ShReq";
      case MsgKind::ExReq: return "ExReq";
      case MsgKind::UpgradeReq: return "UpgradeReq";
      case MsgKind::EvictNotice: return "EvictNotice";
      case MsgKind::LineGrant: return "LineGrant";
      case MsgKind::UpgradeGrant: return "UpgradeGrant";
      case MsgKind::WordData: return "WordData";
      case MsgKind::WordAck: return "WordAck";
      case MsgKind::InvalReq: return "InvalReq";
      case MsgKind::InvalAck: return "InvalAck";
      case MsgKind::DowngradeReq: return "DowngradeReq";
      case MsgKind::DowngradeAck: return "DowngradeAck";
      case MsgKind::DramFetchReq: return "DramFetchReq";
      case MsgKind::DramFetchData: return "DramFetchData";
      case MsgKind::DramWriteback: return "DramWriteback";
      case MsgKind::BarrierArrive: return "BarrierArrive";
      case MsgKind::BarrierRelease: return "BarrierRelease";
      case MsgKind::Nack: return "Nack";
      default: return "?";
    }
}

/*
 * Retransmit state machine (ARCHITECTURE.md "Fault injection &
 * recovery"). Each attempt traverses the full route and is charged
 * its full flit/energy cost — an upper bound for drops, which in a
 * real NoC may die mid-route. A *dropped* message is detected only by
 * the source's timeout, so the resend departs one exponentially
 * backed-off timeout after the would-be arrival. A *corrupted*
 * message reaches the destination, fails its CRC, and is NACKed with
 * a header-only reply; the source resends on NACK receipt. The NACK
 * itself rides the faulty fabric — if it is lost or mangled, the
 * source falls back to the same timeout it would have used for a
 * drop. The retry budget caps total attempts; exhausting it is a
 * modeled unrecoverable transport failure (RunAbort).
 */
Cycle
MessageTransport::sendWithRetry(Message &m, Cycle depart)
{
    m.seq = ++seq_;
    const FaultPlan &plan = fault_->plan();
    Cycle t = depart;
    for (std::uint32_t attempt = 0;; ++attempt) {
        const Cycle arr = net_.unicast(m.src, m.dst, m.flits, t);
        bool drop = false;
        if (!net_.consumeTraversalFault(drop))
            return arr;
        if (attempt + 1 >= plan.retryBudget)
            fault_->budgetExhausted(m.src, m.dst, attempt + 1);
        Cycle retry = arr + (plan.retryTimeout << attempt);
        if (!drop) {
            Message nack;
            nack.kind = MsgKind::Nack;
            nack.src = m.dst;
            nack.dst = m.src;
            nack.payload = MsgPayload::None;
            nack.flits = flitsOf(nack);
            nack.hops = net_.hopCount(nack.src, nack.dst);
            nack.seq = m.seq;
            const Cycle nack_arr =
                net_.unicast(nack.src, nack.dst, nack.flits, arr);
            bool nack_drop = false;
            if (!net_.consumeTraversalFault(nack_drop))
                retry = std::max(nack_arr, arr + 1);
            fault_->noteNack();
        }
        fault_->noteRetransmit();
        t = retry;
    }
}

/*
 * Conservative tree recovery: a fault on *any* tree link invalidates
 * the whole delivery (per-branch repair would need per-destination
 * sequence tracking the header does not model), so the source
 * re-broadcasts the entire tree after a backed-off timeout. With many
 * receivers there is no single NACK channel either, so corrupt
 * deliveries are folded into the same timeout path as drops.
 */
Cycle
MessageTransport::broadcastWithRetry(Message &m, Cycle depart,
                                     std::vector<Cycle> &arrivals)
{
    m.seq = ++seq_;
    const FaultPlan &plan = fault_->plan();
    Cycle t = depart;
    for (std::uint32_t attempt = 0;; ++attempt) {
        const Cycle arr = net_.broadcast(m.src, m.flits, t, arrivals);
        bool drop = false;
        if (!net_.consumeTraversalFault(drop))
            return arr;
        if (attempt + 1 >= plan.retryBudget)
            fault_->budgetExhausted(m.src, m.src, attempt + 1);
        fault_->noteRetransmit();
        t = arr + (plan.retryTimeout << attempt);
    }
}

} // namespace lacc
