/**
 * @file
 * Small-vector of core ids for directory metadata.
 *
 * Directory entries track tiny core sets (ACKwise_p pointer slots,
 * p = 4 by default; L1 holder oracles, typically <= the sharing
 * degree), but the seed kept them in heap-allocated std::vectors with
 * linear find/remove scans. SmallCoreVec stores up to kInlineCap ids
 * inline (no heap allocation per directory entry on the common path)
 * and spills to a heap vector only for genuinely large sets.
 *
 * Two orderings, selected by template parameter:
 *
 *  - kSorted = true: ids kept sorted, membership by binary search.
 *    Used by SharerList's ACKwise pointer slots, whose order is
 *    architecturally meaningless (the protocol only asks "is this
 *    core tracked" / "how many").
 *  - kSorted = false: insertion order preserved, linear membership.
 *    Used for L2Meta::holders, where order is architecturally
 *    *visible*: invalidation fan-out unicasts holders in grant order,
 *    and with link contention the fan-out order shifts individual ack
 *    arrival times. Sorting holders would change modeled timing (and
 *    break the bench goldens), so the helper must not reorder them.
 */

#ifndef LACC_PROTOCOL_CORE_VEC_HH
#define LACC_PROTOCOL_CORE_VEC_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace lacc {

/** Small-buffer core-id set; see file header for the two orderings. */
template <bool kSorted>
class SmallCoreVec
{
  public:
    /** Ids stored without touching the heap. */
    static constexpr std::uint32_t kInlineCap = 8;

    SmallCoreVec() = default;

    std::uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const CoreId *begin() const { return data(); }
    const CoreId *end() const { return data() + size_; }
    CoreId operator[](std::uint32_t i) const { return data()[i]; }

    /** True if @p c is in the set. */
    bool
    contains(CoreId c) const
    {
        if constexpr (kSorted)
            return std::binary_search(begin(), end(), c);
        else
            return std::find(begin(), end(), c) != end();
    }

    /**
     * Add @p c (sorted position or at the back, per ordering).
     * @return false if it was already present (set semantics).
     */
    bool
    insert(CoreId c)
    {
        std::uint32_t pos;
        if constexpr (kSorted) {
            const CoreId *it = std::lower_bound(begin(), end(), c);
            if (it != end() && *it == c)
                return false;
            pos = static_cast<std::uint32_t>(it - begin());
        } else {
            if (contains(c))
                return false;
            pos = size_;
        }
        if (spilled_) {
            spill_.insert(spill_.begin() + pos, c);
            ++size_;
            return true;
        }
        if (size_ == kInlineCap) {
            spill_.assign(inline_, inline_ + size_);
            spill_.insert(spill_.begin() + pos, c);
            spilled_ = true;
            ++size_;
            return true;
        }
        for (std::uint32_t i = size_; i > pos; --i)
            inline_[i] = inline_[i - 1];
        inline_[pos] = c;
        ++size_;
        return true;
    }

    /** Remove @p c. @return false if it was not present. */
    bool
    erase(CoreId c)
    {
        const CoreId *it;
        if constexpr (kSorted) {
            it = std::lower_bound(begin(), end(), c);
            if (it == end() || *it != c)
                return false;
        } else {
            it = std::find(begin(), end(), c);
            if (it == end())
                return false;
        }
        const std::uint32_t pos =
            static_cast<std::uint32_t>(it - begin());
        if (spilled_) {
            spill_.erase(spill_.begin() + pos);
        } else {
            for (std::uint32_t i = pos; i + 1 < size_; ++i)
                inline_[i] = inline_[i + 1];
        }
        --size_;
        return true;
    }

    /** Drop all ids (spill capacity is kept for reuse). */
    void
    clear()
    {
        size_ = 0;
        spilled_ = false;
        spill_.clear();
    }

  private:
    const CoreId *
    data() const
    {
        return spilled_ ? spill_.data() : inline_;
    }

    CoreId inline_[kInlineCap] = {};
    std::vector<CoreId> spill_; //!< holds *all* ids once spilled
    std::uint32_t size_ = 0;
    bool spilled_ = false;
};

/** Sorted flavor: SharerList pointer slots. */
using SortedCoreVec = SmallCoreVec<true>;

/** Grant-ordered flavor: L2Meta::holders (fan-out order matters). */
using HolderVec = SmallCoreVec<false>;

} // namespace lacc

#endif // LACC_PROTOCOL_CORE_VEC_HH
