#include "protocol/lacc.hh"

#include <algorithm>

#include "sim/stats.hh"

namespace lacc {

Cycle
AckwiseDirectory::fanOutInvalidations(CoreId home, L2Cache::Entry &entry,
                                      const std::vector<CoreId> &targets,
                                      Cycle t)
{
    if (!entry.meta.sharers.overflowed())
        return BaseDirectoryController::fanOutInvalidations(home, entry,
                                                            targets, t);

    // ACKwise overflow: identities unknown, broadcast with a single
    // injection; acks only from the actual sharers (§3.1).
    std::vector<Cycle> arrivals;
    Message bcast{MsgKind::InvalReq, home, home, MsgPayload::None};
    ctx_.net.broadcast(bcast, t, arrivals);
    ++ctx_.stats.protocol.broadcastInvals;
    Cycle t_end = t;
    for (const CoreId s : targets)
        t_end = std::max(t_end,
                         dropAndAck(s, home, entry, false, arrivals[s]));
    return t_end;
}

} // namespace lacc
