#include "protocol/lacc.hh"

#include <algorithm>

#include "sim/stats.hh"

namespace lacc {

Cycle
AckwiseDirectory::fanOutInvalidations(CoreId home, L2Cache::Entry entry,
                                      const HolderVec &targets,
                                      Cycle t)
{
    if (!entry.meta().sharers.overflowed())
        return BaseDirectoryController::fanOutInvalidations(home, entry,
                                                            targets, t);

    // ACKwise overflow: identities unknown, broadcast instead of
    // per-sharer unicasts; acks only from the actual sharers (§3.1).
    // On fabrics without native broadcast the transport pays the
    // serialized-unicast emulation here — the topology-sensitivity
    // experiment measures exactly that. The arrival buffer is a
    // reusable member (the network broadcast re-assigns it to
    // numCores each call without reallocating).
    Message bcast{MsgKind::InvalReq, home, home, MsgPayload::None};
    ctx_.net.broadcast(bcast, t, bcastArrivals_);
    ++ctx_.stats.protocol.broadcastInvals;
    Cycle t_end = t;
    for (const CoreId s : targets)
        t_end = std::max(t_end, dropAndAck(s, home, entry, false,
                                           bcastArrivals_[s]));
    return t_end;
}

} // namespace lacc
