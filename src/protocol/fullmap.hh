/**
 * @file
 * FullMapProtocol: the baseline directory organization — a full-map
 * bit-vector directory entry per line (§3.1's comparison point and
 * the `ackwise` validation experiment's reference). Sharer identities
 * are always exact, so invalidations are always per-sharer unicasts;
 * everything else (R-NUCA placement, the locality classifier, the
 * remote-access machinery) is shared with the base controllers, so
 * the classifier knobs compose with this directory too.
 */

#ifndef LACC_PROTOCOL_FULLMAP_HH
#define LACC_PROTOCOL_FULLMAP_HH

#include "protocol/base.hh"

namespace lacc {

/** Full-map bit-vector directory controller (never broadcasts). */
class FullMapDirectory final : public BaseDirectoryController
{
  public:
    using BaseDirectoryController::BaseDirectoryController;

  protected:
    SharerList
    makeSharers() const override
    {
        return SharerList::makeFullMap(ctx_.cfg.numCores);
    }
};

/** The full-map-directory baseline protocol. */
class FullMapProtocol final : public CoherenceProtocol
{
  public:
    explicit FullMapProtocol(const ProtocolContext &ctx)
        : l1_(ctx), dir_(ctx)
    {
        l1_.bind(dir_);
        dir_.bind(l1_);
    }

    const char *name() const override { return "fullmap"; }
    L1Controller &l1() override { return l1_; }
    DirectoryController &directory() override { return dir_; }

  private:
    BaseL1Controller l1_;
    FullMapDirectory dir_;
};

} // namespace lacc

#endif // LACC_PROTOCOL_FULLMAP_HH
