/**
 * @file
 * LaccProtocol: the paper's protocol — locality-aware adaptive
 * coherence over an ACKwise_p limited directory (§3). Directory
 * entries track p sharer pointers; when the sharer count exceeds p,
 * identities are dropped and exclusive requests broadcast the
 * invalidation with acknowledgements expected only from the actual
 * sharers (§3.1). The locality classifier (selected by
 * SystemConfig::classifierKind) decides private vs remote service per
 * (line, core).
 */

#ifndef LACC_PROTOCOL_LACC_HH
#define LACC_PROTOCOL_LACC_HH

#include <vector>

#include "protocol/base.hh"

namespace lacc {

/** ACKwise_p directory controller (broadcast on pointer overflow). */
class AckwiseDirectory final : public BaseDirectoryController
{
  public:
    using BaseDirectoryController::BaseDirectoryController;

  protected:
    SharerList
    makeSharers() const override
    {
        return SharerList::makeAckwise(ctx_.cfg.ackwisePointers);
    }

    Cycle fanOutInvalidations(CoreId home, L2Cache::Entry entry,
                              const HolderVec &targets,
                              Cycle t) override;

  private:
    /** Reusable per-tile broadcast arrival buffer (sized numCores). */
    std::vector<Cycle> bcastArrivals_;
};

/** The locality-aware adaptive protocol over ACKwise_p. */
class LaccProtocol final : public CoherenceProtocol
{
  public:
    explicit LaccProtocol(const ProtocolContext &ctx)
        : l1_(ctx), dir_(ctx)
    {
        l1_.bind(dir_);
        dir_.bind(l1_);
    }

    const char *name() const override { return "lacc"; }
    L1Controller &l1() override { return l1_; }
    DirectoryController &directory() override { return dir_; }

  private:
    BaseL1Controller l1_;
    AckwiseDirectory dir_;
};

} // namespace lacc

#endif // LACC_PROTOCOL_LACC_HH
