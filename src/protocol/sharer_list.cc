#include "protocol/sharer_list.hh"

#include "sim/log.hh"

namespace lacc {

void
SharerList::add(CoreId core)
{
    if (fullMap_) {
        auto &word = bits_[core / 64];
        const std::uint64_t mask = 1ULL << (core % 64);
        if (word & mask)
            return;
        word |= mask;
        ++count_;
        return;
    }

    // ACKwise: exact while count <= p.
    if (!overflowed_) {
        if (pointers_.contains(core))
            return; // already tracked
        if (pointers_.size() < capacity_) {
            pointers_.insert(core);
            ++count_;
            return;
        }
        // Pointer overflow: stop tracking identities, count only.
        overflowed_ = true;
        ++count_;
        return;
    }

    // Overflow mode: identities unknown; conservatively assume the
    // requester is a new sharer (the protocol only calls add() when
    // handing out a copy the core does not already hold).
    ++count_;
}

void
SharerList::remove(CoreId core)
{
    if (count_ == 0)
        panic("SharerList::remove on empty list");
    if (fullMap_) {
        auto &word = bits_[core / 64];
        const std::uint64_t mask = 1ULL << (core % 64);
        if (!(word & mask))
            panic("full-map remove of non-sharer core %u", core);
        word &= ~mask;
        --count_;
        return;
    }

    if (pointers_.erase(core)) {
        --count_;
        if (count_ == 0)
            overflowed_ = false;
        return;
    }
    if (!overflowed_)
        panic("ACKwise remove of untracked core %u without overflow", core);
    --count_;
    if (count_ == 0) {
        overflowed_ = false;
        pointers_.clear();
    }
}

void
SharerList::clear()
{
    count_ = 0;
    overflowed_ = false;
    pointers_.clear();
    for (auto &w : bits_)
        w = 0;
}

bool
SharerList::contains(CoreId core) const
{
    if (fullMap_)
        return (bits_[core / 64] >> (core % 64)) & 1;
    return pointers_.contains(core);
}

std::vector<CoreId>
SharerList::tracked() const
{
    std::vector<CoreId> out;
    forEachTracked([&](CoreId c) { out.push_back(c); });
    return out;
}

} // namespace lacc
