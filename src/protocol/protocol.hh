/**
 * @file
 * The pluggable coherence-protocol layer.
 *
 * The paper's contribution is a *protocol* — locality-aware adaptive
 * coherence over an ACKwise_p directory — so the protocol state
 * machine lives behind explicit interfaces instead of inline in the
 * system simulator:
 *
 *  - L1Controller: the private-cache side — L1 lookups, fills,
 *    evictions (with the fire-and-forget notice), receipt of
 *    invalidations/downgrades, and forwarding misses (plus the L1-set
 *    hint that feeds the remote-access decision, §3.2/§3.3) to the
 *    directory.
 *  - DirectoryController: the home-slice side — L2Meta/SharerList
 *    ownership, the locality-classifier invocation, miss
 *    transactions, invalidation fan-out, sync write-backs, L2
 *    fills/evictions, and DRAM traffic.
 *  - CoherenceProtocol: a named bundle of both, built by the factory
 *    (protocol/factory.hh) from the SystemConfig.
 *
 * Controllers communicate with the rest of the chip exclusively
 * through Message descriptors (protocol/messages.hh) and the shared
 * ProtocolContext, so an alternative protocol (e.g. DLS-style
 * directoryless or Neat-style low-complexity coherence) can be added
 * without touching system/Multicore.
 */

#ifndef LACC_PROTOCOL_PROTOCOL_HH
#define LACC_PROTOCOL_PROTOCOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/classifier.hh"
#include "protocol/dir_entry.hh"
#include "protocol/messages.hh"
#include "sim/addr_map.hh"
#include "sim/types.hh"

namespace lacc {

class DramModel;
class EnergyModel;
class FunctionalMemory;
class PageTable;
class Placement;
class Tile;
struct SystemConfig;
struct SystemStats;

/**
 * Execution-engine visibility into the protocol's cross-tile effects.
 * A directory transaction issued by one core can reach into *another*
 * core's L1 (invalidation, downgrade) — the only way protocol
 * execution mutates a tile other than the requester's. The sharded
 * engine (system/sharded.hh) observes exactly those points to keep
 * its speculative per-core scans sound; it also observes directory-
 * transaction entry as a guard that no such transaction ever runs
 * during a parallel phase. The default observer ignores everything
 * (the serial engine needs no visibility).
 */
class CoreTouchObserver
{
  public:
    virtual ~CoreTouchObserver() = default;

    /** A transaction is about to read/mutate core @p c's L1 copies. */
    virtual void onCrossTileTouch(CoreId c) { (void)c; }

    /** A directory transaction is starting on behalf of core @p c. */
    virtual void onDirectoryRequest(CoreId c) { (void)c; }
};

/**
 * Everything a protocol implementation may touch, owned by the
 * enclosing Multicore: configuration and address geometry, the tiles
 * (L1s, L2 slices, per-core stats/clocks), the message transport,
 * the energy/DRAM models, R-NUCA placement state, whole-system
 * statistics, and the functional reference memory — plus the
 * execution engine's cross-tile touch observer (may be null).
 */
struct ProtocolContext
{
    const SystemConfig &cfg;
    const AddressMap &addr;
    std::vector<std::unique_ptr<Tile>> &tiles;
    MessageTransport &net;
    EnergyModel &energy;
    DramModel &dram;
    PageTable &pageTable;
    const Placement &placement;
    SystemStats &stats;
    FunctionalMemory &mem;
    CoreTouchObserver *touch = nullptr;

    /**
     * Armed fault injector (fault/injector.hh), or null under
     * FaultPlan none — the soft-error hook in the directory
     * transaction path costs exactly one null test when disabled.
     */
    FaultInjector *fault = nullptr;
};

/**
 * L1 set information communicated with a miss (§3.2/§3.3): whether
 * the requester's set has an invalid way (short-cut promotion at PCT)
 * and the minimum last-access time over its valid lines (Timestamp
 * classifier check).
 */
struct L1SetHint
{
    bool hasInvalidWay = false;
    Cycle minLastAccess = 0;
};

/** Outcome of removing a holder's L1 copies (invalidation receipt). */
struct DropResult
{
    /** Private utilization at removal, summed over the core's copies
     * (a line can sit in both L1-D and L1-I). */
    std::uint32_t util = 0;
    bool wasModified = false; //!< a copy was M: data merged into the L2
};

/** Private-cache side of the protocol; one instance per system. */
class L1Controller
{
  public:
    virtual ~L1Controller() = default;

    /**
     * One data or instruction access on core @p c at its current
     * local time; advances the core's clock and attributes latency.
     * Misses run the full directory transaction before returning.
     *
     * @param charge_fetch_energy explicit accesses charge L1 energy;
     *        walker-originated ifetches are covered by the bulk
     *        per-instruction fetch energy
     */
    virtual void access(CoreId c, Addr addr, bool is_write,
                        bool is_ifetch,
                        bool charge_fetch_energy = true) = 0;

    /**
     * Ifetch-walker fast path: touch a resident I-line (LRU +
     * utilization + load count). @return false on a miss (the caller
     * then issues a full access with bulk-charged fetch energy).
     */
    virtual bool touchResidentIfetch(CoreId c, Addr addr) = 0;

    /**
     * Install a line into an L1 (private grant), evicting the victim
     * if needed. @p words points at one line of data (the system's
     * wordsPerLine() words), typically the granting L2 entry's arena
     * slice; it is copied into the L1's arena. @return a handle to
     * the installed entry (write grants poke the stored word into it).
     */
    virtual L1Cache::Entry
    fill(CoreId c, bool is_ifetch, LineAddr line,
         const std::uint64_t *words, L1State st, Cycle t) = 0;

    /** Apply an upgrade grant to the requester's S copy (S -> M). */
    virtual void applyUpgrade(CoreId c, bool is_ifetch, LineAddr line,
                              std::uint32_t word, std::uint64_t val) = 0;

    /**
     * Remove every L1 copy a holder core has of @p line
     * (invalidation receipt; a core can hold a line in both L1-D and
     * L1-I). Merges M data into @p entry's L2 copy and records
     * utilization/miss-type bookkeeping per copy.
     *
     * @param l2_eviction true when driven by an inclusive L2
     *        eviction: the tracker records a capacity event (and the
     *        directory skips the classifier, whose per-line state
     *        dies with the entry)
     */
    virtual DropResult dropCopy(CoreId s, LineAddr line,
                                L2Cache::Entry entry,
                                bool l2_eviction) = 0;

    /**
     * Downgrade the exclusive owner's copy to S (sync write-back),
     * merging M data into @p entry. @return true if the copy was M.
     */
    virtual bool downgradeCopy(CoreId owner, L2Cache::Entry entry) = 0;

    /**
     * Drop the requester's copy of @p line in its *other* L1 (the
     * one the current access did not miss in), if any — after a
     * write, a dual-copy line's second copy is stale. A local action
     * on the requester's own tile: no message, no directory stats,
     * and never Modified (only L1-D copies can be M, and writes miss
     * in L1-D). @return true if a copy was dropped.
     */
    virtual bool dropOtherCopy(CoreId c, bool is_ifetch,
                               LineAddr line) = 0;
};

/** Home-slice (directory) side of the protocol. */
class DirectoryController
{
  public:
    virtual ~DirectoryController() = default;

    /**
     * Run one full miss transaction for core @p c at the line's home:
     * R-NUCA classification, L2 find-or-fill, classifier-driven
     * private-vs-remote service, invalidation / sync-write-back
     * fan-out, the reply message, and completion-time attribution.
     */
    virtual void request(CoreId c, Addr addr, bool is_write,
                         bool is_ifetch, bool upgrade,
                         const L1SetHint &hint) = 0;

    /**
     * Home-side handling of an L1 eviction notice: directory entry
     * update, dirty write-back merge, and eviction classification
     * (§3.2). @p words points at the victim's line data (still live
     * in the evicting L1's arena when this is called).
     *
     * @param still_holds the core still has a copy of the line in
     *        its other L1 (L1-I vs L1-D): the holder entry and
     *        sharer tracking must survive this notice
     */
    virtual void evictionNotice(CoreId home, CoreId c, LineAddr line,
                                bool was_modified,
                                const std::uint64_t *words,
                                std::uint32_t util,
                                bool still_holds) = 0;

    /** Home slice for a line (page table must already classify it). */
    virtual CoreId homeOf(LineAddr line, CoreId requester) const = 0;

    /** The locality classifier this directory consults. */
    virtual LocalityClassifier &classifier() = 0;
    virtual const LocalityClassifier &classifier() const = 0;
};

/** A named, self-contained coherence protocol implementation. */
class CoherenceProtocol
{
  public:
    virtual ~CoherenceProtocol() = default;

    /** Factory key and report name, e.g. "lacc" or "fullmap". */
    virtual const char *name() const = 0;

    virtual L1Controller &l1() = 0;
    virtual DirectoryController &directory() = 0;

    /** Convenience: the directory's locality classifier. */
    LocalityClassifier &classifier() { return directory().classifier(); }
};

} // namespace lacc

#endif // LACC_PROTOCOL_PROTOCOL_HH
