#include "protocol/base.hh"

#include <algorithm>

#include "dram/dram.hh"
#include "energy/model.hh"
#include "fault/injector.hh"
#include "rnuca/page_table.hh"
#include "rnuca/placement.hh"
#include "sim/config.hh"
#include "sim/functional.hh"
#include "sim/log.hh"
#include "sim/profiler.hh"
#include "sim/stats.hh"
#include "system/tile.hh"

namespace lacc {

// ---------------------------------------------------------------------------
// BaseL1Controller
// ---------------------------------------------------------------------------

void
BaseL1Controller::access(CoreId c, Addr addr, bool is_write,
                         bool is_ifetch, bool charge_fetch_energy)
{
    prof::Scope prof_scope(prof::Protocol);
    Tile &tl = *ctx_.tiles[c];
    L1Cache &l1 = is_ifetch ? tl.l1i : tl.l1d;
    CacheStats &cs = is_ifetch ? tl.stats.l1i : tl.stats.l1d;
    const LineAddr line = ctx_.addr.lineOf(addr);
    const std::uint32_t word = ctx_.addr.wordOf(addr);

    if (is_ifetch) {
        if (charge_fetch_energy)
            ctx_.energy.addL1iAccess();
    } else {
        ctx_.energy.addL1dAccess();
    }
    if (is_write)
        ++cs.stores;
    else
        ++cs.loads;

    auto e = [&] {
        prof::Scope cache_scope(prof::Cache);
        return l1.find(line);
    }();
    const bool writable = e &&
                          (e.meta().state == L1State::Exclusive ||
                           e.meta().state == L1State::Modified);
    if (e && (!is_write || writable)) {
        // L1 hit. Writes to an E copy silently upgrade to M.
        if (is_write) {
            e.meta().state = L1State::Modified;
            const std::uint64_t v = ctx_.mem.nextValue(c);
            e.words()[word] = v;
            ctx_.mem.write(addr, v);
        } else {
            ctx_.mem.checkRead(addr, e.words()[word]);
        }
        e.setLastAccess(tl.now);
        if (e.meta().privateUtil < kPrivateUtilCap)
            ++e.meta().privateUtil;
        tl.stats.latency.compute += ctx_.cfg.l1Latency;
        tl.now += ctx_.cfg.l1Latency;
        return;
    }

    const bool upgrade = e &&
                         e.meta().state == L1State::Shared && is_write;
    if (!is_ifetch) {
        tl.stats.misses.record(
            tl.missTracker.classify(line, is_write, upgrade));
    }
    if (is_write)
        ++cs.storeMisses;
    else
        ++cs.loadMisses;

    // L1 set information communicated with the miss (§3.2/§3.3).
    const L1SetHint hint{l1.hasInvalidWay(line), l1.minLastAccess(line)};
    dir_->request(c, addr, is_write, is_ifetch, upgrade, hint);
}

bool
BaseL1Controller::touchResidentIfetch(CoreId c, Addr addr)
{
    Tile &tl = *ctx_.tiles[c];
    auto e = tl.l1i.find(ctx_.addr.lineOf(addr));
    if (!e)
        return false;
    e.setLastAccess(tl.now);
    if (e.meta().privateUtil < kPrivateUtilCap)
        ++e.meta().privateUtil;
    ++tl.stats.l1i.loads;
    return true;
}

L1Cache::Entry
BaseL1Controller::fill(CoreId c, bool is_ifetch, LineAddr line,
                       const std::uint64_t *words, L1State st, Cycle t)
{
    Tile &tl = *ctx_.tiles[c];
    L1Cache &l1 = is_ifetch ? tl.l1i : tl.l1d;
    auto victim = [&] {
        prof::Scope cache_scope(prof::Cache);
        return l1.victimFor(line);
    }();
    if (victim.valid())
        evict(c, is_ifetch, victim, t);

    victim.setValid(true);
    victim.setTag(line);
    victim.setLastAccess(t);
    victim.meta().state = st;
    victim.meta().privateUtil = 1; // §3.2: initialized to 1 on fill
    victim.fillWords(words);
    if (is_ifetch) {
        ++tl.stats.l1i.fills;
        ctx_.energy.addL1iFill();
    } else {
        ++tl.stats.l1d.fills;
        ctx_.energy.addL1dFill();
    }
    return victim;
}

void
BaseL1Controller::applyUpgrade(CoreId c, bool is_ifetch, LineAddr line,
                               std::uint32_t word, std::uint64_t val)
{
    Tile &tl = *ctx_.tiles[c];
    L1Cache &l1 = is_ifetch ? tl.l1i : tl.l1d;
    auto le = l1.find(line);
    if (!le)
        panic("upgrade requester lost its line");
    le.meta().state = L1State::Modified;
    le.words()[word] = val;
    le.setLastAccess(tl.now);
    if (le.meta().privateUtil < kPrivateUtilCap)
        ++le.meta().privateUtil;
}

void
BaseL1Controller::evict(CoreId c, bool is_ifetch, L1Cache::Entry victim,
                        Cycle t)
{
    Tile &tl = *ctx_.tiles[c];
    const LineAddr line = victim.tag();
    const std::uint32_t util = victim.meta().privateUtil;
    const bool was_m = victim.meta().state == L1State::Modified;

    const CoreId home = dir_->homeOf(line, c);
    ctx_.stats.evictionUtil.record(util);
    if (!is_ifetch)
        tl.missTracker.onEviction(line);
    (is_ifetch ? tl.stats.l1i : tl.stats.l1d).evictions++;

    // The core may still hold the line in its other L1 (a line both
    // ifetched and read as data); the directory must then keep
    // tracking it as a holder.
    const L1Cache &other = is_ifetch ? tl.l1d : tl.l1i;
    const bool still_holds = static_cast<bool>(other.find(line));

    // Eviction notice (fire-and-forget): the utilization counter rides
    // in the header (§3.6); a dirty line carries the data.
    Message notice{MsgKind::EvictNotice, c, home,
                   was_m ? MsgPayload::Line : MsgPayload::None};
    ctx_.net.send(notice, t);

    // The victim slot is overwritten only after the notice completes,
    // so handing its arena slice down by pointer is safe.
    dir_->evictionNotice(home, c, line, was_m, victim.words(), util,
                         still_holds);
}

DropResult
BaseL1Controller::dropCopy(CoreId s, LineAddr line, L2Cache::Entry entry,
                           bool l2_eviction)
{
    // Cross-tile reach: the engine must settle core s's in-flight
    // local work before this transaction reads/kills its copies.
    if (ctx_.touch)
        ctx_.touch->onCrossTileTouch(s);

    Tile &st = *ctx_.tiles[s];
    DropResult res{};
    bool found = false;
    // A core can hold the same line in both its L1-D and L1-I (e.g.
    // an instruction line also read as data). The directory tracks
    // one holder entry per core, so a single invalidation must kill
    // every copy the core has.
    for (const bool is_i : {false, true}) {
        L1Cache *l1 = is_i ? &st.l1i : &st.l1d;
        auto e = l1->find(line);
        if (!e)
            continue;
        found = true;

        const std::uint32_t util = e.meta().privateUtil;
        const bool was_m = e.meta().state == L1State::Modified;
        if (was_m) {
            entry.fillWords(e.words());
            entry.meta().dirty = true;
            ++ctx_.stats.protocol.syncWritebacks;
        }

        ctx_.stats.invalidationUtil.record(util);
        if (!is_i) {
            if (l2_eviction)
                st.missTracker.onEviction(line); // inclusive capacity
            else
                st.missTracker.onInvalidation(line);
        }

        l1->invalidate(e);
        if (is_i) {
            ++st.stats.l1i.invalidationsRecv;
            ctx_.energy.addL1iTagOnly();
        } else {
            ++st.stats.l1d.invalidationsRecv;
            ctx_.energy.addL1dTagOnly();
        }
        res.util += util;
        res.wasModified |= was_m;
    }
    if (!found)
        panic("holder oracle mismatch: core %u has no copy of line"
              " %llx", s, static_cast<unsigned long long>(line));
    return res;
}

bool
BaseL1Controller::downgradeCopy(CoreId owner, L2Cache::Entry entry)
{
    // Cross-tile reach (see dropCopy): a downgrade turns the owner's
    // E/M copy into S, changing the write-hit outcome of its later
    // accesses — the engine must settle and re-scan the owner.
    if (ctx_.touch)
        ctx_.touch->onCrossTileTouch(owner);

    Tile &ot = *ctx_.tiles[owner];
    auto e = ot.l1d.find(entry.tag());
    if (!e)
        e = ot.l1i.find(entry.tag());
    if (!e)
        panic("owner oracle mismatch on line %llx",
              static_cast<unsigned long long>(entry.tag()));

    const bool was_m = e.meta().state == L1State::Modified;
    if (was_m) {
        entry.fillWords(e.words());
        entry.meta().dirty = true;
        ctx_.energy.addL2Line();
    }
    e.meta().state = L1State::Shared; // downgrade; owner keeps its copy
    ctx_.energy.addL1dAccess();
    return was_m;
}

bool
BaseL1Controller::dropOtherCopy(CoreId c, bool is_ifetch, LineAddr line)
{
    Tile &tl = *ctx_.tiles[c];
    L1Cache &other = is_ifetch ? tl.l1d : tl.l1i;
    auto e = other.find(line);
    if (!e)
        return false;
    if (e.meta().state == L1State::Modified)
        panic("stale dual copy of line %llx is Modified",
              static_cast<unsigned long long>(line));
    other.invalidate(e);
    if (is_ifetch)
        ctx_.energy.addL1dTagOnly();
    else
        ctx_.energy.addL1iTagOnly();
    return true;
}

// ---------------------------------------------------------------------------
// BaseDirectoryController
// ---------------------------------------------------------------------------

BaseDirectoryController::BaseDirectoryController(
    const ProtocolContext &ctx)
    : ctx_(ctx), classifier_(LocalityClassifier::create(ctx.cfg))
{}

CoreId
BaseDirectoryController::homeOf(LineAddr line, CoreId requester) const
{
    const auto *rec = ctx_.pageTable.lookup(ctx_.addr.pageOfLine(line));
    if (rec == nullptr)
        panic("home lookup before page classification (line %llx)",
              static_cast<unsigned long long>(line));
    return ctx_.placement.home(line, *rec, requester);
}

L2Cache::Entry
BaseDirectoryController::l2FindOrFill(CoreId home, LineAddr line,
                                      Cycle t_arr, Cycle &t_ready,
                                      Cycle &waiting, Cycle &offchip)
{
    prof::Scope cache_scope(prof::Cache);
    Tile &ht = *ctx_.tiles[home];
    if (auto e = ht.l2.find(line)) {
        const Cycle t2 = std::max(t_arr, e.meta().busyUntil);
        waiting = t2 - t_arr;
        offchip = 0;
        t_ready = t2 + ctx_.cfg.l2Latency;
        return e;
    }

    // L2 miss: fetch the line from DRAM through the line's memory
    // controller, then install it (evicting an L2 victim if needed).
    waiting = 0;
    const Cycle t_tag = t_arr + ctx_.cfg.l2Latency;
    ctx_.energy.addL2TagOnly();
    const CoreId ctrl = ctx_.dram.controllerTile(line);
    Message fetch{MsgKind::DramFetchReq, home, ctrl, MsgPayload::None};
    const Cycle t_req = ctx_.net.send(fetch, t_tag);
    const Cycle t_data = ctx_.dram.access(line, t_req);
    Message data{MsgKind::DramFetchData, ctrl, home, MsgPayload::Line};
    const Cycle t_back = ctx_.net.send(data, t_data);
    offchip = t_back - t_tag;
    ++ctx_.stats.protocol.dramFetches;

    auto victim = ht.l2.victimFor(line);
    if (victim.valid())
        l2Evict(home, victim, t_back);

    victim.setValid(true);
    victim.setTag(line);
    victim.setLastAccess(t_back);
    victim.meta().dstate = DirState::Uncached;
    victim.meta().owner = kInvalidCore;
    victim.meta().holders.clear();
    if (victim.meta().cls) {
        // Refill of a previously used slot: reset the classifier
        // state and sharer list in place — same values a fresh
        // makeState()/makeSharers() would produce, no allocation.
        classifier_->resetState(*victim.meta().cls);
        victim.meta().sharers.clear();
    } else {
        victim.meta().sharers = makeSharers();
        victim.meta().cls = classifier_->makeState();
    }
    victim.meta().busyUntil = t_back;
    victim.meta().dirty = false;
    ctx_.dram.readLine(line, victim.words());
    ctx_.energy.addL2Line(); // fill write
    ++ctx_.stats.l2.fills;

    t_ready = t_back;
    return victim;
}

void
BaseDirectoryController::applySoftFaults(CoreId c, CoreId home,
                                         LineAddr line,
                                         L2Cache::Entry entry, Cycle t,
                                         Cycle &corr, Cycle &scrub)
{
    FaultInjector &inj = *ctx_.fault;
    const FaultPlan &plan = inj.plan();
    const std::uint32_t line_bits = ctx_.cfg.lineSize * 8;

    // ---- Requester's resident L1 image (if any) -----------------------
    Tile &rt = *ctx_.tiles[c];
    L1Cache::Entry l1e = rt.l1d.find(line);
    if (!l1e)
        l1e = rt.l1i.find(line);
    if (l1e && l1e.valid()) {
        const SoftFault f = inj.rollSoft(FaultUnit::L1Data, line, t);
        if (f != SoftFault::None && plan.protectL1) {
            ctx_.energy.addL1dAccess();
            if (f == SoftFault::Single) {
                inj.noteCorrected();
                corr += plan.eccCorrectLatency;
            } else if (l1e.meta().state == L1State::Modified) {
                // The only up-to-date copy is gone.
                inj.noteDetected();
                inj.unrecoverable("L1 Modified-line double-bit", line);
            } else {
                // Clean copy: discard and refill from the home slice,
                // which this very transaction has open.
                inj.noteDetected();
                inj.noteScrub();
                l1e.fillWords(entry.words());
                scrub += ctx_.cfg.l2Latency;
                ctx_.energy.addL2Line();
            }
        } else if (f != SoftFault::None) {
            // Unprotected: a real flip the functional oracle must
            // catch when the word is next read or written back.
            const std::uint32_t b = inj.strikeBit(line, t, line_bits);
            l1e.words()[b / 64] ^= std::uint64_t{1} << (b % 64);
            inj.noteSilent();
        }
    }

    // ---- Home slice's L2 line data ------------------------------------
    {
        const SoftFault f = inj.rollSoft(FaultUnit::L2Data, line, t);
        if (f != SoftFault::None && plan.protectL2) {
            if (f == SoftFault::Single) {
                inj.noteCorrected();
                corr += plan.eccCorrectLatency;
                ctx_.energy.addL2Word();
            } else if (entry.meta().dirty) {
                // DRAM has a stale image; the dirty data is lost.
                inj.noteDetected();
                inj.unrecoverable("L2 dirty-line double-bit", line);
            } else {
                // Clean line: scrub from DRAM through the line's
                // memory controller (same traffic as an L2 miss fill;
                // the data already matches DRAM, so no refill write to
                // the functional image is needed).
                inj.noteDetected();
                inj.noteScrub();
                const CoreId ctrl = ctx_.dram.controllerTile(line);
                Message fetch{MsgKind::DramFetchReq, home, ctrl,
                              MsgPayload::None};
                const Cycle t_req = ctx_.net.send(fetch, t);
                const Cycle t_data = ctx_.dram.access(line, t_req);
                Message data{MsgKind::DramFetchData, ctrl, home,
                             MsgPayload::Line};
                const Cycle t_back = ctx_.net.send(data, t_data);
                scrub += t_back - t;
                ++ctx_.stats.protocol.dramFetches;
                ctx_.energy.addL2Line();
            }
        } else if (f != SoftFault::None) {
            const std::uint32_t b = inj.strikeBit(line, t, line_bits);
            entry.words()[b / 64] ^= std::uint64_t{1} << (b % 64);
            inj.noteSilent();
        }
    }

    // ---- Directory metadata (SharerList / L2Meta) ---------------------
    {
        const SoftFault f = inj.rollSoft(FaultUnit::DirMeta, line, t);
        if (f != SoftFault::None && plan.protectDir) {
            ctx_.energy.addDirAccess();
            if (f == SoftFault::Single) {
                inj.noteCorrected();
                corr += plan.eccCorrectLatency;
            } else {
                // Sharer tracking cannot be rebuilt from any other
                // on-chip structure.
                inj.noteDetected();
                inj.unrecoverable("directory metadata double-bit",
                                  line);
            }
        } else if (f != SoftFault::None) {
            // Unprotected: lose one tracked sharer for real — the
            // SharerList diverges from the holder oracle, which the
            // invariant checker (verify/invariants.hh) reports.
            const HolderVec &h = entry.meta().holders;
            if (h.size() > 0) {
                const CoreId victim =
                    h[inj.strikeBit(line, t, h.size())];
                entry.meta().sharers.remove(victim);
                inj.noteSilent();
            }
        }
    }
}

void
BaseDirectoryController::request(CoreId c, Addr addr, bool is_write,
                                 bool is_ifetch, bool upgrade,
                                 const L1SetHint &hint)
{
    prof::Scope prof_scope(prof::Protocol);
    // Engine guard: a directory transaction must only ever run in a
    // serial phase (a mispredicted parallel-phase miss panics here
    // before it can race on shared directory/network state).
    if (ctx_.touch)
        ctx_.touch->onDirectoryRequest(c);

    Tile &rt = *ctx_.tiles[c];
    const LineAddr line = ctx_.addr.lineOf(addr);
    const std::uint32_t word = ctx_.addr.wordOf(addr);

    // R-NUCA classification and home lookup.
    const auto res =
        ctx_.pageTable.access(ctx_.addr.pageOf(addr), c, is_ifetch);
    if (res.rehomed && ctx_.placement.enabled())
        flushPage(res.oldOwner, ctx_.addr.pageOf(addr), rt.now);
    const CoreId home = ctx_.placement.home(line, res.record, c);

    const Cycle t_inj = rt.now + ctx_.cfg.l1Latency;
    rt.stats.latency.compute += ctx_.cfg.l1Latency;

    // Requests always carry the line offset; writes carry the word.
    Message req{is_write
                    ? (upgrade ? MsgKind::UpgradeReq : MsgKind::ExReq)
                    : MsgKind::ShReq,
                c, home,
                is_write ? MsgPayload::Word : MsgPayload::None};
    const Cycle t1 = ctx_.net.send(req, t_inj);

    Cycle t_ready = 0, waiting = 0, offchip = 0;
    L2Cache::Entry entry =
        l2FindOrFill(home, line, t1, t_ready, waiting, offchip);
    entry.setLastAccess(t_ready);
    ctx_.energy.addDirAccess();

    if (ctx_.fault != nullptr) {
        // Soft-error strikes against the structures this transaction
        // touches. Corrections extend the per-line waiting window,
        // scrub refetches bill as off-chip time; bumping t_ready keeps
        // the telescoped latency attribution below exact.
        Cycle corr = 0, scrub = 0;
        applySoftFaults(c, home, line, entry, t_ready, corr, scrub);
        waiting += corr;
        offchip += scrub;
        t_ready += corr + scrub;
    }

    const Mode mode = upgrade
                          ? Mode::Private
                          : classifier_->classify(*entry.meta().cls, c);
    const RemoteAccessContext rctx{t_ready, hint.hasInvalidWay,
                                   hint.minLastAccess};

    Cycle t_shar = t_ready;
    bool granted = false;

    if (is_write) {
        const std::uint64_t val = ctx_.mem.nextValue(c);
        // A write resets the remote utilization of all other remote
        // sharers (§3.2) and invalidates all private sharers.
        classifier_->onWriteByOther(*entry.meta().cls, c);
        t_shar = invalidateHolders(home, entry, c, t_ready);

        bool promote = false;
        if (mode == Mode::Remote) {
            promote =
                classifier_->onRemoteAccess(*entry.meta().cls, c, rctx);
            if (promote)
                ++ctx_.stats.protocol.promotions;
        }

        if (mode == Mode::Private || promote) {
            granted = true;
            if (upgrade) {
                l1_->applyUpgrade(c, is_ifetch, line, word, val);
                ++ctx_.stats.protocol.upgradeGrants;
                ctx_.energy.addL2TagOnly();
            } else {
                L1Cache::Entry fe =
                    l1_->fill(c, is_ifetch, line, entry.words(),
                              L1State::Modified, t_shar);
                fe.words()[word] = val;
                ++ctx_.stats.protocol.privateWriteGrants;
                ctx_.energy.addL2Line();
                ++ctx_.stats.l2.loads;
            }
            // A dual-copy line leaves a stale copy in the requester's
            // other L1 after the write: drop it locally.
            l1_->dropOtherCopy(c, is_ifetch, line);
            ctx_.mem.write(addr, val);
            entry.meta().holders.insert(c); // set semantics: no dup
            entry.meta().sharers.clear();
            entry.meta().sharers.add(c);
            entry.meta().dstate = DirState::Exclusive;
            entry.meta().owner = c;
            classifier_->onPrivateGrant(*entry.meta().cls, c, t_ready);
        } else {
            // Remote word write: stored at the L2 home (§3.2).
            entry.words()[word] = val;
            entry.meta().dirty = true;
            ctx_.mem.write(addr, val);
            ++ctx_.stats.protocol.remoteWrites;
            ++ctx_.stats.l2.stores;
            ctx_.energy.addL2Word();
            if (!is_ifetch)
                rt.missTracker.onRemoteAccess(line);
            // A remote writer keeps no private copy: its stale copy
            // in the other L1 (dual-copy line) must go too.
            if (l1_->dropOtherCopy(c, is_ifetch, line)) {
                if (entry.meta().holders.erase(c))
                    entry.meta().sharers.remove(c);
                if (entry.meta().holders.empty()) {
                    entry.meta().dstate = DirState::Uncached;
                    entry.meta().owner = kInvalidCore;
                }
            }
        }
    } else {
        bool promote = false;
        if (mode == Mode::Remote) {
            promote =
                classifier_->onRemoteAccess(*entry.meta().cls, c, rctx);
            if (promote)
                ++ctx_.stats.protocol.promotions;
        }

        if (mode == Mode::Private || promote) {
            granted = true;
            if (entry.meta().dstate == DirState::Exclusive) {
                if (entry.meta().owner != c) {
                    t_shar = syncWriteback(home, entry, t_ready);
                } else {
                    // The requester itself owns the line through its
                    // other L1 (dual-copy line): merge its M data
                    // locally — same tile, no network round trip —
                    // before filling from the L2 copy.
                    l1_->downgradeCopy(c, entry);
                    entry.meta().dstate = DirState::Shared;
                    entry.meta().owner = kInvalidCore;
                }
            }
            const L1State st = entry.meta().holders.empty()
                                   ? L1State::Exclusive
                                   : L1State::Shared;
            l1_->fill(c, is_ifetch, line, entry.words(), st, t_shar);
            ctx_.mem.checkRead(addr, entry.words()[word]);
            // Gate the sharer count on *new* holdership: an ACKwise
            // list in overflow mode counts blindly, and a dual-copy
            // core is one sharer, not two.
            if (entry.meta().holders.insert(c))
                entry.meta().sharers.add(c);
            if (st == L1State::Exclusive) {
                entry.meta().dstate = DirState::Exclusive;
                entry.meta().owner = c;
            } else {
                entry.meta().dstate = DirState::Shared;
                entry.meta().owner = kInvalidCore;
            }
            classifier_->onPrivateGrant(*entry.meta().cls, c, t_ready);
            ++ctx_.stats.protocol.privateReadGrants;
            ctx_.energy.addL2Line();
            ++ctx_.stats.l2.loads;
        } else {
            // Remote word read at the L2 home.
            if (entry.meta().dstate == DirState::Exclusive)
                t_shar = syncWriteback(home, entry, t_ready);
            ctx_.mem.checkRead(addr, entry.words()[word]);
            ++ctx_.stats.protocol.remoteReads;
            ++ctx_.stats.l2.loads;
            ctx_.energy.addL2Word();
            if (!is_ifetch)
                rt.missTracker.onRemoteAccess(line);
        }
    }

    // Reply: full line for a grant (header only for an upgrade), one
    // word for a remote read, bare ack for a remote write.
    Message reply{MsgKind::LineGrant, home, c, MsgPayload::None};
    if (granted) {
        reply.kind = upgrade ? MsgKind::UpgradeGrant : MsgKind::LineGrant;
        reply.payload =
            upgrade ? MsgPayload::None : MsgPayload::Line;
    } else {
        reply.kind = is_write ? MsgKind::WordAck : MsgKind::WordData;
        reply.payload =
            is_write ? MsgPayload::None : MsgPayload::Word;
    }
    const Cycle t5 = ctx_.net.send(reply, t_shar);
    entry.meta().busyUntil = t_shar;

    // Completion-time attribution (§4.4); the stage times telescope so
    // the components sum exactly to the transaction latency.
    rt.stats.latency.l1ToL2 +=
        (t1 - t_inj) + ctx_.cfg.l2Latency + (t5 - t_shar);
    rt.stats.latency.l2Waiting += waiting;
    rt.stats.latency.offChip += offchip;
    rt.stats.latency.l2Sharers += t_shar - t_ready;
    rt.now = t5;
}

Cycle
BaseDirectoryController::dropAndAck(CoreId s, CoreId home,
                                    L2Cache::Entry entry,
                                    bool l2_eviction, Cycle t_arr)
{
    const DropResult dr = l1_->dropCopy(s, entry.tag(), entry,
                                        l2_eviction);
    if (!l2_eviction) {
        // The locality state dies with an L2 eviction, so only a
        // protocol invalidation classifies the removal (§3.2).
        const Mode m = classifier_->onPrivateRemoval(
            *entry.meta().cls, s, dr.util, RemovalKind::Invalidation);
        if (m == Mode::Remote)
            ++ctx_.stats.protocol.demotions;
    }
    // Ack: header, plus the line for an M write-back.
    Message ack{MsgKind::InvalAck, s, home,
                dr.wasModified ? MsgPayload::Line : MsgPayload::None};
    return ctx_.net.send(ack, t_arr + 1);
}

Cycle
BaseDirectoryController::fanOutInvalidations(CoreId home,
                                             L2Cache::Entry entry,
                                             const HolderVec &targets,
                                             Cycle t)
{
    Cycle t_end = t;
    for (const CoreId s : targets) {
        Message inval{MsgKind::InvalReq, home, s, MsgPayload::None};
        const Cycle t_arr = ctx_.net.send(inval, t);
        ++ctx_.stats.protocol.invalidationsSent;
        t_end = std::max(t_end, dropAndAck(s, home, entry, false, t_arr));
    }
    return t_end;
}

Cycle
BaseDirectoryController::invalidateHolders(CoreId home,
                                           L2Cache::Entry entry,
                                           CoreId except, Cycle t)
{
    // Snapshot the holder set into the reusable scratch (grant order
    // preserved — fan-out order is modeled timing).
    invalTargets_ = entry.meta().holders;
    invalTargets_.erase(except);
    if (invalTargets_.empty())
        return t;

    const Cycle t_end = fanOutInvalidations(home, entry, invalTargets_,
                                            t);

    for (const CoreId s : invalTargets_)
        entry.meta().sharers.remove(s);
    const bool except_held = entry.meta().holders.contains(except);
    entry.meta().holders.clear();
    if (except_held)
        entry.meta().holders.insert(except);

    if (entry.meta().holders.empty()) {
        entry.meta().dstate = DirState::Uncached;
        entry.meta().owner = kInvalidCore;
    } else {
        // Only the requester's (upgrade) copy remains, in state S; the
        // caller promotes it to Exclusive.
        entry.meta().dstate = DirState::Shared;
        entry.meta().owner = kInvalidCore;
    }
    return t_end;
}

Cycle
BaseDirectoryController::syncWriteback(CoreId home, L2Cache::Entry entry,
                                       Cycle t)
{
    const CoreId o = entry.meta().owner;
    if (o == kInvalidCore)
        panic("syncWriteback without an owner");

    Message req{MsgKind::DowngradeReq, home, o, MsgPayload::None};
    const Cycle t_req = ctx_.net.send(req, t);
    const bool was_m = l1_->downgradeCopy(o, entry);
    Message ack{MsgKind::DowngradeAck, o, home,
                was_m ? MsgPayload::Line : MsgPayload::None};
    const Cycle t_ack = ctx_.net.send(ack, t_req + 1);

    entry.meta().dstate = DirState::Shared;
    entry.meta().owner = kInvalidCore;
    ++ctx_.stats.protocol.syncWritebacks;
    return t_ack;
}

void
BaseDirectoryController::evictionNotice(CoreId home, CoreId c,
                                        LineAddr line, bool was_modified,
                                        const std::uint64_t *words,
                                        std::uint32_t util,
                                        bool still_holds)
{
    auto he = ctx_.tiles[home]->l2.find(line);
    if (!he)
        panic("inclusion violation: L1 evict of line %llx not in home"
              " %u", static_cast<unsigned long long>(line), home);

    if (!still_holds) {
        he.meta().holders.erase(c);
        he.meta().sharers.remove(c);
    }
    if (was_modified) {
        he.fillWords(words);
        he.meta().dirty = true;
        ++ctx_.stats.protocol.dirtyWritebacks;
        ctx_.energy.addL2Line();
    } else {
        ctx_.energy.addL2TagOnly();
    }
    ctx_.energy.addDirAccess();
    if (!still_holds) {
        if (he.meta().owner == c)
            he.meta().owner = kInvalidCore;
        if (he.meta().holders.empty()) {
            he.meta().dstate = DirState::Uncached;
            he.meta().owner = kInvalidCore;
        } else if (he.meta().owner == kInvalidCore) {
            he.meta().dstate = DirState::Shared;
        }
    }

    const Mode m = classifier_->onPrivateRemoval(
        *he.meta().cls, c, util, RemovalKind::Eviction);
    if (m == Mode::Remote)
        ++ctx_.stats.protocol.demotions;
}

void
BaseDirectoryController::l2Evict(CoreId home, L2Cache::Entry victim,
                                 Cycle t)
{
    const LineAddr line = victim.tag();
    // Snapshot into the eviction scratch: dropAndAck below consults
    // the entry while the loop runs, and the holder set must not be
    // mutated mid-iteration.
    evictTargets_ = victim.meta().holders;
    for (const CoreId s : evictTargets_) {
        Message inval{MsgKind::InvalReq, home, s, MsgPayload::None};
        const Cycle t_arr = ctx_.net.send(inval, t);
        ++ctx_.stats.protocol.invalidationsSent;
        dropAndAck(s, home, victim, true, t_arr);
    }
    victim.meta().holders.clear();
    victim.meta().sharers.clear();

    if (victim.meta().dirty) {
        ctx_.dram.writeLine(line, victim.words());
        const CoreId ctrl = ctx_.dram.controllerTile(line);
        Message wb{MsgKind::DramWriteback, home, ctrl,
                   MsgPayload::Line};
        const Cycle tw = ctx_.net.send(wb, t);
        ctx_.dram.access(line, tw);
        ++ctx_.stats.protocol.dramWritebacks;
        ctx_.energy.addL2Line();
    }
    ++ctx_.stats.l2.evictions;
    ++ctx_.stats.protocol.l2Evictions;
    ctx_.tiles[home]->l2.invalidate(victim);
}

void
BaseDirectoryController::flushPage(CoreId old_home, PageAddr page,
                                   Cycle t)
{
    const std::uint32_t lines_per_page = ctx_.addr.linesPerPage();
    const LineAddr first = ctx_.addr.firstLineOf(page);
    Tile &ht = *ctx_.tiles[old_home];
    for (std::uint32_t i = 0; i < lines_per_page; ++i) {
        if (auto e = ht.l2.find(first + i)) {
            l2Evict(old_home, e, t);
            ++ctx_.stats.protocol.rehomeFlushes;
        }
    }
}

} // namespace lacc
