/**
 * @file
 * Directory-entry metadata of an L2 slice line (Fig 6/7): the
 * directory-visible MESI summary state, the protocol's SharerList,
 * the simulator's ground-truth holder oracle, and the per-line
 * locality-classifier state. Owned and mutated exclusively by the
 * protocol layer's DirectoryController; system/Tile merely embeds the
 * L2Cache array.
 */

#ifndef LACC_PROTOCOL_DIR_ENTRY_HH
#define LACC_PROTOCOL_DIR_ENTRY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/set_assoc.hh"
#include "core/classifier.hh"
#include "protocol/core_vec.hh"
#include "protocol/sharer_list.hh"
#include "sim/types.hh"

namespace lacc {

/** Directory-visible state of an L2 line. */
enum class DirState : std::uint8_t {
    Uncached,  //!< no L1 holds a copy
    Shared,    //!< >= 1 read-only L1 copies
    Exclusive, //!< one L1 holds an E or M copy (owner)
};

/** Human-readable name for a DirState. */
inline const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::Uncached: return "U";
      case DirState::Shared: return "S";
      case DirState::Exclusive: return "E";
      default: return "?";
    }
}

/**
 * Per-line metadata of an L2 slice: directory entry (Fig 6/7) plus
 * simulator bookkeeping.
 */
struct L2Meta
{
    DirState dstate = DirState::Uncached;
    CoreId owner = kInvalidCore;   //!< valid iff dstate == Exclusive
    SharerList sharers;            //!< protocol sharer tracking
    /**
     * Ground-truth holder identities (which L1s hold a copy). The
     * protocol's SharerList may hide identities in ACKwise overflow
     * mode; the simulator uses this oracle for invalidation *timing*
     * (acks physically come from the actual holders) while protocol
     * decisions (unicast vs broadcast, ack counts) use the SharerList.
     * Kept in grant order — invalidation fan-out order is part of the
     * modeled timing (see protocol/core_vec.hh).
     */
    HolderVec holders;
    std::unique_ptr<LineClassifierState> cls; //!< locality records
    Cycle busyUntil = 0;           //!< per-line serialization window
    bool dirty = false;            //!< L2 copy newer than DRAM
};

/**
 * invalidate() reset for the L2 directory meta (found by ADL from
 * SetAssocCache::invalidate): protocol state is cleared, but the
 * classifier-state allocation and the sharer-list organization
 * survive — the refill path (l2FindOrFill) resets their contents in
 * place, so steady-state L2 slot churn performs no heap traffic.
 * The stale classifier contents are never read: every consumer goes
 * through a valid entry, and a refill resets before use.
 */
inline void
resetCacheMeta(L2Meta &m)
{
    m.dstate = DirState::Uncached;
    m.owner = kInvalidCore;
    m.sharers.clear();
    m.holders.clear();
    m.busyUntil = 0;
    m.dirty = false;
}

/** L2 slice array: hashed set index (see SetAssocCache). */
using L2Cache = SetAssocCache<L2Meta, true>;

} // namespace lacc

#endif // LACC_PROTOCOL_DIR_ENTRY_HH
