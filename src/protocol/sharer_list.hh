/**
 * @file
 * Directory sharer tracking: ACKwise_p limited directory and a
 * full-map bit-vector baseline (§3.1).
 *
 * ACKwise_p keeps p hardware pointers. While the sharer count is <= p
 * it behaves like a full-map directory (exact identities). When the
 * count exceeds p it stops tracking identities and only maintains the
 * number of sharers; exclusive requests must then broadcast the
 * invalidation, but acknowledgements are expected only from the actual
 * sharers (the tracked count). Identities cannot be recovered until
 * the line is fully invalidated.
 */

#ifndef LACC_PROTOCOL_SHARER_LIST_HH
#define LACC_PROTOCOL_SHARER_LIST_HH

#include <cstdint>
#include <vector>

#include "protocol/core_vec.hh"
#include "sim/types.hh"

namespace lacc {

/** Sharer-tracking metadata of one directory entry. */
class SharerList
{
  public:
    /** Construct an ACKwise list with @p pointers slots. */
    static SharerList
    makeAckwise(std::uint32_t pointers)
    {
        SharerList s;
        s.fullMap_ = false;
        s.capacity_ = pointers;
        return s;
    }

    /** Construct a full-map list over @p num_cores cores. */
    static SharerList
    makeFullMap(std::uint32_t num_cores)
    {
        SharerList s;
        s.fullMap_ = true;
        s.bits_.assign((num_cores + 63) / 64, 0);
        return s;
    }

    SharerList() = default;

    /** Add a sharer (idempotent). */
    void add(CoreId core);

    /**
     * Remove a sharer (eviction/invalidation ack). In ACKwise overflow
     * mode an untracked core only decrements the count.
     */
    void remove(CoreId core);

    /** Drop all sharers (after a full invalidation). */
    void clear();

    /** Number of sharers. */
    std::uint32_t count() const { return count_; }

    /**
     * True when identities are no longer tracked and an exclusive
     * request requires a broadcast invalidation. Always false for a
     * full-map list.
     */
    bool overflowed() const { return overflowed_; }

    /**
     * True if @p core is known to be a sharer. In ACKwise overflow
     * mode only the pointer-resident subset is known; this returns
     * false for untracked sharers (callers must consult overflowed()).
     */
    bool contains(CoreId core) const;

    /** Apply @p fn to each tracked sharer identity, id order. */
    template <typename F>
    void
    forEachTracked(F &&fn) const
    {
        if (fullMap_) {
            for (std::size_t w = 0; w < bits_.size(); ++w) {
                std::uint64_t word = bits_[w];
                while (word) {
                    const int b = __builtin_ctzll(word);
                    fn(static_cast<CoreId>(w * 64 + b));
                    word &= word - 1;
                }
            }
        } else {
            for (const CoreId p : pointers_)
                fn(p);
        }
    }

    /** Tracked identities as a vector (test helper). */
    std::vector<CoreId> tracked() const;

    /** True if constructed as full-map. */
    bool isFullMap() const { return fullMap_; }

  private:
    bool fullMap_ = false;
    bool overflowed_ = false;
    std::uint32_t count_ = 0;
    std::uint32_t capacity_ = 0;   //!< ACKwise slot count (the "p")
    SortedCoreVec pointers_;       //!< ACKwise-tracked identities
    std::vector<std::uint64_t> bits_; //!< full-map bit vector
};

} // namespace lacc

#endif // LACC_PROTOCOL_SHARER_LIST_HH
