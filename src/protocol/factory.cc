#include "protocol/factory.hh"

#include "protocol/fullmap.hh"
#include "protocol/lacc.hh"
#include "sim/config.hh"
#include "sim/log.hh"

namespace lacc {

namespace {

/**
 * The single registration point: adding a protocol means adding one
 * entry here (plus its DirectoryKind, if it needs a new one).
 */
struct ProtocolEntry
{
    const char *name;
    DirectoryKind kind;
    std::unique_ptr<CoherenceProtocol> (*make)(const ProtocolContext &);
};

const ProtocolEntry kProtocols[] = {
    {"lacc", DirectoryKind::Ackwise,
     [](const ProtocolContext &ctx) -> std::unique_ptr<CoherenceProtocol> {
         return std::make_unique<LaccProtocol>(ctx);
     }},
    {"fullmap", DirectoryKind::FullMap,
     [](const ProtocolContext &ctx) -> std::unique_ptr<CoherenceProtocol> {
         return std::make_unique<FullMapProtocol>(ctx);
     }},
};

const ProtocolEntry &
entryFor(const SystemConfig &cfg)
{
    for (const auto &e : kProtocols)
        if (e.kind == cfg.directoryKind)
            return e;
    panic("no protocol registered for DirectoryKind %d",
          static_cast<int>(cfg.directoryKind));
}

} // namespace

std::unique_ptr<CoherenceProtocol>
makeProtocol(const SystemConfig &cfg, const ProtocolContext &ctx)
{
    return entryFor(cfg).make(ctx);
}

const std::vector<std::string> &
protocolNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &e : kProtocols)
            out.emplace_back(e.name);
        return out;
    }();
    return names;
}

const char *
protocolNameFor(const SystemConfig &cfg)
{
    return entryFor(cfg).name;
}

void
applyProtocolName(SystemConfig &cfg, const std::string &name)
{
    for (const auto &e : kProtocols) {
        if (name == e.name) {
            cfg.directoryKind = e.kind;
            return;
        }
    }
    std::string known;
    for (const auto &e : kProtocols)
        known += (known.empty() ? "" : ", ") + std::string(e.name);
    fatal("unknown protocol '%s' (known: %s)", name.c_str(),
          known.c_str());
}

} // namespace lacc
