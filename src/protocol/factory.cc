#include "protocol/factory.hh"

#include "protocol/fullmap.hh"
#include "protocol/lacc.hh"
#include "sim/config.hh"
#include "sim/named_registry.hh"

namespace lacc {

namespace {

/**
 * The single registration point: adding a protocol means adding one
 * entry here (plus its DirectoryKind, if it needs a new one). Lookup
 * and diagnostics come from the shared named-registry helpers.
 */
struct ProtocolEntry
{
    const char *name;
    DirectoryKind kind;
    std::unique_ptr<CoherenceProtocol> (*make)(const ProtocolContext &);
};

const ProtocolEntry kProtocols[] = {
    {"lacc", DirectoryKind::Ackwise,
     [](const ProtocolContext &ctx) -> std::unique_ptr<CoherenceProtocol> {
         return std::make_unique<LaccProtocol>(ctx);
     }},
    {"fullmap", DirectoryKind::FullMap,
     [](const ProtocolContext &ctx) -> std::unique_ptr<CoherenceProtocol> {
         return std::make_unique<FullMapProtocol>(ctx);
     }},
};

} // namespace

std::unique_ptr<CoherenceProtocol>
makeProtocol(const SystemConfig &cfg, const ProtocolContext &ctx)
{
    return registry::entryForKind(kProtocols, cfg.directoryKind,
                                  "protocol")
        .make(ctx);
}

const std::vector<std::string> &
protocolNames()
{
    static const std::vector<std::string> names =
        registry::entryNames(kProtocols);
    return names;
}

const char *
protocolNameFor(const SystemConfig &cfg)
{
    return registry::entryForKind(kProtocols, cfg.directoryKind,
                                  "protocol")
        .name;
}

void
applyProtocolName(SystemConfig &cfg, const std::string &name)
{
    cfg.directoryKind =
        registry::entryForNameOrFatal(kProtocols, "protocol", name)
            .kind;
}

} // namespace lacc
