/**
 * @file
 * Shared controller machinery of the directory-based protocols.
 *
 * BaseL1Controller implements the private-cache side common to every
 * directory protocol in this repository; BaseDirectoryController
 * implements the home-slice state machine (miss transactions, L2
 * find-or-fill, sync write-backs, inclusive L2 evictions, R-NUCA
 * re-home flushes) and leaves two policy points to subclasses:
 *
 *  - makeSharers(): which SharerList organization a fresh directory
 *    entry gets (ACKwise_p pointers vs full-map bit vector);
 *  - fanOutInvalidations(): how an exclusive request reaches the
 *    current holders (per-sharer unicasts vs the ACKwise overflow
 *    broadcast of §3.1).
 *
 * The locality classifier (Sections 3.2-3.4) is owned and invoked
 * here, at the directory, exactly as in the paper.
 */

#ifndef LACC_PROTOCOL_BASE_HH
#define LACC_PROTOCOL_BASE_HH

#include <memory>
#include <vector>

#include "protocol/protocol.hh"

namespace lacc {

class BaseDirectoryController;

/** Private-cache controller shared by the directory protocols. */
class BaseL1Controller final : public L1Controller
{
  public:
    explicit BaseL1Controller(const ProtocolContext &ctx) : ctx_(ctx) {}

    /** Wire the directory side (factory responsibility). */
    void bind(DirectoryController &dir) { dir_ = &dir; }

    void access(CoreId c, Addr addr, bool is_write, bool is_ifetch,
                bool charge_fetch_energy = true) override;
    bool touchResidentIfetch(CoreId c, Addr addr) override;
    L1Cache::Entry fill(CoreId c, bool is_ifetch, LineAddr line,
                        const std::uint64_t *words, L1State st,
                        Cycle t) override;
    void applyUpgrade(CoreId c, bool is_ifetch, LineAddr line,
                      std::uint32_t word, std::uint64_t val) override;
    DropResult dropCopy(CoreId s, LineAddr line, L2Cache::Entry entry,
                        bool l2_eviction) override;
    bool downgradeCopy(CoreId owner, L2Cache::Entry entry) override;
    bool dropOtherCopy(CoreId c, bool is_ifetch, LineAddr line) override;

  private:
    /** Handle an L1 eviction: notify the home, classify (§3.2). */
    void evict(CoreId c, bool is_ifetch, L1Cache::Entry victim,
               Cycle t);

    ProtocolContext ctx_;
    DirectoryController *dir_ = nullptr;
};

/** Home-slice directory controller shared by the protocols. */
class BaseDirectoryController : public DirectoryController
{
  public:
    explicit BaseDirectoryController(const ProtocolContext &ctx);

    /** Wire the L1 side (factory responsibility). */
    void bind(L1Controller &l1) { l1_ = &l1; }

    void request(CoreId c, Addr addr, bool is_write, bool is_ifetch,
                 bool upgrade, const L1SetHint &hint) override;
    void evictionNotice(CoreId home, CoreId c, LineAddr line,
                        bool was_modified, const std::uint64_t *words,
                        std::uint32_t util, bool still_holds) override;
    CoreId homeOf(LineAddr line, CoreId requester) const override;
    LocalityClassifier &classifier() override { return *classifier_; }
    const LocalityClassifier &
    classifier() const override
    {
        return *classifier_;
    }

  protected:
    /** SharerList organization of a fresh directory entry. */
    virtual SharerList makeSharers() const = 0;

    /**
     * Deliver invalidations to @p targets and collect the acks.
     * The base implementation unicasts per sharer; ACKwise overrides
     * this with the overflow broadcast. @p targets aliases a scratch
     * member of this controller (no per-transaction allocation) and
     * stays valid for the duration of the call. @return time all acks
     * have been collected.
     */
    virtual Cycle fanOutInvalidations(CoreId home, L2Cache::Entry entry,
                                      const HolderVec &targets,
                                      Cycle t);

    /**
     * Drop @p s's copy (L1 side), consult the classifier (unless the
     * entry itself is dying to an L2 eviction), and send the ack.
     * @return ack arrival time at @p home.
     */
    Cycle dropAndAck(CoreId s, CoreId home, L2Cache::Entry entry,
                     bool l2_eviction, Cycle t_arr);

    /**
     * Invalidate all private holders except @p except; merges M data
     * into the L2 copy. @return time all acks have been collected.
     */
    Cycle invalidateHolders(CoreId home, L2Cache::Entry entry,
                            CoreId except, Cycle t);

    /**
     * Find the line in the home slice or fill it from DRAM.
     * Outputs the stage boundary times for attribution.
     */
    L2Cache::Entry l2FindOrFill(CoreId home, LineAddr line, Cycle t_arr,
                                Cycle &t_ready, Cycle &waiting,
                                Cycle &offchip);

    /** Downgrade the exclusive owner (read path): data to L2, owner
     * keeps an S copy. @return ack time. */
    Cycle syncWriteback(CoreId home, L2Cache::Entry entry, Cycle t);

    /**
     * Soft-error hook (fault/injector.hh), called once per directory
     * transaction when a fault plan is armed: rolls one strike each
     * against the requester's resident L1 copy, the home entry's L2
     * data, and the directory metadata. Protected structures recover
     * with honest charges — @p corr accumulates SECDED correction
     * latency (billed as L2 waiting), @p scrub accumulates
     * refetch-from-next-level latency (billed as off-chip) — while
     * unprotected structures suffer a *real* corruption for the
     * verification oracles to catch. Detected-but-unrecoverable
     * strikes throw RunAbort.
     */
    void applySoftFaults(CoreId c, CoreId home, LineAddr line,
                         L2Cache::Entry entry, Cycle t, Cycle &corr,
                         Cycle &scrub);

    /** Evict an L2 line: back-invalidate holders, write back. */
    void l2Evict(CoreId home, L2Cache::Entry victim, Cycle t);

    /** R-NUCA private->shared re-homing flush (§3.1). */
    void flushPage(CoreId old_home, PageAddr page, Cycle t);

    ProtocolContext ctx_;
    L1Controller *l1_ = nullptr;
    std::unique_ptr<LocalityClassifier> classifier_;

  private:
    /**
     * Reusable target-list scratch (invalidation fan-out / L2
     * eviction back-invalidation). Steady state is allocation-free:
     * the inline SmallCoreVec capacity covers typical sharer sets,
     * and a spilled copy reuses the spill vector's storage.
     * invalidateHolders and l2Evict never nest, but each gets its own
     * scratch so the snapshot survives holder-set mutation.
     */
    HolderVec invalTargets_;
    HolderVec evictTargets_;
};

} // namespace lacc

#endif // LACC_PROTOCOL_BASE_HH
