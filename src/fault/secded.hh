/**
 * @file
 * (72,64) Hamming SECDED code — the ECC model behind the soft-error
 * fault plans (fault/injector.hh).
 *
 * One 64-bit data word is protected by 8 check bits: 7 Hamming parity
 * bits (single-error correction) plus one overall parity bit (double-
 * error detection) — the standard DRAM/SRAM SECDED organization. The
 * simulator never stores codewords; protected structures charge the
 * *cost* of correction/scrub and keep their data architecturally
 * clean (see docs/ARCHITECTURE.md "Fault injection & recovery" for
 * why that preserves the zero-silent-corruption guarantee). This
 * module exists so the ECC claims rest on a real, unit-tested code
 * rather than on asserted constants: tests/test_fault.cc drives
 * encode/corrupt/decode over every single- and double-bit pattern.
 */

#ifndef LACC_FAULT_SECDED_HH
#define LACC_FAULT_SECDED_HH

#include <cstdint>

namespace lacc {

/** A (72,64) SECDED codeword: 64 data bits + 8 check bits. */
struct SecdedWord
{
    std::uint64_t data = 0;
    std::uint8_t check = 0; //!< bits 0-6: Hamming parity, bit 7: overall
};

/** Outcome of decoding a (possibly corrupted) codeword. */
enum class SecdedStatus : std::uint8_t {
    Clean,          //!< no error detected
    CorrectedData,  //!< single-bit error in the data, corrected
    CorrectedCheck, //!< single-bit error in a check bit, corrected
    DetectedDouble, //!< double-bit error: detected, uncorrectable
};

/** Decode result: status plus the (corrected) data word. */
struct SecdedDecode
{
    SecdedStatus status = SecdedStatus::Clean;
    std::uint64_t data = 0; //!< valid unless status == DetectedDouble
};

/** Encode @p data into a codeword. */
SecdedWord secdedEncode(std::uint64_t data);

/**
 * Decode @p w: detect and correct a single flipped bit (data or
 * check), detect any double flip. Triple and higher odd-weight error
 * patterns alias to single-bit corrections — the standard SECDED
 * limitation; the fault plans never inject them.
 */
SecdedDecode secdedDecode(const SecdedWord &w);

/**
 * Flip codeword bit @p bit in [0, 72): bits 0-63 address the data
 * word, bits 64-71 the check byte. Test/injection helper.
 */
void secdedFlip(SecdedWord &w, std::uint32_t bit);

} // namespace lacc

#endif // LACC_FAULT_SECDED_HH
