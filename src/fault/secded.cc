#include "fault/secded.hh"

namespace lacc {

namespace {

/**
 * Codeword positions 1..71 in the classic Hamming layout: parity bits
 * at the power-of-two positions {1,2,4,8,16,32,64}, data bits filling
 * the 64 remaining slots in increasing order. Parity values are chosen
 * so the XOR of the positions of all set bits is zero — then a single
 * flipped bit at position p yields syndrome p directly.
 */
constexpr bool
isPow2(std::uint32_t p)
{
    return (p & (p - 1)) == 0;
}

struct PositionTable
{
    std::uint32_t posOfData[64] = {};  //!< data bit -> codeword position
    std::int8_t dataOfPos[72] = {};    //!< position -> data bit or -1
};

PositionTable
buildTable()
{
    PositionTable t;
    for (std::uint32_t p = 0; p < 72; ++p)
        t.dataOfPos[p] = -1;
    std::uint32_t d = 0;
    for (std::uint32_t p = 3; p <= 71 && d < 64; ++p) {
        if (isPow2(p))
            continue;
        t.posOfData[d] = p;
        t.dataOfPos[p] = static_cast<std::int8_t>(d);
        ++d;
    }
    return t;
}

const PositionTable kTable = buildTable();

std::uint32_t
popcount64(std::uint64_t v)
{
    std::uint32_t n = 0;
    while (v != 0) {
        v &= v - 1;
        ++n;
    }
    return n;
}

/** XOR of the codeword positions of every set data bit. */
std::uint32_t
dataSyndrome(std::uint64_t data)
{
    std::uint32_t syn = 0;
    for (std::uint32_t i = 0; i < 64; ++i)
        if ((data >> i) & 1ull)
            syn ^= kTable.posOfData[i];
    return syn;
}

} // namespace

SecdedWord
secdedEncode(std::uint64_t data)
{
    SecdedWord w;
    w.data = data;
    const std::uint32_t syn = dataSyndrome(data);
    std::uint8_t check = 0;
    for (std::uint32_t k = 0; k < 7; ++k)
        if ((syn >> k) & 1u)
            check |= static_cast<std::uint8_t>(1u << k);
    // Overall parity over the 71 Hamming positions (data + 7 parity).
    if ((popcount64(data) + popcount64(check)) & 1u)
        check |= 0x80u;
    w.check = check;
    return w;
}

SecdedDecode
secdedDecode(const SecdedWord &w)
{
    SecdedDecode out;
    out.data = w.data;

    std::uint32_t syn = dataSyndrome(w.data);
    for (std::uint32_t k = 0; k < 7; ++k)
        if ((w.check >> k) & 1u)
            syn ^= 1u << k;
    // Overall parity including the stored overall bit: 0 when intact.
    const bool overallOdd =
        (popcount64(w.data) + popcount64(w.check)) & 1u;

    if (syn == 0) {
        // Either clean, or only the overall-parity bit itself flipped.
        out.status = overallOdd ? SecdedStatus::CorrectedCheck
                                : SecdedStatus::Clean;
        return out;
    }
    if (!overallOdd) {
        // Non-zero syndrome with even overall parity: two flips.
        out.status = SecdedStatus::DetectedDouble;
        return out;
    }
    if (syn > 71) {
        // Syndrome outside the codeword: corrupted beyond a single
        // in-range flip (possible for aliasing multi-bit patterns).
        out.status = SecdedStatus::DetectedDouble;
        return out;
    }
    const std::int8_t d = kTable.dataOfPos[syn];
    if (d < 0) {
        out.status = SecdedStatus::CorrectedCheck; // a parity bit flipped
        return out;
    }
    out.data = w.data ^ (1ull << d);
    out.status = SecdedStatus::CorrectedData;
    return out;
}

void
secdedFlip(SecdedWord &w, std::uint32_t bit)
{
    if (bit < 64)
        w.data ^= 1ull << bit;
    else if (bit < 72)
        w.check ^= static_cast<std::uint8_t>(1u << (bit - 64));
}

} // namespace lacc
