/**
 * @file
 * Config-keyed fault-plan registry — the fault layer's analogue of
 * net/factory.hh and protocol/factory.hh, built on the shared
 * named-registry helpers (sim/named_registry.hh).
 *
 * A FaultPlan resolves the SystemConfig's (faultKind, faultRate,
 * faultSeed) triple into concrete per-event probabilities and recovery
 * knobs. Four plans ship:
 *
 *  - none:  all rates zero; the injector is never constructed, so the
 *           hot path pays exactly one untaken branch (pinned by
 *           bench_micro).
 *  - links: lossy interconnect — per-link-traversal Bernoulli drops
 *           and corruptions, recovered by the transport's
 *           NACK/timeout/retransmit path (protocol/messages.hh).
 *  - soft:  SRAM soft errors — per-directory-touch bit flips in L1/L2
 *           line data and directory metadata, recovered by the SECDED
 *           model (fault/secded.hh): correct single-bit, scrub clean
 *           double-bit lines from DRAM, abort on unrecoverable state.
 *  - storm: both at elevated rates — the stress plan.
 *
 * All probabilities scale linearly with --fault-rate, so one knob
 * sweeps a plan's intensity without changing its shape.
 */

#ifndef LACC_FAULT_PLAN_HH
#define LACC_FAULT_PLAN_HH

#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace lacc {

/** Resolved per-event fault probabilities and recovery parameters. */
struct FaultPlan
{
    FaultKind kind = FaultKind::None;

    // ---- Lossy links (per link traversal) -----------------------------
    double linkDropRate = 0.0;    //!< message lost; detected by timeout
    double linkCorruptRate = 0.0; //!< message mangled; NACKed at dst

    // ---- Soft errors (per directory transaction, per structure) -------
    double softErrorRate = 0.0;   //!< bit-flip strike probability
    double doubleBitFraction = 0.0; //!< strikes hitting two bits

    // ---- ECC coverage (per structure; shipped plans protect all) ------
    bool protectL1 = true;  //!< L1 line data under SECDED
    bool protectL2 = true;  //!< L2 line data under SECDED
    bool protectDir = true; //!< directory metadata under SECDED

    // ---- Recovery costs ------------------------------------------------
    std::uint32_t retryBudget = 8;   //!< max send attempts per message
    Cycle retryTimeout = 64;         //!< base retransmit timeout (cycles)
    Cycle eccCorrectLatency = 3;     //!< stall per corrected single bit

    /** Any link-fault probability non-zero? */
    bool linksActive() const
    {
        return linkDropRate > 0.0 || linkCorruptRate > 0.0;
    }

    /** Any soft-error probability non-zero? */
    bool softActive() const { return softErrorRate > 0.0; }
};

/**
 * Resolve @p cfg's fault configuration into a concrete plan.
 * panic()s if no plan is registered for cfg.faultKind.
 */
FaultPlan makeFaultPlan(const SystemConfig &cfg);

/** Registered plan names in listing order ("none", "links", ...). */
const std::vector<std::string> &faultNames();

/** Factory key for @p cfg's fault kind. */
const char *faultNameFor(const SystemConfig &cfg);

/** Set cfg.faultKind from a plan name; fatal() on unknown names. */
void applyFaultName(SystemConfig &cfg, const std::string &name);

} // namespace lacc

#endif // LACC_FAULT_PLAN_HH
