#include "fault/plan.hh"

#include "sim/named_registry.hh"

namespace lacc {

namespace {

/**
 * The single registration point: adding a fault plan means adding one
 * entry here (plus its FaultKind). Lookup and diagnostics come from
 * the shared named-registry helpers. Each make() scales its shape by
 * cfg.faultRate so --fault-rate sweeps intensity, not structure.
 */
struct FaultEntry
{
    const char *name;
    FaultKind kind;
    FaultPlan (*make)(const SystemConfig &);
};

const FaultEntry kFaults[] = {
    {"none", FaultKind::None,
     [](const SystemConfig &) {
         return FaultPlan{}; // all rates zero
     }},
    {"links", FaultKind::Links,
     [](const SystemConfig &cfg) {
         FaultPlan p;
         p.kind = FaultKind::Links;
         // 70/30 drop/corrupt split: timeouts dominate real lossy
         // fabrics, but both recovery paths stay exercised.
         p.linkDropRate = 0.7 * cfg.faultRate;
         p.linkCorruptRate = 0.3 * cfg.faultRate;
         return p;
     }},
    {"soft", FaultKind::Soft,
     [](const SystemConfig &cfg) {
         FaultPlan p;
         p.kind = FaultKind::Soft;
         p.softErrorRate = cfg.faultRate;
         p.doubleBitFraction = 0.05;
         return p;
     }},
    {"storm", FaultKind::Storm,
     [](const SystemConfig &cfg) {
         FaultPlan p;
         p.kind = FaultKind::Storm;
         p.linkDropRate = 3.5 * cfg.faultRate;
         p.linkCorruptRate = 1.5 * cfg.faultRate;
         p.softErrorRate = 5.0 * cfg.faultRate;
         p.doubleBitFraction = 0.1;
         return p;
     }},
};

} // namespace

FaultPlan
makeFaultPlan(const SystemConfig &cfg)
{
    return registry::entryForKind(kFaults, cfg.faultKind, "fault plan")
        .make(cfg);
}

const std::vector<std::string> &
faultNames()
{
    static const std::vector<std::string> names =
        registry::entryNames(kFaults);
    return names;
}

const char *
faultNameFor(const SystemConfig &cfg)
{
    return registry::entryForKind(kFaults, cfg.faultKind, "fault plan")
        .name;
}

void
applyFaultName(SystemConfig &cfg, const std::string &name)
{
    cfg.faultKind =
        registry::entryForNameOrFatal(kFaults, "fault plan", name).kind;
}

} // namespace lacc
