#include "fault/injector.hh"

#include <cstdio>

#include "sim/abort.hh"

namespace lacc {

namespace {

// Decision-stream tags: distinct hash domains per fault process, so
// e.g. a link roll and a soft-error roll at the same timestamp are
// independent draws.
constexpr std::uint64_t kStreamDrop = 0x6c6b4472ull;    // "lkDr"
constexpr std::uint64_t kStreamCorrupt = 0x6c6b4372ull; // "lkCr"
constexpr std::uint64_t kStreamSoft = 0x73667445ull;    // "sftE"
constexpr std::uint64_t kStreamDouble = 0x64626c42ull;  // "dblB"
constexpr std::uint64_t kStreamBit = 0x62697450ull;     // "bitP"

/** splitmix64 finalizer (same mixer sim/rng.hh seeds with). */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Probability -> fixed-point threshold on [0, 2^64). */
std::uint64_t
threshold(double rate)
{
    if (rate <= 0.0)
        return 0;
    if (rate >= 1.0)
        return ~0ull;
    return static_cast<std::uint64_t>(
        rate * 18446744073709551616.0 /* 2^64 */);
}

/** Does a uniform draw @p r fire under threshold @p thr? */
bool
fires(std::uint64_t r, std::uint64_t thr)
{
    // A saturated threshold (rate >= 1) must fire with certainty —
    // the budget-exhaustion negative tests rely on it.
    return thr != 0 && (thr == ~0ull || r < thr);
}

} // namespace

FaultInjector::FaultInjector(const SystemConfig &cfg)
    : plan_(makeFaultPlan(cfg)), seed_(mix(cfg.faultSeed))
{
    dropThresh_ = threshold(plan_.linkDropRate);
    corruptThresh_ = threshold(plan_.linkCorruptRate);
    softThresh_ = threshold(plan_.softErrorRate);
    doubleThresh_ = threshold(plan_.doubleBitFraction);
}

std::uint64_t
FaultInjector::roll(std::uint64_t stream, std::uint64_t a,
                    std::uint64_t b, std::uint64_t c) const
{
    return mix(seed_ ^ mix(stream ^ mix(a ^ mix(b ^ mix(c)))));
}

LinkFault
FaultInjector::rollLink(std::uint32_t link, Cycle t,
                        std::uint32_t flits)
{
    // Two independent draws; a drop shadows a simultaneous corrupt
    // (the message is gone either way).
    if (fires(roll(kStreamDrop, link, t, flits), dropThresh_)) {
        ++stats_.linkDrops;
        return LinkFault::Drop;
    }
    if (fires(roll(kStreamCorrupt, link, t, flits), corruptThresh_)) {
        ++stats_.linkCorruptions;
        return LinkFault::Corrupt;
    }
    return LinkFault::None;
}

SoftFault
FaultInjector::rollSoft(FaultUnit unit, LineAddr line, Cycle t)
{
    const std::uint64_t u = static_cast<std::uint64_t>(unit);
    if (!fires(roll(kStreamSoft, u, line, t), softThresh_))
        return SoftFault::None;
    ++stats_.softErrors;
    return fires(roll(kStreamDouble, u, line, t), doubleThresh_)
               ? SoftFault::Double
               : SoftFault::Single;
}

std::uint32_t
FaultInjector::strikeBit(LineAddr line, Cycle t,
                         std::uint32_t bits) const
{
    if (bits == 0)
        return 0;
    return static_cast<std::uint32_t>(roll(kStreamBit, line, t, bits) %
                                      bits);
}

void
FaultInjector::budgetExhausted(CoreId src, CoreId dst,
                               std::uint32_t attempts) const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "retransmit budget exhausted: %u attempts %u -> %u "
                  "all faulted",
                  attempts, static_cast<unsigned>(src),
                  static_cast<unsigned>(dst));
    throw RunAbort(AbortKind::FaultFatal, buf);
}

void
FaultInjector::unrecoverable(const char *what, LineAddr line) const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "uncorrectable fault: %s (line %llx)", what,
                  static_cast<unsigned long long>(line));
    throw RunAbort(AbortKind::FaultFatal, buf);
}

} // namespace lacc
