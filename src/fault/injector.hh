/**
 * @file
 * Deterministic fault injector: the runtime object behind a non-none
 * FaultPlan, owned by the Multicore and consulted from exactly three
 * hook sites — NetworkModel::traverseLink (lossy links), the
 * transport's retransmit path (protocol/messages.hh), and the
 * directory-transaction soft-error hook (protocol/base.cc).
 *
 * Determinism argument (docs/ARCHITECTURE.md "Fault injection &
 * recovery"): every injection decision is a *pure hash* of the fault
 * seed and the event's stable identity — (link id, head-flit time,
 * flit count) for link faults, (structure, line address, transaction
 * time) for soft errors — mapped to [0, 2^64) and compared against a
 * fixed-point rate threshold. No mutable RNG state exists, so the
 * fault schedule is a function of the simulated event stream alone:
 * identical across --sim-threads values (the sharded engine replays
 * the same events at the same timestamps) and across --jobs
 * placements (each run owns its injector). Same seed, same schedule,
 * byte-identical goldens.
 *
 * Counter threading: all three hook sites execute on serialized
 * phases only — directory transactions, transport sends, and network
 * traversals are confined to the drain thread by the sharded engine's
 * parallel-phase guard (ShardedEngine::onDirectoryRequest) — so the
 * counters are plain integers.
 */

#ifndef LACC_FAULT_INJECTOR_HH
#define LACC_FAULT_INJECTOR_HH

#include "fault/plan.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace lacc {

/** Outcome of one link-traversal fault roll. */
enum class LinkFault : std::uint8_t {
    None,
    Drop,    //!< message lost in flight; source times out
    Corrupt, //!< message arrives mangled; destination NACKs
};

/** Outcome of one soft-error roll against a protected structure. */
enum class SoftFault : std::uint8_t {
    None,
    Single, //!< one flipped bit: SECDED corrects
    Double, //!< two flipped bits: SECDED detects, cannot correct
};

/** Structure a soft error strikes (per-structure ECC coverage). */
enum class FaultUnit : std::uint8_t {
    L1Data,  //!< requester's L1 line data
    L2Data,  //!< home slice's L2 line data
    DirMeta, //!< directory metadata (L2Meta / SharerList)
};

/** Runtime fault state of one Multicore; see the file header. */
class FaultInjector
{
  public:
    explicit FaultInjector(const SystemConfig &cfg);

    const FaultPlan &plan() const { return plan_; }

    /**
     * Roll the lossy-link Bernoulli process for one traversal of
     * directed link @p link with head-flit time @p t. Pure function
     * of (seed, link, t, flits); counts injected faults.
     */
    LinkFault rollLink(std::uint32_t link, Cycle t,
                       std::uint32_t flits);

    /**
     * Roll the soft-error process for one directory-transaction touch
     * of @p line's image in @p unit at time @p t. Pure function of
     * (seed, unit, line, t); counts strikes.
     */
    SoftFault rollSoft(FaultUnit unit, LineAddr line, Cycle t);

    /**
     * Deterministic strike position for an *unprotected* structure's
     * real bit flip: a bit index in [0, bits).
     */
    std::uint32_t strikeBit(LineAddr line, Cycle t,
                            std::uint32_t bits) const;

    // ---- Recovery-event counters (bumped at the hook sites) -----------
    void noteRetransmit() { ++stats_.retransmits; }
    void noteNack() { ++stats_.nacks; }
    void noteCorrected() { ++stats_.eccCorrected; }
    void noteDetected() { ++stats_.eccDetected; }
    void noteScrub() { ++stats_.scrubs; }
    void noteSilent() { ++stats_.silentCorruptions; }

    /** Retransmit budget exhausted: throws RunAbort(FaultFatal). */
    [[noreturn]] void budgetExhausted(CoreId src, CoreId dst,
                                      std::uint32_t attempts) const;

    /** Detected-but-unrecoverable strike: throws RunAbort(FaultFatal). */
    [[noreturn]] void unrecoverable(const char *what,
                                    LineAddr line) const;

    // Whole-run by design: never reset at the warm-up boundary, or
    // the zero-silent-corruption ledger would lose warm-up strikes.
    const FaultStats &stats() const { return stats_; }

  private:
    std::uint64_t roll(std::uint64_t stream, std::uint64_t a,
                       std::uint64_t b, std::uint64_t c) const;

    FaultPlan plan_;
    std::uint64_t seed_;

    // Fixed-point probability thresholds: rate mapped onto [0, 2^64).
    std::uint64_t dropThresh_ = 0;
    std::uint64_t corruptThresh_ = 0;
    std::uint64_t softThresh_ = 0;
    std::uint64_t doubleThresh_ = 0;

    FaultStats stats_;
};

} // namespace lacc

#endif // LACC_FAULT_INJECTOR_HH
