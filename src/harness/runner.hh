/**
 * @file
 * Parallel sweep runner: shards independent runBenchmark() calls
 * across a fixed-size thread pool.
 *
 * Thread-safety audit (why sharding whole runs is safe)
 * -----------------------------------------------------
 * Each Job is simulated by runBenchmark(), which constructs a private
 * SyntheticWorkload and a private Multicore per call; no simulation
 * state is shared between runs. The library-wide pieces a worker does
 * touch are:
 *
 *  - sim/rng.hh: Rng is a plain value type with per-instance state;
 *    every workload owns its own instances seeded from the config, so
 *    there is no global RNG stream to race on.
 *  - sim/log.cc: the verbose flag is a std::atomic<bool> (set before
 *    workers start) and each message is formatted into one buffer
 *    before a single locked fprintf, so lines never interleave.
 *  - workload/suite.cc: the name/size tables are function-local
 *    `static const` data — C++11 magic statics make first-touch
 *    construction safe, and they are immutable afterwards.
 *  - std::getenv("LACC_SCALE"): read-only; nothing in the library
 *    calls setenv. The runner resolves the scale once up front anyway
 *    so all jobs of a sweep agree on it.
 *
 * Determinism: results are written into a pre-sized vector at the
 * job's grid index, each simulation is bit-deterministic given
 * (bench, cfg, scale), and floating-point accumulation happens inside
 * a single run (never across runs), so a parallel sweep produces
 * bit-identical JobResults to a serial one (tests/test_harness.cc
 * guards this).
 */

#ifndef LACC_HARNESS_RUNNER_HH
#define LACC_HARNESS_RUNNER_HH

#include <vector>

#include "harness/registry.hh"
#include "sim/overrides.hh"

namespace lacc::harness {

/** Sweep execution knobs (the lacc_bench CLI maps onto these). */
struct SweepOptions
{
    /** Worker threads; 1 = run in the calling thread. */
    unsigned jobs = 1;
    /** Op-count scale; <= 0 resolves LACC_SCALE (default 1.0). */
    double opScale = -1.0;
    /**
     * Simulate every job this many times (throughput mode, maps onto
     * `lacc_bench --repeat`). Simulations are bit-deterministic, so
     * the repeats produce identical statistics; only the wall-clock
     * fields accumulate. Amortizes timer noise when measuring
     * ops_per_sec on short sweeps.
     */
    unsigned repeat = 1;

    /** The repeat count actually executed (0 is treated as 1). */
    unsigned effectiveRepeat() const { return repeat == 0 ? 1 : repeat; }
    /** Emit a "[bench] <label>" line to stderr as each job starts. */
    bool progress = true;
    /**
     * Per-run wall-clock watchdog in milliseconds (maps onto
     * `lacc_bench --timeout-ms`); <= 0 disarms. An expired run is
     * recorded as failed ("timeout"), not fatal to the sweep.
     */
    double timeoutMs = 0.0;
    /**
     * Record per-subsystem exclusive cycle shares (sim/profiler.hh)
     * over each experiment's sweep and surface them in the text
     * output and bench JSON (maps onto `lacc_bench --profile`).
     */
    bool profile = false;
    /**
     * CLI config overrides applied to every job before it runs:
     * protocol/network force a named variant (maps onto `lacc_bench
     * --protocol/--network`), simThreads selects the execution engine
     * (`--sim-threads`; > 1 shards each simulation across that many
     * worker threads). The runner clamps its pool so jobs x simThreads
     * stays within the machine's thread budget (clampJobsToBudget).
     */
    ConfigOverrides overrides;
};

/** @return @p opts.opScale if positive, else the LACC_SCALE value. */
double resolveOpScale(const SweepOptions &opts);

/**
 * Run every job, @p opts.jobs at a time, and return the results in
 * job order (independent of scheduling).
 */
std::vector<JobResult> runSweep(const std::vector<Job> &jobs,
                                const SweepOptions &opts);

} // namespace lacc::harness

#endif // LACC_HARNESS_RUNNER_HH
