/**
 * @file
 * The built-in experiment suite: every paper figure/table reproduction
 * and extension study, expressed as registry entries.
 *
 * Each entry's makeJobs() lays out the sweep grid in a canonical order
 * and its report() consumes the results with a cursor that walks the
 * exact same loop structure, so the text output is byte-identical to
 * the historical standalone bench binaries regardless of how many
 * worker threads executed the sweep.
 */

#include <cmath>
#include <cstdio>
#include <ostream>
#include <utility>
#include <vector>

#include "core/storage_model.hh"
#include "fault/plan.hh"
#include "harness/registry.hh"
#include "net/factory.hh"
#include "protocol/factory.hh"
#include "sim/log.hh"
#include "system/report.hh"
#include "workload/litmus.hh"
#include "workload/suite.hh"

namespace lacc::harness {

namespace {

/** Default config with a given PCT (Limited_3, ACKwise_4 as Table 1). */
SystemConfig
pctConfig(std::uint32_t pct)
{
    SystemConfig cfg = defaultConfig();
    cfg.pct = pct;
    // RAT levels span [PCT, RATmax]; keep the invariant for the very
    // high PCT points of the Fig 11 sweep.
    if (cfg.ratMax < pct)
        cfg.ratMax = pct;
    return cfg;
}

/** Baseline system: conventional directory protocol (PCT = 1). */
SystemConfig
baselineConfig()
{
    SystemConfig cfg = defaultConfig();
    cfg.classifierKind = ClassifierKind::AlwaysPrivate;
    cfg.pct = 1;
    return cfg;
}

/** Six-component energy vector in Fig 8 order. */
std::vector<double>
energyVector(const SystemStats &s)
{
    return {s.energy.l1i,       s.energy.l1d,    s.energy.l2,
            s.energy.directory, s.energy.router, s.energy.link};
}

/** Six-component completion-time vector in Fig 9 order (per-core sums). */
std::vector<double>
latencyVector(const SystemStats &s)
{
    const auto l = s.totalLatency();
    return {static_cast<double>(l.compute),
            static_cast<double>(l.l1ToL2),
            static_cast<double>(l.l2Waiting),
            static_cast<double>(l.l2Sharers),
            static_cast<double>(l.offChip),
            static_cast<double>(l.synchronization)};
}

/**
 * Walks sweep results in generation order. Reports must call finish()
 * after their loops: together with next()'s over-run check it guards
 * against report loops drifting out of sync with makeJobs() in either
 * direction.
 */
class Cursor
{
  public:
    explicit Cursor(const std::vector<JobResult> &results)
        : results_(results)
    {}

    const RunResult &
    next()
    {
        if (pos_ >= results_.size())
            panic("experiment report consumed %zu results but sweep "
                  "has %zu",
                  pos_ + 1, results_.size());
        return results_[pos_++].result;
    }

    /** panic() unless every sweep result was consumed. */
    void
    finish() const
    {
        if (pos_ != results_.size())
            panic("experiment report consumed %zu of %zu sweep "
                  "results",
                  pos_, results_.size());
    }

  private:
    const std::vector<JobResult> &results_;
    std::size_t pos_ = 0;
};

// -------------------------------------------------------------------------
// Figures 1 & 2: utilization-at-removal histograms (baseline system).
// -------------------------------------------------------------------------

Experiment
utilizationExperiment(const std::string &name, bool inval)
{
    Experiment e;
    e.name = name;
    e.title = inval ? "Figure 1: Invalidations vs Utilization"
                    : "Figure 2: Evictions vs Utilization";
    e.subtitle =
        inval ? "Baseline directory protocol; % of invalidated lines"
                " per utilization bucket"
              : "Baseline directory protocol; % of evicted lines per"
                " utilization bucket";
    e.description =
        inval ? "Fig 1: invalidated-line utilization histogram"
              : "Fig 2: evicted-line utilization histogram";
    const std::string tag = inval ? "fig1 " : "fig2 ";
    e.makeJobs = [tag] {
        std::vector<Job> jobs;
        for (const auto &bench : benchmarkNames())
            jobs.push_back({bench, baselineConfig(), tag + bench});
        return jobs;
    };
    e.report = [inval](const ReportContext &ctx) {
        Cursor cur(ctx.results);
        Table t({"Benchmark", "1", "2-3", "4-5", "6-7", ">=8", "total",
                 "<4 (frac)"});
        for (const auto &bench : benchmarkNames()) {
            const auto &r = cur.next();
            const auto &h = inval ? r.stats.invalidationUtil
                                  : r.stats.evictionUtil;
            t.addRow({bench, fmtPct(h.bucketFraction(0)),
                      fmtPct(h.bucketFraction(1)),
                      fmtPct(h.bucketFraction(2)),
                      fmtPct(h.bucketFraction(3)),
                      fmtPct(h.bucketFraction(4)),
                      std::to_string(h.total()),
                      fmt(h.fractionBelow(4), 2)});
        }
        cur.finish();
        t.print(ctx.out);
        ctx.out << (inval
                        ? "\nShape check: low-utilization buckets"
                          " dominate for streaming/sharing-heavy"
                          " benchmarks\n"
                        : "\nShape check: streaming benchmarks evict"
                          " mostly low-utilization lines\n");
        Json fig = Json::object();
        fig["table"] = t.toJson();
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Figures 8 & 9: component breakdowns vs PCT, normalized to PCT = 1.
// -------------------------------------------------------------------------

Experiment
breakdownExperiment(bool energy)
{
    Experiment e;
    e.name = energy ? "fig08" : "fig09";
    e.title = energy ? "Figure 8: Energy breakdown vs PCT (normalized"
                       " to PCT=1)"
                     : "Figure 9: Completion-time breakdown vs PCT"
                       " (normalized to PCT=1)";
    e.subtitle = energy ? "Components: L1-I / L1-D / L2 / Directory /"
                          " Router / Link"
                        : "Components: Compute / L1-L2 / L2-Waiting /"
                          " L2-Sharers / L2-OffChip / Sync";
    e.description = energy
                        ? "Fig 8: energy components, PCT 1..8"
                        : "Fig 9: completion-time components, PCT 1..8";
    const std::string tag = energy ? "fig8 " : "fig9 ";
    const std::vector<std::uint32_t> pcts = {1, 2, 3, 4, 5, 6, 7, 8};
    e.makeJobs = [tag, pcts] {
        std::vector<Job> jobs;
        for (const auto &bench : benchmarkNames())
            for (const auto pct : pcts)
                jobs.push_back({bench, pctConfig(pct),
                                tag + bench + " PCT=" +
                                    std::to_string(pct)});
        return jobs;
    };
    e.report = [energy, pcts](const ReportContext &ctx) {
        const auto &names = benchmarkNames();
        std::vector<std::vector<double>> avg(
            pcts.size(), std::vector<double>(6, 0.0));
        Cursor cur(ctx.results);
        Table t(energy
                    ? std::vector<std::string>{"Benchmark", "PCT",
                                               "L1-I", "L1-D", "L2",
                                               "Dir", "Router", "Link",
                                               "Total"}
                    : std::vector<std::string>{"Benchmark", "PCT",
                                               "Compute", "L1-L2",
                                               "L2Wait", "L2Sharers",
                                               "OffChip", "Sync",
                                               "Total"});
        for (const auto &bench : names) {
            double base_total = 0.0;
            for (std::size_t pi = 0; pi < pcts.size(); ++pi) {
                const auto &r = cur.next();
                const auto v = energy ? energyVector(r.stats)
                                      : latencyVector(r.stats);
                double total = 0.0;
                for (const double c : v)
                    total += c;
                if (pi == 0)
                    base_total = total > 0 ? total : 1.0;
                std::vector<std::string> row = {
                    bench, std::to_string(pcts[pi])};
                for (std::size_t i = 0; i < v.size(); ++i) {
                    const double n = v[i] / base_total;
                    avg[pi][i] +=
                        n / static_cast<double>(names.size());
                    row.push_back(fmt(n, 3));
                }
                row.push_back(fmt(total / base_total, 3));
                t.addRow(std::move(row));
            }
        }
        cur.finish();
        for (std::size_t pi = 0; pi < pcts.size(); ++pi) {
            std::vector<std::string> row = {"AVERAGE",
                                            std::to_string(pcts[pi])};
            double total = 0.0;
            for (const double c : avg[pi]) {
                row.push_back(fmt(c, 3));
                total += c;
            }
            row.push_back(fmt(total, 3));
            t.addRow(std::move(row));
        }
        t.print(ctx.out);
        ctx.out << (energy
                        ? "\nShape check (paper): average energy falls"
                          " ~25% by PCT 4; links dominate routers at"
                          " 11nm\n"
                        : "\nShape check (paper): average completion"
                          " time falls ~15% by PCT 4; waiting/sharers"
                          " components shrink\n");
        Json fig = Json::object();
        fig["table"] = t.toJson();
        Json averages = Json::array();
        for (std::size_t pi = 0; pi < pcts.size(); ++pi) {
            Json row = Json::object();
            row["pct"] = pcts[pi];
            Json comps = Json::array();
            for (const double c : avg[pi])
                comps.push(c);
            row["components"] = std::move(comps);
            averages.push(std::move(row));
        }
        fig["normalized_averages"] = std::move(averages);
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Figure 10: miss-rate taxonomy vs PCT.
// -------------------------------------------------------------------------

Experiment
fig10Experiment()
{
    Experiment e;
    e.name = "fig10";
    e.title = "Figure 10: L1-D miss rate breakdown vs PCT";
    e.subtitle = "Miss rate % split into Cold/Capacity/Upgrade/"
                 "Sharing/Word";
    e.description = "Fig 10: L1-D miss taxonomy, PCT {1,2,3,4,6,8}";
    const std::vector<std::uint32_t> pcts = {1, 2, 3, 4, 6, 8};
    e.makeJobs = [pcts] {
        std::vector<Job> jobs;
        for (const auto &bench : benchmarkNames())
            for (const auto pct : pcts)
                jobs.push_back({bench, pctConfig(pct),
                                "fig10 " + bench + " PCT=" +
                                    std::to_string(pct)});
        return jobs;
    };
    e.report = [pcts](const ReportContext &ctx) {
        Cursor cur(ctx.results);
        Table t({"Benchmark", "PCT", "Miss%", "Cold%", "Cap%", "Upg%",
                 "Shar%", "Word%"});
        for (const auto &bench : benchmarkNames()) {
            for (const auto pct : pcts) {
                const auto &r = cur.next();
                const auto m = r.stats.totalMisses();
                const double acc =
                    static_cast<double>(r.stats.totalL1dAccesses());
                auto pc = [&](MissType ty) {
                    return fmt(100.0 * static_cast<double>(m.get(ty)) /
                                   (acc > 0 ? acc : 1),
                               2);
                };
                t.addRow({bench, std::to_string(pct),
                          fmt(100.0 * r.stats.l1dMissRate(), 2),
                          pc(MissType::Cold), pc(MissType::Capacity),
                          pc(MissType::Upgrade), pc(MissType::Sharing),
                          pc(MissType::Word)});
            }
        }
        cur.finish();
        t.print(ctx.out);
        Json fig = Json::object();
        fig["table"] = t.toJson();
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Figure 11: geomean completion time & energy vs PCT.
// -------------------------------------------------------------------------

Experiment
fig11Experiment()
{
    Experiment e;
    e.name = "fig11";
    e.title = "Figure 11: Geomean Completion Time & Energy vs PCT";
    e.subtitle = "Normalized to PCT=1 across all 21 benchmarks";
    e.description =
        "Fig 11: geomean time/energy, PCT sweep to 20 (picks PCT=4)";
    const std::vector<std::uint32_t> pcts = {1, 2,  3,  4,  5,  6,  7,
                                             8, 10, 12, 14, 16, 18, 20};
    e.makeJobs = [pcts] {
        std::vector<Job> jobs;
        for (const auto pct : pcts)
            for (const auto &bench : benchmarkNames())
                jobs.push_back({bench, pctConfig(pct),
                                "fig11 PCT=" + std::to_string(pct) +
                                    " " + bench});
        return jobs;
    };
    e.report = [pcts](const ReportContext &ctx) {
        const auto &names = benchmarkNames();
        std::vector<double> base_time(names.size()),
            base_energy(names.size());
        Cursor cur(ctx.results);
        Table t({"PCT", "Completion Time (geomean)",
                 "Energy (geomean)"});
        Json points = Json::array();
        std::vector<std::string> best_row;
        double best_time = 1e300;
        for (std::size_t pi = 0; pi < pcts.size(); ++pi) {
            std::vector<double> times, energies;
            for (std::size_t bi = 0; bi < names.size(); ++bi) {
                const auto &r = cur.next();
                const double time =
                    static_cast<double>(r.completionTime);
                const double energy = r.energyTotal;
                if (pi == 0) {
                    base_time[bi] = time > 0 ? time : 1.0;
                    base_energy[bi] = energy > 0 ? energy : 1.0;
                }
                times.push_back(time / base_time[bi]);
                energies.push_back(energy / base_energy[bi]);
            }
            const double gm_t = geomean(times);
            const double gm_e = geomean(energies);
            t.addRow({std::to_string(pcts[pi]), fmt(gm_t, 3),
                      fmt(gm_e, 3)});
            Json pt = Json::object();
            pt["pct"] = pcts[pi];
            pt["geomean_time"] = gm_t;
            pt["geomean_energy"] = gm_e;
            points.push(std::move(pt));
            if (gm_t < best_time) {
                best_time = gm_t;
                best_row = {std::to_string(pcts[pi]), fmt(gm_t, 3),
                            fmt(gm_e, 3)};
            }
        }
        cur.finish();
        t.print(ctx.out);
        if (!best_row.empty()) {
            ctx.out << "\nBest completion time at PCT " << best_row[0]
                    << " (time " << best_row[1] << ", energy "
                    << best_row[2] << ")\n";
        }
        ctx.out << "Paper: PCT 4 gives ~0.85 completion time and ~0.75"
                   " energy\n";
        Json fig = Json::object();
        fig["table"] = t.toJson();
        fig["points"] = std::move(points);
        if (!best_row.empty())
            fig["best_pct"] =
                static_cast<std::uint64_t>(std::stoul(best_row[0]));
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Figure 12: RAT level/threshold sensitivity.
// -------------------------------------------------------------------------

struct RatPoint
{
    const char *label;
    bool timestamp;
    std::uint32_t levels;
    std::uint32_t ratMax;
};

const std::vector<RatPoint> &
ratPoints()
{
    static const std::vector<RatPoint> points = {
        {"Timestamp", true, 0, 0},   {"L-1", false, 1, 16},
        {"L-2,T-8", false, 2, 8},    {"L-2,T-16", false, 2, 16},
        {"L-4,T-8", false, 4, 8},    {"L-4,T-16", false, 4, 16},
        {"L-8,T-16", false, 8, 16},
    };
    return points;
}

SystemConfig
ratConfig(const RatPoint &p)
{
    SystemConfig cfg = defaultConfig();
    cfg.classifierKind =
        p.timestamp ? ClassifierKind::Timestamp : ClassifierKind::Complete;
    if (!p.timestamp) {
        cfg.nRatLevels = p.levels;
        cfg.ratMax = p.ratMax;
    }
    return cfg;
}

Experiment
fig12Experiment()
{
    Experiment e;
    e.name = "fig12";
    e.title = "Figure 12: Remote Access Threshold sensitivity";
    e.subtitle = "Geomean completion time & energy normalized to the"
                 " Timestamp classifier (PCT=4, Complete tracking)";
    e.description =
        "Fig 12: RAT level/threshold schemes vs Timestamp reference";
    e.makeJobs = [] {
        std::vector<Job> jobs;
        for (const auto &p : ratPoints())
            for (const auto &bench : benchmarkNames())
                jobs.push_back({bench, ratConfig(p),
                                std::string("fig12 ") + p.label + " " +
                                    bench});
        return jobs;
    };
    e.report = [](const ReportContext &ctx) {
        const auto &names = benchmarkNames();
        const auto &points = ratPoints();
        std::vector<double> ref_time(names.size()),
            ref_energy(names.size());
        Cursor cur(ctx.results);
        Table t({"Scheme", "Completion Time", "Energy"});
        for (std::size_t pi = 0; pi < points.size(); ++pi) {
            std::vector<double> times, energies;
            for (std::size_t bi = 0; bi < names.size(); ++bi) {
                const auto &r = cur.next();
                const double time =
                    static_cast<double>(r.completionTime);
                const double energy = r.energyTotal;
                if (pi == 0) {
                    ref_time[bi] = time > 0 ? time : 1.0;
                    ref_energy[bi] = energy > 0 ? energy : 1.0;
                }
                times.push_back(time / ref_time[bi]);
                energies.push_back(energy / ref_energy[bi]);
            }
            t.addRow({points[pi].label, fmt(geomean(times), 3),
                      fmt(geomean(energies), 3)});
        }
        cur.finish();
        t.print(ctx.out);
        ctx.out << "\nPaper: L-1 costs ~9% energy; L-2,T-16 matches"
                   " the Timestamp scheme; extra levels add nothing\n";
        Json fig = Json::object();
        fig["table"] = t.toJson();
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Figure 13: Limited_k classifier accuracy.
// -------------------------------------------------------------------------

Experiment
fig13Experiment()
{
    Experiment e;
    e.name = "fig13";
    e.title = "Figure 13: Limited_k classifier accuracy";
    e.subtitle = "Completion time & energy normalized to the Complete"
                 " classifier (PCT=4)";
    e.description = "Fig 13: Limited_k (k in {1,3,5,7}) vs Complete";
    const std::vector<std::uint32_t> ks = {1, 3, 5, 7};
    e.makeJobs = [ks] {
        std::vector<Job> jobs;
        SystemConfig complete = defaultConfig();
        complete.classifierKind = ClassifierKind::Complete;
        for (const auto &bench : benchmarkNames())
            jobs.push_back(
                {bench, complete, "fig13 Complete " + bench});
        for (const auto k : ks) {
            SystemConfig cfg = defaultConfig();
            cfg.classifierKind = ClassifierKind::Limited;
            cfg.classifierK = k;
            for (const auto &bench : benchmarkNames())
                jobs.push_back({bench, cfg,
                                "fig13 k=" + std::to_string(k) + " " +
                                    bench});
        }
        return jobs;
    };
    e.report = [ks](const ReportContext &ctx) {
        const auto &names = benchmarkNames();
        Cursor cur(ctx.results);
        std::vector<double> ref_time(names.size()),
            ref_energy(names.size());
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            const auto &r = cur.next();
            ref_time[bi] = r.completionTime > 0
                               ? static_cast<double>(r.completionTime)
                               : 1.0;
            ref_energy[bi] =
                r.energyTotal > 0 ? r.energyTotal : 1.0;
        }
        Table t({"Benchmark", "k", "Completion Time", "Energy"});
        std::vector<std::vector<double>> gm_t(ks.size()),
            gm_e(ks.size());
        for (std::size_t ki = 0; ki < ks.size(); ++ki) {
            for (std::size_t bi = 0; bi < names.size(); ++bi) {
                const auto &r = cur.next();
                const double nt =
                    static_cast<double>(r.completionTime) /
                    ref_time[bi];
                const double ne = r.energyTotal / ref_energy[bi];
                gm_t[ki].push_back(nt);
                gm_e[ki].push_back(ne);
                t.addRow({names[bi], std::to_string(ks[ki]),
                          fmt(nt, 3), fmt(ne, 3)});
            }
        }
        cur.finish();
        for (std::size_t bi = 0; bi < names.size(); ++bi)
            t.addRow({names[bi], "64(Complete)", "1.000", "1.000"});
        t.print(ctx.out);

        ctx.out << "\nGeomeans vs Complete:\n";
        Table g({"k", "Completion Time", "Energy"});
        for (std::size_t ki = 0; ki < ks.size(); ++ki)
            g.addRow({std::to_string(ks[ki]),
                      fmt(geomean(gm_t[ki]), 3),
                      fmt(geomean(gm_e[ki]), 3)});
        g.addRow({"64", "1.000", "1.000"});
        g.print(ctx.out);
        ctx.out << "\nPaper: Limited_3 within ~3% of Complete;"
                   " Limited_1 suffers on radix/bodytrack\n";
        Json fig = Json::object();
        fig["table"] = t.toJson();
        fig["geomeans"] = g.toJson();
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Figure 14: one-way vs two-way mode transitions.
// -------------------------------------------------------------------------

Experiment
fig14Experiment()
{
    Experiment e;
    e.name = "fig14";
    e.title = "Figure 14: Adapt1-way / Adapt2-way ratios";
    e.subtitle = "PCT=4; >1 means one-way transitions are worse";
    e.description =
        "Fig 14: cost of removing remote->private re-promotion";
    e.makeJobs = [] {
        std::vector<Job> jobs;
        for (const auto &bench : benchmarkNames()) {
            SystemConfig cfg1 = defaultConfig();
            cfg1.protocolKind = ProtocolKind::AdaptOneWay;
            jobs.push_back(
                {bench, defaultConfig(), "fig14 2way " + bench});
            jobs.push_back({bench, cfg1, "fig14 1way " + bench});
        }
        return jobs;
    };
    e.report = [](const ReportContext &ctx) {
        Cursor cur(ctx.results);
        Table t({"Benchmark", "Completion Time ratio", "Energy ratio"});
        std::vector<double> rt, re;
        for (const auto &bench : benchmarkNames()) {
            const auto &r2 = cur.next();
            const auto &r1 = cur.next();
            const double time_ratio =
                static_cast<double>(r1.completionTime) /
                static_cast<double>(
                    r2.completionTime > 0 ? r2.completionTime : 1);
            const double energy_ratio =
                r1.energyTotal /
                (r2.energyTotal > 0 ? r2.energyTotal : 1.0);
            rt.push_back(time_ratio);
            re.push_back(energy_ratio);
            t.addRow({bench, fmt(time_ratio, 3),
                      fmt(energy_ratio, 3)});
        }
        cur.finish();
        t.addRow({"GEOMEAN", fmt(geomean(rt), 3),
                  fmt(geomean(re), 3)});
        t.print(ctx.out);
        ctx.out << "\nPaper: average ~1.34x completion time / ~1.13x"
                   " energy; bodytrack ~3.3x, dijkstra-ss ~2.3x\n";
        Json fig = Json::object();
        fig["table"] = t.toJson();
        fig["geomean_time_ratio"] = geomean(rt);
        fig["geomean_energy_ratio"] = geomean(re);
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Table 1: architectural parameters + storage arithmetic (no sweep).
// -------------------------------------------------------------------------

Experiment
table1Experiment()
{
    Experiment e;
    e.name = "table1";
    e.title = "Table 1: Architectural parameters";
    e.subtitle = "Default configuration used by every experiment";
    e.description =
        "Table 1: default parameters + Section 3.6 storage overheads";
    e.makeJobs = [] { return std::vector<Job>{}; };
    e.report = [](const ReportContext &ctx) {
        const SystemConfig cfg = defaultConfig();
        Table t({"Parameter", "Value"});
        t.addRow({"Number of cores",
                  std::to_string(cfg.numCores) + " @ 1 GHz"});
        t.addRow({"Compute pipeline", "In-order, single-issue"});
        t.addRow({"Physical address length", "48 bits"});
        t.addRow({"L1-I cache per core",
                  std::to_string(cfg.l1iSizeKB) + " KB, " +
                      std::to_string(cfg.l1iAssoc) + "-way, " +
                      std::to_string(cfg.l1Latency) + " cycle"});
        t.addRow({"L1-D cache per core",
                  std::to_string(cfg.l1dSizeKB) + " KB, " +
                      std::to_string(cfg.l1dAssoc) + "-way, " +
                      std::to_string(cfg.l1Latency) + " cycle"});
        t.addRow({"L2 cache per core",
                  std::to_string(cfg.l2SizeKB) + " KB, " +
                      std::to_string(cfg.l2Assoc) + "-way, " +
                      std::to_string(cfg.l2Latency) +
                      " cycle, inclusive, R-NUCA"});
        t.addRow({"Cache line size",
                  std::to_string(cfg.lineSize) + " bytes"});
        t.addRow({"Directory protocol",
                  std::string("Invalidation-based MESI, ACKwise") +
                      std::to_string(cfg.ackwisePointers)});
        t.addRow({"Memory controllers",
                  std::to_string(cfg.numMemControllers)});
        t.addRow({"DRAM bandwidth",
                  fmt(cfg.dramBandwidthGBps, 1) +
                      " GBps per controller"});
        t.addRow({"DRAM latency",
                  std::to_string(cfg.dramLatency) + " ns"});
        t.addRow({"Network", "Electrical 2-D mesh, XY routing"});
        t.addRow({"Hop latency",
                  std::to_string(cfg.hopLatency) +
                      " cycles (1 router, 1 link)"});
        t.addRow({"Flit width",
                  std::to_string(cfg.flitWidthBits) + " bits"});
        t.addRow({"Header", std::to_string(cfg.headerFlits) + " flit"});
        t.addRow({"Word length",
                  std::to_string(cfg.wordFlits) + " flit"});
        t.addRow({"Cache line length",
                  std::to_string(cfg.lineFlits) + " flits"});
        t.addRow({"PCT", std::to_string(cfg.pct)});
        t.addRow({"RATmax", std::to_string(cfg.ratMax)});
        t.addRow({"nRATlevels", std::to_string(cfg.nRatLevels)});
        t.addRow({"Classifier",
                  std::string("Limited") +
                      std::to_string(cfg.classifierK)});
        t.print(ctx.out);

        ctx.out << "\nSection 3.6: storage overhead per core\n\n";
        StorageModel m(cfg);
        Table s({"Structure", "Bits/entry", "KB/core", "Paper"});
        s.addRow({"L1 utilization bits",
                  std::to_string(m.l1UtilBitsPerLine()) + " /line",
                  fmt(m.l1OverheadKB(), 4), "0.19 KB"});
        s.addRow({"Limited3 classifier",
                  std::to_string(m.limitedBitsPerEntry()),
                  fmt(m.limitedOverheadKB(), 1), "18 KB"});
        s.addRow({"Complete classifier",
                  std::to_string(m.completeBitsPerEntry()),
                  fmt(m.completeOverheadKB(), 1), "192 KB"});
        s.addRow({"ACKwise4 pointers",
                  std::to_string(m.ackwiseBitsPerEntry()),
                  fmt(m.ackwiseKB(), 1), "12 KB"});
        s.addRow({"Full-map directory",
                  std::to_string(m.fullMapBitsPerEntry()),
                  fmt(m.fullMapKB(), 1), "32 KB"});
        s.print(ctx.out);

        ctx.out << "\nOverhead vs baseline ACKwise4 (incl. caches):\n"
                << "  Limited3 classifier: "
                << fmt(m.overheadPercentVsAckwise(false), 2)
                << "%   (paper: 5.7%)\n"
                << "  Complete classifier: "
                << fmt(m.overheadPercentVsAckwise(true), 2)
                << "%   (paper: 60%)\n"
                << "  Limited3 + ACKwise4 = "
                << fmt(m.limitedOverheadKB() + m.ackwiseKB(), 1)
                << " KB < full-map " << fmt(m.fullMapKB(), 1)
                << " KB: "
                << (m.limitedOverheadKB() + m.ackwiseKB() <
                            m.fullMapKB()
                        ? "HOLDS"
                        : "VIOLATED")
                << "\n";
        Json fig = Json::object();
        fig["table"] = t.toJson();
        fig["storage"] = s.toJson();
        fig["config"] = toJson(cfg);
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Table 2: benchmark problem sizes (no sweep).
// -------------------------------------------------------------------------

std::string
mixSummary(const SyntheticSpec &s)
{
    std::string out;
    auto add = [&](const char *n, double w) {
        if (w <= 0)
            return;
        if (!out.empty())
            out += " ";
        char buf[48];
        std::snprintf(buf, sizeof buf, "%s:%.2f", n, w);
        out += buf;
    };
    add("privHot", s.mix.privateHot);
    add("privStream", s.mix.privateStream);
    add("shRO", s.mix.sharedRO);
    add("shPC", s.mix.sharedPC);
    add("shStream", s.mix.sharedStream);
    add("lock", s.mix.lockRMW);
    return out;
}

std::string
kb(std::uint64_t bytes)
{
    return std::to_string(bytes >> 10) + "KB";
}

Experiment
table2Experiment()
{
    Experiment e;
    e.name = "table2";
    e.title = "Table 2: Problem sizes for the parallel benchmarks";
    e.subtitle = "Paper size -> synthetic substitution (scaled for"
                 " minute-long sweeps; LACC_SCALE rescales)";
    e.description =
        "Table 2: paper problem sizes -> synthetic archetype mixes";
    e.makeJobs = [] { return std::vector<Job>{}; };
    e.report = [](const ReportContext &ctx) {
        const SystemConfig cfg = defaultConfig();
        const double scale = ctx.opScale;
        Table t({"Benchmark", "Paper problem size", "Archetype mix",
                 "Private WS", "Shared WS", "Ops/core"});
        for (const auto &bench : benchmarkNames()) {
            const auto s = benchmarkSpec(bench, cfg, scale);
            const auto priv = s.privateHotBytes + s.privateStreamBytes;
            const auto shared = s.sharedROBytes + s.sharedPCBytes +
                                s.sharedStreamBytes;
            t.addRow({bench, benchmarkProblemSize(bench),
                      mixSummary(s), kb(priv), kb(shared),
                      std::to_string(static_cast<std::uint64_t>(
                                         s.opsPerPhase) *
                                     s.numPhases)});
        }
        t.print(ctx.out);
        Json fig = Json::object();
        fig["table"] = t.toJson();
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Ablations: learning short-cut & R-NUCA placement.
// -------------------------------------------------------------------------

std::vector<std::pair<std::string, SystemConfig>>
ablationStudy1()
{
    SystemConfig base = defaultConfig();
    base.classifierKind = ClassifierKind::Complete;
    SystemConfig shortcut = base;
    shortcut.completeLearningShortcut = true;
    return {{"Complete (paper)", base},
            {"Complete + learning short-cut", shortcut}};
}

std::vector<std::pair<std::string, SystemConfig>>
ablationStudy2()
{
    SystemConfig rnuca = defaultConfig();
    SystemConfig snuca = defaultConfig();
    snuca.rnucaEnabled = false;
    return {{"R-NUCA", rnuca}, {"Static-NUCA (hash only)", snuca}};
}

/** Shared normalized-geomean study body (ablation tables). */
Json
reportStudy(const ReportContext &ctx, Cursor &cur,
            const std::string &title,
            const std::vector<std::pair<std::string, SystemConfig>> &pts)
{
    const auto &names = benchmarkNames();
    std::vector<double> ref_t(names.size()), ref_e(names.size());
    Table t({"Variant", "Completion Time", "Energy"});
    for (std::size_t pi = 0; pi < pts.size(); ++pi) {
        std::vector<double> times, energies;
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            const auto &r = cur.next();
            const double time = static_cast<double>(r.completionTime);
            const double energy = r.energyTotal;
            if (pi == 0) {
                ref_t[bi] = time > 0 ? time : 1.0;
                ref_e[bi] = energy > 0 ? energy : 1.0;
            }
            times.push_back(time / ref_t[bi]);
            energies.push_back(energy / ref_e[bi]);
        }
        t.addRow({pts[pi].first, fmt(geomean(times), 3),
                  fmt(geomean(energies), 3)});
    }
    ctx.out << "\n" << title << "\n";
    t.print(ctx.out);
    return t.toJson();
}

Experiment
ablationExperiment()
{
    Experiment e;
    e.name = "ablation";
    e.title = "Ablations: learning short-cut & R-NUCA placement";
    e.subtitle = "Geomeans over the 21-benchmark suite, normalized to"
                 " the first row of each table";
    e.description =
        "Ablations: Complete-classifier seeding & R-NUCA vs S-NUCA";
    e.makeJobs = [] {
        std::vector<Job> jobs;
        for (const auto &study : {ablationStudy1(), ablationStudy2()})
            for (const auto &pt : study)
                for (const auto &bench : benchmarkNames())
                    jobs.push_back({bench, pt.second,
                                    "ablation " + pt.first + " " +
                                        bench});
        return jobs;
    };
    e.report = [](const ReportContext &ctx) {
        Cursor cur(ctx.results);
        Json fig = Json::object();
        fig["learning_shortcut"] = reportStudy(
            ctx, cur,
            "Complete classifier: per-sharer learning vs"
            " majority-vote seeding (§5.3 extension)",
            ablationStudy1());
        fig["placement"] = reportStudy(
            ctx, cur,
            "Placement: R-NUCA (paper baseline) vs static-NUCA",
            ablationStudy2());
        cur.finish();
        ctx.out << "\nExpected: the short-cut helps sharing-heavy"
                   " benchmarks slightly; static-NUCA pays"
                   " remote-slice latency for private data\n";
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// ACKwise_4 vs full-map baseline validation.
// -------------------------------------------------------------------------

Experiment
ackwiseExperiment()
{
    Experiment e;
    e.name = "ackwise";
    e.title = "ACKwise4 vs Full-Map directory (baseline protocol)";
    e.subtitle =
        "Ratios ACKwise/FullMap; paper: within 1% on average";
    e.description =
        "Baseline validation: ACKwise4 within ~1% of full-map";
    e.makeJobs = [] {
        std::vector<Job> jobs;
        for (const auto &bench : benchmarkNames()) {
            // The two directory protocols, selected by factory name
            // (identical configs to setting directoryKind by hand).
            SystemConfig fm = baselineConfig();
            applyProtocolName(fm, "fullmap");
            jobs.push_back(
                {bench, baselineConfig(), "ackwise ack " + bench});
            jobs.push_back({bench, fm, "ackwise fullmap " + bench});
        }
        return jobs;
    };
    e.report = [](const ReportContext &ctx) {
        Cursor cur(ctx.results);
        Table t({"Benchmark", "Completion Time ratio", "Energy ratio",
                 "Broadcasts"});
        std::vector<double> rt, re;
        for (const auto &bench : benchmarkNames()) {
            const auto &ra = cur.next();
            const auto &rf = cur.next();
            const double time_ratio =
                static_cast<double>(ra.completionTime) /
                static_cast<double>(
                    rf.completionTime > 0 ? rf.completionTime : 1);
            const double energy_ratio =
                ra.energyTotal /
                (rf.energyTotal > 0 ? rf.energyTotal : 1.0);
            rt.push_back(time_ratio);
            re.push_back(energy_ratio);
            t.addRow({bench, fmt(time_ratio, 4), fmt(energy_ratio, 4),
                      std::to_string(ra.stats.protocol.broadcastInvals)});
        }
        cur.finish();
        const double gm_t = geomean(rt);
        const double gm_e = geomean(re);
        t.addRow({"GEOMEAN", fmt(gm_t, 4), fmt(gm_e, 4), "-"});
        t.print(ctx.out);
        ctx.out << "\nDeviation from full-map: completion "
                << fmt(std::abs(gm_t - 1.0) * 100, 2) << "%, energy "
                << fmt(std::abs(gm_e - 1.0) * 100, 2)
                << "% (paper: within 1%)\n";
        Json fig = Json::object();
        fig["table"] = t.toJson();
        fig["geomean_time_ratio"] = gm_t;
        fig["geomean_energy_ratio"] = gm_e;
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Scaling study: benefit vs core count.
// -------------------------------------------------------------------------

SystemConfig
sizedConfig(std::uint32_t cores, std::uint32_t width, bool adaptive)
{
    SystemConfig cfg = defaultConfig();
    cfg.numCores = cores;
    cfg.meshWidth = width;
    cfg.numMemControllers = 8;
    if (!adaptive) {
        cfg.classifierKind = ClassifierKind::AlwaysPrivate;
        cfg.pct = 1;
    }
    return cfg;
}

struct ScaleSize
{
    std::uint32_t cores, width;
};

const std::vector<ScaleSize> &
scaleSizes()
{
    // The 256-core point exists because the sharded execution engine
    // makes it affordable: run with --sim-threads N to shard each
    // simulation (bit-identical results, docs/BENCHMARKS.md).
    static const std::vector<ScaleSize> sizes = {
        {16, 4}, {32, 8}, {64, 8}, {256, 16}};
    return sizes;
}

Experiment
scalingExperiment()
{
    Experiment e;
    e.name = "scaling";
    e.title = "Scaling: adaptive (PCT=4) vs baseline by core count";
    e.subtitle = "Geomean over the suite; lower is better for the"
                 " adaptive/baseline ratios";
    e.description =
        "Extension: protocol benefit at 16/32/64/256 cores";
    e.makeJobs = [] {
        std::vector<Job> jobs;
        for (const auto &sz : scaleSizes()) {
            const std::string tag =
                "scaling " + std::to_string(sz.cores) + "c ";
            for (const auto &bench : benchmarkNames()) {
                jobs.push_back({bench,
                                sizedConfig(sz.cores, sz.width, false),
                                tag + "base " + bench});
                jobs.push_back({bench,
                                sizedConfig(sz.cores, sz.width, true),
                                tag + "adapt " + bench});
            }
        }
        return jobs;
    };
    e.report = [](const ReportContext &ctx) {
        const auto &names = benchmarkNames();
        Cursor cur(ctx.results);
        Table t({"Cores", "Completion ratio", "Energy ratio",
                 "Baseline flit-hops/access",
                 "Adaptive flit-hops/access"});
        for (const auto &sz : scaleSizes()) {
            std::vector<double> times, energies;
            double base_hops = 0, adapt_hops = 0;
            for (std::size_t bi = 0; bi < names.size(); ++bi) {
                const auto &rb = cur.next();
                const auto &ra = cur.next();
                times.push_back(
                    static_cast<double>(ra.completionTime) /
                    static_cast<double>(
                        rb.completionTime > 0 ? rb.completionTime
                                              : 1));
                energies.push_back(
                    ra.energyTotal /
                    (rb.energyTotal > 0 ? rb.energyTotal : 1.0));
                base_hops +=
                    static_cast<double>(rb.stats.network.flitHops) /
                    static_cast<double>(rb.stats.totalL1dAccesses() +
                                        1);
                adapt_hops +=
                    static_cast<double>(ra.stats.network.flitHops) /
                    static_cast<double>(ra.stats.totalL1dAccesses() +
                                        1);
            }
            t.addRow(
                {std::to_string(sz.cores), fmt(geomean(times), 3),
                 fmt(geomean(energies), 3),
                 fmt(base_hops / static_cast<double>(names.size()), 2),
                 fmt(adapt_hops / static_cast<double>(names.size()),
                     2)});
        }
        cur.finish();
        t.print(ctx.out);
        ctx.out << "\nExpected: the adaptive/baseline ratio falls"
                   " (bigger win) as the machine grows\n";
        Json fig = Json::object();
        fig["table"] = t.toJson();
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Topology sensitivity: how much of LACC's win depends on cheap
// broadcast?
// -------------------------------------------------------------------------

/** One directory variant of the topology sweep. */
struct NetVariant
{
    const char *label;
    DirectoryKind dir;
    std::uint32_t pointers; //!< ACKwise_p; ignored for FullMap
};

const std::vector<NetVariant> &
netVariants()
{
    // "full" sharer tracking == the full-map directory: it never
    // broadcasts, so it anchors the broadcast-cost comparison.
    static const std::vector<NetVariant> variants = {
        {"ACKwise2", DirectoryKind::Ackwise, 2},
        {"ACKwise4", DirectoryKind::Ackwise, 4},
        {"FullMap", DirectoryKind::FullMap, 0},
    };
    return variants;
}

SystemConfig
netVariantConfig(const NetVariant &v, const std::string &network)
{
    SystemConfig cfg = defaultConfig();
    cfg.directoryKind = v.dir;
    if (v.dir == DirectoryKind::Ackwise)
        cfg.ackwisePointers = v.pointers;
    applyNetworkName(cfg, network);
    return cfg;
}

Experiment
networkExperiment()
{
    Experiment e;
    e.name = "network";
    e.title = "Topology sensitivity: directory variants x interconnect"
              " fabrics";
    e.subtitle = "{ACKwise2, ACKwise4, FullMap} x {mesh, torus, ring,"
                 " xbar}; PCT=4 adaptive protocol on every fabric";
    e.description =
        "Extension: LACC's broadcast dependence across mesh/torus/"
        "ring/xbar";
    e.makeJobs = [] {
        std::vector<Job> jobs;
        for (const auto &v : netVariants())
            for (const auto &net : networkNames())
                for (const auto &bench : benchmarkNames())
                    jobs.push_back(
                        {bench, netVariantConfig(v, net),
                         "network " + std::string(v.label) + " " + net +
                             " " + bench});
        return jobs;
    };
    e.report = [](const ReportContext &ctx) {
        const auto &variants = netVariants();
        const auto &nets = networkNames();
        const auto &names = benchmarkNames();

        // res[variant][network][bench], in generation order.
        Cursor cur(ctx.results);
        std::vector<std::vector<std::vector<const RunResult *>>> res(
            variants.size(),
            std::vector<std::vector<const RunResult *>>(
                nets.size(),
                std::vector<const RunResult *>(names.size(), nullptr)));
        for (std::size_t vi = 0; vi < variants.size(); ++vi)
            for (std::size_t ni = 0; ni < nets.size(); ++ni)
                for (std::size_t bi = 0; bi < names.size(); ++bi)
                    res[vi][ni][bi] = &cur.next();
        cur.finish();

        // Table 1: each variant normalized to ITS OWN mesh run, so a
        // row reads "what switching the fabric costs this directory".
        // networkNames() leads with "mesh" (the factory's default).
        Table t({"Variant", "Network", "Completion Time", "Energy",
                 "Broadcasts", "Flit-hops vs mesh"});
        Json points = Json::array();
        for (std::size_t vi = 0; vi < variants.size(); ++vi) {
            std::vector<double> base_t(names.size()),
                base_e(names.size());
            double base_hops = 0.0;
            for (std::size_t ni = 0; ni < nets.size(); ++ni) {
                std::vector<double> times, energies;
                std::uint64_t broadcasts = 0;
                double hops = 0.0;
                for (std::size_t bi = 0; bi < names.size(); ++bi) {
                    const RunResult &r = *res[vi][ni][bi];
                    const double time =
                        static_cast<double>(r.completionTime);
                    const double energy = r.energyTotal;
                    if (ni == 0) {
                        base_t[bi] = time > 0 ? time : 1.0;
                        base_e[bi] = energy > 0 ? energy : 1.0;
                    }
                    times.push_back(time / base_t[bi]);
                    energies.push_back(energy / base_e[bi]);
                    broadcasts += r.stats.network.broadcasts;
                    hops +=
                        static_cast<double>(r.stats.network.flitHops);
                }
                if (ni == 0)
                    base_hops = hops > 0 ? hops : 1.0;
                const double gm_t = geomean(times);
                const double gm_e = geomean(energies);
                t.addRow({variants[vi].label, nets[ni], fmt(gm_t, 3),
                          fmt(gm_e, 3), std::to_string(broadcasts),
                          fmt(hops / base_hops, 3)});
                Json pt = Json::object();
                pt["variant"] = variants[vi].label;
                pt["network"] = nets[ni];
                pt["geomean_time_vs_mesh"] = gm_t;
                pt["geomean_energy_vs_mesh"] = gm_e;
                pt["broadcasts"] = broadcasts;
                pt["flit_hops_vs_mesh"] = hops / base_hops;
                points.push(std::move(pt));
            }
        }
        t.print(ctx.out);

        // Table 2: the limited directories against full-map on the
        // SAME fabric — the quantitative answer to "how much of the
        // ACKwise design depends on cheap broadcast". FullMap is the
        // last variant by construction.
        const std::size_t fm = variants.size() - 1;
        ctx.out << "\nACKwise_p / FullMap on the same fabric (>1 means"
                   " the limited directory loses):\n";
        Table g({"Network", "ACKwise2 time", "ACKwise2 energy",
                 "ACKwise4 time", "ACKwise4 energy"});
        Json ratios = Json::array();
        for (std::size_t ni = 0; ni < nets.size(); ++ni) {
            std::vector<std::string> row = {nets[ni]};
            Json jr = Json::object();
            jr["network"] = nets[ni];
            for (std::size_t vi = 0; vi + 1 < variants.size(); ++vi) {
                std::vector<double> rt, re;
                for (std::size_t bi = 0; bi < names.size(); ++bi) {
                    const RunResult &ra = *res[vi][ni][bi];
                    const RunResult &rf = *res[fm][ni][bi];
                    rt.push_back(
                        static_cast<double>(ra.completionTime) /
                        static_cast<double>(rf.completionTime > 0
                                                ? rf.completionTime
                                                : 1));
                    re.push_back(ra.energyTotal /
                                 (rf.energyTotal > 0 ? rf.energyTotal
                                                     : 1.0));
                }
                const double gm_t = geomean(rt);
                const double gm_e = geomean(re);
                row.push_back(fmt(gm_t, 4));
                row.push_back(fmt(gm_e, 4));
                jr[std::string(variants[vi].label) + "_time_ratio"] =
                    gm_t;
                jr[std::string(variants[vi].label) + "_energy_ratio"] =
                    gm_e;
            }
            g.addRow(std::move(row));
            ratios.push(std::move(jr));
        }
        g.print(ctx.out);
        ctx.out << "\nShape check: ACKwise tracks full-map closely on"
                   " broadcast-capable fabrics (mesh/torus/ring) and"
                   " drifts on the crossbar, where every overflow"
                   " broadcast pays N-1 serialized unicasts; fewer"
                   " pointers (ACKwise2) amplify the gap\n";
        Json fig = Json::object();
        fig["table"] = t.toJson();
        fig["vs_fullmap"] = g.toJson();
        fig["points"] = std::move(points);
        fig["ratios"] = std::move(ratios);
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Litmus sweep: the named coherence archetypes under every protocol.
// -------------------------------------------------------------------------

Experiment
litmusExperiment()
{
    Experiment e;
    e.name = "litmus";
    e.title = "Litmus archetypes x protocols (functional check on)";
    e.subtitle = "Producer-consumer, false sharing, TAS lock; every"
                 " read validated against the reference memory";
    e.description =
        "coherence litmus sweep: archetypes x protocols, zero-error"
        " check";
    e.makeJobs = [] {
        std::vector<Job> jobs;
        for (const auto &proto : protocolNames())
            for (const auto &name : litmusNames()) {
                SystemConfig cfg = defaultConfig();
                applyProtocolName(cfg, proto);
                jobs.push_back({name, cfg, proto + " " + name});
            }
        return jobs;
    };
    e.report = [](const ReportContext &ctx) {
        Cursor cur(ctx.results);
        Table t({"Protocol", "Litmus", "Cycles", "Energy (uJ)",
                 "Func errors"});
        std::uint64_t errors = 0;
        for (const auto &proto : protocolNames())
            for (const auto &name : litmusNames()) {
                const auto &r = cur.next();
                errors += r.functionalErrors;
                t.addRow({proto, name,
                          std::to_string(r.completionTime),
                          fmt(r.energyTotal * 1e-6, 3),
                          std::to_string(r.functionalErrors)});
            }
        cur.finish();
        t.print(ctx.out);
        ctx.out << (errors == 0
                        ? "\nAll litmus runs functionally clean\n"
                        : "\nFUNCTIONAL ERRORS DETECTED\n");
        Json fig = Json::object();
        fig["table"] = t.toJson();
        fig["functionalErrors"] = errors;
        return fig;
    };
    return e;
}

// -------------------------------------------------------------------------
// Resilience sweep: fault plans x rates x protocols x fabrics, every
// run replayed through the invariant checker and the reference memory.
// -------------------------------------------------------------------------

/** Benchmarks the resilience sweep exercises: all litmus archetypes
 *  (functional checks are always on for those) plus the two leading
 *  synthetic benchmarks (which runBenchmark runs with functional
 *  checks forced on whenever faults are active). */
const std::vector<std::string> &
faultBenches()
{
    static const std::vector<std::string> benches = [] {
        std::vector<std::string> b = litmusNames();
        const auto &synth = benchmarkNames();
        for (std::size_t i = 0; i < synth.size() && i < 2; ++i)
            b.push_back(synth[i]);
        return b;
    }();
    return benches;
}

/** The injected fault intensities the resilience sweep covers. */
const std::vector<double> &
faultRates()
{
    static const std::vector<double> rates = {1e-4, 1e-3};
    return rates;
}

/** The non-trivial shipped plans ("none" is covered by every other
 *  experiment and by the golden-signature tests). */
std::vector<std::string>
activeFaultPlans()
{
    std::vector<std::string> plans;
    for (const auto &name : faultNames())
        if (name != "none")
            plans.push_back(name);
    return plans;
}

Experiment
faultsExperiment()
{
    Experiment e;
    e.name = "faults";
    e.title = "Resilience: fault plans x rates x protocols x fabrics";
    e.subtitle = "Lossy links + soft errors under SECDED; every run"
                 " replayed through the invariant checker and the"
                 " reference memory";
    e.description =
        "Extension: fault-injection sweep classifying corrected /"
        " detected / silent outcomes";
    e.makeJobs = [] {
        std::vector<Job> jobs;
        for (const auto &plan : activeFaultPlans())
            for (const double rate : faultRates())
                for (const char *proto : {"lacc", "fullmap"})
                    for (const char *net : {"mesh", "xbar"})
                        for (const auto &bench : faultBenches()) {
                            SystemConfig cfg = defaultConfig();
                            applyProtocolName(cfg, proto);
                            applyNetworkName(cfg, net);
                            applyFaultName(cfg, plan);
                            cfg.faultRate = rate;
                            char rate_s[32];
                            std::snprintf(rate_s, sizeof(rate_s),
                                          "%g", rate);
                            jobs.push_back(
                                {bench, cfg,
                                 "faults " + plan + "@" + rate_s + " " +
                                     proto + " " + net + " " + bench});
                        }
        return jobs;
    };
    e.report = [](const ReportContext &ctx) {
        // Every cell aggregates the benches of one (plan, rate,
        // protocol, network) point; walk ctx.results directly (not
        // through Cursor) because classification needs the per-run
        // failed/failReason fields, not just the RunResult.
        std::size_t pos = 0;
        Table t({"Plan", "Rate", "Protocol", "Network", "Recovered",
                 "Detected", "Silent", "Retrans", "ECC fix", "Scrubs",
                 "Status"});
        Json points = Json::array();
        std::uint64_t total_silent = 0;
        std::uint64_t total_detected = 0;
        for (const auto &plan : activeFaultPlans())
            for (const double rate : faultRates())
                for (const char *proto : {"lacc", "fullmap"})
                    for (const char *net : {"mesh", "xbar"}) {
                        std::uint64_t recovered = 0, detected = 0,
                                      silent = 0, retrans = 0,
                                      ecc_fix = 0, scrubs = 0;
                        for (std::size_t bi = 0;
                             bi < faultBenches().size(); ++bi) {
                            if (pos >= ctx.results.size())
                                panic("faults report ran out of sweep"
                                      " results");
                            const JobResult &jr = ctx.results[pos++];
                            const FaultStats &f = jr.result.stats.faults;
                            if (jr.failed) {
                                // RunAbort: the fault was *detected*
                                // (budget exhaustion, unrecoverable
                                // double-bit) — honest, not silent.
                                ++detected;
                                continue;
                            }
                            // Completed runs must be functionally and
                            // structurally clean; anything else is a
                            // silent corruption that escaped recovery.
                            if (jr.result.functionalErrors != 0 ||
                                jr.result.verifyViolations != 0 ||
                                f.silentCorruptions != 0)
                                ++silent;
                            else if (f.any())
                                ++recovered;
                            retrans += f.retransmits;
                            ecc_fix += f.eccCorrected;
                            scrubs += f.scrubs;
                        }
                        total_silent += silent;
                        total_detected += detected;
                        char rate_s[32];
                        std::snprintf(rate_s, sizeof(rate_s), "%g",
                                      rate);
                        t.addRow({plan, rate_s, proto, net,
                                  std::to_string(recovered),
                                  std::to_string(detected),
                                  std::to_string(silent),
                                  std::to_string(retrans),
                                  std::to_string(ecc_fix),
                                  std::to_string(scrubs),
                                  silent == 0 ? "ok" : "SILENT"});
                        Json pt = Json::object();
                        pt["plan"] = plan;
                        pt["rate"] = rate;
                        pt["protocol"] = proto;
                        pt["network"] = net;
                        pt["recovered"] = recovered;
                        pt["detected"] = detected;
                        pt["silent"] = silent;
                        pt["retransmits"] = retrans;
                        pt["ecc_corrected"] = ecc_fix;
                        pt["scrubs"] = scrubs;
                        points.push(std::move(pt));
                    }
        if (pos != ctx.results.size())
            panic("faults report consumed %zu of %zu sweep results",
                  pos, ctx.results.size());
        t.print(ctx.out);
        ctx.out << (total_silent == 0
                        ? "\nZero silent corruptions: every injected"
                          " fault was corrected, retransmitted, or"
                          " detected\n"
                        : "\nSILENT CORRUPTIONS DETECTED — a fault"
                          " escaped the recovery paths\n");
        Json fig = Json::object();
        fig["table"] = t.toJson();
        fig["points"] = std::move(points);
        fig["silent_corruptions"] = total_silent;
        fig["detected_fatal"] = total_detected;
        return fig;
    };
    return e;
}

} // namespace

void
registerBuiltinExperiments(Registry &r)
{
    r.add(utilizationExperiment("fig01", true));
    r.add(utilizationExperiment("fig02", false));
    r.add(breakdownExperiment(true));
    r.add(breakdownExperiment(false));
    r.add(fig10Experiment());
    r.add(fig11Experiment());
    r.add(fig12Experiment());
    r.add(fig13Experiment());
    r.add(fig14Experiment());
    r.add(table1Experiment());
    r.add(table2Experiment());
    r.add(ablationExperiment());
    r.add(ackwiseExperiment());
    r.add(scalingExperiment());
    r.add(networkExperiment());
    r.add(litmusExperiment());
    r.add(faultsExperiment());
}

} // namespace lacc::harness
