/**
 * @file
 * Result sink: assembles the BENCH_<experiment>.json document for a
 * completed sweep (schema kBenchJsonSchemaVersion) and drives whole
 * experiments end to end for the lacc_bench CLI and the thin legacy
 * bench binaries.
 *
 * Document layout (docs/BENCHMARKS.md has the full schema):
 *
 *   {
 *     "schema_version": 2,
 *     "experiment": "fig08",
 *     "title": "...", "description": "...",
 *     "op_scale": 1.0, "repeat": 1,
 *     "jobs": 168, "wall_seconds": 12.3,
 *     "sim_ops": 123456, "wall_ms": 12300.0, "ops_per_sec": 1.0e7,
 *     "figure": { ... experiment-specific, incl. "table" ... },
 *     "runs": [ {"label", "bench", "wall_seconds",
 *                "sim_ops", "wall_ms", "ops_per_sec",
 *                "config": {...}, "result": {...}}, ... ]
 *   }
 *
 * Throughput fields (schema v2): sim_ops counts the simulated
 * operations of ONE pass over the sweep at both document levels (the
 * top-level value equals the sum of the per-run values at any
 * --repeat), wall_ms is the wall clock in milliseconds, and
 * ops_per_sec multiplies the repeats back in: sim_ops * repeat /
 * simulation wall seconds (the top-level rate divides by the sum of
 * per-run walls, excluding report formatting).
 */

#ifndef LACC_HARNESS_SINK_HH
#define LACC_HARNESS_SINK_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/registry.hh"
#include "harness/runner.hh"
#include "sim/profiler.hh"

namespace lacc::harness {

/** A finished experiment: sweep results plus the report's JSON. */
struct ExperimentOutcome
{
    const Experiment *exp = nullptr;
    std::vector<JobResult> results;
    Json figure;
    double opScale = 1.0;
    unsigned repeat = 1;      //!< repeats per job (throughput mode)
    double wallSeconds = 0.0; //!< whole sweep incl. report
    bool profiled = false;    //!< profile holds a --profile snapshot
    prof::Snapshot profile;   //!< per-subsystem exclusive times
};

/** Assemble the full BENCH_<name>.json document for @p outcome. */
Json documentFor(const ExperimentOutcome &outcome);

/**
 * Write @p doc to `<dir>/BENCH_<name>.json` (creating @p dir first).
 * fatal() on I/O errors so CI fails loudly rather than uploading a
 * truncated artifact.
 */
void writeJsonFile(const std::string &dir, const std::string &name,
                   const Json &doc);

/**
 * Run one experiment end to end: sweep with @p opts, format the text
 * output to @p text_out, and return the outcome (for JSON emission).
 */
ExperimentOutcome runExperiment(const Experiment &exp,
                                const SweepOptions &opts,
                                std::ostream &text_out);

/**
 * Crash-safe resume probe (`lacc_bench --resume`): does
 * `<dir>/BENCH_<name>.json` already hold a complete, current
 * artifact for @p exp? True only when the file parses as JSON, its
 * schema_version matches kBenchJsonSchemaVersion, its experiment
 * field is @p exp's name, and the runs array length equals the jobs
 * count — so corrupt, truncated, or stale-schema artifacts are
 * re-run rather than trusted.
 */
bool validArtifactExists(const std::string &dir, const Experiment &exp);

/**
 * main() body for the thin legacy bench binaries: serial sweep, text
 * to stdout, no JSON. @return process exit code.
 */
int runLegacyMain(const std::string &name);

} // namespace lacc::harness

#endif // LACC_HARNESS_SINK_HH
