/**
 * @file
 * Experiment registry for the unified benchmark harness.
 *
 * Every paper figure/table reproduction (and the extension studies) is
 * an Experiment: a named config-sweep generator plus a report function
 * that formats the paper-shaped text table and the figure-specific
 * JSON. The sweep itself is executed by harness/runner.hh — possibly
 * across threads — so experiments never run simulations directly; they
 * only describe the grid and consume the results in grid order.
 *
 * The built-in experiments (fig01..fig14, table1/2, ablation, ackwise,
 * scaling) live in harness/experiments.cc and register themselves the
 * first time the registry is used.
 */

#ifndef LACC_HARNESS_REGISTRY_HH
#define LACC_HARNESS_REGISTRY_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/json.hh"
#include "system/experiment.hh"

namespace lacc::harness {

/** One benchmark x configuration point of an experiment's sweep. */
struct Job
{
    std::string bench;  //!< benchmark name (workload/suite.hh)
    SystemConfig cfg;   //!< full system configuration for this run
    std::string label;  //!< progress label, e.g. "fig8 barnes PCT=4"
};

/** A completed Job with its simulation result and wall-clock cost. */
struct JobResult
{
    Job job;
    /** Result of the job's (identical) repeats; see repeats below. */
    RunResult result;
    /** Wall clock summed over all repeats of this job. */
    double wallSeconds = 0.0;
    /** Times the job was simulated (SweepOptions::repeat). */
    std::uint32_t repeats = 1;
    /**
     * The run aborted (RunAbort: watchdog timeout or an unrecoverable
     * injected fault). `result` holds defaults; the sink records the
     * run with "status": "failed" and the reason, and the JSON
     * checkers skip its per-run validations.
     */
    bool failed = false;
    std::string failReason; //!< "<tag>: <detail>" when failed

    /**
     * Simulated operations per wall second over this job's repeats
     * (0 when no wall time was recorded).
     */
    double
    opsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(result.simOps) * repeats /
                         wallSeconds
                   : 0.0;
    }
};

/** Everything a report function needs to format its outputs. */
struct ReportContext
{
    /** Sweep results, in the exact order makeJobs() produced them. */
    const std::vector<JobResult> &results;
    /** Resolved op-count scale the sweep ran at. */
    double opScale;
    /** Destination for the paper-shaped text output. */
    std::ostream &out;
};

/** A registered figure/table reproduction. */
struct Experiment
{
    std::string name;        //!< registry key, e.g. "fig08"
    std::string title;       //!< banner first line
    std::string subtitle;    //!< banner second line
    std::string description; //!< one-liner for `lacc_bench --list`

    /** Generate the sweep grid (may be empty for config-only tables). */
    std::function<std::vector<Job>()> makeJobs;

    /**
     * Write the text output below the banner (the sink prints the
     * banner from title/subtitle first; the result is byte-identical
     * to the historical standalone binary) and return the
     * figure-specific JSON fragment (normalized tables, geomeans,
     * ...). The generic run records are added by the sink, not here.
     */
    std::function<Json(const ReportContext &)> report;
};

/** Name-keyed collection of experiments. */
class Registry
{
  public:
    /** The process-wide registry, with built-ins registered. */
    static Registry &instance();

    /** Register an experiment; panic() on a duplicate name. */
    void add(Experiment e);

    /** @return the experiment named @p name, or nullptr. */
    const Experiment *find(const std::string &name) const;

    /**
     * Experiments whose name contains @p filter as a substring, in
     * registration order; an empty filter matches everything.
     */
    std::vector<const Experiment *>
    match(const std::string &filter) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

  private:
    std::vector<Experiment> experiments_;
};

/** Defined in experiments.cc: registers the built-in suite. */
void registerBuiltinExperiments(Registry &r);

} // namespace lacc::harness

#endif // LACC_HARNESS_REGISTRY_HH
