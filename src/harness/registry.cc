#include "harness/registry.hh"

#include "sim/log.hh"

namespace lacc::harness {

Registry &
Registry::instance()
{
    // Magic-static: thread-safe one-time construction + registration.
    static Registry r = [] {
        Registry reg;
        registerBuiltinExperiments(reg);
        return reg;
    }();
    return r;
}

void
Registry::add(Experiment e)
{
    if (e.name.empty())
        panic("experiment with empty name");
    for (const auto &existing : experiments_)
        if (existing.name == e.name)
            panic("duplicate experiment '%s'", e.name.c_str());
    if (!e.makeJobs || !e.report)
        panic("experiment '%s' missing makeJobs/report", e.name.c_str());
    experiments_.push_back(std::move(e));
}

const Experiment *
Registry::find(const std::string &name) const
{
    for (const auto &e : experiments_)
        if (e.name == name)
            return &e;
    return nullptr;
}

std::vector<const Experiment *>
Registry::match(const std::string &filter) const
{
    std::vector<const Experiment *> out;
    for (const auto &e : experiments_)
        if (filter.empty() || e.name.find(filter) != std::string::npos)
            out.push_back(&e);
    return out;
}

std::vector<std::string>
Registry::names() const
{
    std::vector<std::string> out;
    out.reserve(experiments_.size());
    for (const auto &e : experiments_)
        out.push_back(e.name);
    return out;
}

} // namespace lacc::harness
