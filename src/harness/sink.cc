#include "harness/sink.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>

#include "sim/log.hh"
#include "system/report.hh"

namespace lacc::harness {

namespace {

/** Banner block above every experiment (shape of the old binaries). */
void
banner(std::ostream &os, const Experiment &exp)
{
    os << "=====================================================\n"
       << exp.title << "\n" << exp.subtitle << "\n"
       << "=====================================================\n";
}

/**
 * Per-subsystem share table for a --profile run, appended after the
 * experiment's report (docs/BENCHMARKS.md shows the format).
 */
void
printProfile(std::ostream &os, const prof::Snapshot &snap)
{
    const std::uint64_t total = snap.totalNs();
    os << "\nProfile (exclusive time per subsystem, all threads)\n"
       << "  bucket         time_ms    share        scopes\n";
    char line[128];
    for (int b = 0; b < prof::kNumBuckets; ++b) {
        const double ms = static_cast<double>(snap.ns[b]) / 1e6;
        const double share =
            total > 0
                ? 100.0 * static_cast<double>(snap.ns[b]) /
                      static_cast<double>(total)
                : 0.0;
        std::snprintf(line, sizeof(line),
                      "  %-10s %12.3f %7.1f%% %13llu\n",
                      prof::bucketName(static_cast<prof::Bucket>(b)),
                      ms, share,
                      static_cast<unsigned long long>(snap.calls[b]));
        os << line;
    }
    std::snprintf(line, sizeof(line), "  %-10s %12.3f\n", "total",
                  static_cast<double>(total) / 1e6);
    os << line;
}

/** The "profile" JSON object of a --profile run. */
Json
profileJson(const prof::Snapshot &snap)
{
    const std::uint64_t total = snap.totalNs();
    Json buckets = Json::object();
    for (int b = 0; b < prof::kNumBuckets; ++b) {
        Json bucket = Json::object();
        bucket["ns"] = snap.ns[b];
        bucket["calls"] = snap.calls[b];
        bucket["share"] =
            total > 0 ? static_cast<double>(snap.ns[b]) /
                            static_cast<double>(total)
                      : 0.0;
        buckets[prof::bucketName(static_cast<prof::Bucket>(b))] =
            std::move(bucket);
    }
    Json profile = Json::object();
    profile["total_ns"] = total;
    profile["buckets"] = std::move(buckets);
    return profile;
}

} // namespace

Json
documentFor(const ExperimentOutcome &outcome)
{
    // Throughput aggregates. sim_ops keeps ONE unit at both document
    // levels: ops of a single pass over the sweep (top level == sum of
    // the per-run sim_ops, at any --repeat). ops_per_sec accounts for
    // the repeats explicitly against the summed simulation wall
    // (report formatting excluded).
    std::uint64_t total_ops = 0;
    double sim_wall = 0.0;
    for (const auto &jr : outcome.results) {
        total_ops += jr.result.simOps;
        sim_wall += jr.wallSeconds;
    }

    Json doc = Json::object();
    doc["schema_version"] = kBenchJsonSchemaVersion;
    doc["experiment"] = outcome.exp->name;
    doc["title"] = outcome.exp->title;
    doc["description"] = outcome.exp->description;
    doc["op_scale"] = outcome.opScale;
    doc["repeat"] = static_cast<std::uint64_t>(outcome.repeat);
    doc["jobs"] =
        static_cast<std::uint64_t>(outcome.results.size());
    doc["wall_seconds"] = outcome.wallSeconds;
    doc["sim_ops"] = total_ops;
    doc["wall_ms"] = outcome.wallSeconds * 1e3;
    doc["ops_per_sec"] =
        sim_wall > 0.0
            ? static_cast<double>(total_ops) * outcome.repeat / sim_wall
            : 0.0;
    doc["figure"] = outcome.figure;
    if (outcome.profiled)
        doc["profile"] = profileJson(outcome.profile);

    Json runs = Json::array();
    for (const auto &jr : outcome.results) {
        Json run = Json::object();
        run["label"] = jr.job.label;
        run["bench"] = jr.job.bench;
        run["wall_seconds"] = jr.wallSeconds;
        run["sim_ops"] = jr.result.simOps;
        run["wall_ms"] = jr.wallSeconds * 1e3;
        run["ops_per_sec"] = jr.opsPerSecond();
        // Schema v3: aborted runs (watchdog timeout, unrecoverable
        // injected fault) keep their slot with a default result so
        // grid order survives; checkers skip their per-run checks.
        run["status"] = jr.failed ? "failed" : "ok";
        if (jr.failed)
            run["fail_reason"] = jr.failReason;
        run["config"] = toJson(jr.job.cfg);
        run["result"] = toJson(jr.result);
        runs.push(std::move(run));
    }
    doc["runs"] = std::move(runs);
    return doc;
}

void
writeJsonFile(const std::string &dir, const std::string &name,
              const Json &doc)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal("cannot create JSON directory '%s': %s", dir.c_str(),
              ec.message().c_str());
    const fs::path path = fs::path(dir) / ("BENCH_" + name + ".json");
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '%s' for writing", path.c_str());
    doc.write(os, 2);
    os << '\n';
    os.flush();
    if (!os)
        fatal("short write to '%s'", path.c_str());
}

bool
validArtifactExists(const std::string &dir, const Experiment &exp)
{
    namespace fs = std::filesystem;
    const fs::path path =
        fs::path(dir) / ("BENCH_" + exp.name + ".json");
    std::ifstream is(path);
    if (!is)
        return false;
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    if (!is.good() && !is.eof())
        return false;

    std::string error;
    const Json doc = Json::parse(text, &error);
    if (!error.empty() || !doc.isObject())
        return false;
    const Json *schema = doc.find("schema_version");
    const Json *name = doc.find("experiment");
    const Json *jobs = doc.find("jobs");
    const Json *runs = doc.find("runs");
    if (schema == nullptr || name == nullptr || jobs == nullptr ||
        runs == nullptr)
        return false;
    if (!schema->isNumber() || !name->isString() ||
        !jobs->isNumber() || !runs->isArray())
        return false;
    if (schema->asDouble() !=
        static_cast<double>(kBenchJsonSchemaVersion))
        return false;
    if (name->asString() != exp.name)
        return false;
    // A complete sweep wrote exactly one run record per job: a
    // truncated runs array (killed mid-write before the fatal() in
    // writeJsonFile could fire, or a partial copy) fails here.
    const double jobs_n = jobs->asDouble();
    return static_cast<double>(runs->elements().size()) == jobs_n &&
           static_cast<double>(exp.makeJobs().size()) == jobs_n;
}

ExperimentOutcome
runExperiment(const Experiment &exp, const SweepOptions &opts,
              std::ostream &text_out)
{
    const auto start = std::chrono::steady_clock::now();
    ExperimentOutcome outcome;
    outcome.exp = &exp;
    outcome.opScale = resolveOpScale(opts);
    outcome.repeat = opts.effectiveRepeat();
    banner(text_out, exp);
    if (opts.profile) {
        // Per-experiment attribution: zero the counters, record the
        // sweep, snapshot before the next experiment reuses them.
        prof::reset();
        prof::setEnabled(true);
    }
    outcome.results = runSweep(exp.makeJobs(), opts);
    if (opts.profile) {
        prof::setEnabled(false);
        outcome.profile = prof::snapshot();
        outcome.profiled = true;
    }

    const ReportContext ctx{outcome.results, outcome.opScale, text_out};
    outcome.figure = exp.report(ctx);
    if (outcome.profiled)
        printProfile(text_out, outcome.profile);
    outcome.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return outcome;
}

int
runLegacyMain(const std::string &name)
{
    setVerbose(false);
    const Experiment *exp = Registry::instance().find(name);
    if (exp == nullptr) {
        std::fprintf(stderr, "unknown experiment '%s'\n", name.c_str());
        return 1;
    }
    SweepOptions opts;
    opts.jobs = 1;
    runExperiment(*exp, opts, std::cout);
    return 0;
}

} // namespace lacc::harness
