#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "sim/abort.hh"

namespace lacc::harness {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

double
resolveOpScale(const SweepOptions &opts)
{
    return opts.opScale > 0.0 ? opts.opScale : opScaleFromEnv();
}

std::vector<JobResult>
runSweep(const std::vector<Job> &jobs, const SweepOptions &opts)
{
    std::vector<JobResult> out(jobs.size());
    if (jobs.empty())
        return out;

    const double scale = resolveOpScale(opts);

    // The single "you are overriding a deliberate sweep" warning
    // implementation lives with ConfigOverrides (sim/overrides.hh).
    {
        std::vector<const SystemConfig *> cfgs;
        cfgs.reserve(jobs.size());
        for (const auto &j : jobs)
            cfgs.push_back(&j.cfg);
        opts.overrides.warnIfOverridingSweep(cfgs);
    }

    const unsigned repeat = opts.effectiveRepeat();
    std::atomic<std::size_t> next{0};

    const auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            Job job = jobs[i];
            opts.overrides.apply(job.cfg);
            if (opts.progress)
                std::fprintf(stderr, "[bench] %s\n", job.label.c_str());
            // Repeats are bit-identical (deterministic simulation);
            // keep the first result, accumulate only wall clock.
            const auto start = Clock::now();
            RunResult r;
            bool failed = false;
            std::string reason;
            try {
                r = runBenchmark(job.bench, job.cfg, scale,
                                 opts.timeoutMs);
                for (unsigned rep = 1; rep < repeat; ++rep)
                    runBenchmark(job.bench, job.cfg, scale,
                                 opts.timeoutMs);
            } catch (const RunAbort &a) {
                // One doomed cell (watchdog timeout, unrecoverable
                // injected fault) must not kill the sweep: record it
                // as failed and keep going.
                failed = true;
                reason = std::string(a.tag()) + ": " + a.what();
                r = RunResult{};
                if (opts.progress)
                    std::fprintf(stderr, "[bench] %s FAILED (%s)\n",
                                 job.label.c_str(), reason.c_str());
            }
            out[i] = JobResult{job, std::move(r), secondsSince(start),
                               repeat, failed, std::move(reason)};
        }
    };

    // --jobs and --sim-threads compose multiplicatively: each job may
    // itself shard across overrides.simThreads workers. Cap the pool
    // so the total stays within the machine's thread budget.
    const unsigned want = opts.jobs == 0 ? 1 : opts.jobs;
    const unsigned budget =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned capped =
        clampJobsToBudget(want, opts.overrides.simThreads, budget);
    if (capped != want) {
        std::fprintf(stderr,
                     "[bench] warning: --jobs %u x --sim-threads %u"
                     " exceeds the machine's %u hardware threads;"
                     " clamping to --jobs %u\n",
                     want, opts.overrides.simThreads, budget, capped);
    }
    const std::size_t n = std::min<std::size_t>(capped, jobs.size());
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    return out;
}

} // namespace lacc::harness
