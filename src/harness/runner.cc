#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

namespace lacc::harness {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

double
resolveOpScale(const SweepOptions &opts)
{
    return opts.opScale > 0.0 ? opts.opScale : opScaleFromEnv();
}

std::vector<JobResult>
runSweep(const std::vector<Job> &jobs, const SweepOptions &opts)
{
    std::vector<JobResult> out(jobs.size());
    if (jobs.empty())
        return out;

    const double scale = resolveOpScale(opts);
    std::atomic<std::size_t> next{0};

    const auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const Job &job = jobs[i];
            if (opts.progress)
                std::fprintf(stderr, "[bench] %s\n", job.label.c_str());
            const auto start = Clock::now();
            RunResult r = runBenchmark(job.bench, job.cfg, scale);
            out[i] = JobResult{job, std::move(r), secondsSince(start)};
        }
    };

    const std::size_t want = opts.jobs == 0 ? 1 : opts.jobs;
    const std::size_t n = std::min<std::size_t>(want, jobs.size());
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    return out;
}

} // namespace lacc::harness
