#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "net/factory.hh"
#include "protocol/factory.hh"

namespace lacc::harness {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

double
resolveOpScale(const SweepOptions &opts)
{
    return opts.opScale > 0.0 ? opts.opScale : opScaleFromEnv();
}

std::vector<JobResult>
runSweep(const std::vector<Job> &jobs, const SweepOptions &opts)
{
    std::vector<JobResult> out(jobs.size());
    if (jobs.empty())
        return out;

    const double scale = resolveOpScale(opts);

    // A --protocol/--network override rewrites job configs but not
    // their labels: an experiment that deliberately sweeps protocols
    // or topologies (e.g. ackwise, network) would print rows whose
    // label names one variant and whose numbers came from another.
    // Make that loudly visible.
    const auto warn_override =
        [&jobs](const char *what, const std::string &value,
                const char *(*name_for)(const SystemConfig &)) {
            if (value.empty())
                return;
            std::size_t overridden = 0;
            for (const auto &j : jobs)
                if (value != name_for(j.cfg))
                    ++overridden;
            if (overridden > 0) {
                std::fprintf(stderr,
                             "[bench] warning: --%s %s overrides"
                             " %zu/%zu jobs whose configs select a"
                             " different %s; labels and table rows"
                             " keep their original %s names\n",
                             what, value.c_str(), overridden,
                             jobs.size(), what, what);
            }
        };
    warn_override("protocol", opts.protocol, protocolNameFor);
    warn_override("network", opts.network, networkNameFor);

    const unsigned repeat = opts.effectiveRepeat();
    std::atomic<std::size_t> next{0};

    const auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            Job job = jobs[i];
            if (!opts.protocol.empty())
                applyProtocolName(job.cfg, opts.protocol);
            if (!opts.network.empty())
                applyNetworkName(job.cfg, opts.network);
            if (opts.progress)
                std::fprintf(stderr, "[bench] %s\n", job.label.c_str());
            // Repeats are bit-identical (deterministic simulation);
            // keep the first result, accumulate only wall clock.
            const auto start = Clock::now();
            RunResult r = runBenchmark(job.bench, job.cfg, scale);
            for (unsigned rep = 1; rep < repeat; ++rep)
                runBenchmark(job.bench, job.cfg, scale);
            out[i] = JobResult{job, std::move(r), secondsSince(start),
                               repeat};
        }
    };

    const std::size_t want = opts.jobs == 0 ? 1 : opts.jobs;
    const std::size_t n = std::min<std::size_t>(want, jobs.size());
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    return out;
}

} // namespace lacc::harness
