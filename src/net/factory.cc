#include "net/factory.hh"

#include "net/crossbar.hh"
#include "net/mesh.hh"
#include "net/ring.hh"
#include "net/torus.hh"
#include "sim/named_registry.hh"

namespace lacc {

namespace {

/**
 * The single registration point: adding a topology means adding one
 * entry here (plus its NetworkKind). Lookup and diagnostics come from
 * the shared named-registry helpers.
 */
struct NetworkEntry
{
    const char *name;
    NetworkKind kind;
    std::unique_ptr<NetworkModel> (*make)(const SystemConfig &,
                                          EnergyModel &);
};

const NetworkEntry kNetworks[] = {
    {"mesh", NetworkKind::Mesh,
     [](const SystemConfig &cfg,
        EnergyModel &energy) -> std::unique_ptr<NetworkModel> {
         return std::make_unique<MeshNetwork>(cfg, energy);
     }},
    {"torus", NetworkKind::Torus,
     [](const SystemConfig &cfg,
        EnergyModel &energy) -> std::unique_ptr<NetworkModel> {
         return std::make_unique<TorusNetwork>(cfg, energy);
     }},
    {"ring", NetworkKind::Ring,
     [](const SystemConfig &cfg,
        EnergyModel &energy) -> std::unique_ptr<NetworkModel> {
         return std::make_unique<RingNetwork>(cfg, energy);
     }},
    {"xbar", NetworkKind::Crossbar,
     [](const SystemConfig &cfg,
        EnergyModel &energy) -> std::unique_ptr<NetworkModel> {
         return std::make_unique<CrossbarNetwork>(cfg, energy);
     }},
};

} // namespace

std::unique_ptr<NetworkModel>
makeNetwork(const SystemConfig &cfg, EnergyModel &energy)
{
    return registry::entryForKind(kNetworks, cfg.networkKind, "network")
        .make(cfg, energy);
}

const std::vector<std::string> &
networkNames()
{
    static const std::vector<std::string> names =
        registry::entryNames(kNetworks);
    return names;
}

const char *
networkNameFor(const SystemConfig &cfg)
{
    return registry::entryForKind(kNetworks, cfg.networkKind, "network")
        .name;
}

void
applyNetworkName(SystemConfig &cfg, const std::string &name)
{
    cfg.networkKind =
        registry::entryForNameOrFatal(kNetworks, "network", name).kind;
}

} // namespace lacc
