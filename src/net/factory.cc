#include "net/factory.hh"

#include "net/crossbar.hh"
#include "net/mesh.hh"
#include "net/ring.hh"
#include "net/torus.hh"
#include "sim/log.hh"

namespace lacc {

namespace {

/**
 * The single registration point: adding a topology means adding one
 * entry here (plus its NetworkKind).
 */
struct NetworkEntry
{
    const char *name;
    NetworkKind kind;
    std::unique_ptr<NetworkModel> (*make)(const SystemConfig &,
                                          EnergyModel &);
};

const NetworkEntry kNetworks[] = {
    {"mesh", NetworkKind::Mesh,
     [](const SystemConfig &cfg,
        EnergyModel &energy) -> std::unique_ptr<NetworkModel> {
         return std::make_unique<MeshNetwork>(cfg, energy);
     }},
    {"torus", NetworkKind::Torus,
     [](const SystemConfig &cfg,
        EnergyModel &energy) -> std::unique_ptr<NetworkModel> {
         return std::make_unique<TorusNetwork>(cfg, energy);
     }},
    {"ring", NetworkKind::Ring,
     [](const SystemConfig &cfg,
        EnergyModel &energy) -> std::unique_ptr<NetworkModel> {
         return std::make_unique<RingNetwork>(cfg, energy);
     }},
    {"xbar", NetworkKind::Crossbar,
     [](const SystemConfig &cfg,
        EnergyModel &energy) -> std::unique_ptr<NetworkModel> {
         return std::make_unique<CrossbarNetwork>(cfg, energy);
     }},
};

const NetworkEntry &
entryFor(const SystemConfig &cfg)
{
    for (const auto &e : kNetworks)
        if (e.kind == cfg.networkKind)
            return e;
    panic("no network registered for NetworkKind %d",
          static_cast<int>(cfg.networkKind));
}

} // namespace

std::unique_ptr<NetworkModel>
makeNetwork(const SystemConfig &cfg, EnergyModel &energy)
{
    return entryFor(cfg).make(cfg, energy);
}

const std::vector<std::string> &
networkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto &e : kNetworks)
            out.emplace_back(e.name);
        return out;
    }();
    return names;
}

const char *
networkNameFor(const SystemConfig &cfg)
{
    return entryFor(cfg).name;
}

void
applyNetworkName(SystemConfig &cfg, const std::string &name)
{
    for (const auto &e : kNetworks) {
        if (name == e.name) {
            cfg.networkKind = e.kind;
            return;
        }
    }
    std::string known;
    for (const auto &e : kNetworks)
        known += (known.empty() ? "" : ", ") + std::string(e.name);
    fatal("unknown network '%s' (known: %s)", name.c_str(),
          known.c_str());
}

} // namespace lacc
