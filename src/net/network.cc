#include "net/network.hh"

#include <algorithm>

#include "sim/log.hh"

namespace lacc {

NetworkModel::NetworkModel(const SystemConfig &cfg, EnergyModel &energy,
                           std::uint32_t num_links)
    : numCores_(cfg.numCores), hopLatency_(cfg.hopLatency),
      modelContention_(cfg.modelContention), energy_(energy),
      links_(num_links), linkQueueing_(num_links, 0),
      linkFlits_(num_links, 0)
{
    if (hopLatency_ < 2)
        fatal("hopLatency must be >= 2 (1 router + 1 link cycle)");
}

Cycle
NetworkModel::traverseLink(std::uint32_t link, Cycle t,
                           std::uint32_t flits)
{
    // Router stage, then link stage. The head flit wants the link at
    // t + 1; with link-only contention it may have to queue behind
    // the link's undrained backlog (see the file header).
    Cycle head_at_link = t + 1;
    if (modelContention_) {
        LinkState &ls = links_[link];
        const Cycle w = head_at_link / kWindow;
        if (w > ls.windowId) {
            // The link drains one flit per cycle between windows.
            const std::uint64_t drained =
                (w - ls.windowId) * kWindow;
            ls.backlog = ls.backlog > drained ? ls.backlog - drained
                                              : 0;
            ls.windowId = w;
        }
        // Work queued ahead minus what drained since window start;
        // messages from slightly lagging clocks (w < windowId) see
        // the current backlog without paying the skew itself.
        const Cycle elapsed =
            w >= ls.windowId ? head_at_link % kWindow : 0;
        if (ls.backlog > elapsed) {
            const Cycle wait = ls.backlog - elapsed;
            stats_.contentionCycles += wait;
            linkQueueing_[link] += wait;
            head_at_link += wait;
        }
        ls.backlog += flits;
    }
    linkFlits_[link] += flits;
    return head_at_link + (hopLatency_ - 1);
}

void
NetworkModel::reset()
{
    std::fill(links_.begin(), links_.end(), LinkState{});
    std::fill(linkQueueing_.begin(), linkQueueing_.end(), 0);
    std::fill(linkFlits_.begin(), linkFlits_.end(), 0);
    stats_ = NetworkStats{};
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
NetworkModel::topCongestedLinks(std::size_t n) const
{
    std::vector<std::pair<std::uint32_t, std::uint64_t>> v;
    for (std::uint32_t l = 0; l < linkQueueing_.size(); ++l)
        if (linkQueueing_[l] > 0)
            v.emplace_back(l, linkQueueing_[l]);
    std::sort(v.begin(), v.end(), [](const auto &a, const auto &b) {
        return a.second > b.second;
    });
    if (v.size() > n)
        v.resize(n);
    return v;
}

std::string
NetworkModel::describeLink(std::uint32_t link) const
{
    return "link" + std::to_string(link);
}

} // namespace lacc
