#include "net/network.hh"

#include <algorithm>

#include "fault/injector.hh"
#include "sim/log.hh"
#include "sim/profiler.hh"

namespace lacc {

NetworkModel::NetworkModel(const SystemConfig &cfg, EnergyModel &energy,
                           std::uint32_t num_links)
    : numCores_(cfg.numCores), hopLatency_(cfg.hopLatency),
      modelContention_(cfg.modelContention), energy_(energy),
      links_(num_links), linkQueueing_(num_links, 0),
      linkFlits_(num_links, 0)
{
    if (hopLatency_ < 2)
        fatal("hopLatency must be >= 2 (1 router + 1 link cycle)");
}

void
NetworkModel::finalizeTables()
{
    // ---- Route table: one link-id span per ordered (src, dst) pair.
    routes_.assign(static_cast<std::size_t>(numCores_) * numCores_,
                   Route{});
    linkSeq_.clear();
    std::vector<std::uint32_t> span;
    for (std::uint32_t src = 0; src < numCores_; ++src) {
        for (std::uint32_t dst = 0; dst < numCores_; ++dst) {
            Route &r = routes_[routeIndex(static_cast<CoreId>(src),
                                          static_cast<CoreId>(dst))];
            r.offset = static_cast<std::uint32_t>(linkSeq_.size());
            if (src == dst)
                continue; // local slice: empty route
            span.clear();
            buildRoute(static_cast<CoreId>(src),
                       static_cast<CoreId>(dst), span);
            if (span.empty())
                fatal("%s: empty route %u -> %u", name(), src, dst);
            for (std::uint32_t l : span)
                if (l >= links_.size())
                    fatal("%s: route %u -> %u uses link %u of %zu",
                          name(), src, dst, l, links_.size());
            r.hops = static_cast<std::uint32_t>(span.size());
            linkSeq_.insert(linkSeq_.end(), span.begin(), span.end());
        }
    }

    // ---- Broadcast schedules: one topologically-ordered hop list
    // per source, validated to cover every non-source tile exactly
    // once with parents defined before use.
    treeOffsets_.assign(numCores_ + 1, 0);
    treeHops_.clear();
    std::vector<TreeHop> tree;
    std::vector<std::uint8_t> reached(numCores_, 0);
    for (std::uint32_t src = 0; src < numCores_; ++src) {
        tree.clear();
        buildBroadcastSchedule(static_cast<CoreId>(src), tree);
        if (tree.size() != numCores_ - 1u && numCores_ > 0)
            fatal("%s: broadcast tree of %u has %zu hops, want %u",
                  name(), src, tree.size(), numCores_ - 1);
        std::fill(reached.begin(), reached.end(), 0);
        reached[src] = 1;
        for (const TreeHop &h : tree) {
            if (h.link >= links_.size())
                fatal("%s: broadcast tree of %u uses link %u of %zu",
                      name(), src, h.link, links_.size());
            if (!reached[h.parent])
                fatal("%s: broadcast tree of %u reaches %u from "
                      "unvisited parent %u",
                      name(), src, static_cast<std::uint32_t>(h.child),
                      static_cast<std::uint32_t>(h.parent));
            if (reached[h.child])
                fatal("%s: broadcast tree of %u covers %u twice",
                      name(), src, static_cast<std::uint32_t>(h.child));
            reached[h.child] = 1;
        }
        treeHops_.insert(treeHops_.end(), tree.begin(), tree.end());
        treeOffsets_[src + 1] =
            static_cast<std::uint32_t>(treeHops_.size());
    }

    // ---- Batched per-broadcast accounting. Every schedule has
    // exactly numCores-1 hops, so the factors are global: a native
    // broadcast injects once, occupies each tree link once, and is
    // replicated by every router; an emulated one is numCores-1
    // serialized unicasts, each injecting and paying one hop.
    const std::uint64_t entries = numCores_ > 0 ? numCores_ - 1 : 0;
    bmeta_.flitHopFactor = entries;
    bmeta_.linkEnergyFactor = entries;
    if (hasNativeBroadcast()) {
        bmeta_.routerEnergyFactor = numCores_;
        bmeta_.injectedFactor = 1;
        bmeta_.extraUnicasts = 0;
    } else {
        bmeta_.routerEnergyFactor = entries;
        bmeta_.injectedFactor = entries;
        bmeta_.extraUnicasts = entries;
    }
    bmeta_.srcHearsTail = selfArrivalAtTail();

    headScratch_.assign(numCores_, 0);
}

Cycle
NetworkModel::unicast(CoreId src, CoreId dst, std::uint32_t flits,
                      Cycle depart)
{
    prof::Scope ps(prof::Network);
    ++stats_.unicasts;
    stats_.flitsInjected += flits;
    if (src == dst)
        return depart; // local slice: no network traversal

    const Route r = routes_[routeIndex(src, dst)];
    const std::uint32_t *seq = linkSeq_.data() + r.offset;
    Cycle t;
    if (modelContention_) {
        t = depart;
        for (std::uint32_t i = 0; i < r.hops; ++i)
            t = traverseLink(seq[i], t, flits);
    } else {
        // No-contention fast path: per-link load still counts, but
        // the arrival is analytic. Fault rolls use the analytic
        // per-hop head times so the schedule matches the contention
        // path's event identity scheme.
        for (std::uint32_t i = 0; i < r.hops; ++i) {
            if (fault_ != nullptr)
                rollLinkFault(seq[i],
                              depart +
                                  static_cast<Cycle>(i) * hopLatency_ +
                                  1,
                              flits);
            linkFlits_[seq[i]] += flits;
        }
        t = depart + static_cast<Cycle>(r.hops) * hopLatency_;
    }
    const std::uint64_t fh = static_cast<std::uint64_t>(flits) * r.hops;
    stats_.flitHops += fh;
    energy_.addRouter(fh);
    energy_.addLink(fh);
    // Wormhole serialization: tail arrives flits-1 cycles after head.
    return t + (flits > 0 ? flits - 1 : 0);
}

Cycle
NetworkModel::broadcast(CoreId src, std::uint32_t flits, Cycle depart,
                        std::vector<Cycle> &arrivals)
{
    prof::Scope ps(prof::Network);
    ++stats_.broadcasts;
    stats_.unicasts += bmeta_.extraUnicasts;
    stats_.flitsInjected +=
        static_cast<std::uint64_t>(flits) * bmeta_.injectedFactor;
    const Cycle tail = flits > 0 ? flits - 1 : 0;
    arrivals.assign(numCores_, 0);
    arrivals[src] = depart + (bmeta_.srcHearsTail ? tail : 0);
    headScratch_[src] = depart;

    Cycle max_arrival = arrivals[src];
    const TreeHop *hops = treeHops_.data() + treeOffsets_[src];
    const std::uint32_t n = treeOffsets_[src + 1] - treeOffsets_[src];
    if (modelContention_) {
        for (std::uint32_t i = 0; i < n; ++i) {
            const TreeHop &h = hops[i];
            const Cycle head = traverseLink(
                h.link,
                headScratch_[h.parent] +
                    static_cast<Cycle>(h.delayFactor) * flits,
                flits);
            headScratch_[h.child] = head;
            const Cycle a = head + tail;
            arrivals[h.child] = a;
            if (a > max_arrival)
                max_arrival = a;
        }
    } else {
        for (std::uint32_t i = 0; i < n; ++i) {
            const TreeHop &h = hops[i];
            if (fault_ != nullptr)
                rollLinkFault(h.link,
                              headScratch_[h.parent] +
                                  static_cast<Cycle>(h.delayFactor) *
                                      flits +
                                  1,
                              flits);
            linkFlits_[h.link] += flits;
            const Cycle head =
                headScratch_[h.parent] +
                static_cast<Cycle>(h.delayFactor) * flits + hopLatency_;
            headScratch_[h.child] = head;
            const Cycle a = head + tail;
            arrivals[h.child] = a;
            if (a > max_arrival)
                max_arrival = a;
        }
    }

    stats_.flitHops +=
        static_cast<std::uint64_t>(flits) * bmeta_.flitHopFactor;
    energy_.addLink(static_cast<std::uint64_t>(flits) *
                    bmeta_.linkEnergyFactor);
    energy_.addRouter(static_cast<std::uint64_t>(flits) *
                      bmeta_.routerEnergyFactor);
    return max_arrival;
}

void
NetworkModel::rollLinkFault(std::uint32_t link, Cycle t,
                            std::uint32_t flits)
{
    const LinkFault f = fault_->rollLink(link, t, flits);
    if (f == LinkFault::None || faultPending_)
        return; // first fault of the route wins
    faultPending_ = true;
    faultDrop_ = f == LinkFault::Drop;
}

void
NetworkModel::reset()
{
    std::fill(links_.begin(), links_.end(), LinkState{});
    std::fill(linkQueueing_.begin(), linkQueueing_.end(), 0);
    std::fill(linkFlits_.begin(), linkFlits_.end(), 0);
    stats_ = NetworkStats{};
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
NetworkModel::topCongestedLinks(std::size_t n) const
{
    std::vector<std::pair<std::uint32_t, std::uint64_t>> v;
    for (std::uint32_t l = 0; l < linkQueueing_.size(); ++l)
        if (linkQueueing_[l] > 0)
            v.emplace_back(l, linkQueueing_[l]);
    // Deterministic total order: queueing desc, link id asc — equal
    // queueing must not reorder across runs or sort implementations.
    std::sort(v.begin(), v.end(), [](const auto &a, const auto &b) {
        if (a.second != b.second)
            return a.second > b.second;
        return a.first < b.first;
    });
    if (v.size() > n)
        v.resize(n);
    return v;
}

std::string
NetworkModel::describeLink(std::uint32_t link) const
{
    return "link" + std::to_string(link);
}

std::size_t
NetworkModel::tableFootprintBytes() const
{
    return routes_.size() * sizeof(Route) +
           linkSeq_.size() * sizeof(std::uint32_t) +
           treeOffsets_.size() * sizeof(std::uint32_t) +
           treeHops_.size() * sizeof(TreeHop) +
           headScratch_.size() * sizeof(Cycle);
}

} // namespace lacc
