#include "net/ring.hh"

#include <algorithm>

namespace lacc {

RingNetwork::RingNetwork(const SystemConfig &cfg, EnergyModel &energy)
    : NetworkModel(cfg, energy, cfg.numCores * 2)
{
    finalizeTables();
}

void
RingNetwork::buildRoute(CoreId src, CoreId dst,
                        std::vector<std::uint32_t> &out) const
{
    // Shorter arc; ties go clockwise — the reference walker's order.
    const std::uint32_t cw = cwDist(src, dst);
    const bool clockwise = cw <= numCores_ - cw;
    CoreId at = src;
    while (at != dst) {
        out.push_back(linkId(at, clockwise ? Clockwise : CounterCw));
        at = static_cast<CoreId>(clockwise
                                     ? (at + 1) % numCores_
                                     : (at + numCores_ - 1) % numCores_);
    }
}

void
RingNetwork::buildBroadcastSchedule(CoreId src,
                                    std::vector<TreeHop> &out) const
{
    // Two arcs in the reference walker's order: clockwise covers N/2
    // nodes, counter-clockwise the rest.
    const std::uint32_t cw_cnt = numCores_ / 2;
    CoreId at = src;
    for (std::uint32_t i = 0; i < cw_cnt; ++i) {
        const CoreId nxt = static_cast<CoreId>((at + 1) % numCores_);
        out.push_back({linkId(at, Clockwise), at, nxt, 0});
        at = nxt;
    }
    at = src;
    for (std::uint32_t i = 0; i + 1 + cw_cnt < numCores_; ++i) {
        const CoreId nxt =
            static_cast<CoreId>((at + numCores_ - 1) % numCores_);
        out.push_back({linkId(at, CounterCw), at, nxt, 0});
        at = nxt;
    }
}

Cycle
RingNetwork::referenceUnicast(CoreId src, CoreId dst,
                              std::uint32_t flits, Cycle depart)
{
    ++stats_.unicasts;
    stats_.flitsInjected += flits;
    if (src == dst)
        return depart; // local slice: no network traversal

    // Shorter arc; ties go clockwise.
    const std::uint32_t cw = cwDist(src, dst);
    const bool clockwise = cw <= numCores_ - cw;
    Cycle t = depart;
    std::uint32_t hops = 0;
    CoreId at = src;
    while (at != dst) {
        const CoreId nxt = static_cast<CoreId>(
            clockwise ? (at + 1) % numCores_
                      : (at + numCores_ - 1) % numCores_);
        t = traverseLink(linkId(at, clockwise ? Clockwise : CounterCw),
                         t, flits);
        at = nxt;
        ++hops;
    }
    stats_.flitHops += static_cast<std::uint64_t>(flits) * hops;
    energy_.addRouter(static_cast<std::uint64_t>(flits) * hops);
    energy_.addLink(static_cast<std::uint64_t>(flits) * hops);
    // Wormhole serialization: tail arrives flits-1 cycles after head.
    return t + (flits > 0 ? flits - 1 : 0);
}

Cycle
RingNetwork::referenceBroadcast(CoreId src, std::uint32_t flits,
                                Cycle depart,
                                std::vector<Cycle> &arrivals)
{
    ++stats_.broadcasts;
    stats_.flitsInjected += flits;
    arrivals.assign(numCores_, 0);
    arrivals[src] = depart;

    // One injection expands both ways around the ring: the clockwise
    // arc covers N/2 nodes, the counter-clockwise arc the rest; every
    // arc link is occupied once (N-1 tree links total).
    std::uint64_t tree_links = 0;
    Cycle max_arrival = depart;
    const auto tail = [flits](Cycle head) {
        return head + (flits > 0 ? flits - 1 : 0);
    };

    const std::uint32_t cw_cnt = numCores_ / 2;
    Cycle t = depart;
    CoreId at = src;
    for (std::uint32_t i = 0; i < cw_cnt; ++i) {
        const CoreId nxt = static_cast<CoreId>((at + 1) % numCores_);
        t = traverseLink(linkId(at, Clockwise), t, flits);
        ++tree_links;
        arrivals[nxt] = tail(t);
        max_arrival = std::max(max_arrival, arrivals[nxt]);
        at = nxt;
    }
    t = depart;
    at = src;
    for (std::uint32_t i = 0; i + 1 + cw_cnt < numCores_; ++i) {
        const CoreId nxt =
            static_cast<CoreId>((at + numCores_ - 1) % numCores_);
        t = traverseLink(linkId(at, CounterCw), t, flits);
        ++tree_links;
        arrivals[nxt] = tail(t);
        max_arrival = std::max(max_arrival, arrivals[nxt]);
        at = nxt;
    }

    stats_.flitHops += static_cast<std::uint64_t>(flits) * tree_links;
    energy_.addLink(static_cast<std::uint64_t>(flits) * tree_links);
    // Every router on the two arcs forwards the message once.
    energy_.addRouter(static_cast<std::uint64_t>(flits) * numCores_);
    return max_arrival;
}

std::string
RingNetwork::describeLink(std::uint32_t link) const
{
    return "tile" + std::to_string(link / 2) +
           (link % 2 == Clockwise ? "->cw" : "->ccw");
}

} // namespace lacc
