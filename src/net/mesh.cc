#include "net/mesh.hh"

#include <algorithm>

#include "sim/log.hh"

namespace lacc {

MeshNetwork::MeshNetwork(const SystemConfig &cfg, EnergyModel &energy)
    : NetworkModel(cfg, energy, cfg.numCores * 4),
      width_(cfg.meshWidth), height_(cfg.meshHeight())
{
    finalizeTables();
}

CoreId
MeshNetwork::nextHop(CoreId at, CoreId dst, Dir &dir_out) const
{
    const auto ax = xOf(at), ay = yOf(at);
    const auto dx = xOf(dst), dy = yOf(dst);
    if (ax < dx) {
        dir_out = East;
        return static_cast<CoreId>(at + 1);
    }
    if (ax > dx) {
        dir_out = West;
        return static_cast<CoreId>(at - 1);
    }
    if (ay < dy) {
        dir_out = South;
        return static_cast<CoreId>(at + width_);
    }
    if (ay > dy) {
        dir_out = North;
        return static_cast<CoreId>(at - width_);
    }
    panic("nextHop called with at == dst");
}

void
MeshNetwork::buildRoute(CoreId src, CoreId dst,
                        std::vector<std::uint32_t> &out) const
{
    // XY dimension order, exactly the walk nextHop takes.
    CoreId at = src;
    while (at != dst) {
        Dir d;
        const CoreId nxt = nextHop(at, dst, d);
        out.push_back(linkId(at, d));
        at = nxt;
    }
}

void
MeshNetwork::buildBroadcastSchedule(CoreId src,
                                    std::vector<TreeHop> &out) const
{
    // X-then-Y tree in the reference walker's traversal order: expand
    // east then west along the source row, then every column (x
    // ascending) south then north.
    const auto sx = xOf(src);
    const auto sy = yOf(src);
    const auto at = [this](std::uint32_t x, std::uint32_t y) {
        return static_cast<CoreId>(y * width_ + x);
    };

    for (std::uint32_t x = sx + 1; x < width_; ++x)
        out.push_back({linkId(at(x - 1, sy), East), at(x - 1, sy),
                       at(x, sy), 0});
    for (std::int64_t x = static_cast<std::int64_t>(sx) - 1; x >= 0;
         --x) {
        const auto ux = static_cast<std::uint32_t>(x);
        out.push_back({linkId(at(ux + 1, sy), West), at(ux + 1, sy),
                       at(ux, sy), 0});
    }
    for (std::uint32_t x = 0; x < width_; ++x) {
        for (std::uint32_t y = sy + 1; y < height_; ++y)
            out.push_back({linkId(at(x, y - 1), South), at(x, y - 1),
                           at(x, y), 0});
        for (std::int64_t y = static_cast<std::int64_t>(sy) - 1; y >= 0;
             --y) {
            const auto uy = static_cast<std::uint32_t>(y);
            out.push_back({linkId(at(x, uy + 1), North), at(x, uy + 1),
                           at(x, uy), 0});
        }
    }
}

Cycle
MeshNetwork::referenceUnicast(CoreId src, CoreId dst,
                              std::uint32_t flits, Cycle depart)
{
    ++stats_.unicasts;
    stats_.flitsInjected += flits;
    if (src == dst)
        return depart; // local slice: no network traversal

    Cycle t = depart;
    std::uint32_t hops = 0;
    CoreId at = src;
    while (at != dst) {
        Dir d;
        const CoreId nxt = nextHop(at, dst, d);
        t = traverseLink(linkId(at, d), t, flits);
        at = nxt;
        ++hops;
    }
    stats_.flitHops += static_cast<std::uint64_t>(flits) * hops;
    energy_.addRouter(static_cast<std::uint64_t>(flits) * hops);
    energy_.addLink(static_cast<std::uint64_t>(flits) * hops);
    // Wormhole serialization: tail arrives flits-1 cycles after head.
    return t + (flits > 0 ? flits - 1 : 0);
}

Cycle
MeshNetwork::referenceBroadcast(CoreId src, std::uint32_t flits,
                                Cycle depart,
                                std::vector<Cycle> &arrivals)
{
    ++stats_.broadcasts;
    stats_.flitsInjected += flits;
    arrivals.assign(numCores_, 0);
    arrivals[src] = depart;

    // X-then-Y tree: the message expands east and west along the
    // source row, and each row node forwards north and south along its
    // column. Every tree link is traversed exactly once per broadcast.
    std::uint64_t tree_links = 0;
    Cycle max_arrival = depart;

    const auto sx = xOf(src);
    const auto sy = yOf(src);

    // Head-flit time at each node of the source row.
    std::vector<Cycle> row_head(width_, 0);
    row_head[sx] = depart;
    for (std::uint32_t x = sx + 1; x < width_; ++x) {
        const CoreId at = static_cast<CoreId>(sy * width_ + (x - 1));
        row_head[x] = traverseLink(linkId(at, East), row_head[x - 1],
                                   flits);
        ++tree_links;
    }
    for (std::int64_t x = static_cast<std::int64_t>(sx) - 1; x >= 0; --x) {
        const CoreId at = static_cast<CoreId>(sy * width_ + (x + 1));
        row_head[x] = traverseLink(linkId(at, West), row_head[x + 1],
                                   flits);
        ++tree_links;
    }

    for (std::uint32_t x = 0; x < width_; ++x) {
        const CoreId row_node = static_cast<CoreId>(sy * width_ + x);
        arrivals[row_node] = row_head[x] + (flits > 0 ? flits - 1 : 0);
        max_arrival = std::max(max_arrival, arrivals[row_node]);

        Cycle t = row_head[x];
        for (std::uint32_t y = sy + 1; y < height_; ++y) {
            const CoreId at = static_cast<CoreId>((y - 1) * width_ + x);
            const CoreId to = static_cast<CoreId>(y * width_ + x);
            t = traverseLink(linkId(at, South), t, flits);
            ++tree_links;
            arrivals[to] = t + (flits > 0 ? flits - 1 : 0);
            max_arrival = std::max(max_arrival, arrivals[to]);
        }
        t = row_head[x];
        for (std::int64_t y = static_cast<std::int64_t>(sy) - 1; y >= 0;
             --y) {
            const CoreId at = static_cast<CoreId>((y + 1) * width_ + x);
            const CoreId to = static_cast<CoreId>(y * width_ + x);
            t = traverseLink(linkId(at, North), t, flits);
            ++tree_links;
            arrivals[to] = t + (flits > 0 ? flits - 1 : 0);
            max_arrival = std::max(max_arrival, arrivals[to]);
        }
    }

    stats_.flitHops += static_cast<std::uint64_t>(flits) * tree_links;
    energy_.addLink(static_cast<std::uint64_t>(flits) * tree_links);
    // Every router in the mesh replicates/forwards the message once.
    energy_.addRouter(static_cast<std::uint64_t>(flits) * numCores_);
    return max_arrival;
}

std::string
MeshNetwork::describeLink(std::uint32_t link) const
{
    static const char *dirs[4] = {"E", "W", "S", "N"};
    const std::uint32_t node = link / 4;
    return "tile" + std::to_string(node) + "->" +
           dirs[link % 4];
}

} // namespace lacc
