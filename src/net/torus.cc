#include "net/torus.hh"

#include <algorithm>

namespace lacc {

TorusNetwork::TorusNetwork(const SystemConfig &cfg, EnergyModel &energy)
    : NetworkModel(cfg, energy, cfg.numCores * 4),
      width_(cfg.meshWidth), height_(cfg.meshHeight())
{
    finalizeTables();
}

void
TorusNetwork::buildRoute(CoreId src, CoreId dst,
                         std::vector<std::uint32_t> &out) const
{
    // X ring first, shorter way around (ties go East), then Y ring
    // (ties go South) — the reference walker's exact link order.
    std::uint32_t x = xOf(src);
    const std::uint32_t dx = xOf(dst);
    const std::uint32_t sy = yOf(src);
    {
        const std::uint32_t fwd = fwdDist(x, dx, width_);
        const bool east = fwd <= width_ - fwd;
        while (x != dx) {
            out.push_back(linkId(node(x, sy), east ? East : West));
            x = east ? (x + 1) % width_ : (x + width_ - 1) % width_;
        }
    }
    {
        std::uint32_t y = sy;
        const std::uint32_t dy = yOf(dst);
        const std::uint32_t fwd = fwdDist(y, dy, height_);
        const bool south = fwd <= height_ - fwd;
        while (y != dy) {
            out.push_back(linkId(node(x, y), south ? South : North));
            y = south ? (y + 1) % height_ : (y + height_ - 1) % height_;
        }
    }
}

void
TorusNetwork::buildBroadcastSchedule(CoreId src,
                                     std::vector<TreeHop> &out) const
{
    // X-then-Y tree over the rings in the reference walker's order:
    // East covers width/2 row nodes, West the rest; then every column
    // (x ascending) expands South (height/2 nodes) then North.
    const std::uint32_t sx = xOf(src);
    const std::uint32_t sy = yOf(src);

    const std::uint32_t east_cnt = width_ / 2;
    for (std::uint32_t i = 0, x = sx; i < east_cnt; ++i) {
        const std::uint32_t nxt = (x + 1) % width_;
        out.push_back({linkId(node(x, sy), East), node(x, sy),
                       node(nxt, sy), 0});
        x = nxt;
    }
    for (std::uint32_t i = 0, x = sx; i + 1 + east_cnt < width_; ++i) {
        const std::uint32_t nxt = (x + width_ - 1) % width_;
        out.push_back({linkId(node(x, sy), West), node(x, sy),
                       node(nxt, sy), 0});
        x = nxt;
    }

    const std::uint32_t south_cnt = height_ / 2;
    for (std::uint32_t x = 0; x < width_; ++x) {
        for (std::uint32_t i = 0, y = sy; i < south_cnt; ++i) {
            const std::uint32_t nxt = (y + 1) % height_;
            out.push_back({linkId(node(x, y), South), node(x, y),
                           node(x, nxt), 0});
            y = nxt;
        }
        for (std::uint32_t i = 0, y = sy; i + 1 + south_cnt < height_;
             ++i) {
            const std::uint32_t nxt = (y + height_ - 1) % height_;
            out.push_back({linkId(node(x, y), North), node(x, y),
                           node(x, nxt), 0});
            y = nxt;
        }
    }
}

Cycle
TorusNetwork::referenceUnicast(CoreId src, CoreId dst,
                               std::uint32_t flits, Cycle depart)
{
    ++stats_.unicasts;
    stats_.flitsInjected += flits;
    if (src == dst)
        return depart; // local slice: no network traversal

    Cycle t = depart;
    std::uint32_t hops = 0;

    // X ring first, shorter way around (ties go East), then Y ring.
    std::uint32_t x = xOf(src);
    const std::uint32_t dx = xOf(dst);
    const std::uint32_t sy = yOf(src);
    {
        const std::uint32_t fwd = fwdDist(x, dx, width_);
        const bool east = fwd <= width_ - fwd;
        while (x != dx) {
            const std::uint32_t nxt =
                east ? (x + 1) % width_ : (x + width_ - 1) % width_;
            t = traverseLink(linkId(node(x, sy), east ? East : West),
                             t, flits);
            x = nxt;
            ++hops;
        }
    }
    {
        std::uint32_t y = sy;
        const std::uint32_t dy = yOf(dst);
        const std::uint32_t fwd = fwdDist(y, dy, height_);
        const bool south = fwd <= height_ - fwd;
        while (y != dy) {
            const std::uint32_t nxt = south
                                          ? (y + 1) % height_
                                          : (y + height_ - 1) % height_;
            t = traverseLink(linkId(node(x, y), south ? South : North),
                             t, flits);
            y = nxt;
            ++hops;
        }
    }

    stats_.flitHops += static_cast<std::uint64_t>(flits) * hops;
    energy_.addRouter(static_cast<std::uint64_t>(flits) * hops);
    energy_.addLink(static_cast<std::uint64_t>(flits) * hops);
    // Wormhole serialization: tail arrives flits-1 cycles after head.
    return t + (flits > 0 ? flits - 1 : 0);
}

Cycle
TorusNetwork::referenceBroadcast(CoreId src, std::uint32_t flits,
                                 Cycle depart,
                                 std::vector<Cycle> &arrivals)
{
    ++stats_.broadcasts;
    stats_.flitsInjected += flits;
    arrivals.assign(numCores_, 0);
    arrivals[src] = depart;

    // X-then-Y tree over the rings: the message expands both ways
    // around the source row (East covers width/2 nodes, West the
    // rest), and each row node forwards both ways around its column.
    // Every tree link is traversed exactly once: (W-1) + W*(H-1) =
    // N-1 links, like the mesh tree but with half the diameter.
    std::uint64_t tree_links = 0;
    Cycle max_arrival = depart;

    const std::uint32_t sx = xOf(src);
    const std::uint32_t sy = yOf(src);
    const auto tail = [flits](Cycle head) {
        return head + (flits > 0 ? flits - 1 : 0);
    };

    // Head-flit time at each node of the source row.
    std::vector<Cycle> row_head(width_, 0);
    row_head[sx] = depart;
    const std::uint32_t east_cnt = width_ / 2;
    for (std::uint32_t i = 0, x = sx; i < east_cnt; ++i) {
        const std::uint32_t nxt = (x + 1) % width_;
        row_head[nxt] = traverseLink(linkId(node(x, sy), East),
                                     row_head[x], flits);
        ++tree_links;
        x = nxt;
    }
    for (std::uint32_t i = 0, x = sx; i + 1 + east_cnt < width_; ++i) {
        const std::uint32_t nxt = (x + width_ - 1) % width_;
        row_head[nxt] = traverseLink(linkId(node(x, sy), West),
                                     row_head[x], flits);
        ++tree_links;
        x = nxt;
    }

    const std::uint32_t south_cnt = height_ / 2;
    for (std::uint32_t x = 0; x < width_; ++x) {
        arrivals[node(x, sy)] = tail(row_head[x]);
        max_arrival = std::max(max_arrival, arrivals[node(x, sy)]);

        Cycle t = row_head[x];
        for (std::uint32_t i = 0, y = sy; i < south_cnt; ++i) {
            const std::uint32_t nxt = (y + 1) % height_;
            t = traverseLink(linkId(node(x, y), South), t, flits);
            ++tree_links;
            arrivals[node(x, nxt)] = tail(t);
            max_arrival = std::max(max_arrival, arrivals[node(x, nxt)]);
            y = nxt;
        }
        t = row_head[x];
        for (std::uint32_t i = 0, y = sy; i + 1 + south_cnt < height_;
             ++i) {
            const std::uint32_t nxt = (y + height_ - 1) % height_;
            t = traverseLink(linkId(node(x, y), North), t, flits);
            ++tree_links;
            arrivals[node(x, nxt)] = tail(t);
            max_arrival = std::max(max_arrival, arrivals[node(x, nxt)]);
            y = nxt;
        }
    }

    stats_.flitHops += static_cast<std::uint64_t>(flits) * tree_links;
    energy_.addLink(static_cast<std::uint64_t>(flits) * tree_links);
    // Every router replicates/forwards the message once.
    energy_.addRouter(static_cast<std::uint64_t>(flits) * numCores_);
    return max_arrival;
}

std::string
TorusNetwork::describeLink(std::uint32_t link) const
{
    static const char *dirs[4] = {"E", "W", "S", "N"};
    const std::uint32_t nd = link / 4;
    return "tile" + std::to_string(nd) + "~>" + dirs[link % 4];
}

} // namespace lacc
