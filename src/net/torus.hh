/**
 * @file
 * 2-D torus interconnect: the mesh with wraparound links in both
 * dimensions. Dimension-ordered (X-then-Y) routing picks the shorter
 * direction around each ring, halving the average hop distance of the
 * mesh at equal bisection cost; broadcasts span an X-then-Y tree over
 * the row/column rings with a single injection (native broadcast,
 * like the mesh).
 */

#ifndef LACC_NET_TORUS_HH
#define LACC_NET_TORUS_HH

#include "net/network.hh"

namespace lacc {

/** 2-D torus NoC (wraparound XY); see file header. */
class TorusNetwork : public NetworkModel
{
  public:
    TorusNetwork(const SystemConfig &cfg, EnergyModel &energy);

    const char *name() const override { return "torus"; }

    /** Torus X coordinate (column) of a tile. */
    std::uint32_t xOf(CoreId tile) const { return tile % width_; }

    /** Torus Y coordinate (row) of a tile. */
    std::uint32_t yOf(CoreId tile) const { return tile / width_; }

    bool hasNativeBroadcast() const override { return true; }

    /** The X-then-Y ring tree re-delivers to the source with the tail. */
    bool selfArrivalAtTail() const override { return true; }

    Cycle referenceUnicast(CoreId src, CoreId dst, std::uint32_t flits,
                           Cycle depart) override;

    Cycle referenceBroadcast(CoreId src, std::uint32_t flits,
                             Cycle depart,
                             std::vector<Cycle> &arrivals) override;

    std::string describeLink(std::uint32_t link) const override;

  protected:
    void buildRoute(CoreId src, CoreId dst,
                    std::vector<std::uint32_t> &out) const override;

    void buildBroadcastSchedule(CoreId src,
                                std::vector<TreeHop> &out)
        const override;

  private:
    /** Directed link ids: 4 per node (E, W, S, N), wrapping. */
    enum Dir : std::uint32_t { East = 0, West = 1, South = 2, North = 3 };

    std::uint32_t linkId(CoreId node, Dir d) const
    {
        return node * 4 + d;
    }

    /** Ring distance going "up" (East/South) from a to b, modulo n. */
    static std::uint32_t
    fwdDist(std::uint32_t a, std::uint32_t b, std::uint32_t n)
    {
        return b >= a ? b - a : b + n - a;
    }

    /** Shorter of the two ring directions (ties go forward). */
    static std::uint32_t
    ringDist(std::uint32_t a, std::uint32_t b, std::uint32_t n)
    {
        const std::uint32_t f = fwdDist(a, b, n);
        return f <= n - f ? f : n - f;
    }

    CoreId node(std::uint32_t x, std::uint32_t y) const
    {
        return static_cast<CoreId>(y * width_ + x);
    }

    std::uint32_t width_;
    std::uint32_t height_;
};

} // namespace lacc

#endif // LACC_NET_TORUS_HH
