/**
 * @file
 * Full crossbar interconnect: every tile pair is one switch traversal
 * apart, so unicast latency is uniform (hopLatency + serialization)
 * and contention is modeled on the per-destination output ports.
 *
 * There is NO native broadcast: a crossbar switch has no replication
 * tree, so a broadcast is emulated as one unicast per destination,
 * serialized at the source injection port (one flit per cycle). This
 * makes ACKwise_p pointer overflow genuinely expensive — (N-1) x
 * flits injected instead of one message — which is exactly the
 * topology-sensitivity question the network experiment measures. In
 * schedule form (net/network.hh) every hop hangs off the source with
 * delayFactor i, reproducing the i*flits injection serialization.
 */

#ifndef LACC_NET_CROSSBAR_HH
#define LACC_NET_CROSSBAR_HH

#include "net/network.hh"

namespace lacc {

/** Uniform-latency crossbar NoC; see file header. */
class CrossbarNetwork : public NetworkModel
{
  public:
    CrossbarNetwork(const SystemConfig &cfg, EnergyModel &energy);

    const char *name() const override { return "xbar"; }

    bool hasNativeBroadcast() const override { return false; }

    Cycle referenceUnicast(CoreId src, CoreId dst, std::uint32_t flits,
                           Cycle depart) override;

    /**
     * Emulated broadcast: unicasts to every other tile in CoreId
     * order, injected back-to-back at the source (the i-th copy
     * departs i*flits cycles after depart). Counts one broadcast
     * plus N-1 unicasts in the stats, and injects (N-1)*flits.
     */
    Cycle referenceBroadcast(CoreId src, std::uint32_t flits,
                             Cycle depart,
                             std::vector<Cycle> &arrivals) override;

    std::string describeLink(std::uint32_t link) const override;

  protected:
    void buildRoute(CoreId src, CoreId dst,
                    std::vector<std::uint32_t> &out) const override;

    void buildBroadcastSchedule(CoreId src,
                                std::vector<TreeHop> &out)
        const override;
};

} // namespace lacc

#endif // LACC_NET_CROSSBAR_HH
