/**
 * @file
 * Full crossbar interconnect: every tile pair is one switch traversal
 * apart, so unicast latency is uniform (hopLatency + serialization)
 * and contention is modeled on the per-destination output ports.
 *
 * There is NO native broadcast: a crossbar switch has no replication
 * tree, so a broadcast is emulated as one unicast per destination,
 * serialized at the source injection port (one flit per cycle). This
 * makes ACKwise_p pointer overflow genuinely expensive — (N-1) x
 * flits injected instead of one message — which is exactly the
 * topology-sensitivity question the network experiment measures.
 */

#ifndef LACC_NET_CROSSBAR_HH
#define LACC_NET_CROSSBAR_HH

#include "net/network.hh"

namespace lacc {

/** Uniform-latency crossbar NoC; see file header. */
class CrossbarNetwork : public NetworkModel
{
  public:
    CrossbarNetwork(const SystemConfig &cfg, EnergyModel &energy);

    const char *name() const override { return "xbar"; }

    /** One switch traversal between any two distinct tiles. */
    std::uint32_t hopCount(CoreId src, CoreId dst) const override
    {
        return src == dst ? 0 : 1;
    }

    Cycle unicast(CoreId src, CoreId dst, std::uint32_t flits,
                  Cycle depart) override;

    /**
     * Emulated broadcast: unicasts to every other tile in CoreId
     * order, injected back-to-back at the source (the i-th copy
     * departs i*flits cycles after @p depart). Counts one broadcast
     * plus N-1 unicasts in the stats, and injects (N-1)*flits.
     */
    Cycle broadcast(CoreId src, std::uint32_t flits, Cycle depart,
                    std::vector<Cycle> &arrivals) override;

    bool hasNativeBroadcast() const override { return false; }

    std::string describeLink(std::uint32_t link) const override;
};

} // namespace lacc

#endif // LACC_NET_CROSSBAR_HH
