#include "net/crossbar.hh"

#include <algorithm>

namespace lacc {

CrossbarNetwork::CrossbarNetwork(const SystemConfig &cfg,
                                 EnergyModel &energy)
    // One contention slot per destination: the crossbar's output
    // ports are the only shared resource (the switch itself is
    // non-blocking).
    : NetworkModel(cfg, energy, cfg.numCores)
{
    finalizeTables();
}

void
CrossbarNetwork::buildRoute(CoreId /*src*/, CoreId dst,
                            std::vector<std::uint32_t> &out) const
{
    // One switch traversal; the destination output port is the
    // contended link.
    out.push_back(dst);
}

void
CrossbarNetwork::buildBroadcastSchedule(CoreId src,
                                        std::vector<TreeHop> &out) const
{
    // Serialized unicast per destination in CoreId order: every hop
    // hangs off the source, the i-th delayed by i*flits injection
    // cycles.
    std::uint32_t i = 0;
    for (std::uint32_t dst = 0; dst < numCores_; ++dst) {
        if (dst == src)
            continue;
        out.push_back({dst, src, static_cast<CoreId>(dst), i});
        ++i;
    }
}

Cycle
CrossbarNetwork::referenceUnicast(CoreId src, CoreId dst,
                                  std::uint32_t flits, Cycle depart)
{
    ++stats_.unicasts;
    stats_.flitsInjected += flits;
    if (src == dst)
        return depart; // local slice: no network traversal

    // One switch traversal; the destination output port is the
    // contended link.
    const Cycle t = traverseLink(dst, depart, flits);
    stats_.flitHops += flits;
    energy_.addRouter(flits);
    energy_.addLink(flits);
    // Wormhole serialization: tail arrives flits-1 cycles after head.
    return t + (flits > 0 ? flits - 1 : 0);
}

Cycle
CrossbarNetwork::referenceBroadcast(CoreId src, std::uint32_t flits,
                                    Cycle depart,
                                    std::vector<Cycle> &arrivals)
{
    ++stats_.broadcasts;
    arrivals.assign(numCores_, 0);
    arrivals[src] = depart;

    // No replication hardware: serialize one unicast per destination
    // at the source injection port (one flit per cycle).
    Cycle max_arrival = depart;
    std::uint64_t i = 0;
    for (CoreId dst = 0; dst < static_cast<CoreId>(numCores_); ++dst) {
        if (dst == src)
            continue;
        const Cycle inject = depart + i * flits;
        arrivals[dst] = referenceUnicast(src, dst, flits, inject);
        max_arrival = std::max(max_arrival, arrivals[dst]);
        ++i;
    }
    return max_arrival;
}

std::string
CrossbarNetwork::describeLink(std::uint32_t link) const
{
    return "port->tile" + std::to_string(link);
}

} // namespace lacc
