/**
 * @file
 * 1-D bidirectional ring interconnect: every tile has one clockwise
 * and one counter-clockwise link. Cheap to build (2 ports per router)
 * but the diameter grows linearly with the core count — the
 * high-hop-cost end of the topology-sensitivity axis. Broadcasts are
 * native: one injection expands both ways around the ring, occupying
 * every ring link of the two arcs once (N-1 links total).
 */

#ifndef LACC_NET_RING_HH
#define LACC_NET_RING_HH

#include "net/network.hh"

namespace lacc {

/** 1-D bidirectional ring NoC; see file header. */
class RingNetwork : public NetworkModel
{
  public:
    RingNetwork(const SystemConfig &cfg, EnergyModel &energy);

    const char *name() const override { return "ring"; }

    bool hasNativeBroadcast() const override { return true; }

    Cycle referenceUnicast(CoreId src, CoreId dst, std::uint32_t flits,
                           Cycle depart) override;

    Cycle referenceBroadcast(CoreId src, std::uint32_t flits,
                             Cycle depart,
                             std::vector<Cycle> &arrivals) override;

    std::string describeLink(std::uint32_t link) const override;

  protected:
    void buildRoute(CoreId src, CoreId dst,
                    std::vector<std::uint32_t> &out) const override;

    void buildBroadcastSchedule(CoreId src,
                                std::vector<TreeHop> &out)
        const override;

  private:
    /** Directed link ids: 2 per node (CW = +1, CCW = -1). */
    enum Dir : std::uint32_t { Clockwise = 0, CounterCw = 1 };

    std::uint32_t linkId(CoreId node, Dir d) const
    {
        return node * 2 + d;
    }

    /** Clockwise distance from a to b. */
    std::uint32_t
    cwDist(CoreId a, CoreId b) const
    {
        return b >= a ? b - a : b + numCores_ - a;
    }
};

} // namespace lacc

#endif // LACC_NET_RING_HH
