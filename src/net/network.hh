/**
 * @file
 * The pluggable on-chip interconnect layer.
 *
 * The paper evaluates LACC on one fabric — an electrical 2-D mesh
 * with native broadcast support (§3.1, Table 1) — but the protocol's
 * headline mechanism (ACKwise_p falling back to broadcast on pointer
 * overflow) is exactly the part whose cost depends on what the
 * network makes cheap. NetworkModel abstracts the fabric the same way
 * protocol/protocol.hh abstracts the coherence engine: unicast and
 * broadcast timing, hop/distance accounting, per-message energy
 * charging, and contention bookkeeping all live behind this
 * interface, and concrete topologies (net/mesh.hh, net/torus.hh,
 * net/ring.hh, net/crossbar.hh) are built by a config-keyed factory
 * (net/factory.hh).
 *
 * Shared timing model (all link-based topologies):
 *  - hop latency hopLatency cycles: 1 router + 1 link pipeline stage
 *    per hop;
 *  - wormhole serialization: a message of F flits arrives F-1 cycles
 *    after its head flit;
 *  - contention is modeled on directed links only, with infinite
 *    input buffers: each link carries one flit per cycle. Queueing
 *    uses a windowed backlog model (like Graphite's
 *    lax-synchronization queue models): each link tracks the flit
 *    backlog accumulated in the current time window, drains it at
 *    link rate, and delays a message by the undrained backlog ahead
 *    of it. Unlike an absolute next-free-cycle booking, this
 *    tolerates the small timestamp reordering inherent to per-core
 *    clocks: a message from a slightly lagging core sees the same
 *    backlog instead of paying the whole clock skew as phantom
 *    queueing.
 *
 * The hot path is table-driven (docs/ARCHITECTURE.md "Route tables &
 * broadcast schedules"): at construction every topology enumerates
 * its routes once into a flat RouteTable — for each (src, dst) pair a
 * contiguous span of directed link ids plus the hop count — and one
 * BroadcastTree schedule per source: a topologically-ordered list of
 * (link, parent, child) hops whose head-flit times chain through a
 * reusable scratch array. unicast()/broadcast()/hopCount() are
 * therefore non-virtual base-class loops with no per-hop coordinate
 * math, no per-call allocation, and per-message (not per-hop)
 * stats/energy accumulation; with modelContention off, arrival times
 * come straight from the precomputed hop counts. The original
 * hop-by-hop walkers survive as the virtual reference*() debug path,
 * and tests/test_net.cc pins the two paths to identical timing and
 * link-flit accounting on every topology.
 */

#ifndef LACC_NET_NETWORK_HH
#define LACC_NET_NETWORK_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "energy/model.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace lacc {

class FaultInjector;

/**
 * Abstract interconnect shared by all tiles of a Multicore. Concrete
 * topologies enumerate their routing (buildRoute) and broadcast trees
 * (buildBroadcastSchedule) once at construction; the base class owns
 * the precomputed tables, the directed-link contention state, traffic
 * statistics, energy charging, and the congestion diagnostics, so
 * every topology accounts traffic the same way and pays the same
 * (table-driven) per-message cost.
 */
class NetworkModel
{
  public:
    /**
     * One hop of a broadcast-tree schedule: the head flit leaves
     * @p parent (plus delayFactor * flits injection-serialization
     * cycles, used by emulated broadcasts) and crosses directed link
     * @p link to @p child. Schedules are topologically ordered: a
     * hop's parent head time is always computed by an earlier entry
     * (or is the source's departure time).
     */
    struct TreeHop
    {
        std::uint32_t link = 0;
        CoreId parent = 0;
        CoreId child = 0;
        /** Injection serialization: head departs parent_head +
         *  delayFactor * flits (0 for native broadcast trees). */
        std::uint32_t delayFactor = 0;
    };

    /**
     * @param cfg       system configuration (geometry, flit widths,
     *                  hop latency, contention flag)
     * @param energy    whole-system energy accumulator
     * @param num_links directed links (contention/diagnostic slots)
     *                  this topology models
     */
    NetworkModel(const SystemConfig &cfg, EnergyModel &energy,
                 std::uint32_t num_links);
    virtual ~NetworkModel() = default;

    /** Factory key of this topology, e.g. "mesh" or "xbar". */
    virtual const char *name() const = 0;

    /**
     * Routing distance between two tiles in links traversed
     * (0 for src == dst). Drives Message::hops and idealLatency().
     * Table lookup — no virtual dispatch, no coordinate math.
     */
    std::uint32_t hopCount(CoreId src, CoreId dst) const
    {
        return routes_[routeIndex(src, dst)].hops;
    }

    /**
     * Send a unicast message and return its arrival time (time the
     * last flit is ejected at @p dst). Accounts link contention and
     * router/link energy. Table-driven: walks the precomputed link
     * span; with modelContention off the arrival is computed
     * analytically from the hop count.
     *
     * @param src    source tile
     * @param dst    destination tile
     * @param flits  total message length including header
     * @param depart injection time at the source
     */
    Cycle unicast(CoreId src, CoreId dst, std::uint32_t flits,
                  Cycle depart);

    /**
     * Broadcast from @p src to all tiles. Arrival times (last flit)
     * per tile are written to @p arrivals (indexed by CoreId; the
     * source receives its copy at depart, or with the tail flit when
     * selfArrivalAtTail()). Topologies with native
     * broadcast (hasNativeBroadcast()) deliver with a single
     * injection along a spanning tree; others emulate it (e.g. the
     * crossbar serializes one unicast per destination). Table-driven:
     * one pass over the per-source BroadcastTree schedule.
     *
     * @return the maximum arrival time over all tiles.
     */
    Cycle broadcast(CoreId src, std::uint32_t flits, Cycle depart,
                    std::vector<Cycle> &arrivals);

    /**
     * Whether one injection reaches every tile (router replication,
     * §3.1). When false, every broadcast pays one serialized unicast
     * per destination — ACKwise overflow actually hurts.
     */
    virtual bool hasNativeBroadcast() const = 0;

    /**
     * Whether the source's own broadcast copy arrives with the tail
     * flit (depart + flits - 1) instead of at depart. The X-then-Y
     * trees (mesh/torus) re-deliver through the source router after
     * serializing the payload; the ring arcs and crossbar ports hand
     * the source its copy at injection time.
     */
    virtual bool selfArrivalAtTail() const { return false; }

    /**
     * Debug reference path: the original hop-by-hop unicast walker
     * (per-hop coordinate math / virtual dispatch). Mutates the same
     * contention/stats state as unicast(); tests drive a second,
     * identically-configured instance through this path and assert
     * bit-identical timing and accounting against the table-driven
     * one. Not used on the simulation hot path.
     */
    virtual Cycle referenceUnicast(CoreId src, CoreId dst,
                                   std::uint32_t flits,
                                   Cycle depart) = 0;

    /** Debug reference path for broadcast(); see referenceUnicast. */
    virtual Cycle referenceBroadcast(CoreId src, std::uint32_t flits,
                                     Cycle depart,
                                     std::vector<Cycle> &arrivals) = 0;

    /**
     * Contention-free latency of a unicast (test/analysis helper):
     * hops * hopLatency + (flits - 1).
     */
    Cycle idealLatency(CoreId src, CoreId dst, std::uint32_t flits) const
    {
        return static_cast<Cycle>(hopCount(src, dst)) * hopLatency_ +
               (flits > 0 ? flits - 1 : 0);
    }

    /** Traffic counters for this network. */
    const NetworkStats &stats() const { return stats_; }

    /** Reset traffic counters and link state (tables persist). */
    void reset();

    /** Reset traffic counters only (links stay occupied). */
    void resetStats() { stats_ = NetworkStats{}; }

    /**
     * Diagnostic: (link id, queueing cycles) of the worst links,
     * ordered by (queueing desc, link id asc) — a deterministic total
     * order, so equal-queueing links never reorder across runs.
     */
    std::vector<std::pair<std::uint32_t, std::uint64_t>>
    topCongestedLinks(std::size_t n) const;

    /** Diagnostic: describe a directed link id as text. */
    virtual std::string describeLink(std::uint32_t link) const;

    /** Diagnostic: flits carried by a directed link. */
    std::uint64_t linkFlits(std::uint32_t link) const
    {
        return linkFlits_[link];
    }

    /**
     * Bytes held by the precomputed route table and broadcast
     * schedules (docs/ARCHITECTURE.md discusses the footprint scaling
     * per topology; tests sanity-check it).
     */
    std::size_t tableFootprintBytes() const;

    /**
     * Attach (or detach, with nullptr) the lossy-link fault process
     * (fault/injector.hh). Wired by the Multicore when a non-none
     * FaultPlan with active link faults is selected; the detached
     * state costs exactly one untaken branch per link traversal
     * (pinned by bench_micro).
     */
    void setFaultInjector(FaultInjector *fi) { fault_ = fi; }

    /**
     * Latched fault of the most recent unicast/broadcast, cleared by
     * reading. @p was_drop distinguishes a lost message (source
     * timeout) from a corrupted one (destination NACK). The message
     * transport consumes this after every send to drive its
     * retransmit path. @return false when the traversal was clean.
     */
    bool
    consumeTraversalFault(bool &was_drop)
    {
        if (!faultPending_)
            return false;
        was_drop = faultDrop_;
        faultPending_ = false;
        return true;
    }

  protected:
    /**
     * Route one message across a single directed link, applying the
     * windowed-backlog contention model (see the file header).
     * Header-inline so the table-driven span loop compiles to a tight
     * non-calling loop.
     *
     * @param link  directed link id in [0, num_links)
     * @param t     head-flit time at the link's input
     * @param flits message length
     * @return head-flit time at the link's output
     */
    Cycle
    traverseLink(std::uint32_t link, Cycle t, std::uint32_t flits)
    {
        // Router stage, then link stage. The head flit wants the link
        // at t + 1; with link-only contention it may have to queue
        // behind the link's undrained backlog (see the file header).
        Cycle head_at_link = t + 1;
        // Fault hook: the entire disabled cost is this one untaken
        // branch; the roll itself is out-of-line.
        if (fault_ != nullptr)
            rollLinkFault(link, head_at_link, flits);
        if (modelContention_) {
            LinkState &ls = links_[link];
            const Cycle w = head_at_link / kWindow;
            if (w > ls.windowId) {
                // The link drains one flit per cycle between windows.
                const std::uint64_t drained =
                    (w - ls.windowId) * kWindow;
                ls.backlog = ls.backlog > drained
                                 ? ls.backlog - drained
                                 : 0;
                ls.windowId = w;
            }
            // Work queued ahead minus what drained since window
            // start; messages from slightly lagging clocks
            // (w < windowId) see the current backlog without paying
            // the skew itself.
            const Cycle elapsed =
                w >= ls.windowId ? head_at_link % kWindow : 0;
            if (ls.backlog > elapsed) {
                const Cycle wait = ls.backlog - elapsed;
                stats_.contentionCycles += wait;
                linkQueueing_[link] += wait;
                head_at_link += wait;
            }
            ls.backlog += flits;
        }
        linkFlits_[link] += flits;
        return head_at_link + (hopLatency_ - 1);
    }

    /**
     * Topology hook (construction time only): append the directed
     * link ids of the src -> dst route, in traversal order. Never
     * called with src == dst.
     */
    virtual void buildRoute(CoreId src, CoreId dst,
                            std::vector<std::uint32_t> &out) const = 0;

    /**
     * Topology hook (construction time only): append the broadcast
     * schedule rooted at @p src, in the exact traversal order of the
     * reference walker (contention-state updates are order-sensitive,
     * and the equivalence tests hold the two paths bit-identical).
     * Every non-source tile must appear exactly once as a child, and
     * every parent must be the source or an earlier child.
     */
    virtual void
    buildBroadcastSchedule(CoreId src,
                           std::vector<TreeHop> &out) const = 0;

    /**
     * Build the route table and broadcast schedules from the topology
     * hooks, validate them, and derive the per-broadcast batched
     * stat/energy factors. MUST be called at the end of every
     * concrete topology's constructor (the hooks are virtual).
     */
    void finalizeTables();

    /**
     * Roll the seeded per-link Bernoulli fault process for one
     * traversal and latch the outcome for consumeTraversalFault().
     * The first fault of a multi-link route wins (the message dies at
     * the first bad link; later links still charge flits/energy — a
     * deliberate upper bound that keeps the table-driven batched
     * accounting intact).
     */
    void rollLinkFault(std::uint32_t link, Cycle t,
                       std::uint32_t flits);

    std::uint32_t numCores_;
    std::uint32_t hopLatency_;
    bool modelContention_;

    EnergyModel &energy_;
    NetworkStats stats_;

    // Fault-injection hook state (serialized contexts only: every
    // traversal happens on the engine's drain thread).
    FaultInjector *fault_ = nullptr;
    bool faultPending_ = false;
    bool faultDrop_ = false;

  private:
    /** One (src, dst) route: a span of linkSeq_ plus its length. */
    struct Route
    {
        std::uint32_t offset = 0;
        std::uint32_t hops = 0;
    };

    /**
     * Batched per-broadcast accounting, derived from the schedule
     * size and hasNativeBroadcast(): one native injection occupies
     * schedule-size tree links and every router once; an emulated
     * broadcast is schedule-size serialized unicasts.
     */
    struct BroadcastMeta
    {
        std::uint64_t flitHopFactor = 0;     //!< x flits -> flitHops
        std::uint64_t linkEnergyFactor = 0;  //!< x flits -> link energy
        std::uint64_t routerEnergyFactor = 0;//!< x flits -> router energy
        std::uint64_t injectedFactor = 0;    //!< x flits -> flitsInjected
        std::uint64_t extraUnicasts = 0;     //!< unicast count (emulated)
        bool srcHearsTail = false;           //!< selfArrivalAtTail()
    };

    std::size_t
    routeIndex(CoreId src, CoreId dst) const
    {
        return static_cast<std::size_t>(src) * numCores_ + dst;
    }

    /** Windowed backlog state of one directed link. */
    struct LinkState
    {
        Cycle windowId = 0;        //!< current window index
        std::uint64_t backlog = 0; //!< undrained flits in the window
    };

    /** Window length in cycles (power of two; also the drain rate). */
    static constexpr Cycle kWindow = 64;

    std::vector<LinkState> links_;
    std::vector<std::uint64_t> linkQueueing_; //!< per-link diagnostics
    std::vector<std::uint64_t> linkFlits_;    //!< per-link load

    // ---- Precomputed tables (finalizeTables) --------------------------
    std::vector<Route> routes_;            //!< numCores^2, src-major
    std::vector<std::uint32_t> linkSeq_;   //!< concatenated route spans
    std::vector<std::uint32_t> treeOffsets_; //!< per-source, size N+1
    std::vector<TreeHop> treeHops_;        //!< concatenated schedules
    BroadcastMeta bmeta_;
    std::vector<Cycle> headScratch_;       //!< per-node head-flit times
};

} // namespace lacc

#endif // LACC_NET_NETWORK_HH
