/**
 * @file
 * The pluggable on-chip interconnect layer.
 *
 * The paper evaluates LACC on one fabric — an electrical 2-D mesh
 * with native broadcast support (§3.1, Table 1) — but the protocol's
 * headline mechanism (ACKwise_p falling back to broadcast on pointer
 * overflow) is exactly the part whose cost depends on what the
 * network makes cheap. NetworkModel abstracts the fabric the same way
 * protocol/protocol.hh abstracts the coherence engine: unicast and
 * broadcast timing, hop/distance accounting, per-message energy
 * charging, and contention bookkeeping all live behind this
 * interface, and concrete topologies (net/mesh.hh, net/torus.hh,
 * net/ring.hh, net/crossbar.hh) are built by a config-keyed factory
 * (net/factory.hh).
 *
 * Shared timing model (all link-based topologies):
 *  - hop latency hopLatency cycles: 1 router + 1 link pipeline stage
 *    per hop;
 *  - wormhole serialization: a message of F flits arrives F-1 cycles
 *    after its head flit;
 *  - contention is modeled on directed links only, with infinite
 *    input buffers: each link carries one flit per cycle. Queueing
 *    uses a windowed backlog model (like Graphite's
 *    lax-synchronization queue models): each link tracks the flit
 *    backlog accumulated in the current time window, drains it at
 *    link rate, and delays a message by the undrained backlog ahead
 *    of it. Unlike an absolute next-free-cycle booking, this
 *    tolerates the small timestamp reordering inherent to per-core
 *    clocks: a message from a slightly lagging core sees the same
 *    backlog instead of paying the whole clock skew as phantom
 *    queueing.
 */

#ifndef LACC_NET_NETWORK_HH
#define LACC_NET_NETWORK_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "energy/model.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace lacc {

/**
 * Abstract interconnect shared by all tiles of a Multicore. Concrete
 * topologies implement routing (hopCount), unicast timing, and
 * broadcast delivery; the base class owns the directed-link
 * contention state, traffic statistics, energy charging, and the
 * congestion diagnostics, so every topology accounts traffic the same
 * way.
 */
class NetworkModel
{
  public:
    /**
     * @param cfg       system configuration (geometry, flit widths,
     *                  hop latency, contention flag)
     * @param energy    whole-system energy accumulator
     * @param num_links directed links (contention/diagnostic slots)
     *                  this topology models
     */
    NetworkModel(const SystemConfig &cfg, EnergyModel &energy,
                 std::uint32_t num_links);
    virtual ~NetworkModel() = default;

    /** Factory key of this topology, e.g. "mesh" or "xbar". */
    virtual const char *name() const = 0;

    /**
     * Routing distance between two tiles in links traversed
     * (0 for src == dst). Drives Message::hops and idealLatency().
     */
    virtual std::uint32_t hopCount(CoreId src, CoreId dst) const = 0;

    /**
     * Send a unicast message and return its arrival time (time the
     * last flit is ejected at @p dst). Accounts link contention and
     * router/link energy.
     *
     * @param src    source tile
     * @param dst    destination tile
     * @param flits  total message length including header
     * @param depart injection time at the source
     */
    virtual Cycle unicast(CoreId src, CoreId dst, std::uint32_t flits,
                          Cycle depart) = 0;

    /**
     * Broadcast from @p src to all tiles. Arrival times (last flit)
     * per tile are written to @p arrivals (indexed by CoreId; the
     * source receives its copy at depart). Topologies with native
     * broadcast (hasNativeBroadcast()) deliver with a single
     * injection along a spanning tree; others emulate it (e.g. the
     * crossbar serializes one unicast per destination).
     *
     * @return the maximum arrival time over all tiles.
     */
    virtual Cycle broadcast(CoreId src, std::uint32_t flits,
                            Cycle depart,
                            std::vector<Cycle> &arrivals) = 0;

    /**
     * Whether one injection reaches every tile (router replication,
     * §3.1). When false, every broadcast pays one serialized unicast
     * per destination — ACKwise overflow actually hurts.
     */
    virtual bool hasNativeBroadcast() const = 0;

    /**
     * Contention-free latency of a unicast (test/analysis helper):
     * hops * hopLatency + (flits - 1).
     */
    Cycle idealLatency(CoreId src, CoreId dst, std::uint32_t flits) const
    {
        return static_cast<Cycle>(hopCount(src, dst)) * hopLatency_ +
               (flits > 0 ? flits - 1 : 0);
    }

    /** Traffic counters for this network. */
    const NetworkStats &stats() const { return stats_; }

    /** Reset traffic counters and link state. */
    void reset();

    /** Reset traffic counters only (links stay occupied). */
    void resetStats() { stats_ = NetworkStats{}; }

    /** Diagnostic: (link id, queueing cycles) of the worst links. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>>
    topCongestedLinks(std::size_t n) const;

    /** Diagnostic: describe a directed link id as text. */
    virtual std::string describeLink(std::uint32_t link) const;

    /** Diagnostic: flits carried by a directed link. */
    std::uint64_t linkFlits(std::uint32_t link) const
    {
        return linkFlits_[link];
    }

  protected:
    /**
     * Route one message across a single directed link, applying the
     * windowed-backlog contention model (see the file header).
     *
     * @param link  directed link id in [0, num_links)
     * @param t     head-flit time at the link's input
     * @param flits message length
     * @return head-flit time at the link's output
     */
    Cycle traverseLink(std::uint32_t link, Cycle t, std::uint32_t flits);

    std::uint32_t numCores_;
    std::uint32_t hopLatency_;
    bool modelContention_;

    EnergyModel &energy_;
    NetworkStats stats_;

  private:
    /** Windowed backlog state of one directed link. */
    struct LinkState
    {
        Cycle windowId = 0;        //!< current window index
        std::uint64_t backlog = 0; //!< undrained flits in the window
    };

    /** Window length in cycles (power of two; also the drain rate). */
    static constexpr Cycle kWindow = 64;

    std::vector<LinkState> links_;
    std::vector<std::uint64_t> linkQueueing_; //!< per-link diagnostics
    std::vector<std::uint64_t> linkFlits_;    //!< per-link load
};

} // namespace lacc

#endif // LACC_NET_NETWORK_HH
