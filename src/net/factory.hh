/**
 * @file
 * Network factory: builds the NetworkModel selected by a
 * SystemConfig, and maps topology names <-> configurations so the
 * harness can sweep fabrics by name (`lacc_bench --network`),
 * mirroring the protocol factory (protocol/factory.hh).
 */

#ifndef LACC_NET_FACTORY_HH
#define LACC_NET_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "net/network.hh"

namespace lacc {

/**
 * Build the interconnect selected by @p cfg.networkKind. The returned
 * model references @p energy (owned by the enclosing Multicore, which
 * must outlive it).
 */
std::unique_ptr<NetworkModel> makeNetwork(const SystemConfig &cfg,
                                          EnergyModel &energy);

/**
 * Registered topology names, in factory order:
 * {"mesh", "torus", "ring", "xbar"}.
 */
const std::vector<std::string> &networkNames();

/** Name the factory would select for @p cfg. */
const char *networkNameFor(const SystemConfig &cfg);

/**
 * Reconfigure @p cfg to select the named topology (harness sweeps by
 * name). fatal() on an unknown name, listing the valid ones.
 */
void applyNetworkName(SystemConfig &cfg, const std::string &name);

} // namespace lacc

#endif // LACC_NET_FACTORY_HH
