/**
 * @file
 * Electrical 2-D mesh interconnect with XY routing and broadcast
 * support (Table 1, §3.1) — the paper's fabric, and the default
 * NetworkModel (net/network.hh holds the shared timing/contention
 * model and the table-driven hot path).
 *
 * Broadcast: each router selectively replicates a broadcast message on
 * its output links so all cores are reached with a single injection
 * (§3.1). The broadcast spans the mesh as an X-then-Y tree rooted at
 * the source; every tree link is occupied once.
 */

#ifndef LACC_NET_MESH_HH
#define LACC_NET_MESH_HH

#include "net/network.hh"

namespace lacc {

/** 2-D mesh NoC; shared by all tiles of a Multicore. */
class MeshNetwork : public NetworkModel
{
  public:
    /**
     * @param cfg    system configuration (mesh size, flit widths ...)
     * @param energy whole-system energy accumulator
     */
    MeshNetwork(const SystemConfig &cfg, EnergyModel &energy);

    const char *name() const override { return "mesh"; }

    /** Mesh X coordinate (column) of a tile. */
    std::uint32_t xOf(CoreId tile) const { return tile % width_; }

    /** Mesh Y coordinate (row) of a tile. */
    std::uint32_t yOf(CoreId tile) const { return tile / width_; }

    /** Router replication delivers a broadcast in one injection. */
    bool hasNativeBroadcast() const override { return true; }

    /** The X-then-Y tree re-delivers to the source with the tail. */
    bool selfArrivalAtTail() const override { return true; }

    Cycle referenceUnicast(CoreId src, CoreId dst, std::uint32_t flits,
                           Cycle depart) override;

    Cycle referenceBroadcast(CoreId src, std::uint32_t flits,
                             Cycle depart,
                             std::vector<Cycle> &arrivals) override;

    std::string describeLink(std::uint32_t link) const override;

  protected:
    void buildRoute(CoreId src, CoreId dst,
                    std::vector<std::uint32_t> &out) const override;

    void buildBroadcastSchedule(CoreId src,
                                std::vector<TreeHop> &out)
        const override;

  private:
    /** Directed link ids: 4 per node (E, W, S, N). */
    enum Dir : std::uint32_t { East = 0, West = 1, South = 2, North = 3 };

    std::uint32_t linkId(CoreId node, Dir d) const
    {
        return node * 4 + d;
    }

    /** Next tile one hop toward dst following XY order; src != dst. */
    CoreId nextHop(CoreId at, CoreId dst, Dir &dir_out) const;

    std::uint32_t width_;
    std::uint32_t height_;
};

} // namespace lacc

#endif // LACC_NET_MESH_HH
