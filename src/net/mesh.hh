/**
 * @file
 * Electrical 2-D mesh interconnect with XY routing and broadcast
 * support (Table 1, §3.1).
 *
 * Timing model (matching the paper's Graphite configuration):
 *  - hop latency 2 cycles: 1 router + 1 link pipeline stage per hop;
 *  - wormhole serialization: a message of F flits arrives F-1 cycles
 *    after its head flit;
 *  - contention is modeled on links only, with infinite input buffers:
 *    each directed link carries one flit per cycle. Queueing uses a
 *    windowed backlog model (like Graphite's lax-synchronization
 *    queue models): each link tracks the flit backlog accumulated in
 *    the current time window, drains it at link rate, and delays a
 *    message by the undrained backlog ahead of it. Unlike an absolute
 *    next-free-cycle booking, this tolerates the small timestamp
 *    reordering inherent to per-core clocks: a message from a
 *    slightly lagging core sees the same backlog instead of paying
 *    the whole clock skew as phantom queueing.
 *
 * Broadcast: each router selectively replicates a broadcast message on
 * its output links so all cores are reached with a single injection
 * (§3.1). The broadcast spans the mesh as an X-then-Y tree rooted at
 * the source; every tree link is occupied once.
 */

#ifndef LACC_NET_MESH_HH
#define LACC_NET_MESH_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "energy/model.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace lacc {

/** 2-D mesh NoC; shared by all tiles of a Multicore. */
class MeshNetwork
{
  public:
    /**
     * @param cfg    system configuration (mesh size, flit widths ...)
     * @param energy whole-system energy accumulator
     */
    MeshNetwork(const SystemConfig &cfg, EnergyModel &energy);

    /** Mesh X coordinate (column) of a tile. */
    std::uint32_t xOf(CoreId tile) const { return tile % width_; }

    /** Mesh Y coordinate (row) of a tile. */
    std::uint32_t yOf(CoreId tile) const { return tile / width_; }

    /** Manhattan hop distance between two tiles. */
    std::uint32_t hopCount(CoreId src, CoreId dst) const;

    /**
     * Send a unicast message and return its arrival time (time the
     * last flit is ejected at @p dst). Accounts link contention and
     * router/link energy.
     *
     * @param src    source tile
     * @param dst    destination tile
     * @param flits  total message length including header
     * @param depart injection time at the source
     */
    Cycle unicast(CoreId src, CoreId dst, std::uint32_t flits,
                  Cycle depart);

    /**
     * Broadcast from @p src to all tiles with a single injection.
     * Arrival times (last flit) per tile are written to @p arrivals
     * (indexed by CoreId; the source receives its copy at depart).
     *
     * @return the maximum arrival time over all tiles.
     */
    Cycle broadcast(CoreId src, std::uint32_t flits, Cycle depart,
                    std::vector<Cycle> &arrivals);

    /**
     * Contention-free latency of a unicast (test/analysis helper):
     * hops * hopLatency + (flits - 1).
     */
    Cycle idealLatency(CoreId src, CoreId dst, std::uint32_t flits) const;

    /** Traffic counters for this network. */
    const NetworkStats &stats() const { return stats_; }

    /** Reset traffic counters and link state. */
    void reset();

    /** Reset traffic counters only (links stay occupied). */
    void resetStats() { stats_ = NetworkStats{}; }

    /** Diagnostic: (link id, queueing cycles) of the worst links. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>>
    topCongestedLinks(std::size_t n) const;

    /** Diagnostic: describe a directed link id as text. */
    std::string describeLink(std::uint32_t link) const;

    /** Diagnostic: flits carried by a directed link. */
    std::uint64_t linkFlits(std::uint32_t link) const
    {
        return linkFlits_[link];
    }

  private:
    /** Directed link ids: 4 per node (E, W, S, N). */
    enum Dir : std::uint32_t { East = 0, West = 1, South = 2, North = 3 };

    std::uint32_t linkId(CoreId node, Dir d) const
    {
        return node * 4 + d;
    }

    /**
     * Route one message across a single link, applying contention.
     *
     * @param link     directed link id
     * @param t        head-flit time at the link's input
     * @param flits    message length
     * @return head-flit time at the link's output
     */
    Cycle traverseLink(std::uint32_t link, Cycle t, std::uint32_t flits);

    /** Next tile one hop toward dst following XY order; src != dst. */
    CoreId nextHop(CoreId at, CoreId dst, Dir &dir_out) const;

    std::uint32_t width_;
    std::uint32_t height_;
    std::uint32_t numCores_;
    std::uint32_t hopLatency_;
    bool modelContention_;

    /** Windowed backlog state of one directed link. */
    struct LinkState
    {
        Cycle windowId = 0;        //!< current window index
        std::uint64_t backlog = 0; //!< undrained flits in the window
    };

    /** Window length in cycles (power of two; also the drain rate). */
    static constexpr Cycle kWindow = 64;

    std::vector<LinkState> links_;
    std::vector<std::uint64_t> linkQueueing_; //!< per-link diagnostics
    std::vector<std::uint64_t> linkFlits_;     //!< per-link load

    EnergyModel &energy_;
    NetworkStats stats_;
};

} // namespace lacc

#endif // LACC_NET_MESH_HH
