/**
 * @file
 * Synchronization bookkeeping: a single global barrier and a set of
 * queue-based locks.
 *
 * The Multicore drives these: barrier arrivals and lock transfers also
 * generate real coherence traffic on their backing cache lines, so
 * contended synchronization exercises the protocol exactly as the
 * paper describes (critical-section memory latency feeds the
 * synchronization component of other cores, §5.1.2).
 */

#ifndef LACC_WORKLOAD_SYNC_HH
#define LACC_WORKLOAD_SYNC_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/types.hh"

namespace lacc {

/** Centralized sense-reversing barrier state. */
class BarrierState
{
  public:
    explicit BarrierState(std::uint32_t num_cores);

    /**
     * Record an arrival at time @p t.
     * @return true when this arrival is the last one (release).
     */
    bool arrive(CoreId core, Cycle t);

    /** Release time = max arrival time of the current generation. */
    Cycle releaseTime() const { return maxArrival_; }

    /** Arrival time of a specific waiting core. */
    Cycle arrivalOf(CoreId core) const { return arrival_[core]; }

    /** Cores currently waiting (excluding the releasing arrival). */
    const std::vector<CoreId> &waiters() const { return waiters_; }

    /** Reset for the next generation (after release handling). */
    void resetGeneration();

    /** Number of cores arrived in the current generation. */
    std::uint32_t arrivedCount() const { return arrived_; }

  private:
    std::uint32_t numCores_;
    std::uint32_t arrived_ = 0;
    Cycle maxArrival_ = 0;
    std::vector<Cycle> arrival_;
    std::vector<CoreId> waiters_;
};

/** Queue-based (MCS-flavored) lock state. */
class LockState
{
  public:
    /** A queued waiter. */
    struct Waiter
    {
        CoreId core;
        Cycle readyAt; //!< time its acquire transaction completed
    };

    bool held() const { return held_; }
    CoreId holder() const { return holder_; }
    std::size_t queueLength() const { return queue_.size(); }

    /** Grant immediately if free. @return true if acquired. */
    bool
    tryAcquire(CoreId core)
    {
        if (held_)
            return false;
        held_ = true;
        holder_ = core;
        return true;
    }

    /** Enqueue a contended waiter. */
    void
    enqueue(CoreId core, Cycle ready_at)
    {
        queue_.push_back({core, ready_at});
    }

    /**
     * Release by the holder; hands over to the head waiter if any.
     *
     * @param next_out the woken waiter (valid iff return is true)
     * @return true when ownership transferred to a waiter
     */
    bool
    release(CoreId core, Waiter &next_out)
    {
        (void)core;
        if (queue_.empty()) {
            held_ = false;
            holder_ = kInvalidCore;
            return false;
        }
        next_out = queue_.front();
        queue_.pop_front();
        holder_ = next_out.core;
        return true;
    }

  private:
    bool held_ = false;
    CoreId holder_ = kInvalidCore;
    std::deque<Waiter> queue_;
};

} // namespace lacc

#endif // LACC_WORKLOAD_SYNC_HH
