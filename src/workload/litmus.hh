/**
 * @file
 * Litmus workloads: tiny, deterministic sharing archetypes whose whole
 * point is to stress one coherence corner as hard as possible, usable
 * both as verification inputs (src/verify/ runs them with functional
 * checks on) and as named benchmarks in the harness (the "litmus"
 * experiment sweeps them across protocols).
 *
 *  - litmus-prodcons:   core 0 writes a payload then a flag line each
 *                       round; every other core reads the flag and the
 *                       payload — the classic producer-consumer
 *                       write-then-publish pattern (invalidation +
 *                       sharing-miss chains, one writer, many readers).
 *  - litmus-falseshare: every core read-modify-writes its *own* word
 *                       of one shared line — pure false sharing, the
 *                       pattern the paper's remote-access mode turns
 *                       from line ping-pong into word accesses.
 *  - litmus-taslock:    a test-and-set style critical section around a
 *                       shared counter under the single lock —
 *                       exclusive-ownership migration in a ring.
 *
 * All three are plain TraceWorkloads: replayable, serializable
 * (tests/litmus/), and shrinkable by the fuzzer's reducer.
 */

#ifndef LACC_WORKLOAD_LITMUS_HH
#define LACC_WORKLOAD_LITMUS_HH

#include <string>
#include <vector>

#include "sim/config.hh"
#include "workload/trace_file.hh"

namespace lacc {

/** Registered litmus names: {"litmus-prodcons", ...}. */
const std::vector<std::string> &litmusNames();

/** @return true if @p name is a litmus workload. */
bool isLitmus(const std::string &name);

/**
 * Build a named litmus workload for @p cfg's core count.
 *
 * @param op_scale multiplies the round count (>= 1 round always);
 *                 the same knob benchmarkSpec takes.
 *
 * fatal() on an unknown name, listing the valid ones.
 */
TraceWorkload makeLitmus(const std::string &name, const SystemConfig &cfg,
                         double op_scale = 1.0);

} // namespace lacc

#endif // LACC_WORKLOAD_LITMUS_HH
