#include "workload/litmus.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace lacc {

namespace {

// Each archetype gets its own page so R-NUCA classification is driven
// purely by its access pattern.
constexpr Addr kProdconsBase = Addr{0x5} << 32;
constexpr Addr kFalseshareBase = Addr{0x6} << 32;
constexpr Addr kTaslockBase = Addr{0x7} << 32;

std::uint32_t
rounds(std::uint32_t base, double op_scale)
{
    const double r = std::max(1.0, std::round(base * op_scale));
    return static_cast<std::uint32_t>(r);
}

/**
 * Producer-consumer: per round, core 0 writes a 4-word payload and
 * then the flag line; consumers read flag then payload. A barrier
 * opens every round so all cores contend on the same generation (the
 * intra-round races are the point — the functional reference memory
 * validates every read under whatever interleaving the timing model
 * produces).
 */
TraceWorkload
makeProdcons(const SystemConfig &cfg, double op_scale)
{
    const Addr flag = kProdconsBase;
    const Addr data = kProdconsBase + cfg.lineSize;
    const std::uint32_t n = rounds(12, op_scale);

    std::vector<std::vector<MemOp>> streams(cfg.numCores);
    for (std::uint32_t r = 0; r < n; ++r) {
        for (std::uint32_t c = 0; c < cfg.numCores; ++c)
            streams[c].push_back(MemOp::barrier());
        for (std::uint32_t w = 0; w < 4; ++w)
            streams[0].push_back(MemOp::write(data + w * 8));
        streams[0].push_back(MemOp::write(flag));
        for (std::uint32_t c = 1; c < cfg.numCores; ++c) {
            streams[c].push_back(MemOp::read(flag));
            for (std::uint32_t w = 0; w < 4; ++w)
                streams[c].push_back(MemOp::read(data + w * 8));
        }
    }
    return TraceWorkload("litmus-prodcons", std::move(streams));
}

/**
 * False sharing: every core read-modify-writes its own word of one
 * line. No synchronization at all — maximum ping-pong under a private
 * caching protocol, word accesses under remote mode.
 */
TraceWorkload
makeFalseshare(const SystemConfig &cfg, double op_scale)
{
    const std::uint32_t n = rounds(32, op_scale);

    std::vector<std::vector<MemOp>> streams(cfg.numCores);
    for (std::uint32_t r = 0; r < n; ++r) {
        for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
            const Addr word =
                kFalseshareBase + (c % cfg.wordsPerLine()) * 8;
            streams[c].push_back(MemOp::read(word));
            streams[c].push_back(MemOp::write(word));
        }
    }
    return TraceWorkload("litmus-falseshare", std::move(streams));
}

/**
 * Test-and-set lock: each core increments a shared counter inside the
 * single lock's critical section. Ownership of both the lock line and
 * the counter line migrates core to core in contention order.
 */
TraceWorkload
makeTaslock(const SystemConfig &cfg, double op_scale)
{
    const Addr counter = kTaslockBase;
    const std::uint32_t n = rounds(8, op_scale);

    std::vector<std::vector<MemOp>> streams(cfg.numCores);
    for (std::uint32_t r = 0; r < n; ++r) {
        for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
            streams[c].push_back(MemOp::lockAcquire(0));
            streams[c].push_back(MemOp::read(counter));
            streams[c].push_back(MemOp::write(counter));
            streams[c].push_back(MemOp::lockRelease(0));
        }
    }
    return TraceWorkload("litmus-taslock", std::move(streams),
                         /*num_locks=*/1);
}

} // namespace

const std::vector<std::string> &
litmusNames()
{
    static const std::vector<std::string> names = {
        "litmus-prodcons",
        "litmus-falseshare",
        "litmus-taslock",
    };
    return names;
}

bool
isLitmus(const std::string &name)
{
    const auto &names = litmusNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

TraceWorkload
makeLitmus(const std::string &name, const SystemConfig &cfg,
           double op_scale)
{
    if (name == "litmus-prodcons")
        return makeProdcons(cfg, op_scale);
    if (name == "litmus-falseshare")
        return makeFalseshare(cfg, op_scale);
    if (name == "litmus-taslock")
        return makeTaslock(cfg, op_scale);
    std::string valid;
    for (const auto &n : litmusNames())
        valid += (valid.empty() ? "" : ", ") + n;
    fatal("unknown litmus workload '%s' (valid: %s)", name.c_str(),
          valid.c_str());
}

} // namespace lacc
