/**
 * @file
 * File-based trace workloads.
 *
 * A simple line-oriented text format so users can drive the simulator
 * with traces captured elsewhere (e.g. Pin tools), mirroring how the
 * paper drives Graphite with real applications:
 *
 *     # comment
 *     trace <numCores> <numLocks>
 *     <core> r <hex-addr>      data read
 *     <core> w <hex-addr>      data write
 *     <core> f <hex-addr>      instruction fetch
 *     <core> c <cycles>        compute
 *     <core> b                 barrier
 *     <core> a <lockId>        lock acquire
 *     <core> l <lockId>        lock release
 */

#ifndef LACC_WORKLOAD_TRACE_FILE_HH
#define LACC_WORKLOAD_TRACE_FILE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace lacc {

/** Workload replaying per-core operation vectors. */
class TraceWorkload final : public Workload
{
  public:
    /** Build from already-parsed per-core streams. */
    TraceWorkload(std::string name,
                  std::vector<std::vector<MemOp>> streams,
                  std::uint32_t num_locks = 0);

    /**
     * Parse the text format from a stream. Parsing is strict:
     * partially-numeric core ids / addresses / counts, out-of-range
     * ids, unknown op tags, duplicate headers, and trailing garbage
     * all fatal() with the offending line number — malformed traces
     * are never silently skipped or misread. A '#' token comments
     * out the rest of a line (full-line comments also supported).
     */
    static TraceWorkload parse(std::istream &in, std::string name);

    /** Load from a file path. */
    static TraceWorkload load(const std::string &path);

    /** Serialize a workload back to the text format (round-trips). */
    void save(std::ostream &out) const;

    const std::string &name() const override { return name_; }
    std::uint32_t
    numCores() const override
    {
        return static_cast<std::uint32_t>(streams_.size());
    }
    std::uint32_t numLocks() const override { return numLocks_; }
    MemOp next(CoreId core) override;

    /** next() only touches pos_[core]/streams_[core]: shardable. */
    bool concurrentNextSafe() const override { return true; }

    /** Remaining (unconsumed) ops of a core (test helper). */
    std::size_t remaining(CoreId core) const;

    /**
     * The underlying per-core op streams. Workloads are single-use
     * (next() consumes); re-running a trace — the verification
     * harness replays every corpus entry under several protocols —
     * means constructing a fresh TraceWorkload from these streams.
     */
    const std::vector<std::vector<MemOp>> &streams() const
    {
        return streams_;
    }

  private:
    std::string name_;
    std::vector<std::vector<MemOp>> streams_;
    std::vector<std::size_t> pos_;
    std::uint32_t numLocks_;
};

} // namespace lacc

#endif // LACC_WORKLOAD_TRACE_FILE_HH
