/**
 * @file
 * Parameterized synthetic workload generator.
 *
 * Real SPLASH-2 / PARSEC / MI-Bench traces are substituted by
 * deterministic generators composed of six archetypes whose parameters
 * control exactly the properties the paper's protocol reacts to:
 * spatio-temporal utilization per cache line, sharing degree,
 * read/write mix, working-set size, synchronization intensity, and
 * phase behavior. See DESIGN.md §2/§4 for the substitution argument.
 *
 * Archetypes:
 *  - privateHot:    small per-core working set with high reuse;
 *  - privateStream: per-core cyclic scan with low per-line utilization
 *                   (capacity-miss generator; becomes word accesses
 *                   under the adaptive protocol);
 *  - sharedRO:      read-mostly shared table with optional rare writes
 *                   (invalidation generator; the 1-way ablation's
 *                   pathology) and optional per-group leader asymmetry
 *                   (the Limited_1 mis-seeding cases of §5.3);
 *  - sharedPC:      producer-consumer blocks within core groups, the
 *                   producer rotating each phase (sharing-miss
 *                   generator);
 *  - sharedStream:  all cores scan one giant region (cold/capacity);
 *  - lockRMW:       lock-protected read-modify-write critical sections
 *                   (migratory data; L2-waiting/sharers generator).
 */

#ifndef LACC_WORKLOAD_ARCHETYPES_HH
#define LACC_WORKLOAD_ARCHETYPES_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/rng.hh"
#include "workload/workload.hh"

namespace lacc {

/**
 * Relative weights of the archetypes in a benchmark's access mix.
 * Weights are *access* fractions: the generator divides them by the
 * archetype's expected burst length when rolling so that, e.g., a 0.4
 * privateStream weight yields ~40% of memory accesses regardless of
 * the per-line utilization parameters.
 */
struct ArchetypeWeights
{
    double privateHot = 0.0;
    double privateStream = 0.0;
    double sharedRO = 0.0;
    double sharedPC = 0.0;
    double sharedStream = 0.0;
    double lockRMW = 0.0;

    double
    sum() const
    {
        return privateHot + privateStream + sharedRO + sharedPC +
               sharedStream + lockRMW;
    }
};

/** Full parameter set of a synthetic benchmark. */
struct SyntheticSpec
{
    std::string name = "custom";
    std::uint32_t numCores = 64;

    ArchetypeWeights mix;

    // ---- Region sizes (bytes) -----------------------------------------
    std::uint64_t privateHotBytes = 8ull << 10;
    std::uint64_t privateStreamBytes = 128ull << 10;
    std::uint64_t sharedROBytes = 512ull << 10;
    std::uint64_t sharedPCBytes = 256ull << 10;
    std::uint64_t sharedStreamBytes = 4ull << 20;

    // ---- Per-line utilization (accesses per burst) ---------------------
    std::uint32_t privateHotUtil = 8;
    std::uint32_t privateStreamUtil = 2;
    std::uint32_t sharedROUtil = 2;
    std::uint32_t sharedROLeaderUtil = 0; //!< 0 = same as sharedROUtil
    std::uint32_t pcWriteBurst = 4;
    std::uint32_t pcReadBurst = 2;
    std::uint32_t sharedStreamUtil = 1;

    // ---- Sharing structure ----------------------------------------------
    std::uint32_t sharingDegree = 4;  //!< cores per RO/PC group
    std::uint32_t pcBlockLines = 8;   //!< lines per producer-consumer block

    // ---- Writes -----------------------------------------------------------
    double privateWriteFrac = 0.3;
    double roWriteFrac = 0.0;     //!< probability an RO burst is a write
    /**
     * Restrict RO writes to odd phases ("update frames"): write-heavy
     * phases demote unlucky readers, and the following read-only
     * phases reward protocols that can re-promote them (the §5.4
     * Adapt1-way pathology, e.g. bodytrack's per-frame model update).
     */
    bool roWriteOddPhasesOnly = false;
    double streamWriteFrac = 0.0; //!< write fraction in stream scans

    // ---- Synchronization ---------------------------------------------------
    std::uint32_t numLocks = 16;
    std::uint32_t csLines = 2;   //!< lines touched (RMW) per section

    // ---- Pacing / phases -----------------------------------------------------
    std::uint32_t computePerMemop = 2; //!< mean compute cycles per access
    std::uint32_t opsPerPhase = 3000;  //!< memory accesses between barriers
    std::uint32_t numPhases = 4;
    bool phaseShift = false; //!< swap hot/stream private regions per phase

    std::uint32_t iFootprintLines = 24;
    std::uint64_t seed = 42;

    /**
     * Leading phases excluded from measurement (statistics reset at
     * the phase barrier; see Workload::warmupBarriers). Must be less
     * than numPhases.
     */
    std::uint32_t warmupPhases = 1;
};

/** Deterministic synthetic workload built from a SyntheticSpec. */
class SyntheticWorkload final : public Workload
{
  public:
    SyntheticWorkload(const SyntheticSpec &spec, const SystemConfig &cfg);

    const std::string &name() const override { return spec_.name; }
    std::uint32_t numCores() const override { return spec_.numCores; }
    std::uint32_t numLocks() const override { return spec_.numLocks; }
    MemOp next(CoreId core) override;

    /** next() only touches gens_[core] + const layout: shardable. */
    bool concurrentNextSafe() const override { return true; }

    std::uint32_t
    iFootprintLines(CoreId) const override
    {
        return spec_.iFootprintLines;
    }

    std::uint64_t footprintBytes() const override
    {
        return footprintBytes_;
    }

    std::uint32_t
    warmupBarriers() const override
    {
        return spec_.numPhases > 1
                   ? std::min(spec_.warmupPhases, spec_.numPhases - 1)
                   : 0;
    }

    /** The spec this workload was built from. */
    const SyntheticSpec &spec() const { return spec_; }

    /** Address of the cache line backing lock @p id. */
    Addr lockAddr(std::uint32_t id) const;

    // ---- Region introspection (tests) ----------------------------------
    Addr privateHotBase(CoreId core, std::uint32_t phase) const;
    Addr privateStreamBase(CoreId core, std::uint32_t phase) const;
    Addr sharedROBase() const { return sharedROBase_; }
    Addr sharedPCBase() const { return sharedPCBase_; }
    Addr sharedStreamBase() const { return sharedStreamBase_; }

  private:
    /** Archetype identifiers for the weighted roll. */
    enum class Arch : std::uint8_t {
        PrivateHot,
        PrivateStream,
        SharedRO,
        SharedPC,
        SharedStream,
        LockRMW,
    };

    /** Per-core generator state. */
    struct CoreGen
    {
        Rng rng{0};
        std::uint32_t phase = 0;
        std::uint64_t opsInPhase = 0;
        bool done = false;
        bool computePending = true; //!< emit compute before next access

        // Active access burst.
        Addr burstAddr = 0;
        std::uint32_t burstLeft = 0;
        bool burstIsWrite = false;

        // Critical-section state machine.
        enum class CsState : std::uint8_t {
            None,
            Body,
            Release,
        } cs = CsState::None;
        std::uint32_t csLock = 0;
        std::uint32_t csLineIdx = 0;  //!< next CS line
        bool csWritePending = false;  //!< read done, write next
        Addr csBase = 0;

        // Streaming cursors (line indices).
        std::uint64_t privStreamCursor = 0;
        std::uint64_t sharedStreamCursor = 0;

        // Warm-up coverage sweep position (phase 0 only).
        std::size_t sweepIdx = 0;
        std::uint32_t sweepRep = 0; //!< repeats within the current line
    };

    MemOp startBurst(CoreGen &g, Addr line_base, std::uint32_t util,
                     bool is_write);
    MemOp continueBurst(CoreGen &g);
    MemOp chooseAccess(CoreId core, CoreGen &g);

    /** Leader core of @p core's sharing group. */
    CoreId groupLeader(CoreId core) const;

    SyntheticSpec spec_;
    std::uint32_t lineSize_;
    std::uint32_t sweepTouches_; //!< accesses per line in the sweep
    ArchetypeWeights choiceW_; //!< access weights / expected burst
    double wSum_;              //!< sum of choice weights

    Addr sharedROBase_ = 0;
    Addr sharedPCBase_ = 0;
    Addr sharedStreamBase_ = 0;
    Addr lockBase_ = 0;
    Addr csBase_ = 0;
    std::uint64_t footprintBytes_ = 0; //!< laid-out data region size
    std::vector<Addr> privateA_; //!< per-core hot region
    std::vector<Addr> privateB_; //!< per-core stream region

    /**
     * Per-core warm-up sweep: one read per footprint line, emitted
     * (uncounted) at the start of phase 0 so cold misses and the
     * resulting DRAM burst land in the warm-up epoch, not in the
     * measured phases. Shared chunks are swept by two neighboring
     * cores so R-NUCA settles their pages during warm-up.
     */
    std::vector<std::vector<Addr>> sweep_;

    std::vector<CoreGen> gens_;
};

} // namespace lacc

#endif // LACC_WORKLOAD_ARCHETYPES_HH
