#include "workload/suite.hh"

#include <algorithm>
#include <unordered_map>

#include "sim/log.hh"

namespace lacc {

namespace {

/** FNV-1a hash so each benchmark gets a distinct, stable seed. */
std::uint64_t
nameSeed(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char ch : name) {
        h ^= static_cast<unsigned char>(ch);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Largest divisor of @p cores that is <= @p want (>= 1). */
std::uint32_t
fitDegree(std::uint32_t want, std::uint32_t cores)
{
    std::uint32_t d = std::min(want, cores);
    while (d > 1 && cores % d != 0)
        --d;
    return std::max<std::uint32_t>(d, 1);
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "radix",      "lu-nc",       "barnes",     "ocean-nc",
        "water-sp",   "raytrace",    "blackscholes", "streamcluster",
        "dedup",      "bodytrack",   "fluidanimate", "canneal",
        "dijkstra-ss", "dijkstra-ap", "patricia",   "susan",
        "concomp",    "community",   "tsp",        "dfs",
        "matmul",
    };
    return names;
}

bool
isBenchmark(const std::string &name)
{
    const auto &names = benchmarkNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

/*
 * Sizing discipline (see DESIGN.md §4): run lengths are ~12k-24k data
 * accesses per core, so streamed footprints are sized for >= 2-4
 * full passes (footprint_lines <= weight * ops / (util * passes));
 * otherwise demoted lines would never be revisited and the
 * capacity/sharing -> word conversions the paper reports could not
 * appear. Weights are access shares (ArchetypeWeights).
 */
SyntheticSpec
benchmarkSpec(const std::string &name, const SystemConfig &cfg,
              double op_scale)
{
    SyntheticSpec s;
    s.name = name;
    s.numCores = cfg.numCores;
    s.seed = cfg.seed ^ nameSeed(name);

    // Defaults shared by most benchmarks; entries below override.
    s.opsPerPhase = 4000;
    s.numPhases = 4;
    s.computePerMemop = 2;
    s.iFootprintLines = 24;
    s.sharingDegree = fitDegree(4, cfg.numCores);

    if (name == "radix") {
        // Partitioned key scans plus an all-to-all exchange. The first
        // toucher of an exchange block scans it sparsely, so Limited_1
        // mis-seeds later (high-reuse) sharers into remote mode (§5.3).
        s.mix = {.privateHot = 0.30, .privateStream = 0.35,
                 .sharedRO = 0.15, .sharedPC = 0.20, .sharedStream = 0,
                 .lockRMW = 0};
        s.privateStreamBytes = 48ull << 10;
        s.privateStreamUtil = 2;
        s.sharedROBytes = 64ull << 10;
        s.sharedROUtil = 6;
        s.sharedROLeaderUtil = 1;
        s.sharedPCBytes = 128ull << 10;
        s.sharingDegree = fitDegree(8, cfg.numCores);
        s.pcWriteBurst = 3;
        s.pcReadBurst = 2;
        s.computePerMemop = 1;
    } else if (name == "lu-nc") {
        // Non-contiguous blocked factorization: large per-core panels
        // with modest reuse and read-shared pivots. High miss rate;
        // word misses overwhelm the benefit past PCT ~3 (§5.1.2).
        s.mix = {.privateHot = 0.20, .privateStream = 0.50,
                 .sharedRO = 0.30, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0};
        s.privateStreamBytes = 64ull << 10;
        s.privateStreamUtil = 3;
        s.sharedROBytes = 256ull << 10;
        s.sharedROUtil = 3;
        s.privateHotUtil = 12;
        s.computePerMemop = 1;
    } else if (name == "barnes") {
        // Octree walk (read-shared) plus private bodies; moderate
        // locality everywhere, so high PCT hurts (§5.1.2).
        s.mix = {.privateHot = 0.40, .privateStream = 0.10,
                 .sharedRO = 0.35, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0.15};
        s.sharedROBytes = 128ull << 10;
        s.sharedROUtil = 4;
        s.privateStreamBytes = 48ull << 10;
        s.privateStreamUtil = 4;
        s.privateHotUtil = 10;
        s.numLocks = 64;
        s.csLines = 1;
    } else if (name == "ocean-nc") {
        // Grid stencils over big private planes with nearest-neighbor
        // exchange; high miss rate.
        s.mix = {.privateHot = 0.20, .privateStream = 0.55,
                 .sharedRO = 0, .sharedPC = 0.25, .sharedStream = 0,
                 .lockRMW = 0};
        s.privateStreamBytes = 96ull << 10;
        s.privateStreamUtil = 2;
        s.sharedPCBytes = 128ull << 10;
        s.sharingDegree = fitDegree(2, cfg.numCores);
        s.pcWriteBurst = 2;
        s.pcReadBurst = 2;
        s.computePerMemop = 1;
    } else if (name == "water-sp") {
        // Tiny per-core molecule set, heavy compute: lowest miss rate
        // in the suite, energy dominated by the L1 caches;
        // insensitive to PCT and to the classifier k.
        s.mix = {.privateHot = 0.955, .privateStream = 0,
                 .sharedRO = 0.04, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0.005};
        s.privateHotBytes = 6ull << 10;
        s.privateHotUtil = 12;
        s.sharedROBytes = 16ull << 10;
        s.sharedROUtil = 8;
        s.numLocks = 128;
        s.csLines = 1;
        s.computePerMemop = 30;
        s.iFootprintLines = 96;
        s.opsPerPhase = 6000;
    } else if (name == "raytrace") {
        // Large read-shared scene traversed with low per-line reuse.
        s.mix = {.privateHot = 0.50, .privateStream = 0.10,
                 .sharedRO = 0.35, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0.05};
        s.sharedROBytes = 256ull << 10;
        s.sharedROUtil = 3;
        s.privateStreamBytes = 32ull << 10;
        s.privateStreamUtil = 4;
        s.privateHotUtil = 10;
        s.numLocks = 16;
        s.csLines = 1;
    } else if (name == "blackscholes") {
        // Per-core option batches: a hot set that nearly fills the L1
        // plus a single-use scan that pollutes it. At PCT 2 the scan
        // is demoted, the pollution disappears, and the miss rate
        // drops (§5.1.1).
        s.mix = {.privateHot = 0.60, .privateStream = 0.20,
                 .sharedRO = 0.20, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0};
        s.privateHotBytes = 24ull << 10;
        s.privateHotUtil = 10;
        s.privateStreamBytes = 48ull << 10;
        s.privateStreamUtil = 1;
        s.sharedROBytes = 128ull << 10;
        s.sharedROUtil = 8;
        s.computePerMemop = 6;
    } else if (name == "streamcluster") {
        // Shared centers re-read between frequent barriers with
        // occasional writes; point scans. Sharing misses convert to
        // word misses (PCT >= 3) and L2 waiting time collapses.
        s.mix = {.privateHot = 0.25, .privateStream = 0,
                 .sharedRO = 0.45, .sharedPC = 0.20,
                 .sharedStream = 0.10, .lockRMW = 0};
        s.sharedROBytes = 128ull << 10;
        s.sharedROUtil = 2;
        s.roWriteFrac = 0.03;
        s.sharedPCBytes = 128ull << 10;
        s.sharingDegree = fitDegree(8, cfg.numCores);
        s.pcWriteBurst = 2;
        s.pcReadBurst = 2;
        s.sharedStreamBytes = 512ull << 10;
        s.sharedStreamUtil = 1;
        s.opsPerPhase = 2000;
        s.numPhases = 8;
        s.computePerMemop = 1;
    } else if (name == "dedup") {
        // Hash-table buckets shared within groups, lock-protected
        // updates, streaming input chunks.
        s.mix = {.privateHot = 0.25, .privateStream = 0.25,
                 .sharedRO = 0, .sharedPC = 0.35, .sharedStream = 0,
                 .lockRMW = 0.15};
        s.privateStreamBytes = 64ull << 10;
        s.privateStreamUtil = 2;
        s.sharedPCBytes = 256ull << 10;
        s.sharingDegree = fitDegree(8, cfg.numCores);
        s.pcWriteBurst = 2;
        s.pcReadBurst = 2;
        s.numLocks = 64;
        s.csLines = 2;
    } else if (name == "bodytrack") {
        // Read-hot shared model (small slices revisited dozens of
        // times while resident) with occasional writes: an
        // invalidation that catches a reader early demotes it, and
        // without re-promotion (Adapt1-way) every later visit pays
        // word round-trips — the §5.4 blow-up. The leader's dense
        // bursts also make Limited_1 mis-seed readers into private
        // mode (§5.3). A single-use scan provides the capacity→word
        // miss-rate drop at PCT 2.
        s.mix = {.privateHot = 0.30, .privateStream = 0.15,
                 .sharedRO = 0.45, .sharedPC = 0.10, .sharedStream = 0,
                 .lockRMW = 0};
        s.privateHotBytes = 16ull << 10;
        s.privateHotUtil = 12;
        s.privateStreamBytes = 32ull << 10;
        s.privateStreamUtil = 1;
        s.sharedROBytes = 64ull << 10;
        s.sharedROUtil = 2;
        s.sharedROLeaderUtil = 12;
        s.roWriteFrac = 0.30;
        s.roWriteOddPhasesOnly = true;
        s.sharedPCBytes = 128ull << 10;
        s.pcWriteBurst = 4;
        s.pcReadBurst = 2;
        s.numPhases = 6;
        s.opsPerPhase = 2500;
    } else if (name == "fluidanimate") {
        // Neighbor-grid exchange with fine-grain locks.
        s.mix = {.privateHot = 0.50, .privateStream = 0.10,
                 .sharedRO = 0, .sharedPC = 0.30, .sharedStream = 0,
                 .lockRMW = 0.10};
        s.privateHotUtil = 10;
        s.privateStreamBytes = 32ull << 10;
        s.privateStreamUtil = 4;
        s.sharedPCBytes = 128ull << 10;
        s.sharingDegree = fitDegree(2, cfg.numCores);
        s.pcWriteBurst = 4;
        s.pcReadBurst = 3;
        s.numLocks = 128;
        s.csLines = 1;
    } else if (name == "canneal") {
        // Random pointer chasing over a big netlist with swap writes:
        // utilization ~1-2 dominates (Figs 1-2 motivation).
        s.mix = {.privateHot = 0.55, .privateStream = 0,
                 .sharedRO = 0.20, .sharedPC = 0.10, .sharedStream = 0,
                 .lockRMW = 0.15};
        s.sharedROBytes = 1ull << 20;
        s.sharedROUtil = 2;
        s.roWriteFrac = 0.15;
        s.sharingDegree = fitDegree(8, cfg.numCores);
        s.sharedPCBytes = 128ull << 10;
        s.pcWriteBurst = 2;
        s.pcReadBurst = 1;
        s.privateHotUtil = 8;
        s.numLocks = 64;
        s.csLines = 1;
        s.computePerMemop = 1;
    } else if (name == "dijkstra-ss") {
        // Single-source: lock-protected relaxations on a read-hot
        // distance array with rare writes; sharing misses convert to
        // words, and one-way demotion costs ~2x (§5.4).
        s.mix = {.privateHot = 0.20, .privateStream = 0,
                 .sharedRO = 0.50, .sharedPC = 0.15, .sharedStream = 0,
                 .lockRMW = 0.15};
        s.sharedROBytes = 64ull << 10;
        s.sharedROUtil = 2;
        s.roWriteFrac = 0.20;
        s.roWriteOddPhasesOnly = true;
        s.sharedPCBytes = 128ull << 10;
        s.sharingDegree = fitDegree(8, cfg.numCores);
        s.pcWriteBurst = 2;
        s.pcReadBurst = 2;
        s.numLocks = 32;
        s.csLines = 2;
        s.opsPerPhase = 2500;
        s.numPhases = 6;
        s.computePerMemop = 1;
    } else if (name == "dijkstra-ap") {
        // All-pairs: per-core graphs scanned with single-use reads
        // that pollute the hot set; capacity misses convert to words
        // at PCT 2 and the miss rate drops.
        s.mix = {.privateHot = 0.55, .privateStream = 0.15,
                 .sharedRO = 0.30, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0};
        s.privateHotBytes = 24ull << 10;
        s.privateHotUtil = 8;
        s.privateStreamBytes = 48ull << 10;
        s.privateStreamUtil = 1;
        s.sharedROBytes = 128ull << 10;
        s.sharedROUtil = 6;
        s.computePerMemop = 1;
    } else if (name == "patricia") {
        // Shared trie descended with low per-node reuse plus update
        // locks: both capacity and sharing misses convert to words.
        s.mix = {.privateHot = 0.25, .privateStream = 0.20,
                 .sharedRO = 0.40, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0.15};
        s.sharedROBytes = 256ull << 10;
        s.sharedROUtil = 2;
        s.roWriteFrac = 0.02;
        s.privateStreamBytes = 48ull << 10;
        s.privateStreamUtil = 2;
        s.numLocks = 32;
        s.csLines = 2;
        s.computePerMemop = 1;
    } else if (name == "susan") {
        // Small image kernels, heavy compute: ~lowest miss rate.
        s.mix = {.privateHot = 0.80, .privateStream = 0.10,
                 .sharedRO = 0.10, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0};
        s.privateHotBytes = 8ull << 10;
        s.privateHotUtil = 16;
        s.privateStreamBytes = 16ull << 10;
        s.privateStreamUtil = 8;
        s.sharedROBytes = 16ull << 10;
        s.sharedROUtil = 8;
        s.computePerMemop = 25;
        s.iFootprintLines = 80;
        s.opsPerPhase = 6000;
    } else if (name == "concomp") {
        // Giant graph scanned with utilization ~1: ~50% miss rate;
        // capacity misses convert ~1:1 into word misses with no
        // utilization gain, yet completion improves (§5.1.2).
        s.mix = {.privateHot = 0.30, .privateStream = 0,
                 .sharedRO = 0, .sharedPC = 0.10, .sharedStream = 0.60,
                 .lockRMW = 0};
        s.sharedStreamBytes = 512ull << 10;
        s.sharedStreamUtil = 1;
        s.streamWriteFrac = 0.05;
        s.sharedPCBytes = 128ull << 10;
        s.sharingDegree = fitDegree(8, cfg.numCores);
        s.pcWriteBurst = 1;
        s.pcReadBurst = 1;
        s.privateHotUtil = 8;
        s.computePerMemop = 1;
    } else if (name == "community") {
        // Modularity passes: shared graph scans with moderate reuse
        // plus locked community updates.
        s.mix = {.privateHot = 0.35, .privateStream = 0,
                 .sharedRO = 0.25, .sharedPC = 0, .sharedStream = 0.25,
                 .lockRMW = 0.15};
        s.sharedStreamBytes = 256ull << 10;
        s.sharedStreamUtil = 2;
        s.sharedROBytes = 128ull << 10;
        s.sharedROUtil = 4;
        s.roWriteFrac = 0.03;
        s.numLocks = 64;
        s.csLines = 1;
        s.computePerMemop = 1;
    } else if (name == "tsp") {
        // Branch-and-bound: hot global best-bound behind few locks;
        // private tours. Converting bound sharing misses into word
        // accesses slashes the L2-to-sharers latency (§5.1.2).
        s.mix = {.privateHot = 0.40, .privateStream = 0.10,
                 .sharedRO = 0.20, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0.30};
        s.privateHotUtil = 10;
        s.privateStreamBytes = 32ull << 10;
        s.privateStreamUtil = 3;
        s.sharedROBytes = 64ull << 10;
        s.sharedROUtil = 8;
        s.roWriteFrac = 0.02;
        s.numLocks = 4;
        s.csLines = 1;
        s.computePerMemop = 3;
    } else if (name == "dfs") {
        // Pointer-chasing traversal: private stacks/visited flags
        // scanned with utilization ~1 plus a big shared graph.
        s.mix = {.privateHot = 0.25, .privateStream = 0.35,
                 .sharedRO = 0, .sharedPC = 0.10, .sharedStream = 0.30,
                 .lockRMW = 0};
        s.privateStreamBytes = 64ull << 10;
        s.privateStreamUtil = 1;
        s.sharedStreamBytes = 512ull << 10;
        s.sharedStreamUtil = 1;
        s.sharedPCBytes = 64ull << 10;
        s.pcWriteBurst = 1;
        s.pcReadBurst = 1;
        s.computePerMemop = 1;
    } else if (name == "matmul") {
        // C rows accumulate privately (hot), A streams privately, B
        // streams shared: big miss rate that drops at PCT 2 when the
        // single-use streams stop polluting the C rows.
        s.mix = {.privateHot = 0.30, .privateStream = 0.35,
                 .sharedRO = 0.35, .sharedPC = 0, .sharedStream = 0,
                 .lockRMW = 0};
        s.privateHotBytes = 24ull << 10;
        s.privateHotUtil = 16;
        s.privateStreamBytes = 64ull << 10;
        s.privateStreamUtil = 3;
        s.sharedROBytes = 512ull << 10;
        s.sharedROUtil = 3;
        s.sharingDegree = fitDegree(8, cfg.numCores);
        s.computePerMemop = 1;
    } else {
        fatal("unknown benchmark '%s'", name.c_str());
    }

    s.opsPerPhase = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(s.opsPerPhase * op_scale));
    s.sharingDegree = fitDegree(s.sharingDegree, cfg.numCores);
    return s;
}

std::unique_ptr<SyntheticWorkload>
makeBenchmark(const std::string &name, const SystemConfig &cfg,
              double op_scale)
{
    return std::make_unique<SyntheticWorkload>(
        benchmarkSpec(name, cfg, op_scale), cfg);
}

const char *
benchmarkProblemSize(const std::string &name)
{
    static const std::unordered_map<std::string, const char *> sizes = {
        {"radix", "1M integers, radix 1024"},
        {"lu-nc", "512x512 matrix, 16x16 blocks"},
        {"barnes", "16K particles"},
        {"ocean-nc", "258x258 ocean"},
        {"water-sp", "512 molecules"},
        {"raytrace", "car"},
        {"blackscholes", "64K options"},
        {"streamcluster", "8192 points per block, 1 block"},
        {"dedup", "31 MB data"},
        {"bodytrack", "2 frames, 2000 particles"},
        {"fluidanimate", "5 frames, 100,000 particles"},
        {"canneal", "200,000 elements"},
        {"dijkstra-ss", "graph with 4096 nodes"},
        {"dijkstra-ap", "graph with 512 nodes"},
        {"patricia", "5000 IP address queries"},
        {"susan", "PGM picture 2.8 MB"},
        {"concomp", "graph with 2^18 nodes"},
        {"community", "graph with 2^16 nodes"},
        {"tsp", "16 cities"},
        {"dfs", "graph with 876800 nodes"},
        {"matmul", "512x512 matrix"},
    };
    auto it = sizes.find(name);
    return it == sizes.end() ? "?" : it->second;
}

} // namespace lacc
