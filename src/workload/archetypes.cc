#include "workload/archetypes.hh"

#include <algorithm>

#include "sim/log.hh"

namespace lacc {

SyntheticWorkload::SyntheticWorkload(const SyntheticSpec &spec,
                                     const SystemConfig &cfg)
    : spec_(spec), lineSize_(cfg.lineSize),
      // Each sweep line is touched PCT times so a sweep-induced
      // eviction classifies the line *private* (utilization == PCT)
      // and measurement starts from the paper's all-private initial
      // state instead of a demoted, RAT-escalated one.
      sweepTouches_(std::max<std::uint32_t>(cfg.pct, 1))
{
    if (spec_.numCores == 0)
        fatal("workload needs at least one core");
    if (spec.mix.sum() <= 0.0)
        fatal("workload '%s' has an empty archetype mix",
              spec_.name.c_str());

    // Convert access-share weights into per-choice weights by dividing
    // out each archetype's expected burst length (see ArchetypeWeights).
    auto per_choice = [](double w, std::uint32_t burst) {
        return w / static_cast<double>(std::max<std::uint32_t>(burst, 1));
    };
    choiceW_.privateHot =
        per_choice(spec.mix.privateHot, spec.privateHotUtil);
    choiceW_.privateStream =
        per_choice(spec.mix.privateStream, spec.privateStreamUtil);
    choiceW_.sharedRO = per_choice(spec.mix.sharedRO, spec.sharedROUtil);
    const std::uint32_t pc_avg =
        spec.sharingDegree > 0
            ? (spec.pcWriteBurst +
               (spec.sharingDegree - 1) * spec.pcReadBurst) /
                  spec.sharingDegree
            : spec.pcReadBurst;
    choiceW_.sharedPC = per_choice(spec.mix.sharedPC, pc_avg);
    choiceW_.sharedStream =
        per_choice(spec.mix.sharedStream, spec.sharedStreamUtil);
    choiceW_.lockRMW = per_choice(spec.mix.lockRMW, 2 * spec.csLines);
    wSum_ = choiceW_.sum();
    if (spec_.sharingDegree == 0 ||
        spec_.numCores % spec_.sharingDegree != 0) {
        fatal("sharingDegree (%u) must divide numCores (%u)",
              spec_.sharingDegree, spec_.numCores);
    }
    if (spec_.mix.lockRMW > 0 &&
        (spec_.numLocks == 0 || spec_.csLines == 0)) {
        fatal("lockRMW archetype needs numLocks >= 1 and csLines >= 1");
    }
    if (spec_.numPhases == 0)
        fatal("workload needs at least one phase");

    AddressSpace as(cfg.pageSize);
    sharedROBase_ = as.alloc(spec_.sharedROBytes);
    sharedPCBase_ = as.alloc(spec_.sharedPCBytes);
    sharedStreamBase_ = as.alloc(spec_.sharedStreamBytes);
    lockBase_ = as.alloc(static_cast<std::uint64_t>(spec_.numLocks) *
                         lineSize_);
    csBase_ = as.alloc(static_cast<std::uint64_t>(spec_.numLocks) *
                       spec_.csLines * lineSize_);
    privateA_.reserve(spec_.numCores);
    privateB_.reserve(spec_.numCores);
    for (std::uint32_t c = 0; c < spec_.numCores; ++c)
        privateA_.push_back(as.alloc(spec_.privateHotBytes));
    for (std::uint32_t c = 0; c < spec_.numCores; ++c)
        privateB_.push_back(as.alloc(spec_.privateStreamBytes));
    footprintBytes_ = as.top() - sharedROBase_;

    gens_.resize(spec_.numCores);
    for (std::uint32_t c = 0; c < spec_.numCores; ++c)
        gens_[c].rng = Rng(spec_.seed * 0x100000001b3ULL + c);

    // Warm-up coverage sweeps (only used when a warm-up phase exists).
    if (warmupBarriers() > 0) {
        sweep_.resize(spec_.numCores);
        const std::uint32_t n = spec_.numCores;
        auto chunk = [&](std::vector<Addr> &out, Addr base,
                         std::uint64_t bytes, std::uint32_t part) {
            const std::uint64_t lines =
                std::max<std::uint64_t>(bytes / lineSize_, 1);
            const std::uint64_t per = (lines + n - 1) / n;
            const std::uint64_t first = per * part;
            for (std::uint64_t i = first;
                 i < std::min(first + per, lines); ++i)
                out.push_back(base + i * lineSize_);
        };
        for (std::uint32_t c = 0; c < n; ++c) {
            auto &sw = sweep_[c];
            // Shared regions: core c sweeps chunks c and c+1 so every
            // page sees two cores and R-NUCA re-homes it in warm-up.
            for (std::uint32_t part : {c, (c + 1) % n}) {
                chunk(sw, sharedROBase_, spec_.sharedROBytes, part);
                chunk(sw, sharedPCBase_, spec_.sharedPCBytes, part);
                chunk(sw, sharedStreamBase_, spec_.sharedStreamBytes,
                      part);
                chunk(sw, csBase_,
                      static_cast<std::uint64_t>(spec_.numLocks) *
                          spec_.csLines * lineSize_,
                      part);
            }
            // Private regions last: the hot set ends most recent.
            chunk(sw, privateB_[c], spec_.privateStreamBytes, 0);
            for (std::uint32_t part = 1; part < n; ++part)
                chunk(sw, privateB_[c], spec_.privateStreamBytes, part);
            chunk(sw, privateA_[c], spec_.privateHotBytes, 0);
            for (std::uint32_t part = 1; part < n; ++part)
                chunk(sw, privateA_[c], spec_.privateHotBytes, part);
        }
    }
}

Addr
SyntheticWorkload::lockAddr(std::uint32_t id) const
{
    return lockBase_ + static_cast<Addr>(id % spec_.numLocks) * lineSize_;
}

Addr
SyntheticWorkload::privateHotBase(CoreId core, std::uint32_t phase) const
{
    // With phaseShift the hot and stream regions swap every phase, so
    // lines demoted while streamed must be re-promoted when they turn
    // hot (the Adapt1-way pathology, §3.7/§5.4).
    if (spec_.phaseShift && (phase & 1))
        return privateB_[core];
    return privateA_[core];
}

Addr
SyntheticWorkload::privateStreamBase(CoreId core,
                                     std::uint32_t phase) const
{
    if (spec_.phaseShift && (phase & 1))
        return privateA_[core];
    return privateB_[core];
}

CoreId
SyntheticWorkload::groupLeader(CoreId core) const
{
    return static_cast<CoreId>(core / spec_.sharingDegree *
                               spec_.sharingDegree);
}

MemOp
SyntheticWorkload::startBurst(CoreGen &g, Addr line_base,
                              std::uint32_t util, bool is_write)
{
    g.burstAddr = line_base;
    g.burstLeft = std::max<std::uint32_t>(util, 1);
    g.burstIsWrite = is_write;
    return continueBurst(g);
}

MemOp
SyntheticWorkload::continueBurst(CoreGen &g)
{
    // Walk word offsets within the line so the burst has the spatial
    // component of the paper's "spatio-temporal locality".
    const Addr a = g.burstAddr;
    g.burstAddr += 8;
    if ((g.burstAddr & (lineSize_ - 1)) == 0)
        g.burstAddr -= lineSize_; // wrap within the line
    --g.burstLeft;
    ++g.opsInPhase;
    return g.burstIsWrite ? MemOp::write(a) : MemOp::read(a);
}

MemOp
SyntheticWorkload::chooseAccess(CoreId core, CoreGen &g)
{
    const auto &w = choiceW_;
    double roll = g.rng.uniform() * wSum_;
    const std::uint64_t lines_of = lineSize_;

    // ---- privateHot ------------------------------------------------------
    if ((roll -= w.privateHot) < 0) {
        const std::uint64_t lines =
            std::max<std::uint64_t>(spec_.privateHotBytes / lines_of, 1);
        const Addr base = privateHotBase(core, g.phase) +
                          g.rng.below(lines) * lineSize_;
        const bool wr = g.rng.chance(spec_.privateWriteFrac);
        return startBurst(g, base, spec_.privateHotUtil, wr);
    }

    // ---- privateStream ----------------------------------------------------
    if ((roll -= w.privateStream) < 0) {
        const std::uint64_t lines = std::max<std::uint64_t>(
            spec_.privateStreamBytes / lines_of, 1);
        const Addr base = privateStreamBase(core, g.phase) +
                          (g.privStreamCursor % lines) * lineSize_;
        ++g.privStreamCursor;
        const bool wr = g.rng.chance(spec_.privateWriteFrac);
        return startBurst(g, base, spec_.privateStreamUtil, wr);
    }

    // ---- sharedRO ---------------------------------------------------------
    if ((roll -= w.sharedRO) < 0) {
        const std::uint64_t total_lines = std::max<std::uint64_t>(
            spec_.sharedROBytes / lines_of, 1);
        // Group-partitioned table: each group works on its slice, so
        // sharers of a line are the group members.
        const std::uint32_t groups =
            spec_.numCores / spec_.sharingDegree;
        const std::uint32_t group = core / spec_.sharingDegree;
        const std::uint64_t slice =
            std::max<std::uint64_t>(total_lines / groups, 1);
        const Addr base =
            sharedROBase_ +
            (group * slice + g.rng.below(slice)) * lineSize_;
        std::uint32_t util = spec_.sharedROUtil;
        if (spec_.sharedROLeaderUtil != 0 && core == groupLeader(core))
            util = spec_.sharedROLeaderUtil;
        const bool write_phase =
            !spec_.roWriteOddPhasesOnly || (g.phase & 1);
        const bool wr = write_phase && g.rng.chance(spec_.roWriteFrac);
        // Writes to read-mostly data are short touches that invalidate
        // the readers.
        return startBurst(g, base, wr ? 1 : util, wr);
    }

    // ---- sharedPC ----------------------------------------------------------
    if ((roll -= w.sharedPC) < 0) {
        const std::uint64_t total_lines = std::max<std::uint64_t>(
            spec_.sharedPCBytes / lines_of, 1);
        const std::uint64_t blocks = std::max<std::uint64_t>(
            total_lines / spec_.pcBlockLines, 1);
        const std::uint32_t groups =
            spec_.numCores / spec_.sharingDegree;
        const std::uint32_t group = core / spec_.sharingDegree;
        const std::uint64_t group_blocks =
            std::max<std::uint64_t>(blocks / groups, 1);
        const std::uint64_t block =
            group * group_blocks + g.rng.below(group_blocks);
        const std::uint32_t writer_idx =
            static_cast<std::uint32_t>((block + g.phase) %
                                       spec_.sharingDegree);
        const CoreId writer = static_cast<CoreId>(
            group * spec_.sharingDegree + writer_idx);
        const Addr line = sharedPCBase_ +
                          (block * spec_.pcBlockLines +
                           g.rng.below(spec_.pcBlockLines)) *
                              lineSize_;
        if (core == writer)
            return startBurst(g, line, spec_.pcWriteBurst, true);
        return startBurst(g, line, spec_.pcReadBurst, false);
    }

    // ---- sharedStream --------------------------------------------------------
    if ((roll -= w.sharedStream) < 0) {
        const std::uint64_t lines = std::max<std::uint64_t>(
            spec_.sharedStreamBytes / lines_of, 1);
        if (g.sharedStreamCursor == 0) {
            // Scatter the cores across the region.
            g.sharedStreamCursor = g.rng.below(lines);
        }
        const Addr base = sharedStreamBase_ +
                          (g.sharedStreamCursor % lines) * lineSize_;
        ++g.sharedStreamCursor;
        const bool wr = g.rng.chance(spec_.streamWriteFrac);
        return startBurst(g, base, spec_.sharedStreamUtil, wr);
    }

    // ---- lockRMW ---------------------------------------------------------------
    g.cs = CoreGen::CsState::Body;
    g.csLock = static_cast<std::uint32_t>(g.rng.below(spec_.numLocks));
    g.csLineIdx = 0;
    g.csWritePending = false;
    g.csBase = csBase_ + static_cast<Addr>(g.csLock) * spec_.csLines *
                             lineSize_;
    return MemOp::lockAcquire(g.csLock);
}

MemOp
SyntheticWorkload::next(CoreId core)
{
    CoreGen &g = gens_[core];
    if (g.done)
        return MemOp::done();

    // Warm-up coverage sweep: uncounted reads at the start of phase 0
    // (cold misses land in the warm-up epoch); each line is touched
    // sweepTouches_ times (see the constructor).
    if (g.phase == 0 && !sweep_.empty() &&
        g.sweepIdx < sweep_[core].size()) {
        const Addr a = sweep_[core][g.sweepIdx];
        if (++g.sweepRep >= sweepTouches_) {
            g.sweepRep = 0;
            ++g.sweepIdx;
        }
        return MemOp::read(a);
    }

    // Finish an active burst first.
    if (g.burstLeft > 0)
        return continueBurst(g);

    // Critical-section state machine.
    if (g.cs == CoreGen::CsState::Body) {
        if (g.csWritePending) {
            g.csWritePending = false;
            const Addr a = g.csBase + g.csLineIdx * lineSize_;
            ++g.csLineIdx;
            ++g.opsInPhase;
            if (g.csLineIdx >= spec_.csLines)
                g.cs = CoreGen::CsState::Release;
            return MemOp::write(a);
        }
        const Addr a = g.csBase + g.csLineIdx * lineSize_;
        g.csWritePending = true;
        ++g.opsInPhase;
        return MemOp::read(a);
    }
    if (g.cs == CoreGen::CsState::Release) {
        g.cs = CoreGen::CsState::None;
        return MemOp::lockRelease(g.csLock);
    }

    // Phase boundary.
    if (g.opsInPhase >= spec_.opsPerPhase) {
        g.opsInPhase = 0;
        ++g.phase;
        if (g.phase >= spec_.numPhases) {
            g.done = true;
            return MemOp::done();
        }
        return MemOp::barrier();
    }

    // Compute padding between accesses.
    if (spec_.computePerMemop > 0 && g.computePending) {
        g.computePending = false;
        // +/- 50% deterministic jitter keeps cores out of lockstep.
        const std::uint32_t c = spec_.computePerMemop;
        const std::uint32_t jitter =
            c > 1 ? static_cast<std::uint32_t>(g.rng.below(c)) : 0;
        return MemOp::compute(c / 2 + jitter + 1);
    }
    g.computePending = true;

    return chooseAccess(core, g);
}

} // namespace lacc
