#include "workload/workload.hh"

// Workload interfaces are header-only; translation unit anchors the
// build.
