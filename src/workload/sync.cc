#include "workload/sync.hh"

#include <algorithm>

#include "sim/log.hh"

namespace lacc {

BarrierState::BarrierState(std::uint32_t num_cores)
    : numCores_(num_cores), arrival_(num_cores, 0)
{
    waiters_.reserve(num_cores);
}

bool
BarrierState::arrive(CoreId core, Cycle t)
{
    if (arrived_ >= numCores_)
        panic("barrier arrival overflow (core %u)", core);
    arrival_[core] = t;
    maxArrival_ = std::max(maxArrival_, t);
    ++arrived_;
    if (arrived_ == numCores_)
        return true;
    waiters_.push_back(core);
    return false;
}

void
BarrierState::resetGeneration()
{
    arrived_ = 0;
    maxArrival_ = 0;
    waiters_.clear();
}

} // namespace lacc
