/**
 * @file
 * The 21-benchmark suite of Table 2, expressed as synthetic specs.
 *
 * Every benchmark the paper evaluates (six SPLASH-2, six PARSEC, four
 * Parallel-MI-Bench, two UHPC graph benchmarks, tsp, dfs, matmul) is
 * modeled as an archetype mix tuned to its published characteristics:
 * the L1-D miss rate band and miss-type composition of Fig 10, the
 * utilization-at-removal distributions of Figs 1-2, and the §5
 * behavioral call-outs (capacity-vs-sharing conversions, lock
 * intensity, Limited_1 mis-seeding direction, Adapt1-way pathology).
 * See DESIGN.md §4 for the full mapping table.
 */

#ifndef LACC_WORKLOAD_SUITE_HH
#define LACC_WORKLOAD_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "workload/archetypes.hh"

namespace lacc {

/** Names of the 21 benchmarks, in the paper's Figure 8/9 order. */
const std::vector<std::string> &benchmarkNames();

/** @return true if @p name is one of the 21 benchmarks. */
bool isBenchmark(const std::string &name);

/**
 * Build the spec for a named benchmark.
 *
 * @param name     one of benchmarkNames()
 * @param cfg      system configuration (core count, line size, seed)
 * @param op_scale multiplies the per-phase access budget (1.0 = the
 *                 repository default, sized so whole-suite sweeps run
 *                 in minutes; raise for higher-fidelity runs)
 */
SyntheticSpec benchmarkSpec(const std::string &name,
                            const SystemConfig &cfg,
                            double op_scale = 1.0);

/** Convenience: construct the workload directly. */
std::unique_ptr<SyntheticWorkload>
makeBenchmark(const std::string &name, const SystemConfig &cfg,
              double op_scale = 1.0);

/** Table 2 problem-size description for a benchmark (paper text). */
const char *benchmarkProblemSize(const std::string &name);

} // namespace lacc

#endif // LACC_WORKLOAD_SUITE_HH
