#include "workload/trace_file.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace lacc {

TraceWorkload::TraceWorkload(std::string name,
                             std::vector<std::vector<MemOp>> streams,
                             std::uint32_t num_locks)
    : name_(std::move(name)), streams_(std::move(streams)),
      pos_(streams_.size(), 0), numLocks_(num_locks)
{
    if (streams_.empty())
        fatal("trace workload '%s' has no cores", name_.c_str());
}

MemOp
TraceWorkload::next(CoreId core)
{
    auto &p = pos_[core];
    const auto &s = streams_[core];
    if (p >= s.size())
        return MemOp::done();
    return s[p++];
}

std::size_t
TraceWorkload::remaining(CoreId core) const
{
    return streams_[core].size() - pos_[core];
}

TraceWorkload
TraceWorkload::parse(std::istream &in, std::string name)
{
    std::string line;
    std::uint32_t num_cores = 0, num_locks = 0;
    std::vector<std::vector<MemOp>> streams;
    std::size_t line_no = 0;

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string first;
        ls >> first;
        if (first == "trace") {
            if (!(ls >> num_cores >> num_locks) || num_cores == 0)
                fatal("trace header malformed at line %zu", line_no);
            streams.assign(num_cores, {});
            continue;
        }
        if (streams.empty())
            fatal("trace body before 'trace' header (line %zu)", line_no);

        std::uint32_t core = 0;
        try {
            core = static_cast<std::uint32_t>(std::stoul(first));
        } catch (...) {
            fatal("bad core id '%s' at line %zu", first.c_str(), line_no);
        }
        if (core >= num_cores)
            fatal("core id %u out of range at line %zu", core, line_no);

        std::string op;
        if (!(ls >> op))
            fatal("missing op at line %zu", line_no);

        auto &stream = streams[core];
        if (op == "r" || op == "w" || op == "f") {
            std::string hex;
            if (!(ls >> hex))
                fatal("missing address at line %zu", line_no);
            Addr a = 0;
            try {
                a = std::stoull(hex, nullptr, 16);
            } catch (...) {
                fatal("bad address '%s' at line %zu", hex.c_str(),
                      line_no);
            }
            if (op == "r")
                stream.push_back(MemOp::read(a));
            else if (op == "w")
                stream.push_back(MemOp::write(a));
            else
                stream.push_back(MemOp::ifetch(a));
        } else if (op == "c") {
            std::uint32_t n = 0;
            if (!(ls >> n))
                fatal("missing cycle count at line %zu", line_no);
            stream.push_back(MemOp::compute(n));
        } else if (op == "b") {
            stream.push_back(MemOp::barrier());
        } else if (op == "a" || op == "l") {
            std::uint32_t id = 0;
            if (!(ls >> id))
                fatal("missing lock id at line %zu", line_no);
            if (id >= num_locks)
                fatal("lock id %u out of range at line %zu", id, line_no);
            stream.push_back(op == "a" ? MemOp::lockAcquire(id)
                                       : MemOp::lockRelease(id));
        } else {
            fatal("unknown op '%s' at line %zu", op.c_str(), line_no);
        }
    }
    if (streams.empty())
        fatal("trace '%s' missing 'trace' header", name.c_str());
    return TraceWorkload(std::move(name), std::move(streams), num_locks);
}

TraceWorkload
TraceWorkload::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    return parse(in, path);
}

void
TraceWorkload::save(std::ostream &out) const
{
    out << "# lacc trace\n";
    out << "trace " << streams_.size() << " " << numLocks_ << "\n";
    char buf[32];
    for (std::size_t c = 0; c < streams_.size(); ++c) {
        for (const auto &op : streams_[c]) {
            switch (op.kind) {
              case MemOp::Kind::Read:
                std::snprintf(buf, sizeof buf, "%llx",
                              static_cast<unsigned long long>(op.addr));
                out << c << " r " << buf << "\n";
                break;
              case MemOp::Kind::Write:
                std::snprintf(buf, sizeof buf, "%llx",
                              static_cast<unsigned long long>(op.addr));
                out << c << " w " << buf << "\n";
                break;
              case MemOp::Kind::IFetch:
                std::snprintf(buf, sizeof buf, "%llx",
                              static_cast<unsigned long long>(op.addr));
                out << c << " f " << buf << "\n";
                break;
              case MemOp::Kind::Compute:
                out << c << " c " << op.count << "\n";
                break;
              case MemOp::Kind::Barrier:
                out << c << " b\n";
                break;
              case MemOp::Kind::LockAcquire:
                out << c << " a " << op.lockId << "\n";
                break;
              case MemOp::Kind::LockRelease:
                out << c << " l " << op.lockId << "\n";
                break;
              case MemOp::Kind::Done:
                break;
            }
        }
    }
}

} // namespace lacc
