#include "workload/trace_file.hh"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "sim/log.hh"

namespace lacc {

TraceWorkload::TraceWorkload(std::string name,
                             std::vector<std::vector<MemOp>> streams,
                             std::uint32_t num_locks)
    : name_(std::move(name)), streams_(std::move(streams)),
      pos_(streams_.size(), 0), numLocks_(num_locks)
{
    if (streams_.empty())
        fatal("trace workload '%s' has no cores", name_.c_str());
}

MemOp
TraceWorkload::next(CoreId core)
{
    auto &p = pos_[core];
    const auto &s = streams_[core];
    if (p >= s.size())
        return MemOp::done();
    return s[p++];
}

std::size_t
TraceWorkload::remaining(CoreId core) const
{
    return streams_[core].size() - pos_[core];
}

namespace {

/**
 * Strict decimal parse of a full token: every character must be a
 * digit and the value must fit. Rejects the partial parses
 * std::stoul would accept (e.g. "2x" -> 2, "-1" -> huge).
 */
bool
parseDecimal(const std::string &tok, std::uint32_t &out)
{
    if (tok.empty() || tok.size() > 10)
        return false;
    std::uint64_t v = 0;
    for (const char ch : tok) {
        if (ch < '0' || ch > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    if (v > std::numeric_limits<std::uint32_t>::max())
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

/** Strict hex parse of a full token; an optional 0x prefix is fine. */
bool
parseHex(const std::string &tok, Addr &out)
{
    std::size_t i = 0;
    if (tok.size() > 2 && tok[0] == '0' &&
        (tok[1] == 'x' || tok[1] == 'X'))
        i = 2;
    if (i >= tok.size() || tok.size() - i > 16)
        return false;
    Addr v = 0;
    for (; i < tok.size(); ++i) {
        const char ch = tok[i];
        std::uint32_t nibble = 0;
        if (ch >= '0' && ch <= '9')
            nibble = static_cast<std::uint32_t>(ch - '0');
        else if (ch >= 'a' && ch <= 'f')
            nibble = static_cast<std::uint32_t>(ch - 'a') + 10;
        else if (ch >= 'A' && ch <= 'F')
            nibble = static_cast<std::uint32_t>(ch - 'A') + 10;
        else
            return false;
        v = (v << 4) | nibble;
    }
    out = v;
    return true;
}

/**
 * fatal() if the line stream still holds a non-comment token; a
 * token starting with '#' comments out the rest of the line.
 */
void
rejectTrailing(std::istringstream &ls, std::size_t line_no)
{
    std::string extra;
    if ((ls >> extra) && extra[0] != '#')
        fatal("trailing garbage '%s' at line %zu", extra.c_str(),
              line_no);
}

} // namespace

TraceWorkload
TraceWorkload::parse(std::istream &in, std::string name)
{
    std::string line;
    std::uint32_t num_cores = 0, num_locks = 0;
    std::vector<std::vector<MemOp>> streams;
    std::size_t line_no = 0;

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string first;
        ls >> first;
        if (first == "trace") {
            if (!streams.empty())
                fatal("duplicate 'trace' header at line %zu", line_no);
            std::string cores_tok, locks_tok;
            if (!(ls >> cores_tok >> locks_tok) ||
                !parseDecimal(cores_tok, num_cores) ||
                !parseDecimal(locks_tok, num_locks) || num_cores == 0)
                fatal("trace header malformed at line %zu (want"
                      " 'trace <numCores> <numLocks>')", line_no);
            rejectTrailing(ls, line_no);
            streams.assign(num_cores, {});
            continue;
        }
        if (streams.empty())
            fatal("trace body before 'trace' header (line %zu)", line_no);

        std::uint32_t core = 0;
        if (!parseDecimal(first, core))
            fatal("bad core id '%s' at line %zu (must be a decimal"
                  " integer)", first.c_str(), line_no);
        if (core >= num_cores)
            fatal("core id %u out of range at line %zu (trace has %u"
                  " cores)", core, line_no, num_cores);

        std::string op;
        if (!(ls >> op))
            fatal("missing op at line %zu", line_no);

        auto &stream = streams[core];
        if (op == "r" || op == "w" || op == "f") {
            std::string hex;
            if (!(ls >> hex))
                fatal("missing address at line %zu", line_no);
            Addr a = 0;
            if (!parseHex(hex, a))
                fatal("bad address '%s' at line %zu (must be a hex"
                      " address of at most 16 digits)", hex.c_str(),
                      line_no);
            if (op == "r")
                stream.push_back(MemOp::read(a));
            else if (op == "w")
                stream.push_back(MemOp::write(a));
            else
                stream.push_back(MemOp::ifetch(a));
        } else if (op == "c") {
            std::string cnt;
            std::uint32_t n = 0;
            if (!(ls >> cnt))
                fatal("missing cycle count at line %zu", line_no);
            if (!parseDecimal(cnt, n))
                fatal("bad cycle count '%s' at line %zu", cnt.c_str(),
                      line_no);
            stream.push_back(MemOp::compute(n));
        } else if (op == "b") {
            stream.push_back(MemOp::barrier());
        } else if (op == "a" || op == "l") {
            std::string id_tok;
            std::uint32_t id = 0;
            if (!(ls >> id_tok))
                fatal("missing lock id at line %zu", line_no);
            if (!parseDecimal(id_tok, id))
                fatal("bad lock id '%s' at line %zu", id_tok.c_str(),
                      line_no);
            if (id >= num_locks)
                fatal("lock id %u out of range at line %zu (trace has"
                      " %u locks)", id, line_no, num_locks);
            stream.push_back(op == "a" ? MemOp::lockAcquire(id)
                                       : MemOp::lockRelease(id));
        } else {
            fatal("unknown op '%s' at line %zu (know r/w/f/c/b/a/l)",
                  op.c_str(), line_no);
        }
        rejectTrailing(ls, line_no);
    }
    if (streams.empty())
        fatal("trace '%s' missing 'trace' header", name.c_str());
    return TraceWorkload(std::move(name), std::move(streams), num_locks);
}

TraceWorkload
TraceWorkload::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '%s'", path.c_str());
    return parse(in, path);
}

void
TraceWorkload::save(std::ostream &out) const
{
    out << "# lacc trace\n";
    out << "trace " << streams_.size() << " " << numLocks_ << "\n";
    char buf[32];
    for (std::size_t c = 0; c < streams_.size(); ++c) {
        for (const auto &op : streams_[c]) {
            switch (op.kind) {
              case MemOp::Kind::Read:
                std::snprintf(buf, sizeof buf, "%llx",
                              static_cast<unsigned long long>(op.addr));
                out << c << " r " << buf << "\n";
                break;
              case MemOp::Kind::Write:
                std::snprintf(buf, sizeof buf, "%llx",
                              static_cast<unsigned long long>(op.addr));
                out << c << " w " << buf << "\n";
                break;
              case MemOp::Kind::IFetch:
                std::snprintf(buf, sizeof buf, "%llx",
                              static_cast<unsigned long long>(op.addr));
                out << c << " f " << buf << "\n";
                break;
              case MemOp::Kind::Compute:
                out << c << " c " << op.count << "\n";
                break;
              case MemOp::Kind::Barrier:
                out << c << " b\n";
                break;
              case MemOp::Kind::LockAcquire:
                out << c << " a " << op.lockId << "\n";
                break;
              case MemOp::Kind::LockRelease:
                out << c << " l " << op.lockId << "\n";
                break;
              case MemOp::Kind::Done:
                break;
            }
        }
    }
}

} // namespace lacc
