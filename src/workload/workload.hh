/**
 * @file
 * Workload abstraction: a per-core stream of memory operations.
 *
 * The paper drives its evaluation with 21 multithreaded benchmarks
 * executed under the Graphite simulator (Table 2). This repository
 * substitutes deterministic synthetic generators whose memory-system
 * behavior is tuned to the paper's published per-benchmark
 * characteristics (see DESIGN.md §2/§4); the Workload interface also
 * supports file-based traces (trace_file.hh) and custom generators
 * (see examples/).
 */

#ifndef LACC_WORKLOAD_WORKLOAD_HH
#define LACC_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace lacc {

/** One operation in a core's instruction stream. */
struct MemOp
{
    /** Operation kinds understood by the core model. */
    enum class Kind : std::uint8_t {
        Read,        //!< data load (addr)
        Write,       //!< data store (addr)
        IFetch,      //!< explicit instruction fetch (trace replay)
        Compute,     //!< count non-memory pipeline cycles
        Barrier,     //!< global barrier
        LockAcquire, //!< acquire lock lockId
        LockRelease, //!< release lock lockId
        Done,        //!< this core's stream is exhausted
    };

    Kind kind = Kind::Done;
    Addr addr = 0;
    std::uint32_t count = 1;  //!< Compute: cycles (= instructions)
    std::uint32_t lockId = 0;

    // Factories: the convenient way for generators and tests to emit
    // a stream (see Kind above for each op's meaning).
    static MemOp read(Addr a) { return {Kind::Read, a, 1, 0}; }
    static MemOp write(Addr a) { return {Kind::Write, a, 1, 0}; }
    static MemOp ifetch(Addr a) { return {Kind::IFetch, a, 1, 0}; }
    static MemOp compute(std::uint32_t cycles)
    {
        return {Kind::Compute, 0, cycles, 0};
    }
    static MemOp barrier() { return {Kind::Barrier, 0, 1, 0}; }
    static MemOp lockAcquire(std::uint32_t id)
    {
        return {Kind::LockAcquire, 0, 1, id};
    }
    static MemOp lockRelease(std::uint32_t id)
    {
        return {Kind::LockRelease, 0, 1, id};
    }
    static MemOp done() { return {Kind::Done, 0, 0, 0}; }
};

/** A multithreaded workload: one operation stream per core. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Workload name (for reports). */
    virtual const std::string &name() const = 0;

    /** Number of cores the workload expects. */
    virtual std::uint32_t numCores() const = 0;

    /** Number of distinct locks used (LockAcquire ids < this). */
    virtual std::uint32_t numLocks() const { return 0; }

    /**
     * Produce the next operation for @p core. Must keep returning
     * MemOp::done() after the stream ends. Barrier counts must match
     * across cores.
     */
    virtual MemOp next(CoreId core) = 0;

    /**
     * True when next() may be called for *different* cores from
     * different threads concurrently (i.e. per-core generator state is
     * independent and const queries race-free). The sharded execution
     * engine requires this; workloads that keep cross-core mutable
     * state leave the default and are run serially (bit-identical
     * either way — this only gates the parallel fast path).
     */
    virtual bool concurrentNextSafe() const { return false; }

    /**
     * Size of the instruction footprint, in cache lines, walked by the
     * core model's ifetch engine (0 disables the walker; trace
     * workloads emit explicit IFetch ops instead).
     */
    virtual std::uint32_t iFootprintLines(CoreId core) const
    {
        (void)core;
        return 0;
    }

    /**
     * Approximate data footprint in bytes (0 = unknown). Used by the
     * system to pre-size the functional reference memory so big
     * workloads do not rehash it repeatedly; an estimate, not a
     * contract — accesses outside the footprint still work.
     */
    virtual std::uint64_t footprintBytes() const { return 0; }

    /**
     * Address of the cache line backing lock @p id. Lock transfers
     * generate real coherence traffic on this line.
     */
    virtual Addr
    lockAddr(std::uint32_t id) const
    {
        return (Addr{0xF} << 36) + static_cast<Addr>(id) * 64;
    }

    /** Base address of the instruction footprint region. */
    virtual Addr codeBase() const { return Addr{0xC0} << 36; }

    /**
     * Number of barrier *releases* that constitute cache warm-up.
     * After that many global barriers, the system resets all
     * statistics (caches and directories stay warm) and measurement
     * begins — the standard warm-up/measure discipline that the
     * paper's full-length Graphite runs achieve by sheer run length.
     */
    virtual std::uint32_t warmupBarriers() const { return 0; }
};

/**
 * Page-aligned bump allocator for laying out workload address spaces.
 * Distinct regions never share an OS page, so R-NUCA classification
 * (first-touch private vs shared) is determined by access pattern, not
 * by accidental page sharing.
 */
class AddressSpace
{
  public:
    explicit AddressSpace(std::uint32_t page_size,
                          Addr base = Addr{1} << 32)
        : pageSize_(page_size), next_(alignUp(base, page_size))
    {}

    /** Allocate @p bytes, page aligned; returns the region base. */
    Addr
    alloc(std::uint64_t bytes)
    {
        const Addr base = next_;
        next_ = alignUp(next_ + (bytes == 0 ? 1 : bytes), pageSize_);
        return base;
    }

    /** First unallocated address (test helper). */
    Addr top() const { return next_; }

  private:
    static Addr
    alignUp(Addr a, std::uint64_t align)
    {
        return (a + align - 1) / align * align;
    }

    std::uint32_t pageSize_;
    Addr next_;
};

} // namespace lacc

#endif // LACC_WORKLOAD_WORKLOAD_HH
