#include "verify/enumerate.hh"

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <memory>
#include <unordered_set>

#include "net/factory.hh"
#include "protocol/factory.hh"
#include "system/multicore.hh"
#include "verify/invariants.hh"

namespace lacc {
namespace verify {

namespace {

/** The enumerated line pool: 16 lines apart = same direct-mapped L1
 * set (16 sets), same 4 KiB page (1024-byte stride). */
constexpr Addr kBase = Addr{1} << 32;
constexpr Addr kLineStride = 16 * 64;

/** One access event: (core, line index, kind). */
struct Event
{
    std::uint8_t core;
    std::uint8_t line;
    std::uint8_t kind; //!< 0 = read, 1 = write, 2 = ifetch
};

Addr
eventAddr(const Event &e)
{
    return kBase + static_cast<Addr>(e.line) * kLineStride;
}

void
applyEvent(Multicore &m, const Event &e)
{
    m.testAccess(static_cast<CoreId>(e.core), eventAddr(e),
                 e.kind == 1, e.kind == 2);
}

std::unique_ptr<Multicore>
replay(const SystemConfig &cfg, const std::vector<Event> &path)
{
    auto m = std::make_unique<Multicore>(cfg);
    for (const Event &e : path)
        applyEvent(*m, e);
    return m;
}

void
appendNum(std::string &s, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(v));
    s += buf;
    s += ',';
}

/** Canonical (timing-free, threshold-capped) state encoding; see the
 * file header of enumerate.hh for the soundness argument. */
std::string
encodeState(Multicore &m)
{
    const SystemConfig &cfg = m.config();
    std::string s;
    s.reserve(256);

    // L1 contents: per core, per cache, (tag, state, capped util)
    // sorted by tag.
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        Tile &tl = m.tile(static_cast<CoreId>(c));
        for (L1Cache *l1 : {&tl.l1d, &tl.l1i}) {
            std::vector<std::array<std::uint64_t, 3>> lines;
            l1->forEach([&](L1Cache::Entry e) {
                if (!e.valid())
                    return;
                lines.push_back(
                    {e.tag(),
                     static_cast<std::uint64_t>(e.meta().state),
                     std::min(e.meta().privateUtil, cfg.pct)});
            });
            std::sort(lines.begin(), lines.end());
            s += l1 == &tl.l1d ? 'D' : 'I';
            for (const auto &l : lines)
                for (const std::uint64_t v : l)
                    appendNum(s, v);
        }
        s += '|';
    }

    // Directory entries: per home, sorted by tag; protocol metadata
    // plus the full per-core classifier records.
    for (std::uint32_t h = 0; h < cfg.numCores; ++h) {
        std::vector<L2Cache::Entry> entries;
        m.tile(static_cast<CoreId>(h)).l2.forEach(
            [&](L2Cache::Entry e) {
                if (e.valid())
                    entries.push_back(e);
            });
        std::sort(entries.begin(), entries.end(),
                  [](const L2Cache::Entry &a, const L2Cache::Entry &b) {
                      return a.tag() < b.tag();
                  });
        s += 'H';
        for (const auto &e : entries) {
            const L2Meta &meta = e.meta();
            appendNum(s, e.tag());
            appendNum(s, static_cast<std::uint64_t>(meta.dstate));
            appendNum(s, meta.owner);
            // dirty is deliberately excluded: it only gates the DRAM
            // write-back on an L2 eviction, and the bounded config
            // can never evict an L2 line (<= 2 distinct lines, 4
            // sets x 8 ways), so it is decision-irrelevant here the
            // same way data words are.
            appendNum(s, meta.sharers.count());
            appendNum(s, meta.sharers.overflowed() ? 1 : 0);
            s += 't';
            for (const CoreId t : meta.sharers.tracked())
                appendNum(s, t);
            s += 'h';
            std::vector<CoreId> holders(meta.holders.begin(),
                                        meta.holders.end());
            std::sort(holders.begin(), holders.end());
            for (const CoreId t : holders)
                appendNum(s, t);
            s += 'k';
            for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
                const CoreLocality *loc =
                    meta.cls ? m.classifier().peek(
                                   *meta.cls, static_cast<CoreId>(c))
                             : nullptr;
                if (loc == nullptr) {
                    s += '-';
                    continue;
                }
                // `active` is deliberately excluded: the Complete
                // classifier (which enumConfig pins, shortcut off)
                // writes it but never reads it — only Limited_k
                // consults it, for tracked-entry replacement — so
                // like the timing fields it cannot influence any
                // future decision here.
                appendNum(s,
                          static_cast<std::uint64_t>(loc->mode));
                appendNum(s, std::min(loc->remoteUtil, cfg.ratMax));
                appendNum(s, loc->ratLevel);
            }
            s += ';';
        }
        s += '|';
    }

    // R-NUCA page record of the (single) enumerated page: class and
    // owner drive every future home lookup and rehome decision.
    const PageAddr page = kBase / cfg.pageSize;
    if (const PageTable::Record *rec = m.pageTable().lookup(page)) {
        s += 'P';
        appendNum(s, static_cast<std::uint64_t>(rec->cls));
        appendNum(s, rec->owner);
    }
    return s;
}

std::string
renderPath(const std::vector<Event> &path)
{
    std::string s;
    for (const Event &e : path) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "core %u %c %llx\n", e.core,
                      "rwf"[e.kind],
                      static_cast<unsigned long long>(eventAddr(e)));
        s += buf;
    }
    return s;
}

} // namespace

SystemConfig
enumConfig(std::uint32_t cores, const std::string &protocol,
           const std::string &network)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.meshWidth = cores;
    cfg.clusterSize = cores; // one cluster: unique instruction homes
    cfg.numMemControllers = 1;
    cfg.l1iSizeKB = 1;
    cfg.l1iAssoc = 1; // direct-mapped: deterministic replacement
    cfg.l1dSizeKB = 1;
    cfg.l1dAssoc = 1;
    cfg.l2SizeKB = 2;
    cfg.l2Assoc = 8; // 4 sets; never fills with <= 2 lines
    cfg.ackwisePointers = 1; // overflow reachable with 2 sharers
    cfg.classifierKind = ClassifierKind::Complete;
    cfg.pct = 2;
    cfg.ratMax = 2;
    // One RAT level: with pct == ratMax every level's threshold is
    // identical anyway, and collapsing the level counter removes a
    // decision-irrelevant state dimension from the search.
    cfg.nRatLevels = 1;
    applyProtocolName(cfg, protocol);
    applyNetworkName(cfg, network);
    return cfg;
}

EnumResult
enumerate(const EnumOptions &opt)
{
    EnumResult res;
    const SystemConfig cfg =
        enumConfig(opt.cores, opt.protocol, opt.network);

    // Event alphabet: every (core, line, kind) access.
    std::vector<Event> events;
    for (std::uint32_t c = 0; c < opt.cores; ++c)
        for (std::uint32_t l = 0; l < opt.lines; ++l)
            for (std::uint8_t k = 0; k < 3; ++k)
                events.push_back({static_cast<std::uint8_t>(c),
                                  static_cast<std::uint8_t>(l), k});

    std::unordered_set<std::string> seen;
    std::deque<std::vector<Event>> frontier;
    bool capped = false;

    {
        auto m = std::make_unique<Multicore>(cfg);
        seen.insert(encodeState(*m));
        frontier.push_back({});
    }

    while (!frontier.empty()) {
        const std::vector<Event> path = std::move(frontier.front());
        frontier.pop_front();
        for (const Event &e : events) {
            std::vector<Event> next = path;
            next.push_back(e);
            auto m = replay(cfg, next);
            ++res.transitions;
            auto viol = checkAll(*m);
            if (!viol.empty()) {
                res.states = seen.size();
                res.violations = std::move(viol);
                res.counterexample = renderPath(next);
                return res;
            }
            if (!seen.insert(encodeState(*m)).second)
                continue;
            if (seen.size() >= opt.maxStates) {
                capped = true;
                break;
            }
            frontier.push_back(std::move(next));
        }
        if (capped)
            break;
    }

    res.states = seen.size();
    res.exhaustive = !capped;
    return res;
}

} // namespace verify
} // namespace lacc
