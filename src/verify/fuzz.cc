#include "verify/fuzz.hh"

#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "fault/plan.hh"
#include "net/factory.hh"
#include "protocol/factory.hh"
#include "sim/abort.hh"
#include "sim/rng.hh"
#include "system/multicore.hh"
#include "verify/invariants.hh"

namespace lacc {
namespace verify {

namespace {

std::string
vfmt(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    return std::string(buf);
}

/**
 * The shared-data address pool: a handful of lines chosen so a few
 * dozen random ops already exercise the interesting structure —
 * adjacent lines on one page (false sharing + one R-NUCA record),
 * L1-set conflicts (fuzzConfig's L1s have 8 sets, so +8/+16 lines
 * collide and force evictions), and a second page (private->shared
 * rehoming races). Ifetches draw from the same pool, so
 * dual-L1-I/L1-D holders and instruction-page classification corners
 * are reachable too.
 */
constexpr Addr kPoolBase = Addr{1} << 32;
constexpr Addr kPoolOffsets[] = {
    0, 64, 8 * 64, 16 * 64, 4096, 4096 + 64,
};
constexpr std::size_t kPoolSize =
    sizeof(kPoolOffsets) / sizeof(kPoolOffsets[0]);

Addr
randomAddr(Rng &rng)
{
    const Addr line = kPoolBase + kPoolOffsets[rng.below(kPoolSize)];
    // Bias to word 0: colliding on one word maximizes real
    // write-write and read-write conflicts per trace.
    const Addr word = rng.chance(0.5) ? 0 : rng.below(8);
    return line + word * 8;
}

TraceWorkload
generateTrace(Rng &rng, const FuzzOptions &opt, std::uint32_t iter)
{
    std::vector<std::vector<MemOp>> streams(opt.cores);
    for (auto &ops : streams) {
        while (ops.size() < opt.opsPerCore) {
            const std::uint64_t roll = rng.below(100);
            if (roll < 35) {
                ops.push_back(MemOp::read(randomAddr(rng)));
            } else if (roll < 65) {
                ops.push_back(MemOp::write(randomAddr(rng)));
            } else if (roll < 78) {
                // Line-granular: an ifetch of a mid-line word is no
                // different, and line addresses read better in repros.
                ops.push_back(MemOp::ifetch(
                    kPoolBase + kPoolOffsets[rng.below(kPoolSize)]));
            } else if (roll < 88) {
                ops.push_back(MemOp::compute(
                    1 + static_cast<std::uint32_t>(rng.below(200))));
            } else {
                // Critical section on the single lock: balanced by
                // construction (an unmatched release would fatal()).
                ops.push_back(MemOp::lockAcquire(0));
                const std::uint64_t body = 1 + rng.below(3);
                for (std::uint64_t k = 0; k < body; ++k) {
                    if (rng.chance(0.5))
                        ops.push_back(MemOp::write(randomAddr(rng)));
                    else
                        ops.push_back(MemOp::read(randomAddr(rng)));
                }
                ops.push_back(MemOp::lockRelease(0));
            }
        }
    }
    return TraceWorkload(vfmt("fuzz_s%llu_i%u",
                              static_cast<unsigned long long>(opt.seed),
                              iter),
                         std::move(streams), 1);
}

void
saveTrace(const TraceWorkload &w, const std::string &path,
          const std::vector<std::string> &comments)
{
    std::ofstream f(path);
    for (const auto &c : comments)
        f << "# " << c << "\n";
    w.save(f);
}

const char *
opTag(const MemOp &op)
{
    switch (op.kind) {
      case MemOp::Kind::Read: return "r";
      case MemOp::Kind::Write: return "w";
      case MemOp::Kind::IFetch: return "f";
      case MemOp::Kind::Compute: return "c";
      case MemOp::Kind::Barrier: return "b";
      case MemOp::Kind::LockAcquire: return "a";
      case MemOp::Kind::LockRelease: return "l";
      default: return "?";
    }
}

} // namespace

SystemConfig
fuzzConfig(std::uint32_t cores)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.meshWidth = cores; // one row; any core count works
    cfg.clusterSize = cores;
    cfg.numMemControllers = 1;
    cfg.l1iSizeKB = 1;
    cfg.l1iAssoc = 2; // 8 sets: pool lines +8/+16 collide
    cfg.l1dSizeKB = 1;
    cfg.l1dAssoc = 2;
    cfg.l2SizeKB = 4;
    cfg.l2Assoc = 8;
    cfg.ackwisePointers = 2; // overflow reachable with 3 sharers
    cfg.classifierKind = ClassifierKind::Limited;
    cfg.classifierK = 2;
    cfg.pct = 2; // private/remote transitions within a few touches
    cfg.ratMax = 4;
    cfg.nRatLevels = 2;
    return cfg;
}

std::vector<std::string>
checkTrace(const TraceWorkload &w, const SystemConfig &cfg,
           bool stepwise, const std::string &evidence_path)
{
    if (!evidence_path.empty())
        saveTrace(w, evidence_path, {"fuzz candidate (in flight)"});

    std::vector<std::string> out;

    // Full timed run: the real event loop (locks block, per-core
    // clocks interleave by latency), every read checked against the
    // reference memory, full state checked at the end. Under fault
    // injection a RunAbort (retry-budget exhaustion, unrecoverable
    // double-bit) is a *detected* fault, not a coherence violation —
    // the fuzzer hunts silent corruption, so the run counts as clean.
    {
        TraceWorkload copy(w.name(), w.streams(), w.numLocks());
        Multicore m(cfg);
        try {
            m.run(copy);
            for (const auto &v : checkAll(m))
                out.push_back("full-run: " + v);
        } catch (const RunAbort &) {
        }
    }

    // Stepwise replay: a second, different interleaving (round-robin,
    // one op per core per turn), with every invariant checked after
    // every single access — transient corruption that the final state
    // happens to re-absorb is caught here. Lock ops replay as plain
    // writes to the lock line (any interleaving is coherence-legal);
    // compute/barrier ops are timing-only and are skipped.
    if (stepwise) {
        Multicore m(cfg);
        const auto &streams = w.streams();
        std::vector<std::size_t> pos(streams.size(), 0);
        std::size_t step = 0;
        bool live = true, stop = false;
        try {
        while (live && !stop) {
            live = false;
            for (std::uint32_t c = 0; c < streams.size() && !stop;
                 ++c) {
                if (pos[c] >= streams[c].size())
                    continue;
                live = true;
                const MemOp &op = streams[c][pos[c]++];
                ++step;
                const CoreId cc = static_cast<CoreId>(c);
                switch (op.kind) {
                  case MemOp::Kind::Read:
                    m.testAccess(cc, op.addr, false);
                    break;
                  case MemOp::Kind::Write:
                    m.testAccess(cc, op.addr, true);
                    break;
                  case MemOp::Kind::IFetch:
                    m.testAccess(cc, op.addr, false, true);
                    break;
                  case MemOp::Kind::LockAcquire:
                  case MemOp::Kind::LockRelease:
                    m.testAccess(cc, w.lockAddr(op.lockId), true);
                    break;
                  default:
                    continue; // no memory access: nothing to check
                }
                for (const auto &v : checkInvariants(m)) {
                    out.push_back(vfmt("step %zu (core %u %s): ", step,
                                       c, opTag(op)) +
                                  v);
                    stop = true;
                }
            }
        }
        if (!stop) {
            for (const auto &v : checkAll(m))
                out.push_back("stepwise-final: " + v);
        }
        } catch (const RunAbort &) {
            // Detected fault mid-replay: honest abort, not silent
            // corruption — same policy as the full timed run above.
        }
    }
    return out;
}

TraceWorkload
shrinkTrace(const TraceWorkload &w, const SystemConfig &cfg,
            bool stepwise, const std::string &evidence_path)
{
    std::vector<std::vector<MemOp>> streams = w.streams();

    // Co-minimize the fault schedule with the trace. First the big
    // step: does the violation reproduce fault-free? If so the bug is
    // in the protocol, not the recovery paths — shrink without faults
    // so the repro doesn't depend on a fault seed.
    SystemConfig scfg = cfg;
    if (scfg.faultKind != FaultKind::None) {
        SystemConfig clean = scfg;
        clean.faultKind = FaultKind::None;
        if (!checkTrace(w, clean, stepwise, evidence_path).empty())
            scfg = clean;
    }

    bool reduced = true;
    while (reduced) {
        reduced = false;
        // Between op-removal passes, halve the fault intensity while
        // the failure persists: the final repro carries the weakest
        // fault schedule that still breaks.
        while (scfg.faultKind != FaultKind::None &&
               scfg.faultRate > 1e-12) {
            SystemConfig half = scfg;
            half.faultRate *= 0.5;
            TraceWorkload t(w.name(), streams, w.numLocks());
            if (checkTrace(t, half, stepwise, evidence_path).empty())
                break;
            scfg = half;
        }
        for (std::size_t c = 0; c < streams.size() && !reduced; ++c) {
            for (std::size_t i = 0;
                 i < streams[c].size() && !reduced; ++i) {
                const MemOp &op = streams[c][i];
                // Barriers must stay count-matched across cores;
                // removing one would deadlock the candidate run.
                if (op.kind == MemOp::Kind::Barrier)
                    continue;
                auto cand = streams;
                auto &s = cand[c];
                if (op.kind == MemOp::Kind::LockAcquire) {
                    // Co-remove the matching release (nesting-aware).
                    std::size_t depth = 0, j = i + 1;
                    for (; j < s.size(); ++j) {
                        if (s[j].lockId != op.lockId)
                            continue;
                        if (s[j].kind == MemOp::Kind::LockAcquire)
                            ++depth;
                        else if (s[j].kind ==
                                 MemOp::Kind::LockRelease) {
                            if (depth == 0)
                                break;
                            --depth;
                        }
                    }
                    if (j >= s.size())
                        continue; // malformed; leave it alone
                    s.erase(s.begin() + j);
                    s.erase(s.begin() + i);
                } else if (op.kind == MemOp::Kind::LockRelease) {
                    continue; // removed with its acquire
                } else {
                    s.erase(s.begin() + i);
                }
                TraceWorkload t(w.name(), std::move(cand),
                                w.numLocks());
                if (!checkTrace(t, scfg, stepwise, evidence_path)
                         .empty()) {
                    streams = t.streams();
                    reduced = true;
                }
            }
        }
    }
    return TraceWorkload(w.name() + "_min", std::move(streams),
                         w.numLocks());
}

FuzzResult
runFuzz(const FuzzOptions &opt)
{
    FuzzResult res;
    const std::vector<std::string> protocols =
        opt.protocol.empty() ? protocolNames()
                             : std::vector<std::string>{opt.protocol};
    const std::vector<std::string> networks =
        opt.network.empty() ? std::vector<std::string>{"mesh", "xbar"}
                            : std::vector<std::string>{opt.network};

    std::string evidence;
    if (!opt.reproDir.empty()) {
        std::filesystem::create_directories(opt.reproDir);
        evidence = opt.reproDir + "/lacc_fuzz_current.trace";
    }

    Rng rng(opt.seed);
    for (std::uint32_t iter = 0; iter < opt.iters; ++iter) {
        const TraceWorkload trace = generateTrace(rng, opt, iter);
        for (const auto &p : protocols) {
            for (const auto &n : networks) {
                SystemConfig cfg = fuzzConfig(opt.cores);
                applyProtocolName(cfg, p);
                applyNetworkName(cfg, n);
                if (!opt.faults.empty())
                    applyFaultName(cfg, opt.faults);
                if (opt.faultRate >= 0.0)
                    cfg.faultRate = opt.faultRate;
                if (opt.faultSeedSet)
                    cfg.faultSeed = opt.faultSeed;
                if (opt.simThreads != 0) {
                    cfg.simThreads = opt.simThreads;
                    cfg.engineKind = opt.simThreads > 1
                                         ? EngineKind::Sharded
                                         : EngineKind::Serial;
                }
                ++res.runs;
                const auto viol =
                    checkTrace(trace, cfg, opt.stepwise, evidence);
                if (viol.empty())
                    continue;
                ++res.failures;
                const TraceWorkload min = shrinkTrace(
                    trace, cfg, opt.stepwise, evidence);
                auto min_viol =
                    checkTrace(min, cfg, opt.stepwise, evidence);
                if (min_viol.empty()) // shouldn't happen; be safe
                    min_viol = viol;

                std::string report =
                    vfmt("%s x %s, seed %llu iter %u:", p.c_str(),
                         n.c_str(),
                         static_cast<unsigned long long>(opt.seed),
                         iter);
                for (const auto &v : min_viol)
                    report += "\n  " + v;
                if (res.firstReport.empty())
                    res.firstReport = report;

                if (!opt.reproDir.empty()) {
                    const std::string path = vfmt(
                        "%s/repro_s%llu_i%u_%s_%s.trace",
                        opt.reproDir.c_str(),
                        static_cast<unsigned long long>(opt.seed),
                        iter, p.c_str(), n.c_str());
                    std::vector<std::string> comments = {
                        "minimized fuzz repro (" + p + " x " + n +
                        ")"};
                    for (const auto &v : min_viol)
                        comments.push_back("violation: " + v);
                    saveTrace(min, path, comments);
                    res.reproPaths.push_back(path);
                }
            }
        }
    }
    if (!evidence.empty()) {
        std::error_code ec;
        std::filesystem::remove(evidence, ec); // clean exit: no crash
    }
    return res;
}

} // namespace verify
} // namespace lacc
