/**
 * @file
 * Protocol-invariant library shared by the verification engines
 * (verify/fuzz.hh, verify/enumerate.hh) and callable from protocol
 * tests.
 *
 * The checks formalize the correctness conditions the directory
 * protocols must maintain in every quiescent state (directory
 * transactions are atomic in this simulator, so between accesses the
 * system *is* quiescent — there are no transient states to exclude):
 *
 *  - single-writer: an Exclusive directory entry has exactly one
 *    holder (the owner), holding exactly one E/M copy;
 *  - directory/L1 state consistency: Uncached entries have no
 *    holders, Shared entries have only S copies and no owner;
 *  - sharer-list/holder agreement: the protocol's SharerList count
 *    matches the ground-truth holder oracle, and tracked identities
 *    match exactly when not in ACKwise overflow;
 *  - holder oracle vs L1 residency: every tracked holder really has a
 *    copy, and every L1-resident line is tracked at its home
 *    (inclusion);
 *  - no stale reads: every S/E L1 copy is word-identical to the home
 *    L2 copy, and the final visible value of every written word (M
 *    copy > L2 copy > DRAM) equals the sequentially-consistent
 *    reference memory.
 *
 * Violations are returned as human-readable strings rather than
 * asserted, so the fuzzer can shrink failing traces and the
 * enumerator can report counterexample paths instead of aborting.
 */

#ifndef LACC_VERIFY_INVARIANTS_HH
#define LACC_VERIFY_INVARIANTS_HH

#include <string>
#include <vector>

namespace lacc {

class Multicore;

namespace verify {

/**
 * Check every protocol invariant over the full directory/L1 state of
 * @p m. @return one message per violation; empty means clean.
 */
std::vector<std::string> checkInvariants(Multicore &m);

/**
 * Check the final visible value of every word the reference memory
 * tracks: the unique Modified L1 copy if one exists, else the home L2
 * copy, else DRAM. Meaningful after a run (or any quiescent point);
 * @return one message per mismatching word.
 */
std::vector<std::string> checkFinalMemory(Multicore &m);

/**
 * checkInvariants + checkFinalMemory + the per-access functional
 * error counter, concatenated. The one-call entry point for the
 * verification engines.
 */
std::vector<std::string> checkAll(Multicore &m);

} // namespace verify
} // namespace lacc

#endif // LACC_VERIFY_INVARIANTS_HH
