/**
 * @file
 * Randomized litmus fuzzer: generate tiny sharing-heavy multi-core
 * traces, run them through every factory protocol (and a couple of
 * fabrics), and check every protocol invariant plus the
 * sequentially-consistent reference memory (verify/invariants.hh) —
 * both after the full timed run and under a stepwise replay that
 * checks invariants after every single access.
 *
 * Failures are shrunk with a ddmin-style one-op-at-a-time reduction
 * (lock acquire/release pairs are co-removed — an unmatched release
 * would fatal() out of the process) and written to disk as
 * TraceWorkload text repros with the violations appended as comments,
 * so a failure seeds the corpus in tests/litmus/.
 *
 * Everything is deterministic in (seed, iteration): re-running with a
 * failure's seed reproduces it exactly.
 */

#ifndef LACC_VERIFY_FUZZ_HH
#define LACC_VERIFY_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "workload/trace_file.hh"

namespace lacc {
namespace verify {

/** Knobs of one fuzzing campaign (CLI: bench/lacc_verify.cc). */
struct FuzzOptions
{
    std::uint64_t seed = 1;
    std::uint32_t iters = 25;     //!< traces to generate
    std::uint32_t cores = 4;      //!< cores per trace
    std::uint32_t opsPerCore = 24;
    /** Protocol factory key; empty = every factory protocol. */
    std::string protocol;
    /** Network factory key; empty = {"mesh", "xbar"}. */
    std::string network;
    /** Where to write shrunk repro traces; empty = don't write. */
    std::string reproDir;
    /**
     * Fault plan applied to every generated config (fault/plan.hh);
     * empty = fault-free. Under faults, a RunAbort (retry-budget
     * exhaustion, unrecoverable double-bit) counts as *detected* —
     * the campaign only fails on invariant/reference-memory
     * violations, i.e. silent corruption. Shrinking co-minimizes the
     * fault schedule: it first retries the violation fault-free (and
     * drops the plan when the bug reproduces without it), then halves
     * faultRate between op-removal passes while the failure persists.
     */
    std::string faults;
    double faultRate = -1.0;     //!< base fault rate; < 0 = plan default
    bool faultSeedSet = false;   //!< faultSeed holds a CLI value
    std::uint64_t faultSeed = 0; //!< fault-schedule seed override
    /** Also run the stepwise replay (invariants after every access). */
    bool stepwise = true;
    /**
     * Engine worker threads for the full timed runs; 0 = keep the
     * config default (serial). > 1 routes every generated trace
     * through the sharded execution engine — the invariants and the
     * reference memory then double as an engine-equivalence check.
     * (The stepwise replay drives testAccess directly and is engine-
     * independent.)
     */
    std::uint32_t simThreads = 0;
};

/** Outcome of a campaign. */
struct FuzzResult
{
    std::uint64_t runs = 0;     //!< trace x config executions
    std::uint64_t failures = 0; //!< executions with >= 1 violation
    std::vector<std::string> reproPaths; //!< repro files written
    std::string firstReport;    //!< rendered first failure (shrunk)
};

/** Run a campaign; deterministic in FuzzOptions. */
FuzzResult runFuzz(const FuzzOptions &opt);

/**
 * The sharing-biased small system configuration the fuzzer (and the
 * corpus replay test) runs traces under: tiny L1/L2 so evictions and
 * set conflicts happen within a few dozen ops, PCT/RAT thresholds low
 * enough that private/remote transitions are exercised, ACKwise p=2 so
 * pointer overflow is reachable with 3 sharers.
 */
SystemConfig fuzzConfig(std::uint32_t cores);

/**
 * Run @p w under @p cfg and return every violation found (empty =
 * clean): a full timed run checked with checkAll, and — with
 * @p stepwise — a round-robin replay on a fresh system that checks
 * every invariant after every individual access (catches transient
 * corruption the final state re-absorbs).
 *
 * @p evidence_path when non-empty, the trace is saved there *before*
 * running, so an uncatchable fatal()/panic() still leaves the failing
 * input on disk.
 */
std::vector<std::string> checkTrace(const TraceWorkload &w,
                                    const SystemConfig &cfg,
                                    bool stepwise,
                                    const std::string &evidence_path = "");

/**
 * Shrink a failing trace to a 1-minimal repro: repeatedly remove
 * single ops (lock pairs together) while the violation persists.
 */
TraceWorkload shrinkTrace(const TraceWorkload &w, const SystemConfig &cfg,
                          bool stepwise,
                          const std::string &evidence_path = "");

} // namespace verify
} // namespace lacc

#endif // LACC_VERIFY_FUZZ_HH
