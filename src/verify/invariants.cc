#include "verify/invariants.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "protocol/dir_entry.hh"
#include "sim/addr_map.hh"
#include "system/multicore.hh"
#include "system/tile.hh"

namespace lacc {
namespace verify {

namespace {

std::string
vfmt(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    return std::string(buf);
}

/** One core's L1 copies of a line (a core can hold both an I and a
 * D copy of the same line). */
struct Copies
{
    std::uint32_t count = 0;
    std::uint32_t exclusiveCount = 0; //!< copies in E or M
    L1Cache::Entry d, i;
};

Copies
copiesOf(Tile &tl, LineAddr line)
{
    Copies c;
    c.d = tl.l1d.find(line);
    c.i = tl.l1i.find(line);
    for (const auto &e : {c.d, c.i}) {
        if (!e)
            continue;
        ++c.count;
        if (e.meta().state == L1State::Exclusive ||
            e.meta().state == L1State::Modified)
            ++c.exclusiveCount;
    }
    return c;
}

/** Check one valid directory entry at home tile @p h. */
void
checkEntry(Multicore &m, CoreId h, L2Cache::Entry e,
           std::vector<std::string> &out)
{
    const L2Meta &meta = e.meta();
    const LineAddr line = e.tag();
    const unsigned long long ll = line;

    // Holder oracle vs L1 residency, and per-state copy rules.
    std::uint32_t exclusive_copies = 0;
    for (const CoreId s : meta.holders) {
        const Copies c = copiesOf(m.tile(s), line);
        if (c.count == 0)
            out.push_back(vfmt("line %llx home %u: holder %u has no"
                               " L1 copy", ll, h, s));
        exclusive_copies += c.exclusiveCount;
        switch (meta.dstate) {
          case DirState::Shared:
            if (c.exclusiveCount != 0)
                out.push_back(vfmt("line %llx home %u: dir Shared but"
                                   " holder %u has an E/M copy", ll,
                                   h, s));
            break;
          case DirState::Exclusive:
            if (s == meta.owner &&
                (c.count != 1 || c.exclusiveCount != 1))
                out.push_back(vfmt("line %llx home %u: owner %u must"
                                   " hold exactly one E/M copy (has"
                                   " %u copies, %u E/M)", ll, h, s,
                                   c.count, c.exclusiveCount));
            break;
          case DirState::Uncached:
            break; // the holder set itself is flagged below
        }

        // No stale reads: S and E copies must be word-identical to
        // the home L2 copy (an M copy is by definition newer).
        for (const auto &le : {c.d, c.i}) {
            if (!le || le.meta().state == L1State::Modified)
                continue;
            if (std::memcmp(le.words(), e.words(),
                            sizeof(std::uint64_t) *
                                e.wordsPerLine()) != 0)
                out.push_back(vfmt("line %llx home %u: core %u's %s"
                                   " copy differs from the L2 copy",
                                   ll, h, s,
                                   l1StateName(le.meta().state)));
        }
    }

    // Single-writer: at most one E/M copy across the entry's holders,
    // and only under an Exclusive directory state.
    if (exclusive_copies > 1)
        out.push_back(vfmt("line %llx home %u: %u E/M copies coexist",
                           ll, h, exclusive_copies));

    // Directory-state consistency.
    switch (meta.dstate) {
      case DirState::Uncached:
        if (meta.holders.size() != 0 || meta.owner != kInvalidCore)
            out.push_back(vfmt("line %llx home %u: Uncached with %u"
                               " holders (owner %d)", ll, h,
                               meta.holders.size(),
                               static_cast<int>(meta.owner)));
        break;
      case DirState::Shared:
        if (meta.holders.size() == 0)
            out.push_back(vfmt("line %llx home %u: Shared with no"
                               " holders", ll, h));
        if (meta.owner != kInvalidCore)
            out.push_back(vfmt("line %llx home %u: Shared with owner"
                               " %u", ll, h, meta.owner));
        break;
      case DirState::Exclusive:
        if (meta.owner == kInvalidCore ||
            !meta.holders.contains(meta.owner))
            out.push_back(vfmt("line %llx home %u: Exclusive but"
                               " owner %d is not a holder", ll, h,
                               static_cast<int>(meta.owner)));
        if (meta.holders.size() != 1)
            out.push_back(vfmt("line %llx home %u: Exclusive with %u"
                               " holders", ll, h,
                               meta.holders.size()));
        break;
    }

    // Sharer-list/holder agreement: counts always, identities when
    // the list still tracks them (a full-map list always does; an
    // ACKwise list only until pointer overflow).
    if (meta.sharers.count() != meta.holders.size())
        out.push_back(vfmt("line %llx home %u: sharer count %u !="
                           " holder count %u", ll, h,
                           meta.sharers.count(),
                           meta.holders.size()));
    bool tracked_ok = true;
    std::uint32_t tracked_n = 0;
    meta.sharers.forEachTracked([&](CoreId s) {
        ++tracked_n;
        tracked_ok = tracked_ok && meta.holders.contains(s);
    });
    if (!tracked_ok)
        out.push_back(vfmt("line %llx home %u: sharer list tracks a"
                           " non-holder", ll, h));
    else if (!meta.sharers.overflowed() &&
             tracked_n != meta.holders.size())
        out.push_back(vfmt("line %llx home %u: %u tracked sharers !="
                           " %u holders without overflow", ll, h,
                           tracked_n, meta.holders.size()));
}

} // namespace

std::vector<std::string>
checkInvariants(Multicore &m)
{
    std::vector<std::string> out;
    const std::uint32_t n = m.config().numCores;

    // Directory side: every valid entry of every home slice.
    for (std::uint32_t h = 0; h < n; ++h) {
        m.tile(static_cast<CoreId>(h)).l2.forEach([&](L2Cache::Entry e) {
            if (e.valid())
                checkEntry(m, static_cast<CoreId>(h), e, out);
        });
    }

    // L1 side (inclusion + oracle converse): every resident L1 line
    // must be tracked as a holder at its home slice.
    for (std::uint32_t c = 0; c < n; ++c) {
        Tile &tl = m.tile(static_cast<CoreId>(c));
        for (L1Cache *l1 : {&tl.l1d, &tl.l1i}) {
            const char *which = l1 == &tl.l1d ? "L1-D" : "L1-I";
            l1->forEach([&](L1Cache::Entry e) {
                if (!e.valid())
                    return;
                const LineAddr line = e.tag();
                const CoreId home = m.protocol().directory().homeOf(
                    line, static_cast<CoreId>(c));
                auto he = m.tile(home).l2.find(line);
                if (!he) {
                    out.push_back(vfmt("line %llx: core %u %s copy"
                                       " not present in home %u's L2"
                                       " (inclusion)",
                                       static_cast<unsigned long long>(
                                           line),
                                       c, which, home));
                    return;
                }
                if (!he.meta().holders.contains(
                        static_cast<CoreId>(c)))
                    out.push_back(vfmt("line %llx: core %u %s copy"
                                       " untracked at home %u",
                                       static_cast<unsigned long long>(
                                           line),
                                       c, which, home));
            });
        }
    }
    return out;
}

std::vector<std::string>
checkFinalMemory(Multicore &m)
{
    std::vector<std::string> out;
    const SystemConfig &cfg = m.config();
    const AddressMap addr(cfg);

    // Deterministic order for reporting and shrinking.
    std::vector<std::pair<Addr, std::uint64_t>> words;
    words.reserve(m.functionalMemory().trackedWords());
    m.functionalMemory().forEachWord([&](Addr wa, std::uint64_t v) {
        words.emplace_back(wa, v);
    });
    std::sort(words.begin(), words.end());

    std::vector<std::uint64_t> dram_line(cfg.wordsPerLine());
    for (const auto &[wa, expect] : words) {
        const LineAddr line = addr.lineOf(wa);
        const std::uint32_t w = addr.wordOf(wa);

        // Visible value chain: the unique M copy shadows the L2 copy,
        // which shadows DRAM. Instruction-class lines can be
        // replicated across cluster homes; every replica must agree.
        bool have_l2 = false;
        for (std::uint32_t h = 0; h < cfg.numCores; ++h) {
            auto e = m.tile(static_cast<CoreId>(h)).l2.find(line);
            if (!e)
                continue;
            have_l2 = true;
            std::uint64_t visible = e.words()[w];
            const char *where = "L2 copy";
            if (e.meta().dstate == DirState::Exclusive) {
                Tile &ot = m.tile(e.meta().owner);
                for (auto oc : {ot.l1d.find(line), ot.l1i.find(line)}) {
                    if (oc && oc.meta().state == L1State::Modified) {
                        visible = oc.words()[w];
                        where = "owner's M copy";
                    }
                }
            }
            if (visible != expect)
                out.push_back(vfmt(
                    "word %llx: %s at home %u has %llu, reference"
                    " memory has %llu",
                    static_cast<unsigned long long>(wa), where, h,
                    static_cast<unsigned long long>(visible),
                    static_cast<unsigned long long>(expect)));
        }
        if (!have_l2) {
            m.dram().readLine(line, dram_line.data());
            if (dram_line[w] != expect)
                out.push_back(vfmt(
                    "word %llx: DRAM has %llu, reference memory has"
                    " %llu",
                    static_cast<unsigned long long>(wa),
                    static_cast<unsigned long long>(dram_line[w]),
                    static_cast<unsigned long long>(expect)));
        }
    }
    return out;
}

std::vector<std::string>
checkAll(Multicore &m)
{
    std::vector<std::string> out = checkInvariants(m);
    const auto mem = checkFinalMemory(m);
    out.insert(out.end(), mem.begin(), mem.end());
    if (m.functionalErrors() > 0)
        out.push_back(vfmt("%llu functional read mismatches (see"
                           " warnings above)",
                           static_cast<unsigned long long>(
                               m.functionalErrors())));
    return out;
}

} // namespace verify
} // namespace lacc
