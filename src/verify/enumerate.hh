/**
 * @file
 * Exhaustive reachable-state enumeration for a bounded configuration
 * (2-4 cores, 1-2 lines): BFS over every possible next access from
 * every reachable protocol state, asserting every invariant
 * (verify/invariants.hh) in every state, with canonical-state
 * deduplication and a reproducible counterexample path on failure.
 *
 * States are reached by *replay*: the simulator has no state
 * snapshotting, so each BFS node is its access sequence from reset,
 * and a successor is explored by replaying the sequence plus one
 * event on a fresh Multicore (Multicore::testAccess). Directory
 * transactions are atomic in this simulator, so the per-access
 * granularity really does visit every reachable protocol state —
 * there are no transient interleavings below it.
 *
 * Canonicalization (what makes the search finite) deliberately
 * excludes pure-timing state — per-core clocks, per-line busyUntil,
 * LRU timestamps (the config uses direct-mapped L1s and never fills
 * an L2 set, so replacement is timing-independent) — and caps the
 * monotone utilization counters at their decision thresholds
 * (privateUtil at PCT, remoteUtil at RATmax): beyond the threshold
 * every comparison the protocol makes is saturated, so larger values
 * are future-equivalent. Line data words are also excluded (values
 * never drive protocol decisions; the fuzzer covers value movement).
 * Everything else — L1 states, directory states, owner, sharer list
 * incl. ACKwise overflow, holder sets, per-core classifier records,
 * R-NUCA page records — is part of the canonical state, stored in
 * full (no hashing), so deduplication can never merge genuinely
 * distinct states.
 */

#ifndef LACC_VERIFY_ENUMERATE_HH
#define LACC_VERIFY_ENUMERATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace lacc {
namespace verify {

/** Bounds of one enumeration (CLI: bench/lacc_verify.cc). */
struct EnumOptions
{
    std::uint32_t cores = 2;        //!< [2, 4]
    std::uint32_t lines = 2;        //!< [1, 2]
    std::string protocol = "lacc";  //!< factory key
    std::string network = "mesh";   //!< factory key
    /** Safety cap on distinct states (0 is invalid). */
    std::uint64_t maxStates = 500000;
};

/** Outcome of an enumeration. */
struct EnumResult
{
    std::uint64_t states = 0;      //!< distinct canonical states
    std::uint64_t transitions = 0; //!< edges explored
    /** True when the frontier drained below maxStates with no
     * violation: every reachable state was visited and checked. */
    bool exhaustive = false;
    std::vector<std::string> violations; //!< first bad state's report
    /** Global access sequence reaching the first bad state (one
     * "core <c> r|w|f <hex-addr>" line per access), replayable with
     * Multicore::testAccess. Empty when clean. */
    std::string counterexample;
};

/** Enumerate and check every reachable state; see file header. */
EnumResult enumerate(const EnumOptions &opt);

/**
 * The bounded configuration the enumerator explores: direct-mapped
 * 16-set L1s (the two lines are 16 lines apart — same set, so
 * evictions are reachable and replacement is deterministic), PCT =
 * RATmax = 2 so every classifier transition is a few accesses away,
 * ACKwise p=1 so pointer overflow is reachable with 2 sharers, one
 * cluster (unique instruction homes).
 */
SystemConfig enumConfig(std::uint32_t cores, const std::string &protocol,
                        const std::string &network);

} // namespace verify
} // namespace lacc

#endif // LACC_VERIFY_ENUMERATE_HH
