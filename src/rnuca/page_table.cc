#include "rnuca/page_table.hh"

namespace lacc {

PageTable::Result
PageTable::access(PageAddr page, CoreId core, bool is_ifetch)
{
    Result res;
    Record *rec = table_.find(page);
    if (rec == nullptr) {
        Record fresh;
        if (is_ifetch) {
            fresh.cls = PageClass::Instruction;
        } else {
            fresh.cls = PageClass::PrivateData;
            fresh.owner = core;
        }
        table_[page] = fresh;
        res.record = fresh;
        return res;
    }

    if (rec->cls == PageClass::PrivateData && !is_ifetch &&
        rec->owner != core) {
        // Second core touched a private page: re-classify shared and
        // tell the caller to flush the old home slice.
        res.rehomed = true;
        res.oldOwner = rec->owner;
        rec->cls = PageClass::SharedData;
        rec->owner = kInvalidCore;
    }
    res.record = *rec;
    return res;
}

const PageTable::Record *
PageTable::lookup(PageAddr page) const
{
    return table_.find(page);
}

std::size_t
PageTable::countClass(PageClass c) const
{
    std::size_t n = 0;
    table_.forEach([&](PageAddr, const Record &rec) {
        if (rec.cls == c)
            ++n;
    });
    return n;
}

} // namespace lacc
