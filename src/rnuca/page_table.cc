#include "rnuca/page_table.hh"

namespace lacc {

PageTable::Result
PageTable::access(PageAddr page, CoreId core, bool is_ifetch)
{
    Result res;
    auto it = table_.find(page);
    if (it == table_.end()) {
        Record rec;
        if (is_ifetch) {
            rec.cls = PageClass::Instruction;
        } else {
            rec.cls = PageClass::PrivateData;
            rec.owner = core;
        }
        table_.emplace(page, rec);
        res.record = rec;
        return res;
    }

    Record &rec = it->second;
    if (rec.cls == PageClass::PrivateData && !is_ifetch &&
        rec.owner != core) {
        // Second core touched a private page: re-classify shared and
        // tell the caller to flush the old home slice.
        res.rehomed = true;
        res.oldOwner = rec.owner;
        rec.cls = PageClass::SharedData;
        rec.owner = kInvalidCore;
    }
    res.record = rec;
    return res;
}

const PageTable::Record *
PageTable::lookup(PageAddr page) const
{
    auto it = table_.find(page);
    return it == table_.end() ? nullptr : &it->second;
}

std::size_t
PageTable::countClass(PageClass c) const
{
    std::size_t n = 0;
    for (const auto &[page, rec] : table_)
        if (rec.cls == c)
            ++n;
    return n;
}

} // namespace lacc
