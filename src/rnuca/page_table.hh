/**
 * @file
 * Reactive-NUCA page classification (Hardavellas et al., ISCA 2009),
 * as used by the paper's baseline system (§3.1).
 *
 * Data pages are classified at OS-page granularity on first touch:
 * a page first touched by core c is Private(c); when a second core
 * touches it, it is re-classified Shared (and the old home slice must
 * be flushed, modeling the OS shootdown R-NUCA performs). Pages that
 * are instruction-fetched are classified Instruction and replicated
 * per cluster with rotational interleaving.
 */

#ifndef LACC_RNUCA_PAGE_TABLE_HH
#define LACC_RNUCA_PAGE_TABLE_HH

#include <cstdint>

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace lacc {

/** R-NUCA classification of one OS page. */
enum class PageClass : std::uint8_t {
    PrivateData,  //!< accessed by a single core; homed at that core
    SharedData,   //!< accessed by multiple cores; hash-interleaved home
    Instruction,  //!< ifetched; replicated per cluster
};

/** Human-readable name for a PageClass. */
inline const char *
pageClassName(PageClass c)
{
    switch (c) {
      case PageClass::PrivateData: return "PrivateData";
      case PageClass::SharedData: return "SharedData";
      case PageClass::Instruction: return "Instruction";
      default: return "?";
    }
}

/** First-touch page classification table. */
class PageTable
{
  public:
    PageTable() = default;

    /**
     * @param expected_pages pre-sizes the classification map (e.g.
     *        the aggregate L2 footprint in pages) so steady-state
     *        first touches do not rehash it; the map still grows past
     *        the estimate if the workload touches more pages.
     */
    explicit PageTable(std::size_t expected_pages)
    {
        table_.reserve(expected_pages);
    }

    /** Classification record of one page. */
    struct Record
    {
        PageClass cls = PageClass::PrivateData;
        CoreId owner = kInvalidCore; //!< valid for PrivateData
    };

    /** Outcome of a classification lookup. */
    struct Result
    {
        Record record;
        /**
         * True when this access re-classified the page from
         * PrivateData to SharedData; the caller must flush the page's
         * lines from the old home slice (Record::owner of the previous
         * classification, reported in oldOwner).
         */
        bool rehomed = false;
        CoreId oldOwner = kInvalidCore;
    };

    /**
     * Classify (and possibly re-classify) the page for an access.
     *
     * @param page      page address (byte address >> log2(pageSize))
     * @param core      requesting core
     * @param is_ifetch instruction fetch?
     */
    Result access(PageAddr page, CoreId core, bool is_ifetch);

    /** @return current record; Private(requester-unknown) if untouched. */
    const Record *lookup(PageAddr page) const;

    /** Number of classified pages (test helper). */
    std::size_t size() const { return table_.size(); }

    /** Count pages currently in a given class (test helper). */
    std::size_t countClass(PageClass c) const;

  private:
    // Flat open-addressing map (sim/flat_map.hh): consulted on every
    // directory transaction (access + homeOf lookup).
    FlatAddrMap<Record> table_;
};

} // namespace lacc

#endif // LACC_RNUCA_PAGE_TABLE_HH
