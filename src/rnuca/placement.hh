/**
 * @file
 * R-NUCA home-slice placement (§3.1).
 *
 * - PrivateData pages live at the owner core's local L2 slice.
 * - SharedData lines are address-hash interleaved across all slices.
 * - Instruction lines are replicated once per cluster of
 *   `clusterSize` cores using rotational interleaving: within its
 *   cluster, a line's slice is chosen by (line + cluster rotation) so
 *   replicas of consecutive lines spread across the cluster members.
 */

#ifndef LACC_RNUCA_PLACEMENT_HH
#define LACC_RNUCA_PLACEMENT_HH

#include <cstdint>

#include "rnuca/page_table.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace lacc {

/** Maps (line, page class, requester) to the home L2 slice. */
class Placement
{
  public:
    explicit Placement(const SystemConfig &cfg)
        : numCores_(cfg.numCores), clusterSize_(cfg.clusterSize),
          enabled_(cfg.rnucaEnabled)
    {}

    /**
     * Home slice of a line for a given requester.
     *
     * @param line      line address
     * @param rec       the page's R-NUCA classification
     * @param requester the requesting core (determines the cluster of
     *                  an Instruction line and the owner of a
     *                  PrivateData page whose record predates it)
     */
    CoreId
    home(LineAddr line, const PageTable::Record &rec,
         CoreId requester) const
    {
        if (!enabled_)
            return sharedHome(line); // static-NUCA ablation
        switch (rec.cls) {
          case PageClass::PrivateData:
            return rec.owner != kInvalidCore ? rec.owner : requester;
          case PageClass::SharedData:
            return sharedHome(line);
          case PageClass::Instruction:
            return instructionHome(line, requester);
        }
        return requester;
    }

    /** @return false when running the static-NUCA ablation. */
    bool enabled() const { return enabled_; }

    /** Hash-interleaved home of a shared line. */
    CoreId
    sharedHome(LineAddr line) const
    {
        // Low line bits give round-robin interleaving of consecutive
        // lines across slices, as in Graphite/R-NUCA.
        return static_cast<CoreId>(line % numCores_);
    }

    /**
     * Replicated instruction home within the requester's cluster,
     * rotationally interleaved so different clusters place the same
     * line at different members.
     */
    CoreId
    instructionHome(LineAddr line, CoreId requester) const
    {
        const std::uint32_t cluster = requester / clusterSize_;
        const std::uint32_t member = static_cast<std::uint32_t>(
            (line + cluster) % clusterSize_);
        return static_cast<CoreId>(cluster * clusterSize_ + member);
    }

    /** Cluster index of a core. */
    std::uint32_t clusterOf(CoreId core) const
    {
        return core / clusterSize_;
    }

  private:
    std::uint32_t numCores_;
    std::uint32_t clusterSize_;
    bool enabled_;
};

} // namespace lacc

#endif // LACC_RNUCA_PLACEMENT_HH
