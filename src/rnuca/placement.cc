#include "rnuca/placement.hh"

// Placement is header-only; translation unit anchors the build.
