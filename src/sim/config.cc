#include "sim/config.hh"

#include <sstream>

#include "sim/log.hh"

namespace lacc {

const char *
classifierKindName(ClassifierKind k)
{
    switch (k) {
      case ClassifierKind::Complete: return "Complete";
      case ClassifierKind::Limited: return "Limited";
      case ClassifierKind::Timestamp: return "Timestamp";
      case ClassifierKind::AlwaysPrivate: return "AlwaysPrivate";
      default: return "?";
    }
}

const char *
protocolKindName(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::Adaptive: return "Adapt2-way";
      case ProtocolKind::AdaptOneWay: return "Adapt1-way";
      default: return "?";
    }
}

const char *
directoryKindName(DirectoryKind k)
{
    switch (k) {
      case DirectoryKind::Ackwise: return "ACKwise";
      case DirectoryKind::FullMap: return "FullMap";
      default: return "?";
    }
}

const char *
networkKindName(NetworkKind k)
{
    switch (k) {
      case NetworkKind::Mesh: return "Mesh";
      case NetworkKind::Torus: return "Torus";
      case NetworkKind::Ring: return "Ring";
      case NetworkKind::Crossbar: return "Crossbar";
      default: return "?";
    }
}

const char *
engineKindName(EngineKind k)
{
    switch (k) {
      case EngineKind::Serial: return "serial";
      case EngineKind::Sharded: return "sharded";
      default: return "?";
    }
}

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::None: return "none";
      case FaultKind::Links: return "links";
      case FaultKind::Soft: return "soft";
      case FaultKind::Storm: return "storm";
      default: return "?";
    }
}

std::uint32_t
SystemConfig::ratForLevel(std::uint32_t level) const
{
    if (nRatLevels <= 1 || level == 0)
        return pct;
    if (level >= nRatLevels)
        level = nRatLevels - 1;
    // Additive steps from PCT to RATmax, (nRatLevels - 1) steps total.
    const std::uint32_t span = ratMax > pct ? ratMax - pct : 0;
    return pct + span * level / (nRatLevels - 1);
}

void
SystemConfig::validate() const
{
    if (numCores == 0 || meshWidth == 0 || numCores % meshWidth != 0)
        fatal("numCores (%u) must be a positive multiple of meshWidth (%u)",
              numCores, meshWidth);
    if (lineSize == 0 || (lineSize & (lineSize - 1)) != 0)
        fatal("lineSize (%u) must be a power of two", lineSize);
    if (pageSize < lineSize || (pageSize & (pageSize - 1)) != 0)
        fatal("pageSize (%u) must be a power of two >= lineSize", pageSize);
    if (l1dAssoc == 0 || l1iAssoc == 0 || l2Assoc == 0)
        fatal("cache associativity must be positive");
    if (l1dSets() == 0 || l1iSets() == 0 || l2Sets() == 0)
        fatal("cache geometry yields zero sets");
    if (pct == 0)
        fatal("PCT must be >= 1");
    if (ratMax < pct)
        fatal("RATmax (%u) must be >= PCT (%u)", ratMax, pct);
    if (nRatLevels == 0)
        fatal("nRATlevels must be >= 1");
    if (classifierKind == ClassifierKind::Limited && classifierK == 0)
        fatal("Limited classifier needs k >= 1");
    if (directoryKind == DirectoryKind::Ackwise && ackwisePointers == 0)
        fatal("ACKwise needs at least one hardware pointer");
    if (numMemControllers == 0 || numMemControllers > numCores)
        fatal("numMemControllers (%u) must be in [1, numCores]",
              numMemControllers);
    if (clusterSize == 0 || numCores % clusterSize != 0)
        fatal("clusterSize (%u) must divide numCores (%u)", clusterSize,
              numCores);
    if (simThreads == 0 || simThreads > 1024)
        fatal("simThreads (%u) must be in [1, 1024]", simThreads);
    if (!(faultRate >= 0.0) || faultRate > 1.0)
        fatal("faultRate (%g) must be in [0, 1]", faultRate);
}

std::string
SystemConfig::summary() const
{
    std::ostringstream os;
    os << numCores << " cores, " << directoryKindName(directoryKind);
    if (directoryKind == DirectoryKind::Ackwise)
        os << ackwisePointers;
    os << ", " << protocolKindName(protocolKind) << ", PCT=" << pct
       << ", classifier=" << classifierKindName(classifierKind);
    if (classifierKind == ClassifierKind::Limited)
        os << classifierK;
    if (classifierKind != ClassifierKind::Timestamp &&
        classifierKind != ClassifierKind::AlwaysPrivate) {
        os << ", RATmax=" << ratMax << ", nRATlevels=" << nRatLevels;
    }
    // The default fabric is implicit so pre-existing banners stay
    // byte-identical; non-mesh runs announce their topology. Same for
    // the execution engine: only non-serial runs announce it.
    if (networkKind != NetworkKind::Mesh)
        os << ", net=" << networkKindName(networkKind);
    if (engineKind != EngineKind::Serial)
        os << ", engine=" << engineKindName(engineKind) << "x"
           << simThreads;
    // Fault-free runs keep the pre-fault banner byte-identical.
    if (faultKind != FaultKind::None)
        os << ", faults=" << faultKindName(faultKind) << "@"
           << faultRate;
    return os.str();
}

} // namespace lacc
