#include "sim/stats.hh"

#include <algorithm>

namespace lacc {

LatencyBreakdown &
LatencyBreakdown::operator+=(const LatencyBreakdown &o)
{
    compute += o.compute;
    l1ToL2 += o.l1ToL2;
    l2Waiting += o.l2Waiting;
    l2Sharers += o.l2Sharers;
    offChip += o.offChip;
    synchronization += o.synchronization;
    return *this;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    l1i += o.l1i;
    l1d += o.l1d;
    l2 += o.l2;
    directory += o.directory;
    router += o.router;
    link += o.link;
    return *this;
}

std::uint64_t
MissBreakdown::total() const
{
    std::uint64_t sum = 0;
    for (auto c : counts)
        sum += c;
    return sum;
}

MissBreakdown &
MissBreakdown::operator+=(const MissBreakdown &o)
{
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += o.counts[i];
    return *this;
}

void
UtilizationHistogram::record(std::uint64_t utilization)
{
    const auto u = std::min<std::uint64_t>(utilization, kMaxUtil);
    ++counts[u];
}

std::uint64_t
UtilizationHistogram::total() const
{
    std::uint64_t sum = 0;
    for (auto c : counts)
        sum += c;
    return sum;
}

double
UtilizationHistogram::bucketFraction(std::uint32_t bucket) const
{
    const auto t = total();
    if (t == 0)
        return 0.0;
    // Paper buckets: {1}, {2,3}, {4,5}, {6,7}, {>=8}; utilization 0
    // (never used before removal) is folded into the first bucket.
    std::uint64_t n = 0;
    switch (bucket) {
      case 0:
        n = counts[0] + counts[1];
        break;
      case 1:
        n = counts[2] + counts[3];
        break;
      case 2:
        n = counts[4] + counts[5];
        break;
      case 3:
        n = counts[6] + counts[7];
        break;
      default:
        for (std::uint32_t u = 8; u <= kMaxUtil; ++u)
            n += counts[u];
        break;
    }
    return static_cast<double>(n) / static_cast<double>(t);
}

double
UtilizationHistogram::fractionBelow(std::uint64_t u) const
{
    const auto t = total();
    if (t == 0)
        return 0.0;
    std::uint64_t n = 0;
    for (std::uint64_t i = 0; i < u && i <= kMaxUtil; ++i)
        n += counts[i];
    return static_cast<double>(n) / static_cast<double>(t);
}

UtilizationHistogram &
UtilizationHistogram::operator+=(const UtilizationHistogram &o)
{
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += o.counts[i];
    return *this;
}

CacheStats &
CacheStats::operator+=(const CacheStats &o)
{
    loads += o.loads;
    stores += o.stores;
    loadMisses += o.loadMisses;
    storeMisses += o.storeMisses;
    evictions += o.evictions;
    invalidationsRecv += o.invalidationsRecv;
    fills += o.fills;
    return *this;
}

NetworkStats &
NetworkStats::operator+=(const NetworkStats &o)
{
    unicasts += o.unicasts;
    broadcasts += o.broadcasts;
    flitsInjected += o.flitsInjected;
    flitHops += o.flitHops;
    contentionCycles += o.contentionCycles;
    return *this;
}

FaultStats &
FaultStats::operator+=(const FaultStats &o)
{
    linkDrops += o.linkDrops;
    linkCorruptions += o.linkCorruptions;
    retransmits += o.retransmits;
    nacks += o.nacks;
    softErrors += o.softErrors;
    eccCorrected += o.eccCorrected;
    eccDetected += o.eccDetected;
    scrubs += o.scrubs;
    silentCorruptions += o.silentCorruptions;
    return *this;
}

ProtocolStats &
ProtocolStats::operator+=(const ProtocolStats &o)
{
    privateReadGrants += o.privateReadGrants;
    privateWriteGrants += o.privateWriteGrants;
    upgradeGrants += o.upgradeGrants;
    remoteReads += o.remoteReads;
    remoteWrites += o.remoteWrites;
    promotions += o.promotions;
    demotions += o.demotions;
    invalidationsSent += o.invalidationsSent;
    broadcastInvals += o.broadcastInvals;
    syncWritebacks += o.syncWritebacks;
    dirtyWritebacks += o.dirtyWritebacks;
    l2Evictions += o.l2Evictions;
    rehomeFlushes += o.rehomeFlushes;
    dramFetches += o.dramFetches;
    dramWritebacks += o.dramWritebacks;
    return *this;
}

CoreStats &
CoreStats::operator+=(const CoreStats &o)
{
    instructions += o.instructions;
    memReads += o.memReads;
    memWrites += o.memWrites;
    ifetches += o.ifetches;
    finishTime = std::max(finishTime, o.finishTime);
    latency += o.latency;
    misses += o.misses;
    l1i += o.l1i;
    l1d += o.l1d;
    return *this;
}

Cycle
SystemStats::completionTime() const
{
    Cycle t = 0;
    for (const auto &c : perCore)
        t = std::max(t, c.finishTime);
    return t;
}

LatencyBreakdown
SystemStats::totalLatency() const
{
    LatencyBreakdown b;
    for (const auto &c : perCore)
        b += c.latency;
    return b;
}

MissBreakdown
SystemStats::totalMisses() const
{
    MissBreakdown m;
    for (const auto &c : perCore)
        m += c.misses;
    return m;
}

std::uint64_t
SystemStats::totalL1dAccesses() const
{
    std::uint64_t n = 0;
    for (const auto &c : perCore)
        n += c.l1d.accesses();
    return n;
}

double
SystemStats::l1dMissRate() const
{
    const auto a = totalL1dAccesses();
    if (a == 0)
        return 0.0;
    return static_cast<double>(totalMisses().total()) /
           static_cast<double>(a);
}

} // namespace lacc
