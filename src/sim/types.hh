/**
 * @file
 * Fundamental scalar types shared across the lacc simulator.
 *
 * The paper models a 64-core tiled multicore with 48-bit physical
 * addresses and 64-byte cache lines (Table 1). All timing is expressed
 * in core cycles at 1 GHz, so 1 cycle == 1 ns.
 */

#ifndef LACC_SIM_TYPES_HH
#define LACC_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace lacc {

/** Byte-granularity physical address (48 bits used). */
using Addr = std::uint64_t;

/** Cache-line-granularity address: Addr >> log2(lineSize). */
using LineAddr = std::uint64_t;

/** Page-granularity address: Addr >> log2(pageSize). */
using PageAddr = std::uint64_t;

/** Simulated time in core cycles (1 GHz => 1 cycle == 1 ns). */
using Cycle = std::uint64_t;

/** Tile / core identifier; tiles are numbered row-major on the mesh. */
using CoreId = std::uint16_t;

/** Sentinel for "no core". */
constexpr CoreId kInvalidCore = std::numeric_limits<CoreId>::max();

/** Sentinel for "no address". */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel cycle value used for "never" / unset timestamps. */
constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/**
 * Mixes line-address bits so interleaved homes do not alias L2 sets
 * (half of the MurmurHash3 finalizer). This exact function defines
 * the hashed L2 set index, so it is part of the simulated behavior —
 * never change it without regenerating the determinism goldens. For
 * hash *tables*, whose bucket choice is not modeled behavior, use
 * mixAddrBits/MixAddrHash below instead: the single-multiply variant
 * leaves the low bits of small aligned keys (page addresses) heavily
 * correlated.
 */
inline std::uint64_t
mixLineAddr(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

/**
 * Full MurmurHash3 64-bit finalizer: avalanches every input bit into
 * every output bit, including the low bits that power-of-two hash
 * tables mask on. Used by the address-keyed maps on the simulation
 * hot path (never for modeled indices — see mixLineAddr).
 */
inline std::uint64_t
mixAddrBits(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * unordered_map hasher for Addr/LineAddr/PageAddr keys, built on
 * mixAddrBits (the standard-library default hashes integers to
 * themselves, which clusters buckets for aligned addresses).
 */
struct MixAddrHash
{
    std::size_t
    operator()(std::uint64_t x) const noexcept
    {
        return static_cast<std::size_t>(mixAddrBits(x));
    }
};

/**
 * Locality mode of a core with respect to one cache line (Section 3.2).
 *
 * A Private sharer is handed full line copies; a Remote sharer's L1
 * misses are serviced as single-word accesses at the shared L2 home.
 */
enum class Mode : std::uint8_t { Private, Remote };

/** Kind of memory operation issued by a core. */
enum class MemOpType : std::uint8_t {
    Read,        //!< data load
    Write,       //!< data store
    IFetch,      //!< instruction fetch (L1-I path, read-only data)
};

/**
 * Miss taxonomy of Section 4.4. Word misses are misses to a line whose
 * previous interaction by this core was a remote word access.
 */
enum class MissType : std::uint8_t {
    Cold,
    Capacity,
    Upgrade,
    Sharing,
    Word,
    NumTypes,
};

/** Human-readable name for a MissType. */
const char *missTypeName(MissType t);

/** Human-readable name for a Mode. */
inline const char *
modeName(Mode m)
{
    return m == Mode::Private ? "Private" : "Remote";
}

inline const char *
missTypeName(MissType t)
{
    switch (t) {
      case MissType::Cold: return "Cold";
      case MissType::Capacity: return "Capacity";
      case MissType::Upgrade: return "Upgrade";
      case MissType::Sharing: return "Sharing";
      case MissType::Word: return "Word";
      default: return "?";
    }
}

} // namespace lacc

#endif // LACC_SIM_TYPES_HH
