/**
 * @file
 * Deterministic xoshiro256** pseudo-random generator.
 *
 * Workload generators and tests must be reproducible run-to-run and
 * platform-to-platform, so we avoid std::mt19937's distribution
 * differences and use a small, fully specified generator.
 *
 * Thread-safety: Rng is a plain value type with no global state; each
 * instance is independent. The parallel sweep runner
 * (harness/runner.hh) relies on this — every simulation owns its own
 * seeded instances, so concurrent runs never share an RNG stream.
 */

#ifndef LACC_SIM_RNG_HH
#define LACC_SIM_RNG_HH

#include <cstdint>

namespace lacc {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a seed; any seed (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** @return next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** @return geometric-ish burst length in [1, maxLen] with mean ~mean. */
    std::uint64_t
    burstLength(double mean, std::uint64_t max_len)
    {
        if (mean <= 1.0)
            return 1;
        std::uint64_t len = 1;
        const double p_continue = 1.0 - 1.0 / mean;
        while (len < max_len && chance(p_continue))
            ++len;
        return len;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace lacc

#endif // LACC_SIM_RNG_HH
