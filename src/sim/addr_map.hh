/**
 * @file
 * Address geometry shared by the core model and the protocol layer:
 * line / page / word extraction for a given SystemConfig. Kept as a
 * tiny value type so both system/Multicore (ifetch walker) and
 * protocol/ controllers agree on the mapping without referencing each
 * other.
 */

#ifndef LACC_SIM_ADDR_MAP_HH
#define LACC_SIM_ADDR_MAP_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/types.hh"

namespace lacc {

/** log2 for exact powers of two (validated by SystemConfig). */
inline std::uint32_t
log2Exact(std::uint32_t v)
{
    std::uint32_t b = 0;
    while ((1u << b) < v)
        ++b;
    return b;
}

/** Line/page/word address extraction for one configuration. */
struct AddressMap
{
    std::uint32_t lineBits = 0;
    std::uint32_t pageBits = 0;
    std::uint32_t wordsPerLine = 0;

    AddressMap() = default;
    explicit AddressMap(const SystemConfig &cfg)
        : lineBits(log2Exact(cfg.lineSize)),
          pageBits(log2Exact(cfg.pageSize)),
          wordsPerLine(cfg.wordsPerLine())
    {}

    LineAddr lineOf(Addr a) const { return a >> lineBits; }
    PageAddr pageOf(Addr a) const { return a >> pageBits; }
    PageAddr pageOfLine(LineAddr l) const
    {
        return l >> (pageBits - lineBits);
    }
    /** 64-bit word index within the line. */
    std::uint32_t
    wordOf(Addr a) const
    {
        return static_cast<std::uint32_t>((a >> 3) &
                                          (wordsPerLine - 1));
    }
    /** First line of a page. */
    LineAddr
    firstLineOf(PageAddr page) const
    {
        return page << (pageBits - lineBits);
    }
    /** Lines per page. */
    std::uint32_t
    linesPerPage() const
    {
        return 1u << (pageBits - lineBits);
    }
};

} // namespace lacc

#endif // LACC_SIM_ADDR_MAP_HH
