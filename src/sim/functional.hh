/**
 * @file
 * Functional reference memory (word granularity). The protocol layer
 * moves real data values through L1 copies, remote word accesses,
 * write-backs, and DRAM; this class provides the generator for fresh
 * store values and an optional golden copy every load is checked
 * against (mirroring Graphite's functionally-correct memory system,
 * §4.1). Owned by Multicore; handed to the protocol through the
 * ProtocolContext.
 *
 * Threading: store values are generated from per-core counters, so
 * the value a store produces depends only on (core, store index) and
 * never on cross-core execution order — a requirement for the sharded
 * execution engine, where independent cores commit concurrently. The
 * reference map itself is guarded by a mutex that is only ever taken
 * when checking is enabled; benches run with checks off and pay
 * nothing.
 */

#ifndef LACC_SIM_FUNCTIONAL_HH
#define LACC_SIM_FUNCTIONAL_HH

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace lacc {

/** Reference memory + store-value generator for functional checking. */
class FunctionalMemory
{
  public:
    /**
     * Enable/disable read checking (default on; benches disable it
     * for speed — data still moves through the protocol either way).
     */
    void setChecks(bool on) { checks_ = on; }
    bool checksEnabled() const { return checks_; }

    /** Size the per-core value generators (Multicore calls this). */
    void
    setCores(std::uint32_t n)
    {
        if (counters_.size() < n)
            counters_.resize(n, 0);
    }

    /** The 64-bit-word address backing a byte address. */
    static constexpr Addr
    wordAddr(Addr addr)
    {
        return addr & ~Addr{7};
    }

    /**
     * Pre-size the reference map for a workload touching roughly
     * @p expected_words distinct words, so big traces do not rehash
     * the map over and over as the footprint is discovered. No-op
     * when checking is disabled (the map stays empty then).
     */
    void
    reserveFootprint(std::size_t expected_words)
    {
        if (checks_)
            mem_.reserve(expected_words);
    }

    /**
     * A fresh store value for a store by core @p c: globally unique
     * (core id in the low bits) and a pure function of the core's own
     * store count, independent of other cores' progress.
     */
    std::uint64_t
    nextValue(CoreId c)
    {
        if (c >= counters_.size())
            counters_.resize(static_cast<std::size_t>(c) + 1, 0);
        return (++counters_[c] << 12) | (c & 0xfff);
    }

    /** Record a store's value in the reference memory. */
    void
    write(Addr addr, std::uint64_t v)
    {
        if (!checks_)
            return;
        std::lock_guard<std::mutex> g(mu_);
        mem_[wordAddr(addr)] = v;
    }

    /** Check a load's value against the reference memory. */
    void
    checkRead(Addr addr, std::uint64_t got)
    {
        if (!checks_)
            return;
        std::lock_guard<std::mutex> g(mu_);
        const auto it = mem_.find(wordAddr(addr));
        const std::uint64_t expect = it == mem_.end() ? 0 : it->second;
        if (got != expect) {
            ++errors_;
            if (errors_ <= 10) {
                warn("functional mismatch at %llx: got %llu expect"
                     " %llu",
                     static_cast<unsigned long long>(addr),
                     static_cast<unsigned long long>(got),
                     static_cast<unsigned long long>(expect));
            }
        }
    }

    /** Mismatches observed (must be 0 after a run). */
    std::uint64_t errors() const { return errors_; }

    /**
     * Look up the reference value of the word backing @p addr.
     * @return false when the word was never written (reads of such
     * words are checked against 0). Used by the verification layer's
     * final-memory oracle (verify/invariants.hh).
     */
    bool
    lookup(Addr addr, std::uint64_t &out) const
    {
        const auto it = mem_.find(wordAddr(addr));
        if (it == mem_.end())
            return false;
        out = it->second;
        return true;
    }

    /** Number of distinct words the reference memory tracks. */
    std::size_t trackedWords() const { return mem_.size(); }

    /**
     * Apply @p fn(wordAddr, value) to every tracked reference word.
     * Iteration order is unspecified; callers that need determinism
     * (the verification oracle) must sort what they collect.
     */
    template <typename F>
    void
    forEachWord(F &&fn) const
    {
        for (const auto &[wa, v] : mem_)
            fn(wa, v);
    }

  private:
    bool checks_ = true;
    std::uint64_t errors_ = 0;
    std::vector<std::uint64_t> counters_;
    std::mutex mu_;
    std::unordered_map<Addr, std::uint64_t, MixAddrHash> mem_;
};

} // namespace lacc

#endif // LACC_SIM_FUNCTIONAL_HH
