/**
 * @file
 * Shared CLI-override plumbing: both CLIs (bench/lacc_bench.cc,
 * bench/lacc_verify.cc) accept --protocol/--network/--sim-threads
 * overrides that rewrite SystemConfigs built elsewhere (experiment
 * definitions, fuzz configs). The validation, application, and
 * "you are overriding a deliberate sweep" diagnostics live here once.
 */

#ifndef LACC_SIM_OVERRIDES_HH
#define LACC_SIM_OVERRIDES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lacc {

struct SystemConfig;

/** CLI-sourced config overrides; default-constructed = none. */
struct ConfigOverrides
{
    std::string protocol; //!< coherence protocol name; empty = keep
    std::string network;  //!< interconnect topology name; empty = keep
    std::string faults;   //!< fault-plan name; empty = keep
    double faultRate = -1.0;       //!< base fault rate; < 0 = keep
    bool faultSeedSet = false;     //!< faultSeed holds a --fault-seed
    std::uint64_t faultSeed = 0;   //!< fault-schedule seed override
    /**
     * Intra-simulation worker threads; 0 = keep the config's engine.
     * A value > 1 selects the sharded engine, 1 forces serial —
     * either way the results are bit-identical (engines trade
     * wall-clock, never statistics), so unlike protocol/network this
     * override never distorts a sweep.
     */
    std::uint32_t simThreads = 0;

    /** Any override set? */
    bool
    any() const
    {
        return !protocol.empty() || !network.empty() ||
               simThreads != 0 || !faults.empty() || faultRate >= 0.0 ||
               faultSeedSet;
    }

    /**
     * Validate the names against their factories; unknown names print
     * the one-line "unknown X (valid: ...)" diagnostic to stderr and
     * return false (CLIs exit 2).
     */
    bool validateOrReport() const;

    /** Rewrite @p cfg (fatal() on unknown names — validate first). */
    void apply(SystemConfig &cfg) const;

    /**
     * A --protocol/--network override rewrites job configs but not
     * their labels: an experiment that deliberately sweeps protocols
     * or topologies would print rows whose label names one variant
     * and whose numbers came from another. Warn loudly when any of
     * @p cfgs selects something the override replaces. (simThreads is
     * exempt: engines do not change results.)
     */
    void warnIfOverridingSweep(
        const std::vector<const SystemConfig *> &cfgs) const;
};

/**
 * Total-thread budget for a sweep: with @p jobs concurrent runs each
 * using @p sim_threads workers (0/1 = serial), cap the *job* count so
 * jobs x max(sim_threads, 1) stays within @p hw_budget threads.
 * @return the clamped job count (always >= 1); the caller warns when
 * it differs from @p jobs.
 */
unsigned clampJobsToBudget(unsigned jobs, std::uint32_t sim_threads,
                           unsigned hw_budget);

} // namespace lacc

#endif // LACC_SIM_OVERRIDES_HH
