/**
 * @file
 * Structured run-abort exception for recoverable whole-run failures.
 *
 * panic()/fatal() (sim/log.hh) terminate the process — right for
 * internal bugs and bad user configuration, wrong for conditions the
 * bench harness must survive per run: a fault plan exhausting its
 * retransmit budget, an uncorrectable ECC strike, or the sweep
 * watchdog firing. Those paths throw RunAbort instead; the sweep
 * runner (harness/runner.cc) catches it and records the run as
 * "failed" with the reason, so one doomed cell never kills a sweep.
 * Outside the harness the exception propagates uncaught and
 * std::terminate gives panic-like behavior (nothing hangs silently).
 */

#ifndef LACC_SIM_ABORT_HH
#define LACC_SIM_ABORT_HH

#include <stdexcept>
#include <string>

namespace lacc {

/** Why a run was aborted (recorded in BENCH_*.json failure records). */
enum class AbortKind : std::uint8_t {
    Timeout,    //!< the per-run watchdog deadline expired
    FaultFatal, //!< a detected-but-unrecoverable injected fault
};

/** A whole-run failure the harness records instead of dying on. */
class RunAbort : public std::runtime_error
{
  public:
    RunAbort(AbortKind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {}

    AbortKind kind() const { return kind_; }

    /** Short machine-readable tag for JSON ("timeout" / "fault"). */
    const char *
    tag() const
    {
        return kind_ == AbortKind::Timeout ? "timeout" : "fault";
    }

  private:
    AbortKind kind_;
};

} // namespace lacc

#endif // LACC_SIM_ABORT_HH
