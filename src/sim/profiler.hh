/**
 * @file
 * Lightweight scoped-cycle subsystem profiler.
 *
 * A handful of fixed buckets (workload generation, cache arrays,
 * protocol logic, interconnect, DRAM) are instrumented at their entry
 * points with prof::Scope guards. Attribution is *exclusive*: while a
 * nested scope is open, wall time is charged to the innermost bucket
 * only, so the bucket shares of a run sum to (at most) the run's wall
 * time and "protocol" does not silently absorb the network and DRAM
 * calls it makes.
 *
 * Cost model: the profiler is disabled by default and a disabled
 * Scope is one relaxed atomic load — cheap enough to leave compiled
 * into the hot path permanently (the bench acceptance bar is <= 2%
 * overhead when disabled). When enabled (lacc_bench --profile), each
 * scope boundary takes one steady_clock read plus thread-local
 * bookkeeping; results are per-thread and merged on demand, so sweep
 * workers and the sharded engine's pool need no synchronization on
 * the hot path.
 *
 * Intended use: run an experiment with --profile, read the per-bucket
 * share table (or the "profile" object in BENCH_*.json), pick the
 * biggest bucket, optimize, re-run — docs/BENCHMARKS.md shows the
 * output format.
 */

#ifndef LACC_SIM_PROFILER_HH
#define LACC_SIM_PROFILER_HH

#include <array>
#include <atomic>
#include <cstdint>

namespace lacc {
namespace prof {

/** Subsystem buckets. Keep bucketName() in sync. */
enum Bucket : std::uint8_t {
    Workload = 0, //!< synthetic-workload op generation
    Cache,        //!< cache-array lookup/fill/victim selection
    Protocol,     //!< L1/directory controller logic
    Network,      //!< interconnect unicast/broadcast
    Dram,         //!< DRAM timing/data access
    kNumBuckets
};

/** Stable lowercase name of a bucket (table + JSON key). */
const char *bucketName(Bucket b);

/** Merged per-bucket totals across all threads since the last reset(). */
struct Snapshot
{
    std::array<std::uint64_t, kNumBuckets> ns{};    //!< exclusive time
    std::array<std::uint64_t, kNumBuckets> calls{}; //!< scope entries

    /** Sum of the exclusive bucket times. */
    std::uint64_t
    totalNs() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t v : ns)
            t += v;
        return t;
    }
};

namespace detail {
extern std::atomic<bool> g_enabled;
/** Out-of-line slow path; returns false if the scope stack is full. */
bool enter(Bucket b);
void exit();
} // namespace detail

/** Whether scopes are currently recording. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn recording on/off (flip only while no scopes are open). */
void setEnabled(bool on);

/** Zero all per-thread and merged counters. */
void reset();

/** Merge every thread's counters into one Snapshot. */
Snapshot snapshot();

/**
 * RAII bucket guard. Place one at the entry of an instrumented
 * subsystem function; nesting re-attributes time to the inner bucket
 * for its duration (see the file header).
 */
class Scope
{
  public:
    explicit Scope(Bucket b)
    {
        if (enabled())
            active_ = detail::enter(b);
    }
    ~Scope()
    {
        if (active_)
            detail::exit();
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    bool active_ = false;
};

} // namespace prof
} // namespace lacc

#endif // LACC_SIM_PROFILER_HH
