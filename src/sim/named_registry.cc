#include "sim/named_registry.hh"

#include <cstdio>

namespace lacc {
namespace registry {

bool
validateName(const char *what, const std::string &value,
             const std::vector<std::string> &names)
{
    for (const auto &n : names)
        if (n == value)
            return true;
    std::fprintf(stderr, "unknown %s '%s' (valid: %s)\n", what,
                 value.c_str(), joinNames(names).c_str());
    return false;
}

} // namespace registry
} // namespace lacc
