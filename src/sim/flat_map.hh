/**
 * @file
 * Open-addressing hash map for address-like 64-bit keys.
 *
 * The simulator's hottest maps (per-core miss trackers, the R-NUCA
 * page table, the DRAM slab index) are keyed by line/page addresses
 * and live on the per-access path. std::unordered_map allocates one
 * heap node per insert and chases a bucket pointer per lookup;
 * FlatAddrMap stores {key, value} cells in one contiguous array with
 * linear probing (mixAddrBits hash), so lookups touch a single cache
 * line in the common case and inserts allocate only on growth.
 *
 * Constraints (all satisfied by the simulator's users):
 *  - keys must never equal kInvalidAddr (the empty-cell sentinel);
 *    real addresses are <= 48 bits;
 *  - no erase support (the users only insert/update);
 *  - growth invalidates value pointers (callers hold them only
 *    transiently, never across an insert).
 */

#ifndef LACC_SIM_FLAT_MAP_HH
#define LACC_SIM_FLAT_MAP_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace lacc {

/** Flat linear-probing hash map; see file header for constraints. */
template <typename V>
class FlatAddrMap
{
  public:
    FlatAddrMap() = default;

    /** Pre-size for about @p expected entries without rehashing. */
    explicit FlatAddrMap(std::size_t expected) { reserve(expected); }

    /** Entries stored. */
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Grow the table so @p expected entries fit within load factor. */
    void
    reserve(std::size_t expected)
    {
        std::size_t want = kMinCapacity;
        // Max load factor 3/4: capacity > expected * 4/3.
        while (want * 3 < expected * 4)
            want <<= 1;
        if (want > cells_.size())
            rehash(want);
    }

    /** @return the value stored under @p key, or nullptr. */
    V *
    find(std::uint64_t key)
    {
        if (cells_.empty())
            return nullptr;
        std::size_t i = mixAddrBits(key) & mask_;
        while (true) {
            Cell &c = cells_[i];
            if (c.key == key)
                return &c.val;
            if (c.key == kEmptyKey)
                return nullptr;
            i = (i + 1) & mask_;
        }
    }

    const V *
    find(std::uint64_t key) const
    {
        return const_cast<FlatAddrMap *>(this)->find(key);
    }

    /** Insert-or-get with a default-constructed value. */
    V &
    operator[](std::uint64_t key)
    {
        if (cells_.empty())
            rehash(kMinCapacity);
        while (true) {
            std::size_t i = mixAddrBits(key) & mask_;
            while (true) {
                Cell &c = cells_[i];
                if (c.key == key)
                    return c.val; // pure update: never grows
                if (c.key == kEmptyKey) {
                    // Grow only when actually claiming a cell would
                    // cross the load factor, then re-probe.
                    if ((size_ + 1) * 4 > cells_.size() * 3)
                        break;
                    c.key = key;
                    ++size_;
                    return c.val;
                }
                i = (i + 1) & mask_;
            }
            rehash(cells_.size() * 2);
        }
    }

    /** Apply @p fn(key, value) to every entry (probe order). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (const Cell &c : cells_)
            if (c.key != kEmptyKey)
                fn(c.key, c.val);
    }

  private:
    /** Sentinel marking an unoccupied cell; never a real address. */
    static constexpr std::uint64_t kEmptyKey = kInvalidAddr;
    static constexpr std::size_t kMinCapacity = 16;

    struct Cell
    {
        std::uint64_t key = kEmptyKey;
        V val{};
    };

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<Cell> old = std::move(cells_);
        cells_.assign(new_capacity, Cell{});
        mask_ = new_capacity - 1;
        for (Cell &c : old) {
            if (c.key == kEmptyKey)
                continue;
            std::size_t i = mixAddrBits(c.key) & mask_;
            while (cells_[i].key != kEmptyKey)
                i = (i + 1) & mask_;
            cells_[i] = std::move(c);
        }
    }

    std::vector<Cell> cells_; //!< power-of-two sized, or empty
    std::size_t mask_ = 0;
    std::size_t size_ = 0;
};

} // namespace lacc

#endif // LACC_SIM_FLAT_MAP_HH
