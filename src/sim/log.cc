#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>

namespace lacc {

namespace {
bool verboseEnabled = true;

void
vprint(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vprint("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vprint("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vprint("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    va_list args;
    va_start(args, fmt);
    vprint("info", fmt, args);
    va_end(args);
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

bool
isVerbose()
{
    return verboseEnabled;
}

} // namespace lacc
