#include "sim/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lacc {

namespace {

/**
 * Atomic so the parallel sweep runner (harness/runner.cc) can read it
 * from worker threads without a data race. Writers are expected to
 * call setVerbose() before spawning workers; there is no ordering
 * guarantee for mid-run flips.
 */
std::atomic<bool> verboseEnabled{true};

void
vprint(const char *tag, const char *fmt, va_list args)
{
    // One message = one stream operation where possible: build the
    // line first so concurrent warn()s from sweep workers don't
    // interleave mid-line.
    char body[1024];
    const int needed = std::vsnprintf(body, sizeof body, fmt, args);
    std::fprintf(stderr, "%s: %s%s\n", tag, body,
                 needed >= static_cast<int>(sizeof body)
                     ? " [...truncated]"
                     : "");
}
} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vprint("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vprint("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vprint("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    va_list args;
    va_start(args, fmt);
    vprint("info", fmt, args);
    va_end(args);
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

bool
isVerbose()
{
    return verboseEnabled;
}

} // namespace lacc
