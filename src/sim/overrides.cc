#include "sim/overrides.hh"

#include <algorithm>
#include <cstdio>

#include "fault/plan.hh"
#include "net/factory.hh"
#include "protocol/factory.hh"
#include "sim/config.hh"
#include "sim/named_registry.hh"
#include "system/engine.hh"

namespace lacc {

bool
ConfigOverrides::validateOrReport() const
{
    bool ok = true;
    if (!protocol.empty() &&
        !registry::validateName("protocol", protocol, protocolNames()))
        ok = false;
    if (!network.empty() &&
        !registry::validateName("network", network, networkNames()))
        ok = false;
    if (!faults.empty() &&
        !registry::validateName("fault plan", faults, faultNames()))
        ok = false;
    if (faultRate >= 0.0 && faultRate > 1.0) {
        std::fprintf(stderr,
                     "--fault-rate %g out of range [0, 1]\n", faultRate);
        ok = false;
    }
    return ok;
}

void
ConfigOverrides::apply(SystemConfig &cfg) const
{
    if (!protocol.empty())
        applyProtocolName(cfg, protocol);
    if (!network.empty())
        applyNetworkName(cfg, network);
    if (simThreads != 0) {
        cfg.simThreads = simThreads;
        cfg.engineKind =
            simThreads > 1 ? EngineKind::Sharded : EngineKind::Serial;
    }
    if (!faults.empty())
        applyFaultName(cfg, faults);
    if (faultRate >= 0.0)
        cfg.faultRate = faultRate;
    if (faultSeedSet)
        cfg.faultSeed = faultSeed;
}

void
ConfigOverrides::warnIfOverridingSweep(
    const std::vector<const SystemConfig *> &cfgs) const
{
    const auto warn_dim = [&cfgs](const char *what,
                                  const std::string &value,
                                  const char *(*name_for)(
                                      const SystemConfig &)) {
        if (value.empty())
            return;
        std::size_t overridden = 0;
        for (const SystemConfig *cfg : cfgs)
            if (value != name_for(*cfg))
                ++overridden;
        if (overridden > 0) {
            std::fprintf(stderr,
                         "[bench] warning: --%s %s overrides"
                         " %zu/%zu jobs whose configs select a"
                         " different %s; labels and table rows"
                         " keep their original %s names\n",
                         what, value.c_str(), overridden,
                         cfgs.size(), what, what);
        }
    };
    warn_dim("protocol", protocol, protocolNameFor);
    warn_dim("network", network, networkNameFor);
    warn_dim("faults", faults, faultNameFor);
}

unsigned
clampJobsToBudget(unsigned jobs, std::uint32_t sim_threads,
                  unsigned hw_budget)
{
    if (jobs == 0)
        jobs = 1;
    const std::uint64_t per = std::max<std::uint32_t>(sim_threads, 1);
    const std::uint64_t budget = std::max(hw_budget, 1u);
    if (jobs * per <= budget)
        return jobs;
    return static_cast<unsigned>(
        std::max<std::uint64_t>(1, budget / per));
}

} // namespace lacc
