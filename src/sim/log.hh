/**
 * @file
 * Minimal gem5-style logging: panic / fatal / warn / inform.
 *
 * panic() flags an internal simulator bug and aborts; fatal() flags a
 * user/configuration error and exits cleanly; warn()/inform() print and
 * continue.
 *
 * Thread-safety: the verbose flag is atomic and every message is
 * formatted into a single buffer before one locked fprintf, so
 * concurrent sweep workers (harness/runner.hh) cannot interleave
 * mid-line. Call setVerbose() before spawning workers; flips during a
 * sweep have no ordering guarantee.
 */

#ifndef LACC_SIM_LOG_HH
#define LACC_SIM_LOG_HH

#include <cstdarg>
#include <string>

namespace lacc {

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user/configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool isVerbose();

} // namespace lacc

#endif // LACC_SIM_LOG_HH
