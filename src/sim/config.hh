/**
 * @file
 * System configuration: Table 1 architectural parameters plus the
 * locality-aware protocol knobs (PCT, RATmax, nRATlevels, classifier).
 */

#ifndef LACC_SIM_CONFIG_HH
#define LACC_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace lacc {

/** Which locality classifier the directory uses (Sections 3.2-3.4). */
enum class ClassifierKind : std::uint8_t {
    /** Tracks mode/utilization/RAT-level for every core (Fig 6). */
    Complete,
    /** Tracks k cores; majority vote seeds new cores (Fig 7). */
    Limited,
    /** Ideal 64-bit last-access timestamp check (Section 3.2). */
    Timestamp,
    /** No tracking: every core is always a private sharer (baseline). */
    AlwaysPrivate,
};

/** Protocol variant under evaluation. */
enum class ProtocolKind : std::uint8_t {
    /** Full adaptive protocol with two-way transitions (Adapt2-way). */
    Adaptive,
    /** One-way transitions: demotion only, never promoted (Sec 3.7). */
    AdaptOneWay,
};

/** Directory sharer-tracking organization. */
enum class DirectoryKind : std::uint8_t {
    /** ACKwise_p limited directory with broadcast overflow. */
    Ackwise,
    /** Full-map bit-vector directory. */
    FullMap,
};

/** On-chip interconnect topology (net/factory.hh builds the model). */
enum class NetworkKind : std::uint8_t {
    /** Electrical 2-D mesh, XY routing, native broadcast (Table 1). */
    Mesh,
    /** 2-D torus: wraparound XY, shorter average hops. */
    Torus,
    /** 1-D bidirectional ring: cheap routers, linear diameter. */
    Ring,
    /** Full crossbar: uniform latency, NO native broadcast. */
    Crossbar,
};

/** Execution engine driving a simulation (system/engine.hh builds it). */
enum class EngineKind : std::uint8_t {
    /** Single-threaded event loop (the reference interleaving). */
    Serial,
    /** Tile-sharded worker pool with deterministic epoch commits. */
    Sharded,
};

/** Fault-injection plan (fault/plan.hh resolves the rates). */
enum class FaultKind : std::uint8_t {
    /** No injection; provably one untaken branch on the hot path. */
    None,
    /** Lossy links: seeded per-link drops/corruptions + retransmit. */
    Links,
    /** SRAM soft errors in L1/L2 data and directory metadata + ECC. */
    Soft,
    /** Links and soft errors together at elevated rates. */
    Storm,
};

/** Human-readable names for the enums above. */
const char *classifierKindName(ClassifierKind k);
const char *protocolKindName(ProtocolKind k);
const char *directoryKindName(DirectoryKind k);
const char *networkKindName(NetworkKind k);
const char *engineKindName(EngineKind k);
const char *faultKindName(FaultKind k);

/**
 * All architectural and protocol parameters. Defaults reproduce Table 1
 * and the paper's default protocol configuration (PCT=4, RATmax=16,
 * nRATlevels=2, Limited3 classifier, ACKwise4 directory).
 */
struct SystemConfig
{
    // ---- Chip organization -------------------------------------------
    std::uint32_t numCores = 64;       //!< tiles, row-major on the mesh
    std::uint32_t meshWidth = 8;       //!< mesh columns; rows derived
    std::uint32_t clusterSize = 4;     //!< R-NUCA instruction cluster

    // ---- Memory subsystem (per core) ---------------------------------
    std::uint32_t lineSize = 64;       //!< bytes per cache line
    std::uint32_t pageSize = 4096;     //!< R-NUCA classification grain

    std::uint32_t l1iSizeKB = 16;      //!< L1-I capacity
    std::uint32_t l1iAssoc = 4;
    std::uint32_t l1dSizeKB = 32;      //!< L1-D capacity
    std::uint32_t l1dAssoc = 4;
    std::uint32_t l1Latency = 1;       //!< cycles

    std::uint32_t l2SizeKB = 256;      //!< L2 slice capacity per tile
    std::uint32_t l2Assoc = 8;
    std::uint32_t l2Latency = 7;       //!< cycles (word or line access)

    // ---- Off-chip ------------------------------------------------------
    std::uint32_t numMemControllers = 8;
    double dramBandwidthGBps = 5.0;    //!< per controller
    std::uint32_t dramLatency = 100;   //!< cycles (100 ns @ 1 GHz)

    // ---- Network -------------------------------------------------------
    NetworkKind networkKind = NetworkKind::Mesh;
    std::uint32_t hopLatency = 2;      //!< 1 router + 1 link cycle per hop
    std::uint32_t flitWidthBits = 64;
    std::uint32_t headerFlits = 1;     //!< src, dest, addr, type
    std::uint32_t wordFlits = 1;       //!< 64-bit word payload
    std::uint32_t lineFlits = 8;       //!< 512-bit line payload
    bool modelContention = true;       //!< link contention only (Table 1)

    // ---- Directory -----------------------------------------------------
    DirectoryKind directoryKind = DirectoryKind::Ackwise;
    std::uint32_t ackwisePointers = 4; //!< the "p" in ACKwise_p

    // ---- Locality-aware protocol (Section 3) --------------------------
    ProtocolKind protocolKind = ProtocolKind::Adaptive;
    ClassifierKind classifierKind = ClassifierKind::Limited;
    std::uint32_t pct = 4;             //!< Private Caching Threshold
    std::uint32_t ratMax = 16;         //!< max Remote Access Threshold
    std::uint32_t nRatLevels = 2;      //!< RAT levels incl. the PCT level
    std::uint32_t classifierK = 3;     //!< tracked cores in Limited_k
    /**
     * Extension the paper mentions but does not evaluate (§5.3): seed
     * a core's first classification from the majority mode of the
     * cores that already touched the line, Limited_k-style, in the
     * Complete classifier.
     */
    bool completeLearningShortcut = false;
    /**
     * Ablation: disable R-NUCA placement (all data hash-interleaved
     * across slices, no private-at-owner homes, no instruction
     * clustering).
     */
    bool rnucaEnabled = true;

    // ---- Execution engine ---------------------------------------------
    EngineKind engineKind = EngineKind::Serial;
    /**
     * Worker threads inside one simulation (ShardedEngine only; the
     * serial engine ignores it). Results are bit-identical to serial
     * for any value — this knob trades threads for wall-clock only.
     */
    std::uint32_t simThreads = 1;

    // ---- Fault injection (fault/plan.hh) ------------------------------
    FaultKind faultKind = FaultKind::None;
    /**
     * Base per-event fault probability; every plan scales its drop/
     * corrupt/soft-error rates linearly from this one knob.
     */
    double faultRate = 1e-3;
    /** Fault-schedule seed, independent of the workload seed. */
    std::uint64_t faultSeed = 0xFA17;

    // ---- Workload / misc ----------------------------------------------
    std::uint64_t seed = 42;           //!< global workload seed

    /** @return mesh rows (numCores / meshWidth). */
    std::uint32_t meshHeight() const { return numCores / meshWidth; }

    /** @return number of lines per L1-D slice set etc. helpers. */
    std::uint32_t l1dSets() const
    {
        return l1dSizeKB * 1024 / lineSize / l1dAssoc;
    }
    std::uint32_t l1iSets() const
    {
        return l1iSizeKB * 1024 / lineSize / l1iAssoc;
    }
    std::uint32_t l2Sets() const
    {
        return l2SizeKB * 1024 / lineSize / l2Assoc;
    }

    /** Words (64-bit) per cache line. */
    std::uint32_t wordsPerLine() const { return lineSize / 8; }

    /**
     * RAT value for a given RAT level (Section 3.3): additively spaced
     * from PCT (level 0) to RATmax in nRatLevels steps.
     *
     * @param level RAT level in [0, nRatLevels).
     * @return the remote-access threshold at that level.
     */
    std::uint32_t ratForLevel(std::uint32_t level) const;

    /** Validate invariants; calls fatal() on bad user configuration. */
    void validate() const;

    /** @return a one-line summary, e.g. for bench headers. */
    std::string summary() const;
};

} // namespace lacc

#endif // LACC_SIM_CONFIG_HH
