/**
 * @file
 * Shared helpers for the config-keyed named factories (protocol,
 * network, execution engine). Each factory keeps a flat table of
 * entries — `{name, kind, make}` — as its single registration point;
 * the lookup/listing/diagnostic logic lives here once, so every
 * factory resolves names, lists itself (`--list-*`), and rejects
 * unknown names with the same "unknown X (known: ...)" shape.
 *
 * An Entry type only needs two fields to participate:
 *   const char *name;   // stable CLI-facing identifier
 *   Kind kind;          // the SystemConfig enum the factory keys on
 */

#ifndef LACC_SIM_NAMED_REGISTRY_HH
#define LACC_SIM_NAMED_REGISTRY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/log.hh"

namespace lacc {
namespace registry {

/** "a, b, c" — the form every unknown-name diagnostic lists. */
inline std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names)
        out += (out.empty() ? "" : ", ") + n;
    return out;
}

/** Entry whose kind matches; panic() if the table has no such kind. */
template <typename Entry, std::size_t N, typename Kind>
const Entry &
entryForKind(const Entry (&table)[N], Kind kind, const char *what)
{
    for (const auto &e : table)
        if (e.kind == kind)
            return e;
    panic("no %s registered for kind %d", what,
          static_cast<int>(kind));
}

/** Entry whose name matches, or nullptr. */
template <typename Entry, std::size_t N>
const Entry *
entryForName(const Entry (&table)[N], const std::string &name)
{
    for (const auto &e : table)
        if (name == e.name)
            return &e;
    return nullptr;
}

/** Registered names in table (= CLI listing) order. */
template <typename Entry, std::size_t N>
std::vector<std::string>
entryNames(const Entry (&table)[N])
{
    std::vector<std::string> out;
    out.reserve(N);
    for (const auto &e : table)
        out.emplace_back(e.name);
    return out;
}

/** Entry whose name matches; fatal() with the known names if none. */
template <typename Entry, std::size_t N>
const Entry &
entryForNameOrFatal(const Entry (&table)[N], const char *what,
                    const std::string &name)
{
    if (const Entry *e = entryForName(table, name))
        return *e;
    fatal("unknown %s '%s' (known: %s)", what, name.c_str(),
          joinNames(entryNames(table)).c_str());
}

/**
 * CLI-flavored validation: true when @p value is one of @p names,
 * else print the usage-error diagnostic to stderr and return false
 * (callers exit 2). Both CLIs funnel their --protocol/--network/
 * --engine arguments through this one implementation.
 */
bool validateName(const char *what, const std::string &value,
                  const std::vector<std::string> &names);

} // namespace registry
} // namespace lacc

#endif // LACC_SIM_NAMED_REGISTRY_HH
