/**
 * @file
 * Statistics containers mirroring the paper's reported metrics.
 *
 * - LatencyBreakdown: the six completion-time components of Fig 9
 *   (Compute, L1Cache-L2Cache, L2Cache-Waiting, L2Cache-Sharers,
 *   L2Cache-OffChip, Synchronization), defined in Section 4.4.
 * - EnergyBreakdown: the six energy components of Fig 8 (L1-I, L1-D,
 *   L2, Directory, Network Router, Network Link).
 * - MissBreakdown: the five miss types of Section 4.4 (Fig 10).
 * - UtilizationHistogram: Figs 1-2 (evictions/invalidations by the
 *   utilization of the victim line).
 */

#ifndef LACC_SIM_STATS_HH
#define LACC_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace lacc {

/** Completion-time components (cycles); see Section 4.4. */
struct LatencyBreakdown
{
    std::uint64_t compute = 0;        //!< non-memory pipeline cycles
    std::uint64_t l1ToL2 = 0;         //!< miss request/reply + L2 access
    std::uint64_t l2Waiting = 0;      //!< per-line serialization queueing
    std::uint64_t l2Sharers = 0;      //!< invalidation / sync-WB roundtrips
    std::uint64_t offChip = 0;        //!< DRAM access incl. queueing
    std::uint64_t synchronization = 0;//!< barrier / lock wait

    /** Sum of all components. */
    std::uint64_t total() const
    {
        return compute + l1ToL2 + l2Waiting + l2Sharers + offChip +
               synchronization;
    }

    LatencyBreakdown &operator+=(const LatencyBreakdown &o);
};

/** Dynamic energy per component (picojoules). */
struct EnergyBreakdown
{
    double l1i = 0.0;
    double l1d = 0.0;
    double l2 = 0.0;
    double directory = 0.0;
    double router = 0.0;
    double link = 0.0;

    /** Total memory-system energy (caches + network, as in the paper). */
    double total() const
    {
        return l1i + l1d + l2 + directory + router + link;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
};

/** Counts of the five L1 miss types of Section 4.4. */
struct MissBreakdown
{
    std::array<std::uint64_t, static_cast<std::size_t>(MissType::NumTypes)>
        counts{};

    void record(MissType t) { ++counts[static_cast<std::size_t>(t)]; }
    std::uint64_t get(MissType t) const
    {
        return counts[static_cast<std::size_t>(t)];
    }
    std::uint64_t total() const;

    MissBreakdown &operator+=(const MissBreakdown &o);
};

/**
 * Histogram of line utilization observed at eviction or invalidation
 * time (Figs 1-2). Utilization is clamped into [1, kMaxUtil].
 */
struct UtilizationHistogram
{
    static constexpr std::uint32_t kMaxUtil = 64;
    std::array<std::uint64_t, kMaxUtil + 1> counts{};

    /** Record one event with the given utilization (>= 0). */
    void record(std::uint64_t utilization);

    /** Total recorded events. */
    std::uint64_t total() const;

    /**
     * Fraction of events in the paper's buckets {1, 2-3, 4-5, 6-7, >=8};
     * bucket index 0..4. Returns 0 for empty histograms.
     */
    double bucketFraction(std::uint32_t bucket) const;

    /** Fraction of events with utilization < u. */
    double fractionBelow(std::uint64_t u) const;

    UtilizationHistogram &operator+=(const UtilizationHistogram &o);
};

/** L1/L2 cache access counters (one instance per cache). */
struct CacheStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t loadMisses = 0;
    std::uint64_t storeMisses = 0;
    std::uint64_t evictions = 0;       //!< capacity/conflict victims
    std::uint64_t invalidationsRecv = 0;
    std::uint64_t fills = 0;

    std::uint64_t accesses() const { return loads + stores; }
    std::uint64_t misses() const { return loadMisses + storeMisses; }
    double missRate() const
    {
        const auto a = accesses();
        return a == 0 ? 0.0 : static_cast<double>(misses()) / a;
    }

    CacheStats &operator+=(const CacheStats &o);
};

/** NoC traffic counters. */
struct NetworkStats
{
    std::uint64_t unicasts = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t flitsInjected = 0;   //!< payload+header flits at source
    std::uint64_t flitHops = 0;        //!< flits x links traversed
    std::uint64_t contentionCycles = 0;

    NetworkStats &operator+=(const NetworkStats &o);
};

/**
 * Fault-injection and recovery counters (fault/injector.hh). All zero
 * when FaultPlan none is selected; deliberately excluded from
 * statsSignature() so fault-free golden digests stay bit-identical to
 * the pre-fault ones.
 */
struct FaultStats
{
    std::uint64_t linkDrops = 0;         //!< messages lost in flight
    std::uint64_t linkCorruptions = 0;   //!< messages mangled in flight
    std::uint64_t retransmits = 0;       //!< recovery resends
    std::uint64_t nacks = 0;             //!< CRC-failure NACKs sent
    std::uint64_t softErrors = 0;        //!< bit-flip strikes injected
    std::uint64_t eccCorrected = 0;      //!< SECDED single-bit fixes
    std::uint64_t eccDetected = 0;       //!< SECDED double-bit detects
    std::uint64_t scrubs = 0;            //!< scrub-from-DRAM refetches
    std::uint64_t silentCorruptions = 0; //!< unprotected real bit flips

    /** Any fault activity at all? */
    bool any() const
    {
        return (linkDrops | linkCorruptions | retransmits | nacks |
                softErrors | eccCorrected | eccDetected | scrubs |
                silentCorruptions) != 0;
    }

    FaultStats &operator+=(const FaultStats &o);
};

/** Protocol-level event counters. */
struct ProtocolStats
{
    std::uint64_t privateReadGrants = 0;  //!< line copies handed out (read)
    std::uint64_t privateWriteGrants = 0; //!< line copies handed out (write)
    std::uint64_t upgradeGrants = 0;      //!< S->M without data transfer
    std::uint64_t remoteReads = 0;        //!< word reads at the L2 home
    std::uint64_t remoteWrites = 0;       //!< word writes at the L2 home
    std::uint64_t promotions = 0;         //!< remote -> private
    std::uint64_t demotions = 0;          //!< private -> remote
    std::uint64_t invalidationsSent = 0;  //!< unicast invalidation msgs
    std::uint64_t broadcastInvals = 0;    //!< ACKwise overflow broadcasts
    std::uint64_t syncWritebacks = 0;     //!< owner flushes on demand
    std::uint64_t dirtyWritebacks = 0;    //!< eviction write-backs (L1->L2)
    std::uint64_t l2Evictions = 0;        //!< inclusive back-invalidations
    std::uint64_t rehomeFlushes = 0;      //!< R-NUCA private->shared
    std::uint64_t dramFetches = 0;
    std::uint64_t dramWritebacks = 0;

    ProtocolStats &operator+=(const ProtocolStats &o);
};

/** Per-core statistics. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    std::uint64_t ifetches = 0;
    Cycle finishTime = 0;

    LatencyBreakdown latency;
    MissBreakdown misses;          //!< L1-D miss taxonomy
    CacheStats l1i;
    CacheStats l1d;

    CoreStats &operator+=(const CoreStats &o);
};

/** Whole-system statistics returned by a simulation run. */
struct SystemStats
{
    std::vector<CoreStats> perCore;

    CacheStats l2;                 //!< aggregated over slices
    NetworkStats network;
    ProtocolStats protocol;
    FaultStats faults;             //!< all-zero under FaultPlan none
    EnergyBreakdown energy;
    UtilizationHistogram evictionUtil;      //!< Fig 2
    UtilizationHistogram invalidationUtil;  //!< Fig 1

    /** Parallel-region completion time: max core finish time. */
    Cycle completionTime() const;

    /** Sum of per-core latency breakdowns (for stacked plots). */
    LatencyBreakdown totalLatency() const;

    /** Aggregate L1-D miss taxonomy. */
    MissBreakdown totalMisses() const;

    /** Aggregate L1-D access count. */
    std::uint64_t totalL1dAccesses() const;

    /** Aggregate L1-D miss rate (misses incl. word accesses). */
    double l1dMissRate() const;
};

} // namespace lacc

#endif // LACC_SIM_STATS_HH
