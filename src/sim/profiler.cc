#include "sim/profiler.hh"

#include <chrono>
#include <mutex>
#include <vector>

namespace lacc {
namespace prof {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Per-thread recording state. Counters are relaxed atomics so
 * snapshot() can read a live worker's totals without stopping it
 * (sweep workers outlive the experiments they run); everything else
 * is touched only by the owning thread.
 */
struct ThreadState
{
    std::array<std::atomic<std::uint64_t>, kNumBuckets> ns{};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> calls{};
    static constexpr int kMaxDepth = 16;
    Bucket stack[kMaxDepth];
    int depth = 0;
    std::uint64_t sliceStart = 0;

    void
    zero()
    {
        for (auto &v : ns)
            v.store(0, std::memory_order_relaxed);
        for (auto &v : calls)
            v.store(0, std::memory_order_relaxed);
        depth = 0;
        sliceStart = 0;
    }
};

/**
 * Registry of every thread that ever recorded a scope. Dead threads
 * fold their totals into merged_. Leaked singleton: thread_local
 * destructors may run after function-local statics are destroyed.
 */
struct Registry
{
    std::mutex mu;
    std::vector<ThreadState *> live;
    Snapshot merged;
};

Registry &
registry()
{
    static Registry &r = *new Registry;
    return r;
}

/** Registers with the registry on first use, merges out on exit. */
struct ThreadHandle
{
    ThreadState state;

    ThreadHandle()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lk(r.mu);
        r.live.push_back(&state);
    }

    ~ThreadHandle()
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lk(r.mu);
        for (std::size_t i = 0; i < r.live.size(); ++i) {
            if (r.live[i] == &state) {
                r.live.erase(r.live.begin() +
                             static_cast<std::ptrdiff_t>(i));
                break;
            }
        }
        for (int b = 0; b < kNumBuckets; ++b) {
            r.merged.ns[b] +=
                state.ns[b].load(std::memory_order_relaxed);
            r.merged.calls[b] +=
                state.calls[b].load(std::memory_order_relaxed);
        }
    }
};

ThreadState &
threadState()
{
    thread_local ThreadHandle h;
    return h.state;
}

void
charge(ThreadState &ts, Bucket b, std::uint64_t from, std::uint64_t to)
{
    ts.ns[b].fetch_add(to > from ? to - from : 0,
                       std::memory_order_relaxed);
}

} // namespace

bool
enter(Bucket b)
{
    ThreadState &ts = threadState();
    if (ts.depth >= ThreadState::kMaxDepth)
        return false;
    const std::uint64_t now = nowNs();
    if (ts.depth > 0)
        charge(ts, ts.stack[ts.depth - 1], ts.sliceStart, now);
    ts.stack[ts.depth++] = b;
    ts.sliceStart = now;
    ts.calls[b].fetch_add(1, std::memory_order_relaxed);
    return true;
}

void
exit()
{
    ThreadState &ts = threadState();
    const std::uint64_t now = nowNs();
    charge(ts, ts.stack[ts.depth - 1], ts.sliceStart, now);
    --ts.depth;
    ts.sliceStart = now;
}

} // namespace detail

const char *
bucketName(Bucket b)
{
    switch (b) {
      case Workload:
        return "workload";
      case Cache:
        return "cache";
      case Protocol:
        return "protocol";
      case Network:
        return "network";
      case Dram:
        return "dram";
      default:
        return "?";
    }
}

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
reset()
{
    auto &r = detail::registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (auto *ts : r.live)
        ts->zero();
    r.merged = Snapshot{};
}

Snapshot
snapshot()
{
    auto &r = detail::registry();
    std::lock_guard<std::mutex> lk(r.mu);
    Snapshot s = r.merged;
    for (const auto *ts : r.live) {
        for (int b = 0; b < kNumBuckets; ++b) {
            s.ns[b] += ts->ns[b].load(std::memory_order_relaxed);
            s.calls[b] += ts->calls[b].load(std::memory_order_relaxed);
        }
    }
    return s;
}

} // namespace prof
} // namespace lacc
