#include "sim/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>

#include "sim/log.hh"

namespace lacc {

namespace {

/** Parser nesting limit; BENCH_*.json is ~4 levels deep. */
constexpr int kMaxDepth = 128;

void
escapeTo(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Shortest round-trip double formatting (JSON has no NaN/Inf: null). */
void
writeDouble(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[64];
    const auto r = std::to_chars(buf, buf + sizeof buf, v);
    os.write(buf, r.ptr - buf);
}

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool
    fail(const std::string &what)
    {
        if (err.empty())
            err = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size()) {
            const char c = text[pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += n;
        return true;
    }

    bool
    parseHex4(std::uint32_t &out)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        return true;
    }

    static void
    appendUtf8(std::string &s, std::uint32_t cp)
    {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= text.size())
                return fail("truncated escape");
            const char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                std::uint32_t cp = 0;
                if (!parseHex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // Surrogate pair.
                    if (pos + 1 >= text.size() || text[pos] != '\\' ||
                        text[pos + 1] != 'u')
                        return fail("unpaired surrogate");
                    pos += 2;
                    std::uint32_t lo = 0;
                    if (!parseHex4(lo))
                        return false;
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        return fail("bad low surrogate");
                    cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Json &out)
    {
        const std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        bool isDouble = false;
        while (pos < text.size()) {
            const char c = text[pos];
            if (c >= '0' && c <= '9') {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isDouble = isDouble || c == '.' || c == 'e' || c == 'E';
                ++pos;
            } else {
                break;
            }
        }
        const std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            return fail("expected number");
        if (!isDouble) {
            if (tok[0] == '-') {
                std::int64_t v = 0;
                const auto r =
                    std::from_chars(tok.data(), tok.data() + tok.size(), v);
                if (r.ec == std::errc() && r.ptr == tok.data() + tok.size()) {
                    out = Json(static_cast<long long>(v));
                    return true;
                }
            } else {
                std::uint64_t v = 0;
                const auto r =
                    std::from_chars(tok.data(), tok.data() + tok.size(), v);
                if (r.ec == std::errc() && r.ptr == tok.data() + tok.size()) {
                    out = Json(static_cast<unsigned long long>(v));
                    return true;
                }
            }
            // Out-of-range integers fall back to double.
        }
        double d = 0.0;
        const auto r =
            std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (r.ec != std::errc() || r.ptr != tok.data() + tok.size())
            return fail("malformed number '" + tok + "'");
        out = Json(d);
        return true;
    }

    bool
    parseValue(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == 'n') {
            out = Json();
            return literal("null");
        }
        if (c == 't') {
            out = Json(true);
            return literal("true");
        }
        if (c == 'f') {
            out = Json(false);
            return literal("false");
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                Json elem;
                if (!parseValue(elem, depth + 1))
                    return false;
                out.push(std::move(elem));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos;
            out = Json::object();
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json val;
                if (!parseValue(val, depth + 1))
                    return false;
                out[key] = std::move(val);
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        return parseNumber(out);
    }
};

} // namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        panic("Json::asBool on non-bool (type %d)",
              static_cast<int>(type_));
    return bool_;
}

std::int64_t
Json::asInt() const
{
    if (type_ == Type::Int)
        return int_;
    if (type_ == Type::Uint) {
        if (uint_ > static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max()))
            panic("Json::asInt overflow (%llu)",
                  static_cast<unsigned long long>(uint_));
        return static_cast<std::int64_t>(uint_);
    }
    panic("Json::asInt on non-integer (type %d)",
          static_cast<int>(type_));
}

std::uint64_t
Json::asUint() const
{
    if (type_ == Type::Uint)
        return uint_;
    if (type_ == Type::Int) {
        if (int_ < 0)
            panic("Json::asUint on negative (%lld)",
                  static_cast<long long>(int_));
        return static_cast<std::uint64_t>(int_);
    }
    panic("Json::asUint on non-integer (type %d)",
          static_cast<int>(type_));
}

double
Json::asDouble() const
{
    switch (type_) {
      case Type::Int: return static_cast<double>(int_);
      case Type::Uint: return static_cast<double>(uint_);
      case Type::Double: return dbl_;
      default:
        panic("Json::asDouble on non-number (type %d)",
              static_cast<int>(type_));
    }
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        panic("Json::asString on non-string (type %d)",
              static_cast<int>(type_));
    return str_;
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    return 0;
}

Json &
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        panic("Json::push on non-array (type %d)",
              static_cast<int>(type_));
    arr_.push_back(std::move(v));
    return arr_.back();
}

const Json &
Json::at(std::size_t i) const
{
    if (type_ != Type::Array || i >= arr_.size())
        panic("Json::at(%zu) out of range (size %zu)", i, arr_.size());
    return arr_[i];
}

Json &
Json::operator[](const std::string &key)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        panic("Json::operator[] on non-object (type %d)",
              static_cast<int>(type_));
    for (auto &kv : obj_)
        if (kv.first == key)
            return kv.second;
    obj_.emplace_back(key, Json());
    return obj_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : obj_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *p = find(key);
    if (p == nullptr)
        panic("Json::at missing key '%s'", key.c_str());
    return *p;
}

const std::vector<std::pair<std::string, Json>> &
Json::items() const
{
    if (type_ != Type::Object)
        panic("Json::items on non-object (type %d)",
              static_cast<int>(type_));
    return obj_;
}

const std::vector<Json> &
Json::elements() const
{
    if (type_ != Type::Array)
        panic("Json::elements on non-array (type %d)",
              static_cast<int>(type_));
    return arr_;
}

void
Json::writeIndented(std::ostream &os, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        os << '\n';
        for (int i = 0; i < d * indent; ++i)
            os << ' ';
    };
    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Int:
        os << int_;
        break;
      case Type::Uint:
        os << uint_;
        break;
      case Type::Double:
        writeDouble(os, dbl_);
        break;
      case Type::String:
        escapeTo(os, str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i > 0)
                os << ',';
            newline(depth + 1);
            arr_[i].writeIndented(os, indent, depth + 1);
        }
        newline(depth);
        os << ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i > 0)
                os << ',';
            newline(depth + 1);
            escapeTo(os, obj_[i].first);
            os << (indent > 0 ? ": " : ":");
            obj_[i].second.writeIndented(os, indent, depth + 1);
        }
        newline(depth);
        os << '}';
        break;
    }
}

void
Json::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
Json::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

Json
Json::parse(const std::string &text, std::string *error)
{
    Parser p{text};
    Json out;
    if (!p.parseValue(out, 0)) {
        if (error != nullptr)
            *error = p.err;
        return Json();
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error != nullptr)
            *error = "trailing garbage at offset " +
                     std::to_string(p.pos);
        return Json();
    }
    if (error != nullptr)
        error->clear();
    return out;
}

bool
Json::operator==(const Json &o) const
{
    if (isNumber() && o.isNumber()) {
        // Exact integers compare exactly even across Int/Uint.
        const bool li = type_ != Type::Double;
        const bool ri = o.type_ != Type::Double;
        if (li && ri) {
            if (type_ == Type::Int && int_ < 0)
                return o.type_ == Type::Int && o.int_ == int_;
            if (o.type_ == Type::Int && o.int_ < 0)
                return false;
            return asUint() == o.asUint();
        }
        return asDouble() == o.asDouble();
    }
    if (type_ != o.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == o.bool_;
      case Type::String: return str_ == o.str_;
      case Type::Array: return arr_ == o.arr_;
      case Type::Object: return obj_ == o.obj_;
      default: return false; // numbers handled above
    }
}

} // namespace lacc
