/**
 * @file
 * Minimal order-preserving JSON value, writer, and parser.
 *
 * The bench harness emits machine-readable results (BENCH_*.json) and
 * the tests round-trip them, so we need both directions but only the
 * JSON subset we produce ourselves: finite numbers, UTF-8 strings,
 * arrays, objects. Object keys keep insertion order so emitted files
 * are stable run-to-run and diff cleanly across PRs.
 *
 * No external dependency: the container toolchain is pinned and the
 * simulator keeps its substrate self-contained (see sim/rng.hh for the
 * same argument about determinism).
 */

#ifndef LACC_SIM_JSON_HH
#define LACC_SIM_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace lacc {

/** A JSON document node (null / bool / number / string / array / object). */
class Json
{
  public:
    enum class Type : std::uint8_t {
        Null,
        Bool,
        Int,    //!< signed integer (exact)
        Uint,   //!< unsigned integer (exact, > INT64_MAX capable)
        Double,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(int v) : type_(Type::Int), int_(v) {}
    Json(long v) : type_(Type::Int), int_(v) {}
    Json(long long v) : type_(Type::Int), int_(v) {}
    Json(unsigned v) : type_(Type::Uint), uint_(v) {}
    Json(unsigned long v) : type_(Type::Uint), uint_(v) {}
    Json(unsigned long long v) : type_(Type::Uint), uint_(v) {}
    Json(double v) : type_(Type::Double), dbl_(v) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** @return an empty JSON array (distinct from null). */
    static Json array();

    /** @return an empty JSON object (distinct from null). */
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint ||
               type_ == Type::Double;
    }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; panic() on type mismatch. */
    bool asBool() const;
    std::int64_t asInt() const;   //!< exact ints only
    std::uint64_t asUint() const; //!< exact non-negative ints only
    double asDouble() const;      //!< any number
    const std::string &asString() const;

    /** Array/object element count (0 for scalars). */
    std::size_t size() const;

    /** Array: append an element (converts null to an array). */
    Json &push(Json v);

    /** Array: element access; panic() when out of range. */
    const Json &at(std::size_t i) const;

    /** Object: insert-or-get by key (converts null to an object). */
    Json &operator[](const std::string &key);

    /** Object: @return member pointer or nullptr when absent. */
    const Json *find(const std::string &key) const;

    /** Object: member access; panic() when absent. */
    const Json &at(const std::string &key) const;

    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &items() const;

    /** Array elements. */
    const std::vector<Json> &elements() const;

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces per
     * level; 0 emits a compact single line.
     */
    void write(std::ostream &os, int indent = 2) const;
    std::string dump(int indent = 2) const;

    /**
     * Parse @p text into a value. On malformed input returns null and,
     * when @p error is non-null, stores a message with the byte offset.
     */
    static Json parse(const std::string &text,
                      std::string *error = nullptr);

    /** Deep structural equality (Int/Uint/Double compare by value). */
    bool operator==(const Json &o) const;
    bool operator!=(const Json &o) const { return !(*this == o); }

  private:
    void writeIndented(std::ostream &os, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

} // namespace lacc

#endif // LACC_SIM_JSON_HH
