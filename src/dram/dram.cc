#include "dram/dram.hh"

#include <algorithm>
#include <cmath>

#include "sim/profiler.hh"

namespace lacc {

namespace {

/** Initial bucket reservation of the slab map (grows amortized). */
constexpr std::size_t kInitialSlabLines = 1024;

} // namespace

DramModel::DramModel(const SystemConfig &cfg)
    : numControllers_(cfg.numMemControllers), latency_(cfg.dramLatency),
      wordsPerLine_(cfg.wordsPerLine())
{
    // 64 B line at 5 GB/s and 1 GHz: 64 / 5 = 12.8 -> 13 cycles.
    serialization_ = static_cast<Cycle>(std::ceil(
        static_cast<double>(cfg.lineSize) / cfg.dramBandwidthGBps));
    if (serialization_ == 0)
        serialization_ = 1;

    // Spread controllers evenly over the tile index space.
    tiles_.reserve(numControllers_);
    for (std::uint32_t i = 0; i < numControllers_; ++i)
        tiles_.push_back(
            static_cast<CoreId>(i * cfg.numCores / numControllers_));
    freeAt_.assign(numControllers_, 0);

    slot_.reserve(kInitialSlabLines);
}

CoreId
DramModel::controllerTile(LineAddr line) const
{
    return tiles_[static_cast<std::size_t>(line % numControllers_)];
}

Cycle
DramModel::access(LineAddr line, Cycle start)
{
    prof::Scope ps(prof::Dram);
    const auto ctrl = static_cast<std::size_t>(line % numControllers_);
    ++accesses_;
    Cycle t = start;
    if (freeAt_[ctrl] > t) {
        queueingCycles_ += freeAt_[ctrl] - t;
        t = freeAt_[ctrl];
    }
    freeAt_[ctrl] = t + serialization_;
    return t + latency_ + serialization_;
}

void
DramModel::readLine(LineAddr line, std::uint64_t *out) const
{
    prof::Scope ps(prof::Dram);
    const std::uint32_t *idx = slot_.find(line);
    if (idx == nullptr) {
        std::fill_n(out, wordsPerLine_, std::uint64_t{0});
        return;
    }
    std::copy_n(pool_.data() +
                    static_cast<std::size_t>(*idx) * wordsPerLine_,
                wordsPerLine_, out);
}

void
DramModel::writeLine(LineAddr line, const std::uint64_t *in)
{
    prof::Scope ps(prof::Dram);
    std::uint32_t idx;
    if (const std::uint32_t *found = slot_.find(line)) {
        idx = *found;
    } else {
        idx = static_cast<std::uint32_t>(slot_.size());
        slot_[line] = idx;
        pool_.resize(pool_.size() + wordsPerLine_);
    }
    std::copy_n(in, wordsPerLine_,
                pool_.data() +
                    static_cast<std::size_t>(idx) * wordsPerLine_);
}

} // namespace lacc
