#include "dram/dram.hh"

#include <algorithm>
#include <cmath>

namespace lacc {

DramModel::DramModel(const SystemConfig &cfg)
    : numControllers_(cfg.numMemControllers), latency_(cfg.dramLatency)
{
    // 64 B line at 5 GB/s and 1 GHz: 64 / 5 = 12.8 -> 13 cycles.
    serialization_ = static_cast<Cycle>(std::ceil(
        static_cast<double>(cfg.lineSize) / cfg.dramBandwidthGBps));
    if (serialization_ == 0)
        serialization_ = 1;

    // Spread controllers evenly over the tile index space.
    tiles_.reserve(numControllers_);
    for (std::uint32_t i = 0; i < numControllers_; ++i)
        tiles_.push_back(
            static_cast<CoreId>(i * cfg.numCores / numControllers_));
    freeAt_.assign(numControllers_, 0);
}

CoreId
DramModel::controllerTile(LineAddr line) const
{
    return tiles_[static_cast<std::size_t>(line % numControllers_)];
}

Cycle
DramModel::access(LineAddr line, Cycle start)
{
    const auto ctrl = static_cast<std::size_t>(line % numControllers_);
    ++accesses_;
    Cycle t = start;
    if (freeAt_[ctrl] > t) {
        queueingCycles_ += freeAt_[ctrl] - t;
        t = freeAt_[ctrl];
    }
    freeAt_[ctrl] = t + serialization_;
    return t + latency_ + serialization_;
}

void
DramModel::readLine(LineAddr line, std::vector<std::uint64_t> &out,
                    std::uint32_t words_per_line) const
{
    auto it = store_.find(line);
    if (it == store_.end()) {
        out.assign(words_per_line, 0);
        return;
    }
    out = it->second;
}

void
DramModel::writeLine(LineAddr line, const std::vector<std::uint64_t> &in)
{
    store_[line] = in;
}

} // namespace lacc
