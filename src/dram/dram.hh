/**
 * @file
 * Off-chip DRAM model: fixed access latency plus per-controller
 * bandwidth queueing (Table 1: 8 controllers, 5 GB/s each, 100 ns).
 *
 * Lines are interleaved across controllers; each controller serializes
 * line transfers at its bandwidth (64 B / 5 GBps = 12.8 ns ~ 13 cycles
 * at 1 GHz). Queueing delay due to finite off-chip bandwidth is
 * reported so it can be attributed to the L2Cache-OffChip completion
 * time component (§4.4).
 *
 * Functional storage is a line-granular slab arena: a mix-hashed map
 * from line address to a slot index into one contiguous data pool, so
 * a write-back costs at most one amortized pool grow instead of a heap
 * vector per touched line, and repeated fetch/write-back of the same
 * line is allocation-free.
 */

#ifndef LACC_DRAM_DRAM_HH
#define LACC_DRAM_DRAM_HH

#include <cstdint>
#include <vector>

#include "sim/config.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace lacc {

/** DRAM + memory-controller timing and functional storage. */
class DramModel
{
  public:
    explicit DramModel(const SystemConfig &cfg);

    /** Tile hosting the controller that owns @p line. */
    CoreId controllerTile(LineAddr line) const;

    /**
     * Perform a line fetch or write-back at the controller.
     *
     * @param line  line address
     * @param start cycle the request reaches the controller tile
     * @return cycle the data transfer completes at the controller
     */
    Cycle access(LineAddr line, Cycle start);

    /**
     * Functional read of a line (zero-filled when untouched) into
     * @p out, which must hold wordsPerLine() words.
     */
    void readLine(LineAddr line, std::uint64_t *out) const;

    /** Functional write of a line (wordsPerLine() words from @p in). */
    void writeLine(LineAddr line, const std::uint64_t *in);

    /** 64-bit words stored per line (from the construction config). */
    std::uint32_t wordsPerLine() const { return wordsPerLine_; }

    /** Lines currently backed by a pool slot (test helper). */
    std::size_t storedLines() const { return slot_.size(); }

    /** Total bandwidth-queueing cycles across controllers. */
    std::uint64_t queueingCycles() const { return queueingCycles_; }

    /** Total accesses (fetches + write-backs). */
    std::uint64_t accesses() const { return accesses_; }

    /** Tiles hosting controllers, in controller order (test helper). */
    const std::vector<CoreId> &controllerTiles() const
    {
        return tiles_;
    }

  private:
    std::uint32_t numControllers_;
    Cycle latency_;
    Cycle serialization_; //!< cycles one line occupies a controller
    std::uint32_t wordsPerLine_;

    std::vector<CoreId> tiles_;
    std::vector<Cycle> freeAt_;
    std::uint64_t queueingCycles_ = 0;
    std::uint64_t accesses_ = 0;

    // Slab arena: line -> slot index into the contiguous pool.
    FlatAddrMap<std::uint32_t> slot_;
    std::vector<std::uint64_t> pool_; //!< slot i at [i*wpl, (i+1)*wpl)
};

} // namespace lacc

#endif // LACC_DRAM_DRAM_HH
