/**
 * @file
 * Off-chip DRAM model: fixed access latency plus per-controller
 * bandwidth queueing (Table 1: 8 controllers, 5 GB/s each, 100 ns).
 *
 * Lines are interleaved across controllers; each controller serializes
 * line transfers at its bandwidth (64 B / 5 GBps = 12.8 ns ~ 13 cycles
 * at 1 GHz). Queueing delay due to finite off-chip bandwidth is
 * reported so it can be attributed to the L2Cache-OffChip completion
 * time component (§4.4).
 */

#ifndef LACC_DRAM_DRAM_HH
#define LACC_DRAM_DRAM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace lacc {

/** DRAM + memory-controller timing and functional storage. */
class DramModel
{
  public:
    explicit DramModel(const SystemConfig &cfg);

    /** Tile hosting the controller that owns @p line. */
    CoreId controllerTile(LineAddr line) const;

    /**
     * Perform a line fetch or write-back at the controller.
     *
     * @param line  line address
     * @param start cycle the request reaches the controller tile
     * @return cycle the data transfer completes at the controller
     */
    Cycle access(LineAddr line, Cycle start);

    /** Functional read of a line (zero-filled when untouched). */
    void readLine(LineAddr line, std::vector<std::uint64_t> &out,
                  std::uint32_t words_per_line) const;

    /** Functional write of a line. */
    void writeLine(LineAddr line, const std::vector<std::uint64_t> &in);

    /** Total bandwidth-queueing cycles across controllers. */
    std::uint64_t queueingCycles() const { return queueingCycles_; }

    /** Total accesses (fetches + write-backs). */
    std::uint64_t accesses() const { return accesses_; }

    /** Tiles hosting controllers, in controller order (test helper). */
    const std::vector<CoreId> &controllerTiles() const
    {
        return tiles_;
    }

  private:
    std::uint32_t numControllers_;
    Cycle latency_;
    Cycle serialization_; //!< cycles one line occupies a controller

    std::vector<CoreId> tiles_;
    std::vector<Cycle> freeAt_;
    std::uint64_t queueingCycles_ = 0;
    std::uint64_t accesses_ = 0;

    std::unordered_map<LineAddr, std::vector<std::uint64_t>> store_;
};

} // namespace lacc

#endif // LACC_DRAM_DRAM_HH
