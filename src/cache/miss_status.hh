/**
 * @file
 * Per-core miss-type classification (Section 4.4).
 *
 * The tracker remembers, per (core, line), why the line is not in the
 * core's L1: never touched (cold), evicted (capacity), invalidated or
 * downgraded by another core (sharing), or last serviced as a remote
 * word access (word). Upgrade misses are detected structurally (the
 * line is present read-only when an exclusive request is made) and do
 * not need tracker state.
 */

#ifndef LACC_CACHE_MISS_STATUS_HH
#define LACC_CACHE_MISS_STATUS_HH

#include <cstdint>

#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace lacc {

/** Tracks the last memory-system interaction per line for one core. */
class MissStatusTracker
{
  public:
    MissStatusTracker() = default;

    /**
     * @param expected_lines pre-sizes the per-line event map (a small
     *        multiple of the core's L1 capacity bounds the lines a
     *        core loses and re-misses in steady state) so the hot
     *        record/classify path does not rehash repeatedly.
     */
    explicit MissStatusTracker(std::size_t expected_lines)
    {
        last_.reserve(expected_lines);
    }

    /** Last interaction of this core with a line it does not hold. */
    enum class LastEvent : std::uint8_t {
        None,           //!< never touched: next miss is Cold
        Evicted,        //!< capacity/conflict victim: next miss Capacity
        Invalidated,    //!< killed by another core: next miss Sharing
        RemoteAccessed, //!< serviced as word access: next miss Word
    };

    /**
     * Classify a miss to @p line.
     *
     * @param line             the missing line
     * @param is_write         exclusive request?
     * @param present_read_only line is in the L1 in state S (upgrade)
     * @return the paper's miss type for this miss
     */
    MissType
    classify(LineAddr line, bool is_write, bool present_read_only) const
    {
        if (is_write && present_read_only)
            return MissType::Upgrade;
        const LastEvent *ev = last_.find(line);
        if (ev == nullptr)
            return MissType::Cold;
        switch (*ev) {
          case LastEvent::Evicted: return MissType::Capacity;
          case LastEvent::Invalidated: return MissType::Sharing;
          case LastEvent::RemoteAccessed: return MissType::Word;
          default: return MissType::Cold;
        }
    }

    /** Record that the line was evicted from this core's L1. */
    void onEviction(LineAddr line) { last_[line] = LastEvent::Evicted; }

    /** Record that the line was invalidated (or downgraded) remotely. */
    void
    onInvalidation(LineAddr line)
    {
        last_[line] = LastEvent::Invalidated;
    }

    /** Record that the line was serviced as a remote word access. */
    void
    onRemoteAccess(LineAddr line)
    {
        last_[line] = LastEvent::RemoteAccessed;
    }

    /** Number of tracked lines (test helper). */
    std::size_t trackedLines() const { return last_.size(); }

  private:
    // Flat open-addressing map: classify/record run on every L1 miss
    // and eviction, so per-node allocation and bucket-pointer chasing
    // are off the table (see sim/flat_map.hh).
    FlatAddrMap<LastEvent> last_;
};

} // namespace lacc

#endif // LACC_CACHE_MISS_STATUS_HH
