#include "cache/miss_status.hh"

// MissStatusTracker is header-only; translation unit anchors the build.
