#include "cache/set_assoc.hh"

// SetAssocCache is a header-only template; this translation unit exists
// to anchor the module in the build and to instantiate the common
// configurations once for compile-time checking.

namespace lacc {

template class SetAssocCache<L1Meta, false>;

} // namespace lacc
