/**
 * @file
 * Generic set-associative cache array with true-LRU replacement.
 *
 * Both the private L1 caches and the shared L2 slices are built on this
 * template; they differ only in their per-line metadata payload. Data
 * words (64-bit) are stored per line so the simulator moves real values
 * through the protocol and can be checked functionally, mirroring the
 * paper's use of Graphite's functionally-correct memory system (§4.1).
 *
 * Memory layout: structure-of-arrays. The tag store lives in flat
 * parallel arrays (valid / tag / lastAccess / meta) so the hot scans —
 * find(), victimFor(), hasInvalidWay(), minLastAccess() — touch only
 * the contiguous words they need instead of striding over full
 * entries, and line data lives in one per-cache arena indexed by
 * (set, way), so constructing a cache performs a fixed handful of
 * allocations instead of one heap vector per line. Callers address an
 * individual line through the lightweight Entry handle (cache pointer
 * + slot index) returned by find()/victimFor().
 */

#ifndef LACC_CACHE_SET_ASSOC_HH
#define LACC_CACHE_SET_ASSOC_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace lacc {

/** MESI-style state of a line in a private L1 cache. */
enum class L1State : std::uint8_t { Invalid, Shared, Exclusive, Modified };

/**
 * Meta reset applied by SetAssocCache::invalidate. The default is a
 * plain value reset; meta types that own reusable allocations (the L2
 * directory meta's classifier state, protocol/dir_entry.hh) provide
 * an overload found by ADL that clears protocol state while keeping
 * the allocations for the next fill.
 */
template <typename Meta>
inline void
resetCacheMeta(Meta &m)
{
    m = Meta{};
}

/** Human-readable name for an L1State. */
inline const char *
l1StateName(L1State s)
{
    switch (s) {
      case L1State::Invalid: return "I";
      case L1State::Shared: return "S";
      case L1State::Exclusive: return "E";
      case L1State::Modified: return "M";
      default: return "?";
    }
}

/**
 * A set-associative array of cache lines with payload Meta.
 *
 * @tparam Meta     per-line metadata (state machine owned by the caller)
 * @tparam kHashSet if true, the set index is a hash of the line address
 *                  (used by L2 slices, where home interleaving would
 *                  otherwise leave set-index bits degenerate)
 */
template <typename Meta, bool kHashSet = false>
class SetAssocCache
{
  public:
    /**
     * Handle to one (set, way) slot of the structure-of-arrays tag
     * store. Copyable and cheap (pointer + index); a
     * default-constructed handle is "null" (find() miss) and tests
     * false. Accessors read/write the cache's parallel arrays; words()
     * exposes this line's wordsPerLine()-sized slice of the data
     * arena.
     */
    class Entry
    {
      public:
        Entry() = default;

        /** True for a handle that refers to a slot (find() hit). */
        explicit operator bool() const { return c_ != nullptr; }

        /** Handles are equal when they name the same slot. */
        bool operator==(const Entry &o) const
        {
            return c_ == o.c_ && i_ == o.i_;
        }
        bool operator!=(const Entry &o) const { return !(*this == o); }

        bool valid() const { return c_->valid_[i_] != 0; }
        void setValid(bool v) { c_->valid_[i_] = v ? 1 : 0; }

        LineAddr tag() const { return c_->tags_[i_]; }
        void setTag(LineAddr t) { c_->tags_[i_] = t; }

        Cycle lastAccess() const { return c_->lastAccess_[i_]; }
        void setLastAccess(Cycle t) { c_->lastAccess_[i_] = t; }

        Meta &meta() const { return c_->meta_[i_]; }

        /** This line's slice of the data arena (wordsPerLine() long). */
        std::uint64_t *
        words() const
        {
            return c_->words_.data() +
                   static_cast<std::size_t>(i_) * c_->wordsPerLine_;
        }

        std::uint32_t wordsPerLine() const { return c_->wordsPerLine_; }

        /** Copy one line of data (wordsPerLine() words) into the arena. */
        void
        fillWords(const std::uint64_t *src) const
        {
            std::copy_n(src, c_->wordsPerLine_, words());
        }

        /** Zero this line's slice of the arena. */
        void
        clearWords() const
        {
            std::fill_n(words(), c_->wordsPerLine_, std::uint64_t{0});
        }

      private:
        friend class SetAssocCache;
        Entry(SetAssocCache *c, std::size_t i) : c_(c), i_(i) {}

        SetAssocCache *c_ = nullptr;
        std::size_t i_ = 0;
    };

    /**
     * @param sets           number of sets (power of two)
     * @param assoc          ways per set
     * @param words_per_line 64-bit words stored per line
     */
    SetAssocCache(std::uint32_t sets, std::uint32_t assoc,
                  std::uint32_t words_per_line)
        : sets_(sets), assoc_(assoc), wordsPerLine_(words_per_line),
          valid_(static_cast<std::size_t>(sets) * assoc, 0),
          tags_(static_cast<std::size_t>(sets) * assoc, 0),
          lastAccess_(static_cast<std::size_t>(sets) * assoc, 0),
          meta_(static_cast<std::size_t>(sets) * assoc),
          words_(static_cast<std::size_t>(sets) * assoc * words_per_line,
                 0)
    {
        if (sets == 0 || (sets & (sets - 1)) != 0)
            fatal("cache sets (%u) must be a power of two", sets);
    }

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t wordsPerLine() const { return wordsPerLine_; }

    /** Set index for a line address. */
    std::uint32_t
    setIndex(LineAddr line) const
    {
        if constexpr (kHashSet)
            return static_cast<std::uint32_t>(mixLineAddr(line) &
                                              (sets_ - 1));
        else
            return static_cast<std::uint32_t>(line & (sets_ - 1));
    }

    /** @return a handle to the slot holding @p line, or a null handle.
     *  No LRU update. Scans only the tag/valid arrays. */
    Entry
    find(LineAddr line) const
    {
        const std::size_t base =
            static_cast<std::size_t>(setIndex(line)) * assoc_;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (tags_[base + w] == line && valid_[base + w])
                return Entry{self(), base + w};
        }
        return Entry{};
    }

    /**
     * Select the fill victim for @p line: an invalid way if present,
     * else the valid way with the oldest lastAccess (true LRU).
     * The caller is responsible for handling the victim's contents
     * before overwriting (eviction notification, write-back).
     */
    Entry
    victimFor(LineAddr line) const
    {
        const std::size_t base =
            static_cast<std::size_t>(setIndex(line)) * assoc_;
        std::size_t lru = base;
        bool have_lru = false;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (!valid_[base + w])
                return Entry{self(), base + w};
            if (!have_lru ||
                lastAccess_[base + w] < lastAccess_[lru]) {
                lru = base + w;
                have_lru = true;
            }
        }
        return Entry{self(), lru};
    }

    /** @return true if the set holding @p line has an invalid way. */
    bool
    hasInvalidWay(LineAddr line) const
    {
        const std::size_t base =
            static_cast<std::size_t>(setIndex(line)) * assoc_;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (!valid_[base + w])
                return true;
        }
        return false;
    }

    /**
     * Minimum lastAccess among valid lines in the set holding @p line;
     * 0 if the set is empty. Used for the Timestamp check (§3.2): the
     * minimum is communicated to the L2 home on every L1 miss.
     */
    Cycle
    minLastAccess(LineAddr line) const
    {
        const std::size_t base =
            static_cast<std::size_t>(setIndex(line)) * assoc_;
        Cycle min_t = kNeverCycle;
        bool any = false;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (valid_[base + w]) {
                any = true;
                if (lastAccess_[base + w] < min_t)
                    min_t = lastAccess_[base + w];
            }
        }
        return any ? min_t : 0;
    }

    /** Reset an entry to invalid (metadata reset via resetCacheMeta). */
    void
    invalidate(Entry e)
    {
        e.setValid(false);
        e.setTag(0);
        e.setLastAccess(0);
        resetCacheMeta(e.meta());
        e.clearWords();
    }

    /** Apply @p fn to an Entry handle for every slot (valid or not). */
    template <typename F>
    void
    forEach(F &&fn)
    {
        const std::size_t n = valid_.size();
        for (std::size_t i = 0; i < n; ++i)
            fn(Entry{this, i});
    }

    /** Count of currently valid entries (test helper). */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const auto v : valid_)
            n += v != 0;
        return n;
    }

    /** Handle to the slot at (@p set, @p way). */
    Entry
    entryAt(std::uint32_t set, std::uint32_t way) const
    {
        return Entry{self(),
                     static_cast<std::size_t>(set) * assoc_ + way};
    }

  private:
    /**
     * Handles mutate the arrays through a non-const cache pointer;
     * lookups from a const cache are morally non-mutating (no LRU
     * update), so the const_cast here mirrors the classic
     * const-find-via-non-const idiom without duplicating every scan.
     */
    SetAssocCache *
    self() const
    {
        return const_cast<SetAssocCache *>(this);
    }

    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::uint32_t wordsPerLine_;

    // Parallel tag-store arrays (index = set * assoc + way).
    std::vector<std::uint8_t> valid_;
    std::vector<LineAddr> tags_;
    std::vector<Cycle> lastAccess_;
    std::vector<Meta> meta_;
    /** Line-data arena: slot i owns words [i*wpl, (i+1)*wpl). */
    std::vector<std::uint64_t> words_;
};

/**
 * Saturation cap of the per-line private utilization counter (finite
 * width in hardware).
 */
constexpr std::uint32_t kPrivateUtilCap = 0xFFFF;

/** Per-line metadata of a private L1 cache (Fig 5 tag extension). */
struct L1Meta
{
    L1State state = L1State::Invalid;
    /**
     * Private utilization counter (Fig 5): number of times the line was
     * used (read or written) since it was brought in. Initialized to 1
     * on fill, incremented on every subsequent hit.
     */
    std::uint32_t privateUtil = 0;
};

/** Private L1 cache (instruction or data). */
using L1Cache = SetAssocCache<L1Meta, false>;

} // namespace lacc

#endif // LACC_CACHE_SET_ASSOC_HH
