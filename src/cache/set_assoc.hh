/**
 * @file
 * Generic set-associative cache array with true-LRU replacement.
 *
 * Both the private L1 caches and the shared L2 slices are built on this
 * template; they differ only in their per-line metadata payload. Data
 * words (64-bit) are stored per line so the simulator moves real values
 * through the protocol and can be checked functionally, mirroring the
 * paper's use of Graphite's functionally-correct memory system (§4.1).
 */

#ifndef LACC_CACHE_SET_ASSOC_HH
#define LACC_CACHE_SET_ASSOC_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/log.hh"
#include "sim/types.hh"

namespace lacc {

/** MESI-style state of a line in a private L1 cache. */
enum class L1State : std::uint8_t { Invalid, Shared, Exclusive, Modified };

/** Human-readable name for an L1State. */
inline const char *
l1StateName(L1State s)
{
    switch (s) {
      case L1State::Invalid: return "I";
      case L1State::Shared: return "S";
      case L1State::Exclusive: return "E";
      case L1State::Modified: return "M";
      default: return "?";
    }
}

/** Mixes line-address bits so interleaved homes do not alias L2 sets. */
inline std::uint64_t
mixLineAddr(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

/**
 * A set-associative array of cache lines with payload Meta.
 *
 * @tparam Meta     per-line metadata (state machine owned by the caller)
 * @tparam kHashSet if true, the set index is a hash of the line address
 *                  (used by L2 slices, where home interleaving would
 *                  otherwise leave set-index bits degenerate)
 */
template <typename Meta, bool kHashSet = false>
class SetAssocCache
{
  public:
    /** One tag-store entry. */
    struct Entry
    {
        bool valid = false;
        LineAddr tag = 0;          //!< full line address
        Cycle lastAccess = 0;      //!< LRU + timestamp-check state
        Meta meta{};
        std::vector<std::uint64_t> words; //!< functional data
    };

    /**
     * @param sets           number of sets (power of two)
     * @param assoc          ways per set
     * @param words_per_line 64-bit words stored per line
     */
    SetAssocCache(std::uint32_t sets, std::uint32_t assoc,
                  std::uint32_t words_per_line)
        : sets_(sets), assoc_(assoc), wordsPerLine_(words_per_line),
          entries_(static_cast<std::size_t>(sets) * assoc)
    {
        if (sets == 0 || (sets & (sets - 1)) != 0)
            fatal("cache sets (%u) must be a power of two", sets);
        for (auto &e : entries_)
            e.words.assign(wordsPerLine_, 0);
    }

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t wordsPerLine() const { return wordsPerLine_; }

    /** Set index for a line address. */
    std::uint32_t
    setIndex(LineAddr line) const
    {
        if constexpr (kHashSet)
            return static_cast<std::uint32_t>(mixLineAddr(line) &
                                              (sets_ - 1));
        else
            return static_cast<std::uint32_t>(line & (sets_ - 1));
    }

    /** @return the entry holding @p line, or nullptr. No LRU update. */
    Entry *
    find(LineAddr line)
    {
        const std::uint32_t set = setIndex(line);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            Entry &e = entryAt(set, w);
            if (e.valid && e.tag == line)
                return &e;
        }
        return nullptr;
    }

    const Entry *
    find(LineAddr line) const
    {
        return const_cast<SetAssocCache *>(this)->find(line);
    }

    /**
     * Select the fill victim for @p line: an invalid way if present,
     * else the valid way with the oldest lastAccess (true LRU).
     * The caller is responsible for handling the victim's contents
     * before overwriting (eviction notification, write-back).
     */
    Entry &
    victimFor(LineAddr line)
    {
        const std::uint32_t set = setIndex(line);
        Entry *lru = nullptr;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            Entry &e = entryAt(set, w);
            if (!e.valid)
                return e;
            if (lru == nullptr || e.lastAccess < lru->lastAccess)
                lru = &e;
        }
        return *lru;
    }

    /** @return true if the set holding @p line has an invalid way. */
    bool
    hasInvalidWay(LineAddr line) const
    {
        const std::uint32_t set = setIndex(line);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (!entryAt(set, w).valid)
                return true;
        }
        return false;
    }

    /**
     * Minimum lastAccess among valid lines in the set holding @p line;
     * 0 if the set is empty. Used for the Timestamp check (§3.2): the
     * minimum is communicated to the L2 home on every L1 miss.
     */
    Cycle
    minLastAccess(LineAddr line) const
    {
        const std::uint32_t set = setIndex(line);
        Cycle min_t = kNeverCycle;
        bool any = false;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            const Entry &e = entryAt(set, w);
            if (e.valid) {
                any = true;
                if (e.lastAccess < min_t)
                    min_t = e.lastAccess;
            }
        }
        return any ? min_t : 0;
    }

    /** Reset an entry to invalid (metadata reset to default). */
    void
    invalidate(Entry &e)
    {
        e.valid = false;
        e.tag = 0;
        e.lastAccess = 0;
        e.meta = Meta{};
        std::fill(e.words.begin(), e.words.end(), 0);
    }

    /** Apply @p fn to every entry (valid or not). */
    template <typename F>
    void
    forEach(F &&fn)
    {
        for (auto &e : entries_)
            fn(e);
    }

    /** Count of currently valid entries (test helper). */
    std::uint64_t
    validCount() const
    {
        std::uint64_t n = 0;
        for (const auto &e : entries_)
            if (e.valid)
                ++n;
        return n;
    }

    Entry &
    entryAt(std::uint32_t set, std::uint32_t way)
    {
        return entries_[static_cast<std::size_t>(set) * assoc_ + way];
    }

    const Entry &
    entryAt(std::uint32_t set, std::uint32_t way) const
    {
        return entries_[static_cast<std::size_t>(set) * assoc_ + way];
    }

  private:
    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::uint32_t wordsPerLine_;
    std::vector<Entry> entries_;
};

/**
 * Saturation cap of the per-line private utilization counter (finite
 * width in hardware).
 */
constexpr std::uint32_t kPrivateUtilCap = 0xFFFF;

/** Per-line metadata of a private L1 cache (Fig 5 tag extension). */
struct L1Meta
{
    L1State state = L1State::Invalid;
    /**
     * Private utilization counter (Fig 5): number of times the line was
     * used (read or written) since it was brought in. Initialized to 1
     * on fill, incremented on every subsequent hit.
     */
    std::uint32_t privateUtil = 0;
};

/** Private L1 cache (instruction or data). */
using L1Cache = SetAssocCache<L1Meta, false>;

} // namespace lacc

#endif // LACC_CACHE_SET_ASSOC_HH
