#include "system/tile.hh"

// Tile is header-only; translation unit anchors the build and
// instantiates the L2 template configuration.

namespace lacc {

template class SetAssocCache<L2Meta, true>;

} // namespace lacc
