#include "system/sharded.hh"

#include <algorithm>

#include "energy/model.hh"
#include "sim/config.hh"
#include "sim/log.hh"
#include "sim/profiler.hh"
#include "system/multicore.hh"
#include "system/tile.hh"
#include "workload/workload.hh"

namespace lacc {

namespace {

/** Ops examined per scanCore() call before yielding. */
constexpr std::uint64_t kScanCap = 256;

/** Per-core cap on annotated-but-uncommitted local ops. */
constexpr std::size_t kMaxAnnotations = 8192;

} // namespace

void
ShardedEngine::run(Workload &workload)
{
    if (!workload.concurrentNextSafe()) {
        warn("workload '%s': next() is not concurrent-safe; the "
             "sharded engine is running it serially",
             workload.name().c_str());
        fallback_ = std::make_unique<SerialEngine>(m_);
        fallback_->run(workload);
        return;
    }

    const std::uint32_t n = m_.cfg_.numCores;
    nWorkers_ = std::min(std::max(threads_, 1u), n);
    cores_.assign(n, CoreScan{});
    // Per-worker energy slots (slot 0 stays with the drain thread);
    // the counters are integers, so the merged totals are exact.
    m_.energy_.setSlots(nWorkers_ + 1);

    workers_.reserve(nWorkers_);
    for (std::uint32_t w = 0; w < nWorkers_; ++w)
        workers_.emplace_back(&ShardedEngine::workerMain, this, w);

    for (;;) {
        if (m_.watchdogExpired())
            break; // Multicore::run turns this into RunAbort(Timeout)
        runJob(Job::Scan);
        computeH();
        if (haveH_)
            runJob(Job::Commit);
        if (!drain())
            break;
    }

    runJob(Job::Exit);
    for (auto &t : workers_)
        t.join();
    workers_.clear();
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

void
ShardedEngine::runJob(Job j)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_ = j;
        jobRemaining_ = nWorkers_;
        ++jobEpoch_;
        inParallelPhase_ = j == Job::Scan || j == Job::Commit;
    }
    cvWork_.notify_all();
    std::unique_lock<std::mutex> lk(mu_);
    cvDone_.wait(lk, [&] { return jobRemaining_ == 0; });
    inParallelPhase_ = false;
}

void
ShardedEngine::workerMain(std::uint32_t w)
{
    EnergyModel::bindThreadSlot(w + 1);
    const std::uint32_t n = m_.cfg_.numCores;
    std::uint64_t seen = 0;
    for (;;) {
        Job j;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvWork_.wait(lk, [&] { return jobEpoch_ != seen; });
            seen = jobEpoch_;
            j = job_;
        }
        if (j != Job::Exit) {
            for (std::uint32_t c = w; c < n; c += nWorkers_) {
                CoreScan &cs = cores_[c];
                if (j == Job::Scan) {
                    if (cs.st == St::NeedsScan ||
                        (cs.st == St::Ready && !cs.parked))
                        scanCore(static_cast<CoreId>(c));
                } else {
                    commitCore(static_cast<CoreId>(c));
                }
            }
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            --jobRemaining_;
        }
        cvDone_.notify_one();
        if (j == Job::Exit)
            return;
    }
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

bool
ShardedEngine::virtualWalk(const Tile &tl, std::uint32_t &vline,
                           std::uint32_t &vinstr, std::uint64_t n,
                           std::uint32_t fp) const
{
    if (fp == 0)
        return true;
    // Mirrors Multicore::advanceInstructions, without side effects: a
    // wrap-around visits every footprint line, so at most fp lines
    // need a residency probe.
    const std::uint32_t instrs_per_line = m_.cfg_.lineSize / 4;
    const std::uint64_t total = vinstr + n;
    const std::uint64_t crossings = total / instrs_per_line;
    const Addr code = m_.workload_->codeBase();
    const std::uint64_t checks = std::min<std::uint64_t>(crossings, fp);
    std::uint32_t probe = vline;
    for (std::uint64_t k = 0; k < checks; ++k) {
        probe = (probe + 1) % fp;
        const Addr addr =
            code + static_cast<Addr>(probe) * m_.cfg_.lineSize;
        if (!tl.l1i.find(m_.addr_.lineOf(addr)))
            return false;
    }
    vline = static_cast<std::uint32_t>((vline + crossings) % fp);
    vinstr = static_cast<std::uint32_t>(total % instrs_per_line);
    return true;
}

std::uint64_t
ShardedEngine::scanCore(CoreId c)
{
    CoreScan &cs = cores_[c];
    Tile &tl = *m_.tiles_[c];
    if (cs.st == St::NeedsScan) {
        if (tl.status != CoreStatus::Runnable)
            panic("sharded scan: core %u is not runnable", c);
        if (!cs.keys.empty())
            panic("sharded scan: core %u carries stale annotations", c);
        cs.vTime = tl.now;
        cs.vIfetchLine = tl.ifetchLine;
        cs.vInstrInLine = tl.instrInLine;
        cs.st = St::Ready;
        cs.parked = false;
    }

    Workload &w = *m_.workload_;
    const std::uint32_t fp = w.iFootprintLines(c);
    std::uint64_t examined = 0;
    while (examined < kScanCap && cs.keys.size() < kMaxAnnotations) {
        if (cs.keys.size() >= tl.pending.size()) {
            prof::Scope ps(prof::Workload);
            tl.pending.push_back(w.next(c));
        }
        const MemOp &op = tl.pending[cs.keys.size()];
        ++examined;

        bool local = false;
        Cycle advance = 0;
        std::uint32_t wline = cs.vIfetchLine;
        std::uint32_t winstr = cs.vInstrInLine;
        switch (op.kind) {
          case MemOp::Kind::Read:
          case MemOp::Kind::Write: {
            if (!virtualWalk(tl, wline, winstr, 1, fp))
                break;
            const auto e = tl.l1d.find(m_.addr_.lineOf(op.addr));
            const bool writable =
                e && (e.meta().state == L1State::Exclusive ||
                      e.meta().state == L1State::Modified);
            if (e && (op.kind != MemOp::Kind::Write || writable)) {
                local = true;
                advance = m_.cfg_.l1Latency;
            }
            break;
          }
          case MemOp::Kind::IFetch:
            if (tl.l1i.find(m_.addr_.lineOf(op.addr))) {
                local = true;
                advance = m_.cfg_.l1Latency;
            }
            break;
          case MemOp::Kind::Compute:
            if (virtualWalk(tl, wline, winstr, op.count, fp)) {
                local = true;
                advance = op.count;
            }
            break;
          default:
            // Barrier, lock ops, and Done always reach shared state.
            break;
        }

        if (!local) {
            cs.parked = true;
            cs.bound = cs.vTime;
            return examined;
        }
        cs.keys.push_back(cs.vTime);
        cs.vIfetchLine = wline;
        cs.vInstrInLine = winstr;
        cs.vTime += advance;
    }
    cs.bound = cs.vTime; // exhausted: frontier not yet classified
    return examined;
}

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

void
ShardedEngine::computeH()
{
    haveH_ = false;
    hTime_ = 0;
    hCore_ = 0;
    const std::uint32_t n = m_.cfg_.numCores;
    for (std::uint32_t c = 0; c < n; ++c) {
        const CoreScan &cs = cores_[c];
        // Blocked cores wake at or after the (future) global that
        // releases them, which itself orders at or after every
        // candidate horizon — they cannot lower H.
        if (cs.st == St::Blocked || cs.st == St::Finished)
            continue;
        if (!haveH_ || keyLess(cs.bound, static_cast<CoreId>(c),
                               hTime_, hCore_)) {
            haveH_ = true;
            hTime_ = cs.bound;
            hCore_ = static_cast<CoreId>(c);
        }
    }
}

void
ShardedEngine::commitOne(CoreId c, CoreScan &cs)
{
    Tile &tl = *m_.tiles_[c];
    const Cycle k = cs.keys.front();
    cs.keys.pop_front();
    if (tl.now != k)
        panic("sharded scan divergence: core %u local op predicted at "
              "cycle %llu, tile clock at %llu",
              c, static_cast<unsigned long long>(k),
              static_cast<unsigned long long>(tl.now));
    if (tl.pending.empty())
        panic("sharded commit: annotated op missing from core %u", c);
    const MemOp op = tl.pending.front();
    tl.pending.pop_front();
    m_.step(c, op);
}

void
ShardedEngine::commitCore(CoreId c)
{
    CoreScan &cs = cores_[c];
    if (cs.st != St::Ready)
        return;
    while (!cs.keys.empty() &&
           keyLess(cs.keys.front(), c, hTime_, hCore_))
        commitOne(c, cs);
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

void
ShardedEngine::flushAnnotated(CoreId c, Cycle t, CoreId tie)
{
    CoreScan &cs = cores_[c];
    flushing_ = true;
    while (!cs.keys.empty() && keyLess(cs.keys.front(), c, t, tie))
        commitOne(c, cs);
    flushing_ = false;
}

void
ShardedEngine::executeGlobal(CoreId c)
{
    CoreScan &cs = cores_[c];
    Tile &tl = *m_.tiles_[c];
    if (tl.status != CoreStatus::Runnable)
        panic("sharded drain: scheduled core %u is not runnable", c);
    gTime_ = cs.bound;
    gCore_ = c;

    // The core's remaining annotated locals all order before its own
    // global (per-core FIFO): execute them now.
    flushing_ = true;
    while (!cs.keys.empty())
        commitOne(c, cs);
    flushing_ = false;
    if (tl.now != gTime_)
        panic("sharded scan divergence: core %u global predicted at "
              "cycle %llu, tile clock at %llu",
              c, static_cast<unsigned long long>(gTime_),
              static_cast<unsigned long long>(tl.now));
    if (tl.pending.empty())
        panic("sharded drain: parked global missing from core %u", c);

    const MemOp op = tl.pending.front();
    tl.pending.pop_front();
    cs.parked = false;
    cs.st = St::NeedsScan;
    cs.scheduled = false;
    m_.step(c, op);

    if (tl.status == CoreStatus::Finished)
        cs.st = St::Finished;
    else if (!cs.scheduled)
        cs.st = St::Blocked;
    // else: onSchedule already marked it NeedsScan with a fresh bound.
}

bool
ShardedEngine::drain()
{
    const std::uint32_t n = m_.cfg_.numCores;
    // Bound the serial work per drain so the parallel phases get to
    // commit the accumulating annotations regularly.
    const std::uint64_t debt_cap = 4096 + 64ull * n;
    std::uint64_t debt = 0;
    for (;;) {
        if (m_.watchdogExpired())
            return true; // run() loop re-checks and exits

        // Next event candidates: the earliest parked global, and the
        // earliest unclassified scan frontier (which could still hide
        // an earlier global).
        bool have_s = false, have_g = false;
        Cycle s_t = 0, g_t = 0;
        CoreId s_c = 0, g_c = 0;
        for (std::uint32_t c = 0; c < n; ++c) {
            const CoreScan &cs = cores_[c];
            if (cs.st == St::Blocked || cs.st == St::Finished)
                continue;
            const auto cid = static_cast<CoreId>(c);
            if (cs.st == St::Ready && cs.parked) {
                if (!have_g || keyLess(cs.bound, cid, g_t, g_c)) {
                    have_g = true;
                    g_t = cs.bound;
                    g_c = cid;
                }
            } else {
                if (!have_s || keyLess(cs.bound, cid, s_t, s_c)) {
                    have_s = true;
                    s_t = cs.bound;
                    s_c = cid;
                }
            }
        }

        if (have_s && (!have_g || keyLess(s_t, s_c, g_t, g_c))) {
            debt += scanCore(s_c);
            if (debt >= debt_cap)
                return true;
            continue;
        }
        if (!have_g)
            return false; // quiescent: finished (or deadlocked)
        executeGlobal(g_c);
        debt += 16;
        if (debt >= debt_cap)
            return true;
    }
}

// ---------------------------------------------------------------------------
// Engine hooks
// ---------------------------------------------------------------------------

void
ShardedEngine::onSchedule(CoreId c, Cycle t)
{
    if (fallback_) {
        fallback_->onSchedule(c, t);
        return;
    }
    if (inParallelPhase_)
        return; // commit replays pops the scan already accounted for
    if (c >= cores_.size())
        return; // not running (testAccess-style direct protocol use)
    CoreScan &cs = cores_[c];
    cs.scheduled = true;
    cs.parked = false;
    cs.st = St::NeedsScan;
    cs.bound = t;
}

void
ShardedEngine::onCrossTileTouch(CoreId c)
{
    if (fallback_ || c >= cores_.size())
        return;
    CoreScan &cs = cores_[c];
    // Blocked/Finished/NeedsScan cores carry no annotations; their
    // next scan sees the post-touch tile state.
    if (cs.st != St::Ready)
        return;
    // Annotated locals ordering before the in-flight global stay
    // valid (the touch has not happened yet at their simulated time):
    // execute them now. Everything after is stale — the ops remain in
    // the pending queue for a fresh scan.
    flushAnnotated(c, gTime_, gCore_);
    cs.keys.clear();
    cs.parked = false;
    cs.st = St::NeedsScan;
    cs.bound = m_.tiles_[c]->now;
}

void
ShardedEngine::onDirectoryRequest(CoreId c)
{
    if (fallback_)
        return;
    if (inParallelPhase_)
        panic("sharded commit divergence: core %u reached the "
              "directory during a parallel phase", c);
    if (flushing_)
        panic("sharded flush divergence: core %u's annotated op "
              "reached the directory", c);
}

} // namespace lacc
