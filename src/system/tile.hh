/**
 * @file
 * One tile of the multicore (Fig 3): compute pipeline state, private
 * L1-I and L1-D caches, an L2 slice with the integrated directory, and
 * per-core statistics. The network router is shared infrastructure
 * (net/network.hh, a factory-built NetworkModel — 2-D mesh by
 * default); the directory state machine lives in the
 * protocol layer (protocol/base.hh), which owns every mutation of the
 * L2Meta directory entries embedded here.
 */

#ifndef LACC_SYSTEM_TILE_HH
#define LACC_SYSTEM_TILE_HH

#include <cstdint>
#include <deque>

#include "cache/miss_status.hh"
#include "cache/set_assoc.hh"
#include "protocol/dir_entry.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "workload/workload.hh"

namespace lacc {

/** Execution status of a core. */
enum class CoreStatus : std::uint8_t {
    Runnable,
    BlockedBarrier,
    BlockedLock,
    Finished,
};

/** One tile: core front-end state + caches + stats. */
class Tile
{
  public:
    Tile(CoreId id, const SystemConfig &cfg)
        : id(id),
          l1i(cfg.l1iSets(), cfg.l1iAssoc, cfg.wordsPerLine()),
          l1d(cfg.l1dSets(), cfg.l1dAssoc, cfg.wordsPerLine()),
          l2(cfg.l2Sets(), cfg.l2Assoc, cfg.wordsPerLine()),
          // Pre-size the miss-taxonomy map: a small multiple of this
          // core's L1 capacity bounds the lines it loses and
          // re-misses in steady state.
          missTracker((static_cast<std::size_t>(cfg.l1dSets()) *
                           cfg.l1dAssoc +
                       static_cast<std::size_t>(cfg.l1iSets()) *
                           cfg.l1iAssoc) *
                      4)
    {}

    const CoreId id;

    // ---- Memory hierarchy ------------------------------------------------
    L1Cache l1i;
    L1Cache l1d;
    L2Cache l2;
    MissStatusTracker missTracker; //!< data-miss taxonomy (§4.4)

    // ---- Core front-end ----------------------------------------------------
    Cycle now = 0;                //!< local clock (lax synchronization)
    CoreStatus status = CoreStatus::Runnable;
    std::deque<MemOp> pending;    //!< injected ops (lock handoffs ...)

    // Instruction-stream walker (see Multicore::advanceInstructions).
    std::uint32_t ifetchLine = 0;   //!< index into the code footprint
    std::uint32_t instrInLine = 0;  //!< instructions since line start

    CoreStats stats;
};

} // namespace lacc

#endif // LACC_SYSTEM_TILE_HH
