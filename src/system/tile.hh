/**
 * @file
 * One tile of the multicore (Fig 3): compute pipeline state, private
 * L1-I and L1-D caches, an L2 slice with the integrated directory, and
 * per-core statistics. The network router is shared infrastructure
 * (net/MeshNetwork); the directory state machine lives in
 * system/Multicore.
 */

#ifndef LACC_SYSTEM_TILE_HH
#define LACC_SYSTEM_TILE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cache/miss_status.hh"
#include "cache/set_assoc.hh"
#include "core/classifier.hh"
#include "dir/sharer_list.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "workload/workload.hh"

namespace lacc {

/** Directory-visible state of an L2 line. */
enum class DirState : std::uint8_t {
    Uncached,  //!< no L1 holds a copy
    Shared,    //!< >= 1 read-only L1 copies
    Exclusive, //!< one L1 holds an E or M copy (owner)
};

/** Human-readable name for a DirState. */
inline const char *
dirStateName(DirState s)
{
    switch (s) {
      case DirState::Uncached: return "U";
      case DirState::Shared: return "S";
      case DirState::Exclusive: return "E";
      default: return "?";
    }
}

/**
 * Per-line metadata of an L2 slice: directory entry (Fig 6/7) plus
 * simulator bookkeeping.
 */
struct L2Meta
{
    DirState dstate = DirState::Uncached;
    CoreId owner = kInvalidCore;   //!< valid iff dstate == Exclusive
    SharerList sharers;            //!< protocol sharer tracking
    /**
     * Ground-truth holder identities (which L1s hold a copy). The
     * protocol's SharerList may hide identities in ACKwise overflow
     * mode; the simulator uses this oracle for invalidation *timing*
     * (acks physically come from the actual holders) while protocol
     * decisions (unicast vs broadcast, ack counts) use the SharerList.
     */
    std::vector<CoreId> holders;
    std::unique_ptr<LineClassifierState> cls; //!< locality records
    Cycle busyUntil = 0;           //!< per-line serialization window
    bool dirty = false;            //!< L2 copy newer than DRAM
};

/** L2 slice array: hashed set index (see SetAssocCache). */
using L2Cache = SetAssocCache<L2Meta, true>;

/** Execution status of a core. */
enum class CoreStatus : std::uint8_t {
    Runnable,
    BlockedBarrier,
    BlockedLock,
    Finished,
};

/** One tile: core front-end state + caches + stats. */
class Tile
{
  public:
    Tile(CoreId id, const SystemConfig &cfg)
        : id(id),
          l1i(cfg.l1iSets(), cfg.l1iAssoc, cfg.wordsPerLine()),
          l1d(cfg.l1dSets(), cfg.l1dAssoc, cfg.wordsPerLine()),
          l2(cfg.l2Sets(), cfg.l2Assoc, cfg.wordsPerLine())
    {}

    const CoreId id;

    // ---- Memory hierarchy ------------------------------------------------
    L1Cache l1i;
    L1Cache l1d;
    L2Cache l2;
    MissStatusTracker missTracker; //!< data-miss taxonomy (§4.4)

    // ---- Core front-end ----------------------------------------------------
    Cycle now = 0;                //!< local clock (lax synchronization)
    CoreStatus status = CoreStatus::Runnable;
    std::deque<MemOp> pending;    //!< injected ops (lock handoffs ...)

    // Instruction-stream walker (see Multicore::runCompute).
    std::uint32_t ifetchLine = 0;   //!< index into the code footprint
    std::uint32_t instrInLine = 0;  //!< instructions since line start

    CoreStats stats;
};

} // namespace lacc

#endif // LACC_SYSTEM_TILE_HH
