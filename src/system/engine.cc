#include "system/engine.hh"

#include <algorithm>

#include "sim/config.hh"
#include "sim/log.hh"
#include "sim/named_registry.hh"
#include "sim/profiler.hh"
#include "system/multicore.hh"
#include "system/sharded.hh"
#include "system/tile.hh"
#include "workload/workload.hh"

namespace lacc {

void
SerialEngine::run(Workload &workload)
{
    for (std::uint32_t c = 0; c < m_.cfg_.numCores; ++c)
        onSchedule(static_cast<CoreId>(c), 0);

    while (!queue_.empty()) {
        if (m_.watchdogExpired())
            return; // Multicore::run turns this into RunAbort(Timeout)
        const auto [t, c] = queue_.top();
        queue_.pop();
        Tile &tl = *m_.tiles_[c];
        if (tl.status != CoreStatus::Runnable)
            panic("scheduled core %u is not runnable", c);
        tl.now = std::max(tl.now, t);
        MemOp op;
        if (!tl.pending.empty()) {
            op = tl.pending.front();
            tl.pending.pop_front();
        } else {
            prof::Scope ps(prof::Workload);
            op = workload.next(static_cast<CoreId>(c));
        }
        m_.step(static_cast<CoreId>(c), op);
    }
}

namespace {

/**
 * The single registration point: adding an engine means adding one
 * entry here (plus its EngineKind). Lookup and diagnostics come from
 * the shared named-registry helpers.
 */
struct EngineEntry
{
    const char *name;
    EngineKind kind;
    std::unique_ptr<ExecutionEngine> (*make)(const SystemConfig &,
                                             Multicore &);
};

const EngineEntry kEngines[] = {
    {"serial", EngineKind::Serial,
     [](const SystemConfig &,
        Multicore &m) -> std::unique_ptr<ExecutionEngine> {
         return std::make_unique<SerialEngine>(m);
     }},
    {"sharded", EngineKind::Sharded,
     [](const SystemConfig &cfg,
        Multicore &m) -> std::unique_ptr<ExecutionEngine> {
         return std::make_unique<ShardedEngine>(m, cfg.simThreads);
     }},
};

} // namespace

std::unique_ptr<ExecutionEngine>
makeEngine(const SystemConfig &cfg, Multicore &m)
{
    return registry::entryForKind(kEngines, cfg.engineKind, "engine")
        .make(cfg, m);
}

const std::vector<std::string> &
engineNames()
{
    static const std::vector<std::string> names =
        registry::entryNames(kEngines);
    return names;
}

const char *
engineNameFor(const SystemConfig &cfg)
{
    return registry::entryForKind(kEngines, cfg.engineKind, "engine")
        .name;
}

void
applyEngineName(SystemConfig &cfg, const std::string &name)
{
    cfg.engineKind =
        registry::entryForNameOrFatal(kEngines, "engine", name).kind;
}

} // namespace lacc
