/**
 * @file
 * Shared experiment runner for the bench/ binaries: builds a system
 * for a named benchmark and configuration, runs it, and returns the
 * statistics. Centralizes the op-count scaling knob (environment
 * variable LACC_SCALE) so every figure binary honors it.
 */

#ifndef LACC_SYSTEM_EXPERIMENT_HH
#define LACC_SYSTEM_EXPERIMENT_HH

#include <string>

#include "sim/config.hh"
#include "sim/stats.hh"

namespace lacc {

/** Result of one benchmark x configuration simulation. */
struct RunResult
{
    SystemStats stats;
    Cycle completionTime = 0;
    double energyTotal = 0.0;
    std::uint64_t functionalErrors = 0;
    /**
     * Simulated operations retired by the run (per-core instruction
     * counts summed). The throughput numerator of the harness's
     * ops_per_sec metric (schema v2); deterministic for a given
     * (bench, cfg, scale), unlike wall clock.
     */
    std::uint64_t simOps = 0;
    /**
     * Coherence/memory invariant violations found by the post-run
     * verify::checkAll sweep. Only populated for fault-injected runs
     * (schema v3); silent-corruption classification in the faults
     * experiment requires this and functionalErrors to both be zero.
     */
    std::uint64_t verifyViolations = 0;
};

/**
 * Table 1 default configuration (64 cores, ACKwise_4, Limited_3,
 * PCT = 4, RATmax = 16, nRATlevels = 2).
 */
SystemConfig defaultConfig();

/**
 * Op-count scale from the environment (LACC_SCALE, default 1.0).
 * Raise it for higher-fidelity sweeps, lower it for smoke runs.
 */
double opScaleFromEnv();

/**
 * Run a named benchmark (workload/suite.hh) under @p cfg.
 * Functional checking is disabled for speed (data still moves through
 * the protocol; correctness is covered by the test suite) — except
 * for fault-injected runs, which keep every oracle armed and replay
 * verify::checkAll afterwards so silent corruption cannot hide.
 *
 * Throws RunAbort (sim/abort.hh) on watchdog expiry or an
 * unrecoverable injected fault; the harness runner catches it.
 *
 * @param bench      benchmark name
 * @param cfg        system configuration
 * @param op_scale   per-phase access multiplier; <= 0 reads LACC_SCALE
 * @param timeout_ms per-run wall-clock watchdog; <= 0 disarms
 */
RunResult runBenchmark(const std::string &bench, const SystemConfig &cfg,
                       double op_scale = -1.0, double timeout_ms = 0.0);

} // namespace lacc

#endif // LACC_SYSTEM_EXPERIMENT_HH
