/**
 * @file
 * Execution engines: the event-loop strategy that drives a Multicore
 * through a workload. The simulator's semantics are defined by the
 * serial engine — a single priority-queue event loop popping the
 * minimum (time, core) key — and every other engine must reproduce
 * that interleaving bit-identically; engines trade wall-clock for
 * threads, never results.
 *
 *  - SerialEngine: the reference single-threaded loop (this file).
 *  - ShardedEngine (system/sharded.hh): partitions tiles across a
 *    worker pool and advances in deterministic scan/commit/drain
 *    epochs.
 *
 * Engines are built by a config-keyed factory mirroring the protocol
 * and network factories (one named-registry entry per engine; see
 * sim/named_registry.hh).
 */

#ifndef LACC_SYSTEM_ENGINE_HH
#define LACC_SYSTEM_ENGINE_HH

#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace lacc {

class CoreTouchObserver;
class Multicore;
class Workload;
struct SystemConfig;

/** Strategy driving one simulation to completion; see file header. */
class ExecutionEngine
{
  public:
    virtual ~ExecutionEngine() = default;

    /** Factory key and report name, e.g. "serial" or "sharded". */
    virtual const char *name() const = 0;

    /** Drive @p workload to completion (single-use, like Multicore). */
    virtual void run(Workload &workload) = 0;

    /**
     * Multicore::schedule landing point: core @p c becomes runnable
     * at time @p t (its tile clock is already set). Called by the
     * step/synchronization handlers while run() is executing them.
     */
    virtual void onSchedule(CoreId c, Cycle t) = 0;

    /**
     * The protocol-layer observer this engine wants wired into the
     * ProtocolContext, or nullptr (the serial engine needs none). The
     * Multicore installs it before constructing the protocol.
     */
    virtual CoreTouchObserver *touchObserver() { return nullptr; }
};

/**
 * The reference engine: one priority queue ordered by (time, core),
 * one op executed per pop. Defines the simulator's interleaving.
 */
class SerialEngine final : public ExecutionEngine
{
  public:
    explicit SerialEngine(Multicore &m) : m_(m) {}

    const char *name() const override { return "serial"; }
    void run(Workload &workload) override;

    void
    onSchedule(CoreId c, Cycle t) override
    {
        queue_.emplace(t, c);
    }

  private:
    Multicore &m_;
    using QEntry = std::pair<Cycle, CoreId>;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>>
        queue_;
};

/**
 * Build the engine selected by @p cfg.engineKind for @p m (which must
 * outlive it). Mirrors makeProtocol/makeNetwork.
 */
std::unique_ptr<ExecutionEngine> makeEngine(const SystemConfig &cfg,
                                            Multicore &m);

/** Registered engine names, in factory order: {"serial", "sharded"}. */
const std::vector<std::string> &engineNames();

/** Name the factory would select for @p cfg. */
const char *engineNameFor(const SystemConfig &cfg);

/**
 * Reconfigure @p cfg to select the named engine (harness sweeps by
 * name). fatal() on an unknown name, listing the valid ones.
 */
void applyEngineName(SystemConfig &cfg, const std::string &name);

} // namespace lacc

#endif // LACC_SYSTEM_ENGINE_HH
