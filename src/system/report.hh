/**
 * @file
 * Result formatting for bench/ outputs: fixed-width text tables, small
 * numeric helpers (geometric mean), and JSON serialization of system
 * configurations and run results (the BENCH_*.json payloads emitted by
 * the harness sink; see docs/BENCHMARKS.md for the schema).
 */

#ifndef LACC_SYSTEM_REPORT_HH
#define LACC_SYSTEM_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace lacc {

struct SystemConfig;
struct SystemStats;
struct RunResult;

/** Fixed-width text table (prints like the paper's data tables). */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment to @p os. */
    void print(std::ostream &os) const;

    const std::vector<std::string> &headers() const { return headers_; }
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** @return {"headers": [...], "rows": [[...], ...]}. */
    Json toJson() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmt(double v, int precision = 3);

/** Format a percentage (0.153 -> "15.3%"). */
std::string fmtPct(double fraction, int precision = 1);

/** Geometric mean of positive values (returns 0 for empty input). */
double geomean(const std::vector<double> &values);

// ---------------------------------------------------------------------------
// JSON serialization (schema kBenchJsonSchemaVersion; docs/BENCHMARKS.md).
// ---------------------------------------------------------------------------

/**
 * Version stamp written into every BENCH_*.json document.
 * v2 added the throughput fields: top-level repeat / sim_ops /
 * wall_ms / ops_per_sec, the same trio per run record, and sim_ops in
 * every serialized RunResult.
 * v3 added the fault-injection layer: faults / fault_rate / fault_seed
 * in the config block, the "faults" counter object in every stats
 * block, verify_violations in every RunResult, and the per-run
 * "status" field ("ok" / "failed" with fail_reason) written by the
 * sweep sink.
 */
constexpr int kBenchJsonSchemaVersion = 3;

/** Serialize every SystemConfig field (enums as their names). */
Json toJson(const SystemConfig &cfg);

/**
 * Serialize aggregated run statistics: completion time, the six-way
 * energy and latency vectors (Figs 8-9), the miss taxonomy (Fig 10),
 * L2 / network / protocol counters, and the utilization histograms
 * (Figs 1-2) as paper buckets. Per-core breakdowns are summed, not
 * emitted individually, to keep sweep documents small.
 */
Json toJson(const SystemStats &stats);

/** Serialize a RunResult (stats plus the headline scalars). */
Json toJson(const RunResult &result);

/**
 * Rebuild a RunResult from toJson(RunResult) output. Round-trips every
 * emitted field; per-core detail is not reconstructed (the aggregate
 * vectors land in a single synthetic core so totals are preserved).
 */
RunResult runResultFromJson(const Json &j);

/**
 * Order-sensitive FNV-1a digest of every *integer* field of
 * @p stats: per-core counters and latency breakdowns, the miss
 * taxonomy, L2/network/protocol counters, and both utilization
 * histograms. Energy (the only floating-point state) is deliberately
 * excluded so the digest is identical across compilers and FP
 * contraction settings; energy regressions are caught by the bench
 * JSON goldens instead. FaultStats is also excluded: fault-free runs
 * must keep their pre-fault golden digests bit-identical, and the
 * fault-schedule determinism test digests architectural state that
 * the recovery machinery perturbs (latency, traffic), which already
 * covers the counters indirectly.
 *
 * Used by the golden-hash determinism test (tests/test_determinism.cc)
 * that guards protocol refactors: any behavioral drift in the
 * coherence engine changes the digest.
 */
std::uint64_t statsSignature(const SystemStats &stats);

} // namespace lacc

#endif // LACC_SYSTEM_REPORT_HH
