/**
 * @file
 * Plain-text table formatting for bench/ outputs: fixed-width columns,
 * normalized breakdowns, and small numeric helpers (geometric mean).
 */

#ifndef LACC_SYSTEM_REPORT_HH
#define LACC_SYSTEM_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lacc {

/** Fixed-width text table (prints like the paper's data tables). */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmt(double v, int precision = 3);

/** Format a percentage (0.153 -> "15.3%"). */
std::string fmtPct(double fraction, int precision = 1);

/** Geometric mean of positive values (returns 0 for empty input). */
double geomean(const std::vector<double> &values);

} // namespace lacc

#endif // LACC_SYSTEM_REPORT_HH
