/**
 * @file
 * ShardedEngine: deterministic intra-simulation parallelism.
 *
 * Tiles are partitioned statically across a fixed worker pool (core c
 * belongs to worker c % nWorkers) and the simulation advances in
 * epochs, each built from three phases:
 *
 *  1. Scan (parallel, read-only): each worker walks its cores'
 *     upcoming ops — pulling them from the workload into the tile's
 *     pending deque — and classifies each as LOCAL (an L1 hit with
 *     every ifetch-walker crossing resident: touches only the owning
 *     tile) or GLOBAL (a miss, barrier, lock op, or Done: reaches the
 *     directory/network/other tiles). Local ops are annotated with
 *     their exact event-queue key, predicted on a virtual per-core
 *     clock; the scan parks at the first global. L1 hits never change
 *     residency or writability, so a scan stays valid until another
 *     core's transaction touches this tile (see below).
 *
 *  2. Commit (parallel): workers execute their cores' annotated local
 *     ops whose keys order below the horizon H = min over all
 *     non-blocked cores of (frontier key, core). Local ops mutate only
 *     the owning tile (plus per-thread energy slots, per-core
 *     functional-memory values, and the mutex-guarded reference map),
 *     so shards never race; any annotated op that turns out not to be
 *     a pure L1 hit is a scan divergence and panics.
 *
 *  3. Drain (serial): globals execute one at a time in exact
 *     event-queue order — (time, core) lexicographic, matching the
 *     serial engine's priority-queue pops — interleaved with inline
 *     rescans of cores whose scan frontier orders before the next
 *     global. When a transaction reaches into another core's L1
 *     (invalidation / downgrade), the protocol's CoreTouchObserver
 *     hook fires: that core's annotated ops ordering before the
 *     current global are flushed, the rest are discarded, and the core
 *     is marked for rescan. This is the only way cross-tile state
 *     changes, so commits outside the hook remain sound.
 *
 * Because every state mutation happens at the same per-core sequence
 * point and the same simulated time as in the serial engine — and all
 * cross-core interactions are serialized in drain — a sharded run
 * reproduces the serial statistics signature bit-identically for any
 * worker count. Workloads whose next() is not concurrent-safe
 * (Workload::concurrentNextSafe) fall back to an internal
 * SerialEngine, again bit-identical.
 */

#ifndef LACC_SYSTEM_SHARDED_HH
#define LACC_SYSTEM_SHARDED_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "protocol/protocol.hh"
#include "sim/types.hh"
#include "system/engine.hh"

namespace lacc {

class Tile;

/** Sharded-tile epoch engine; see file header. */
class ShardedEngine final : public ExecutionEngine,
                            public CoreTouchObserver
{
  public:
    ShardedEngine(Multicore &m, std::uint32_t threads)
        : m_(m), threads_(threads)
    {}

    const char *name() const override { return "sharded"; }
    CoreTouchObserver *touchObserver() override { return this; }
    void run(Workload &workload) override;
    void onSchedule(CoreId c, Cycle t) override;

    // ---- CoreTouchObserver (fired from the protocol layer) -----------
    void onCrossTileTouch(CoreId c) override;
    void onDirectoryRequest(CoreId c) override;

  private:
    /** Engine-side execution state of one core. */
    enum class St : std::uint8_t {
        NeedsScan, //!< frontier stale; rescan before trusting bound
        Ready,     //!< scanned: annotations and bound are current
        Blocked,   //!< waiting on a barrier/lock; no annotations
        Finished,  //!< executed Done
    };

    /** What the worker pool is currently asked to do. */
    enum class Job : std::uint8_t { Idle, Scan, Commit, Exit };

    /** Per-core scan/commit bookkeeping (owned by the core's shard
     * during parallel phases, by the drain thread otherwise). */
    struct CoreScan
    {
        St st = St::NeedsScan;
        bool parked = false;    //!< Ready: frontier op is a known global
        bool scheduled = false; //!< drain: onSchedule fired during step
        /**
         * Key time of the first op *not* annotated as local: the
         * parked global's key (parked), the virtual clock after an
         * exhausted scan (Ready, not parked), or the tile clock
         * (NeedsScan). Every future event of this core orders at or
         * after (bound, core).
         */
        Cycle bound = 0;
        /** Predicted keys of tl.pending[0 .. keys.size()), the
         * annotated local prefix. */
        std::deque<Cycle> keys;
        // Persisted scan frontier: virtual clock + ifetch walker.
        Cycle vTime = 0;
        std::uint32_t vIfetchLine = 0;
        std::uint32_t vInstrInLine = 0;
    };

    /** Serial pop order of the reference engine: (time, core). */
    static bool
    keyLess(Cycle t1, CoreId c1, Cycle t2, CoreId c2)
    {
        return t1 < t2 || (t1 == t2 && c1 < c2);
    }

    void workerMain(std::uint32_t w);
    void runJob(Job j);

    /** Scan core @p c from its frontier; @return ops examined. */
    std::uint64_t scanCore(CoreId c);
    bool virtualWalk(const Tile &tl, std::uint32_t &vline,
                     std::uint32_t &vinstr, std::uint64_t n,
                     std::uint32_t fp) const;

    void computeH();
    void commitCore(CoreId c);

    /** @return false when the system is quiescent (run complete or
     * deadlocked — Multicore::run diagnoses which). */
    bool drain();
    void executeGlobal(CoreId c);
    /** Commit annotated ops of @p c ordering below (t, tie). */
    void flushAnnotated(CoreId c, Cycle t, CoreId tie);
    /** Execute one already-annotated local op of @p c. */
    void commitOne(CoreId c, CoreScan &cs);

    Multicore &m_;
    const std::uint32_t threads_;

    std::vector<CoreScan> cores_;
    std::unique_ptr<SerialEngine> fallback_; //!< unsafe-workload path

    // Commit horizon, written serially between phases.
    bool haveH_ = false;
    Cycle hTime_ = 0;
    CoreId hCore_ = 0;

    // Drain bookkeeping: the global being executed (touch-flush
    // horizon) and whether a local flush is in progress (a directory
    // request from a flushed op would mean the scan misclassified it).
    Cycle gTime_ = 0;
    CoreId gCore_ = 0;
    bool flushing_ = false;
    bool inParallelPhase_ = false;

    // Worker pool and phase handoff.
    std::uint32_t nWorkers_ = 0;
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    std::uint64_t jobEpoch_ = 0;
    std::uint32_t jobRemaining_ = 0;
    Job job_ = Job::Idle;
};

} // namespace lacc

#endif // LACC_SYSTEM_SHARDED_HH
