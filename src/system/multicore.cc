#include "system/multicore.hh"

#include <algorithm>
#include <cstdio>

#include "sim/abort.hh"
#include "sim/log.hh"

namespace lacc {

namespace {

const SystemConfig &
validated(const SystemConfig &cfg)
{
    cfg.validate();
    return cfg;
}

} // namespace

Multicore::Multicore(const SystemConfig &cfg)
    : cfg_(validated(cfg)), addr_(cfg_), energy_(),
      network_(makeNetwork(cfg_, energy_)), net_(cfg_, *network_),
      dram_(cfg_),
      // Pre-size the page table for the aggregate L2 footprint in
      // pages (the steady-state hot set R-NUCA classifies).
      pageTable_(static_cast<std::size_t>(cfg_.numCores) *
                 cfg_.l2Sets() * cfg_.l2Assoc /
                 (cfg_.pageSize / cfg_.lineSize)),
      placement_(cfg_), barrier_(cfg_.numCores)
{
    tiles_.reserve(cfg_.numCores);
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c)
        tiles_.push_back(std::make_unique<Tile>(static_cast<CoreId>(c),
                                                cfg_));
    stats_.perCore.resize(cfg_.numCores);
    mem_.setCores(cfg_.numCores);
    // Fault injector before the protocol: the network, the transport,
    // and the directory controllers each hold a pointer (null under
    // FaultPlan none, keeping every hook a single untaken branch).
    if (cfg_.faultKind != FaultKind::None) {
        fault_ = std::make_unique<FaultInjector>(cfg_);
        network_->setFaultInjector(fault_.get());
        net_.setFaultInjector(fault_.get());
    }
    // Engine before protocol: the controllers copy the context (and
    // with it the engine's touch-observer pointer) by value.
    engine_ = makeEngine(cfg_, *this);
    protocol_ = makeProtocol(
        cfg_, ProtocolContext{cfg_, addr_, tiles_, net_, energy_,
                              dram_, pageTable_, placement_, stats_,
                              mem_, engine_->touchObserver(),
                              fault_.get()});
}

void
Multicore::schedule(CoreId c, Cycle t)
{
    engine_->onSchedule(c, t);
}

const SystemStats &
Multicore::run(Workload &workload)
{
    if (workload_ != nullptr)
        fatal("Multicore::run is single-use; construct a new system");
    if (workload.numCores() != cfg_.numCores)
        fatal("workload wants %u cores, system has %u",
              workload.numCores(), cfg_.numCores);
    workload_ = &workload;
    locks_.assign(std::max<std::uint32_t>(workload.numLocks(), 1),
                  LockState{});
    // Pre-size the reference memory from the workload's data
    // footprint (a no-op when functional checks are off).
    mem_.reserveFootprint(
        static_cast<std::size_t>(workload.footprintBytes() / 8));

    if (timeoutMs_ > 0.0) {
        watchdogPoll_ = 0;
        watchdogFired_ = false;
        watchdogDeadline_ =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(timeoutMs_));
    }

    engine_->run(workload);

    if (watchdogFired_) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "watchdog: run exceeded %g ms", timeoutMs_);
        throw RunAbort(AbortKind::Timeout, buf);
    }

    for (const auto &tp : tiles_) {
        if (tp->status != CoreStatus::Finished) {
            panic("deadlock: core %u ended %s (barrier arrivals %u)",
                  tp->id,
                  tp->status == CoreStatus::BlockedBarrier
                      ? "blocked at barrier"
                      : (tp->status == CoreStatus::BlockedLock
                             ? "blocked on a lock"
                             : "runnable"),
                  barrier_.arrivedCount());
        }
    }

    finalizeStats(workload);
    return stats_;
}

void
Multicore::step(CoreId c, const MemOp &op)
{
    Tile &tl = *tiles_[c];
    L1Controller &l1 = protocol_->l1();
    switch (op.kind) {
      case MemOp::Kind::Read:
      case MemOp::Kind::Write: {
        const bool is_write = op.kind == MemOp::Kind::Write;
        ++tl.stats.instructions;
        if (is_write)
            ++tl.stats.memWrites;
        else
            ++tl.stats.memReads;
        advanceInstructions(c, 1, *workload_);
        l1.access(c, op.addr, is_write, false);
        schedule(c, tl.now);
        break;
      }
      case MemOp::Kind::IFetch:
        ++tl.stats.instructions;
        l1.access(c, op.addr, false, true);
        schedule(c, tl.now);
        break;
      case MemOp::Kind::Compute:
        tl.stats.instructions += op.count;
        tl.stats.latency.compute += op.count;
        tl.now += op.count;
        advanceInstructions(c, op.count, *workload_);
        schedule(c, tl.now);
        break;
      case MemOp::Kind::Barrier:
        ++tl.stats.instructions;
        advanceInstructions(c, 1, *workload_);
        handleBarrier(c, *workload_);
        break;
      case MemOp::Kind::LockAcquire:
        ++tl.stats.instructions;
        advanceInstructions(c, 1, *workload_);
        handleLockAcquire(c, op.lockId, *workload_);
        break;
      case MemOp::Kind::LockRelease:
        ++tl.stats.instructions;
        advanceInstructions(c, 1, *workload_);
        handleLockRelease(c, op.lockId, *workload_);
        break;
      case MemOp::Kind::Done:
        tl.status = CoreStatus::Finished;
        tl.stats.finishTime = tl.now - statsStart_;
        break;
    }
}

void
Multicore::advanceInstructions(CoreId c, std::uint64_t n,
                               const Workload &workload)
{
    Tile &tl = *tiles_[c];
    tl.stats.ifetches += n;
    energy_.addL1iAccesses(n);

    const std::uint32_t fp = workload.iFootprintLines(c);
    if (fp == 0)
        return;

    // 4-byte instructions: lineSize/4 instructions per I-line.
    const std::uint32_t instrs_per_line = cfg_.lineSize / 4;
    std::uint64_t total = tl.instrInLine + n;
    std::uint64_t crossings = total / instrs_per_line;
    tl.instrInLine = static_cast<std::uint32_t>(total % instrs_per_line);

    const Addr code = workload.codeBase();
    while (crossings-- > 0) {
        tl.ifetchLine = (tl.ifetchLine + 1) % fp;
        const Addr addr = code + static_cast<Addr>(tl.ifetchLine) *
                                     cfg_.lineSize;
        // Fast path: a resident I-line costs nothing extra (fetch is
        // pipelined); only misses stall the core.
        if (!protocol_->l1().touchResidentIfetch(c, addr))
            protocol_->l1().access(c, addr, false, true, false);
    }
}

void
Multicore::handleBarrier(CoreId c, Workload &workload)
{
    // Message-based tree barrier: arrivals are single-flit unicasts to
    // a central tile and the release is one broadcast — barrier cost
    // is network latency, not cache-line ping-pong. (Lock-protected
    // critical sections, where the paper's synchronization effects
    // live, do go through the coherence protocol.)
    Tile &tl = *tiles_[c];
    const CoreId bhome = static_cast<CoreId>(cfg_.numCores / 2);
    Message arrive{MsgKind::BarrierArrive, c, bhome,
                   MsgPayload::None};
    const Cycle t_arr = net_.send(arrive, tl.now);
    tl.stats.latency.synchronization += t_arr - tl.now;
    tl.now = t_arr;

    if (barrier_.arrive(c, t_arr)) {
        const Cycle rel = barrier_.releaseTime();
        // Reusable member scratch: the network broadcast re-assigns
        // it to numCores entries without reallocating.
        std::vector<Cycle> &wake = barrierWake_;
        Message release{MsgKind::BarrierRelease, bhome, bhome,
                        MsgPayload::None};
        net_.broadcast(release, rel, wake);
        if (barrierReleases_ + 1 == workload.warmupBarriers()) {
            // Warm-up boundary: align every core on one clock so the
            // measurement epoch starts with exact per-core breakdown
            // invariants (total() == finishTime).
            const Cycle aligned =
                *std::max_element(wake.begin(), wake.end());
            std::fill(wake.begin(), wake.end(), aligned);
        }
        for (const CoreId w : barrier_.waiters()) {
            Tile &wt = *tiles_[w];
            wt.stats.latency.synchronization +=
                wake[w] - barrier_.arrivalOf(w);
            wt.now = wake[w];
            wt.status = CoreStatus::Runnable;
            schedule(w, wake[w]);
        }
        // The releasing arrival may still have to wait for an earlier-
        // arrived core whose completion time exceeded ours (lax
        // synchronization): charge the residue.
        tl.stats.latency.synchronization += wake[c] - t_arr;
        tl.now = wake[c];
        barrier_.resetGeneration();
        ++barrierReleases_;
        if (barrierReleases_ == workload.warmupBarriers())
            resetStatsForMeasurement(tl.now);
        schedule(c, tl.now);
    } else {
        tl.status = CoreStatus::BlockedBarrier;
    }
}

void
Multicore::resetStatsForMeasurement(Cycle t)
{
    statsStart_ = t;
    for (auto &tp : tiles_)
        tp->stats = CoreStats{};
    stats_.l2 = CacheStats{};
    stats_.protocol = ProtocolStats{};
    stats_.evictionUtil = UtilizationHistogram{};
    stats_.invalidationUtil = UtilizationHistogram{};
    // Links also restart clean: every core resumes on one aligned
    // clock at the boundary, and carrying saturated warm-up bookings
    // into the measured epoch would charge phantom queueing.
    network_->reset();
    energy_.reset();
    // Fault counters are deliberately NOT reset here: the resilience
    // ledger is whole-run. Warm-up traffic is simulated traffic — a
    // soft error or link fault injected during warm-up is recovered
    // (and must be charged) all the same, and wiping the counters at
    // the boundary would open a blind spot in the zero-silent-
    // corruption accounting (a warm-up-epoch silent strike would
    // vanish from the ledger the harness asserts over).
}

void
Multicore::handleLockAcquire(CoreId c, std::uint32_t id,
                             Workload &workload)
{
    if (id >= locks_.size())
        fatal("lock id %u out of range (%zu locks)", id, locks_.size());
    Tile &tl = *tiles_[c];
    protocol_->l1().access(c, workload.lockAddr(id), true, false);
    const Cycle t_end = tl.now;

    if (locks_[id].tryAcquire(c)) {
        schedule(c, t_end);
    } else {
        locks_[id].enqueue(c, t_end);
        tl.status = CoreStatus::BlockedLock;
    }
}

void
Multicore::handleLockRelease(CoreId c, std::uint32_t id,
                             Workload &workload)
{
    if (id >= locks_.size())
        fatal("lock id %u out of range (%zu locks)", id, locks_.size());
    Tile &tl = *tiles_[c];
    if (locks_[id].holder() != c)
        fatal("core %u releases lock %u it does not hold", c, id);
    protocol_->l1().access(c, workload.lockAddr(id), true, false);
    const Cycle t_end = tl.now;

    LockState::Waiter w{};
    if (locks_[id].release(c, w)) {
        Tile &wt = *tiles_[w.core];
        const Cycle wake = std::max(t_end, w.readyAt);
        wt.stats.latency.synchronization += wake - w.readyAt;
        wt.now = wake;
        wt.status = CoreStatus::Runnable;
        // The handoff transfers the lock line to the new holder.
        wt.pending.push_front(MemOp::read(workload.lockAddr(id)));
        schedule(w.core, wake);
    }
    schedule(c, t_end);
}

Cycle
Multicore::testAccess(CoreId core, Addr addr, bool is_write,
                      bool is_ifetch)
{
    if (is_write && is_ifetch)
        fatal("testAccess: an ifetch cannot be a write");
    protocol_->l1().access(core, addr, is_write, is_ifetch);
    return tiles_[core]->now;
}

void
Multicore::finalizeStats(Workload &workload)
{
    (void)workload;
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c)
        stats_.perCore[c] = tiles_[c]->stats;
    stats_.network = network_->stats();
    stats_.energy = energy_.breakdown();
    if (fault_)
        stats_.faults = fault_->stats();
}

} // namespace lacc
