#include "system/multicore.hh"

#include <algorithm>

#include "sim/log.hh"

namespace lacc {

namespace {

/** log2 for exact powers of two. */
std::uint32_t
log2u(std::uint32_t v)
{
    std::uint32_t b = 0;
    while ((1u << b) < v)
        ++b;
    return b;
}

/** Private utilization counters saturate (finite width in hardware). */
constexpr std::uint32_t kUtilCap = 0xFFFF;

const SystemConfig &
validated(const SystemConfig &cfg)
{
    cfg.validate();
    return cfg;
}

bool
holds(const std::vector<CoreId> &v, CoreId c)
{
    return std::find(v.begin(), v.end(), c) != v.end();
}

void
eraseHolder(std::vector<CoreId> &v, CoreId c)
{
    v.erase(std::remove(v.begin(), v.end(), c), v.end());
}

} // namespace

Multicore::Multicore(const SystemConfig &cfg)
    : cfg_(validated(cfg)), lineBits_(log2u(cfg.lineSize)),
      pageBits_(log2u(cfg.pageSize)), energy_(), mesh_(cfg_, energy_),
      dram_(cfg_), pageTable_(), placement_(cfg_),
      classifier_(LocalityClassifier::create(cfg_)),
      barrier_(cfg_.numCores)
{
    tiles_.reserve(cfg_.numCores);
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c)
        tiles_.push_back(std::make_unique<Tile>(static_cast<CoreId>(c),
                                                cfg_));
    stats_.perCore.resize(cfg_.numCores);
}

void
Multicore::schedule(CoreId c, Cycle t)
{
    queue_.emplace(t, c);
}

const SystemStats &
Multicore::run(Workload &workload)
{
    if (workload_ != nullptr)
        fatal("Multicore::run is single-use; construct a new system");
    if (workload.numCores() != cfg_.numCores)
        fatal("workload wants %u cores, system has %u",
              workload.numCores(), cfg_.numCores);
    workload_ = &workload;
    locks_.assign(std::max<std::uint32_t>(workload.numLocks(), 1),
                  LockState{});

    for (std::uint32_t c = 0; c < cfg_.numCores; ++c)
        schedule(static_cast<CoreId>(c), 0);

    while (!queue_.empty()) {
        const auto [t, c] = queue_.top();
        queue_.pop();
        Tile &tl = *tiles_[c];
        if (tl.status != CoreStatus::Runnable)
            panic("scheduled core %u is not runnable", c);
        tl.now = std::max(tl.now, t);
        MemOp op;
        if (!tl.pending.empty()) {
            op = tl.pending.front();
            tl.pending.pop_front();
        } else {
            op = workload.next(static_cast<CoreId>(c));
        }
        step(static_cast<CoreId>(c), op);
    }

    for (const auto &tp : tiles_) {
        if (tp->status != CoreStatus::Finished) {
            panic("deadlock: core %u ended %s (barrier arrivals %u)",
                  tp->id,
                  tp->status == CoreStatus::BlockedBarrier
                      ? "blocked at barrier"
                      : (tp->status == CoreStatus::BlockedLock
                             ? "blocked on a lock"
                             : "runnable"),
                  barrier_.arrivedCount());
        }
    }

    finalizeStats(workload);
    return stats_;
}

void
Multicore::step(CoreId c, const MemOp &op)
{
    Tile &tl = *tiles_[c];
    switch (op.kind) {
      case MemOp::Kind::Read:
      case MemOp::Kind::Write: {
        const bool is_write = op.kind == MemOp::Kind::Write;
        ++tl.stats.instructions;
        if (is_write)
            ++tl.stats.memWrites;
        else
            ++tl.stats.memReads;
        advanceInstructions(c, 1, *workload_);
        memAccess(c, op.addr, is_write, false);
        schedule(c, tl.now);
        break;
      }
      case MemOp::Kind::IFetch:
        ++tl.stats.instructions;
        memAccess(c, op.addr, false, true);
        schedule(c, tl.now);
        break;
      case MemOp::Kind::Compute:
        tl.stats.instructions += op.count;
        tl.stats.latency.compute += op.count;
        tl.now += op.count;
        advanceInstructions(c, op.count, *workload_);
        schedule(c, tl.now);
        break;
      case MemOp::Kind::Barrier:
        ++tl.stats.instructions;
        advanceInstructions(c, 1, *workload_);
        handleBarrier(c, *workload_);
        break;
      case MemOp::Kind::LockAcquire:
        ++tl.stats.instructions;
        advanceInstructions(c, 1, *workload_);
        handleLockAcquire(c, op.lockId, *workload_);
        break;
      case MemOp::Kind::LockRelease:
        ++tl.stats.instructions;
        advanceInstructions(c, 1, *workload_);
        handleLockRelease(c, op.lockId, *workload_);
        break;
      case MemOp::Kind::Done:
        tl.status = CoreStatus::Finished;
        tl.stats.finishTime = tl.now - statsStart_;
        break;
    }
}

void
Multicore::advanceInstructions(CoreId c, std::uint64_t n,
                               const Workload &workload)
{
    Tile &tl = *tiles_[c];
    tl.stats.ifetches += n;
    energy_.addL1iAccesses(n);

    const std::uint32_t fp = workload.iFootprintLines(c);
    if (fp == 0)
        return;

    // 4-byte instructions: lineSize/4 instructions per I-line.
    const std::uint32_t instrs_per_line = cfg_.lineSize / 4;
    std::uint64_t total = tl.instrInLine + n;
    std::uint64_t crossings = total / instrs_per_line;
    tl.instrInLine = static_cast<std::uint32_t>(total % instrs_per_line);

    const Addr code = workload.codeBase();
    while (crossings-- > 0) {
        tl.ifetchLine = (tl.ifetchLine + 1) % fp;
        const Addr addr = code + static_cast<Addr>(tl.ifetchLine) *
                                     cfg_.lineSize;
        // Fast path: a resident I-line costs nothing extra (fetch is
        // pipelined); only misses stall the core.
        if (auto *e = tl.l1i.find(lineOf(addr))) {
            e->lastAccess = tl.now;
            if (e->meta.privateUtil < kUtilCap)
                ++e->meta.privateUtil;
            ++tl.stats.l1i.loads;
        } else {
            memAccess(c, addr, false, true, false);
        }
    }
}

void
Multicore::memAccess(CoreId c, Addr addr, bool is_write, bool is_ifetch,
                     bool charge_fetch_energy)
{
    Tile &tl = *tiles_[c];
    L1Cache &l1 = is_ifetch ? tl.l1i : tl.l1d;
    CacheStats &cs = is_ifetch ? tl.stats.l1i : tl.stats.l1d;
    const LineAddr line = lineOf(addr);
    const std::uint32_t word = wordOf(addr);

    if (is_ifetch) {
        if (charge_fetch_energy)
            energy_.addL1iAccess();
    } else {
        energy_.addL1dAccess();
    }
    if (is_write)
        ++cs.stores;
    else
        ++cs.loads;

    auto *e = l1.find(line);
    const bool writable = e != nullptr &&
                          (e->meta.state == L1State::Exclusive ||
                           e->meta.state == L1State::Modified);
    if (e != nullptr && (!is_write || writable)) {
        // L1 hit. Writes to an E copy silently upgrade to M.
        if (is_write) {
            e->meta.state = L1State::Modified;
            const std::uint64_t v = nextValue();
            e->words[word] = v;
            refWrite(addr, v);
        } else {
            checkRead(addr, e->words[word]);
        }
        e->lastAccess = tl.now;
        if (e->meta.privateUtil < kUtilCap)
            ++e->meta.privateUtil;
        tl.stats.latency.compute += cfg_.l1Latency;
        tl.now += cfg_.l1Latency;
        return;
    }

    const bool upgrade = e != nullptr &&
                         e->meta.state == L1State::Shared && is_write;
    if (!is_ifetch) {
        tl.stats.misses.record(
            tl.missTracker.classify(line, is_write, upgrade));
    }
    if (is_write)
        ++cs.storeMisses;
    else
        ++cs.loadMisses;

    missTransaction(c, addr, is_write, is_ifetch, upgrade);
}

L2Cache::Entry *
Multicore::l2FindOrFill(CoreId home, LineAddr line, Cycle t_arr,
                        Cycle &t_ready, Cycle &waiting, Cycle &offchip)
{
    Tile &ht = *tiles_[home];
    if (auto *e = ht.l2.find(line)) {
        const Cycle t2 = std::max(t_arr, e->meta.busyUntil);
        waiting = t2 - t_arr;
        offchip = 0;
        t_ready = t2 + cfg_.l2Latency;
        return e;
    }

    // L2 miss: fetch the line from DRAM through the line's memory
    // controller, then install it (evicting an L2 victim if needed).
    waiting = 0;
    const Cycle t_tag = t_arr + cfg_.l2Latency;
    energy_.addL2TagOnly();
    const CoreId ctrl = dram_.controllerTile(line);
    const Cycle t_req = mesh_.unicast(home, ctrl, cfg_.headerFlits,
                                      t_tag);
    const Cycle t_data = dram_.access(line, t_req);
    const Cycle t_back = mesh_.unicast(
        ctrl, home, cfg_.headerFlits + cfg_.lineFlits, t_data);
    offchip = t_back - t_tag;
    ++stats_.protocol.dramFetches;

    auto &victim = ht.l2.victimFor(line);
    if (victim.valid)
        l2Evict(home, victim, t_back);

    victim.valid = true;
    victim.tag = line;
    victim.lastAccess = t_back;
    victim.meta.dstate = DirState::Uncached;
    victim.meta.owner = kInvalidCore;
    victim.meta.sharers =
        cfg_.directoryKind == DirectoryKind::FullMap
            ? SharerList::makeFullMap(cfg_.numCores)
            : SharerList::makeAckwise(cfg_.ackwisePointers);
    victim.meta.holders.clear();
    victim.meta.cls = classifier_->makeState();
    victim.meta.busyUntil = t_back;
    victim.meta.dirty = false;
    dram_.readLine(line, victim.words, cfg_.wordsPerLine());
    energy_.addL2Line(); // fill write
    ++stats_.l2.fills;

    t_ready = t_back;
    return &victim;
}

void
Multicore::missTransaction(CoreId c, Addr addr, bool is_write,
                           bool is_ifetch, bool upgrade)
{
    Tile &rt = *tiles_[c];
    L1Cache &l1 = is_ifetch ? rt.l1i : rt.l1d;
    const LineAddr line = lineOf(addr);
    const std::uint32_t word = wordOf(addr);

    // L1 set information communicated with the miss (§3.2/§3.3).
    const bool has_inv = l1.hasInvalidWay(line);
    const Cycle min_last = l1.minLastAccess(line);

    // R-NUCA classification and home lookup.
    const auto res = pageTable_.access(pageOf(addr), c, is_ifetch);
    if (res.rehomed && placement_.enabled())
        flushPageFromSlice(res.oldOwner, pageOf(addr), rt.now);
    const CoreId home = placement_.home(line, res.record, c);

    const Cycle t_inj = rt.now + cfg_.l1Latency;
    rt.stats.latency.compute += cfg_.l1Latency;

    // Requests always carry the line offset; writes carry the word.
    const std::uint32_t req_flits =
        cfg_.headerFlits + (is_write ? cfg_.wordFlits : 0);
    const Cycle t1 = mesh_.unicast(c, home, req_flits, t_inj);

    Cycle t_ready = 0, waiting = 0, offchip = 0;
    L2Cache::Entry *entry =
        l2FindOrFill(home, line, t1, t_ready, waiting, offchip);
    entry->lastAccess = t_ready;
    energy_.addDirAccess();

    const Mode mode = upgrade
                          ? Mode::Private
                          : classifier_->classify(*entry->meta.cls, c);
    const RemoteAccessContext ctx{t_ready, has_inv, min_last};

    Cycle t_shar = t_ready;
    bool granted = false;

    if (is_write) {
        const std::uint64_t val = nextValue();
        // A write resets the remote utilization of all other remote
        // sharers (§3.2) and invalidates all private sharers.
        classifier_->onWriteByOther(*entry->meta.cls, c);
        t_shar = invalidateHolders(home, *entry, c, t_ready);

        bool promote = false;
        if (mode == Mode::Remote) {
            promote =
                classifier_->onRemoteAccess(*entry->meta.cls, c, ctx);
            if (promote)
                ++stats_.protocol.promotions;
        }

        if (mode == Mode::Private || promote) {
            granted = true;
            if (upgrade) {
                auto *le = l1.find(line);
                if (le == nullptr)
                    panic("upgrade requester lost its line");
                le->meta.state = L1State::Modified;
                le->words[word] = val;
                le->lastAccess = rt.now;
                if (le->meta.privateUtil < kUtilCap)
                    ++le->meta.privateUtil;
                ++stats_.protocol.upgradeGrants;
                energy_.addL2TagOnly();
            } else {
                l1Fill(c, is_ifetch, line, entry->words,
                       L1State::Modified, t_shar);
                l1.find(line)->words[word] = val;
                ++stats_.protocol.privateWriteGrants;
                energy_.addL2Line();
                ++stats_.l2.loads;
            }
            refWrite(addr, val);
            if (!holds(entry->meta.holders, c))
                entry->meta.holders.push_back(c);
            entry->meta.sharers.clear();
            entry->meta.sharers.add(c);
            entry->meta.dstate = DirState::Exclusive;
            entry->meta.owner = c;
            classifier_->onPrivateGrant(*entry->meta.cls, c, t_ready);
        } else {
            // Remote word write: stored at the L2 home (§3.2).
            entry->words[word] = val;
            entry->meta.dirty = true;
            refWrite(addr, val);
            ++stats_.protocol.remoteWrites;
            ++stats_.l2.stores;
            energy_.addL2Word();
            if (!is_ifetch)
                rt.missTracker.onRemoteAccess(line);
        }
    } else {
        bool promote = false;
        if (mode == Mode::Remote) {
            promote =
                classifier_->onRemoteAccess(*entry->meta.cls, c, ctx);
            if (promote)
                ++stats_.protocol.promotions;
        }

        if (mode == Mode::Private || promote) {
            granted = true;
            if (entry->meta.dstate == DirState::Exclusive &&
                entry->meta.owner != c) {
                t_shar = syncWriteback(home, *entry, t_ready);
            }
            const L1State st = entry->meta.holders.empty()
                                   ? L1State::Exclusive
                                   : L1State::Shared;
            l1Fill(c, is_ifetch, line, entry->words, st, t_shar);
            checkRead(addr, entry->words[word]);
            entry->meta.holders.push_back(c);
            entry->meta.sharers.add(c);
            if (st == L1State::Exclusive) {
                entry->meta.dstate = DirState::Exclusive;
                entry->meta.owner = c;
            } else {
                entry->meta.dstate = DirState::Shared;
                entry->meta.owner = kInvalidCore;
            }
            classifier_->onPrivateGrant(*entry->meta.cls, c, t_ready);
            ++stats_.protocol.privateReadGrants;
            energy_.addL2Line();
            ++stats_.l2.loads;
        } else {
            // Remote word read at the L2 home.
            if (entry->meta.dstate == DirState::Exclusive)
                t_shar = syncWriteback(home, *entry, t_ready);
            checkRead(addr, entry->words[word]);
            ++stats_.protocol.remoteReads;
            ++stats_.l2.loads;
            energy_.addL2Word();
            if (!is_ifetch)
                rt.missTracker.onRemoteAccess(line);
        }
    }

    // Reply: full line for a grant (header only for an upgrade), one
    // word for a remote read, bare ack for a remote write.
    std::uint32_t reply_flits;
    if (granted)
        reply_flits = upgrade ? cfg_.headerFlits
                              : cfg_.headerFlits + cfg_.lineFlits;
    else
        reply_flits = is_write ? cfg_.headerFlits
                               : cfg_.headerFlits + cfg_.wordFlits;
    const Cycle t5 = mesh_.unicast(home, c, reply_flits, t_shar);
    entry->meta.busyUntil = t_shar;

    // Completion-time attribution (§4.4); the stage times telescope so
    // the components sum exactly to the transaction latency.
    rt.stats.latency.l1ToL2 +=
        (t1 - t_inj) + cfg_.l2Latency + (t5 - t_shar);
    rt.stats.latency.l2Waiting += waiting;
    rt.stats.latency.offChip += offchip;
    rt.stats.latency.l2Sharers += t_shar - t_ready;
    rt.now = t5;
}

std::uint32_t
Multicore::dropHolderCopy(CoreId s, LineAddr line, L2Cache::Entry &entry,
                          bool l2_eviction, Cycle t)
{
    Tile &st = *tiles_[s];
    L1Cache *l1 = &st.l1d;
    bool is_i = false;
    auto *e = l1->find(line);
    if (e == nullptr) {
        l1 = &st.l1i;
        e = l1->find(line);
        is_i = true;
    }
    if (e == nullptr)
        panic("holder oracle mismatch: core %u has no copy of line"
              " %llx", s, static_cast<unsigned long long>(line));

    const std::uint32_t util = e->meta.privateUtil;
    const bool was_m = e->meta.state == L1State::Modified;
    if (was_m) {
        entry.words = e->words;
        entry.meta.dirty = true;
        ++stats_.protocol.syncWritebacks;
    }

    stats_.invalidationUtil.record(util);
    if (!is_i) {
        if (l2_eviction)
            st.missTracker.onEviction(line); // inclusive capacity
        else
            st.missTracker.onInvalidation(line);
    }
    if (!l2_eviction) {
        const Mode m = classifier_->onPrivateRemoval(
            *entry.meta.cls, s, util, RemovalKind::Invalidation);
        if (m == Mode::Remote)
            ++stats_.protocol.demotions;
    }

    l1->invalidate(*e);
    if (is_i) {
        ++st.stats.l1i.invalidationsRecv;
        energy_.addL1iTagOnly();
    } else {
        ++st.stats.l1d.invalidationsRecv;
        energy_.addL1dTagOnly();
    }
    (void)t;
    return cfg_.headerFlits + (was_m ? cfg_.lineFlits : 0);
}

Cycle
Multicore::invalidateHolders(CoreId home, L2Cache::Entry &entry,
                             CoreId except, Cycle t)
{
    std::vector<CoreId> targets = entry.meta.holders;
    eraseHolder(targets, except);
    if (targets.empty())
        return t;

    Cycle t_end = t;
    if (entry.meta.sharers.overflowed()) {
        // ACKwise overflow: identities unknown, broadcast with a
        // single injection; acks only from the actual sharers (§3.1).
        std::vector<Cycle> arrivals;
        mesh_.broadcast(home, cfg_.headerFlits, t, arrivals);
        ++stats_.protocol.broadcastInvals;
        for (const CoreId s : targets) {
            const std::uint32_t ack =
                dropHolderCopy(s, entry.tag, entry, false, arrivals[s]);
            const Cycle t_ack =
                mesh_.unicast(s, home, ack, arrivals[s] + 1);
            t_end = std::max(t_end, t_ack);
        }
    } else {
        for (const CoreId s : targets) {
            const Cycle t_arr =
                mesh_.unicast(home, s, cfg_.headerFlits, t);
            ++stats_.protocol.invalidationsSent;
            const std::uint32_t ack =
                dropHolderCopy(s, entry.tag, entry, false, t_arr);
            const Cycle t_ack = mesh_.unicast(s, home, ack, t_arr + 1);
            t_end = std::max(t_end, t_ack);
        }
    }

    for (const CoreId s : targets)
        entry.meta.sharers.remove(s);
    const bool except_held = holds(entry.meta.holders, except);
    entry.meta.holders.clear();
    if (except_held)
        entry.meta.holders.push_back(except);

    if (entry.meta.holders.empty()) {
        entry.meta.dstate = DirState::Uncached;
        entry.meta.owner = kInvalidCore;
    } else {
        // Only the requester's (upgrade) copy remains, in state S; the
        // caller promotes it to Exclusive.
        entry.meta.dstate = DirState::Shared;
        entry.meta.owner = kInvalidCore;
    }
    return t_end;
}

Cycle
Multicore::syncWriteback(CoreId home, L2Cache::Entry &entry, Cycle t)
{
    const CoreId o = entry.meta.owner;
    if (o == kInvalidCore)
        panic("syncWriteback without an owner");
    Tile &ot = *tiles_[o];
    L1Cache *l1 = &ot.l1d;
    auto *e = l1->find(entry.tag);
    if (e == nullptr) {
        l1 = &ot.l1i;
        e = l1->find(entry.tag);
    }
    if (e == nullptr)
        panic("owner oracle mismatch on line %llx",
              static_cast<unsigned long long>(entry.tag));

    const Cycle t_req = mesh_.unicast(home, o, cfg_.headerFlits, t);
    const bool was_m = e->meta.state == L1State::Modified;
    if (was_m) {
        entry.words = e->words;
        entry.meta.dirty = true;
        energy_.addL2Line();
    }
    e->meta.state = L1State::Shared; // downgrade; owner keeps its copy
    energy_.addL1dAccess();
    const std::uint32_t ack =
        cfg_.headerFlits + (was_m ? cfg_.lineFlits : 0);
    const Cycle t_ack = mesh_.unicast(o, home, ack, t_req + 1);

    entry.meta.dstate = DirState::Shared;
    entry.meta.owner = kInvalidCore;
    ++stats_.protocol.syncWritebacks;
    return t_ack;
}

void
Multicore::l1Fill(CoreId c, bool is_ifetch, LineAddr line,
                  const std::vector<std::uint64_t> &words, L1State st,
                  Cycle t)
{
    Tile &tl = *tiles_[c];
    L1Cache &l1 = is_ifetch ? tl.l1i : tl.l1d;
    auto &victim = l1.victimFor(line);
    if (victim.valid)
        l1Evict(c, is_ifetch, victim, t);

    victim.valid = true;
    victim.tag = line;
    victim.lastAccess = t;
    victim.meta.state = st;
    victim.meta.privateUtil = 1; // §3.2: initialized to 1 on fill
    victim.words = words;
    if (is_ifetch) {
        ++tl.stats.l1i.fills;
        energy_.addL1iFill();
    } else {
        ++tl.stats.l1d.fills;
        energy_.addL1dFill();
    }
}

void
Multicore::l1Evict(CoreId c, bool is_ifetch, L1Cache::Entry &victim,
                   Cycle t)
{
    Tile &tl = *tiles_[c];
    const LineAddr line = victim.tag;
    const std::uint32_t util = victim.meta.privateUtil;
    const bool was_m = victim.meta.state == L1State::Modified;

    const CoreId home = homeOf(line, c);
    stats_.evictionUtil.record(util);
    if (!is_ifetch)
        tl.missTracker.onEviction(line);
    (is_ifetch ? tl.stats.l1i : tl.stats.l1d).evictions++;

    // Eviction notice (fire-and-forget): the utilization counter rides
    // in the header (§3.6); a dirty line carries the data.
    const std::uint32_t flits =
        cfg_.headerFlits + (was_m ? cfg_.lineFlits : 0);
    mesh_.unicast(c, home, flits, t);

    auto *he = tiles_[home]->l2.find(line);
    if (he == nullptr)
        panic("inclusion violation: L1 evict of line %llx not in home"
              " %u", static_cast<unsigned long long>(line), home);

    eraseHolder(he->meta.holders, c);
    he->meta.sharers.remove(c);
    if (was_m) {
        he->words = victim.words;
        he->meta.dirty = true;
        ++stats_.protocol.dirtyWritebacks;
        energy_.addL2Line();
    } else {
        energy_.addL2TagOnly();
    }
    energy_.addDirAccess();
    if (he->meta.owner == c)
        he->meta.owner = kInvalidCore;
    if (he->meta.holders.empty()) {
        he->meta.dstate = DirState::Uncached;
        he->meta.owner = kInvalidCore;
    } else if (he->meta.owner == kInvalidCore) {
        he->meta.dstate = DirState::Shared;
    }

    const Mode m = classifier_->onPrivateRemoval(*he->meta.cls, c, util,
                                                 RemovalKind::Eviction);
    if (m == Mode::Remote)
        ++stats_.protocol.demotions;
}

void
Multicore::l2Evict(CoreId home, L2Cache::Entry &victim, Cycle t)
{
    const LineAddr line = victim.tag;
    const std::vector<CoreId> targets = victim.meta.holders;
    for (const CoreId s : targets) {
        const Cycle t_arr = mesh_.unicast(home, s, cfg_.headerFlits, t);
        ++stats_.protocol.invalidationsSent;
        const std::uint32_t ack =
            dropHolderCopy(s, line, victim, true, t_arr);
        mesh_.unicast(s, home, ack, t_arr + 1);
    }
    victim.meta.holders.clear();
    victim.meta.sharers.clear();

    if (victim.meta.dirty) {
        dram_.writeLine(line, victim.words);
        const CoreId ctrl = dram_.controllerTile(line);
        const Cycle tw = mesh_.unicast(
            home, ctrl, cfg_.headerFlits + cfg_.lineFlits, t);
        dram_.access(line, tw);
        ++stats_.protocol.dramWritebacks;
        energy_.addL2Line();
    }
    ++stats_.l2.evictions;
    ++stats_.protocol.l2Evictions;
    tiles_[home]->l2.invalidate(victim);
}

void
Multicore::flushPageFromSlice(CoreId old_home, PageAddr page, Cycle t)
{
    const std::uint32_t lines_per_page = cfg_.pageSize / cfg_.lineSize;
    const LineAddr first = page << (pageBits_ - lineBits_);
    Tile &ht = *tiles_[old_home];
    for (std::uint32_t i = 0; i < lines_per_page; ++i) {
        if (auto *e = ht.l2.find(first + i)) {
            l2Evict(old_home, *e, t);
            ++stats_.protocol.rehomeFlushes;
        }
    }
}

CoreId
Multicore::homeOf(LineAddr line, CoreId requester) const
{
    const auto *rec = pageTable_.lookup(pageOfLine(line));
    if (rec == nullptr)
        panic("home lookup before page classification (line %llx)",
              static_cast<unsigned long long>(line));
    return placement_.home(line, *rec, requester);
}

void
Multicore::handleBarrier(CoreId c, Workload &workload)
{
    // Message-based tree barrier: arrivals are single-flit unicasts to
    // a central tile and the release is one broadcast — barrier cost
    // is network latency, not cache-line ping-pong. (Lock-protected
    // critical sections, where the paper's synchronization effects
    // live, do go through the coherence protocol.)
    Tile &tl = *tiles_[c];
    const CoreId bhome = static_cast<CoreId>(cfg_.numCores / 2);
    const Cycle t_arr =
        mesh_.unicast(c, bhome, cfg_.headerFlits, tl.now);
    tl.stats.latency.synchronization += t_arr - tl.now;
    tl.now = t_arr;

    if (barrier_.arrive(c, t_arr)) {
        const Cycle rel = barrier_.releaseTime();
        std::vector<Cycle> wake;
        mesh_.broadcast(bhome, cfg_.headerFlits, rel, wake);
        if (barrierReleases_ + 1 == workload.warmupBarriers()) {
            // Warm-up boundary: align every core on one clock so the
            // measurement epoch starts with exact per-core breakdown
            // invariants (total() == finishTime).
            const Cycle aligned =
                *std::max_element(wake.begin(), wake.end());
            std::fill(wake.begin(), wake.end(), aligned);
        }
        for (const CoreId w : barrier_.waiters()) {
            Tile &wt = *tiles_[w];
            wt.stats.latency.synchronization +=
                wake[w] - barrier_.arrivalOf(w);
            wt.now = wake[w];
            wt.status = CoreStatus::Runnable;
            schedule(w, wake[w]);
        }
        // The releasing arrival may still have to wait for an earlier-
        // arrived core whose completion time exceeded ours (lax
        // synchronization): charge the residue.
        tl.stats.latency.synchronization += wake[c] - t_arr;
        tl.now = wake[c];
        barrier_.resetGeneration();
        ++barrierReleases_;
        if (barrierReleases_ == workload.warmupBarriers())
            resetStatsForMeasurement(tl.now);
        schedule(c, tl.now);
    } else {
        tl.status = CoreStatus::BlockedBarrier;
    }
}

void
Multicore::resetStatsForMeasurement(Cycle t)
{
    statsStart_ = t;
    for (auto &tp : tiles_)
        tp->stats = CoreStats{};
    stats_.l2 = CacheStats{};
    stats_.protocol = ProtocolStats{};
    stats_.evictionUtil = UtilizationHistogram{};
    stats_.invalidationUtil = UtilizationHistogram{};
    // Links also restart clean: every core resumes on one aligned
    // clock at the boundary, and carrying saturated warm-up bookings
    // into the measured epoch would charge phantom queueing.
    mesh_.reset();
    energy_.reset();
}

void
Multicore::handleLockAcquire(CoreId c, std::uint32_t id,
                             Workload &workload)
{
    if (id >= locks_.size())
        fatal("lock id %u out of range (%zu locks)", id, locks_.size());
    Tile &tl = *tiles_[c];
    memAccess(c, workload.lockAddr(id), true, false);
    const Cycle t_end = tl.now;

    if (locks_[id].tryAcquire(c)) {
        schedule(c, t_end);
    } else {
        locks_[id].enqueue(c, t_end);
        tl.status = CoreStatus::BlockedLock;
    }
}

void
Multicore::handleLockRelease(CoreId c, std::uint32_t id,
                             Workload &workload)
{
    if (id >= locks_.size())
        fatal("lock id %u out of range (%zu locks)", id, locks_.size());
    Tile &tl = *tiles_[c];
    if (locks_[id].holder() != c)
        fatal("core %u releases lock %u it does not hold", c, id);
    memAccess(c, workload.lockAddr(id), true, false);
    const Cycle t_end = tl.now;

    LockState::Waiter w{};
    if (locks_[id].release(c, w)) {
        Tile &wt = *tiles_[w.core];
        const Cycle wake = std::max(t_end, w.readyAt);
        wt.stats.latency.synchronization += wake - w.readyAt;
        wt.now = wake;
        wt.status = CoreStatus::Runnable;
        // The handoff transfers the lock line to the new holder.
        wt.pending.push_front(MemOp::read(workload.lockAddr(id)));
        schedule(w.core, wake);
    }
    schedule(c, t_end);
}

void
Multicore::refWrite(Addr addr, std::uint64_t v)
{
    if (checkFunctional_)
        refMem_[addr & ~Addr{7}] = v;
}

void
Multicore::checkRead(Addr addr, std::uint64_t got)
{
    if (!checkFunctional_)
        return;
    const auto it = refMem_.find(addr & ~Addr{7});
    const std::uint64_t expect = it == refMem_.end() ? 0 : it->second;
    if (got != expect) {
        ++functionalErrors_;
        if (functionalErrors_ <= 10) {
            warn("functional mismatch at %llx: got %llu expect %llu",
                 static_cast<unsigned long long>(addr),
                 static_cast<unsigned long long>(got),
                 static_cast<unsigned long long>(expect));
        }
    }
}

Cycle
Multicore::testAccess(CoreId core, Addr addr, bool is_write)
{
    memAccess(core, addr, is_write, false);
    return tiles_[core]->now;
}

void
Multicore::finalizeStats(Workload &workload)
{
    (void)workload;
    for (std::uint32_t c = 0; c < cfg_.numCores; ++c)
        stats_.perCore[c] = tiles_[c]->stats;
    stats_.network = mesh_.stats();
    stats_.energy = energy_.breakdown();
}

} // namespace lacc
