/**
 * @file
 * The whole-system simulator: a tiled multicore running a pluggable
 * coherence protocol (protocol/factory.hh) on a Private-L1 Shared-L2
 * (R-NUCA) organization. The default protocol is the paper's
 * Locality-Aware Adaptive Coherence over ACKwise_p directories
 * (protocol/lacc.hh); the full-map baseline is selected via
 * SystemConfig::directoryKind (protocol/fullmap.hh).
 *
 * Modeling level mirrors the paper's Graphite setup (§4.1):
 * trace-driven in-order 1-IPC cores with per-core clocks (lax
 * synchronization), analytical interconnect timing with link
 * contention (net/factory.hh — 2-D mesh by default),
 * per-line transaction serialization at the directory, and functional
 * data movement through the protocol (values really travel via L1
 * copies, word accesses, write-backs, and DRAM, and can be checked
 * against a reference memory).
 *
 * Multicore itself is orchestration only: per-core clocks and the
 * event loop, workload stepping (including the ifetch walker),
 * barrier/lock synchronization, warm-up stats resets, and functional
 * checking. The coherence state machine — miss transactions,
 * invalidation fan-out, write-backs, L1/L2 fills and evictions, the
 * remote-word path — lives behind the protocol layer's
 * L1Controller/DirectoryController interfaces.
 *
 * Directory transactions execute atomically in simulated-time order:
 * protocol state updates are instantaneous at transaction processing
 * time while all message latencies and energies are accounted, which
 * sidesteps transient-state races exactly the way cycle-approximate
 * simulators do.
 */

#ifndef LACC_SYSTEM_MULTICORE_HH
#define LACC_SYSTEM_MULTICORE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/classifier.hh"
#include "dram/dram.hh"
#include "energy/model.hh"
#include "fault/injector.hh"
#include "net/factory.hh"
#include "protocol/factory.hh"
#include "protocol/messages.hh"
#include "protocol/protocol.hh"
#include "rnuca/page_table.hh"
#include "rnuca/placement.hh"
#include "sim/addr_map.hh"
#include "sim/config.hh"
#include "sim/functional.hh"
#include "sim/stats.hh"
#include "system/engine.hh"
#include "system/tile.hh"
#include "workload/sync.hh"
#include "workload/workload.hh"

namespace lacc {

/** The simulated multicore system; see file header. */
class Multicore
{
  public:
    explicit Multicore(const SystemConfig &cfg);

    /**
     * Enable/disable functional read checking against the reference
     * memory (default on; benches disable it for speed — data still
     * moves through the protocol either way).
     */
    void setFunctionalChecks(bool on) { mem_.setChecks(on); }

    /**
     * Run @p workload to completion and return the collected
     * statistics. The workload's core count must match the
     * configuration.
     *
     * Throws RunAbort (sim/abort.hh) when the watchdog deadline
     * expires mid-run or an armed fault plan hits an unrecoverable
     * condition; the system is *not* reusable afterwards (run() is
     * single-use either way).
     */
    const SystemStats &run(Workload &workload);

    /**
     * Arm the wall-clock watchdog: a run exceeding @p ms milliseconds
     * aborts with RunAbort(Timeout) instead of spinning forever (the
     * engines poll cooperatively from their serialized loops).
     * @p ms <= 0 disarms (the default).
     */
    void setTimeoutMs(double ms) { timeoutMs_ = ms; }

    /**
     * Cheap cooperative watchdog poll for the engine loops: samples
     * the wall clock once every 1024 calls; latches once expired.
     */
    bool
    watchdogExpired()
    {
        if (timeoutMs_ <= 0.0)
            return false;
        if (watchdogFired_)
            return true;
        if ((++watchdogPoll_ & 0x3FFu) != 0)
            return false;
        if (std::chrono::steady_clock::now() >= watchdogDeadline_)
            watchdogFired_ = true;
        return watchdogFired_;
    }

    /** Statistics of the last (or in-progress) run. */
    const SystemStats &stats() const { return stats_; }

    /** The configuration this system was built with. */
    const SystemConfig &config() const { return cfg_; }

    /** Functional mismatches observed (must be 0 after a run). */
    std::uint64_t functionalErrors() const { return mem_.errors(); }

    // ---- Test / inspection hooks --------------------------------------
    /** Core @p c's tile: its L1s, L2 slice + directory, and clock. */
    Tile &tile(CoreId c) { return *tiles_[c]; }
    const Tile &tile(CoreId c) const { return *tiles_[c]; }
    /** The interconnect model (link utilization inspection). */
    NetworkModel &network() { return *network_; }
    /** R-NUCA page classification state (first-touch records). */
    const PageTable &pageTable() const { return pageTable_; }
    /** R-NUCA line-to-home-slice placement policy. */
    const Placement &placement() const { return placement_; }
    /** The coherence protocol this system runs (factory-selected). */
    CoherenceProtocol &protocol() { return *protocol_; }
    /** The execution engine driving the event loop (factory-selected). */
    ExecutionEngine &engine() { return *engine_; }
    /** The system-wide locality classifier policy object. */
    LocalityClassifier &classifier() { return protocol_->classifier(); }
    /** The DRAM model behind the memory controllers. */
    DramModel &dram() { return dram_; }
    /** The functional reference memory (verification oracle). */
    const FunctionalMemory &functionalMemory() const { return mem_; }
    /** The armed fault injector, or null under FaultPlan none. */
    FaultInjector *faultInjector() { return fault_.get(); }

    /**
     * Test hook: perform one data access (or, with @p is_ifetch, one
     * instruction fetch) on @p core at its current local time (no
     * workload needed). The verification layer's stepwise replay and
     * state enumerator (src/verify/) are built on this. @return the
     * completion time.
     */
    Cycle testAccess(CoreId core, Addr addr, bool is_write,
                     bool is_ifetch = false);

  private:
    // Engines drive the event loop: they pop/dispatch ops via step()
    // and receive the schedule() callbacks it generates.
    friend class SerialEngine;
    friend class ShardedEngine;

    // ---- Event loop -----------------------------------------------------
    void step(CoreId c, const MemOp &op);
    void schedule(CoreId c, Cycle t);
    void finalizeStats(Workload &workload);

    /**
     * Warm-up boundary (Workload::warmupBarriers): zero all statistics
     * while keeping caches, directories, page table, and link state
     * warm. Called at a barrier release, when every core's clock
     * equals @p t, so the per-core breakdown invariants restart
     * cleanly.
     */
    void resetStatsForMeasurement(Cycle t);

    /** Advance the ifetch walker by @p n instructions. */
    void advanceInstructions(CoreId c, std::uint64_t n,
                             const Workload &workload);

    // ---- Synchronization -------------------------------------------------
    void handleBarrier(CoreId c, Workload &workload);
    void handleLockAcquire(CoreId c, std::uint32_t id,
                           Workload &workload);
    void handleLockRelease(CoreId c, std::uint32_t id,
                           Workload &workload);

    SystemConfig cfg_;
    AddressMap addr_;

    EnergyModel energy_;
    /** Factory-built interconnect (SystemConfig::networkKind). */
    std::unique_ptr<NetworkModel> network_;
    MessageTransport net_;
    DramModel dram_;
    PageTable pageTable_;
    Placement placement_;

    std::vector<std::unique_ptr<Tile>> tiles_;
    SystemStats stats_;

    // Functional reference memory (word granularity).
    FunctionalMemory mem_;

    /** Armed fault injector (null under FaultPlan none). */
    std::unique_ptr<FaultInjector> fault_;

    // Wall-clock watchdog (setTimeoutMs / watchdogExpired).
    double timeoutMs_ = 0.0;
    std::chrono::steady_clock::time_point watchdogDeadline_;
    std::uint32_t watchdogPoll_ = 0;
    bool watchdogFired_ = false;

    /**
     * The pluggable execution engine (SystemConfig::engineKind) —
     * constructed before the protocol so its touch observer can be
     * wired into the ProtocolContext.
     */
    std::unique_ptr<ExecutionEngine> engine_;

    /** The pluggable coherence engine (constructed after the tiles). */
    std::unique_ptr<CoherenceProtocol> protocol_;

    // Event loop (owned by the engine; set for the duration of run()).
    Workload *workload_ = nullptr;

    // Synchronization.
    BarrierState barrier_;
    std::vector<LockState> locks_;
    std::vector<Cycle> barrierWake_; //!< reusable broadcast arrivals
    std::uint32_t barrierReleases_ = 0;
    Cycle statsStart_ = 0; //!< measurement epoch (after warm-up)
};

} // namespace lacc

#endif // LACC_SYSTEM_MULTICORE_HH
