/**
 * @file
 * The whole-system simulator: a tiled multicore running the
 * Locality-Aware Adaptive Coherence protocol on a Private-L1
 * Shared-L2 (R-NUCA) organization with ACKwise_p directories (§3.1).
 *
 * Modeling level mirrors the paper's Graphite setup (§4.1):
 * trace-driven in-order 1-IPC cores with per-core clocks (lax
 * synchronization), analytical mesh timing with link contention,
 * per-line transaction serialization at the directory, and functional
 * data movement through the protocol (values really travel via L1
 * copies, word accesses, write-backs, and DRAM, and can be checked
 * against a reference memory).
 *
 * Directory transactions execute atomically in simulated-time order:
 * protocol state updates are instantaneous at transaction processing
 * time while all message latencies and energies are accounted, which
 * sidesteps transient-state races exactly the way cycle-approximate
 * simulators do.
 */

#ifndef LACC_SYSTEM_MULTICORE_HH
#define LACC_SYSTEM_MULTICORE_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/classifier.hh"
#include "dram/dram.hh"
#include "energy/model.hh"
#include "net/mesh.hh"
#include "rnuca/page_table.hh"
#include "rnuca/placement.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "system/tile.hh"
#include "workload/sync.hh"
#include "workload/workload.hh"

namespace lacc {

/** The simulated multicore system; see file header. */
class Multicore
{
  public:
    explicit Multicore(const SystemConfig &cfg);

    /**
     * Enable/disable functional read checking against the reference
     * memory (default on; benches disable it for speed — data still
     * moves through the protocol either way).
     */
    void setFunctionalChecks(bool on) { checkFunctional_ = on; }

    /**
     * Run @p workload to completion and return the collected
     * statistics. The workload's core count must match the
     * configuration.
     */
    const SystemStats &run(Workload &workload);

    /** Statistics of the last (or in-progress) run. */
    const SystemStats &stats() const { return stats_; }

    /** The configuration this system was built with. */
    const SystemConfig &config() const { return cfg_; }

    /** Functional mismatches observed (must be 0 after a run). */
    std::uint64_t functionalErrors() const { return functionalErrors_; }

    // ---- Test / inspection hooks --------------------------------------
    /** Core @p c's tile: its L1s, L2 slice + directory, and clock. */
    Tile &tile(CoreId c) { return *tiles_[c]; }
    const Tile &tile(CoreId c) const { return *tiles_[c]; }
    /** The 2-D mesh interconnect (link utilization inspection). */
    MeshNetwork &network() { return mesh_; }
    /** R-NUCA page classification state (first-touch records). */
    const PageTable &pageTable() const { return pageTable_; }
    /** R-NUCA line-to-home-slice placement policy. */
    const Placement &placement() const { return placement_; }
    /** The system-wide locality classifier policy object. */
    LocalityClassifier &classifier() { return *classifier_; }
    /** The DRAM model behind the memory controllers. */
    DramModel &dram() { return dram_; }

    /**
     * Test hook: perform one data access on @p core at its current
     * local time (no workload needed). @return the completion time.
     */
    Cycle testAccess(CoreId core, Addr addr, bool is_write);

  private:
    // ---- Event loop -----------------------------------------------------
    void step(CoreId c, const MemOp &op);
    void schedule(CoreId c, Cycle t);
    void finalizeStats(Workload &workload);

    /**
     * Warm-up boundary (Workload::warmupBarriers): zero all statistics
     * while keeping caches, directories, page table, and link state
     * warm. Called at a barrier release, when every core's clock
     * equals @p t, so the per-core breakdown invariants restart
     * cleanly.
     */
    void resetStatsForMeasurement(Cycle t);

    // ---- Core-side paths --------------------------------------------------
    /**
     * One data or instruction access through the L1; advances the
     * core's clock and attributes latency.
     *
     * @param charge_fetch_energy explicit accesses charge L1 energy;
     *        walker-originated ifetches are covered by the bulk
     *        per-instruction fetch energy
     */
    void memAccess(CoreId c, Addr addr, bool is_write, bool is_ifetch,
                   bool charge_fetch_energy = true);

    /** Advance the ifetch walker by @p n instructions. */
    void advanceInstructions(CoreId c, std::uint64_t n,
                             const Workload &workload);

    // ---- Directory transaction --------------------------------------------
    void missTransaction(CoreId c, Addr addr, bool is_write,
                         bool is_ifetch, bool upgrade);

    /**
     * Find the line in the home slice or fill it from DRAM.
     * Outputs the stage boundary times for attribution.
     */
    L2Cache::Entry *l2FindOrFill(CoreId home, LineAddr line, Cycle t_arr,
                                 Cycle &t_ready, Cycle &waiting,
                                 Cycle &offchip);

    /**
     * Invalidate all private holders except @p except; merges M data
     * into the L2 copy. @return time all acks have been collected.
     */
    Cycle invalidateHolders(CoreId home, L2Cache::Entry &entry,
                            CoreId except, Cycle t);

    /** Downgrade the exclusive owner (read path): data to L2, owner
     * keeps an S copy. @return ack time. */
    Cycle syncWriteback(CoreId home, L2Cache::Entry &entry, Cycle t);

    /** Install a line into an L1, evicting the victim if needed. */
    void l1Fill(CoreId c, bool is_ifetch, LineAddr line,
                const std::vector<std::uint64_t> &words, L1State st,
                Cycle t);

    /** Handle an L1 eviction: notify the home, classify (§3.2). */
    void l1Evict(CoreId c, bool is_ifetch, L1Cache::Entry &victim,
                 Cycle t);

    /** Evict an L2 line: back-invalidate holders, write back. */
    void l2Evict(CoreId home, L2Cache::Entry &victim, Cycle t);

    /** R-NUCA private->shared re-homing flush (§3.1). */
    void flushPageFromSlice(CoreId old_home, PageAddr page, Cycle t);

    /**
     * Remove one holder's L1 copy (shared invalidation mechanics).
     *
     * @param l2_eviction true when driven by an inclusive L2 eviction:
     *        the locality state dies with the entry, so the classifier
     *        is not consulted and the tracker records a capacity event
     * @return ack flits (header, plus the line for an M write-back)
     */
    std::uint32_t dropHolderCopy(CoreId s, LineAddr line,
                                 L2Cache::Entry &entry,
                                 bool l2_eviction, Cycle t);

    // ---- Synchronization -------------------------------------------------
    void handleBarrier(CoreId c, Workload &workload);
    void handleLockAcquire(CoreId c, std::uint32_t id,
                           Workload &workload);
    void handleLockRelease(CoreId c, std::uint32_t id,
                           Workload &workload);

    // ---- Functional data -----------------------------------------------
    std::uint64_t nextValue() { return ++valueCounter_; }
    void refWrite(Addr addr, std::uint64_t v);
    void checkRead(Addr addr, std::uint64_t got);

    // ---- Address helpers ---------------------------------------------------
    LineAddr lineOf(Addr a) const { return a >> lineBits_; }
    PageAddr pageOf(Addr a) const { return a >> pageBits_; }
    PageAddr pageOfLine(LineAddr l) const
    {
        return l >> (pageBits_ - lineBits_);
    }
    std::uint32_t wordOf(Addr a) const
    {
        return static_cast<std::uint32_t>((a >> 3) &
                                          (cfg_.wordsPerLine() - 1));
    }

    /** Home slice for a line (page table must already classify it). */
    CoreId homeOf(LineAddr line, CoreId requester) const;

    SystemConfig cfg_;
    std::uint32_t lineBits_;
    std::uint32_t pageBits_;

    EnergyModel energy_;
    MeshNetwork mesh_;
    DramModel dram_;
    PageTable pageTable_;
    Placement placement_;
    std::unique_ptr<LocalityClassifier> classifier_;

    std::vector<std::unique_ptr<Tile>> tiles_;
    SystemStats stats_;

    // Event loop.
    using QEntry = std::pair<Cycle, CoreId>;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>>
        queue_;
    Workload *workload_ = nullptr;

    // Synchronization.
    BarrierState barrier_;
    std::vector<LockState> locks_;
    std::uint32_t barrierReleases_ = 0;
    Cycle statsStart_ = 0; //!< measurement epoch (after warm-up)

    // Functional reference memory (word granularity).
    bool checkFunctional_ = true;
    std::uint64_t valueCounter_ = 0;
    std::uint64_t functionalErrors_ = 0;
    std::unordered_map<Addr, std::uint64_t> refMem_;
};

} // namespace lacc

#endif // LACC_SYSTEM_MULTICORE_HH
