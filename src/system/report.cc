#include "system/report.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/log.hh"

namespace lacc {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("table row arity %zu != header arity %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        width[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i == 0 ? "" : "  ");
            os << row[i];
            for (std::size_t p = row[i].size(); p < width[i]; ++p)
                os << ' ';
        }
        os << '\n';
    };
    emit(headers_);
    std::vector<std::string> rule(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        rule[i] = std::string(width[i], '-');
    emit(rule);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace lacc
