#include "system/report.hh"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/config.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "system/experiment.hh"

namespace lacc {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("table row arity %zu != header arity %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        width[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i == 0 ? "" : "  ");
            os << row[i];
            for (std::size_t p = row[i].size(); p < width[i]; ++p)
                os << ' ';
        }
        os << '\n';
    };
    emit(headers_);
    std::vector<std::string> rule(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        rule[i] = std::string(width[i], '-');
    emit(rule);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
}

std::string
fmtPct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

Json
Table::toJson() const
{
    Json j = Json::object();
    Json hdr = Json::array();
    for (const auto &h : headers_)
        hdr.push(h);
    j["headers"] = std::move(hdr);
    Json rows = Json::array();
    for (const auto &row : rows_) {
        Json r = Json::array();
        for (const auto &cell : row)
            r.push(cell);
        rows.push(std::move(r));
    }
    j["rows"] = std::move(rows);
    return j;
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

namespace {

Json
cacheToJson(const CacheStats &c)
{
    Json j = Json::object();
    j["loads"] = c.loads;
    j["stores"] = c.stores;
    j["load_misses"] = c.loadMisses;
    j["store_misses"] = c.storeMisses;
    j["evictions"] = c.evictions;
    j["invalidations_recv"] = c.invalidationsRecv;
    j["fills"] = c.fills;
    return j;
}

CacheStats
cacheFromJson(const Json &j)
{
    CacheStats c;
    c.loads = j.at("loads").asUint();
    c.stores = j.at("stores").asUint();
    c.loadMisses = j.at("load_misses").asUint();
    c.storeMisses = j.at("store_misses").asUint();
    c.evictions = j.at("evictions").asUint();
    c.invalidationsRecv = j.at("invalidations_recv").asUint();
    c.fills = j.at("fills").asUint();
    return c;
}

Json
histToJson(const UtilizationHistogram &h)
{
    Json j = Json::object();
    j["total"] = h.total();
    Json buckets = Json::array();
    for (std::uint32_t b = 0; b < 5; ++b)
        buckets.push(h.bucketFraction(b));
    j["paper_buckets"] = std::move(buckets);
    Json counts = Json::array();
    for (const auto c : h.counts)
        counts.push(c);
    j["counts"] = std::move(counts);
    return j;
}

UtilizationHistogram
histFromJson(const Json &j)
{
    UtilizationHistogram h;
    const auto &counts = j.at("counts").elements();
    for (std::size_t i = 0; i < counts.size() && i < h.counts.size();
         ++i)
        h.counts[i] = counts[i].asUint();
    return h;
}

Json
latencyToJson(const LatencyBreakdown &l)
{
    Json j = Json::object();
    j["compute"] = l.compute;
    j["l1_to_l2"] = l.l1ToL2;
    j["l2_waiting"] = l.l2Waiting;
    j["l2_sharers"] = l.l2Sharers;
    j["off_chip"] = l.offChip;
    j["synchronization"] = l.synchronization;
    j["total"] = l.total();
    return j;
}

LatencyBreakdown
latencyFromJson(const Json &j)
{
    LatencyBreakdown l;
    l.compute = j.at("compute").asUint();
    l.l1ToL2 = j.at("l1_to_l2").asUint();
    l.l2Waiting = j.at("l2_waiting").asUint();
    l.l2Sharers = j.at("l2_sharers").asUint();
    l.offChip = j.at("off_chip").asUint();
    l.synchronization = j.at("synchronization").asUint();
    return l;
}

Json
energyToJson(const EnergyBreakdown &e)
{
    Json j = Json::object();
    j["l1i"] = e.l1i;
    j["l1d"] = e.l1d;
    j["l2"] = e.l2;
    j["directory"] = e.directory;
    j["router"] = e.router;
    j["link"] = e.link;
    j["total"] = e.total();
    return j;
}

EnergyBreakdown
energyFromJson(const Json &j)
{
    EnergyBreakdown e;
    e.l1i = j.at("l1i").asDouble();
    e.l1d = j.at("l1d").asDouble();
    e.l2 = j.at("l2").asDouble();
    e.directory = j.at("directory").asDouble();
    e.router = j.at("router").asDouble();
    e.link = j.at("link").asDouble();
    return e;
}

Json
missesToJson(const MissBreakdown &m)
{
    Json j = Json::object();
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(MissType::NumTypes); ++i)
        j[missTypeName(static_cast<MissType>(i))] = m.counts[i];
    j["total"] = m.total();
    return j;
}

MissBreakdown
missesFromJson(const Json &j)
{
    MissBreakdown m;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(MissType::NumTypes); ++i)
        m.counts[i] =
            j.at(missTypeName(static_cast<MissType>(i))).asUint();
    return m;
}

Json
networkToJson(const NetworkStats &n)
{
    Json j = Json::object();
    j["unicasts"] = n.unicasts;
    j["broadcasts"] = n.broadcasts;
    j["flits_injected"] = n.flitsInjected;
    j["flit_hops"] = n.flitHops;
    j["contention_cycles"] = n.contentionCycles;
    return j;
}

NetworkStats
networkFromJson(const Json &j)
{
    NetworkStats n;
    n.unicasts = j.at("unicasts").asUint();
    n.broadcasts = j.at("broadcasts").asUint();
    n.flitsInjected = j.at("flits_injected").asUint();
    n.flitHops = j.at("flit_hops").asUint();
    n.contentionCycles = j.at("contention_cycles").asUint();
    return n;
}

Json
faultsToJson(const FaultStats &f)
{
    Json j = Json::object();
    j["link_drops"] = f.linkDrops;
    j["link_corruptions"] = f.linkCorruptions;
    j["retransmits"] = f.retransmits;
    j["nacks"] = f.nacks;
    j["soft_errors"] = f.softErrors;
    j["ecc_corrected"] = f.eccCorrected;
    j["ecc_detected"] = f.eccDetected;
    j["scrubs"] = f.scrubs;
    j["silent_corruptions"] = f.silentCorruptions;
    return j;
}

FaultStats
faultsFromJson(const Json &j)
{
    FaultStats f;
    f.linkDrops = j.at("link_drops").asUint();
    f.linkCorruptions = j.at("link_corruptions").asUint();
    f.retransmits = j.at("retransmits").asUint();
    f.nacks = j.at("nacks").asUint();
    f.softErrors = j.at("soft_errors").asUint();
    f.eccCorrected = j.at("ecc_corrected").asUint();
    f.eccDetected = j.at("ecc_detected").asUint();
    f.scrubs = j.at("scrubs").asUint();
    f.silentCorruptions = j.at("silent_corruptions").asUint();
    return f;
}

Json
protocolToJson(const ProtocolStats &p)
{
    Json j = Json::object();
    j["private_read_grants"] = p.privateReadGrants;
    j["private_write_grants"] = p.privateWriteGrants;
    j["upgrade_grants"] = p.upgradeGrants;
    j["remote_reads"] = p.remoteReads;
    j["remote_writes"] = p.remoteWrites;
    j["promotions"] = p.promotions;
    j["demotions"] = p.demotions;
    j["invalidations_sent"] = p.invalidationsSent;
    j["broadcast_invals"] = p.broadcastInvals;
    j["sync_writebacks"] = p.syncWritebacks;
    j["dirty_writebacks"] = p.dirtyWritebacks;
    j["l2_evictions"] = p.l2Evictions;
    j["rehome_flushes"] = p.rehomeFlushes;
    j["dram_fetches"] = p.dramFetches;
    j["dram_writebacks"] = p.dramWritebacks;
    return j;
}

ProtocolStats
protocolFromJson(const Json &j)
{
    ProtocolStats p;
    p.privateReadGrants = j.at("private_read_grants").asUint();
    p.privateWriteGrants = j.at("private_write_grants").asUint();
    p.upgradeGrants = j.at("upgrade_grants").asUint();
    p.remoteReads = j.at("remote_reads").asUint();
    p.remoteWrites = j.at("remote_writes").asUint();
    p.promotions = j.at("promotions").asUint();
    p.demotions = j.at("demotions").asUint();
    p.invalidationsSent = j.at("invalidations_sent").asUint();
    p.broadcastInvals = j.at("broadcast_invals").asUint();
    p.syncWritebacks = j.at("sync_writebacks").asUint();
    p.dirtyWritebacks = j.at("dirty_writebacks").asUint();
    p.l2Evictions = j.at("l2_evictions").asUint();
    p.rehomeFlushes = j.at("rehome_flushes").asUint();
    p.dramFetches = j.at("dram_fetches").asUint();
    p.dramWritebacks = j.at("dram_writebacks").asUint();
    return p;
}

} // namespace

Json
toJson(const SystemConfig &cfg)
{
    Json j = Json::object();
    j["num_cores"] = cfg.numCores;
    j["mesh_width"] = cfg.meshWidth;
    j["cluster_size"] = cfg.clusterSize;
    j["line_size"] = cfg.lineSize;
    j["page_size"] = cfg.pageSize;
    j["l1i_size_kb"] = cfg.l1iSizeKB;
    j["l1i_assoc"] = cfg.l1iAssoc;
    j["l1d_size_kb"] = cfg.l1dSizeKB;
    j["l1d_assoc"] = cfg.l1dAssoc;
    j["l1_latency"] = cfg.l1Latency;
    j["l2_size_kb"] = cfg.l2SizeKB;
    j["l2_assoc"] = cfg.l2Assoc;
    j["l2_latency"] = cfg.l2Latency;
    j["num_mem_controllers"] = cfg.numMemControllers;
    j["dram_bandwidth_gbps"] = cfg.dramBandwidthGBps;
    j["dram_latency"] = cfg.dramLatency;
    j["network"] = networkKindName(cfg.networkKind);
    j["hop_latency"] = cfg.hopLatency;
    j["flit_width_bits"] = cfg.flitWidthBits;
    j["header_flits"] = cfg.headerFlits;
    j["word_flits"] = cfg.wordFlits;
    j["line_flits"] = cfg.lineFlits;
    j["model_contention"] = cfg.modelContention;
    j["directory"] = directoryKindName(cfg.directoryKind);
    j["ackwise_pointers"] = cfg.ackwisePointers;
    j["protocol"] = protocolKindName(cfg.protocolKind);
    j["classifier"] = classifierKindName(cfg.classifierKind);
    j["pct"] = cfg.pct;
    j["rat_max"] = cfg.ratMax;
    j["n_rat_levels"] = cfg.nRatLevels;
    j["classifier_k"] = cfg.classifierK;
    j["complete_learning_shortcut"] = cfg.completeLearningShortcut;
    j["rnuca_enabled"] = cfg.rnucaEnabled;
    j["faults"] = faultKindName(cfg.faultKind);
    j["fault_rate"] = cfg.faultRate;
    j["fault_seed"] = cfg.faultSeed;
    j["seed"] = cfg.seed;
    return j;
}

Json
toJson(const SystemStats &stats)
{
    CoreStats sum;
    for (const auto &c : stats.perCore)
        sum += c;

    Json j = Json::object();
    j["cores"] = static_cast<std::uint64_t>(stats.perCore.size());
    j["completion_time"] = stats.completionTime();
    Json totals = Json::object();
    totals["instructions"] = sum.instructions;
    totals["mem_reads"] = sum.memReads;
    totals["mem_writes"] = sum.memWrites;
    totals["ifetches"] = sum.ifetches;
    j["core_totals"] = std::move(totals);
    j["latency"] = latencyToJson(sum.latency);
    j["energy"] = energyToJson(stats.energy);
    j["misses"] = missesToJson(sum.misses);
    j["l1d_miss_rate"] = stats.l1dMissRate();
    j["l1i"] = cacheToJson(sum.l1i);
    j["l1d"] = cacheToJson(sum.l1d);
    j["l2"] = cacheToJson(stats.l2);
    j["network"] = networkToJson(stats.network);
    j["protocol"] = protocolToJson(stats.protocol);
    j["faults"] = faultsToJson(stats.faults);
    j["eviction_util"] = histToJson(stats.evictionUtil);
    j["invalidation_util"] = histToJson(stats.invalidationUtil);
    return j;
}

Json
toJson(const RunResult &result)
{
    Json j = Json::object();
    j["completion_time"] = result.completionTime;
    j["energy_total"] = result.energyTotal;
    j["functional_errors"] = result.functionalErrors;
    j["sim_ops"] = result.simOps;
    j["verify_violations"] = result.verifyViolations;
    j["stats"] = toJson(result.stats);
    return j;
}

RunResult
runResultFromJson(const Json &j)
{
    RunResult r;
    r.completionTime = j.at("completion_time").asUint();
    r.energyTotal = j.at("energy_total").asDouble();
    r.functionalErrors = j.at("functional_errors").asUint();
    // Schema v1 documents predate sim_ops, and v2 predates the fault
    // fields; treat them as optional so archived artifacts stay
    // loadable.
    if (const Json *ops = j.find("sim_ops"))
        r.simOps = ops->asUint();
    if (const Json *vv = j.find("verify_violations"))
        r.verifyViolations = vv->asUint();

    const Json &s = j.at("stats");
    // Aggregates land in core 0 of a perCore vector of the original
    // size, so completionTime() and the total*() accessors reproduce
    // the serialized values (per-core detail is intentionally summed).
    r.stats.perCore.resize(s.at("cores").asUint());
    if (!r.stats.perCore.empty()) {
        CoreStats &c0 = r.stats.perCore[0];
        const Json &totals = s.at("core_totals");
        c0.instructions = totals.at("instructions").asUint();
        c0.memReads = totals.at("mem_reads").asUint();
        c0.memWrites = totals.at("mem_writes").asUint();
        c0.ifetches = totals.at("ifetches").asUint();
        c0.finishTime = s.at("completion_time").asUint();
        c0.latency = latencyFromJson(s.at("latency"));
        c0.misses = missesFromJson(s.at("misses"));
        c0.l1i = cacheFromJson(s.at("l1i"));
        c0.l1d = cacheFromJson(s.at("l1d"));
    }
    r.stats.l2 = cacheFromJson(s.at("l2"));
    r.stats.network = networkFromJson(s.at("network"));
    r.stats.protocol = protocolFromJson(s.at("protocol"));
    if (const Json *f = s.find("faults"))
        r.stats.faults = faultsFromJson(*f);
    r.stats.energy = energyFromJson(s.at("energy"));
    r.stats.evictionUtil = histFromJson(s.at("eviction_util"));
    r.stats.invalidationUtil = histFromJson(s.at("invalidation_util"));
    return r;
}

// ---------------------------------------------------------------------------
// Golden-hash stats signature (tests/test_determinism.cc)
// ---------------------------------------------------------------------------

namespace {

/** Order-sensitive 64-bit FNV-1a accumulator over u64 words. */
struct Digest
{
    std::uint64_t h = 14695981039346656037ULL;

    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xFF;
            h *= 1099511628211ULL;
        }
    }
};

void
addCache(Digest &d, const CacheStats &c)
{
    d.add(c.loads);
    d.add(c.stores);
    d.add(c.loadMisses);
    d.add(c.storeMisses);
    d.add(c.evictions);
    d.add(c.invalidationsRecv);
    d.add(c.fills);
}

void
addLatency(Digest &d, const LatencyBreakdown &l)
{
    d.add(l.compute);
    d.add(l.l1ToL2);
    d.add(l.l2Waiting);
    d.add(l.l2Sharers);
    d.add(l.offChip);
    d.add(l.synchronization);
}

void
addHist(Digest &d, const UtilizationHistogram &h)
{
    for (const auto v : h.counts)
        d.add(v);
}

} // namespace

std::uint64_t
statsSignature(const SystemStats &stats)
{
    Digest d;
    d.add(stats.perCore.size());
    for (const auto &c : stats.perCore) {
        d.add(c.instructions);
        d.add(c.memReads);
        d.add(c.memWrites);
        d.add(c.ifetches);
        d.add(c.finishTime);
        addLatency(d, c.latency);
        for (const auto m : c.misses.counts)
            d.add(m);
        addCache(d, c.l1i);
        addCache(d, c.l1d);
    }
    addCache(d, stats.l2);
    d.add(stats.network.unicasts);
    d.add(stats.network.broadcasts);
    d.add(stats.network.flitsInjected);
    d.add(stats.network.flitHops);
    d.add(stats.network.contentionCycles);
    const ProtocolStats &p = stats.protocol;
    d.add(p.privateReadGrants);
    d.add(p.privateWriteGrants);
    d.add(p.upgradeGrants);
    d.add(p.remoteReads);
    d.add(p.remoteWrites);
    d.add(p.promotions);
    d.add(p.demotions);
    d.add(p.invalidationsSent);
    d.add(p.broadcastInvals);
    d.add(p.syncWritebacks);
    d.add(p.dirtyWritebacks);
    d.add(p.l2Evictions);
    d.add(p.rehomeFlushes);
    d.add(p.dramFetches);
    d.add(p.dramWritebacks);
    addHist(d, stats.evictionUtil);
    addHist(d, stats.invalidationUtil);
    return d.h;
}

} // namespace lacc
