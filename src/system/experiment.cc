#include "system/experiment.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "sim/log.hh"
#include "system/multicore.hh"
#include "verify/invariants.hh"
#include "workload/litmus.hh"
#include "workload/suite.hh"

namespace lacc {

SystemConfig
defaultConfig()
{
    return SystemConfig{}; // struct defaults reproduce Table 1
}

double
opScaleFromEnv()
{
    const char *s = std::getenv("LACC_SCALE");
    if (s == nullptr)
        return 1.0;
    // Require the whole string (modulo trailing whitespace) to parse:
    // atof-style prefix parsing silently accepted "2x" as 2 and made
    // typos look like valid sweeps.
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    bool clean = end != s;
    for (const char *p = end; clean && *p != '\0'; ++p)
        clean = std::isspace(static_cast<unsigned char>(*p)) != 0;
    if (!clean || !std::isfinite(v)) {
        warn("ignoring unparseable LACC_SCALE '%s' (want a positive "
             "number); using 1.0",
             s);
        return 1.0;
    }
    if (v <= 0.0) {
        warn("ignoring non-positive LACC_SCALE '%s'; using 1.0", s);
        return 1.0;
    }
    return v;
}

namespace {

RunResult
collectResult(Multicore &system, const SystemStats &stats)
{
    RunResult r;
    r.stats = stats;
    r.completionTime = stats.completionTime();
    r.energyTotal = stats.energy.total();
    r.functionalErrors = system.functionalErrors();
    for (const auto &c : stats.perCore)
        r.simOps += c.instructions;
    // Fault-injected runs replay the full invariant sweep: an
    // unprotected strike that slipped past the inline read checks
    // (e.g. corrupted sharer tracking) must still be counted, so
    // "zero silent corruption" is a checked claim, not an assumption.
    if (system.config().faultKind != FaultKind::None)
        r.verifyViolations = verify::checkAll(system).size();
    return r;
}

} // namespace

RunResult
runBenchmark(const std::string &bench, const SystemConfig &cfg,
             double op_scale, double timeout_ms)
{
    if (op_scale <= 0.0)
        op_scale = opScaleFromEnv();
    const bool faults = cfg.faultKind != FaultKind::None;

    if (isLitmus(bench)) {
        // Litmus workloads are correctness probes: every read stays
        // checked against the reference memory, so a harness sweep
        // over them doubles as a coherence verification run.
        TraceWorkload workload = makeLitmus(bench, cfg, op_scale);
        Multicore system(cfg);
        system.setTimeoutMs(timeout_ms);
        const SystemStats &stats = system.run(workload);
        return collectResult(system, stats);
    }

    auto workload = makeBenchmark(bench, cfg, op_scale);
    Multicore system(cfg);
    system.setTimeoutMs(timeout_ms);
    // Fault runs keep the functional oracle armed: silent corruption
    // of unprotected structures must be *observed*, not assumed away.
    system.setFunctionalChecks(faults);
    const SystemStats &stats = system.run(*workload);
    return collectResult(system, stats);
}

} // namespace lacc
