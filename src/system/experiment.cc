#include "system/experiment.hh"

#include <cstdlib>

#include "sim/log.hh"
#include "system/multicore.hh"
#include "workload/suite.hh"

namespace lacc {

SystemConfig
defaultConfig()
{
    return SystemConfig{}; // struct defaults reproduce Table 1
}

double
opScaleFromEnv()
{
    const char *s = std::getenv("LACC_SCALE");
    if (s == nullptr)
        return 1.0;
    const double v = std::atof(s);
    if (v <= 0.0) {
        warn("ignoring bad LACC_SCALE '%s'", s);
        return 1.0;
    }
    return v;
}

RunResult
runBenchmark(const std::string &bench, const SystemConfig &cfg,
             double op_scale)
{
    if (op_scale <= 0.0)
        op_scale = opScaleFromEnv();
    auto workload = makeBenchmark(bench, cfg, op_scale);
    Multicore system(cfg);
    system.setFunctionalChecks(false);
    const SystemStats &stats = system.run(*workload);

    RunResult r;
    r.stats = stats;
    r.completionTime = stats.completionTime();
    r.energyTotal = stats.energy.total();
    r.functionalErrors = system.functionalErrors();
    return r;
}

} // namespace lacc
