#include "energy/model.hh"

namespace lacc {
namespace {

// Slot binding is per OS thread, shared by every EnergyModel the
// thread touches. Engine workers only ever tally into the Multicore
// that spawned them, and are joined before run() returns, so a stale
// binding can never leak into another system's accounting window.
thread_local std::size_t tlsEnergySlot = 0;

} // namespace

void
EnergyModel::bindThreadSlot(std::size_t slot)
{
    tlsEnergySlot = slot;
}

EnergyCounts &
EnergyModel::cur()
{
    const std::size_t i =
        tlsEnergySlot < slots_.size() ? tlsEnergySlot : 0;
    return slots_[i];
}

EnergyCounts
EnergyModel::counts() const
{
    EnergyCounts total;
    for (const auto &s : slots_)
        total += s;
    return total;
}

EnergyBreakdown
EnergyModel::breakdown() const
{
    const EnergyCounts c = counts();
    const EnergyParams &p = params_;
    EnergyBreakdown b;
    b.l1i = static_cast<double>(c.l1iAccesses) * p.l1iAccess +
            static_cast<double>(c.l1iFills) * p.l1Fill +
            static_cast<double>(c.l1iTagOnly) * p.l1TagOnly;
    b.l1d = static_cast<double>(c.l1dAccesses) * p.l1dAccess +
            static_cast<double>(c.l1dFills) * p.l1Fill +
            static_cast<double>(c.l1dTagOnly) * p.l1TagOnly;
    b.l2 = static_cast<double>(c.l2Words) * p.l2WordAccess +
           static_cast<double>(c.l2Lines) * p.l2LineAccess +
           static_cast<double>(c.l2TagOnly) * p.l2TagOnly;
    b.directory = static_cast<double>(c.dirAccesses) * p.dirAccess;
    b.router = static_cast<double>(c.routerFlits) * p.routerFlit;
    b.link = static_cast<double>(c.linkFlits) * p.linkFlit;
    return b;
}

} // namespace lacc
