#include "energy/model.hh"

// EnergyModel is header-only; translation unit anchors the build.
