/**
 * @file
 * Dynamic energy model for the memory system (caches + NoC).
 *
 * The paper evaluates dynamic energy only, using McPAT for the caches
 * (with a word-addressable L2 so a word access is cheaper than a line
 * access) and DSENT for the network at the 11 nm node, where links cost
 * more than routers per flit-hop (§4.2, §5.1.1). We embed per-event
 * energies (pJ) with those relationships; the absolute values are
 * calibrated to McPAT/DSENT trends, and only relative magnitudes matter
 * for the normalized results reproduced here.
 */

#ifndef LACC_ENERGY_MODEL_HH
#define LACC_ENERGY_MODEL_HH

#include <cstdint>

#include "sim/stats.hh"

namespace lacc {

/** Per-event dynamic energies in picojoules. */
struct EnergyParams
{
    double l1iAccess = 3.0;    //!< L1-I read (tag + data, 16 KB)
    double l1dAccess = 4.5;    //!< L1-D read/write (tag + data, 32 KB)
    double l1Fill = 18.0;      //!< full-line install into an L1
    double l1TagOnly = 0.5;    //!< probe without data movement
    double l2WordAccess = 6.5; //!< word read/write in the L2 slice
    double l2LineAccess = 52.0;//!< full-line read/write in the L2 slice
    double l2TagOnly = 1.2;    //!< L2 tag probe
    double dirAccess = 0.6;    //!< directory entry lookup/update
    double routerFlit = 0.9;   //!< per flit per router traversal
    double linkFlit = 1.7;     //!< per flit per link traversal (> router)

    /** Default 11 nm-flavored parameters. */
    static EnergyParams defaults11nm() { return EnergyParams{}; }
};

/**
 * Accumulates dynamic energy by component. One instance per system;
 * all tiles/network share it (the paper reports whole-chip totals).
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params =
                             EnergyParams::defaults11nm())
        : params_(params)
    {}

    const EnergyParams &params() const { return params_; }

    // ---- Cache events -------------------------------------------------
    void addL1iAccess() { acc_.l1i += params_.l1iAccess; }

    /** Bulk per-instruction fetch energy (one L1-I access each). */
    void
    addL1iAccesses(std::uint64_t n)
    {
        acc_.l1i += params_.l1iAccess * static_cast<double>(n);
    }
    void addL1iFill() { acc_.l1i += params_.l1Fill; }
    void addL1dAccess() { acc_.l1d += params_.l1dAccess; }
    void addL1dFill() { acc_.l1d += params_.l1Fill; }
    void addL1dTagOnly() { acc_.l1d += params_.l1TagOnly; }
    void addL1iTagOnly() { acc_.l1i += params_.l1TagOnly; }

    void addL2Word() { acc_.l2 += params_.l2WordAccess; }
    void addL2Line() { acc_.l2 += params_.l2LineAccess; }
    void addL2TagOnly() { acc_.l2 += params_.l2TagOnly; }

    void addDirAccess() { acc_.directory += params_.dirAccess; }

    // ---- Network events ------------------------------------------------
    /** @param flit_routers flits x routers traversed. */
    void
    addRouter(std::uint64_t flit_routers)
    {
        acc_.router += params_.routerFlit *
                       static_cast<double>(flit_routers);
    }

    /** @param flit_links flits x links traversed. */
    void
    addLink(std::uint64_t flit_links)
    {
        acc_.link += params_.linkFlit * static_cast<double>(flit_links);
    }

    /** Accumulated breakdown (pJ). */
    const EnergyBreakdown &breakdown() const { return acc_; }

    /** Reset all accumulators. */
    void reset() { acc_ = EnergyBreakdown{}; }

  private:
    EnergyParams params_;
    EnergyBreakdown acc_;
};

} // namespace lacc

#endif // LACC_ENERGY_MODEL_HH
