/**
 * @file
 * Dynamic energy model for the memory system (caches + NoC).
 *
 * The paper evaluates dynamic energy only, using McPAT for the caches
 * (with a word-addressable L2 so a word access is cheaper than a line
 * access) and DSENT for the network at the 11 nm node, where links cost
 * more than routers per flit-hop (§4.2, §5.1.1). We embed per-event
 * energies (pJ) with those relationships; the absolute values are
 * calibrated to McPAT/DSENT trends, and only relative magnitudes matter
 * for the normalized results reproduced here.
 *
 * Accounting is count-based: the model tallies integer event counts
 * and converts to picojoules only when a breakdown is requested. That
 * keeps the accumulators exact (no floating-point ordering effects)
 * and lets the sharded execution engine give each worker thread its
 * own count slot — concurrent tallies merge by integer addition, so
 * the reported energy is independent of thread interleaving.
 */

#ifndef LACC_ENERGY_MODEL_HH
#define LACC_ENERGY_MODEL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/stats.hh"

namespace lacc {

/** Per-event dynamic energies in picojoules. */
struct EnergyParams
{
    double l1iAccess = 3.0;    //!< L1-I read (tag + data, 16 KB)
    double l1dAccess = 4.5;    //!< L1-D read/write (tag + data, 32 KB)
    double l1Fill = 18.0;      //!< full-line install into an L1
    double l1TagOnly = 0.5;    //!< probe without data movement
    double l2WordAccess = 6.5; //!< word read/write in the L2 slice
    double l2LineAccess = 52.0;//!< full-line read/write in the L2 slice
    double l2TagOnly = 1.2;    //!< L2 tag probe
    double dirAccess = 0.6;    //!< directory entry lookup/update
    double routerFlit = 0.9;   //!< per flit per router traversal
    double linkFlit = 1.7;     //!< per flit per link traversal (> router)

    /** Default 11 nm-flavored parameters. */
    static EnergyParams defaults11nm() { return EnergyParams{}; }
};

/** Integer event tallies; one slot per accounting thread. */
struct EnergyCounts
{
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iFills = 0;
    std::uint64_t l1iTagOnly = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dFills = 0;
    std::uint64_t l1dTagOnly = 0;
    std::uint64_t l2Words = 0;
    std::uint64_t l2Lines = 0;
    std::uint64_t l2TagOnly = 0;
    std::uint64_t dirAccesses = 0;
    std::uint64_t routerFlits = 0; //!< flits x routers traversed
    std::uint64_t linkFlits = 0;   //!< flits x links traversed

    EnergyCounts &
    operator+=(const EnergyCounts &o)
    {
        l1iAccesses += o.l1iAccesses;
        l1iFills += o.l1iFills;
        l1iTagOnly += o.l1iTagOnly;
        l1dAccesses += o.l1dAccesses;
        l1dFills += o.l1dFills;
        l1dTagOnly += o.l1dTagOnly;
        l2Words += o.l2Words;
        l2Lines += o.l2Lines;
        l2TagOnly += o.l2TagOnly;
        dirAccesses += o.dirAccesses;
        routerFlits += o.routerFlits;
        linkFlits += o.linkFlits;
        return *this;
    }
};

/**
 * Accumulates dynamic energy by component. One instance per system;
 * all tiles/network share it (the paper reports whole-chip totals).
 *
 * Threading: every add goes to the slot the calling thread is bound
 * to (bindThreadSlot); unbound threads — including the serial engine
 * and the sweep runner's workers — use slot 0. A sharded engine calls
 * setSlots(workers + 1) up front and binds each worker to its own
 * slot, so parallel tallies never race and merge order-free.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params =
                             EnergyParams::defaults11nm())
        : params_(params), slots_(1)
    {}

    const EnergyParams &params() const { return params_; }

    /**
     * Size the per-thread slot table (>= 1; slot 0 is the serial
     * thread's). Not thread-safe: call before workers start tallying.
     */
    void
    setSlots(std::size_t n)
    {
        slots_.resize(n < 1 ? 1 : n);
    }

    /**
     * Bind the calling thread to @p slot for all subsequent adds on
     * any EnergyModel. Out-of-range bindings fall back to slot 0.
     */
    static void bindThreadSlot(std::size_t slot);

    // ---- Cache events -------------------------------------------------
    void addL1iAccess() { cur().l1iAccesses += 1; }

    /** Bulk per-instruction fetch energy (one L1-I access each). */
    void addL1iAccesses(std::uint64_t n) { cur().l1iAccesses += n; }
    void addL1iFill() { cur().l1iFills += 1; }
    void addL1dAccess() { cur().l1dAccesses += 1; }
    void addL1dFill() { cur().l1dFills += 1; }
    void addL1dTagOnly() { cur().l1dTagOnly += 1; }
    void addL1iTagOnly() { cur().l1iTagOnly += 1; }

    void addL2Word() { cur().l2Words += 1; }
    void addL2Line() { cur().l2Lines += 1; }
    void addL2TagOnly() { cur().l2TagOnly += 1; }

    void addDirAccess() { cur().dirAccesses += 1; }

    // ---- Network events ------------------------------------------------
    /** @param flit_routers flits x routers traversed. */
    void addRouter(std::uint64_t flit_routers)
    {
        cur().routerFlits += flit_routers;
    }

    /** @param flit_links flits x links traversed. */
    void addLink(std::uint64_t flit_links)
    {
        cur().linkFlits += flit_links;
    }

    /** Merged event counts across all slots. */
    EnergyCounts counts() const;

    /** Breakdown in pJ (counts x per-event params), all slots merged. */
    EnergyBreakdown breakdown() const;

    /** Reset all accumulators (every slot). */
    void
    reset()
    {
        for (auto &s : slots_)
            s = EnergyCounts{};
    }

  private:
    EnergyCounts &cur();

    EnergyParams params_;
    std::vector<EnergyCounts> slots_;
};

} // namespace lacc

#endif // LACC_ENERGY_MODEL_HH
