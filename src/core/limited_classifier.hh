/**
 * @file
 * Limited_k locality classifier (§3.4, Fig 7).
 *
 * The directory tracks locality records {core ID, mode, remote
 * utilization, RAT level} for at most k cores per line. Lookup
 * protocol, applied once per directory transaction via classify():
 *
 *  1. tracked core          -> use its record;
 *  2. free entry            -> allocate; the core starts Private
 *                              (the protocol initializes all cores as
 *                              private sharers, §3.2);
 *  3. inactive tracked core -> replace it; the newcomer starts in the
 *                              majority mode of the tracked cores;
 *  4. otherwise             -> majority vote, list unchanged (the core
 *                              remains untracked).
 *
 * Inactive sharers: a private sharer becomes inactive on invalidation
 * or eviction; a remote sharer becomes inactive on a write by another
 * core. Majority-vote ties resolve to Private (the protocol's initial
 * mode). The paper finds k = 3 sufficient to offset mis-seeding (§5.3).
 */

#ifndef LACC_CORE_LIMITED_CLASSIFIER_HH
#define LACC_CORE_LIMITED_CLASSIFIER_HH

#include <vector>

#include "core/classifier.hh"

namespace lacc {

/** Per-line state of the Limited_k classifier: k tracked cores. */
class LimitedLineState : public LineClassifierState
{
  public:
    /** One tracked-core slot. */
    struct Slot
    {
        CoreId core = kInvalidCore; //!< kInvalidCore marks a free slot
        CoreLocality rec;
    };

    /**
     * The k tracked slots, stored inline for k <= kInlineK (every
     * in-repo configuration; Fig 13 sweeps k up to 7) so the hot
     * classify/removal scans touch the state object's own cache
     * lines instead of chasing a separate heap vector. Larger k
     * spills to the heap.
     */
    class SlotArray
    {
      public:
        static constexpr std::uint32_t kInlineK = 8;

        explicit SlotArray(std::uint32_t k) : k_(k)
        {
            if (k_ > kInlineK)
                spill_.resize(k_);
        }

        std::uint32_t size() const { return k_; }
        Slot *begin() { return k_ <= kInlineK ? inline_ : spill_.data(); }
        Slot *end() { return begin() + k_; }
        const Slot *
        begin() const
        {
            return k_ <= kInlineK ? inline_ : spill_.data();
        }
        const Slot *end() const { return begin() + k_; }

      private:
        std::uint32_t k_;
        Slot inline_[kInlineK];
        std::vector<Slot> spill_;
    };

    explicit LimitedLineState(std::uint32_t k) : slots(k) {}

    SlotArray slots;
};

/** The Limited_k classifier. */
class LimitedClassifier : public LocalityClassifier
{
  public:
    LimitedClassifier(const SystemConfig &cfg, bool one_way)
        : LocalityClassifier(cfg, one_way), k_(cfg.classifierK)
    {}

    std::unique_ptr<LineClassifierState> makeState() const override;
    void resetState(LineClassifierState &state) const override;

    Mode classify(LineClassifierState &state, CoreId core) override;

    bool onRemoteAccess(LineClassifierState &state, CoreId core,
                        const RemoteAccessContext &ctx) override;

    void onWriteByOther(LineClassifierState &state,
                        CoreId writer) override;

    Mode onPrivateRemoval(LineClassifierState &state, CoreId core,
                          std::uint32_t private_util,
                          RemovalKind kind) override;

    void onPrivateGrant(LineClassifierState &state, CoreId core,
                        Cycle now) override;

    const CoreLocality *peek(const LineClassifierState &state,
                             CoreId core) const override;

    /** Majority mode over occupied slots; Private on ties/empty. */
    static Mode majorityVote(const LimitedLineState &s);

  private:
    /** Find the slot tracking @p core, or nullptr. */
    LimitedLineState::Slot *findSlot(LimitedLineState &s, CoreId core);

    /**
     * Ensure @p core is tracked if possible (free slot or inactive
     * replacement). @return its slot or nullptr if untrackable.
     */
    LimitedLineState::Slot *allocate(LimitedLineState &s, CoreId core);

    std::uint32_t k_;
};

} // namespace lacc

#endif // LACC_CORE_LIMITED_CLASSIFIER_HH
