/**
 * @file
 * Complete locality classifier (§3.2/§3.3): per-line locality records
 * for every core in the system, with RAT levels replacing the
 * idealized timestamps. Storage-hungry (Fig 6, 60% overhead at 64
 * cores) but the accuracy reference for the Limited_k classifier.
 *
 * Also defines AlwaysPrivateClassifier, the degenerate classifier that
 * keeps every core a private sharer forever — the baseline directory
 * protocol (equivalent to PCT = 1).
 */

#ifndef LACC_CORE_COMPLETE_CLASSIFIER_HH
#define LACC_CORE_COMPLETE_CLASSIFIER_HH

#include <vector>

#include "core/classifier.hh"

namespace lacc {

/** Per-line state of the Complete classifier: one record per core. */
class CompleteLineState : public LineClassifierState
{
  public:
    explicit CompleteLineState(std::uint32_t num_cores)
        : records(num_cores), touched(num_cores, false)
    {}

    std::vector<CoreLocality> records;
    /** Cores that have interacted with the line (learning short-cut). */
    std::vector<bool> touched;
};

/** Tracks locality for all cores (the Complete classifier). */
class CompleteClassifier : public LocalityClassifier
{
  public:
    CompleteClassifier(const SystemConfig &cfg, bool one_way)
        : LocalityClassifier(cfg, one_way)
    {}

    std::unique_ptr<LineClassifierState> makeState() const override;
    void resetState(LineClassifierState &state) const override;

    Mode classify(LineClassifierState &state, CoreId core) override;

    bool onRemoteAccess(LineClassifierState &state, CoreId core,
                        const RemoteAccessContext &ctx) override;

    void onWriteByOther(LineClassifierState &state,
                        CoreId writer) override;

    Mode onPrivateRemoval(LineClassifierState &state, CoreId core,
                          std::uint32_t private_util,
                          RemovalKind kind) override;

    void onPrivateGrant(LineClassifierState &state, CoreId core,
                        Cycle now) override;

    const CoreLocality *peek(const LineClassifierState &state,
                             CoreId core) const override;

  private:
    /** Majority mode over cores that already touched the line. */
    static Mode majorityOfTouched(const CompleteLineState &s);
};

/** Baseline: every core is always a private sharer. */
class AlwaysPrivateClassifier : public LocalityClassifier
{
  public:
    explicit AlwaysPrivateClassifier(const SystemConfig &cfg)
        : LocalityClassifier(cfg, false)
    {}

    std::unique_ptr<LineClassifierState>
    makeState() const override
    {
        // No per-line state is required; an empty base object keeps
        // the protocol free of null checks.
        return std::make_unique<LineClassifierState>();
    }

    void resetState(LineClassifierState &) const override {}

    Mode
    classify(LineClassifierState &, CoreId) override
    {
        return Mode::Private;
    }

    bool
    onRemoteAccess(LineClassifierState &, CoreId,
                   const RemoteAccessContext &) override
    {
        return true; // unreachable in practice: mode is always Private
    }

    void onWriteByOther(LineClassifierState &, CoreId) override {}

    Mode
    onPrivateRemoval(LineClassifierState &, CoreId, std::uint32_t,
                     RemovalKind) override
    {
        return Mode::Private;
    }

    void onPrivateGrant(LineClassifierState &, CoreId, Cycle) override {}

    const CoreLocality *
    peek(const LineClassifierState &, CoreId) const override
    {
        return nullptr;
    }
};

} // namespace lacc

#endif // LACC_CORE_COMPLETE_CLASSIFIER_HH
