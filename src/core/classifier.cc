#include "core/classifier.hh"

#include <algorithm>

#include "core/complete_classifier.hh"
#include "core/limited_classifier.hh"
#include "core/timestamp_classifier.hh"
#include "sim/log.hh"

namespace lacc {

bool
LocalityClassifier::remoteAccessDecision(CoreLocality &e,
                                         const RemoteAccessContext &ctx)
    const
{
    (void)ctx;
    e.active = true;
    // Saturate at RATmax: the counter width is sized for RATmax
    // (§3.3: "the number of bits needed to track remote utilization
    // should not be too high").
    if (e.remoteUtil < cfg_.ratMax)
        ++e.remoteUtil;

    if (oneWay_)
        return false; // Adapt1-way: remote sharers stay remote (§3.7)

    // Short-cut (§3.3): an invalid way in the requester's L1 set means
    // a fill cannot pollute, so PCT suffices regardless of RAT level.
    if (ctx.hasInvalidWay && e.remoteUtil >= pct_) {
        e.mode = Mode::Private;
        return true;
    }
    const std::uint32_t rat = cfg_.ratForLevel(e.ratLevel);
    if (e.remoteUtil >= rat) {
        e.mode = Mode::Private;
        return true;
    }
    return false;
}

Mode
LocalityClassifier::removalDecision(CoreLocality &e,
                                    std::uint32_t private_util,
                                    RemovalKind kind) const
{
    const std::uint64_t total =
        static_cast<std::uint64_t>(private_util) + e.remoteUtil;
    e.active = false;
    e.remoteUtil = 0; // the utilization epoch is consumed either way
    if (total >= pct_) {
        // Stays private; the core re-learns its classification from a
        // fresh RAT level (§3.3).
        e.mode = Mode::Private;
        e.ratLevel = 0;
        return Mode::Private;
    }
    e.mode = Mode::Remote;
    if (kind == RemovalKind::Eviction) {
        // Eviction signals cache-set pressure: raise RAT one level, up
        // to RATmax (§3.3). Invalidations leave the level unchanged
        // (the freed way relieves pressure).
        if (nRatLevels_ > 0 && e.ratLevel + 1 < nRatLevels_)
            ++e.ratLevel;
    }
    return Mode::Remote;
}

std::unique_ptr<LocalityClassifier>
LocalityClassifier::create(const SystemConfig &cfg)
{
    const bool one_way = cfg.protocolKind == ProtocolKind::AdaptOneWay;
    switch (cfg.classifierKind) {
      case ClassifierKind::Complete:
        return std::make_unique<CompleteClassifier>(cfg, one_way);
      case ClassifierKind::Limited:
        return std::make_unique<LimitedClassifier>(cfg, one_way);
      case ClassifierKind::Timestamp:
        return std::make_unique<TimestampClassifier>(cfg, one_way);
      case ClassifierKind::AlwaysPrivate:
        return std::make_unique<AlwaysPrivateClassifier>(cfg);
      default:
        panic("unknown classifier kind");
    }
}

} // namespace lacc
