/**
 * @file
 * Timestamp-based locality classifier (§3.2) — the idealized scheme
 * the RAT heuristic approximates (Fig 12 reference).
 *
 * The directory keeps, per line and per core, a 64-bit last-access
 * timestamp besides the mode and remote utilization. A remote access
 * increments the utilization counter only when the Timestamp check
 * passes: the line's last access (by the requesting core, at the L2)
 * is more recent than the minimum last-access time over the valid
 * lines in the requester's L1 set (communicated with the miss);
 * otherwise the counter resets to 1. The check passes trivially when
 * the requester's set has an invalid way. Promotion happens at PCT.
 */

#ifndef LACC_CORE_TIMESTAMP_CLASSIFIER_HH
#define LACC_CORE_TIMESTAMP_CLASSIFIER_HH

#include <vector>

#include "core/classifier.hh"

namespace lacc {

/** Per-line state: full per-core records with timestamps (Fig 6). */
class TimestampLineState : public LineClassifierState
{
  public:
    explicit TimestampLineState(std::uint32_t num_cores)
        : records(num_cores)
    {}

    std::vector<CoreLocality> records;
};

/** The idealized Timestamp-based classifier. */
class TimestampClassifier : public LocalityClassifier
{
  public:
    TimestampClassifier(const SystemConfig &cfg, bool one_way)
        : LocalityClassifier(cfg, one_way)
    {}

    std::unique_ptr<LineClassifierState> makeState() const override;
    void resetState(LineClassifierState &state) const override;

    Mode classify(LineClassifierState &state, CoreId core) override;

    bool onRemoteAccess(LineClassifierState &state, CoreId core,
                        const RemoteAccessContext &ctx) override;

    void onWriteByOther(LineClassifierState &state,
                        CoreId writer) override;

    Mode onPrivateRemoval(LineClassifierState &state, CoreId core,
                          std::uint32_t private_util,
                          RemovalKind kind) override;

    void onPrivateGrant(LineClassifierState &state, CoreId core,
                        Cycle now) override;

    const CoreLocality *peek(const LineClassifierState &state,
                             CoreId core) const override;
};

} // namespace lacc

#endif // LACC_CORE_TIMESTAMP_CLASSIFIER_HH
