/**
 * @file
 * Locality classifier interface (Sections 3.2-3.4).
 *
 * The directory keeps, per cache line, a classifier state object that
 * decides for each core whether it is a *private* sharer (handed full
 * line copies) or a *remote* sharer (serviced by word accesses at the
 * shared L2 home). Three implementations are provided:
 *
 *  - CompleteClassifier: mode / remote-utilization / RAT-level for
 *    every core (Fig 6 with RAT levels replacing timestamps, §3.3);
 *  - LimitedClassifier: the Limited_k classifier of §3.4 — k tracked
 *    cores, majority-vote seeding, inactive-sharer replacement;
 *  - TimestampClassifier: the idealized 64-bit last-access timestamp
 *    scheme of §3.2, used as the reference in Fig 12.
 *
 * The protocol variant Adapt1-way (§3.7) is expressed through the
 * `oneWay` flag: remote sharers are never promoted back to private.
 */

#ifndef LACC_CORE_CLASSIFIER_HH
#define LACC_CORE_CLASSIFIER_HH

#include <cstdint>
#include <memory>

#include "sim/config.hh"
#include "sim/types.hh"

namespace lacc {

/** Per-core locality record kept at the directory (Figs 6-7). */
struct CoreLocality
{
    Mode mode = Mode::Private;    //!< P/R bit
    std::uint32_t remoteUtil = 0; //!< remote utilization counter
    std::uint32_t ratLevel = 0;   //!< current RAT level (§3.3)
    bool active = true;           //!< false once inactive (§3.4)
    Cycle lastAccess = 0;         //!< Timestamp classifier only
};

/** Opaque per-line classifier state stored in the directory entry. */
class LineClassifierState
{
  public:
    virtual ~LineClassifierState() = default;
};

/** Context communicated with an L1 miss that reaches the directory. */
struct RemoteAccessContext
{
    Cycle now = 0;
    /**
     * True when the requester's L1 set has an invalid way; enables the
     * short-cut promotion at PCT (§3.3) and trivially passes the
     * Timestamp check (§3.2).
     */
    bool hasInvalidWay = false;
    /**
     * Minimum last-access time over the valid lines of the requester's
     * L1 set (communicated on every miss; Timestamp classifier only).
     */
    Cycle l1MinLastAccess = 0;
};

/** Reason a private copy was removed from an L1. */
enum class RemovalKind : std::uint8_t { Eviction, Invalidation };

/**
 * Classifier policy object; one per system, stateless across lines
 * except for configuration. All per-line state lives in the
 * LineClassifierState instances it allocates.
 */
class LocalityClassifier
{
  public:
    /**
     * @param cfg      system configuration (PCT, RATmax, nRATlevels, k)
     * @param one_way  Adapt1-way (§3.7): never promote remote sharers
     */
    LocalityClassifier(const SystemConfig &cfg, bool one_way)
        : numCores_(cfg.numCores), pct_(cfg.pct),
          nRatLevels_(cfg.nRatLevels), oneWay_(one_way), cfg_(cfg)
    {}

    virtual ~LocalityClassifier() = default;

    /** Allocate fresh per-line state (on L2 fill). */
    virtual std::unique_ptr<LineClassifierState> makeState() const = 0;

    /**
     * Reset @p state in place to exactly the value a fresh
     * makeState() returns. The refill path (an L2 slot being reused
     * for a new line) calls this instead of re-allocating, so
     * steady-state fills perform no classifier-state heap traffic.
     */
    virtual void resetState(LineClassifierState &state) const = 0;

    /**
     * Current mode of @p core for this line, applying any tracking
     * side effects (entry allocation / majority vote in Limited_k).
     * Called once per directory transaction before choosing the
     * private or remote service path.
     */
    virtual Mode classify(LineClassifierState &state, CoreId core) = 0;

    /**
     * Account one remote (word) access by @p core and decide
     * promotion. On promotion the state is updated to Private mode;
     * the remote utilization is retained so the classification at the
     * next eviction/invalidation covers the whole utilization epoch
     * (§3.2, Evictions and Invalidations).
     *
     * @return true if the core is promoted to a private sharer.
     */
    virtual bool onRemoteAccess(LineClassifierState &state, CoreId core,
                                const RemoteAccessContext &ctx) = 0;

    /**
     * A write by @p writer resets the remote utilization counters of
     * all remote sharers other than the writer and makes them
     * inactive (§3.2 Write Requests, §3.4).
     */
    virtual void onWriteByOther(LineClassifierState &state,
                                CoreId writer) = 0;

    /**
     * Classification when @p core's private copy leaves its L1
     * (§3.2): stays private iff privateUtil + remoteUtil >= PCT.
     * Updates RAT level per §3.3 (eviction-demotion raises it,
     * invalidation-demotion leaves it, private classification resets
     * it) and consumes the utilization epoch (remoteUtil := 0).
     *
     * @return the resulting mode for future requests.
     */
    virtual Mode onPrivateRemoval(LineClassifierState &state, CoreId core,
                                  std::uint32_t private_util,
                                  RemovalKind kind) = 0;

    /**
     * Bookkeeping when a private copy is granted (initial grant or
     * promotion): marks the core an active private sharer and stamps
     * the access time.
     */
    virtual void onPrivateGrant(LineClassifierState &state, CoreId core,
                                Cycle now) = 0;

    /** Inspect a core's record (tests / reporting); may be null when
     * untracked. */
    virtual const CoreLocality *
    peek(const LineClassifierState &state, CoreId core) const = 0;

    /** True under the Adapt1-way ablation: demotion only (§3.7). */
    bool oneWay() const { return oneWay_; }
    /** The Private Caching Threshold this classifier applies. */
    std::uint32_t pct() const { return pct_; }

    /**
     * Factory: build the classifier selected by the configuration.
     */
    static std::unique_ptr<LocalityClassifier>
    create(const SystemConfig &cfg);

  protected:
    /** Shared RAT/PCT decision used by Complete and Limited (§3.3). */
    bool remoteAccessDecision(CoreLocality &e,
                              const RemoteAccessContext &ctx) const;

    /** Shared removal classification used by Complete and Limited. */
    Mode removalDecision(CoreLocality &e, std::uint32_t private_util,
                         RemovalKind kind) const;

    std::uint32_t numCores_;
    std::uint32_t pct_;
    std::uint32_t nRatLevels_;
    bool oneWay_;
    SystemConfig cfg_;
};

} // namespace lacc

#endif // LACC_CORE_CLASSIFIER_HH
