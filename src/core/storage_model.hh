/**
 * @file
 * Storage-overhead model of Section 3.6.
 *
 * Computes the per-core storage cost of the locality-tracking
 * structures (L1 utilization bits, directory locality records) and of
 * the sharer-tracking directory itself (ACKwise_p vs full-map), and
 * reproduces the paper's arithmetic: with the default 64-core Table 1
 * configuration, the Limited_3 classifier costs 18 KB per core (vs
 * 192 KB for the Complete classifier), ACKwise_4 costs 12 KB, full-map
 * 32 KB, and Limited_3 + ACKwise_4 is a 5.7 % overhead over the
 * baseline ACKwise_4 system while staying below full-map storage.
 */

#ifndef LACC_CORE_STORAGE_MODEL_HH
#define LACC_CORE_STORAGE_MODEL_HH

#include <cstdint>

#include "sim/config.hh"

namespace lacc {

/** Storage accounting (per core unless noted). */
struct StorageModel
{
    explicit StorageModel(const SystemConfig &cfg) : cfg_(cfg) {}

    /** ceil(log2(n)) for n >= 1. */
    static std::uint32_t bitsFor(std::uint64_t n);

    /** Directory entries per core = L2 slice lines (integrated dir). */
    std::uint64_t dirEntriesPerCore() const;

    // ---- Locality tracking (the paper's addition) ---------------------

    /** Bits per L1 line for the private utilization counter. */
    std::uint32_t l1UtilBitsPerLine() const;

    /** Bits per directory entry for one tracked core's locality info:
     * mode + remote utilization + RAT level (+ core ID for Limited_k).
     */
    std::uint32_t localityBitsPerTrackedCore(bool needs_core_id) const;

    /** Locality bits per directory entry for the Limited_k classifier. */
    std::uint32_t limitedBitsPerEntry() const;

    /** Locality bits per directory entry for the Complete classifier. */
    std::uint32_t completeBitsPerEntry() const;

    /** KB per core of L1 utilization bits (L1-I + L1-D). */
    double l1OverheadKB() const;

    /** KB per core of directory locality state for Limited_k. */
    double limitedOverheadKB() const;

    /** KB per core of directory locality state for Complete. */
    double completeOverheadKB() const;

    // ---- Sharer tracking ----------------------------------------------

    /** Bits per directory entry for ACKwise_p sharer tracking. */
    std::uint32_t ackwiseBitsPerEntry() const;

    /** Bits per directory entry for a full-map directory. */
    std::uint32_t fullMapBitsPerEntry() const;

    /** KB per core of ACKwise_p pointers. */
    double ackwiseKB() const;

    /** KB per core of full-map bit vectors. */
    double fullMapKB() const;

    // ---- Whole-core roll-ups -------------------------------------------

    /** KB per core of cache data+nominal storage (L1-I + L1-D + L2). */
    double cacheKB() const;

    /**
     * Percentage overhead of (classifier + ACKwise) over the baseline
     * ACKwise system, factoring cache sizes (the paper's 5.7 % / 60 %).
     *
     * @param complete use the Complete classifier instead of Limited_k
     */
    double overheadPercentVsAckwise(bool complete) const;

  private:
    SystemConfig cfg_;
};

} // namespace lacc

#endif // LACC_CORE_STORAGE_MODEL_HH
