#include "core/complete_classifier.hh"

#include <algorithm>

namespace lacc {

std::unique_ptr<LineClassifierState>
CompleteClassifier::makeState() const
{
    return std::make_unique<CompleteLineState>(numCores_);
}

void
CompleteClassifier::resetState(LineClassifierState &state) const
{
    auto &s = static_cast<CompleteLineState &>(state);
    std::fill(s.records.begin(), s.records.end(), CoreLocality{});
    std::fill(s.touched.begin(), s.touched.end(), false);
}

Mode
CompleteClassifier::majorityOfTouched(const CompleteLineState &s)
{
    std::uint32_t remote = 0, total = 0;
    for (CoreId c = 0; c < s.records.size(); ++c) {
        if (!s.touched[c])
            continue;
        ++total;
        if (s.records[c].mode == Mode::Remote)
            ++remote;
    }
    return (total > 0 && remote * 2 > total) ? Mode::Remote
                                             : Mode::Private;
}

Mode
CompleteClassifier::classify(LineClassifierState &state, CoreId core)
{
    auto &s = static_cast<CompleteLineState &>(state);
    if (!s.touched[core]) {
        // Learning short-cut (§5.3, evaluated as an extension): a new
        // sharer starts in the majority mode of the sharers already
        // seen, skipping its per-sharer classification phase.
        if (cfg_.completeLearningShortcut)
            s.records[core].mode = majorityOfTouched(s);
        s.touched[core] = true;
    }
    return s.records[core].mode;
}

bool
CompleteClassifier::onRemoteAccess(LineClassifierState &state, CoreId core,
                                   const RemoteAccessContext &ctx)
{
    auto &s = static_cast<CompleteLineState &>(state);
    return remoteAccessDecision(s.records[core], ctx);
}

void
CompleteClassifier::onWriteByOther(LineClassifierState &state,
                                   CoreId writer)
{
    auto &s = static_cast<CompleteLineState &>(state);
    for (CoreId c = 0; c < s.records.size(); ++c) {
        auto &e = s.records[c];
        if (c != writer && e.mode == Mode::Remote) {
            e.remoteUtil = 0;
            e.active = false;
        }
    }
}

Mode
CompleteClassifier::onPrivateRemoval(LineClassifierState &state,
                                     CoreId core,
                                     std::uint32_t private_util,
                                     RemovalKind kind)
{
    auto &s = static_cast<CompleteLineState &>(state);
    return removalDecision(s.records[core], private_util, kind);
}

void
CompleteClassifier::onPrivateGrant(LineClassifierState &state, CoreId core,
                                   Cycle now)
{
    auto &s = static_cast<CompleteLineState &>(state);
    auto &e = s.records[core];
    e.mode = Mode::Private;
    e.active = true;
    e.lastAccess = now;
}

const CoreLocality *
CompleteClassifier::peek(const LineClassifierState &state,
                         CoreId core) const
{
    const auto &s = static_cast<const CompleteLineState &>(state);
    return &s.records[core];
}

} // namespace lacc
