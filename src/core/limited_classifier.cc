#include "core/limited_classifier.hh"

#include <algorithm>

namespace lacc {

std::unique_ptr<LineClassifierState>
LimitedClassifier::makeState() const
{
    return std::make_unique<LimitedLineState>(k_);
}

void
LimitedClassifier::resetState(LineClassifierState &state) const
{
    auto &s = static_cast<LimitedLineState &>(state);
    std::fill(s.slots.begin(), s.slots.end(),
              LimitedLineState::Slot{});
}

Mode
LimitedClassifier::majorityVote(const LimitedLineState &s)
{
    std::uint32_t remote = 0, total = 0;
    for (const auto &slot : s.slots) {
        if (slot.core == kInvalidCore)
            continue;
        ++total;
        if (slot.rec.mode == Mode::Remote)
            ++remote;
    }
    // Ties (incl. the empty list) resolve to Private: the protocol's
    // initial classification for every core (§3.2).
    return (total > 0 && remote * 2 > total) ? Mode::Remote
                                             : Mode::Private;
}

LimitedLineState::Slot *
LimitedClassifier::findSlot(LimitedLineState &s, CoreId core)
{
    for (auto &slot : s.slots)
        if (slot.core == core)
            return &slot;
    return nullptr;
}

LimitedLineState::Slot *
LimitedClassifier::allocate(LimitedLineState &s, CoreId core)
{
    // Free entry: the newcomer starts out Private like every core at
    // protocol start (§3.2).
    for (auto &slot : s.slots) {
        if (slot.core == kInvalidCore) {
            slot.core = core;
            slot.rec = CoreLocality{};
            return &slot;
        }
    }
    // Replacement: an inactive sharer relinquishes its entry; the
    // newcomer is seeded with the majority mode of the tracked cores
    // (vote taken before the replacement, §3.4).
    for (auto &slot : s.slots) {
        if (!slot.rec.active) {
            const Mode seed = majorityVote(s);
            slot.core = core;
            slot.rec = CoreLocality{};
            slot.rec.mode = seed;
            return &slot;
        }
    }
    return nullptr;
}

Mode
LimitedClassifier::classify(LineClassifierState &state, CoreId core)
{
    auto &s = static_cast<LimitedLineState &>(state);
    if (auto *slot = findSlot(s, core))
        return slot->rec.mode;
    if (auto *slot = allocate(s, core))
        return slot->rec.mode;
    return majorityVote(s);
}

bool
LimitedClassifier::onRemoteAccess(LineClassifierState &state, CoreId core,
                                  const RemoteAccessContext &ctx)
{
    auto &s = static_cast<LimitedLineState &>(state);
    auto *slot = findSlot(s, core);
    if (slot == nullptr)
        slot = allocate(s, core);
    if (slot == nullptr) {
        // Untracked and untrackable: no utilization accrues, so the
        // core cannot earn a promotion (§3.4: the list is unchanged).
        return false;
    }
    return remoteAccessDecision(slot->rec, ctx);
}

void
LimitedClassifier::onWriteByOther(LineClassifierState &state,
                                  CoreId writer)
{
    auto &s = static_cast<LimitedLineState &>(state);
    for (auto &slot : s.slots) {
        if (slot.core == kInvalidCore || slot.core == writer)
            continue;
        if (slot.rec.mode == Mode::Remote) {
            slot.rec.remoteUtil = 0;
            slot.rec.active = false;
        }
    }
}

Mode
LimitedClassifier::onPrivateRemoval(LineClassifierState &state,
                                    CoreId core,
                                    std::uint32_t private_util,
                                    RemovalKind kind)
{
    auto &s = static_cast<LimitedLineState &>(state);
    if (auto *slot = findSlot(s, core))
        return removalDecision(slot->rec, private_util, kind);
    // The core lost its entry while holding the line; no utilization
    // record survives, so future requests fall back to the vote.
    return majorityVote(s);
}

void
LimitedClassifier::onPrivateGrant(LineClassifierState &state, CoreId core,
                                  Cycle now)
{
    auto &s = static_cast<LimitedLineState &>(state);
    if (auto *slot = findSlot(s, core)) {
        slot->rec.mode = Mode::Private;
        slot->rec.active = true;
        slot->rec.lastAccess = now;
    }
}

const CoreLocality *
LimitedClassifier::peek(const LineClassifierState &state,
                        CoreId core) const
{
    const auto &s = static_cast<const LimitedLineState &>(state);
    for (const auto &slot : s.slots)
        if (slot.core == core)
            return &slot.rec;
    return nullptr;
}

} // namespace lacc
