#include "core/storage_model.hh"

namespace lacc {

std::uint32_t
StorageModel::bitsFor(std::uint64_t n)
{
    std::uint32_t bits = 0;
    std::uint64_t v = 1;
    while (v < n) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

std::uint64_t
StorageModel::dirEntriesPerCore() const
{
    return static_cast<std::uint64_t>(cfg_.l2SizeKB) * 1024 /
           cfg_.lineSize;
}

std::uint32_t
StorageModel::l1UtilBitsPerLine() const
{
    // Counts up to PCT (2 bits for the paper's PCT = 4).
    const std::uint32_t bits = bitsFor(cfg_.pct);
    return bits > 0 ? bits : 1;
}

std::uint32_t
StorageModel::localityBitsPerTrackedCore(bool needs_core_id) const
{
    // Remote utilization counts up to RATmax (4 bits for 16), 1 mode
    // bit, log2(nRATlevels) RAT-level bits (1 bit for 2 levels).
    std::uint32_t bits = 1 + bitsFor(cfg_.ratMax) +
                         (cfg_.nRatLevels > 1 ? bitsFor(cfg_.nRatLevels)
                                              : 0);
    if (needs_core_id)
        bits += bitsFor(cfg_.numCores);
    return bits;
}

std::uint32_t
StorageModel::limitedBitsPerEntry() const
{
    return cfg_.classifierK * localityBitsPerTrackedCore(true);
}

std::uint32_t
StorageModel::completeBitsPerEntry() const
{
    return cfg_.numCores * localityBitsPerTrackedCore(false);
}

double
StorageModel::l1OverheadKB() const
{
    const double lines =
        static_cast<double>(cfg_.l1iSizeKB + cfg_.l1dSizeKB) * 1024 /
        cfg_.lineSize;
    return lines * l1UtilBitsPerLine() / 8.0 / 1024.0;
}

double
StorageModel::limitedOverheadKB() const
{
    return static_cast<double>(dirEntriesPerCore()) *
           limitedBitsPerEntry() / 8.0 / 1024.0;
}

double
StorageModel::completeOverheadKB() const
{
    return static_cast<double>(dirEntriesPerCore()) *
           completeBitsPerEntry() / 8.0 / 1024.0;
}

std::uint32_t
StorageModel::ackwiseBitsPerEntry() const
{
    // p pointers of log2(numCores) bits each (24 bits for ACKwise_4 at
    // 64 cores, matching the paper's "24 bits per directory entry").
    return cfg_.ackwisePointers * bitsFor(cfg_.numCores);
}

std::uint32_t
StorageModel::fullMapBitsPerEntry() const
{
    return cfg_.numCores;
}

double
StorageModel::ackwiseKB() const
{
    return static_cast<double>(dirEntriesPerCore()) *
           ackwiseBitsPerEntry() / 8.0 / 1024.0;
}

double
StorageModel::fullMapKB() const
{
    return static_cast<double>(dirEntriesPerCore()) *
           fullMapBitsPerEntry() / 8.0 / 1024.0;
}

double
StorageModel::cacheKB() const
{
    return static_cast<double>(cfg_.l1iSizeKB) + cfg_.l1dSizeKB +
           cfg_.l2SizeKB;
}

double
StorageModel::overheadPercentVsAckwise(bool complete) const
{
    const double baseline = cacheKB() + ackwiseKB();
    const double extra = (complete ? completeOverheadKB()
                                   : limitedOverheadKB()) +
                         l1OverheadKB();
    return extra / baseline * 100.0;
}

} // namespace lacc
