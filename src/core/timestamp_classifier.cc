#include "core/timestamp_classifier.hh"

#include <algorithm>

namespace lacc {

void
TimestampClassifier::resetState(LineClassifierState &state) const
{
    auto &s = static_cast<TimestampLineState &>(state);
    std::fill(s.records.begin(), s.records.end(), CoreLocality{});
}

std::unique_ptr<LineClassifierState>
TimestampClassifier::makeState() const
{
    return std::make_unique<TimestampLineState>(numCores_);
}

Mode
TimestampClassifier::classify(LineClassifierState &state, CoreId core)
{
    auto &s = static_cast<TimestampLineState &>(state);
    return s.records[core].mode;
}

bool
TimestampClassifier::onRemoteAccess(LineClassifierState &state,
                                    CoreId core,
                                    const RemoteAccessContext &ctx)
{
    auto &s = static_cast<TimestampLineState &>(state);
    auto &e = s.records[core];
    e.active = true;

    // Timestamp check (§3.2): accrue utilization only if this line is
    // hotter (for this core) than the coldest valid line in the
    // requester's L1 set; trivially true with an invalid way.
    const bool check = ctx.hasInvalidWay ||
                       (e.lastAccess > ctx.l1MinLastAccess);
    e.remoteUtil = check ? e.remoteUtil + 1 : 1;
    e.lastAccess = ctx.now;

    if (oneWay_)
        return false;

    if (e.remoteUtil >= pct_) {
        e.mode = Mode::Private;
        return true;
    }
    return false;
}

void
TimestampClassifier::onWriteByOther(LineClassifierState &state,
                                    CoreId writer)
{
    auto &s = static_cast<TimestampLineState &>(state);
    for (CoreId c = 0; c < s.records.size(); ++c) {
        auto &e = s.records[c];
        if (c != writer && e.mode == Mode::Remote) {
            e.remoteUtil = 0;
            e.active = false;
        }
    }
}

Mode
TimestampClassifier::onPrivateRemoval(LineClassifierState &state,
                                      CoreId core,
                                      std::uint32_t private_util,
                                      RemovalKind kind)
{
    auto &s = static_cast<TimestampLineState &>(state);
    // The (private + remote) >= PCT rule is shared with the RAT-based
    // classifiers; RAT-level updates are harmless here because this
    // classifier never consults the level.
    return removalDecision(s.records[core], private_util, kind);
}

void
TimestampClassifier::onPrivateGrant(LineClassifierState &state,
                                    CoreId core, Cycle now)
{
    auto &s = static_cast<TimestampLineState &>(state);
    auto &e = s.records[core];
    e.mode = Mode::Private;
    e.active = true;
    e.lastAccess = now;
}

const CoreLocality *
TimestampClassifier::peek(const LineClassifierState &state,
                          CoreId core) const
{
    const auto &s = static_cast<const TimestampLineState &>(state);
    return &s.records[core];
}

} // namespace lacc
