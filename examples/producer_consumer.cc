/**
 * @file
 * Custom-workload example: build a producer-consumer workload
 * directly against the Workload interface (no suite involved) and
 * watch the adaptive protocol classify the consumers.
 *
 * One producer core repeatedly writes a block of lines; the other
 * cores read each line a configurable number of times (their
 * utilization). With utilization below PCT the consumers are demoted
 * to remote sharers: invalidations disappear and reads become word
 * accesses. With utilization >= PCT they stay private sharers.
 *
 *     ./examples/producer_consumer [readsPerLine] [pct]
 */

#include <cstdlib>
#include <iostream>

#include "system/multicore.hh"
#include "system/report.hh"
#include "workload/workload.hh"

namespace {

using namespace lacc;

/** Producer-consumer workload written against the public interface. */
class ProducerConsumer final : public Workload
{
  public:
    ProducerConsumer(std::uint32_t cores, std::uint32_t lines,
                     std::uint32_t reads_per_line,
                     std::uint32_t rounds)
        : cores_(cores), lines_(lines), readsPerLine_(reads_per_line),
          rounds_(rounds), name_("producer-consumer"), pos_(cores, 0)
    {}

    const std::string &name() const override { return name_; }
    std::uint32_t numCores() const override { return cores_; }

    MemOp
    next(CoreId core) override
    {
        // Each round: producer writes every line once, consumers read
        // every line readsPerLine_ times; a barrier separates rounds.
        const std::uint64_t writes_per_round = lines_;
        const std::uint64_t reads_per_round =
            static_cast<std::uint64_t>(lines_) * readsPerLine_;
        const std::uint64_t ops_per_round =
            core == 0 ? writes_per_round : reads_per_round;

        std::uint64_t &p = pos_[core];
        const std::uint64_t round = p / (ops_per_round + 1);
        const std::uint64_t in_round = p % (ops_per_round + 1);
        if (round >= rounds_)
            return MemOp::done();
        ++p;
        if (in_round == ops_per_round)
            return MemOp::barrier();

        if (core == 0) {
            const Addr a = base_ + in_round * 64;
            return MemOp::write(a);
        }
        const Addr a = base_ + (in_round / readsPerLine_) * 64 +
                       (in_round % readsPerLine_) % 8 * 8;
        return MemOp::read(a);
    }

  private:
    static constexpr Addr base_ = Addr{1} << 33;
    std::uint32_t cores_;
    std::uint32_t lines_;
    std::uint32_t readsPerLine_;
    std::uint32_t rounds_;
    std::string name_;
    std::vector<std::uint64_t> pos_;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace lacc;

    const std::uint32_t reads =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;
    SystemConfig cfg;
    cfg.numCores = 16;
    cfg.meshWidth = 4;
    cfg.classifierKind = ClassifierKind::Limited;
    if (argc > 2)
        cfg.pct = static_cast<std::uint32_t>(std::atoi(argv[2]));

    std::cout << "Producer-consumer: 1 writer, 15 readers, "
              << reads << " reads/line/round, PCT=" << cfg.pct << "\n\n";

    ProducerConsumer wl(cfg.numCores, 64, reads, 20);
    Multicore m(cfg);
    const auto &st = m.run(wl);

    Table t({"Metric", "Value"});
    t.addRow({"Completion time", std::to_string(st.completionTime())});
    t.addRow({"Invalidations sent",
              std::to_string(st.protocol.invalidationsSent)});
    t.addRow({"ACKwise broadcasts",
              std::to_string(st.protocol.broadcastInvals)});
    t.addRow({"Remote word reads",
              std::to_string(st.protocol.remoteReads)});
    t.addRow({"Private line grants",
              std::to_string(st.protocol.privateReadGrants)});
    t.addRow({"Demotions", std::to_string(st.protocol.demotions)});
    t.addRow({"Promotions", std::to_string(st.protocol.promotions)});
    t.addRow({"Sharing misses",
              std::to_string(st.totalMisses().get(MissType::Sharing))});
    t.addRow({"Word misses",
              std::to_string(st.totalMisses().get(MissType::Word))});
    t.addRow({"Network flit-hops",
              std::to_string(st.network.flitHops)});
    t.addRow({"Functional errors",
              std::to_string(m.functionalErrors())});
    t.print(std::cout);

    std::cout << "\nRe-run with reads/line >= PCT (e.g. `"
              << argv[0]
              << " 6 4`) and watch invalidations return as consumers"
                 " stay private sharers.\n";
    return 0;
}
