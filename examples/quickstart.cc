/**
 * @file
 * Quickstart: build a 64-core system with the paper's default
 * configuration (Table 1), run one of the bundled benchmarks, and
 * print the headline statistics.
 *
 *     ./examples/quickstart [benchmark] [pct]
 *
 * Try `./examples/quickstart streamcluster 1` vs `... 4` to see the
 * locality-aware protocol converting sharing misses into cheap word
 * accesses.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "system/multicore.hh"
#include "system/report.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace lacc;

    const std::string bench = argc > 1 ? argv[1] : "streamcluster";
    if (!isBenchmark(bench)) {
        std::cerr << "unknown benchmark '" << bench << "'; pick one of:";
        for (const auto &n : benchmarkNames())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }

    // 1. Configure the system (defaults reproduce the paper's Table 1).
    SystemConfig cfg;
    if (argc > 2)
        cfg.pct = static_cast<std::uint32_t>(std::atoi(argv[2]));

    // 2. Build the workload and the multicore.
    auto workload = makeBenchmark(bench, cfg);
    Multicore system(cfg);

    // 3. Run to completion.
    std::cout << "Running " << bench << " on " << cfg.summary() << "\n";
    const SystemStats &st = system.run(*workload);

    // 4. Inspect the results.
    const auto lat = st.totalLatency();
    const auto misses = st.totalMisses();
    std::cout << "\nCompletion time: " << st.completionTime()
              << " cycles\n"
              << "Memory-system energy: " << fmt(st.energy.total() / 1e6, 3)
              << " uJ\n"
              << "L1-D miss rate: " << fmtPct(st.l1dMissRate(), 2)
              << "\n\n";

    Table t({"Metric", "Value"});
    t.addRow({"Compute cycles (all cores)", std::to_string(lat.compute)});
    t.addRow({"L1<->L2 cycles", std::to_string(lat.l1ToL2)});
    t.addRow({"L2 waiting cycles", std::to_string(lat.l2Waiting)});
    t.addRow({"L2->sharers cycles", std::to_string(lat.l2Sharers)});
    t.addRow({"Off-chip cycles", std::to_string(lat.offChip)});
    t.addRow({"Synchronization cycles",
              std::to_string(lat.synchronization)});
    t.addRow({"Word misses", std::to_string(misses.get(MissType::Word))});
    t.addRow({"Sharing misses",
              std::to_string(misses.get(MissType::Sharing))});
    t.addRow({"Capacity misses",
              std::to_string(misses.get(MissType::Capacity))});
    t.addRow({"Remote word reads",
              std::to_string(st.protocol.remoteReads)});
    t.addRow({"Remote word writes",
              std::to_string(st.protocol.remoteWrites)});
    t.addRow({"Promotions (remote->private)",
              std::to_string(st.protocol.promotions)});
    t.addRow({"Demotions (private->remote)",
              std::to_string(st.protocol.demotions)});
    t.addRow({"Invalidations sent",
              std::to_string(st.protocol.invalidationsSent)});
    t.addRow({"ACKwise broadcasts",
              std::to_string(st.protocol.broadcastInvals)});
    t.addRow({"Network flit-hops", std::to_string(st.network.flitHops)});
    t.print(std::cout);
    return 0;
}
