/**
 * @file
 * PCT explorer: sweep the Private Caching Threshold for one benchmark
 * and print how completion time, energy, miss rate, and the
 * miss-type mix respond — a single-benchmark slice of the paper's
 * Figures 8-11 that makes the private/remote trade-off tangible.
 *
 *     ./examples/pct_explorer [benchmark] [maxPct]
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "system/multicore.hh"
#include "system/report.hh"
#include "workload/suite.hh"

int
main(int argc, char **argv)
{
    using namespace lacc;

    const std::string bench = argc > 1 ? argv[1] : "blackscholes";
    const std::uint32_t max_pct =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;
    if (!isBenchmark(bench)) {
        std::cerr << "unknown benchmark '" << bench << "'\n";
        return 1;
    }

    std::cout << "PCT sweep for " << bench
              << " (values normalized to PCT=1)\n\n";

    double base_time = 0, base_energy = 0;
    Table t({"PCT", "Time", "Energy", "Miss%", "Word%", "Sharing%",
             "Capacity%", "Promotions", "Demotions"});
    for (std::uint32_t pct = 1; pct <= max_pct; ++pct) {
        SystemConfig cfg;
        cfg.pct = pct;
        auto wl = makeBenchmark(bench, cfg);
        Multicore m(cfg);
        m.setFunctionalChecks(false);
        const auto &st = m.run(*wl);

        const double time = static_cast<double>(st.completionTime());
        const double energy = st.energy.total();
        if (pct == 1) {
            base_time = time;
            base_energy = energy;
        }
        const auto misses = st.totalMisses();
        const double acc =
            static_cast<double>(st.totalL1dAccesses());
        auto pc = [&](MissType ty) {
            return fmt(100.0 * static_cast<double>(misses.get(ty)) /
                           (acc > 0 ? acc : 1),
                       2);
        };
        t.addRow({std::to_string(pct), fmt(time / base_time, 3),
                  fmt(energy / base_energy, 3),
                  fmt(100.0 * st.l1dMissRate(), 2), pc(MissType::Word),
                  pc(MissType::Sharing), pc(MissType::Capacity),
                  std::to_string(st.protocol.promotions),
                  std::to_string(st.protocol.demotions)});
    }
    t.print(std::cout);
    std::cout << "\nLook for: time/energy dipping near PCT 3-5 while"
                 " sharing/capacity misses convert into word misses.\n";
    return 0;
}
