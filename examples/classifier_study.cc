/**
 * @file
 * Classifier study: run one benchmark under every locality classifier
 * (baseline always-private, Complete, Limited_k for several k,
 * Timestamp, and the one-way ablation) and compare.
 *
 *     ./examples/classifier_study [benchmark]
 */

#include <iostream>
#include <string>
#include <vector>

#include "system/multicore.hh"
#include "system/report.hh"
#include "workload/suite.hh"

namespace {

struct Variant
{
    std::string label;
    lacc::SystemConfig cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace lacc;

    const std::string bench = argc > 1 ? argv[1] : "streamcluster";
    if (!isBenchmark(bench)) {
        std::cerr << "unknown benchmark '" << bench << "'\n";
        return 1;
    }

    std::vector<Variant> variants;
    {
        SystemConfig c;
        c.classifierKind = ClassifierKind::AlwaysPrivate;
        variants.push_back({"Baseline (always private)", c});
    }
    {
        SystemConfig c;
        c.classifierKind = ClassifierKind::Complete;
        variants.push_back({"Complete", c});
    }
    for (std::uint32_t k : {1u, 3u, 7u}) {
        SystemConfig c;
        c.classifierKind = ClassifierKind::Limited;
        c.classifierK = k;
        variants.push_back({"Limited_" + std::to_string(k), c});
    }
    {
        SystemConfig c;
        c.classifierKind = ClassifierKind::Timestamp;
        variants.push_back({"Timestamp (ideal)", c});
    }
    {
        SystemConfig c;
        c.classifierKind = ClassifierKind::Limited;
        c.protocolKind = ProtocolKind::AdaptOneWay;
        variants.push_back({"Adapt1-way (Limited_3)", c});
    }

    std::cout << "Classifier comparison on " << bench
              << " (normalized to the baseline)\n\n";

    double base_time = 0, base_energy = 0;
    Table t({"Classifier", "Time", "Energy", "Miss%", "Promo", "Demo",
             "RemoteAcc"});
    for (const auto &v : variants) {
        auto wl = makeBenchmark(bench, v.cfg);
        Multicore m(v.cfg);
        m.setFunctionalChecks(false);
        const auto &st = m.run(*wl);
        const double time = static_cast<double>(st.completionTime());
        const double energy = st.energy.total();
        if (base_time == 0) {
            base_time = time;
            base_energy = energy;
        }
        t.addRow({v.label, fmt(time / base_time, 3),
                  fmt(energy / base_energy, 3),
                  fmt(100.0 * st.l1dMissRate(), 2),
                  std::to_string(st.protocol.promotions),
                  std::to_string(st.protocol.demotions),
                  std::to_string(st.protocol.remoteReads +
                                 st.protocol.remoteWrites)});
    }
    t.print(std::cout);
    std::cout << "\nLook for: Limited_3 tracking Complete closely;"
                 " Adapt1-way losing re-promotions.\n";
    return 0;
}
