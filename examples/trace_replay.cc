/**
 * @file
 * Trace replay: write a small trace file in the lacc text format,
 * load it back, and simulate it — the integration path for driving
 * the simulator with externally captured traces (the role Pin plays
 * for Graphite in the paper).
 *
 *     ./examples/trace_replay [trace-file]
 *
 * Without an argument, a demonstration trace is generated, saved to
 * /tmp/lacc_demo.trace, and replayed.
 */

#include <fstream>
#include <iostream>

#include "system/multicore.hh"
#include "system/report.hh"
#include "workload/trace_file.hh"

int
main(int argc, char **argv)
{
    using namespace lacc;

    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        // Generate a demo: 4 cores ping-ponging a line under a lock,
        // plus private traffic.
        path = "/tmp/lacc_demo.trace";
        std::vector<std::vector<MemOp>> streams(4);
        const Addr shared = Addr{1} << 33;
        for (CoreId c = 0; c < 4; ++c) {
            const Addr priv = (Addr{2} << 33) + c * (Addr{1} << 22);
            for (int i = 0; i < 200; ++i) {
                streams[c].push_back(MemOp::read(priv + (i % 32) * 64));
                streams[c].push_back(MemOp::compute(3));
                if (i % 4 == c % 4) {
                    streams[c].push_back(MemOp::lockAcquire(0));
                    streams[c].push_back(MemOp::read(shared));
                    streams[c].push_back(MemOp::write(shared));
                    streams[c].push_back(MemOp::lockRelease(0));
                }
                if (i % 50 == 49)
                    streams[c].push_back(MemOp::barrier());
            }
        }
        TraceWorkload demo("demo", streams, 1);
        std::ofstream out(path);
        demo.save(out);
        std::cout << "wrote demo trace to " << path << "\n";
    }

    TraceWorkload wl = TraceWorkload::load(path);
    SystemConfig cfg;
    cfg.numCores = wl.numCores();
    cfg.meshWidth = cfg.numCores >= 8 ? 4 : 2;
    cfg.clusterSize = cfg.numCores >= 4 ? 2 : 1;
    cfg.numMemControllers = 2;

    std::cout << "replaying '" << path << "' on " << cfg.summary()
              << "\n\n";
    Multicore m(cfg);
    const auto &st = m.run(wl);

    Table t({"Metric", "Value"});
    t.addRow({"Completion time", std::to_string(st.completionTime())});
    t.addRow({"L1-D miss rate", fmtPct(st.l1dMissRate(), 2)});
    t.addRow({"Energy (pJ)", fmt(st.energy.total(), 0)});
    t.addRow({"Sync cycles (all cores)",
              std::to_string(st.totalLatency().synchronization)});
    t.addRow({"Functional errors",
              std::to_string(m.functionalErrors())});
    t.print(std::cout);
    return 0;
}
