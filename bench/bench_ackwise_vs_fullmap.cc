/**
 * @file
 * Section 5 baseline validation: the paper reports that baseline
 * ACKwise_4 performs within 1% (performance and energy) of a full-map
 * directory, which justifies using ACKwise_4 as the baseline
 * everywhere. This bench reproduces that comparison on the
 * conventional directory protocol (PCT = 1).
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace lacc;

int
main()
{
    setVerbose(false);
    bench::banner("ACKwise4 vs Full-Map directory (baseline protocol)",
                  "Ratios ACKwise/FullMap; paper: within 1% on average");

    const auto &names = benchmarkNames();
    Table t({"Benchmark", "Completion Time ratio", "Energy ratio",
             "Broadcasts"});
    std::vector<double> rt, re;
    for (const auto &name : names) {
        bench::note("ackwise " + name);
        SystemConfig ack = bench::baselineConfig();
        SystemConfig fm = bench::baselineConfig();
        fm.directoryKind = DirectoryKind::FullMap;
        const auto ra = runBenchmark(name, ack);
        const auto rf = runBenchmark(name, fm);
        const double time_ratio =
            static_cast<double>(ra.completionTime) /
            static_cast<double>(rf.completionTime > 0 ? rf.completionTime
                                                      : 1);
        const double energy_ratio =
            ra.energyTotal / (rf.energyTotal > 0 ? rf.energyTotal : 1.0);
        rt.push_back(time_ratio);
        re.push_back(energy_ratio);
        t.addRow({name, fmt(time_ratio, 4), fmt(energy_ratio, 4),
                  std::to_string(ra.stats.protocol.broadcastInvals)});
    }
    const double gm_t = geomean(rt);
    const double gm_e = geomean(re);
    t.addRow({"GEOMEAN", fmt(gm_t, 4), fmt(gm_e, 4), "-"});
    t.print(std::cout);
    std::cout << "\nDeviation from full-map: completion "
              << fmt(std::abs(gm_t - 1.0) * 100, 2) << "%, energy "
              << fmt(std::abs(gm_e - 1.0) * 100, 2)
              << "% (paper: within 1%)\n";
    return 0;
}
