/**
 * @file
 * Section 5 baseline validation: ACKwise_4 vs full-map directory.
 * Thin shim over the harness experiment "ackwise"
 * (src/harness/experiments.cc); prefer `lacc_bench --filter ackwise`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("ackwise");
}
