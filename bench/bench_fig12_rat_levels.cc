/**
 * @file
 * Figure 12 reproduction: RAT level/threshold sensitivity. Thin shim
 * over the harness experiment "fig12" (src/harness/experiments.cc);
 * prefer `lacc_bench --filter fig12`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("fig12");
}
