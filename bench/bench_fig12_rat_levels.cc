/**
 * @file
 * Figure 12 reproduction: sensitivity of the RAT approximation to the
 * idealized Timestamp-based classification (§3.3, §5.2). Compares,
 * at PCT = 4 with the Complete locality tracker:
 *
 *   Timestamp       (reference, 64-bit last-access timestamps)
 *   L-1             (single RAT level: RAT fixed at PCT)
 *   L-2, T-8        (2 levels, RATmax 8)
 *   L-2, T-16       (2 levels, RATmax 16)    <- paper's choice
 *   L-4, T-8 / L-4, T-16 / L-8, T-16
 *
 * Paper shape: completion time roughly flat; single-level costs ~9%
 * energy; multiple levels recover it; RATmax 16 slightly (~2%) better
 * than 8; no difference between 2/4/8 levels at RATmax 16.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace lacc;

namespace {

struct RatPoint
{
    const char *label;
    bool timestamp;
    std::uint32_t levels;
    std::uint32_t ratMax;
};

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Figure 12: Remote Access Threshold sensitivity",
                  "Geomean completion time & energy normalized to the"
                  " Timestamp classifier (PCT=4, Complete tracking)");

    const std::vector<RatPoint> points = {
        {"Timestamp", true, 0, 0},   {"L-1", false, 1, 16},
        {"L-2,T-8", false, 2, 8},    {"L-2,T-16", false, 2, 16},
        {"L-4,T-8", false, 4, 8},    {"L-4,T-16", false, 4, 16},
        {"L-8,T-16", false, 8, 16},
    };
    const auto &names = benchmarkNames();

    std::vector<double> ref_time(names.size()), ref_energy(names.size());
    Table t({"Scheme", "Completion Time", "Energy"});
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
        const auto &p = points[pi];
        bench::note(std::string("fig12 ") + p.label);
        SystemConfig cfg = defaultConfig();
        cfg.classifierKind = p.timestamp ? ClassifierKind::Timestamp
                                         : ClassifierKind::Complete;
        if (!p.timestamp) {
            cfg.nRatLevels = p.levels;
            cfg.ratMax = p.ratMax;
        }
        std::vector<double> times, energies;
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            const auto r = runBenchmark(names[bi], cfg);
            const double time = static_cast<double>(r.completionTime);
            const double energy = r.energyTotal;
            if (pi == 0) {
                ref_time[bi] = time > 0 ? time : 1.0;
                ref_energy[bi] = energy > 0 ? energy : 1.0;
            }
            times.push_back(time / ref_time[bi]);
            energies.push_back(energy / ref_energy[bi]);
        }
        t.addRow({p.label, fmt(geomean(times), 3),
                  fmt(geomean(energies), 3)});
    }
    t.print(std::cout);
    std::cout << "\nPaper: L-1 costs ~9% energy; L-2,T-16 matches the"
                 " Timestamp scheme; extra levels add nothing\n";
    return 0;
}
