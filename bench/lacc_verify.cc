/**
 * @file
 * Verification CLI over src/verify/: the seeded litmus fuzzer and the
 * exhaustive bounded-state enumerator, sharing the protocol-invariant
 * library. Command-line conventions mirror lacc_bench: strict
 * full-token numeric parsing (a partial or garbage value exits 2 and
 * prints the valid range), factory-name validation up front, exit 0
 * only when verification is clean.
 *
 * Usage:
 *   lacc_verify --fuzz [--seed N] [--iters N] [--cores N] [--ops N]
 *               [--protocol NAME] [--network NAME] [--sim-threads N]
 *               [--faults NAME] [--fault-rate X] [--fault-seed N]
 *               [--repro-dir DIR] [--no-stepwise]
 *   lacc_verify --enumerate [--cores N] [--lines N] [--max-states N]
 *               [--protocol NAME] [--network NAME]
 *   lacc_verify --list-protocols | --list-networks | --list-engines
 *
 * Exit status: 0 clean, 1 violation found (or state cap hit before
 * the space was exhausted), 2 usage error.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/plan.hh"
#include "net/factory.hh"
#include "protocol/factory.hh"
#include "sim/log.hh"
#include "sim/overrides.hh"
#include "system/engine.hh"
#include "verify/enumerate.hh"
#include "verify/fuzz.hh"

using namespace lacc;
using namespace lacc::verify;

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: lacc_verify --fuzz | --enumerate [options]\n"
        "\n"
        "Protocol verification: a seeded randomized litmus fuzzer and"
        " an exhaustive\nbounded-state enumerator, both checking every"
        " protocol invariant\n(src/verify/invariants.hh) against the"
        " sequentially-consistent reference\nmemory.\n"
        "\n"
        "modes (exactly one):\n"
        "  --fuzz            random sharing-heavy traces, shrunk on"
        " failure\n"
        "  --enumerate       BFS over every reachable protocol state\n"
        "\n"
        "fuzz options:\n"
        "  --seed N          campaign seed (default 1)\n"
        "  --iters N         traces to generate, in [1, 1000000000]"
        " (default 25)\n"
        "  --cores N         cores per trace, in [2, 16] (default 4)\n"
        "  --ops N           ops per core, in [1, 4096] (default 24)\n"
        "  --sim-threads N   engine worker threads for the full timed\n"
        "                    runs, in [1, 1024] (N > 1 = sharded"
        " engine)\n"
        "  --repro-dir DIR   write minimized repro traces into DIR\n"
        "  --no-stepwise     skip the per-access invariant replay\n"
        "  --faults NAME     fuzz under a named fault plan (see\n"
        "                    lacc_bench --list-faults); a RunAbort is\n"
        "                    a *detected* fault, only silent\n"
        "                    corruption fails the campaign. Shrinking\n"
        "                    co-minimizes the fault schedule with the\n"
        "                    trace.\n"
        "  --fault-rate X    base per-event fault probability in"
        " [0, 1]\n"
        "  --fault-seed N    fault-schedule seed\n"
        "\n"
        "enumerate options:\n"
        "  --cores N         cores, in [2, 4] (default 2)\n"
        "  --lines N         cache lines, in [1, 2] (default 2)\n"
        "  --max-states N    state cap, in [1, 100000000]"
        " (default 500000)\n"
        "\n"
        "common options:\n"
        "  --protocol NAME   one protocol (default: fuzz = all,"
        " enumerate = lacc)\n"
        "  --network NAME    one topology (default: fuzz = mesh+xbar,"
        " enumerate = mesh)\n"
        "  --list-protocols  list coherence-protocol names and exit\n"
        "  --list-networks   list interconnect-topology names and"
        " exit\n"
        "  --list-engines    list execution-engine names and exit\n"
        "  --help            this message\n");
}

/**
 * Strict full-token decimal parse: every character must be a digit,
 * at most 19 of them, and the value must land in [lo, hi]. "12x",
 * "0x10", "-3", " 5", and "" are all rejected — a typo must never
 * silently verify less than the user asked for.
 */
bool
parseU64(const char *s, std::uint64_t lo, std::uint64_t hi,
         std::uint64_t &out)
{
    if (s == nullptr || *s == '\0')
        return false;
    std::uint64_t v = 0;
    int digits = 0;
    for (const char *p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        if (++digits > 19)
            return false;
        v = v * 10 + static_cast<std::uint64_t>(*p - '0');
    }
    if (v < lo || v > hi)
        return false;
    out = v;
    return true;
}

/** Parse @p s for option @p name or exit 2 with the valid range. */
std::uint64_t
parseOrDie(const char *name, const char *s, std::uint64_t lo,
           std::uint64_t hi)
{
    std::uint64_t v = 0;
    if (!parseU64(s, lo, hi, v)) {
        std::fprintf(stderr,
                     "%s wants an integer in [%" PRIu64 ", %" PRIu64
                     "], got '%s'\n",
                     name, lo, hi, s);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    bool fuzz = false, enumer = false;
    FuzzOptions fo;
    EnumOptions eo;
    ConfigOverrides ov;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", name);
                usage(stderr);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--fuzz") {
            fuzz = true;
        } else if (arg == "--enumerate") {
            enumer = true;
        } else if (arg == "--list-protocols") {
            for (const auto &name : protocolNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--list-networks") {
            for (const auto &name : networkNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--list-engines") {
            for (const auto &name : engineNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--seed") {
            fo.seed = parseOrDie("--seed", value("--seed"), 0,
                                 UINT64_MAX / 2);
        } else if (arg == "--iters") {
            fo.iters = static_cast<std::uint32_t>(parseOrDie(
                "--iters", value("--iters"), 1, 1000000000));
        } else if (arg == "--cores") {
            // Range-checked per mode below (the mode flag may come
            // after); parse loosely here.
            const std::uint64_t v =
                parseOrDie("--cores", value("--cores"), 1, 16);
            fo.cores = static_cast<std::uint32_t>(v);
            eo.cores = static_cast<std::uint32_t>(v);
        } else if (arg == "--ops") {
            fo.opsPerCore = static_cast<std::uint32_t>(
                parseOrDie("--ops", value("--ops"), 1, 4096));
        } else if (arg == "--lines") {
            eo.lines = static_cast<std::uint32_t>(
                parseOrDie("--lines", value("--lines"), 1, 2));
        } else if (arg == "--max-states") {
            eo.maxStates = parseOrDie(
                "--max-states", value("--max-states"), 1, 100000000);
        } else if (arg == "--sim-threads") {
            ov.simThreads = static_cast<std::uint32_t>(parseOrDie(
                "--sim-threads", value("--sim-threads"), 1, 1024));
        } else if (arg == "--protocol") {
            ov.protocol = value("--protocol");
        } else if (arg == "--network") {
            ov.network = value("--network");
        } else if (arg == "--faults") {
            ov.faults = value("--faults");
        } else if (arg == "--fault-rate") {
            char *end = nullptr;
            const char *s = value("--fault-rate");
            const double rate = std::strtod(s, &end);
            if (end == s || *end != '\0' || rate < 0.0 || rate > 1.0) {
                std::fprintf(stderr,
                             "--fault-rate wants a number in"
                             " [0, 1], got '%s'\n",
                             s);
                return 2;
            }
            ov.faultRate = rate;
        } else if (arg == "--fault-seed") {
            ov.faultSeed = parseOrDie("--fault-seed",
                                      value("--fault-seed"), 0,
                                      UINT64_MAX / 2);
            ov.faultSeedSet = true;
        } else if (arg == "--repro-dir") {
            fo.reproDir = value("--repro-dir");
        } else if (arg == "--no-stepwise") {
            fo.stepwise = false;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (fuzz == enumer) {
        std::fprintf(stderr,
                     "exactly one of --fuzz / --enumerate required\n");
        usage(stderr);
        return 2;
    }

    // One validation point for the name-valued overrides (shared with
    // lacc_bench via sim/overrides.hh).
    if (!ov.validateOrReport())
        return 2;

    if (fuzz) {
        if (fo.cores < 2 || fo.cores > 16) {
            std::fprintf(stderr,
                         "--fuzz --cores wants [2, 16], got %u\n",
                         fo.cores);
            return 2;
        }
        fo.protocol = ov.protocol;
        fo.network = ov.network;
        fo.simThreads = ov.simThreads;
        fo.faults = ov.faults;
        fo.faultRate = ov.faultRate;
        fo.faultSeed = ov.faultSeed;
        fo.faultSeedSet = ov.faultSeedSet;
        const FuzzResult res = runFuzz(fo);
        std::printf("fuzz: seed %" PRIu64 ", %u traces, %" PRIu64
                    " runs, %" PRIu64 " failure(s)\n",
                    fo.seed, fo.iters, res.runs, res.failures);
        if (res.failures == 0)
            return 0;
        std::printf("first failure (minimized):\n%s\n",
                    res.firstReport.c_str());
        for (const auto &p : res.reproPaths)
            std::printf("repro written: %s\n", p.c_str());
        return 1;
    }

    if (eo.cores < 2 || eo.cores > 4) {
        std::fprintf(stderr,
                     "--enumerate --cores wants [2, 4], got %u\n",
                     eo.cores);
        return 2;
    }
    if (ov.simThreads > 1) {
        std::fprintf(stderr,
                     "--sim-threads applies to --fuzz only (the"
                     " enumerator drives accesses stepwise)\n");
        return 2;
    }
    if (!ov.faults.empty() || ov.faultRate >= 0.0 || ov.faultSeedSet) {
        std::fprintf(stderr,
                     "--faults/--fault-rate/--fault-seed apply to"
                     " --fuzz only (the enumerator explores the"
                     " fault-free state space)\n");
        return 2;
    }
    if (!ov.protocol.empty())
        eo.protocol = ov.protocol;
    if (!ov.network.empty())
        eo.network = ov.network;
    const EnumResult res = enumerate(eo);
    std::printf("enumerate: %s x %s, %u cores, %u line(s): %" PRIu64
                " states, %" PRIu64 " transitions, %s\n",
                eo.protocol.c_str(), eo.network.c_str(), eo.cores,
                eo.lines, res.states, res.transitions,
                res.exhaustive ? "exhaustive"
                               : (res.violations.empty()
                                      ? "STATE CAP REACHED"
                                      : "VIOLATION"));
    if (!res.violations.empty()) {
        for (const auto &v : res.violations)
            std::printf("violation: %s\n", v.c_str());
        std::printf("counterexample path (from reset):\n%s",
                    res.counterexample.c_str());
        return 1;
    }
    return res.exhaustive ? 0 : 1;
}
