/**
 * @file
 * Figure 13 reproduction: Limited_k classifier accuracy. Thin shim
 * over the harness experiment "fig13" (src/harness/experiments.cc);
 * prefer `lacc_bench --filter fig13`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("fig13");
}
