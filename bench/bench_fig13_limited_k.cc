/**
 * @file
 * Figure 13 reproduction: accuracy of the Limited_k classifier as k
 * sweeps over {1, 3, 5, 7, 64}, per benchmark, normalized to the
 * Complete classifier (k = 64), at the best static PCT = 4.
 *
 * Paper shape: Limited_3 within ~3% of Complete everywhere (sometimes
 * better: it seeds new sharers from the majority mode, skipping the
 * per-sharer learning phase in streamcluster / dijkstra-ss);
 * Limited_1 is hurt by mis-seeding on radix (first sharer remote) and
 * bodytrack (first sharer private).
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace lacc;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 13: Limited_k classifier accuracy",
                  "Completion time & energy normalized to the Complete"
                  " classifier (PCT=4)");

    const std::vector<std::uint32_t> ks = {1, 3, 5, 7};
    const auto &names = benchmarkNames();

    // Reference: Complete classifier.
    std::vector<double> ref_time(names.size()), ref_energy(names.size());
    {
        SystemConfig cfg = defaultConfig();
        cfg.classifierKind = ClassifierKind::Complete;
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            bench::note("fig13 Complete " + names[bi]);
            const auto r = runBenchmark(names[bi], cfg);
            ref_time[bi] = r.completionTime > 0
                               ? static_cast<double>(r.completionTime)
                               : 1.0;
            ref_energy[bi] = r.energyTotal > 0 ? r.energyTotal : 1.0;
        }
    }

    Table t({"Benchmark", "k", "Completion Time", "Energy"});
    std::vector<std::vector<double>> gm_t(ks.size()), gm_e(ks.size());
    for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        SystemConfig cfg = defaultConfig();
        cfg.classifierKind = ClassifierKind::Limited;
        cfg.classifierK = ks[ki];
        bench::note("fig13 k=" + std::to_string(ks[ki]));
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            const auto r = runBenchmark(names[bi], cfg);
            const double nt =
                static_cast<double>(r.completionTime) / ref_time[bi];
            const double ne = r.energyTotal / ref_energy[bi];
            gm_t[ki].push_back(nt);
            gm_e[ki].push_back(ne);
            t.addRow({names[bi], std::to_string(ks[ki]), fmt(nt, 3),
                      fmt(ne, 3)});
        }
    }
    for (std::size_t bi = 0; bi < names.size(); ++bi)
        t.addRow({names[bi], "64(Complete)", "1.000", "1.000"});
    t.print(std::cout);

    std::cout << "\nGeomeans vs Complete:\n";
    Table g({"k", "Completion Time", "Energy"});
    for (std::size_t ki = 0; ki < ks.size(); ++ki)
        g.addRow({std::to_string(ks[ki]), fmt(geomean(gm_t[ki]), 3),
                  fmt(geomean(gm_e[ki]), 3)});
    g.addRow({"64", "1.000", "1.000"});
    g.print(std::cout);
    std::cout << "\nPaper: Limited_3 within ~3% of Complete; Limited_1"
                 " suffers on radix/bodytrack\n";
    return 0;
}
