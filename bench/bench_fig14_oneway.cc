/**
 * @file
 * Figure 14 reproduction: Adapt1-way / Adapt2-way ratios. Thin shim
 * over the harness experiment "fig14" (src/harness/experiments.cc);
 * prefer `lacc_bench --filter fig14`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("fig14");
}
