/**
 * @file
 * Figure 14 reproduction: cost of removing remote->private
 * re-promotion. Ratio of Adapt1-way (demote-only, §3.7) over
 * Adapt2-way (the full protocol), per benchmark, at PCT = 4.
 *
 * Paper shape: Adapt1-way is on average ~34% worse in completion time
 * and ~13% worse in energy, with blow-ups on bodytrack (~3.3x) and
 * dijkstra-ss (~2.3x).
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace lacc;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 14: Adapt1-way / Adapt2-way ratios",
                  "PCT=4; >1 means one-way transitions are worse");

    const auto &names = benchmarkNames();
    Table t({"Benchmark", "Completion Time ratio", "Energy ratio"});
    std::vector<double> rt, re;
    for (const auto &name : names) {
        bench::note("fig14 " + name);
        SystemConfig cfg2 = defaultConfig();
        SystemConfig cfg1 = defaultConfig();
        cfg1.protocolKind = ProtocolKind::AdaptOneWay;
        const auto r2 = runBenchmark(name, cfg2);
        const auto r1 = runBenchmark(name, cfg1);
        const double time_ratio =
            static_cast<double>(r1.completionTime) /
            static_cast<double>(r2.completionTime > 0 ? r2.completionTime
                                                      : 1);
        const double energy_ratio =
            r1.energyTotal / (r2.energyTotal > 0 ? r2.energyTotal : 1.0);
        rt.push_back(time_ratio);
        re.push_back(energy_ratio);
        t.addRow({name, fmt(time_ratio, 3), fmt(energy_ratio, 3)});
    }
    t.addRow({"GEOMEAN", fmt(geomean(rt), 3), fmt(geomean(re), 3)});
    t.print(std::cout);
    std::cout << "\nPaper: average ~1.34x completion time / ~1.13x"
                 " energy; bodytrack ~3.3x, dijkstra-ss ~2.3x\n";
    return 0;
}
