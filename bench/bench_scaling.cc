/**
 * @file
 * Extension experiment: protocol benefit vs core count (16/32/64).
 * Thin shim over the harness experiment "scaling"
 * (src/harness/experiments.cc); prefer `lacc_bench --filter scaling`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("scaling");
}
