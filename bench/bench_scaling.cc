/**
 * @file
 * Extension experiment: how the locality-aware protocol's benefit
 * scales with core count (16 / 32 / 64 cores).
 *
 * The paper's motivation (§1) is that data movement gets more
 * expensive as core counts grow — mesh diameter, invalidation fan-out
 * and directory pressure all increase — so the protocol's advantage
 * over the baseline should widen with the machine. This bench runs
 * the whole suite at PCT 4 vs the always-private baseline for three
 * machine sizes and reports the geomean improvement per size.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace lacc;

namespace {

SystemConfig
sized(std::uint32_t cores, std::uint32_t width, bool adaptive)
{
    SystemConfig cfg = defaultConfig();
    cfg.numCores = cores;
    cfg.meshWidth = width;
    cfg.numMemControllers = 8;
    if (!adaptive) {
        cfg.classifierKind = ClassifierKind::AlwaysPrivate;
        cfg.pct = 1;
    }
    return cfg;
}

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Scaling: adaptive (PCT=4) vs baseline by core count",
                  "Geomean over the suite; lower is better for the"
                  " adaptive/baseline ratios");

    struct Size
    {
        std::uint32_t cores, width;
    };
    const std::vector<Size> sizes = {{16, 4}, {32, 8}, {64, 8}};
    const auto &names = benchmarkNames();

    Table t({"Cores", "Completion ratio", "Energy ratio",
             "Baseline flit-hops/access", "Adaptive flit-hops/access"});
    for (const auto &sz : sizes) {
        bench::note("scaling " + std::to_string(sz.cores) + " cores");
        std::vector<double> times, energies;
        double base_hops = 0, adapt_hops = 0;
        for (const auto &name : names) {
            const auto rb =
                runBenchmark(name, sized(sz.cores, sz.width, false));
            const auto ra =
                runBenchmark(name, sized(sz.cores, sz.width, true));
            times.push_back(static_cast<double>(ra.completionTime) /
                            static_cast<double>(rb.completionTime > 0
                                                    ? rb.completionTime
                                                    : 1));
            energies.push_back(ra.energyTotal /
                               (rb.energyTotal > 0 ? rb.energyTotal
                                                   : 1.0));
            base_hops += static_cast<double>(rb.stats.network.flitHops) /
                         static_cast<double>(rb.stats.totalL1dAccesses() +
                                             1);
            adapt_hops += static_cast<double>(ra.stats.network.flitHops) /
                          static_cast<double>(ra.stats.totalL1dAccesses() +
                                              1);
        }
        t.addRow({std::to_string(sz.cores), fmt(geomean(times), 3),
                  fmt(geomean(energies), 3),
                  fmt(base_hops / static_cast<double>(names.size()), 2),
                  fmt(adapt_hops / static_cast<double>(names.size()),
                      2)});
    }
    t.print(std::cout);
    std::cout << "\nExpected: the adaptive/baseline ratio falls (bigger"
                 " win) as the machine grows\n";
    return 0;
}
