/**
 * @file
 * Figure 2 reproduction: breakdown of *evicted* L1 cache lines by the
 * utilization they had accrued when evicted (baseline system, paper
 * buckets {1, 2-3, 4-5, 6-7, >= 8}).
 */

#include <iostream>

#include "bench_util.hh"

using namespace lacc;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 2: Evictions vs Utilization",
                  "Baseline directory protocol; % of evicted lines per"
                  " utilization bucket");

    Table t({"Benchmark", "1", "2-3", "4-5", "6-7", ">=8", "total",
             "<4 (frac)"});
    for (const auto &name : benchmarkNames()) {
        bench::note("fig2 " + name);
        const auto r = runBenchmark(name, bench::baselineConfig());
        const auto &h = r.stats.evictionUtil;
        t.addRow({name, fmtPct(h.bucketFraction(0)),
                  fmtPct(h.bucketFraction(1)),
                  fmtPct(h.bucketFraction(2)),
                  fmtPct(h.bucketFraction(3)),
                  fmtPct(h.bucketFraction(4)),
                  std::to_string(h.total()),
                  fmt(h.fractionBelow(4), 2)});
    }
    t.print(std::cout);
    std::cout << "\nShape check: streaming benchmarks evict mostly"
                 " low-utilization lines\n";
    return 0;
}
