/**
 * @file
 * Figure 2 reproduction: evicted-line utilization histogram.
 * Thin shim over the harness experiment "fig02"
 * (src/harness/experiments.cc); prefer `lacc_bench --filter fig02`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("fig02");
}
