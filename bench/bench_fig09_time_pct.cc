/**
 * @file
 * Figure 9 reproduction: completion-time breakdown vs PCT. Thin shim
 * over the harness experiment "fig09" (src/harness/experiments.cc);
 * prefer `lacc_bench --filter fig09`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("fig09");
}
