/**
 * @file
 * Figure 11 reproduction: geomean completion time & energy vs PCT.
 * Thin shim over the harness experiment "fig11"
 * (src/harness/experiments.cc); prefer `lacc_bench --filter fig11`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("fig11");
}
