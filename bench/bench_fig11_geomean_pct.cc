/**
 * @file
 * Figure 11 reproduction: geometric means of Completion Time and
 * Energy across all 21 benchmarks as PCT sweeps over
 * {1..8, 10, 12, 14, 16, 18, 20}, normalized to PCT = 1.
 *
 * Paper shape: completion time falls to ~0.85 around PCT 3-4 then
 * rises; energy falls to ~0.75 by PCT 4-5, stays flat to ~8, then
 * rises. The paper selects the static PCT = 4 from this plot.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace lacc;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 11: Geomean Completion Time & Energy vs PCT",
                  "Normalized to PCT=1 across all 21 benchmarks");

    const std::vector<std::uint32_t> pcts = {1, 2,  3,  4,  5,  6,  7,
                                             8, 10, 12, 14, 16, 18, 20};
    const auto &names = benchmarkNames();

    // base[benchmark] = (completion, energy) at PCT 1.
    std::vector<double> base_time(names.size()), base_energy(names.size());

    Table t({"PCT", "Completion Time (geomean)", "Energy (geomean)"});
    std::vector<std::string> best_row;
    double best_time = 1e300;
    for (std::size_t pi = 0; pi < pcts.size(); ++pi) {
        std::vector<double> times, energies;
        bench::note("fig11 PCT=" + std::to_string(pcts[pi]));
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            const auto r =
                runBenchmark(names[bi], bench::pctConfig(pcts[pi]));
            const double time =
                static_cast<double>(r.completionTime);
            const double energy = r.energyTotal;
            if (pi == 0) {
                base_time[bi] = time > 0 ? time : 1.0;
                base_energy[bi] = energy > 0 ? energy : 1.0;
            }
            times.push_back(time / base_time[bi]);
            energies.push_back(energy / base_energy[bi]);
        }
        const double gm_t = geomean(times);
        const double gm_e = geomean(energies);
        t.addRow({std::to_string(pcts[pi]), fmt(gm_t, 3), fmt(gm_e, 3)});
        if (gm_t < best_time) {
            best_time = gm_t;
            best_row = {std::to_string(pcts[pi]), fmt(gm_t, 3),
                        fmt(gm_e, 3)};
        }
    }
    t.print(std::cout);
    if (!best_row.empty()) {
        std::cout << "\nBest completion time at PCT " << best_row[0]
                  << " (time " << best_row[1] << ", energy "
                  << best_row[2] << ")\n";
    }
    std::cout << "Paper: PCT 4 gives ~0.85 completion time and ~0.75"
                 " energy\n";
    return 0;
}
