/**
 * @file
 * Figure 1 reproduction: breakdown of *invalidated* L1 cache lines by
 * the utilization they had accrued when invalidated, measured on the
 * baseline system (conventional directory protocol, PCT = 1), using
 * the paper's buckets {1, 2-3, 4-5, 6-7, >= 8}.
 *
 * Paper's motivating observation: a large fraction of invalidated
 * lines have low utilization (e.g. streamcluster: ~80% below 4), so
 * private caching of such data only buys invalidation cost.
 */

#include <iostream>

#include "bench_util.hh"

using namespace lacc;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 1: Invalidations vs Utilization",
                  "Baseline directory protocol; % of invalidated lines"
                  " per utilization bucket");

    Table t({"Benchmark", "1", "2-3", "4-5", "6-7", ">=8", "total",
             "<4 (frac)"});
    for (const auto &name : benchmarkNames()) {
        bench::note("fig1 " + name);
        const auto r = runBenchmark(name, bench::baselineConfig());
        const auto &h = r.stats.invalidationUtil;
        t.addRow({name, fmtPct(h.bucketFraction(0)),
                  fmtPct(h.bucketFraction(1)),
                  fmtPct(h.bucketFraction(2)),
                  fmtPct(h.bucketFraction(3)),
                  fmtPct(h.bucketFraction(4)),
                  std::to_string(h.total()),
                  fmt(h.fractionBelow(4), 2)});
    }
    t.print(std::cout);
    std::cout << "\nShape check: low-utilization buckets dominate for"
                 " streaming/sharing-heavy benchmarks\n";
    return 0;
}
