/**
 * @file
 * Figure 1 reproduction: invalidated-line utilization histogram.
 * Thin shim over the harness experiment "fig01"
 * (src/harness/experiments.cc); prefer `lacc_bench --filter fig01`,
 * which can also run in parallel and emit JSON.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("fig01");
}
