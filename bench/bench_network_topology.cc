/**
 * @file
 * Extension experiment: topology sensitivity of the adaptive protocol
 * — directory variants {ACKwise2, ACKwise4, FullMap} across the
 * {mesh, torus, ring, xbar} fabrics. Thin shim over the harness
 * experiment "network" (src/harness/experiments.cc); prefer
 * `lacc_bench --filter network`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("network");
}
