/**
 * @file
 * Figure 8 reproduction: dynamic energy breakdown (L1-I, L1-D, L2,
 * Directory, Router, Link) as PCT sweeps 1..8, normalized per
 * benchmark to PCT = 1, plus the cross-benchmark Average (the paper
 * plots Average, not geomean, for this figure).
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace lacc;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 8: Energy breakdown vs PCT (normalized to"
                  " PCT=1)",
                  "Components: L1-I / L1-D / L2 / Directory / Router /"
                  " Link");

    const std::vector<std::uint32_t> pcts = {1, 2, 3, 4, 5, 6, 7, 8};
    const auto &names = benchmarkNames();

    // avg[p][component] accumulates normalized components.
    std::vector<std::vector<double>> avg(pcts.size(),
                                         std::vector<double>(6, 0.0));

    Table t({"Benchmark", "PCT", "L1-I", "L1-D", "L2", "Dir", "Router",
             "Link", "Total"});
    for (const auto &name : names) {
        bench::note("fig8 " + name);
        double base_total = 0.0;
        for (std::size_t pi = 0; pi < pcts.size(); ++pi) {
            const auto r = runBenchmark(name, bench::pctConfig(pcts[pi]));
            const auto v = bench::energyVector(r.stats);
            double total = 0.0;
            for (const double c : v)
                total += c;
            if (pi == 0)
                base_total = total > 0 ? total : 1.0;
            std::vector<std::string> row = {name,
                                            std::to_string(pcts[pi])};
            for (std::size_t i = 0; i < v.size(); ++i) {
                const double n = v[i] / base_total;
                avg[pi][i] += n / static_cast<double>(names.size());
                row.push_back(fmt(n, 3));
            }
            row.push_back(fmt(total / base_total, 3));
            t.addRow(std::move(row));
        }
    }
    for (std::size_t pi = 0; pi < pcts.size(); ++pi) {
        std::vector<std::string> row = {"AVERAGE",
                                        std::to_string(pcts[pi])};
        double total = 0.0;
        for (const double c : avg[pi]) {
            row.push_back(fmt(c, 3));
            total += c;
        }
        row.push_back(fmt(total, 3));
        t.addRow(std::move(row));
    }
    t.print(std::cout);
    std::cout << "\nShape check (paper): average energy falls ~25% by"
                 " PCT 4; links dominate routers at 11nm\n";
    return 0;
}
