/**
 * @file
 * Figure 8 reproduction: energy breakdown vs PCT. Thin shim over the
 * harness experiment "fig08" (src/harness/experiments.cc); prefer
 * `lacc_bench --filter fig08`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("fig08");
}
