/**
 * @file
 * Library micro-benchmarks (google-benchmark): hot paths of the
 * simulator substrate — cache lookups/fills, mesh routing, broadcast,
 * sharer-list updates, classifier decisions, whole L1-hit and
 * L1-miss transactions, and workload generation throughput.
 */

#include <benchmark/benchmark.h>

#include "cache/set_assoc.hh"
#include "core/classifier.hh"
#include "dram/dram.hh"
#include "core/limited_classifier.hh"
#include "protocol/core_vec.hh"
#include "protocol/sharer_list.hh"
#include "energy/model.hh"
#include "net/factory.hh"
#include "net/mesh.hh"
#include "sim/profiler.hh"
#include "system/multicore.hh"
#include "workload/suite.hh"

namespace {

using namespace lacc;

SystemConfig
microCfg()
{
    SystemConfig c;
    c.numCores = 64;
    return c;
}

void
BM_L1Lookup(benchmark::State &state)
{
    // SoA tag-store hit path: find() scans only the flat tag array.
    L1Cache c(128, 4, 8);
    for (LineAddr l = 0; l < 512; ++l) {
        auto e = c.victimFor(l);
        e.setValid(true);
        e.setTag(l);
    }
    LineAddr l = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.find(l));
        l = (l + 1) & 511;
    }
}
BENCHMARK(BM_L1Lookup);

void
BM_L1LookupMiss(benchmark::State &state)
{
    // SoA tag-store miss path: a full-way scan that never matches
    // (the common L1 outcome on cold/shared workloads).
    L1Cache c(128, 4, 8);
    for (LineAddr l = 0; l < 512; ++l) {
        auto e = c.victimFor(l);
        e.setValid(true);
        e.setTag(l);
    }
    LineAddr l = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.find(l + 4096)); // never resident
        l = (l + 1) & 511;
    }
}
BENCHMARK(BM_L1LookupMiss);

void
BM_L1VictimSelect(benchmark::State &state)
{
    // LRU victim scan over the flat lastAccess array (full sets).
    L1Cache c(128, 4, 8);
    for (LineAddr l = 0; l < 512; ++l) {
        auto e = c.victimFor(l);
        e.setValid(true);
        e.setTag(l);
        e.setLastAccess(l);
    }
    LineAddr l = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.victimFor(l));
        l = (l + 1) & 1023;
    }
}
BENCHMARK(BM_L1VictimSelect);

void
BM_L1FillWords(benchmark::State &state)
{
    // Arena line copy (the data movement of every private grant).
    L1Cache c(128, 4, 8);
    const std::uint64_t src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    LineAddr l = 0;
    for (auto _ : state) {
        auto e = c.victimFor(l);
        e.fillWords(src);
        benchmark::DoNotOptimize(e.words());
        l = (l + 1) & 1023;
    }
}
BENCHMARK(BM_L1FillWords);

void
BM_DramSlabWriteRead(benchmark::State &state)
{
    // DRAM slab arena steady state: write-back + fetch of a line set
    // that fits the slab (no per-line vector allocations).
    DramModel d(microCfg());
    std::uint64_t line[8] = {};
    LineAddr l = 0;
    for (auto _ : state) {
        line[0] = l;
        d.writeLine(l, line);
        d.readLine(l, line);
        benchmark::DoNotOptimize(line[0]);
        l = (l + 1) & 255;
    }
}
BENCHMARK(BM_DramSlabWriteRead);

void
BM_DramSlabColdRead(benchmark::State &state)
{
    // Untouched-line fetch: zero-fill path, no slab slot allocated.
    DramModel d(microCfg());
    std::uint64_t line[8];
    LineAddr l = 0;
    for (auto _ : state) {
        d.readLine(l, line);
        benchmark::DoNotOptimize(line[0]);
        ++l;
    }
}
BENCHMARK(BM_DramSlabColdRead);

void
BM_MeshUnicast(benchmark::State &state)
{
    EnergyModel e;
    MeshNetwork net(microCfg(), e);
    Cycle t = 0;
    CoreId dst = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.unicast(0, dst, 9, t));
        dst = static_cast<CoreId>((dst + 7) % 64);
        t += 3;
    }
}
BENCHMARK(BM_MeshUnicast);

void
BM_MeshBroadcast(benchmark::State &state)
{
    EnergyModel e;
    MeshNetwork net(microCfg(), e);
    std::vector<Cycle> arrivals;
    Cycle t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.broadcast(27, 1, t, arrivals));
        t += 10;
    }
}
BENCHMARK(BM_MeshBroadcast);

// ---------------------------------------------------------------------------
// Table-driven network hot paths, per topology (arg 0/1 = contention
// off/on), plus the hop-by-hop reference walkers for comparison: the
// table path must beat its reference twin on every topology.
// ---------------------------------------------------------------------------

void
BM_NetUnicast(benchmark::State &state, const char *topology)
{
    auto cfg = microCfg();
    cfg.modelContention = state.range(0) != 0;
    applyNetworkName(cfg, topology);
    EnergyModel e;
    const auto net = makeNetwork(cfg, e);
    Cycle t = 0;
    CoreId dst = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net->unicast(0, dst, 9, t));
        dst = static_cast<CoreId>((dst + 7) % 64);
        t += 3;
    }
}
BENCHMARK_CAPTURE(BM_NetUnicast, mesh, "mesh")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetUnicast, torus, "torus")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetUnicast, ring, "ring")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetUnicast, xbar, "xbar")->Arg(0)->Arg(1);

void
BM_NetBroadcast(benchmark::State &state, const char *topology)
{
    auto cfg = microCfg();
    cfg.modelContention = state.range(0) != 0;
    applyNetworkName(cfg, topology);
    EnergyModel e;
    const auto net = makeNetwork(cfg, e);
    std::vector<Cycle> arrivals;
    Cycle t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net->broadcast(27, 1, t, arrivals));
        t += 10;
    }
}
BENCHMARK_CAPTURE(BM_NetBroadcast, mesh, "mesh")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetBroadcast, torus, "torus")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetBroadcast, ring, "ring")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetBroadcast, xbar, "xbar")->Arg(0)->Arg(1);

void
BM_NetReferenceUnicast(benchmark::State &state, const char *topology)
{
    auto cfg = microCfg();
    cfg.modelContention = state.range(0) != 0;
    applyNetworkName(cfg, topology);
    EnergyModel e;
    const auto net = makeNetwork(cfg, e);
    Cycle t = 0;
    CoreId dst = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(net->referenceUnicast(0, dst, 9, t));
        dst = static_cast<CoreId>((dst + 7) % 64);
        t += 3;
    }
}
BENCHMARK_CAPTURE(BM_NetReferenceUnicast, mesh, "mesh")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetReferenceUnicast, torus, "torus")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetReferenceUnicast, ring, "ring")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetReferenceUnicast, xbar, "xbar")->Arg(0)->Arg(1);

void
BM_NetReferenceBroadcast(benchmark::State &state, const char *topology)
{
    auto cfg = microCfg();
    cfg.modelContention = state.range(0) != 0;
    applyNetworkName(cfg, topology);
    EnergyModel e;
    const auto net = makeNetwork(cfg, e);
    std::vector<Cycle> arrivals;
    Cycle t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            net->referenceBroadcast(27, 1, t, arrivals));
        t += 10;
    }
}
BENCHMARK_CAPTURE(BM_NetReferenceBroadcast, mesh, "mesh")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetReferenceBroadcast, torus, "torus")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetReferenceBroadcast, ring, "ring")->Arg(0)->Arg(1);
BENCHMARK_CAPTURE(BM_NetReferenceBroadcast, xbar, "xbar")->Arg(0)->Arg(1);

void
BM_ProfilerScopeDisabled(benchmark::State &state)
{
    // Guard for the profiler's <=2%-when-disabled budget: a disabled
    // Scope must cost one relaxed load and a branch.
    prof::setEnabled(false);
    for (auto _ : state) {
        prof::Scope s(prof::Network);
        benchmark::DoNotOptimize(&s);
    }
}
BENCHMARK(BM_ProfilerScopeDisabled);

void
BM_ProfilerScopeEnabled(benchmark::State &state)
{
    // Enabled cost (two clock reads + thread-local slice accounting);
    // informational — only disabled overhead is budgeted.
    prof::reset();
    prof::setEnabled(true);
    for (auto _ : state) {
        prof::Scope s(prof::Network);
        benchmark::DoNotOptimize(&s);
    }
    prof::setEnabled(false);
}
BENCHMARK(BM_ProfilerScopeEnabled);

void
BM_AckwiseAddRemove(benchmark::State &state)
{
    auto s = SharerList::makeAckwise(4);
    for (auto _ : state) {
        for (CoreId c = 0; c < 8; ++c)
            s.add(c);
        for (CoreId c = 0; c < 8; ++c)
            s.remove(c);
    }
}
BENCHMARK(BM_AckwiseAddRemove);

void
BM_HolderVecChurn(benchmark::State &state)
{
    // The L2Meta::holders hot path: grant-order inserts, membership
    // probes, and per-sharer erases on a set sized by the arg (8 =
    // inline capacity; 16 exercises the spill path).
    const CoreId n = static_cast<CoreId>(state.range(0));
    HolderVec v;
    for (auto _ : state) {
        for (CoreId c = 0; c < n; ++c)
            v.insert(c);
        bool any = false;
        for (CoreId c = 0; c < n; ++c)
            any |= v.contains(c);
        benchmark::DoNotOptimize(any);
        for (CoreId c = 0; c < n; ++c)
            v.erase(c);
    }
}
BENCHMARK(BM_HolderVecChurn)->Arg(4)->Arg(8)->Arg(16);

void
BM_SortedCoreVecContains(benchmark::State &state)
{
    // SharerList's tracked-identity probe (binary search, inline).
    SortedCoreVec v;
    for (CoreId c = 0; c < 8; ++c)
        v.insert(static_cast<CoreId>(c * 7));
    CoreId probe = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(v.contains(probe));
        probe = static_cast<CoreId>((probe + 3) & 63);
    }
}
BENCHMARK(BM_SortedCoreVecContains);

void
BM_LimitedClassifierRemoteAccess(benchmark::State &state)
{
    auto cfg = microCfg();
    LimitedClassifier cls(cfg, false);
    auto st = cls.makeState();
    cls.classify(*st, 0);
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation);
    RemoteAccessContext ctx{100, false, 50};
    for (auto _ : state) {
        benchmark::DoNotOptimize(cls.onRemoteAccess(*st, 0, ctx));
        // Reset the counter so the benchmark stays on the hot path.
        cls.onWriteByOther(*st, 5);
    }
}
BENCHMARK(BM_LimitedClassifierRemoteAccess);

void
BM_L1HitPath(benchmark::State &state)
{
    Multicore m(microCfg());
    m.setFunctionalChecks(false);
    const Addr a = Addr{1} << 33;
    m.testAccess(0, a, false); // warm
    for (auto _ : state)
        m.testAccess(0, a, false);
}
BENCHMARK(BM_L1HitPath);

void
BM_RemoteWordRoundtrip(benchmark::State &state)
{
    auto cfg = microCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    Multicore m(cfg);
    m.setFunctionalChecks(false);
    const Addr a = Addr{1} << 33;
    // Demote core 0 on this line.
    m.testAccess(0, a, false);
    m.testAccess(1, a, false);
    m.testAccess(0, a, false);
    m.testAccess(1, a, true);
    for (auto _ : state) {
        m.testAccess(0, a, false);
        // Writes by core 1 keep core 0 remote forever.
        m.testAccess(1, a, true);
    }
}
BENCHMARK(BM_RemoteWordRoundtrip);

void
BM_RemoteWordRoundtripFaultArmed(benchmark::State &state)
{
    // Same roundtrip with a fault injector armed at rate zero: every
    // link traversal and directory touch pays the pure-hash roll, but
    // nothing ever fires (threshold 0). The delta against
    // BM_RemoteWordRoundtrip is the full cost of *enabling* fault
    // injection; BM_RemoteWordRoundtrip itself is the --faults none
    // case, where no injector exists and each hook is one untaken
    // null-pointer branch.
    auto cfg = microCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    cfg.faultKind = FaultKind::Links;
    cfg.faultRate = 0.0;
    Multicore m(cfg);
    m.setFunctionalChecks(false);
    const Addr a = Addr{1} << 33;
    m.testAccess(0, a, false);
    m.testAccess(1, a, false);
    m.testAccess(0, a, false);
    m.testAccess(1, a, true);
    for (auto _ : state) {
        m.testAccess(0, a, false);
        m.testAccess(1, a, true);
    }
}
BENCHMARK(BM_RemoteWordRoundtripFaultArmed);

void
BM_WorkloadNext(benchmark::State &state)
{
    auto cfg = microCfg();
    auto wl = makeBenchmark("barnes", cfg, 1000.0);
    CoreId c = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(wl->next(c));
        c = static_cast<CoreId>((c + 1) % 64);
    }
}
BENCHMARK(BM_WorkloadNext);

void
BM_FullSmallRun(benchmark::State &state)
{
    // End-to-end simulator throughput on a small benchmark run.
    for (auto _ : state) {
        auto cfg = microCfg();
        auto wl = makeBenchmark("water-sp", cfg, 0.05);
        Multicore m(cfg);
        m.setFunctionalChecks(false);
        benchmark::DoNotOptimize(m.run(*wl).completionTime());
    }
}
BENCHMARK(BM_FullSmallRun)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
