/**
 * @file
 * Ablation studies (Complete-classifier learning short-cut, R-NUCA vs
 * static-NUCA placement). Thin shim over the harness experiment
 * "ablation" (src/harness/experiments.cc); prefer
 * `lacc_bench --filter ablation`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("ablation");
}
