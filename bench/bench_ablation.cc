/**
 * @file
 * Ablation studies for design choices the paper mentions but does not
 * quantify (DESIGN.md experiment index):
 *
 *  1. Complete classifier learning short-cut (§5.3): seed new sharers
 *     from the majority mode of already-seen sharers instead of
 *     starting them private.
 *  2. R-NUCA placement (§3.1): the paper builds on R-NUCA; this
 *     ablation runs the same protocol on a conventional static-NUCA
 *     (all data hash-interleaved) to show how much of the system's
 *     performance comes from placement vs from the adaptive protocol.
 *
 * Both tables report geomean completion time / energy over the suite,
 * normalized to the first row.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace lacc;

namespace {

void
runStudy(const std::string &title,
         const std::vector<std::pair<std::string, SystemConfig>> &pts)
{
    const auto &names = benchmarkNames();
    std::vector<double> ref_t(names.size()), ref_e(names.size());
    Table t({"Variant", "Completion Time", "Energy"});
    for (std::size_t pi = 0; pi < pts.size(); ++pi) {
        bench::note(title + ": " + pts[pi].first);
        std::vector<double> times, energies;
        for (std::size_t bi = 0; bi < names.size(); ++bi) {
            const auto r = runBenchmark(names[bi], pts[pi].second);
            const double time = static_cast<double>(r.completionTime);
            const double energy = r.energyTotal;
            if (pi == 0) {
                ref_t[bi] = time > 0 ? time : 1.0;
                ref_e[bi] = energy > 0 ? energy : 1.0;
            }
            times.push_back(time / ref_t[bi]);
            energies.push_back(energy / ref_e[bi]);
        }
        t.addRow({pts[pi].first, fmt(geomean(times), 3),
                  fmt(geomean(energies), 3)});
    }
    std::cout << "\n" << title << "\n";
    t.print(std::cout);
}

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Ablations: learning short-cut & R-NUCA placement",
                  "Geomeans over the 21-benchmark suite, normalized to"
                  " the first row of each table");

    {
        SystemConfig base = defaultConfig();
        base.classifierKind = ClassifierKind::Complete;
        SystemConfig shortcut = base;
        shortcut.completeLearningShortcut = true;
        runStudy("Complete classifier: per-sharer learning vs"
                 " majority-vote seeding (§5.3 extension)",
                 {{"Complete (paper)", base},
                  {"Complete + learning short-cut", shortcut}});
    }
    {
        SystemConfig rnuca = defaultConfig();
        SystemConfig snuca = defaultConfig();
        snuca.rnucaEnabled = false;
        runStudy("Placement: R-NUCA (paper baseline) vs static-NUCA",
                 {{"R-NUCA", rnuca}, {"Static-NUCA (hash only)", snuca}});
    }
    std::cout << "\nExpected: the short-cut helps sharing-heavy"
                 " benchmarks slightly; static-NUCA pays remote-slice"
                 " latency for private data\n";
    return 0;
}
