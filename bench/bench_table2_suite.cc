/**
 * @file
 * Table 2 reproduction: the 21 parallel benchmarks with the paper's
 * problem sizes and the synthetic substitution each one maps to
 * (archetype mix + scaled working sets; see DESIGN.md §4).
 */

#include <iostream>

#include "bench_util.hh"

using namespace lacc;

namespace {

std::string
mixSummary(const SyntheticSpec &s)
{
    std::string out;
    auto add = [&](const char *n, double w) {
        if (w <= 0)
            return;
        if (!out.empty())
            out += " ";
        char buf[48];
        std::snprintf(buf, sizeof buf, "%s:%.2f", n, w);
        out += buf;
    };
    add("privHot", s.mix.privateHot);
    add("privStream", s.mix.privateStream);
    add("shRO", s.mix.sharedRO);
    add("shPC", s.mix.sharedPC);
    add("shStream", s.mix.sharedStream);
    add("lock", s.mix.lockRMW);
    return out;
}

std::string
kb(std::uint64_t bytes)
{
    return std::to_string(bytes >> 10) + "KB";
}

} // namespace

int
main()
{
    setVerbose(false);
    const SystemConfig cfg = defaultConfig();
    bench::banner("Table 2: Problem sizes for the parallel benchmarks",
                  "Paper size -> synthetic substitution (scaled for"
                  " minute-long sweeps; LACC_SCALE rescales)");

    const double scale = opScaleFromEnv();
    Table t({"Benchmark", "Paper problem size", "Archetype mix",
             "Private WS", "Shared WS", "Ops/core"});
    for (const auto &name : benchmarkNames()) {
        const auto s = benchmarkSpec(name, cfg, scale);
        const auto priv = s.privateHotBytes + s.privateStreamBytes;
        const auto shared =
            s.sharedROBytes + s.sharedPCBytes + s.sharedStreamBytes;
        t.addRow({name, benchmarkProblemSize(name), mixSummary(s),
                  kb(priv), kb(shared),
                  std::to_string(static_cast<std::uint64_t>(
                      s.opsPerPhase) * s.numPhases)});
    }
    t.print(std::cout);
    return 0;
}
