/**
 * @file
 * Table 2 reproduction: the 21 parallel benchmarks and their synthetic
 * substitutions. Thin shim over the harness experiment "table2"
 * (src/harness/experiments.cc); prefer `lacc_bench --filter table2`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("table2");
}
