/**
 * @file
 * Unified benchmark CLI: runs any subset of the registered paper
 * figure/table experiments in one invocation, sharding simulation
 * runs across worker threads and optionally emitting machine-readable
 * BENCH_<experiment>.json result files (docs/BENCHMARKS.md).
 *
 * Usage:
 *   lacc_bench --list | --list-protocols | --list-networks |
 *              --list-engines | --list-faults
 *   lacc_bench [--filter SUBSTR] [--jobs N] [--sim-threads N]
 *              [--scale X] [--repeat N] [--protocol NAME]
 *              [--network NAME] [--faults NAME] [--fault-rate X]
 *              [--fault-seed N] [--timeout-ms X] [--resume]
 *              [--json-dir DIR] [--profile] [--quiet]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "fault/plan.hh"
#include "harness/registry.hh"
#include "harness/runner.hh"
#include "harness/sink.hh"
#include "net/factory.hh"
#include "protocol/factory.hh"
#include "sim/log.hh"
#include "system/engine.hh"

using namespace lacc;
using namespace lacc::harness;

namespace {

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: lacc_bench [options]\n"
        "\n"
        "Runs the registered paper figure/table experiments and"
        " prints each one's\ntext table; see docs/BENCHMARKS.md.\n"
        "\n"
        "options:\n"
        "  --list            list experiments and exit\n"
        "  --list-protocols  list coherence-protocol names and exit\n"
        "  --list-networks   list interconnect-topology names and"
        " exit\n"
        "  --list-engines    list execution-engine names and exit\n"
        "  --list-faults     list fault-plan names and exit\n"
        "  --filter SUBSTR   only experiments whose name contains"
        " SUBSTR\n"
        "  --jobs N          worker threads for the sweeps"
        " (default 1)\n"
        "  --sim-threads N   worker threads inside each simulation\n"
        "                    (N > 1 selects the sharded engine;"
        " results\n"
        "                    are bit-identical to serial). Composes\n"
        "                    with --jobs up to the machine's thread\n"
        "                    budget.\n"
        "  --scale X         op-count scale; overrides LACC_SCALE\n"
        "  --repeat N        simulate every job N times (throughput\n"
        "                    mode: stats are identical across repeats,\n"
        "                    wall-clock/ops_per_sec fields accumulate)\n"
        "  --protocol NAME   force every run onto a named coherence\n"
        "                    protocol (see --list-protocols)\n"
        "  --network NAME    force every run onto a named interconnect\n"
        "                    topology (see --list-networks)\n"
        "  --faults NAME     force every run onto a named fault plan\n"
        "                    (see --list-faults)\n"
        "  --fault-rate X    base per-event fault probability in"
        " [0, 1]\n"
        "  --fault-seed N    fault-schedule seed (independent of the\n"
        "                    workload seed; same seed => identical\n"
        "                    fault schedule)\n"
        "  --timeout-ms X    per-run wall-clock watchdog; an expired\n"
        "                    run is recorded as \"failed\", not fatal\n"
        "  --resume          skip experiments whose BENCH_*.json in\n"
        "                    --json-dir already holds a complete,\n"
        "                    current artifact (corrupt or truncated\n"
        "                    files are re-run)\n"
        "  --json-dir DIR    write BENCH_<experiment>.json into DIR\n"
        "  --profile         record per-subsystem exclusive cycle\n"
        "                    shares (workload/cache/protocol/network/\n"
        "                    dram) per experiment; adds a table to the\n"
        "                    text output and a \"profile\" object to\n"
        "                    the JSON\n"
        "  --quiet           suppress per-run progress on stderr\n"
        "  --help            this message\n");
}

bool
parsePositiveDouble(const char *s, double &out)
{
    char *end = nullptr;
    out = std::strtod(s, &end);
    return end != s && *end == '\0' && out > 0.0;
}

bool
parseUnsigned(const char *s, unsigned &out)
{
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0' || v == 0 || v > 1024)
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    bool list = false;
    bool resume = false;
    std::string filter;
    std::string jsonDir;
    SweepOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", name);
                usage(stderr);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--list-protocols") {
            for (const auto &name : protocolNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--list-networks") {
            for (const auto &name : networkNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--list-engines") {
            for (const auto &name : engineNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--list-faults") {
            for (const auto &name : faultNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--filter") {
            filter = value("--filter");
        } else if (arg == "--jobs") {
            if (!parseUnsigned(value("--jobs"), opts.jobs)) {
                std::fprintf(stderr,
                             "--jobs wants an integer in [1, 1024]\n");
                return 2;
            }
        } else if (arg == "--scale") {
            if (!parsePositiveDouble(value("--scale"), opts.opScale)) {
                std::fprintf(stderr,
                             "--scale wants a positive number\n");
                return 2;
            }
        } else if (arg == "--repeat") {
            if (!parseUnsigned(value("--repeat"), opts.repeat)) {
                std::fprintf(stderr,
                             "--repeat wants an integer in"
                             " [1, 1024]\n");
                return 2;
            }
        } else if (arg == "--sim-threads") {
            unsigned st = 0;
            if (!parseUnsigned(value("--sim-threads"), st)) {
                std::fprintf(stderr,
                             "--sim-threads wants an integer in"
                             " [1, 1024]\n");
                return 2;
            }
            opts.overrides.simThreads = st;
        } else if (arg == "--protocol") {
            opts.overrides.protocol = value("--protocol");
        } else if (arg == "--network") {
            opts.overrides.network = value("--network");
        } else if (arg == "--faults") {
            opts.overrides.faults = value("--faults");
        } else if (arg == "--fault-rate") {
            char *end = nullptr;
            const char *s = value("--fault-rate");
            const double rate = std::strtod(s, &end);
            if (end == s || *end != '\0' || rate < 0.0 || rate > 1.0) {
                std::fprintf(stderr,
                             "--fault-rate wants a number in"
                             " [0, 1]\n");
                return 2;
            }
            opts.overrides.faultRate = rate;
        } else if (arg == "--fault-seed") {
            char *end = nullptr;
            const char *s = value("--fault-seed");
            const unsigned long long seed = std::strtoull(s, &end, 0);
            if (end == s || *end != '\0') {
                std::fprintf(stderr,
                             "--fault-seed wants an integer\n");
                return 2;
            }
            opts.overrides.faultSeed = seed;
            opts.overrides.faultSeedSet = true;
        } else if (arg == "--timeout-ms") {
            if (!parsePositiveDouble(value("--timeout-ms"),
                                     opts.timeoutMs)) {
                std::fprintf(stderr,
                             "--timeout-ms wants a positive number\n");
                return 2;
            }
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--json-dir") {
            jsonDir = value("--json-dir");
        } else if (arg == "--profile") {
            opts.profile = true;
        } else if (arg == "--quiet") {
            opts.progress = false;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    // One validation point for every name-valued override: a typo
    // fails here with the valid keys on one line instead of dying
    // mid-sweep in a worker thread.
    if (!opts.overrides.validateOrReport())
        return 2;

    const auto selected = Registry::instance().match(filter);
    if (selected.empty()) {
        std::fprintf(stderr, "no experiment matches filter '%s'\n",
                     filter.c_str());
        std::fprintf(stderr, "known experiments:\n");
        for (const auto &name : Registry::instance().names())
            std::fprintf(stderr, "  %s\n", name.c_str());
        return 1;
    }

    if (list) {
        for (const auto *exp : selected) {
            const std::size_t n = exp->makeJobs().size();
            std::printf("%-10s %4zu runs  %s\n", exp->name.c_str(), n,
                        exp->description.c_str());
        }
        return 0;
    }

    if (resume && jsonDir.empty()) {
        std::fprintf(stderr, "--resume requires --json-dir\n");
        return 2;
    }

    double totalWall = 0.0;
    std::size_t totalRuns = 0;
    std::size_t skipped = 0;
    for (const auto *exp : selected) {
        if (resume && validArtifactExists(jsonDir, *exp)) {
            ++skipped;
            if (opts.progress)
                std::fprintf(stderr,
                             "[bench] === %s === skipped (complete"
                             " artifact in %s)\n",
                             exp->name.c_str(), jsonDir.c_str());
            continue;
        }
        if (opts.progress)
            std::fprintf(stderr, "[bench] === %s ===\n",
                         exp->name.c_str());
        const ExperimentOutcome outcome =
            runExperiment(*exp, opts, std::cout);
        totalWall += outcome.wallSeconds;
        totalRuns += outcome.results.size();
        if (!jsonDir.empty())
            writeJsonFile(jsonDir, exp->name, documentFor(outcome));
    }
    if (opts.progress) {
        std::fprintf(stderr,
                     "[bench] done: %zu experiments, %zu runs, %.1fs\n",
                     selected.size() - skipped, totalRuns, totalWall);
        if (skipped > 0)
            std::fprintf(stderr,
                         "[bench] resume: skipped %zu experiments with"
                         " complete artifacts\n",
                         skipped);
    }
    return 0;
}
