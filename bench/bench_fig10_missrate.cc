/**
 * @file
 * Figure 10 reproduction: L1-D cache miss rate and miss-type
 * breakdown (Cold / Capacity / Upgrade / Sharing / Word) as PCT
 * sweeps over {1, 2, 3, 4, 6, 8}.
 *
 * Shape checks from the paper: capacity misses convert into word
 * misses (blackscholes, bodytrack, concomp); sharing misses convert
 * into word misses (streamcluster, dijkstra-ss); several benchmarks
 * see the overall miss rate *drop* at PCT 2 because pollution from
 * low-locality lines disappears (blackscholes, dijkstra-ap, matmul).
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"

using namespace lacc;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 10: L1-D miss rate breakdown vs PCT",
                  "Miss rate % split into Cold/Capacity/Upgrade/"
                  "Sharing/Word");

    const std::vector<std::uint32_t> pcts = {1, 2, 3, 4, 6, 8};
    Table t({"Benchmark", "PCT", "Miss%", "Cold%", "Cap%", "Upg%",
             "Shar%", "Word%"});
    for (const auto &name : benchmarkNames()) {
        bench::note("fig10 " + name);
        for (const auto pct : pcts) {
            const auto r = runBenchmark(name, bench::pctConfig(pct));
            const auto m = r.stats.totalMisses();
            const double acc =
                static_cast<double>(r.stats.totalL1dAccesses());
            auto pc = [&](MissType ty) {
                return fmt(100.0 * static_cast<double>(m.get(ty)) /
                               (acc > 0 ? acc : 1),
                           2);
            };
            t.addRow({name, std::to_string(pct),
                      fmt(100.0 * r.stats.l1dMissRate(), 2),
                      pc(MissType::Cold), pc(MissType::Capacity),
                      pc(MissType::Upgrade), pc(MissType::Sharing),
                      pc(MissType::Word)});
        }
    }
    t.print(std::cout);
    return 0;
}
