/**
 * @file
 * Figure 10 reproduction: L1-D miss-rate taxonomy vs PCT. Thin shim
 * over the harness experiment "fig10" (src/harness/experiments.cc);
 * prefer `lacc_bench --filter fig10`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("fig10");
}
