/**
 * @file
 * Shared helpers for the figure/table bench binaries: configuration
 * variants, sweep runners, and normalized-breakdown printing.
 *
 * Every binary prints plain-text tables shaped like the paper's
 * figures: values are normalized the same way (usually to PCT = 1 or
 * to a reference configuration) so the *shape* of the reproduction can
 * be compared directly against the paper (see EXPERIMENTS.md).
 */

#ifndef LACC_BENCH_BENCH_UTIL_HH
#define LACC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/log.hh"
#include "system/experiment.hh"
#include "system/report.hh"
#include "workload/suite.hh"

namespace lacc::bench {

/** Default config with a given PCT (Limited_3, ACKwise_4 as Table 1). */
inline SystemConfig
pctConfig(std::uint32_t pct)
{
    SystemConfig cfg = defaultConfig();
    cfg.pct = pct;
    // RAT levels span [PCT, RATmax]; keep the invariant for the very
    // high PCT points of the Fig 11 sweep.
    if (cfg.ratMax < pct)
        cfg.ratMax = pct;
    return cfg;
}

/** Baseline system: conventional directory protocol (PCT = 1). */
inline SystemConfig
baselineConfig()
{
    SystemConfig cfg = defaultConfig();
    cfg.classifierKind = ClassifierKind::AlwaysPrivate;
    cfg.pct = 1;
    return cfg;
}

/** Six-component energy vector in Fig 8 order. */
inline std::vector<double>
energyVector(const SystemStats &s)
{
    return {s.energy.l1i,    s.energy.l1d,    s.energy.l2,
            s.energy.directory, s.energy.router, s.energy.link};
}

/** Six-component completion-time vector in Fig 9 order (per-core sums). */
inline std::vector<double>
latencyVector(const SystemStats &s)
{
    const auto l = s.totalLatency();
    return {static_cast<double>(l.compute),
            static_cast<double>(l.l1ToL2),
            static_cast<double>(l.l2Waiting),
            static_cast<double>(l.l2Sharers),
            static_cast<double>(l.offChip),
            static_cast<double>(l.synchronization)};
}

/** Print a banner line for a bench binary. */
inline void
banner(const std::string &title, const std::string &subtitle)
{
    std::cout << "=====================================================\n"
              << title << "\n" << subtitle << "\n"
              << "=====================================================\n";
}

/** Progress note to stderr so long sweeps show life. */
inline void
note(const std::string &msg)
{
    std::fprintf(stderr, "[bench] %s\n", msg.c_str());
}

} // namespace lacc::bench

#endif // LACC_BENCH_BENCH_UTIL_HH
