/**
 * @file
 * Table 1 reproduction: architectural parameters and the Section 3.6
 * storage-overhead arithmetic. Thin shim over the harness experiment
 * "table1" (src/harness/experiments.cc); prefer
 * `lacc_bench --filter table1`.
 */

#include "harness/sink.hh"

int
main()
{
    return lacc::harness::runLegacyMain("table1");
}
