/**
 * @file
 * Table 1 reproduction: prints the default architectural parameters
 * and the Section 3.6 storage-overhead arithmetic (18 KB per core for
 * Limited_3, ACKwise_4 12 KB vs full-map 32 KB, the 5.7% / 60%
 * overheads, and the "less storage than full-map" headline claim).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/storage_model.hh"

using namespace lacc;

int
main()
{
    setVerbose(false);
    const SystemConfig cfg = defaultConfig();
    bench::banner("Table 1: Architectural parameters",
                  "Default configuration used by every experiment");

    Table t({"Parameter", "Value"});
    t.addRow({"Number of cores", std::to_string(cfg.numCores) + " @ 1 GHz"});
    t.addRow({"Compute pipeline", "In-order, single-issue"});
    t.addRow({"Physical address length", "48 bits"});
    t.addRow({"L1-I cache per core",
              std::to_string(cfg.l1iSizeKB) + " KB, " +
                  std::to_string(cfg.l1iAssoc) + "-way, " +
                  std::to_string(cfg.l1Latency) + " cycle"});
    t.addRow({"L1-D cache per core",
              std::to_string(cfg.l1dSizeKB) + " KB, " +
                  std::to_string(cfg.l1dAssoc) + "-way, " +
                  std::to_string(cfg.l1Latency) + " cycle"});
    t.addRow({"L2 cache per core",
              std::to_string(cfg.l2SizeKB) + " KB, " +
                  std::to_string(cfg.l2Assoc) + "-way, " +
                  std::to_string(cfg.l2Latency) + " cycle, inclusive,"
                  " R-NUCA"});
    t.addRow({"Cache line size", std::to_string(cfg.lineSize) + " bytes"});
    t.addRow({"Directory protocol",
              std::string("Invalidation-based MESI, ACKwise") +
                  std::to_string(cfg.ackwisePointers)});
    t.addRow({"Memory controllers",
              std::to_string(cfg.numMemControllers)});
    t.addRow({"DRAM bandwidth",
              fmt(cfg.dramBandwidthGBps, 1) + " GBps per controller"});
    t.addRow({"DRAM latency", std::to_string(cfg.dramLatency) + " ns"});
    t.addRow({"Network", "Electrical 2-D mesh, XY routing"});
    t.addRow({"Hop latency",
              std::to_string(cfg.hopLatency) + " cycles (1 router,"
              " 1 link)"});
    t.addRow({"Flit width", std::to_string(cfg.flitWidthBits) + " bits"});
    t.addRow({"Header", std::to_string(cfg.headerFlits) + " flit"});
    t.addRow({"Word length", std::to_string(cfg.wordFlits) + " flit"});
    t.addRow({"Cache line length",
              std::to_string(cfg.lineFlits) + " flits"});
    t.addRow({"PCT", std::to_string(cfg.pct)});
    t.addRow({"RATmax", std::to_string(cfg.ratMax)});
    t.addRow({"nRATlevels", std::to_string(cfg.nRatLevels)});
    t.addRow({"Classifier",
              std::string("Limited") + std::to_string(cfg.classifierK)});
    t.print(std::cout);

    std::cout << "\nSection 3.6: storage overhead per core\n\n";
    StorageModel m(cfg);
    Table s({"Structure", "Bits/entry", "KB/core", "Paper"});
    s.addRow({"L1 utilization bits",
              std::to_string(m.l1UtilBitsPerLine()) + " /line",
              fmt(m.l1OverheadKB(), 4), "0.19 KB"});
    s.addRow({"Limited3 classifier",
              std::to_string(m.limitedBitsPerEntry()),
              fmt(m.limitedOverheadKB(), 1), "18 KB"});
    s.addRow({"Complete classifier",
              std::to_string(m.completeBitsPerEntry()),
              fmt(m.completeOverheadKB(), 1), "192 KB"});
    s.addRow({"ACKwise4 pointers",
              std::to_string(m.ackwiseBitsPerEntry()),
              fmt(m.ackwiseKB(), 1), "12 KB"});
    s.addRow({"Full-map directory",
              std::to_string(m.fullMapBitsPerEntry()),
              fmt(m.fullMapKB(), 1), "32 KB"});
    s.print(std::cout);

    std::cout << "\nOverhead vs baseline ACKwise4 (incl. caches):\n"
              << "  Limited3 classifier: "
              << fmt(m.overheadPercentVsAckwise(false), 2)
              << "%   (paper: 5.7%)\n"
              << "  Complete classifier: "
              << fmt(m.overheadPercentVsAckwise(true), 2)
              << "%   (paper: 60%)\n"
              << "  Limited3 + ACKwise4 = "
              << fmt(m.limitedOverheadKB() + m.ackwiseKB(), 1)
              << " KB < full-map " << fmt(m.fullMapKB(), 1)
              << " KB: " << (m.limitedOverheadKB() + m.ackwiseKB() <
                                     m.fullMapKB()
                                 ? "HOLDS"
                                 : "VIOLATED")
              << "\n";
    return 0;
}
