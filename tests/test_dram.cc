/**
 * @file
 * Unit tests for the DRAM/memory-controller model: latency,
 * bandwidth queueing, interleaving, and functional storage.
 */

#include <gtest/gtest.h>

#include "dram/dram.hh"

namespace lacc {
namespace {

TEST(Dram, LatencyIncludesSerialization)
{
    SystemConfig cfg;
    DramModel d(cfg);
    // 64 B / 5 GBps = 12.8 -> 13 cycles serialization + 100 latency.
    const Cycle done = d.access(0, 1000);
    EXPECT_EQ(done, 1000 + 100 + 13);
}

TEST(Dram, BandwidthQueueing)
{
    SystemConfig cfg;
    DramModel d(cfg);
    // Two back-to-back accesses to the same controller (same line id
    // modulo controllers).
    const Cycle a = d.access(0, 0);
    const Cycle b = d.access(8, 0); // 8 % 8 == 0: same controller
    EXPECT_EQ(a, 113u);
    EXPECT_EQ(b, a + 13);
    EXPECT_EQ(d.queueingCycles(), 13u);
}

TEST(Dram, ControllersIndependent)
{
    SystemConfig cfg;
    DramModel d(cfg);
    const Cycle a = d.access(0, 0);
    const Cycle b = d.access(1, 0); // different controller
    EXPECT_EQ(a, b);
    EXPECT_EQ(d.queueingCycles(), 0u);
}

TEST(Dram, ControllerTilesSpread)
{
    SystemConfig cfg;
    DramModel d(cfg);
    const auto &tiles = d.controllerTiles();
    ASSERT_EQ(tiles.size(), 8u);
    for (std::size_t i = 1; i < tiles.size(); ++i)
        EXPECT_GT(tiles[i], tiles[i - 1]);
    EXPECT_LT(tiles.back(), 64);
}

TEST(Dram, LineInterleaving)
{
    SystemConfig cfg;
    DramModel d(cfg);
    EXPECT_EQ(d.controllerTile(0), d.controllerTile(8));
    EXPECT_NE(d.controllerTile(0), d.controllerTile(1));
}

TEST(Dram, FunctionalStorageRoundTrips)
{
    SystemConfig cfg;
    DramModel d(cfg);
    ASSERT_EQ(d.wordsPerLine(), 8u);
    std::vector<std::uint64_t> w(8, 0);
    d.readLine(0x42, w.data()); // untouched: zero fill
    for (auto v : w)
        EXPECT_EQ(v, 0u);
    EXPECT_EQ(d.storedLines(), 0u) << "reads allocate no slab slot";
    w[3] = 1234;
    d.writeLine(0x42, w.data());
    std::vector<std::uint64_t> r(8, 77);
    d.readLine(0x42, r.data());
    EXPECT_EQ(r[3], 1234u);
    EXPECT_EQ(r[0], 0u);
    EXPECT_EQ(d.storedLines(), 1u);
}

TEST(Dram, SlabArenaReusesSlotOnRewrite)
{
    // Rewriting a line must overwrite its existing pool slot, not
    // allocate a new one, and other lines' slots must be unaffected.
    SystemConfig cfg;
    DramModel d(cfg);
    std::vector<std::uint64_t> w(8, 0);
    w[0] = 1;
    d.writeLine(0x10, w.data());
    w[0] = 2;
    d.writeLine(0x11, w.data());
    EXPECT_EQ(d.storedLines(), 2u);
    w[0] = 3;
    d.writeLine(0x10, w.data()); // rewrite first line
    EXPECT_EQ(d.storedLines(), 2u);
    std::vector<std::uint64_t> r(8, 0);
    d.readLine(0x10, r.data());
    EXPECT_EQ(r[0], 3u);
    d.readLine(0x11, r.data());
    EXPECT_EQ(r[0], 2u);
}

TEST(Dram, AccessCounting)
{
    SystemConfig cfg;
    DramModel d(cfg);
    d.access(0, 0);
    d.access(1, 0);
    EXPECT_EQ(d.accesses(), 2u);
}

TEST(Dram, IdleGapNoQueueing)
{
    SystemConfig cfg;
    DramModel d(cfg);
    d.access(0, 0);
    const Cycle b = d.access(8, 10000); // long after controller frees
    EXPECT_EQ(b, 10000 + 113);
    EXPECT_EQ(d.queueingCycles(), 0u);
}

} // namespace
} // namespace lacc
