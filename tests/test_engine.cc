/**
 * @file
 * Execution-engine tests (system/engine.hh, system/sharded.hh).
 *
 * The contract under test is the strongest one the simulator makes:
 * the sharded engine must reproduce the serial event loop's results
 * *bit-identically* — same stats digest, same per-core clocks, same
 * functional memory — for every classifier, every topology, and any
 * thread count. A single diverging counter here means the epoch/
 * commit-horizon machinery speculated past a cross-tile interaction.
 *
 * Also covered: the engine factory (names, config application), the
 * ConfigOverrides helper shared by the CLIs, the --jobs x
 * --sim-threads budget clamp, the serial-fallback path for workloads
 * without a thread-safe next(), and a litmus-corpus replay through
 * the sharded engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "net/factory.hh"
#include "sim/overrides.hh"
#include "system/engine.hh"
#include "system/multicore.hh"
#include "system/report.hh"
#include "verify/fuzz.hh"
#include "workload/archetypes.hh"
#include "workload/trace_file.hh"

namespace lacc {
namespace {

SystemConfig
cfg8(ClassifierKind k)
{
    SystemConfig c;
    c.numCores = 8;
    c.meshWidth = 4;
    c.clusterSize = 4;
    c.numMemControllers = 2;
    c.classifierKind = k;
    return c;
}

/**
 * Same mixed workload as tests/test_determinism.cc: all six
 * archetypes + locks + barriers + the ifetch walker, so the engines
 * are compared on every op kind the event loop dispatches.
 */
SyntheticSpec
mixedSpec(std::uint32_t cores)
{
    SyntheticSpec s;
    s.name = "engine-mix";
    s.numCores = cores;
    s.mix.privateHot = 0.25;
    s.mix.privateStream = 0.2;
    s.mix.sharedRO = 0.2;
    s.mix.sharedPC = 0.15;
    s.mix.sharedStream = 0.1;
    s.mix.lockRMW = 0.1;
    s.roWriteFrac = 0.05;
    s.sharingDegree = 4;
    s.numLocks = 4;
    s.opsPerPhase = 1200;
    s.numPhases = 3;
    s.iFootprintLines = 8;
    return s;
}

/** Digest of a run under @p cfg with @p threads engine workers. */
std::uint64_t
signatureAt(SystemConfig cfg, std::uint32_t threads)
{
    if (threads != 0) {
        cfg.simThreads = threads;
        cfg.engineKind =
            threads > 1 ? EngineKind::Sharded : EngineKind::Serial;
    }
    SyntheticWorkload wl(mixedSpec(cfg.numCores), cfg);
    Multicore m(cfg);
    const SystemStats &stats = m.run(wl);
    EXPECT_EQ(m.functionalErrors(), 0u);
    return statsSignature(stats);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(EngineFactory, NamesAndRoundTrip)
{
    const std::vector<std::string> expect = {"serial", "sharded"};
    EXPECT_EQ(engineNames(), expect);

    SystemConfig cfg;
    EXPECT_STREQ(engineNameFor(cfg), "serial");
    applyEngineName(cfg, "sharded");
    EXPECT_EQ(cfg.engineKind, EngineKind::Sharded);
    EXPECT_STREQ(engineNameFor(cfg), "sharded");
    applyEngineName(cfg, "serial");
    EXPECT_EQ(cfg.engineKind, EngineKind::Serial);
}

TEST(EngineFactory, MulticoreReportsItsEngine)
{
    SystemConfig cfg = cfg8(ClassifierKind::Limited);
    EXPECT_STREQ(Multicore(cfg).engine().name(), "serial");
    cfg.engineKind = EngineKind::Sharded;
    cfg.simThreads = 2;
    EXPECT_STREQ(Multicore(cfg).engine().name(), "sharded");
}

// ---------------------------------------------------------------------------
// Bit-identical equality: sharded vs serial
// ---------------------------------------------------------------------------

TEST(EngineEquality, ShardedMatchesSerialPerClassifier)
{
    const ClassifierKind kinds[] = {
        ClassifierKind::Complete, ClassifierKind::Limited,
        ClassifierKind::Timestamp, ClassifierKind::AlwaysPrivate};
    for (const auto k : kinds) {
        const std::uint64_t serial = signatureAt(cfg8(k), 0);
        for (const std::uint32_t t : {2u, 4u}) {
            EXPECT_EQ(signatureAt(cfg8(k), t), serial)
                << "classifier " << static_cast<int>(k)
                << " diverges at --sim-threads " << t;
        }
    }
}

TEST(EngineEquality, ShardedMatchesSerialPerTopology)
{
    for (const auto &name : networkNames()) {
        SystemConfig cfg = cfg8(ClassifierKind::Limited);
        applyNetworkName(cfg, name);
        const std::uint64_t serial = signatureAt(cfg, 0);
        for (const std::uint32_t t : {2u, 4u}) {
            EXPECT_EQ(signatureAt(cfg, t), serial)
                << name << " diverges at --sim-threads " << t;
        }
    }
}

TEST(EngineEquality, ShardedMatchesCommittedGolden)
{
    // Not just self-consistency: the sharded engine at 4 threads must
    // land on the exact golden tests/test_determinism.cc pins for the
    // serial seed behavior.
    EXPECT_EQ(signatureAt(cfg8(ClassifierKind::Limited), 4),
              0x4a9d58c62567b5f4ULL);
}

TEST(EngineEquality, ThreadCountExceedingCoresIsClamped)
{
    // More workers than tiles: the pool clamps to numCores and the
    // result is still bit-identical.
    EXPECT_EQ(signatureAt(cfg8(ClassifierKind::Limited), 32),
              signatureAt(cfg8(ClassifierKind::Limited), 0));
}

TEST(EngineEquality, SimThreadsOneIsSerialEngine)
{
    // --sim-threads 1 must not select the sharded machinery.
    SystemConfig cfg = cfg8(ClassifierKind::Limited);
    ConfigOverrides ov;
    ov.simThreads = 1;
    ov.apply(cfg);
    EXPECT_EQ(cfg.engineKind, EngineKind::Serial);
    EXPECT_EQ(signatureAt(cfg, 0),
              signatureAt(cfg8(ClassifierKind::Limited), 0));
}

// ---------------------------------------------------------------------------
// Serial fallback for workloads without a thread-safe next()
// ---------------------------------------------------------------------------

/** Forwarding wrapper that hides concurrentNextSafe() (base: false). */
class UnsafeNextWorkload : public Workload
{
  public:
    explicit UnsafeNextWorkload(Workload &inner) : inner_(inner) {}

    const std::string &name() const override { return inner_.name(); }
    std::uint32_t numCores() const override { return inner_.numCores(); }
    std::uint32_t numLocks() const override { return inner_.numLocks(); }
    MemOp next(CoreId core) override { return inner_.next(core); }
    std::uint32_t
    iFootprintLines(CoreId core) const override
    {
        return inner_.iFootprintLines(core);
    }
    std::uint64_t
    footprintBytes() const override
    {
        return inner_.footprintBytes();
    }
    Addr
    lockAddr(std::uint32_t id) const override
    {
        return inner_.lockAddr(id);
    }
    Addr codeBase() const override { return inner_.codeBase(); }
    std::uint32_t
    warmupBarriers() const override
    {
        return inner_.warmupBarriers();
    }

  private:
    Workload &inner_;
};

TEST(EngineFallback, UnsafeWorkloadFallsBackToSerialResults)
{
    SystemConfig cfg = cfg8(ClassifierKind::Limited);
    cfg.engineKind = EngineKind::Sharded;
    cfg.simThreads = 4;
    SyntheticWorkload inner(mixedSpec(cfg.numCores), cfg);
    UnsafeNextWorkload wl(inner);
    ASSERT_FALSE(wl.concurrentNextSafe());
    Multicore m(cfg);
    const std::uint64_t sig = statsSignature(m.run(wl));
    EXPECT_EQ(m.functionalErrors(), 0u);
    EXPECT_EQ(sig, signatureAt(cfg8(ClassifierKind::Limited), 0));
}

// ---------------------------------------------------------------------------
// Litmus corpus through the sharded engine
// ---------------------------------------------------------------------------

TEST(EngineLitmus, CorpusReplaysCleanThroughShardedEngine)
{
    // Full timed runs only (stepwise replay drives testAccess and is
    // engine-independent): every committed litmus trace, under every
    // protocol, with the invariants + reference memory checking the
    // sharded engine's final state.
    std::vector<std::filesystem::path> traces;
    for (const auto &ent :
         std::filesystem::directory_iterator(LACC_LITMUS_DIR))
        if (ent.path().extension() == ".trace")
            traces.push_back(ent.path());
    std::sort(traces.begin(), traces.end());
    ASSERT_FALSE(traces.empty());

    for (const auto &path : traces) {
        const TraceWorkload w = TraceWorkload::load(path.string());
        for (const auto &proto : protocolNames()) {
            SystemConfig cfg = verify::fuzzConfig(w.numCores());
            applyProtocolName(cfg, proto);
            cfg.engineKind = EngineKind::Sharded;
            cfg.simThreads = 4;
            for (const auto &v :
                 verify::checkTrace(w, cfg, /*stepwise=*/false))
                ADD_FAILURE() << path.filename().string() << " x "
                              << proto << ": " << v;
        }
    }
}

// ---------------------------------------------------------------------------
// ConfigOverrides + thread-budget clamp (sim/overrides.hh)
// ---------------------------------------------------------------------------

TEST(Overrides, ApplySelectsEngineAndFactories)
{
    SystemConfig cfg;
    ConfigOverrides ov;
    ov.protocol = "fullmap";
    ov.network = "torus";
    ov.simThreads = 4;
    EXPECT_TRUE(ov.validateOrReport());
    ov.apply(cfg);
    EXPECT_STREQ(protocolNameFor(cfg), "fullmap");
    EXPECT_STREQ(networkNameFor(cfg), "torus");
    EXPECT_EQ(cfg.engineKind, EngineKind::Sharded);
    EXPECT_EQ(cfg.simThreads, 4u);

    ConfigOverrides bad;
    bad.protocol = "nope";
    EXPECT_FALSE(bad.validateOrReport());
    bad = ConfigOverrides{};
    bad.network = "nope";
    EXPECT_FALSE(bad.validateOrReport());
    EXPECT_TRUE(ConfigOverrides{}.validateOrReport());
    EXPECT_FALSE(ConfigOverrides{}.any());
    EXPECT_TRUE(ov.any());
}

TEST(Overrides, ClampJobsToBudget)
{
    // Within budget: untouched.
    EXPECT_EQ(clampJobsToBudget(8, 0, 16), 8u);
    EXPECT_EQ(clampJobsToBudget(8, 1, 16), 8u);
    EXPECT_EQ(clampJobsToBudget(8, 2, 16), 8u);
    // Over budget: jobs x simThreads capped to the budget.
    EXPECT_EQ(clampJobsToBudget(8, 4, 16), 4u);
    EXPECT_EQ(clampJobsToBudget(16, 3, 16), 5u);
    // A single job always survives, however oversubscribed.
    EXPECT_EQ(clampJobsToBudget(8, 32, 16), 1u);
    EXPECT_EQ(clampJobsToBudget(1, 1024, 1), 1u);
    // Degenerate inputs: 0 jobs means 1; 0 budget means 1.
    EXPECT_EQ(clampJobsToBudget(0, 1, 16), 1u);
    EXPECT_EQ(clampJobsToBudget(4, 1, 0), 1u);
    EXPECT_EQ(clampJobsToBudget(4, 1, 2), 2u);
}

} // namespace
} // namespace lacc
