/**
 * @file
 * Protocol-level tests: scripted access sequences through the full
 * Multicore engine validating the paper's protocol operation (§3.2):
 * grants, invalidations, upgrades, synchronous write-backs, remote
 * word accesses, promotions/demotions, ACKwise broadcast overflow,
 * miss-type classification, and R-NUCA re-homing.
 */

#include <gtest/gtest.h>

#include "net/mesh.hh"
#include "system/multicore.hh"
#include "verify/invariants.hh"
#include "workload/trace_file.hh"

namespace lacc {
namespace {

/** Small 4-core system configuration for directed tests. */
SystemConfig
smallCfg()
{
    SystemConfig c;
    c.numCores = 4;
    c.meshWidth = 2;
    c.clusterSize = 2;
    c.numMemControllers = 2;
    c.l1iSizeKB = 1;  // 4 sets x 4 ways
    c.l1iAssoc = 4;
    c.l1dSizeKB = 2;  // 8 sets x 4 ways
    c.l1dAssoc = 4;
    c.l2SizeKB = 16;  // 32 sets x 8 ways
    c.l2Assoc = 8;
    c.pct = 4;
    c.ratMax = 16;
    c.nRatLevels = 2;
    c.classifierK = 3;
    return c;
}

SystemConfig
baselineCfg()
{
    auto c = smallCfg();
    c.classifierKind = ClassifierKind::AlwaysPrivate;
    return c;
}

/** Two addresses on one page so they share an R-NUCA class. */
constexpr Addr kA = Addr{1} << 33;
constexpr Addr kB = (Addr{1} << 33) + 64;

TEST(Protocol, ColdReadGrantsExclusive)
{
    Multicore m(baselineCfg());
    m.testAccess(0, kA, false);
    const auto e = m.tile(0).l1d.find(kA >> 6);
    ASSERT_TRUE(e);
    EXPECT_EQ(e.meta().state, L1State::Exclusive);
    EXPECT_EQ(e.meta().privateUtil, 1u);
    EXPECT_EQ(m.stats().protocol.privateReadGrants, 1u);
    EXPECT_EQ(m.stats().protocol.dramFetches, 1u);
    EXPECT_EQ(m.stats().perCore.size(), 4u);
    // Miss classified cold.
    EXPECT_EQ(m.tile(0).stats.misses.get(MissType::Cold), 1u);
}

TEST(Protocol, SecondReadHitsAndCountsUtilization)
{
    Multicore m(baselineCfg());
    m.testAccess(0, kA, false);
    const Cycle t1 = m.tile(0).now;
    m.testAccess(0, kA, false);
    const Cycle t2 = m.tile(0).now;
    EXPECT_EQ(t2 - t1, 1u); // L1 hit latency
    const auto e = m.tile(0).l1d.find(kA >> 6);
    EXPECT_EQ(e.meta().privateUtil, 2u);
    EXPECT_EQ(m.tile(0).stats.l1d.misses(), 1u);
}

TEST(Protocol, WriteHitOnExclusiveSilentlyUpgrades)
{
    Multicore m(baselineCfg());
    m.testAccess(0, kA, false);
    m.testAccess(0, kA, true); // E -> M without a directory trip
    const auto e = m.tile(0).l1d.find(kA >> 6);
    EXPECT_EQ(e.meta().state, L1State::Modified);
    EXPECT_EQ(m.stats().protocol.upgradeGrants, 0u);
    EXPECT_EQ(m.tile(0).stats.l1d.misses(), 1u);
}

TEST(Protocol, PrivatePageHomesAtFirstToucher)
{
    Multicore m(baselineCfg());
    m.testAccess(2, kA, false);
    // Page private to core 2: the line lives in core 2's L2 slice.
    EXPECT_TRUE(m.tile(2).l2.find(kA >> 6));
    EXPECT_FALSE(m.tile(0).l2.find(kA >> 6));
}

TEST(Protocol, SecondCoreRehomesPage)
{
    Multicore m(baselineCfg());
    m.testAccess(2, kA, false);
    EXPECT_TRUE(m.tile(2).l2.find(kA >> 6));
    m.testAccess(1, kA, false);
    // Page now shared: old copy flushed from core 2's slice and the
    // line re-fetched at its hash home.
    EXPECT_GE(m.stats().protocol.rehomeFlushes, 1u);
    EXPECT_EQ(m.pageTable().lookup(kA >> 12)->cls,
              PageClass::SharedData);
    const CoreId home = m.placement().sharedHome(kA >> 6);
    EXPECT_TRUE(m.tile(home).l2.find(kA >> 6));
}

TEST(Protocol, TwoReadersShareLine)
{
    Multicore m(baselineCfg());
    m.testAccess(0, kA, false);
    m.testAccess(1, kA, false);
    m.testAccess(0, kA, false); // re-fetch after rehome flush
    const auto e0 = m.tile(0).l1d.find(kA >> 6);
    const auto e1 = m.tile(1).l1d.find(kA >> 6);
    ASSERT_TRUE(e0);
    ASSERT_TRUE(e1);
    EXPECT_EQ(e1.meta().state, L1State::Shared);
    EXPECT_EQ(e0.meta().state, L1State::Shared);
    const CoreId home = m.placement().sharedHome(kA >> 6);
    const auto l2e = m.tile(home).l2.find(kA >> 6);
    ASSERT_TRUE(l2e);
    EXPECT_EQ(l2e.meta().dstate, DirState::Shared);
    EXPECT_EQ(l2e.meta().holders.size(), 2u);
    EXPECT_EQ(l2e.meta().sharers.count(), 2u);
}

TEST(Protocol, WriteInvalidatesReaders)
{
    Multicore m(baselineCfg());
    m.testAccess(0, kA, false);
    m.testAccess(1, kA, false);
    m.testAccess(0, kA, false);
    const auto inval_before = m.stats().protocol.invalidationsSent;
    m.testAccess(2, kA, true);
    EXPECT_EQ(m.stats().protocol.invalidationsSent, inval_before + 2);
    EXPECT_FALSE(m.tile(0).l1d.find(kA >> 6));
    EXPECT_FALSE(m.tile(1).l1d.find(kA >> 6));
    const auto e2 = m.tile(2).l1d.find(kA >> 6);
    ASSERT_TRUE(e2);
    EXPECT_EQ(e2.meta().state, L1State::Modified);
    // Readers' next misses are sharing misses.
    m.testAccess(0, kA, false);
    EXPECT_EQ(m.tile(0).stats.misses.get(MissType::Sharing), 1u);
}

TEST(Protocol, ReadAfterWriteSyncWriteback)
{
    Multicore m(baselineCfg());
    m.testAccess(0, kA, false);
    m.testAccess(1, kA, true); // M at core 1 (after rehome)
    const auto wb_before = m.stats().protocol.syncWritebacks;
    m.testAccess(3, kA, false);
    EXPECT_GE(m.stats().protocol.syncWritebacks, wb_before + 1);
    // Owner downgraded to S, both share now.
    const auto e1 = m.tile(1).l1d.find(kA >> 6);
    ASSERT_TRUE(e1);
    EXPECT_EQ(e1.meta().state, L1State::Shared);
    const CoreId home = m.placement().sharedHome(kA >> 6);
    EXPECT_EQ(m.tile(home).l2.find(kA >> 6).meta().dstate,
              DirState::Shared);
}

TEST(Protocol, UpgradeMissKeepsLineAndData)
{
    Multicore m(baselineCfg());
    m.testAccess(0, kA, false);
    m.testAccess(1, kA, false); // rehome; both will share
    m.testAccess(0, kA, false);
    // Core 0 holds S; its write is an upgrade miss.
    m.testAccess(0, kA, true);
    EXPECT_EQ(m.stats().protocol.upgradeGrants, 1u);
    EXPECT_EQ(m.tile(0).stats.misses.get(MissType::Upgrade), 1u);
    const auto e0 = m.tile(0).l1d.find(kA >> 6);
    ASSERT_TRUE(e0);
    EXPECT_EQ(e0.meta().state, L1State::Modified);
    // The other sharer was invalidated.
    EXPECT_FALSE(m.tile(1).l1d.find(kA >> 6));
}

TEST(Protocol, EvictionNotifiesDirectoryAndClassifies)
{
    auto cfg = baselineCfg();
    Multicore m(cfg);
    // Fill one L1-D set (4 ways) plus one more line mapping to it.
    // L1-D has 8 sets; lines with the same (line % 8) collide.
    const Addr base = Addr{1} << 33;
    for (int i = 0; i < 5; ++i)
        m.testAccess(0, base + static_cast<Addr>(i) * 8 * 64, false);
    EXPECT_EQ(m.tile(0).stats.l1d.evictions, 1u);
    // The victim (first line) is gone and the directory no longer
    // lists core 0 as a holder.
    const LineAddr victim = base >> 6;
    EXPECT_FALSE(m.tile(0).l1d.find(victim));
    const auto l2e = m.tile(0).l2.find(victim); // private page, home 0
    ASSERT_TRUE(l2e);
    EXPECT_TRUE(l2e.meta().holders.empty());
    EXPECT_EQ(l2e.meta().dstate, DirState::Uncached);
    // Re-access classifies as capacity.
    m.testAccess(0, base, false);
    EXPECT_EQ(m.tile(0).stats.misses.get(MissType::Capacity), 1u);
}

TEST(Protocol, DirtyEvictionWritesBack)
{
    Multicore m(baselineCfg());
    const Addr base = Addr{1} << 33;
    m.testAccess(0, base, true); // M copy
    for (int i = 1; i < 5; ++i)
        m.testAccess(0, base + static_cast<Addr>(i) * 8 * 64, false);
    EXPECT_EQ(m.stats().protocol.dirtyWritebacks, 1u);
    const auto l2e = m.tile(0).l2.find(base >> 6);
    ASSERT_TRUE(l2e);
    EXPECT_TRUE(l2e.meta().dirty);
    // The write's value survived in the L2 copy.
    m.setFunctionalChecks(true);
    m.testAccess(0, base, false);
    EXPECT_EQ(m.functionalErrors(), 0u);
}

// ---------------------------------------------------------------------
// Adaptive behavior (§3.2-3.3)
// ---------------------------------------------------------------------

/**
 * Establish kA's page as shared (so the R-NUCA re-home flush is
 * behind us), leave core 0 holding an S copy with utilization 1, then
 * have core 1 write: core 0 is invalidated with low utilization and
 * demoted to a remote sharer.
 */
void
establishSharedAndDemoteCore0(Multicore &m)
{
    m.testAccess(0, kA, false); // private page at slice 0
    m.testAccess(1, kA, false); // re-home to the hash slice
    m.testAccess(0, kA, false); // core 0 S copy, util 1
    m.testAccess(1, kA, true);  // upgrade: invalidates core 0 -> demote
}

TEST(Adaptive, LowUtilizationInvalidationDemotes)
{
    auto cfg = smallCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    Multicore m(cfg);
    establishSharedAndDemoteCore0(m);
    EXPECT_GE(m.stats().protocol.demotions, 1u);

    // Core 0 is now a remote sharer: its read is a word access.
    const auto rr_before = m.stats().protocol.remoteReads;
    m.testAccess(0, kA, false);
    EXPECT_EQ(m.stats().protocol.remoteReads, rr_before + 1);
    EXPECT_FALSE(m.tile(0).l1d.find(kA >> 6)) << "no L1 copy";
    // Subsequent miss classified as a word miss.
    m.testAccess(0, kA, false);
    EXPECT_GE(m.tile(0).stats.misses.get(MissType::Word), 1u);
}

TEST(Adaptive, HighUtilizationSurvivesInvalidation)
{
    auto cfg = smallCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    Multicore m(cfg);
    m.testAccess(0, kA, false); // private page
    m.testAccess(1, kA, false); // re-home
    for (int i = 0; i < 5; ++i)
        m.testAccess(0, kA, false); // fill + 4 hits: util 5 >= PCT
    m.testAccess(1, kA, true);
    EXPECT_EQ(m.stats().protocol.demotions, 0u);
    // Core 0 remains a private sharer: next read refetches the line.
    m.testAccess(0, kA, false);
    EXPECT_TRUE(m.tile(0).l1d.find(kA >> 6));
}

TEST(Adaptive, RemoteSharerPromotedAfterPctAccesses)
{
    auto cfg = smallCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    Multicore m(cfg);
    establishSharedAndDemoteCore0(m);
    // Remote reads; L1 set has invalid ways so the short-cut promotes
    // at PCT = 4 remote accesses.
    for (int i = 0; i < 3; ++i) {
        m.testAccess(0, kA, false);
        EXPECT_FALSE(m.tile(0).l1d.find(kA >> 6));
    }
    m.testAccess(0, kA, false); // 4th: promoted, line granted
    EXPECT_EQ(m.stats().protocol.promotions, 1u);
    EXPECT_TRUE(m.tile(0).l1d.find(kA >> 6));
}

TEST(Adaptive, RemoteWriteStoresWordAtL2)
{
    auto cfg = smallCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    Multicore m(cfg);
    m.setFunctionalChecks(true);
    establishSharedAndDemoteCore0(m); // core 1 owns M afterwards
    m.testAccess(0, kA, true); // remote word write by core 0
    EXPECT_GE(m.stats().protocol.remoteWrites, 1u);
    EXPECT_FALSE(m.tile(0).l1d.find(kA >> 6));
    // Core 1's M copy was invalidated by the write.
    EXPECT_FALSE(m.tile(1).l1d.find(kA >> 6));
    // A later read sees the remote write's value.
    m.testAccess(2, kA, false);
    EXPECT_EQ(m.functionalErrors(), 0u);
}

TEST(Adaptive, WriteResetsOtherRemoteSharersUtilization)
{
    auto cfg = smallCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    Multicore m(cfg);
    establishSharedAndDemoteCore0(m);
    m.testAccess(0, kA, false); // remote util(0) = 1
    m.testAccess(0, kA, false); // remote util(0) = 2
    m.testAccess(1, kA, true);  // write by core 1 resets core 0's util
    // Core 0 needs 4 fresh accesses again.
    for (int i = 0; i < 3; ++i) {
        m.testAccess(0, kA, false);
        EXPECT_FALSE(m.tile(0).l1d.find(kA >> 6)) << i;
    }
    m.testAccess(0, kA, false);
    EXPECT_TRUE(m.tile(0).l1d.find(kA >> 6));
}

TEST(Adaptive, OneWayNeverRepromotes)
{
    auto cfg = smallCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    cfg.protocolKind = ProtocolKind::AdaptOneWay;
    Multicore m(cfg);
    establishSharedAndDemoteCore0(m);
    for (int i = 0; i < 40; ++i)
        m.testAccess(0, kA, false);
    EXPECT_EQ(m.stats().protocol.promotions, 0u);
    EXPECT_FALSE(m.tile(0).l1d.find(kA >> 6));
}

TEST(Adaptive, PromotedLineClassifiedWithEpochUtilization)
{
    // After promotion, remote utilization counts toward the removal
    // classification (§3.2), so an early invalidation does not demote.
    auto cfg = smallCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    Multicore m(cfg);
    establishSharedAndDemoteCore0(m);
    for (int i = 0; i < 4; ++i)
        m.testAccess(0, kA, false); // promote on the 4th
    EXPECT_EQ(m.stats().protocol.promotions, 1u);
    // Invalidate immediately: private util is 1, but remote util 4
    // counts: stays private.
    const auto demotions = m.stats().protocol.demotions;
    m.testAccess(1, kA, true);
    EXPECT_EQ(m.stats().protocol.demotions, demotions);
}

// ---------------------------------------------------------------------
// ACKwise overflow (§3.1)
// ---------------------------------------------------------------------

TEST(Ackwise, OverflowBroadcastsInvalidation)
{
    auto cfg = baselineCfg();
    cfg.ackwisePointers = 2; // force overflow with 3 sharers
    Multicore m(cfg);
    m.testAccess(0, kA, false);
    m.testAccess(1, kA, false);
    m.testAccess(0, kA, false);
    m.testAccess(2, kA, false);
    const CoreId home = m.placement().sharedHome(kA >> 6);
    const auto l2e = m.tile(home).l2.find(kA >> 6);
    ASSERT_TRUE(l2e);
    EXPECT_TRUE(l2e.meta().sharers.overflowed());
    EXPECT_EQ(l2e.meta().sharers.count(), 3u);

    m.testAccess(3, kA, true);
    EXPECT_EQ(m.stats().protocol.broadcastInvals, 1u);
    EXPECT_FALSE(l2e.meta().sharers.overflowed()) << "reset after inval";
    EXPECT_EQ(l2e.meta().sharers.count(), 1u);
    EXPECT_EQ(l2e.meta().holders.size(), 1u);
    EXPECT_EQ(l2e.meta().holders[0], 3);
}

TEST(Ackwise, FullMapNeverBroadcasts)
{
    auto cfg = baselineCfg();
    cfg.directoryKind = DirectoryKind::FullMap;
    Multicore m(cfg);
    m.testAccess(0, kA, false);
    m.testAccess(1, kA, false);
    m.testAccess(0, kA, false);
    m.testAccess(2, kA, false);
    const auto before = m.stats().protocol.invalidationsSent;
    m.testAccess(3, kA, true);
    EXPECT_EQ(m.stats().protocol.broadcastInvals, 0u);
    EXPECT_EQ(m.stats().protocol.invalidationsSent, before + 3);
}

// ---------------------------------------------------------------------
// L2 / inclusion / RAT escalation through the full engine
// ---------------------------------------------------------------------

TEST(Protocol, L2EvictionBackInvalidatesL1)
{
    // Shrink the L2 so fills evict lines that still have L1 holders.
    auto cfg = baselineCfg();
    cfg.l2SizeKB = 2; // 4 sets x 8 ways = 32 lines per slice
    Multicore m(cfg);
    const Addr base = Addr{1} << 33;
    // Touch far more private lines than the slice holds.
    for (int i = 0; i < 64; ++i)
        m.testAccess(0, base + static_cast<Addr>(i) * 64, false);
    EXPECT_GT(m.stats().protocol.l2Evictions, 0u);
    // Inclusion: no L1 line may exist without its L2 home entry.
    std::uint64_t orphans = 0;
    m.tile(0).l1d.forEach([&](L1Cache::Entry e) {
        if (e.valid() && !m.tile(0).l2.find(e.tag()))
            ++orphans;
    });
    EXPECT_EQ(orphans, 0u);
}

TEST(Protocol, RatEscalatesThroughEngine)
{
    // A line repeatedly evicted with low utilization raises its RAT
    // level, making re-promotion need RATmax accesses when the set is
    // under pressure.
    auto cfg = smallCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    Multicore m(cfg);
    const Addr target = Addr{1} << 33;
    // Pin the target's L1 set full with other hot lines (same set:
    // stride = sets * lineSize = 8 * 64).
    auto hot = [&](int i) {
        return target + 64 * 8 * static_cast<Addr>(i + 1);
    };

    // Fill the set: target + 4 hot lines (4-way set -> evicts target).
    m.testAccess(0, target, false);
    for (int i = 0; i < 4; ++i)
        m.testAccess(0, hot(i), false);
    // Target was evicted with util 1 -> demoted with RAT level 1.
    const CoreId home = 0; // private page of core 0
    const auto entry = m.tile(home).l2.find(target >> 6);
    ASSERT_TRUE(entry);
    const auto *rec = m.classifier().peek(*entry.meta().cls, 0);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->mode, Mode::Remote);
    EXPECT_EQ(rec->ratLevel, 1u);

    // Keep the set hot so there is no invalid way: promotion now
    // needs RATmax = 16 remote accesses, not PCT = 4.
    for (int round = 0; round < 15; ++round) {
        for (int i = 0; i < 4; ++i)
            m.testAccess(0, hot(i), false);
        m.testAccess(0, target, false);
        ASSERT_FALSE(m.tile(0).l1d.find(target >> 6))
            << "promoted too early at round " << round;
    }
    for (int i = 0; i < 4; ++i)
        m.testAccess(0, hot(i), false);
    m.testAccess(0, target, false); // 16th remote access: promoted
    EXPECT_TRUE(m.tile(0).l1d.find(target >> 6));
}

TEST(Protocol, InstructionLinesReplicatePerCluster)
{
    // Cores in different clusters fetch the same instruction line;
    // R-NUCA replicates it at one slice per cluster (no coherence
    // traffic between the replicas: instructions are read-only).
    auto cfg = baselineCfg(); // 4 cores, clusters of 2
    Multicore m(cfg);
    const Addr code = (Addr{0xC0} << 36) + 0x40;
    std::vector<std::vector<MemOp>> streams(4);
    streams[0] = {MemOp::ifetch(code)};
    streams[2] = {MemOp::ifetch(code)}; // different cluster
    streams[1] = {MemOp::compute(1)};
    streams[3] = {MemOp::compute(1)};
    TraceWorkload wl("ifetch", streams, 0);
    const auto &st = m.run(wl);

    // The page is classified Instruction and the line exists in two
    // distinct slices (one per cluster), each fetched from DRAM.
    EXPECT_EQ(m.pageTable().lookup(code >> 12)->cls,
              PageClass::Instruction);
    std::uint32_t replicas = 0;
    for (CoreId h = 0; h < 4; ++h)
        replicas += static_cast<bool>(m.tile(h).l2.find(code >> 6));
    EXPECT_EQ(replicas, 2u);
    EXPECT_EQ(st.protocol.invalidationsSent, 0u);
    // Both fetchers hold L1-I copies.
    EXPECT_TRUE(m.tile(0).l1i.find(code >> 6));
    EXPECT_TRUE(m.tile(2).l1i.find(code >> 6));
}

// ---------------------------------------------------------------------
// Timing sanity
// ---------------------------------------------------------------------

TEST(Timing, RemoteReadCheaperThanGrantRoundtrip)
{
    // A word reply (2 flits) must beat a line reply (9 flits) for the
    // same path. Use a line whose hash home (line % 4 == 3) is
    // distant from the requesting core 0 so reply serialization shows.
    const Addr addr = (Addr{1} << 33) + 3 * 64;
    auto prelude = [&](Multicore &m) {
        m.testAccess(0, addr, false); // private page at slice 0
        m.testAccess(1, addr, false); // re-home to the hash slice (3)
        m.testAccess(0, addr, false); // core 0 S copy, util 1
        m.testAccess(1, addr, true);  // invalidate core 0; M at core 1
    };

    auto cfg = smallCfg();
    cfg.classifierKind = ClassifierKind::Complete;
    Multicore m(cfg);
    prelude(m); // demotes core 0 under the adaptive classifier

    Multicore base(baselineCfg());
    prelude(base); // baseline never demotes

    const Cycle t0 = m.tile(0).now;
    m.testAccess(0, addr, false); // remote word (with sync WB)
    const Cycle remote_latency = m.tile(0).now - t0;

    const Cycle b0 = base.tile(0).now;
    base.testAccess(0, addr, false); // full line grant (with sync WB)
    const Cycle grant_latency = base.tile(0).now - b0;

    EXPECT_LT(remote_latency, grant_latency);
}

TEST(Timing, SerializationAtDirectory)
{
    // Two cores hammer the same line; the second request waits for
    // the first transaction's busy window.
    Multicore m(baselineCfg());
    m.testAccess(0, kA, false);
    m.testAccess(1, kA, false);
    // Both issue at similar local times; at least one of them must
    // have accrued waiting cycles across this sequence of conflicting
    // transactions.
    m.testAccess(2, kA, true);
    m.testAccess(3, kA, true);
    const auto lat = m.stats().totalLatency();
    // stats() snapshot is from construction; recompute from tiles.
    std::uint64_t waiting = 0;
    for (CoreId c = 0; c < 4; ++c)
        waiting += m.tile(c).stats.latency.l2Waiting;
    (void)lat;
    EXPECT_GT(waiting, 0u);
}


// ---------------------------------------------------------------------------
// Protocol factory (protocol/factory.hh)
// ---------------------------------------------------------------------------

TEST(Factory, SelectsProtocolFromConfig)
{
    Multicore ack(baselineCfg());
    EXPECT_STREQ(ack.protocol().name(), "lacc");

    auto fm = baselineCfg();
    fm.directoryKind = DirectoryKind::FullMap;
    Multicore full(fm);
    EXPECT_STREQ(full.protocol().name(), "fullmap");
}

TEST(Factory, NameConfigRoundTrip)
{
    for (const auto &name : protocolNames()) {
        SystemConfig cfg = smallCfg();
        applyProtocolName(cfg, name);
        EXPECT_EQ(protocolNameFor(cfg), name);
        Multicore m(cfg);
        EXPECT_EQ(m.protocol().name(), name);
    }
}

TEST(Factory, UnknownProtocolNameIsFatal)
{
    SystemConfig cfg = smallCfg();
    EXPECT_EXIT(applyProtocolName(cfg, "mesi-2000"),
                testing::ExitedWithCode(1), "unknown protocol");
}


// ---------------------------------------------------------------------------
// Dual L1 copies: a line held in both L1-I and L1-D of one core
// (instruction line also read as data). The directory tracks one
// holder entry per core, so invalidations must kill both copies and
// evicting one copy must not untrack the other.
// ---------------------------------------------------------------------------

TEST(Protocol, WriteInvalidatesBothL1CopiesOfDualHolder)
{
    Multicore m(smallCfg()); // functional checks on
    std::vector<std::vector<MemOp>> streams(4);
    // Core 0 caches line kA in both L1s, then core 1 writes it; core
    // 0's re-reads must see fresh data (stale-copy corruption shows
    // up as functional errors).
    streams[0] = {MemOp::ifetch(kA), MemOp::read(kA),
                  MemOp::compute(2000), MemOp::ifetch(kA),
                  MemOp::read(kA)};
    streams[1] = {MemOp::compute(600), MemOp::write(kA)};
    TraceWorkload wl("dual-copy-inval", streams, 0);
    m.run(wl);
    EXPECT_EQ(m.functionalErrors(), 0u);
    // The write invalidated both of core 0's copies before its
    // re-reads refetched.
    EXPECT_GE(m.tile(0).stats.l1i.invalidationsRecv +
                  m.tile(0).stats.l1d.invalidationsRecv,
              2u);
    EXPECT_TRUE(verify::checkAll(m).empty());
}

TEST(Protocol, DataEvictionKeepsDualHolderTracked)
{
    Multicore m(smallCfg());
    std::vector<std::vector<MemOp>> streams(4);
    // Core 0 takes line kA into L1-I and L1-D, then evicts only the
    // L1-D copy by filling kA's set (l1d: 8 sets x 4 ways, so 4 more
    // lines at 8-set stride map to the same set).
    std::vector<MemOp> s0 = {MemOp::ifetch(kA), MemOp::read(kA)};
    for (int i = 1; i <= 4; ++i)
        s0.push_back(MemOp::read(kA + static_cast<Addr>(i) * 8 * 64));
    s0.push_back(MemOp::compute(4000));
    s0.push_back(MemOp::ifetch(kA)); // after core 1's write
    streams[0] = s0;
    streams[1] = {MemOp::compute(2500), MemOp::write(kA)};
    TraceWorkload wl("dual-copy-evict", streams, 0);
    m.run(wl);
    // The data copy really was evicted...
    EXPECT_GE(m.tile(0).stats.l1d.evictions, 1u);
    // ...but the holder entry survived, so core 1's write still
    // invalidated the remaining L1-I copy and no stale instruction
    // word was fetched.
    EXPECT_EQ(m.functionalErrors(), 0u);
    EXPECT_GE(m.tile(0).stats.l1i.invalidationsRecv, 1u);
    EXPECT_TRUE(verify::checkAll(m).empty());
}


TEST(Protocol, OwnerReadMergesOwnModifiedData)
{
    // Write-then-ifetch half of the dual-copy corner: core 0 holds
    // line kA Modified in L1-D (owner), then ifetch-misses on the
    // same line. The grant must merge the M data before filling L1-I
    // instead of serving the stale L2 copy.
    Multicore m(smallCfg());
    std::vector<std::vector<MemOp>> streams(4);
    streams[0] = {MemOp::write(kA), MemOp::ifetch(kA), MemOp::read(kA)};
    TraceWorkload wl("owner-read-merge", streams, 0);
    m.run(wl);
    EXPECT_EQ(m.functionalErrors(), 0u);
    EXPECT_TRUE(verify::checkAll(m).empty());
}

TEST(Protocol, WriteGrantDropsStaleOtherL1Copy)
{
    // A write grant to a dual-copy holder must kill the stale copy
    // in the other L1, or the next ifetch serves pre-store data.
    Multicore m(smallCfg());
    std::vector<std::vector<MemOp>> streams(4);
    streams[0] = {MemOp::ifetch(kA), MemOp::read(kA), MemOp::write(kA),
                  MemOp::ifetch(kA)};
    TraceWorkload wl("write-drops-other", streams, 0);
    m.run(wl);
    EXPECT_EQ(m.functionalErrors(), 0u);
    EXPECT_TRUE(verify::checkAll(m).empty());
}

// ---------------------------------------------------------------------------
// Message transport (protocol/messages.hh)
// ---------------------------------------------------------------------------

TEST(Messages, FlitsFollowPayloadClass)
{
    const SystemConfig cfg = smallCfg();
    EnergyModel e;
    MeshNetwork mesh(cfg, e);
    MessageTransport net(cfg, mesh);

    Message m{MsgKind::ShReq, 0, 1, MsgPayload::None};
    EXPECT_EQ(net.flitsOf(m), cfg.headerFlits);
    m.payload = MsgPayload::Word;
    EXPECT_EQ(net.flitsOf(m), cfg.headerFlits + cfg.wordFlits);
    m.kind = MsgKind::LineGrant;
    m.payload = MsgPayload::Line;
    EXPECT_EQ(net.flitsOf(m), cfg.headerFlits + cfg.lineFlits);

    const Cycle t = net.send(m, 0);
    EXPECT_EQ(m.flits, cfg.headerFlits + cfg.lineFlits);
    EXPECT_EQ(m.hops, mesh.hopCount(0, 1));
    EXPECT_EQ(t, mesh.idealLatency(0, 1, m.flits)); // empty mesh

    EXPECT_STREQ(msgKindName(MsgKind::ShReq), "ShReq");
    EXPECT_STREQ(msgKindName(MsgKind::InvalAck), "InvalAck");
    EXPECT_STREQ(msgKindName(MsgKind::DramWriteback), "DramWriteback");
}

} // namespace
} // namespace lacc
