/**
 * @file
 * Build-harness smoke test: the canary target CI gates on. Constructs
 * the same small 4-core system the protocol tests use, drives a short
 * hand-written trace through the full Multicore engine (reads, writes,
 * sharing, a barrier), and asserts that the headline statistics are
 * non-zero and functionally clean. If this passes, the library built,
 * linked, and simulates end-to-end.
 */

#include <gtest/gtest.h>

#include "system/multicore.hh"
#include "workload/trace_file.hh"

namespace lacc {
namespace {

/** Small 4-core system configuration (mirrors test_protocol.cc). */
SystemConfig
smallCfg()
{
    SystemConfig c;
    c.numCores = 4;
    c.meshWidth = 2;
    c.clusterSize = 2;
    c.numMemControllers = 2;
    c.l1iSizeKB = 1;  // 4 sets x 4 ways
    c.l1iAssoc = 4;
    c.l1dSizeKB = 2;  // 8 sets x 4 ways
    c.l1dAssoc = 4;
    c.l2SizeKB = 16;  // 32 sets x 8 ways
    c.l2Assoc = 8;
    c.pct = 4;
    c.ratMax = 16;
    c.nRatLevels = 2;
    c.classifierK = 3;
    return c;
}

/**
 * A short 4-core trace: every core touches a private line a few
 * times, all cores read one shared line, core 0 writes it (forcing
 * invalidations), and everyone meets at a barrier.
 */
TraceWorkload
shortTrace()
{
    constexpr Addr kShared = Addr{1} << 33;
    std::vector<std::vector<MemOp>> streams(4);
    for (std::uint32_t c = 0; c < 4; ++c) {
        const Addr priv = (Addr{2} << 33) + Addr{c} * 4096;
        for (int i = 0; i < 6; ++i) {
            streams[c].push_back(MemOp::read(priv));
            streams[c].push_back(MemOp::write(priv + 8));
        }
        streams[c].push_back(MemOp::read(kShared));
        streams[c].push_back(MemOp::compute(10));
        streams[c].push_back(MemOp::barrier());
        if (c == 0)
            streams[c].push_back(MemOp::write(kShared));
        streams[c].push_back(MemOp::read(kShared));
    }
    return TraceWorkload("smoke", std::move(streams));
}

TEST(Smoke, ShortTraceProducesNonZeroStats)
{
    Multicore m(smallCfg());
    auto wl = shortTrace();
    const SystemStats &st = m.run(wl);

    // The run made forward progress and touched memory.
    EXPECT_GT(st.completionTime(), 0u);
    EXPECT_GT(st.protocol.dramFetches, 0u);
    EXPECT_EQ(st.perCore.size(), 4u);

    // Every core issued accesses and the caches saw traffic.
    for (std::uint32_t c = 0; c < 4; ++c) {
        EXPECT_GT(m.tile(c).stats.l1d.accesses(), 0u)
            << "core " << c << " issued no L1-D accesses";
    }

    // Functional data movement stayed consistent with the reference
    // memory (checks are on by default).
    EXPECT_EQ(m.functionalErrors(), 0u);
}

TEST(Smoke, RunIsDeterministic)
{
    auto runOnce = [] {
        Multicore m(smallCfg());
        auto wl = shortTrace();
        return m.run(wl).completionTime();
    };
    EXPECT_EQ(runOnce(), runOnce());
}

} // namespace
} // namespace lacc
