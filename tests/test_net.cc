/**
 * @file
 * Unit tests for the interconnect layer: the 2-D mesh (XY distances,
 * wormhole serialization, link contention, broadcast tree coverage,
 * energy/traffic accounting) plus the torus/ring/crossbar topologies
 * behind the NetworkModel interface (wraparound distances, broadcast
 * arc/tree link occupancy, serialized-broadcast emulation) and the
 * network factory.
 */

#include <gtest/gtest.h>

#include "energy/model.hh"
#include "net/crossbar.hh"
#include "net/factory.hh"
#include "net/mesh.hh"
#include "net/ring.hh"
#include "net/torus.hh"

namespace lacc {
namespace {

SystemConfig
meshCfg(std::uint32_t cores, std::uint32_t width)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.meshWidth = width;
    cfg.clusterSize = cores >= 4 ? 4 : 1;
    cfg.numMemControllers = cores >= 8 ? 8 : 1;
    return cfg;
}

TEST(Mesh, Coordinates)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    EXPECT_EQ(net.xOf(0), 0u);
    EXPECT_EQ(net.yOf(0), 0u);
    EXPECT_EQ(net.xOf(9), 1u);
    EXPECT_EQ(net.yOf(9), 1u);
    EXPECT_EQ(net.xOf(63), 7u);
    EXPECT_EQ(net.yOf(63), 7u);
}

TEST(Mesh, HopCountManhattan)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    EXPECT_EQ(net.hopCount(0, 0), 0u);
    EXPECT_EQ(net.hopCount(0, 7), 7u);
    EXPECT_EQ(net.hopCount(0, 63), 14u);
    EXPECT_EQ(net.hopCount(9, 18), 2u);
}

TEST(Mesh, IdealLatency)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    // hops * 2 + (flits - 1)
    EXPECT_EQ(net.idealLatency(0, 1, 1), 2u);
    EXPECT_EQ(net.idealLatency(0, 1, 9), 10u);
    EXPECT_EQ(net.idealLatency(0, 63, 1), 28u);
}

TEST(Mesh, UnicastMatchesIdealWithoutContention)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    const Cycle t = net.unicast(0, 63, 9, 1000);
    EXPECT_EQ(t, 1000 + net.idealLatency(0, 63, 9));
}

TEST(Mesh, LocalDeliveryIsFree)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    EXPECT_EQ(net.unicast(5, 5, 9, 123), 123u);
    EXPECT_EQ(net.stats().flitHops, 0u);
    EXPECT_DOUBLE_EQ(e.breakdown().link, 0.0);
}

TEST(Mesh, ContentionDelaysSecondMessage)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(4, 2), e);
    // Two 8-flit messages over the same single link 0->1 at t=0.
    const Cycle a = net.unicast(0, 1, 8, 0);
    const Cycle b = net.unicast(0, 1, 8, 0);
    EXPECT_EQ(a, net.idealLatency(0, 1, 8));
    EXPECT_GT(b, a);
    EXPECT_GE(net.stats().contentionCycles, 7u);
}

TEST(Mesh, ContentionDisabledWhenConfigured)
{
    auto cfg = meshCfg(4, 2);
    cfg.modelContention = false;
    EnergyModel e;
    MeshNetwork net(cfg, e);
    const Cycle a = net.unicast(0, 1, 8, 0);
    const Cycle b = net.unicast(0, 1, 8, 0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(net.stats().contentionCycles, 0u);
}

TEST(Mesh, DisjointPathsNoContention)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    const Cycle a = net.unicast(0, 7, 8, 0);
    const Cycle b = net.unicast(56, 63, 8, 0); // different row
    EXPECT_EQ(a, b);
    EXPECT_EQ(net.stats().contentionCycles, 0u);
}

TEST(Mesh, XYRoutingOrder)
{
    // A's X-leg (row 0) and B's Y-leg share no link under XY routing
    // even though their paths cross at tile 3.
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    net.unicast(0, 7, 8, 0);   // row 0 eastward
    net.unicast(3, 59, 8, 0);  // straight down column 3
    EXPECT_EQ(net.stats().contentionCycles, 0u);
}

TEST(Mesh, BroadcastReachesAll)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    std::vector<Cycle> arrivals;
    const Cycle max_t = net.broadcast(27, 1, 500, arrivals);
    ASSERT_EQ(arrivals.size(), 64u);
    Cycle seen_max = 0;
    for (CoreId c = 0; c < 64; ++c) {
        if (c == 27)
            continue;
        EXPECT_GE(arrivals[c], 500 + net.idealLatency(27, c, 1))
            << "core " << c;
        seen_max = std::max(seen_max, arrivals[c]);
    }
    EXPECT_EQ(max_t, seen_max);
}

TEST(Mesh, BroadcastUsesSpanningTreeLinks)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    std::vector<Cycle> arrivals;
    net.broadcast(0, 1, 0, arrivals);
    // N-1 tree links, 1 flit each.
    EXPECT_EQ(net.stats().flitHops, 63u);
    EXPECT_EQ(net.stats().broadcasts, 1u);
}

TEST(Mesh, BroadcastCheaperThanUnicastStorm)
{
    EnergyModel e1, e2;
    MeshNetwork a(meshCfg(64, 8), e1);
    MeshNetwork b(meshCfg(64, 8), e2);
    std::vector<Cycle> arrivals;
    a.broadcast(0, 1, 0, arrivals);
    for (CoreId c = 1; c < 64; ++c)
        b.unicast(0, c, 1, 0);
    EXPECT_LT(a.stats().flitHops, b.stats().flitHops);
    EXPECT_LT(e1.breakdown().link, e2.breakdown().link);
}

TEST(Mesh, EnergyLinkExceedsRouterPerDefaults)
{
    // 11nm trend (§5.1.1): links cost more than routers.
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    net.unicast(0, 63, 8, 0);
    EXPECT_GT(e.breakdown().link, e.breakdown().router);
}

TEST(Mesh, StatsAccumulateAndReset)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(16, 4), e);
    net.unicast(0, 15, 2, 0);
    EXPECT_EQ(net.stats().unicasts, 1u);
    EXPECT_EQ(net.stats().flitsInjected, 2u);
    EXPECT_EQ(net.stats().flitHops, 2u * net.hopCount(0, 15));
    net.reset();
    EXPECT_EQ(net.stats().unicasts, 0u);
    EXPECT_EQ(net.stats().flitHops, 0u);
}

TEST(Mesh, NonSquareMesh)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(8, 4), e); // 4x2 mesh
    EXPECT_EQ(net.hopCount(0, 7), 4u);
    std::vector<Cycle> arrivals;
    net.broadcast(5, 1, 0, arrivals);
    EXPECT_EQ(net.stats().flitHops, 7u);
}

TEST(Mesh, BroadcastOccupiesXThenYTreeLinks)
{
    // 4x4 mesh, broadcast from tile 5 = (x=1, y=1). The X-then-Y tree
    // expands east/west along row 1 and north/south along every
    // column; directed link ids are node*4 + {E=0, W=1, S=2, N=3}.
    EnergyModel e;
    MeshNetwork net(meshCfg(16, 4), e);
    std::vector<Cycle> arrivals;
    net.broadcast(5, 1, 0, arrivals);

    const auto link = [](CoreId node, std::uint32_t dir) {
        return node * 4 + dir;
    };
    // Row expansion: 5->6->7 east, 5->4 west.
    EXPECT_EQ(net.linkFlits(link(5, 0)), 1u);
    EXPECT_EQ(net.linkFlits(link(6, 0)), 1u);
    EXPECT_EQ(net.linkFlits(link(7, 0)), 0u); // east edge: no wrap
    EXPECT_EQ(net.linkFlits(link(5, 1)), 1u);
    EXPECT_EQ(net.linkFlits(link(4, 1)), 0u); // west edge: no wrap
    // Column expansion from every row-1 node: south two rows, north
    // one row (e.g. column 2: 6->10->14 south, 6->2 north).
    EXPECT_EQ(net.linkFlits(link(6, 2)), 1u);
    EXPECT_EQ(net.linkFlits(link(10, 2)), 1u);
    EXPECT_EQ(net.linkFlits(link(6, 3)), 1u);
    EXPECT_EQ(net.linkFlits(link(2, 3)), 0u); // north edge
    // The tree occupies exactly N-1 directed links, once each.
    std::uint64_t occupied = 0;
    for (std::uint32_t l = 0; l < 16 * 4; ++l) {
        EXPECT_LE(net.linkFlits(l), 1u) << "link " << l;
        occupied += net.linkFlits(l);
    }
    EXPECT_EQ(occupied, 15u);
}

// ---------------------------------------------------------------------------
// Torus
// ---------------------------------------------------------------------------

TEST(Torus, WraparoundHopCounts)
{
    EnergyModel e;
    TorusNetwork net(meshCfg(64, 8), e);
    EXPECT_EQ(net.hopCount(0, 0), 0u);
    EXPECT_EQ(net.hopCount(0, 7), 1u);   // row wrap: 7 on the mesh
    EXPECT_EQ(net.hopCount(0, 56), 1u);  // column wrap
    EXPECT_EQ(net.hopCount(0, 63), 2u);  // both wraps: 14 on the mesh
    EXPECT_EQ(net.hopCount(0, 36), 8u);  // (4,4): the torus diameter
    EXPECT_EQ(net.hopCount(9, 18), 2u);  // no wrap: same as the mesh
    // Symmetric: wrap distance is direction-independent.
    EXPECT_EQ(net.hopCount(63, 0), 2u);
}

TEST(Torus, NeverWorseThanMesh)
{
    EnergyModel e1, e2;
    MeshNetwork mesh(meshCfg(64, 8), e1);
    TorusNetwork torus(meshCfg(64, 8), e2);
    for (CoreId s = 0; s < 64; s += 7)
        for (CoreId d = 0; d < 64; ++d)
            EXPECT_LE(torus.hopCount(s, d), mesh.hopCount(s, d))
                << s << "->" << d;
}

TEST(Torus, UnicastMatchesIdealWithoutContention)
{
    EnergyModel e;
    TorusNetwork net(meshCfg(64, 8), e);
    const Cycle t = net.unicast(0, 63, 9, 1000);
    EXPECT_EQ(t, 1000 + net.idealLatency(0, 63, 9));
    EXPECT_EQ(net.stats().flitHops, 9u * 2);
    EXPECT_EQ(net.unicast(5, 5, 9, 123), 123u); // local delivery
}

TEST(Torus, BroadcastReachesAllOverSpanningTree)
{
    EnergyModel e;
    TorusNetwork net(meshCfg(64, 8), e);
    std::vector<Cycle> arrivals;
    const Cycle max_t = net.broadcast(27, 1, 500, arrivals);
    ASSERT_EQ(arrivals.size(), 64u);
    Cycle seen_max = 0;
    for (CoreId c = 0; c < 64; ++c) {
        if (c == 27)
            continue;
        EXPECT_GE(arrivals[c], 500 + net.idealLatency(27, c, 1))
            << "core " << c;
        seen_max = std::max(seen_max, arrivals[c]);
    }
    EXPECT_EQ(max_t, seen_max);
    // N-1 tree links, 1 flit each, single injection.
    EXPECT_EQ(net.stats().flitHops, 63u);
    EXPECT_EQ(net.stats().flitsInjected, 1u);
    EXPECT_EQ(net.stats().broadcasts, 1u);
}

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

TEST(Ring, ShorterArcHopCounts)
{
    EnergyModel e;
    RingNetwork net(meshCfg(16, 4), e);
    EXPECT_EQ(net.hopCount(0, 0), 0u);
    EXPECT_EQ(net.hopCount(0, 15), 1u); // wraparound edge
    EXPECT_EQ(net.hopCount(15, 0), 1u);
    EXPECT_EQ(net.hopCount(0, 8), 8u);  // the diameter
    EXPECT_EQ(net.hopCount(3, 7), 4u);
    EXPECT_EQ(net.hopCount(7, 3), 4u);
}

TEST(Ring, UnicastMatchesIdealWithoutContention)
{
    EnergyModel e;
    RingNetwork net(meshCfg(16, 4), e);
    const Cycle t = net.unicast(0, 15, 9, 1000);
    EXPECT_EQ(t, 1000 + net.idealLatency(0, 15, 9));
    EXPECT_EQ(net.stats().flitHops, 9u); // one wraparound hop
}

TEST(Ring, BroadcastExpandsBothArcs)
{
    EnergyModel e;
    RingNetwork net(meshCfg(16, 4), e);
    std::vector<Cycle> arrivals;
    const Cycle max_t = net.broadcast(3, 1, 100, arrivals);
    ASSERT_EQ(arrivals.size(), 16u);
    for (CoreId c = 0; c < 16; ++c) {
        if (c == 3)
            continue;
        EXPECT_GE(arrivals[c], 100 + net.idealLatency(3, c, 1))
            << "core " << c;
    }
    // N-1 arc links, 1 flit each, single injection; the farthest node
    // (the clockwise arc's end, 8 hops away) bounds the release.
    EXPECT_EQ(net.stats().flitHops, 15u);
    EXPECT_EQ(net.stats().flitsInjected, 1u);
    EXPECT_EQ(max_t, 100 + net.idealLatency(3, 11, 1));
}

TEST(Ring, HigherDiameterThanMesh)
{
    EnergyModel e1, e2;
    MeshNetwork mesh(meshCfg(64, 8), e1);
    RingNetwork ring(meshCfg(64, 8), e2);
    EXPECT_EQ(ring.hopCount(0, 32), 32u);  // ring diameter: N/2
    EXPECT_EQ(mesh.hopCount(0, 32), 4u);
}

// ---------------------------------------------------------------------------
// Crossbar
// ---------------------------------------------------------------------------

TEST(Crossbar, UniformSingleHopLatency)
{
    EnergyModel e;
    CrossbarNetwork net(meshCfg(64, 8), e);
    EXPECT_EQ(net.hopCount(0, 1), 1u);
    EXPECT_EQ(net.hopCount(0, 63), 1u);
    EXPECT_EQ(net.hopCount(5, 5), 0u);
    // hops * 2 + (flits - 1), independent of the pair.
    EXPECT_EQ(net.idealLatency(0, 1, 9), net.idealLatency(0, 63, 9));
    const Cycle t = net.unicast(0, 63, 9, 1000);
    EXPECT_EQ(t, 1000 + net.idealLatency(0, 63, 9));
    EXPECT_EQ(net.stats().flitHops, 9u);
}

TEST(Crossbar, OutputPortContention)
{
    EnergyModel e;
    CrossbarNetwork net(meshCfg(16, 4), e);
    // Two senders to the same destination contend on its output port;
    // two senders to different destinations do not.
    const Cycle a = net.unicast(0, 5, 8, 0);
    const Cycle b = net.unicast(1, 5, 8, 0);
    EXPECT_GT(b, a);
    EXPECT_GE(net.stats().contentionCycles, 7u);
    EnergyModel e2;
    CrossbarNetwork clean(meshCfg(16, 4), e2);
    EXPECT_EQ(clean.unicast(0, 5, 8, 0), clean.unicast(1, 6, 8, 0));
    EXPECT_EQ(clean.stats().contentionCycles, 0u);
}

TEST(Crossbar, BroadcastSerializesUnicasts)
{
    EnergyModel e;
    CrossbarNetwork net(meshCfg(16, 4), e);
    EXPECT_FALSE(net.hasNativeBroadcast());
    std::vector<Cycle> arrivals;
    const std::uint32_t flits = 4;
    const Cycle max_t = net.broadcast(3, flits, 200, arrivals);
    ASSERT_EQ(arrivals.size(), 16u);
    EXPECT_EQ(arrivals[3], 200u);

    // Emulation: one unicast per destination, injected back-to-back
    // at one flit per cycle — (N-1)*flits injected flits and hops,
    // versus a single injection and N-1 tree links on the mesh.
    EXPECT_EQ(net.stats().broadcasts, 1u);
    EXPECT_EQ(net.stats().unicasts, 15u);
    EXPECT_EQ(net.stats().flitsInjected, 15u * flits);
    EXPECT_EQ(net.stats().flitHops, 15u * flits);

    // The i-th copy (CoreId order, source skipped) departs i*flits
    // later; distinct output ports mean no port contention, so each
    // arrival is exactly its injection plus the uniform latency.
    std::uint64_t i = 0;
    for (CoreId c = 0; c < 16; ++c) {
        if (c == 3)
            continue;
        EXPECT_EQ(arrivals[c],
                  200 + i * flits + net.idealLatency(3, c, flits))
            << "core " << c;
        ++i;
    }
    EXPECT_EQ(max_t, arrivals[15]);
}

TEST(Crossbar, EmulatedBroadcastCostsMoreThanMeshTree)
{
    EnergyModel e1, e2;
    MeshNetwork mesh(meshCfg(64, 8), e1);
    CrossbarNetwork xbar(meshCfg(64, 8), e2);
    std::vector<Cycle> arrivals;
    mesh.broadcast(0, 8, 0, arrivals);
    xbar.broadcast(0, 8, 0, arrivals);
    EXPECT_GT(xbar.stats().flitsInjected, mesh.stats().flitsInjected);
    EXPECT_GT(e2.breakdown().link, 0.0);
}

// ---------------------------------------------------------------------------
// Congestion diagnostics
// ---------------------------------------------------------------------------

TEST(Congestion, TopLinksTieBreakIsDeterministic)
{
    // Three congested links: 1->0 (link 5) queues more than 0->1
    // (link 0) and 2->3 (link 8), which queue exactly the same amount.
    // The order must be (queueing desc, link id asc) — equal-queueing
    // links may not reorder across runs or sort implementations.
    EnergyModel e;
    MeshNetwork net(meshCfg(4, 2), e);
    net.unicast(0, 1, 8, 0);
    net.unicast(0, 1, 8, 0); // queues 7 cycles on link 0
    net.unicast(2, 3, 8, 0);
    net.unicast(2, 3, 8, 0); // queues 7 cycles on link 8
    net.unicast(1, 0, 8, 0);
    net.unicast(1, 0, 8, 0);
    net.unicast(1, 0, 8, 0); // queues 7 + 15 cycles on link 5

    const auto top = net.topCongestedLinks(8);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].first, 5u);
    EXPECT_EQ(top[0].second, 22u);
    EXPECT_EQ(top[1].first, 0u);   // ties: lower link id first
    EXPECT_EQ(top[1].second, 7u);
    EXPECT_EQ(top[2].first, 8u);
    EXPECT_EQ(top[2].second, 7u);

    // Truncation keeps the same order.
    const auto top2 = net.topCongestedLinks(2);
    ASSERT_EQ(top2.size(), 2u);
    EXPECT_EQ(top2[0].first, 5u);
    EXPECT_EQ(top2[1].first, 0u);
}

// ---------------------------------------------------------------------------
// Table-driven path == reference walker (all topologies)
// ---------------------------------------------------------------------------

/** Deterministic 64-bit LCG (tests must not depend on libstdc++). */
struct Lcg
{
    std::uint64_t s;
    std::uint32_t
    next(std::uint32_t m)
    {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<std::uint32_t>((s >> 33) % m);
    }
};

/**
 * Drive two identically-configured instances of one topology through
 * the same randomized (src, dst, flits, depart) message sequence —
 * `table` via the table-driven hot path, `ref` via the hop-by-hop
 * reference walker — and require bit-identical timing, arrivals,
 * traffic stats, energy, and per-link flit/congestion accounting.
 */
void
expectPathsEquivalent(NetworkModel &table, NetworkModel &ref,
                      std::uint32_t cores, std::uint32_t links,
                      std::uint64_t seed)
{
    Lcg rng{seed};
    std::vector<Cycle> arr_table, arr_ref;
    Cycle clock = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto src = static_cast<CoreId>(rng.next(cores));
        const auto dst = static_cast<CoreId>(rng.next(cores));
        const std::uint32_t flits = 1 + rng.next(9);
        clock += rng.next(5);
        if (rng.next(8) == 0) {
            const Cycle a = table.broadcast(src, flits, clock,
                                            arr_table);
            const Cycle b = ref.referenceBroadcast(src, flits, clock,
                                                   arr_ref);
            ASSERT_EQ(a, b) << "broadcast " << i << " from " << src;
            ASSERT_EQ(arr_table, arr_ref)
                << "broadcast " << i << " from " << src;
        } else {
            ASSERT_EQ(table.unicast(src, dst, flits, clock),
                      ref.referenceUnicast(src, dst, flits, clock))
                << "unicast " << i << ": " << src << "->" << dst;
        }
    }

    EXPECT_EQ(table.stats().unicasts, ref.stats().unicasts);
    EXPECT_EQ(table.stats().broadcasts, ref.stats().broadcasts);
    EXPECT_EQ(table.stats().flitsInjected, ref.stats().flitsInjected);
    EXPECT_EQ(table.stats().flitHops, ref.stats().flitHops);
    EXPECT_EQ(table.stats().contentionCycles,
              ref.stats().contentionCycles);
    for (std::uint32_t l = 0; l < links; ++l)
        ASSERT_EQ(table.linkFlits(l), ref.linkFlits(l)) << "link " << l;
    EXPECT_EQ(table.topCongestedLinks(16), ref.topCongestedLinks(16));
}

/** links-per-core of each factory topology (mesh/torus 4, ring 2,
 *  crossbar 1). */
std::uint32_t
linksPerCore(const std::string &name)
{
    if (name == "ring")
        return 2;
    if (name == "xbar")
        return 1;
    return 4;
}

TEST(TableEquivalence, AllTopologiesWithContention)
{
    std::uint64_t seed = 1;
    for (const auto &name : networkNames()) {
        SystemConfig cfg = meshCfg(16, 4);
        applyNetworkName(cfg, name);
        EnergyModel e1, e2;
        const auto table = makeNetwork(cfg, e1);
        const auto ref = makeNetwork(cfg, e2);
        expectPathsEquivalent(*table, *ref, cfg.numCores,
                              cfg.numCores * linksPerCore(name),
                              seed++);
        EXPECT_DOUBLE_EQ(e1.breakdown().link, e2.breakdown().link)
            << name;
        EXPECT_DOUBLE_EQ(e1.breakdown().router, e2.breakdown().router)
            << name;
    }
}

TEST(TableEquivalence, AllTopologiesWithoutContention)
{
    // The no-contention fast path computes arrivals analytically; it
    // must agree with the reference walker's hop-by-hop times and
    // still account per-link flit loads identically.
    std::uint64_t seed = 99;
    for (const auto &name : networkNames()) {
        SystemConfig cfg = meshCfg(16, 4);
        cfg.modelContention = false;
        applyNetworkName(cfg, name);
        EnergyModel e1, e2;
        const auto table = makeNetwork(cfg, e1);
        const auto ref = makeNetwork(cfg, e2);
        expectPathsEquivalent(*table, *ref, cfg.numCores,
                              cfg.numCores * linksPerCore(name),
                              seed++);
    }
}

TEST(TableEquivalence, NonSquareMeshAndTorus)
{
    // Rectangular geometry exercises the distinct row/column chain
    // lengths of the broadcast schedules.
    std::uint64_t seed = 7;
    for (const std::string name : {"mesh", "torus"}) {
        SystemConfig cfg = meshCfg(8, 4); // 4x2
        applyNetworkName(cfg, name);
        EnergyModel e1, e2;
        const auto table = makeNetwork(cfg, e1);
        const auto ref = makeNetwork(cfg, e2);
        expectPathsEquivalent(*table, *ref, cfg.numCores,
                              cfg.numCores * 4, seed++);
    }
}

TEST(TableEquivalence, TableFootprintIsReported)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(16, 4), e);
    // 16 cores: 256 routes + their link spans + 16 broadcast
    // schedules of 15 hops each — nonzero and well under a megabyte.
    EXPECT_GT(net.tableFootprintBytes(), 0u);
    EXPECT_LT(net.tableFootprintBytes(), 1u << 20);
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

TEST(NetFactory, BuildsEveryRegisteredTopology)
{
    EXPECT_EQ(networkNames(),
              (std::vector<std::string>{"mesh", "torus", "ring",
                                        "xbar"}));
    for (const auto &name : networkNames()) {
        SystemConfig cfg = meshCfg(16, 4);
        applyNetworkName(cfg, name);
        EXPECT_STREQ(networkNameFor(cfg), name.c_str());
        EnergyModel e;
        const auto net = makeNetwork(cfg, e);
        ASSERT_NE(net, nullptr);
        EXPECT_STREQ(net->name(), name.c_str());
        // Polymorphic sanity: local delivery is free everywhere and
        // distinct tiles are at least one hop apart.
        EXPECT_EQ(net->hopCount(2, 2), 0u);
        EXPECT_GE(net->hopCount(0, 9), 1u);
        EXPECT_EQ(net->unicast(2, 2, 4, 77), 77u);
    }
}

TEST(NetFactory, DefaultConfigSelectsMesh)
{
    const SystemConfig cfg;
    EXPECT_EQ(cfg.networkKind, NetworkKind::Mesh);
    EXPECT_STREQ(networkNameFor(cfg), "mesh");
}

} // namespace
} // namespace lacc
