/**
 * @file
 * Unit tests for the 2-D mesh network: XY distances, wormhole
 * serialization, link contention, broadcast tree coverage, and
 * energy/traffic accounting.
 */

#include <gtest/gtest.h>

#include "energy/model.hh"
#include "net/mesh.hh"

namespace lacc {
namespace {

SystemConfig
meshCfg(std::uint32_t cores, std::uint32_t width)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.meshWidth = width;
    cfg.clusterSize = cores >= 4 ? 4 : 1;
    cfg.numMemControllers = cores >= 8 ? 8 : 1;
    return cfg;
}

TEST(Mesh, Coordinates)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    EXPECT_EQ(net.xOf(0), 0u);
    EXPECT_EQ(net.yOf(0), 0u);
    EXPECT_EQ(net.xOf(9), 1u);
    EXPECT_EQ(net.yOf(9), 1u);
    EXPECT_EQ(net.xOf(63), 7u);
    EXPECT_EQ(net.yOf(63), 7u);
}

TEST(Mesh, HopCountManhattan)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    EXPECT_EQ(net.hopCount(0, 0), 0u);
    EXPECT_EQ(net.hopCount(0, 7), 7u);
    EXPECT_EQ(net.hopCount(0, 63), 14u);
    EXPECT_EQ(net.hopCount(9, 18), 2u);
}

TEST(Mesh, IdealLatency)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    // hops * 2 + (flits - 1)
    EXPECT_EQ(net.idealLatency(0, 1, 1), 2u);
    EXPECT_EQ(net.idealLatency(0, 1, 9), 10u);
    EXPECT_EQ(net.idealLatency(0, 63, 1), 28u);
}

TEST(Mesh, UnicastMatchesIdealWithoutContention)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    const Cycle t = net.unicast(0, 63, 9, 1000);
    EXPECT_EQ(t, 1000 + net.idealLatency(0, 63, 9));
}

TEST(Mesh, LocalDeliveryIsFree)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    EXPECT_EQ(net.unicast(5, 5, 9, 123), 123u);
    EXPECT_EQ(net.stats().flitHops, 0u);
    EXPECT_DOUBLE_EQ(e.breakdown().link, 0.0);
}

TEST(Mesh, ContentionDelaysSecondMessage)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(4, 2), e);
    // Two 8-flit messages over the same single link 0->1 at t=0.
    const Cycle a = net.unicast(0, 1, 8, 0);
    const Cycle b = net.unicast(0, 1, 8, 0);
    EXPECT_EQ(a, net.idealLatency(0, 1, 8));
    EXPECT_GT(b, a);
    EXPECT_GE(net.stats().contentionCycles, 7u);
}

TEST(Mesh, ContentionDisabledWhenConfigured)
{
    auto cfg = meshCfg(4, 2);
    cfg.modelContention = false;
    EnergyModel e;
    MeshNetwork net(cfg, e);
    const Cycle a = net.unicast(0, 1, 8, 0);
    const Cycle b = net.unicast(0, 1, 8, 0);
    EXPECT_EQ(a, b);
    EXPECT_EQ(net.stats().contentionCycles, 0u);
}

TEST(Mesh, DisjointPathsNoContention)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    const Cycle a = net.unicast(0, 7, 8, 0);
    const Cycle b = net.unicast(56, 63, 8, 0); // different row
    EXPECT_EQ(a, b);
    EXPECT_EQ(net.stats().contentionCycles, 0u);
}

TEST(Mesh, XYRoutingOrder)
{
    // A's X-leg (row 0) and B's Y-leg share no link under XY routing
    // even though their paths cross at tile 3.
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    net.unicast(0, 7, 8, 0);   // row 0 eastward
    net.unicast(3, 59, 8, 0);  // straight down column 3
    EXPECT_EQ(net.stats().contentionCycles, 0u);
}

TEST(Mesh, BroadcastReachesAll)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    std::vector<Cycle> arrivals;
    const Cycle max_t = net.broadcast(27, 1, 500, arrivals);
    ASSERT_EQ(arrivals.size(), 64u);
    Cycle seen_max = 0;
    for (CoreId c = 0; c < 64; ++c) {
        if (c == 27)
            continue;
        EXPECT_GE(arrivals[c], 500 + net.idealLatency(27, c, 1))
            << "core " << c;
        seen_max = std::max(seen_max, arrivals[c]);
    }
    EXPECT_EQ(max_t, seen_max);
}

TEST(Mesh, BroadcastUsesSpanningTreeLinks)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    std::vector<Cycle> arrivals;
    net.broadcast(0, 1, 0, arrivals);
    // N-1 tree links, 1 flit each.
    EXPECT_EQ(net.stats().flitHops, 63u);
    EXPECT_EQ(net.stats().broadcasts, 1u);
}

TEST(Mesh, BroadcastCheaperThanUnicastStorm)
{
    EnergyModel e1, e2;
    MeshNetwork a(meshCfg(64, 8), e1);
    MeshNetwork b(meshCfg(64, 8), e2);
    std::vector<Cycle> arrivals;
    a.broadcast(0, 1, 0, arrivals);
    for (CoreId c = 1; c < 64; ++c)
        b.unicast(0, c, 1, 0);
    EXPECT_LT(a.stats().flitHops, b.stats().flitHops);
    EXPECT_LT(e1.breakdown().link, e2.breakdown().link);
}

TEST(Mesh, EnergyLinkExceedsRouterPerDefaults)
{
    // 11nm trend (§5.1.1): links cost more than routers.
    EnergyModel e;
    MeshNetwork net(meshCfg(64, 8), e);
    net.unicast(0, 63, 8, 0);
    EXPECT_GT(e.breakdown().link, e.breakdown().router);
}

TEST(Mesh, StatsAccumulateAndReset)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(16, 4), e);
    net.unicast(0, 15, 2, 0);
    EXPECT_EQ(net.stats().unicasts, 1u);
    EXPECT_EQ(net.stats().flitsInjected, 2u);
    EXPECT_EQ(net.stats().flitHops, 2u * net.hopCount(0, 15));
    net.reset();
    EXPECT_EQ(net.stats().unicasts, 0u);
    EXPECT_EQ(net.stats().flitHops, 0u);
}

TEST(Mesh, NonSquareMesh)
{
    EnergyModel e;
    MeshNetwork net(meshCfg(8, 4), e); // 4x2 mesh
    EXPECT_EQ(net.hopCount(0, 7), 4u);
    std::vector<Cycle> arrivals;
    net.broadcast(5, 1, 0, arrivals);
    EXPECT_EQ(net.stats().flitHops, 7u);
}

} // namespace
} // namespace lacc
