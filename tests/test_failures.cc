/**
 * @file
 * Failure-injection tests: malformed workloads and configurations
 * must die loudly (deadlock detection, unbalanced barriers, releasing
 * an unheld lock, bad config values, malformed trace files) rather
 * than corrupt results.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "fault/plan.hh"
#include "net/factory.hh"
#include "protocol/factory.hh"
#include "sim/abort.hh"
#include "system/experiment.hh"
#include "system/multicore.hh"
#include "workload/trace_file.hh"

namespace lacc {
namespace {

SystemConfig
tinyCfg(std::uint32_t cores = 2)
{
    SystemConfig c;
    c.numCores = cores;
    c.meshWidth = 2;
    c.clusterSize = cores >= 2 ? 2 : 1;
    c.numMemControllers = 2;
    return c;
}

TEST(Failures, UnbalancedBarrierDeadlocks)
{
    // Core 0 barriers; core 1 never does: the run must panic with a
    // deadlock diagnostic instead of hanging or silently finishing.
    std::vector<std::vector<MemOp>> streams(2);
    streams[0] = {MemOp::barrier()};
    streams[1] = {MemOp::compute(5)};
    TraceWorkload wl("bad-barrier", streams, 0);
    Multicore m(tinyCfg());
    EXPECT_DEATH(m.run(wl), "deadlock");
}

TEST(Failures, LockNeverReleasedDeadlocksWaiters)
{
    std::vector<std::vector<MemOp>> streams(2);
    streams[0] = {MemOp::lockAcquire(0), MemOp::compute(5)};
    streams[1] = {MemOp::lockAcquire(0), MemOp::lockRelease(0)};
    TraceWorkload wl("lock-leak", streams, 1);
    Multicore m(tinyCfg());
    EXPECT_DEATH(m.run(wl), "deadlock");
}

TEST(Failures, ReleaseWithoutHoldIsFatal)
{
    std::vector<std::vector<MemOp>> streams(2);
    streams[0] = {MemOp::lockRelease(0)};
    streams[1] = {MemOp::compute(1)};
    TraceWorkload wl("bad-release", streams, 1);
    Multicore m(tinyCfg());
    EXPECT_EXIT(m.run(wl), testing::ExitedWithCode(1),
                "does not hold");
}

TEST(Failures, LockIdOutOfRangeIsFatal)
{
    std::vector<std::vector<MemOp>> streams(2);
    streams[0] = {MemOp::lockAcquire(7)};
    streams[1] = {MemOp::compute(1)};
    TraceWorkload wl("bad-lock-id", streams, 1);
    Multicore m(tinyCfg());
    EXPECT_EXIT(m.run(wl), testing::ExitedWithCode(1), "out of range");
}

TEST(Failures, BadConfigsAreFatal)
{
    SystemConfig c = tinyCfg();
    c.numCores = 3; // not a multiple of meshWidth=2
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "multiple");

    c = tinyCfg();
    c.lineSize = 48; // not a power of two
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "power");

    c = tinyCfg();
    c.pct = 0;
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "PCT");

    c = tinyCfg();
    c.ratMax = 2; // < pct = 4
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1), "RATmax");

    c = tinyCfg();
    c.numMemControllers = 64; // > cores
    EXPECT_EXIT(c.validate(), testing::ExitedWithCode(1),
                "numMemControllers");
}

TEST(Failures, MalformedTraceIsFatal)
{
    {
        std::istringstream is("0 r ff\n"); // body before header
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "header");
    }
    {
        std::istringstream is("trace 1 0\n9 r ff\n"); // bad core id
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "range");
    }
    {
        std::istringstream is("trace 1 0\n0 q ff\n"); // unknown op
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "unknown op");
    }
    {
        std::istringstream is("trace 1 1\n0 a 5\n"); // lock id range
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "out of range");
    }
    {
        std::istringstream is("trace 1 0\n0 r zz\n"); // bad address
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "bad address");
    }
}

TEST(Failures, PartiallyNumericTraceTokensAreFatal)
{
    {
        // std::stoul would silently read "2x" as core 2.
        std::istringstream is("trace 4 0\n2x r ff\n");
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "bad core id");
    }
    {
        // Negative core ids must not wrap to a huge unsigned value.
        std::istringstream is("trace 4 0\n-1 r ff\n");
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "bad core id");
    }
    {
        // std::stoull would silently read "12zz" as address 0x12.
        std::istringstream is("trace 1 0\n0 w 12zz\n");
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "bad address");
    }
    {
        // Addresses wider than 64 bits must not silently truncate.
        std::istringstream is("trace 1 0\n0 r 12345678123456781\n");
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "bad address");
    }
    {
        std::istringstream is("trace 1 0\n0 c 5five\n");
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "bad cycle count");
    }
    {
        std::istringstream is("trace 1 1\n0 a 1one\n");
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "bad lock id");
    }
}

TEST(Failures, TraceTrailingGarbageIsFatal)
{
    {
        // A forgotten field must not be silently dropped.
        std::istringstream is("trace 2 0\n0 r ff extra\n");
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "trailing garbage");
    }
    {
        std::istringstream is("trace 2 0\n0 b 1\n"); // barrier + junk
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "trailing garbage");
    }
    {
        std::istringstream is("trace 2 0 7\n"); // header + junk
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "trailing garbage");
    }
    {
        std::istringstream is("trace 2 0\ntrace 2 0\n"); // two headers
        EXPECT_EXIT(TraceWorkload::parse(is, "x"),
                    testing::ExitedWithCode(1), "duplicate");
    }
}

TEST(Failures, StrictTraceParserStillAcceptsValidInput)
{
    std::istringstream is("# comment\n"
                          "trace 2 1\n"
                          "0 r 0x1000 # inline comment\n"
                          "0 w 1040\n"
                          "1 f ABC0\n"
                          "0 c 12\n"
                          "1 b # barriers comment too\n"
                          "0 b\n"
                          "1 a 0\n"
                          "1 l 0\n");
    TraceWorkload w = TraceWorkload::parse(is, "ok");
    EXPECT_EQ(w.numCores(), 2u);
    EXPECT_EQ(w.numLocks(), 1u);
    EXPECT_EQ(w.remaining(0), 4u);
    EXPECT_EQ(w.remaining(1), 4u);
    // 0x-prefixed and bare hex parse to the same address width rules.
    const MemOp r = w.next(0);
    EXPECT_EQ(r.kind, MemOp::Kind::Read);
    EXPECT_EQ(r.addr, 0x1000u);
}

TEST(Failures, MissingTraceFileIsFatal)
{
    EXPECT_EXIT(TraceWorkload::load("/nonexistent/path.trace"),
                testing::ExitedWithCode(1), "cannot open");
}

TEST(Failures, NetworkFactoryRoundTripsEveryName)
{
    // applyNetworkName -> networkNameFor -> makeNetwork must agree
    // for every registered topology, and a system must construct and
    // run on each (the harness sweeps rely on this round-trip).
    for (const auto &name : networkNames()) {
        SystemConfig cfg = tinyCfg(4);
        cfg.meshWidth = 2;
        applyNetworkName(cfg, name);
        ASSERT_STREQ(networkNameFor(cfg), name.c_str());
        Multicore m(cfg);
        EXPECT_STREQ(m.network().name(), name.c_str());
    }
}

TEST(Failures, UnknownNetworkNameIsFatal)
{
    SystemConfig cfg = tinyCfg();
    EXPECT_EXIT(applyNetworkName(cfg, "hypercube"),
                testing::ExitedWithCode(1),
                "unknown network 'hypercube'.*mesh.*torus.*ring.*xbar");
}

TEST(Failures, UnknownProtocolNameIsFatal)
{
    SystemConfig cfg = tinyCfg();
    EXPECT_EXIT(applyProtocolName(cfg, "mosi"),
                testing::ExitedWithCode(1),
                "unknown protocol 'mosi'.*lacc.*fullmap");
}

TEST(Failures, UnknownFaultPlanNameIsFatal)
{
    SystemConfig cfg = tinyCfg();
    EXPECT_EXIT(applyFaultName(cfg, "cosmic"),
                testing::ExitedWithCode(1),
                "unknown fault plan 'cosmic'.*none.*links.*soft.*storm");
}

TEST(Failures, RetryBudgetExhaustionAborts)
{
    // At fault rate 1.0 every link traversal faults (the fixed-point
    // threshold saturates), so no message can ever get through: the
    // transport must burn its retry budget and abort the run with a
    // catchable RunAbort, not hang or deliver garbage.
    SystemConfig cfg = tinyCfg(4);
    cfg.meshWidth = 2;
    cfg.faultKind = FaultKind::Links;
    cfg.faultRate = 1.0;
    try {
        runBenchmark("radix", cfg, 0.02);
        FAIL() << "retry budget never exhausted";
    } catch (const RunAbort &a) {
        EXPECT_EQ(a.kind(), AbortKind::FaultFatal);
        EXPECT_STREQ(a.tag(), "fault");
        EXPECT_NE(std::string(a.what()).find("retransmit budget"),
                  std::string::npos)
            << a.what();
    }
}

TEST(Failures, UnrecoverableDoubleBitAborts)
{
    // Soft errors on every directory touch: the double-bit fraction
    // guarantees an unrecoverable state (dirty-line or Modified-line
    // double flip) within a handful of transactions. Detected means
    // abort — never silent continuation.
    SystemConfig cfg = tinyCfg(4);
    cfg.meshWidth = 2;
    cfg.faultKind = FaultKind::Soft;
    cfg.faultRate = 1.0;
    try {
        runBenchmark("radix", cfg, 0.05);
        FAIL() << "unrecoverable double-bit never struck";
    } catch (const RunAbort &a) {
        EXPECT_EQ(a.kind(), AbortKind::FaultFatal);
        EXPECT_STREQ(a.tag(), "fault");
    }
}

TEST(Failures, InvalidFaultRateIsFatal)
{
    SystemConfig cfg = tinyCfg();
    cfg.faultRate = 1.5;
    EXPECT_EXIT(cfg.validate(), testing::ExitedWithCode(1),
                "faultRate");
}

} // namespace
} // namespace lacc
