/**
 * @file
 * End-to-end system tests: full runs of synthetic workloads with
 * barriers and locks, accounting invariants (the completion-time
 * breakdown telescopes to the core's finish time), directory/L1
 * consistency after a run, and Adapt1-way vs Adapt2-way behavior.
 */

#include <gtest/gtest.h>

#include "system/multicore.hh"
#include "workload/archetypes.hh"
#include "workload/suite.hh"
#include "workload/trace_file.hh"

namespace lacc {
namespace {

SystemConfig
sysCfg(std::uint32_t cores = 8)
{
    SystemConfig c;
    c.numCores = cores;
    c.meshWidth = cores >= 4 ? 4 : cores;
    c.clusterSize = cores >= 4 ? 4 : cores;
    c.numMemControllers = 2;
    c.l1iSizeKB = 2;
    c.l1dSizeKB = 4;
    c.l2SizeKB = 32;
    return c;
}

SyntheticSpec
mixedSpec(std::uint32_t cores)
{
    SyntheticSpec s;
    s.name = "mixed";
    s.numCores = cores;
    s.mix.privateHot = 0.35;
    s.mix.privateStream = 0.2;
    s.mix.sharedRO = 0.2;
    s.mix.sharedPC = 0.15;
    s.mix.lockRMW = 0.1;
    s.privateHotBytes = 2 << 10;
    s.privateStreamBytes = 16 << 10;
    s.sharedROBytes = 32 << 10;
    s.sharedPCBytes = 16 << 10;
    s.numLocks = 4;
    s.csLines = 2;
    s.opsPerPhase = 400;
    s.numPhases = 3;
    s.sharingDegree = 4;
    s.computePerMemop = 2;
    s.iFootprintLines = 8;
    return s;
}

/** Cross-checks every invariant we can assert after a run. */
void
checkSystemInvariants(Multicore &m, const SystemStats &st)
{
    const auto &cfg = m.config();

    // Functional correctness: every read saw the reference value.
    EXPECT_EQ(m.functionalErrors(), 0u);

    for (CoreId c = 0; c < cfg.numCores; ++c) {
        const auto &cs = st.perCore[c];
        // The breakdown telescopes exactly to the finish time.
        EXPECT_EQ(cs.latency.total(), cs.finishTime) << "core " << c;
        // Misses cannot exceed accesses.
        EXPECT_LE(cs.l1d.misses(), cs.l1d.accesses());
        EXPECT_LE(cs.misses.total(), cs.l1d.accesses());
    }

    // Directory/L1 consistency: every valid L1 line is registered at
    // its home; holder lists are exact; ACKwise counts match.
    std::uint64_t l1_lines = 0;
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        for (L1Cache *l1 : {&m.tile(c).l1d, &m.tile(c).l1i}) {
            l1->forEach([&](L1Cache::Entry e) {
                if (!e.valid())
                    return;
                ++l1_lines;
                bool found = false;
                for (CoreId h = 0; h < cfg.numCores && !found; ++h) {
                    const auto l2e = m.tile(h).l2.find(e.tag());
                    if (!l2e)
                        continue;
                    for (const CoreId hc : l2e.meta().holders)
                        found |= hc == c;
                }
                EXPECT_TRUE(found)
                    << "orphan L1 line " << std::hex << e.tag();
            });
        }
    }

    std::uint64_t holder_refs = 0;
    for (CoreId h = 0; h < cfg.numCores; ++h) {
        m.tile(h).l2.forEach([&](L2Cache::Entry e) {
            if (!e.valid())
                return;
            holder_refs += e.meta().holders.size();
            EXPECT_EQ(e.meta().sharers.count(),
                      e.meta().holders.size());
            if (e.meta().dstate == DirState::Exclusive) {
                EXPECT_EQ(e.meta().holders.size(), 1u);
                EXPECT_EQ(e.meta().holders[0], e.meta().owner);
            }
            if (e.meta().dstate == DirState::Uncached)
                EXPECT_TRUE(e.meta().holders.empty());
            // Every holder really has the line.
            for (const CoreId hc : e.meta().holders) {
                const bool in_d =
                    static_cast<bool>(m.tile(hc).l1d.find(e.tag()));
                const bool in_i =
                    static_cast<bool>(m.tile(hc).l1i.find(e.tag()));
                EXPECT_TRUE(in_d || in_i);
            }
        });
    }
    EXPECT_EQ(holder_refs, l1_lines)
        << "holder lists exactly mirror L1 contents";
}

TEST(System, MixedWorkloadRunsToCompletion)
{
    auto cfg = sysCfg();
    SyntheticWorkload wl(mixedSpec(8), cfg);
    Multicore m(cfg);
    const auto &st = m.run(wl);
    EXPECT_GT(st.completionTime(), 0u);
    for (const auto &cs : st.perCore) {
        EXPECT_GT(cs.instructions, 0u);
        EXPECT_GT(cs.finishTime, 0u);
    }
    checkSystemInvariants(m, st);
}

TEST(System, RunIsDeterministic)
{
    auto cfg = sysCfg();
    SyntheticWorkload w1(mixedSpec(8), cfg);
    SyntheticWorkload w2(mixedSpec(8), cfg);
    Multicore m1(cfg), m2(cfg);
    const auto &a = m1.run(w1);
    const auto &b = m2.run(w2);
    EXPECT_EQ(a.completionTime(), b.completionTime());
    EXPECT_EQ(a.network.flitHops, b.network.flitHops);
    EXPECT_EQ(a.protocol.promotions, b.protocol.promotions);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST(System, RunIsSingleUse)
{
    auto cfg = sysCfg();
    SyntheticWorkload wl(mixedSpec(8), cfg);
    Multicore m(cfg);
    m.run(wl);
    SyntheticWorkload wl2(mixedSpec(8), cfg);
    EXPECT_EXIT(m.run(wl2), testing::ExitedWithCode(1), "single-use");
}

TEST(System, BarrierSynchronizesAndCharges)
{
    // One fast core and one slow core meet at a barrier: the fast one
    // accrues synchronization time.
    auto cfg = sysCfg(2);
    cfg.meshWidth = 2;
    cfg.clusterSize = 2;
    std::vector<std::vector<MemOp>> streams(2);
    streams[0] = {MemOp::compute(10), MemOp::barrier(),
                  MemOp::compute(1)};
    streams[1] = {MemOp::compute(5000), MemOp::barrier(),
                  MemOp::compute(1)};
    TraceWorkload wl("barrier", streams, 0);
    Multicore m(cfg);
    const auto &st = m.run(wl);
    EXPECT_GT(st.perCore[0].latency.synchronization, 4000u);
    EXPECT_EQ(st.perCore[1].latency.synchronization, 0u);
    // Both finish at roughly the same time.
    const auto f0 = st.perCore[0].finishTime;
    const auto f1 = st.perCore[1].finishTime;
    EXPECT_LT(f0 > f1 ? f0 - f1 : f1 - f0, 200u);
    checkSystemInvariants(m, st);
}

TEST(System, LockMutualExclusionAndHandoff)
{
    auto cfg = sysCfg(4);
    cfg.meshWidth = 2;
    // All four cores serialize on one lock around a shared counter.
    const Addr counter = Addr{1} << 33;
    std::vector<std::vector<MemOp>> streams(4);
    for (int c = 0; c < 4; ++c) {
        for (int i = 0; i < 3; ++i) {
            streams[c].push_back(MemOp::lockAcquire(0));
            streams[c].push_back(MemOp::read(counter));
            streams[c].push_back(MemOp::write(counter));
            streams[c].push_back(MemOp::lockRelease(0));
        }
    }
    TraceWorkload wl("lock", streams, 1);
    Multicore m(cfg);
    const auto &st = m.run(wl);
    // Contention must show up as synchronization time somewhere.
    std::uint64_t sync = 0;
    for (const auto &cs : st.perCore)
        sync += cs.latency.synchronization;
    EXPECT_GT(sync, 0u);
    checkSystemInvariants(m, st);
}

TEST(System, AdaptiveBeatsBaselineOnLowLocalitySharing)
{
    // Producer-consumer data with single-use reads: the adaptive
    // protocol should cut network traffic relative to PCT=1 behavior.
    auto mk_spec = [&](std::uint32_t cores) {
        SyntheticSpec s;
        s.name = "pc";
        s.numCores = cores;
        s.mix.sharedPC = 0.8;
        s.mix.privateHot = 0.2;
        s.pcReadBurst = 1;
        s.pcWriteBurst = 1;
        s.sharedPCBytes = 16 << 10;
        s.opsPerPhase = 500;
        s.numPhases = 4;
        s.sharingDegree = 4;
        s.computePerMemop = 1;
        s.iFootprintLines = 4;
        return s;
    };
    auto cfg_base = sysCfg();
    cfg_base.classifierKind = ClassifierKind::AlwaysPrivate;
    auto cfg_adapt = sysCfg();
    cfg_adapt.classifierKind = ClassifierKind::Complete;

    SyntheticWorkload wb(mk_spec(8), cfg_base);
    SyntheticWorkload wa(mk_spec(8), cfg_adapt);
    Multicore mb(cfg_base), ma(cfg_adapt);
    const auto &sb = mb.run(wb);
    const auto &sa = ma.run(wa);

    EXPECT_GT(sa.protocol.remoteReads + sa.protocol.remoteWrites, 0u);
    EXPECT_LT(sa.network.flitHops, sb.network.flitHops);
    EXPECT_LT(sa.protocol.invalidationsSent,
              sb.protocol.invalidationsSent);
    checkSystemInvariants(ma, sa);
    checkSystemInvariants(mb, sb);
}

TEST(System, OneWayWorseOnPhaseShiftingWorkload)
{
    // Role-swapping private regions: one-way demotion can never
    // recover, two-way re-promotes (§5.4).
    auto mk_spec = [&](std::uint32_t cores) {
        SyntheticSpec s;
        s.name = "phase";
        s.numCores = cores;
        // Two 4 KB regions against a 4 KB L1-D: the streamed region
        // evicts (and demotes) lines every phase; after the swap the
        // previously-demoted region is the hot one.
        s.mix.privateHot = 0.7;
        s.mix.privateStream = 0.3;
        s.privateHotBytes = 4 << 10;
        s.privateStreamBytes = 4 << 10;
        s.privateHotUtil = 8;
        s.privateStreamUtil = 1;
        s.phaseShift = true;
        s.opsPerPhase = 1500;
        s.numPhases = 8;
        s.sharingDegree = 4;
        s.computePerMemop = 1;
        s.iFootprintLines = 4;
        return s;
    };
    auto cfg2 = sysCfg();
    cfg2.classifierKind = ClassifierKind::Complete;
    auto cfg1 = cfg2;
    cfg1.protocolKind = ProtocolKind::AdaptOneWay;

    SyntheticWorkload w2(mk_spec(8), cfg2);
    SyntheticWorkload w1(mk_spec(8), cfg1);
    Multicore m2(cfg2), m1(cfg1);
    const auto &s2 = m2.run(w2);
    const auto &s1 = m1.run(w1);

    EXPECT_EQ(s1.protocol.promotions, 0u);
    EXPECT_GT(s2.protocol.promotions, 0u);
    EXPECT_GT(s1.completionTime(), s2.completionTime());
}

TEST(System, IfetchWalkerTouchesInstructionPath)
{
    auto cfg = sysCfg();
    auto spec = mixedSpec(8);
    spec.iFootprintLines = 16;
    SyntheticWorkload wl(spec, cfg);
    Multicore m(cfg);
    const auto &st = m.run(wl);
    std::uint64_t ifetches = 0, l1i_accesses = 0;
    for (const auto &cs : st.perCore) {
        ifetches += cs.ifetches;
        l1i_accesses += cs.l1i.accesses();
    }
    EXPECT_GT(ifetches, 0u);
    EXPECT_GT(l1i_accesses, 0u);
    EXPECT_GT(st.energy.l1i, 0.0);
    // Instruction pages were classified as such.
    EXPECT_GT(m.pageTable().countClass(PageClass::Instruction), 0u);
}

TEST(System, EnergyComponentsAllPopulated)
{
    auto cfg = sysCfg();
    SyntheticWorkload wl(mixedSpec(8), cfg);
    Multicore m(cfg);
    const auto &st = m.run(wl);
    EXPECT_GT(st.energy.l1i, 0.0);
    EXPECT_GT(st.energy.l1d, 0.0);
    EXPECT_GT(st.energy.l2, 0.0);
    EXPECT_GT(st.energy.directory, 0.0);
    EXPECT_GT(st.energy.router, 0.0);
    EXPECT_GT(st.energy.link, 0.0);
    EXPECT_GT(st.energy.total(), 0.0);
}

TEST(System, UtilizationHistogramsPopulated)
{
    auto cfg = sysCfg();
    SyntheticWorkload wl(mixedSpec(8), cfg);
    Multicore m(cfg);
    const auto &st = m.run(wl);
    EXPECT_GT(st.evictionUtil.total() + st.invalidationUtil.total(), 0u);
}

TEST(System, SuiteBenchmarksRunOnSmallSystem)
{
    // Every named benchmark completes with invariants intact on a
    // small 8-core system at a tiny op budget.
    auto cfg = sysCfg();
    for (const auto &name : benchmarkNames()) {
        auto wl = makeBenchmark(name, cfg, 0.05);
        Multicore m(cfg);
        const auto &st = m.run(*wl);
        EXPECT_GT(st.completionTime(), 0u) << name;
        EXPECT_EQ(m.functionalErrors(), 0u) << name;
        for (const auto &cs : st.perCore)
            EXPECT_EQ(cs.latency.total(), cs.finishTime) << name;
    }
}

TEST(System, StaticNucaAblationRuns)
{
    auto cfg = sysCfg();
    cfg.rnucaEnabled = false;
    SyntheticWorkload wl(mixedSpec(8), cfg);
    Multicore m(cfg);
    const auto &st = m.run(wl);
    EXPECT_GT(st.completionTime(), 0u);
    EXPECT_EQ(m.stats().protocol.rehomeFlushes, 0u)
        << "no re-homing without R-NUCA";
    checkSystemInvariants(m, st);
}

TEST(System, RnucaKeepsPrivateDataLocal)
{
    // With R-NUCA, private pages home at their owner: local L2 slice
    // accesses generate no network traffic for the L1<->L2 path, so a
    // private-only workload should use far fewer flit-hops than the
    // static-NUCA ablation.
    auto mk_spec = [&]() {
        SyntheticSpec s;
        s.name = "privonly";
        s.numCores = 8;
        s.mix.privateStream = 1.0;
        s.privateStreamBytes = 16 << 10;
        s.privateStreamUtil = 2;
        s.privateWriteFrac = 0.2;
        s.opsPerPhase = 500;
        s.numPhases = 2;
        s.sharingDegree = 4;
        s.computePerMemop = 0;
        s.iFootprintLines = 0;
        return s;
    };
    auto cfg_r = sysCfg();
    auto cfg_s = sysCfg();
    cfg_s.rnucaEnabled = false;
    SyntheticWorkload wr(mk_spec(), cfg_r);
    SyntheticWorkload ws(mk_spec(), cfg_s);
    Multicore mr(cfg_r), ms(cfg_s);
    const auto &sr = mr.run(wr);
    const auto &ss = ms.run(ws);
    EXPECT_LT(sr.network.flitHops, ss.network.flitHops / 2);
    EXPECT_LT(sr.completionTime(), ss.completionTime());
}

TEST(System, CompleteShortcutMatchesOrBeatsComplete)
{
    // The learning short-cut must not break anything; on a
    // sharing-heavy workload it should reduce (or at least not
    // increase) the number of wrong-mode private grants.
    auto cfg_a = sysCfg();
    cfg_a.classifierKind = ClassifierKind::Complete;
    auto cfg_b = cfg_a;
    cfg_b.completeLearningShortcut = true;
    SyntheticWorkload wa(mixedSpec(8), cfg_a);
    SyntheticWorkload wb(mixedSpec(8), cfg_b);
    Multicore ma(cfg_a), mb(cfg_b);
    const auto &sa = ma.run(wa);
    const auto &sb = mb.run(wb);
    EXPECT_EQ(ma.functionalErrors(), 0u);
    EXPECT_EQ(mb.functionalErrors(), 0u);
    // Both complete; shapes may differ slightly.
    EXPECT_GT(sa.completionTime(), 0u);
    EXPECT_GT(sb.completionTime(), 0u);
}

TEST(Warmup, StatsResetAtWarmupBarrier)
{
    // With a warm-up phase, cold misses land in the warm-up epoch and
    // the measured epoch starts clean: dramatically fewer cold misses
    // and a much smaller completion time than the unwarmed run.
    auto cfg = sysCfg();
    auto spec = mixedSpec(8);
    spec.numPhases = 3;

    auto warm_spec = spec;
    warm_spec.warmupPhases = 1;
    auto cold_spec = spec;
    cold_spec.warmupPhases = 0;

    SyntheticWorkload warm(warm_spec, cfg);
    SyntheticWorkload cold(cold_spec, cfg);
    Multicore mw(cfg), mc(cfg);
    const auto &sw = mw.run(warm);
    const auto &sc = mc.run(cold);

    const auto warm_cold_misses = sw.totalMisses().get(MissType::Cold);
    const auto cold_cold_misses = sc.totalMisses().get(MissType::Cold);
    EXPECT_LT(warm_cold_misses, cold_cold_misses / 4);
    EXPECT_LT(sw.completionTime(), sc.completionTime());
    // Breakdown invariants hold in the measured epoch too.
    for (const auto &cs : sw.perCore)
        EXPECT_EQ(cs.latency.total(), cs.finishTime);
    checkSystemInvariants(mw, sw);
}

TEST(Warmup, SweepCoversFootprint)
{
    // After the warm-up phase the DRAM has served (nearly) the whole
    // footprint, so the measured epoch performs almost no fetches.
    auto cfg = sysCfg();
    auto spec = mixedSpec(8);
    spec.numPhases = 3;
    spec.warmupPhases = 1;
    SyntheticWorkload wl(spec, cfg);
    Multicore m(cfg);
    const auto &st = m.run(wl);
    // Measured-epoch fetches are a small residue of total traffic
    // (the tiny test L2 still churns a little).
    EXPECT_LT(st.protocol.dramFetches,
              st.totalL1dAccesses() / 20 + 200);
}

TEST(Warmup, TraceWorkloadsUnaffected)
{
    // Default warmupBarriers() == 0: nothing resets.
    auto cfg = sysCfg(2);
    cfg.meshWidth = 2;
    cfg.clusterSize = 2;
    std::vector<std::vector<MemOp>> streams(2);
    streams[0] = {MemOp::compute(10), MemOp::barrier(),
                  MemOp::compute(10)};
    streams[1] = {MemOp::compute(10), MemOp::barrier(),
                  MemOp::compute(10)};
    TraceWorkload wl("nowarm", streams, 0);
    Multicore m(cfg);
    const auto &st = m.run(wl);
    // Compute from *both* sides of the barrier is retained.
    EXPECT_GE(st.perCore[0].latency.compute, 20u);
}

TEST(System, WorkloadCoreMismatchIsFatal)
{
    auto cfg = sysCfg(8);
    auto spec = mixedSpec(4);
    SystemConfig cfg4 = sysCfg(4);
    cfg4.meshWidth = 2;
    cfg4.clusterSize = 2;
    SyntheticWorkload wl(spec, cfg4);
    Multicore m(cfg);
    EXPECT_EXIT(m.run(wl), testing::ExitedWithCode(1), "cores");
}

} // namespace
} // namespace lacc
