/**
 * @file
 * Unit tests for the reporting helpers (table formatting, numeric
 * formatting, geometric mean) and the experiment runner defaults.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "system/experiment.hh"
#include "system/report.hh"

namespace lacc {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"A", "LongHeader"});
    t.addRow({"xx", "1"});
    t.addRow({"y", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Every line equally wide (trailing pad).
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
    EXPECT_NE(out.find("LongHeader"), std::string::npos);
}

TEST(Table, RowArityMismatchPanics)
{
    Table t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Fmt, FixedPrecision)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(1.0, 3), "1.000");
    EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Percent)
{
    EXPECT_EQ(fmtPct(0.1534, 1), "15.3%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Geomean, InsensitiveToOrder)
{
    EXPECT_NEAR(geomean({0.5, 2.0, 1.0}), geomean({1.0, 0.5, 2.0}),
                1e-12);
}

TEST(Experiment, DefaultConfigIsTable1)
{
    const auto cfg = defaultConfig();
    EXPECT_EQ(cfg.numCores, 64u);
    EXPECT_EQ(cfg.pct, 4u);
    EXPECT_EQ(cfg.classifierKind, ClassifierKind::Limited);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(Experiment, OpScaleEnvParsing)
{
    unsetenv("LACC_SCALE");
    EXPECT_DOUBLE_EQ(opScaleFromEnv(), 1.0);
    setenv("LACC_SCALE", "0.5", 1);
    EXPECT_DOUBLE_EQ(opScaleFromEnv(), 0.5);
    setenv("LACC_SCALE", "garbage", 1);
    EXPECT_DOUBLE_EQ(opScaleFromEnv(), 1.0);
    unsetenv("LACC_SCALE");
}

TEST(Experiment, RunBenchmarkProducesStats)
{
    SystemConfig cfg = defaultConfig();
    cfg.numCores = 16;
    cfg.meshWidth = 4;
    cfg.numMemControllers = 4;
    const auto r = runBenchmark("water-sp", cfg, 0.05);
    EXPECT_GT(r.completionTime, 0u);
    EXPECT_GT(r.energyTotal, 0.0);
    EXPECT_EQ(r.functionalErrors, 0u);
    EXPECT_EQ(r.stats.perCore.size(), 16u);

    // sim_ops (the throughput numerator) sums the per-core retired
    // instruction counts.
    std::uint64_t instructions = 0;
    for (const auto &c : r.stats.perCore)
        instructions += c.instructions;
    EXPECT_GT(r.simOps, 0u);
    EXPECT_EQ(r.simOps, instructions);
}

TEST(Experiment, SimOpsRoundTripsThroughJson)
{
    SystemConfig cfg = defaultConfig();
    cfg.numCores = 16;
    cfg.meshWidth = 4;
    cfg.numMemControllers = 4;
    const auto r = runBenchmark("water-sp", cfg, 0.02);
    ASSERT_GT(r.simOps, 0u);

    const Json j = toJson(r);
    EXPECT_EQ(j.at("sim_ops").asUint(), r.simOps);
    const RunResult back = runResultFromJson(j);
    EXPECT_EQ(back.simOps, r.simOps);

    // Schema-v1 documents predate sim_ops: reconstruction must not
    // require it.
    Json legacy = Json::object();
    for (const auto &[key, value] : j.items())
        if (key != "sim_ops")
            legacy[key] = value;
    const RunResult old = runResultFromJson(legacy);
    EXPECT_EQ(old.simOps, 0u);
    EXPECT_EQ(old.completionTime, r.completionTime);
}

} // namespace
} // namespace lacc
