/**
 * @file
 * Unit tests for R-NUCA page classification and home placement.
 */

#include <gtest/gtest.h>

#include "rnuca/page_table.hh"
#include "rnuca/placement.hh"

namespace lacc {
namespace {

TEST(PageTable, FirstTouchIsPrivate)
{
    PageTable pt;
    auto r = pt.access(0x100, 5, false);
    EXPECT_EQ(r.record.cls, PageClass::PrivateData);
    EXPECT_EQ(r.record.owner, 5);
    EXPECT_FALSE(r.rehomed);
}

TEST(PageTable, SameCoreStaysPrivate)
{
    PageTable pt;
    pt.access(0x100, 5, false);
    auto r = pt.access(0x100, 5, false);
    EXPECT_EQ(r.record.cls, PageClass::PrivateData);
    EXPECT_FALSE(r.rehomed);
}

TEST(PageTable, SecondCoreTriggersRehome)
{
    PageTable pt;
    pt.access(0x100, 5, false);
    auto r = pt.access(0x100, 9, false);
    EXPECT_EQ(r.record.cls, PageClass::SharedData);
    EXPECT_TRUE(r.rehomed);
    EXPECT_EQ(r.oldOwner, 5);
    // Further accesses stay shared with no more rehoming.
    auto r2 = pt.access(0x100, 5, false);
    EXPECT_EQ(r2.record.cls, PageClass::SharedData);
    EXPECT_FALSE(r2.rehomed);
}

TEST(PageTable, IfetchClassifiesInstruction)
{
    PageTable pt;
    auto r = pt.access(0x200, 3, true);
    EXPECT_EQ(r.record.cls, PageClass::Instruction);
    // Instruction pages are never re-homed by other fetchers.
    auto r2 = pt.access(0x200, 60, true);
    EXPECT_EQ(r2.record.cls, PageClass::Instruction);
    EXPECT_FALSE(r2.rehomed);
}

TEST(PageTable, LookupAndCounts)
{
    PageTable pt;
    EXPECT_EQ(pt.lookup(0x1), nullptr);
    pt.access(0x1, 0, false);
    pt.access(0x2, 0, false);
    pt.access(0x2, 1, false);
    pt.access(0x3, 0, true);
    ASSERT_NE(pt.lookup(0x1), nullptr);
    EXPECT_EQ(pt.countClass(PageClass::PrivateData), 1u);
    EXPECT_EQ(pt.countClass(PageClass::SharedData), 1u);
    EXPECT_EQ(pt.countClass(PageClass::Instruction), 1u);
    EXPECT_EQ(pt.size(), 3u);
}

TEST(Placement, PrivateDataHomesAtOwner)
{
    SystemConfig cfg;
    Placement p(cfg);
    PageTable::Record rec{PageClass::PrivateData, 17};
    EXPECT_EQ(p.home(0x1234, rec, 3), 17);
    EXPECT_EQ(p.home(0x9999, rec, 40), 17);
}

TEST(Placement, SharedDataInterleavesByLine)
{
    SystemConfig cfg;
    Placement p(cfg);
    PageTable::Record rec{PageClass::SharedData, kInvalidCore};
    // Consecutive lines round-robin across all 64 slices.
    EXPECT_EQ(p.home(0, rec, 0), 0);
    EXPECT_EQ(p.home(1, rec, 0), 1);
    EXPECT_EQ(p.home(63, rec, 0), 63);
    EXPECT_EQ(p.home(64, rec, 0), 0);
    // Requester-independent.
    EXPECT_EQ(p.home(7, rec, 12), p.home(7, rec, 55));
}

TEST(Placement, InstructionStaysInCluster)
{
    SystemConfig cfg; // 64 cores, clusters of 4
    Placement p(cfg);
    PageTable::Record rec{PageClass::Instruction, kInvalidCore};
    for (CoreId c = 0; c < 64; ++c) {
        const CoreId h = p.home(0x42, rec, c);
        EXPECT_EQ(h / 4, c / 4) << "core " << c;
    }
}

TEST(Placement, InstructionRotationalInterleaving)
{
    SystemConfig cfg;
    Placement p(cfg);
    PageTable::Record rec{PageClass::Instruction, kInvalidCore};
    // Within one cluster, consecutive lines hit different members.
    const CoreId h0 = p.home(0, rec, 0);
    const CoreId h1 = p.home(1, rec, 0);
    const CoreId h2 = p.home(2, rec, 0);
    const CoreId h3 = p.home(3, rec, 0);
    EXPECT_NE(h0, h1);
    EXPECT_NE(h1, h2);
    EXPECT_NE(h2, h3);
    // The same line maps to a different member in another cluster
    // (rotational interleaving).
    const CoreId other = p.home(0, rec, 4);
    EXPECT_EQ(other / 4, 1u);
    EXPECT_NE(other % 4, h0 % 4);
}

TEST(Placement, StaticNucaAblationHashesEverything)
{
    SystemConfig cfg;
    cfg.rnucaEnabled = false;
    Placement p(cfg);
    EXPECT_FALSE(p.enabled());
    PageTable::Record priv{PageClass::PrivateData, 17};
    PageTable::Record instr{PageClass::Instruction, kInvalidCore};
    // All classes collapse onto the hash home.
    EXPECT_EQ(p.home(0x1234, priv, 3), p.sharedHome(0x1234));
    EXPECT_EQ(p.home(0x1234, instr, 3), p.sharedHome(0x1234));
    EXPECT_EQ(p.home(0x1234, instr, 60), p.sharedHome(0x1234));
}

TEST(Placement, ClusterOf)
{
    SystemConfig cfg;
    Placement p(cfg);
    EXPECT_EQ(p.clusterOf(0), 0u);
    EXPECT_EQ(p.clusterOf(3), 0u);
    EXPECT_EQ(p.clusterOf(4), 1u);
    EXPECT_EQ(p.clusterOf(63), 15u);
}

} // namespace
} // namespace lacc
