/**
 * @file
 * Tests for the §3.6 storage-overhead model: reproduces the paper's
 * arithmetic exactly (18 KB Limited_3, 192 KB Complete, 12 KB
 * ACKwise_4, 32 KB full-map, 0.19 KB L1 bits, 5.7% / 60% overheads).
 */

#include <gtest/gtest.h>

#include "core/storage_model.hh"
#include "system/experiment.hh"

namespace lacc {
namespace {

TEST(Storage, BitsFor)
{
    EXPECT_EQ(StorageModel::bitsFor(1), 0u);
    EXPECT_EQ(StorageModel::bitsFor(2), 1u);
    EXPECT_EQ(StorageModel::bitsFor(4), 2u);
    EXPECT_EQ(StorageModel::bitsFor(16), 4u);
    EXPECT_EQ(StorageModel::bitsFor(64), 6u);
    EXPECT_EQ(StorageModel::bitsFor(5), 3u);
}

TEST(Storage, DirectoryEntriesPerCore)
{
    StorageModel m(defaultConfig());
    // 256 KB / 64 B = 4096 entries (one per L2 line).
    EXPECT_EQ(m.dirEntriesPerCore(), 4096u);
}

TEST(Storage, L1UtilizationBits)
{
    StorageModel m(defaultConfig());
    EXPECT_EQ(m.l1UtilBitsPerLine(), 2u); // PCT = 4
    // Paper: 2/512 x (16+32) KB = 0.1875 KB.
    EXPECT_NEAR(m.l1OverheadKB(), 0.1875, 1e-9);
}

TEST(Storage, LimitedThreeIs18KB)
{
    StorageModel m(defaultConfig());
    // 12 bits per tracked core (1 mode + 4 util + 1 RAT + 6 core id).
    EXPECT_EQ(m.localityBitsPerTrackedCore(true), 12u);
    EXPECT_EQ(m.limitedBitsPerEntry(), 36u);
    EXPECT_NEAR(m.limitedOverheadKB(), 18.0, 1e-9);
}

TEST(Storage, CompleteIs192KB)
{
    StorageModel m(defaultConfig());
    // 6 bits per core x 64 cores = 384 bits per entry.
    EXPECT_EQ(m.localityBitsPerTrackedCore(false), 6u);
    EXPECT_EQ(m.completeBitsPerEntry(), 384u);
    EXPECT_NEAR(m.completeOverheadKB(), 192.0, 1e-9);
}

TEST(Storage, AckwiseAndFullMap)
{
    StorageModel m(defaultConfig());
    EXPECT_EQ(m.ackwiseBitsPerEntry(), 24u); // 4 x 6 bits
    EXPECT_NEAR(m.ackwiseKB(), 12.0, 1e-9);
    EXPECT_EQ(m.fullMapBitsPerEntry(), 64u);
    EXPECT_NEAR(m.fullMapKB(), 32.0, 1e-9);
}

TEST(Storage, LimitedPlusAckwiseBeatsFullMap)
{
    StorageModel m(defaultConfig());
    // 12 + 18 KB < 32 KB (§3.6 headline claim).
    EXPECT_LT(m.ackwiseKB() + m.limitedOverheadKB(), m.fullMapKB());
}

TEST(Storage, OverheadPercentages)
{
    StorageModel m(defaultConfig());
    // Paper: 5.7% over baseline ACKwise_4 for Limited_3...
    EXPECT_NEAR(m.overheadPercentVsAckwise(false), 5.7, 0.2);
    // ... and 60% for the Complete classifier.
    EXPECT_NEAR(m.overheadPercentVsAckwise(true), 60.0, 2.0);
}

TEST(Storage, ScalesWithCoreCount)
{
    auto cfg = defaultConfig();
    cfg.numCores = 1024;
    cfg.meshWidth = 32;
    StorageModel m(cfg);
    // Complete classifier becomes >10x the cache budget territory
    // while Limited_k grows only with log2(cores).
    EXPECT_GT(m.completeOverheadKB(), 5 * m.cacheKB());
    EXPECT_EQ(m.localityBitsPerTrackedCore(true), 16u); // 10-bit id
    EXPECT_LT(m.limitedOverheadKB(), 30.0);
}

} // namespace
} // namespace lacc
