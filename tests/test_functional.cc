/**
 * @file
 * Property-based functional-correctness tests: randomized trace
 * workloads swept over protocol variants, classifiers, PCT values,
 * and core counts (TEST_P). Every read must return the value of the
 * most recent write in directory serialization order — the same
 * functional-correctness argument the paper makes for its Graphite
 * runs (§4.1) — and all accounting invariants must hold.
 */

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "system/multicore.hh"
#include "workload/trace_file.hh"

namespace lacc {
namespace {

SystemConfig
fuzzCfg(std::uint32_t cores)
{
    SystemConfig c;
    c.numCores = cores;
    c.meshWidth = cores >= 4 ? 4 : cores;
    c.clusterSize = cores >= 4 ? 4 : cores;
    c.numMemControllers = 2;
    c.l1iSizeKB = 1;
    c.l1dSizeKB = 2; // tiny: maximizes evictions and conflicts
    c.l2SizeKB = 16; // tiny: exercises L2 evictions + inclusion
    return c;
}

/**
 * Deterministic random trace: a small, hot address space shared by
 * all cores so invalidations, upgrades, write-backs, L2 evictions,
 * lock transfers, and barriers all fire constantly.
 */
TraceWorkload
randomTrace(std::uint32_t cores, std::uint64_t seed,
            std::uint32_t ops_per_core)
{
    Rng meta(seed);
    const Addr shared_base = Addr{1} << 33;
    const std::uint32_t shared_lines = 96;
    const Addr private_stride = Addr{1} << 22; // distinct pages/core

    std::vector<std::vector<MemOp>> streams(cores);
    const std::uint32_t barrier_every = ops_per_core / 4 + 1;
    for (std::uint32_t c = 0; c < cores; ++c) {
        Rng rng(seed * 977 + c);
        std::uint32_t since_barrier = 0;
        bool lock_held = false;
        for (std::uint32_t i = 0; i < ops_per_core; ++i) {
            const auto roll = rng.below(100);
            if (roll < 40) {
                // Shared-region access (hot, conflict-heavy).
                const Addr a = shared_base +
                               rng.below(shared_lines) * 64 +
                               rng.below(8) * 8;
                streams[c].push_back(rng.chance(0.4) ? MemOp::write(a)
                                                     : MemOp::read(a));
            } else if (roll < 70) {
                // Private-region access.
                const Addr a = (Addr{1} << 34) + c * private_stride +
                               rng.below(256) * 64 + rng.below(8) * 8;
                streams[c].push_back(rng.chance(0.3) ? MemOp::write(a)
                                                     : MemOp::read(a));
            } else if (roll < 80) {
                streams[c].push_back(
                    MemOp::compute(1 + static_cast<std::uint32_t>(
                                           rng.below(5))));
            } else if (roll < 90 && !lock_held) {
                streams[c].push_back(MemOp::lockAcquire(
                    static_cast<std::uint32_t>(rng.below(2))));
                // Critical-section body on a contended line.
                const Addr a = shared_base + rng.below(4) * 64;
                streams[c].push_back(MemOp::read(a));
                streams[c].push_back(MemOp::write(a));
                lock_held = true;
            } else if (lock_held) {
                // Close the section (lock id recovered from the
                // acquire two ops back is overkill; use both ids).
                for (auto it = streams[c].rbegin();
                     it != streams[c].rend(); ++it) {
                    if (it->kind == MemOp::Kind::LockAcquire) {
                        streams[c].push_back(
                            MemOp::lockRelease(it->lockId));
                        break;
                    }
                }
                lock_held = false;
            } else {
                const Addr a = shared_base + rng.below(shared_lines) * 64;
                streams[c].push_back(MemOp::read(a));
            }
            if (++since_barrier >= barrier_every) {
                if (lock_held) {
                    for (auto it = streams[c].rbegin();
                         it != streams[c].rend(); ++it) {
                        if (it->kind == MemOp::Kind::LockAcquire) {
                            streams[c].push_back(
                                MemOp::lockRelease(it->lockId));
                            break;
                        }
                    }
                    lock_held = false;
                }
                streams[c].push_back(MemOp::barrier());
                since_barrier = 0;
            }
        }
        if (lock_held) {
            for (auto it = streams[c].rbegin(); it != streams[c].rend();
                 ++it) {
                if (it->kind == MemOp::Kind::LockAcquire) {
                    streams[c].push_back(MemOp::lockRelease(it->lockId));
                    break;
                }
            }
        }
        // Equalize barrier counts (each core emitted the same number
        // by construction: ops_per_core / barrier_every).
    }
    (void)meta;
    return TraceWorkload("fuzz", std::move(streams), 2);
}

struct FuzzParam
{
    ClassifierKind classifier;
    ProtocolKind protocol;
    DirectoryKind directory;
    std::uint32_t pct;
    std::uint32_t cores;
    std::uint64_t seed;
};

std::string
paramName(const testing::TestParamInfo<FuzzParam> &info)
{
    const auto &p = info.param;
    std::string s = classifierKindName(p.classifier);
    s += p.protocol == ProtocolKind::AdaptOneWay ? "_1way" : "_2way";
    s += p.directory == DirectoryKind::FullMap ? "_fullmap" : "_ackwise";
    s += "_pct" + std::to_string(p.pct);
    s += "_c" + std::to_string(p.cores);
    s += "_s" + std::to_string(p.seed);
    return s;
}

class FunctionalFuzz : public testing::TestWithParam<FuzzParam>
{};

TEST_P(FunctionalFuzz, ReadsMatchReferenceAndInvariantsHold)
{
    const auto &p = GetParam();
    auto cfg = fuzzCfg(p.cores);
    cfg.classifierKind = p.classifier;
    cfg.protocolKind = p.protocol;
    cfg.directoryKind = p.directory;
    cfg.pct = p.pct;
    cfg.ackwisePointers = 2; // force broadcast overflow paths

    auto wl = randomTrace(p.cores, p.seed, 1500);
    Multicore m(cfg);
    m.setFunctionalChecks(true);
    const auto &st = m.run(wl);

    EXPECT_EQ(m.functionalErrors(), 0u);
    for (CoreId c = 0; c < p.cores; ++c) {
        const auto &cs = st.perCore[c];
        EXPECT_EQ(cs.latency.total(), cs.finishTime) << "core " << c;
    }

    // Directory consistency.
    for (CoreId h = 0; h < p.cores; ++h) {
        m.tile(h).l2.forEach([&](L2Cache::Entry e) {
            if (!e.valid())
                return;
            ASSERT_EQ(e.meta().sharers.count(),
                      e.meta().holders.size());
            for (const CoreId hc : e.meta().holders) {
                const bool present =
                    m.tile(hc).l1d.find(e.tag()) ||
                    m.tile(hc).l1i.find(e.tag());
                ASSERT_TRUE(present);
            }
        });
    }
}

INSTANTIATE_TEST_SUITE_P(
    ClassifierSweep, FunctionalFuzz,
    testing::Values(
        FuzzParam{ClassifierKind::AlwaysPrivate, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 1, 8, 1},
        FuzzParam{ClassifierKind::Complete, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 4, 8, 2},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 4, 8, 3},
        FuzzParam{ClassifierKind::Timestamp, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 4, 8, 4},
        FuzzParam{ClassifierKind::Complete, ProtocolKind::AdaptOneWay,
                  DirectoryKind::Ackwise, 4, 8, 5},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::AdaptOneWay,
                  DirectoryKind::Ackwise, 4, 8, 6}),
    paramName);

INSTANTIATE_TEST_SUITE_P(
    PctSweep, FunctionalFuzz,
    testing::Values(
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 1, 8, 10},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 2, 8, 11},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 3, 8, 12},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 6, 8, 13},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 8, 8, 14},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 16, 8, 15}),
    paramName);

INSTANTIATE_TEST_SUITE_P(
    TopologySweep, FunctionalFuzz,
    testing::Values(
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 4, 4, 20},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 4, 16, 21},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::FullMap, 4, 8, 22},
        FuzzParam{ClassifierKind::Complete, ProtocolKind::Adaptive,
                  DirectoryKind::FullMap, 4, 16, 23},
        FuzzParam{ClassifierKind::AlwaysPrivate, ProtocolKind::Adaptive,
                  DirectoryKind::FullMap, 1, 16, 24}),
    paramName);

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, FunctionalFuzz,
    testing::Values(
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 4, 8, 100},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 4, 8, 101},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 4, 8, 102},
        FuzzParam{ClassifierKind::Limited, ProtocolKind::Adaptive,
                  DirectoryKind::Ackwise, 4, 8, 103}),
    paramName);

} // namespace
} // namespace lacc
