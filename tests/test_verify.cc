/**
 * @file
 * Tests for the verification layer (src/verify/): the invariant
 * checkers themselves, the litmus regression corpus in tests/litmus/
 * replayed under every factory protocol, a fixed-seed fuzz smoke, and
 * the bounded-state enumerator's exhaustiveness on the 1-line config.
 */

#include <filesystem>
#include <vector>

#include <gtest/gtest.h>

#include "protocol/factory.hh"
#include "system/multicore.hh"
#include "verify/enumerate.hh"
#include "verify/fuzz.hh"
#include "verify/invariants.hh"
#include "workload/trace_file.hh"

namespace lacc {
namespace {

using verify::checkAll;
using verify::checkInvariants;
using verify::checkTrace;
using verify::fuzzConfig;

constexpr Addr kA = Addr{1} << 33;

// ---------------------------------------------------------------------------
// Invariant checkers (verify/invariants.hh)
// ---------------------------------------------------------------------------

TEST(Invariants, CleanSystemHasNoViolations)
{
    Multicore m(fuzzConfig(4));
    EXPECT_TRUE(checkAll(m).empty());
    m.testAccess(0, kA, false);
    m.testAccess(1, kA, false);
    m.testAccess(2, kA, true);
    EXPECT_TRUE(checkAll(m).empty());
}

TEST(Invariants, DetectsPhantomHolder)
{
    // Self-test: corrupt the holder oracle with a core that has no L1
    // copy and the checker must flag it (and the sharer-count
    // mismatch that comes with an untracked phantom).
    Multicore m(fuzzConfig(4));
    m.testAccess(0, kA, false);
    bool corrupted = false;
    for (std::uint32_t h = 0; h < 4 && !corrupted; ++h) {
        auto e = m.tile(static_cast<CoreId>(h)).l2.find(kA >> 6);
        if (!e)
            continue;
        e.meta().holders.insert(3); // core 3 never touched kA
        corrupted = true;
    }
    ASSERT_TRUE(corrupted);
    EXPECT_FALSE(checkInvariants(m).empty());
}

TEST(Invariants, DetectsDualWriters)
{
    // Two Modified copies of one line is the canonical single-writer
    // violation.
    Multicore m(fuzzConfig(4));
    m.testAccess(0, kA, true);
    m.testAccess(1, kA, true); // invalidates core 0's copy...
    auto stale = m.tile(0).l1d.find(kA >> 6);
    ASSERT_FALSE(stale);
    m.testAccess(0, kA, false); // ...so resurrect one and corrupt it
    auto e = m.tile(0).l1d.find(kA >> 6);
    ASSERT_TRUE(e);
    e.meta().state = L1State::Modified;
    EXPECT_FALSE(checkInvariants(m).empty());
}

// ---------------------------------------------------------------------------
// Litmus corpus replay (tests/litmus/*.trace)
// ---------------------------------------------------------------------------

std::vector<std::filesystem::path>
corpusTraces()
{
    std::vector<std::filesystem::path> out;
    for (const auto &ent :
         std::filesystem::directory_iterator(LACC_LITMUS_DIR))
        if (ent.path().extension() == ".trace")
            out.push_back(ent.path());
    std::sort(out.begin(), out.end());
    return out;
}

TEST(LitmusCorpus, CorpusIsNonEmpty)
{
    // The dual-holder pins must exist; an empty directory would turn
    // the replay test below into a silent no-op.
    EXPECT_GE(corpusTraces().size(), 4u);
}

TEST(LitmusCorpus, EveryTraceCleanUnderEveryProtocol)
{
    for (const auto &path : corpusTraces()) {
        const TraceWorkload w = TraceWorkload::load(path.string());
        for (const auto &proto : protocolNames()) {
            SystemConfig cfg = fuzzConfig(w.numCores());
            applyProtocolName(cfg, proto);
            const auto viol =
                checkTrace(w, cfg, /*stepwise=*/true);
            for (const auto &v : viol)
                ADD_FAILURE() << path.filename().string() << " x "
                              << proto << ": " << v;
        }
    }
}

// ---------------------------------------------------------------------------
// Fuzzer (verify/fuzz.hh)
// ---------------------------------------------------------------------------

TEST(Fuzz, FixedSeedSmokeIsClean)
{
    verify::FuzzOptions opt;
    opt.seed = 7;
    opt.iters = 2;
    opt.cores = 4;
    opt.opsPerCore = 16;
    const verify::FuzzResult res = verify::runFuzz(opt);
    // 2 traces x every protocol x {mesh, xbar}.
    EXPECT_EQ(res.runs, 2u * protocolNames().size() * 2u);
    EXPECT_EQ(res.failures, 0u) << res.firstReport;
}

TEST(Fuzz, ShrinkerPreservesLockBalance)
{
    // A trace whose violation is injected via a checker run on a
    // corrupted config is hard to stage; instead verify the shrinker
    // contract structurally: shrinking a clean trace is a no-op
    // fixpoint (nothing reproduces, nothing removed).
    std::vector<std::vector<MemOp>> streams(2);
    streams[0] = {MemOp::lockAcquire(0), MemOp::write(kA),
                  MemOp::lockRelease(0)};
    streams[1] = {MemOp::lockAcquire(0), MemOp::read(kA),
                  MemOp::lockRelease(0)};
    const TraceWorkload w("lockpair", streams, 1);
    const TraceWorkload min =
        verify::shrinkTrace(w, fuzzConfig(2), true);
    EXPECT_EQ(min.streams()[0].size(), 3u);
    EXPECT_EQ(min.streams()[1].size(), 3u);
}

// ---------------------------------------------------------------------------
// Enumerator (verify/enumerate.hh)
// ---------------------------------------------------------------------------

TEST(Enumerate, OneLineExhaustiveAndCleanUnderEveryProtocol)
{
    for (const auto &proto : protocolNames()) {
        verify::EnumOptions opt;
        opt.cores = 2;
        opt.lines = 1;
        opt.protocol = proto;
        const verify::EnumResult res = verify::enumerate(opt);
        EXPECT_TRUE(res.exhaustive) << proto;
        EXPECT_TRUE(res.violations.empty())
            << proto << ": " << res.violations.front() << "\npath:\n"
            << res.counterexample;
        // The reachable space is non-trivial (hundreds of states even
        // with one line) and deterministic.
        EXPECT_GT(res.states, 100u) << proto;
    }
}

TEST(Enumerate, StateCapReportsNonExhaustive)
{
    verify::EnumOptions opt;
    opt.cores = 2;
    opt.lines = 1;
    opt.maxStates = 50;
    const verify::EnumResult res = verify::enumerate(opt);
    EXPECT_FALSE(res.exhaustive);
    EXPECT_TRUE(res.violations.empty());
    EXPECT_EQ(res.states, 50u);
}

} // namespace
} // namespace lacc
