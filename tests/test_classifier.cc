/**
 * @file
 * Unit tests for the locality classifiers: the private/remote state
 * machine of Fig 4, RAT-level dynamics (§3.3), the Limited_k
 * allocation/vote/replacement protocol (§3.4), the Timestamp check
 * (§3.2), and the one-way restriction (§3.7).
 */

#include <gtest/gtest.h>

#include "core/classifier.hh"
#include "core/complete_classifier.hh"
#include "core/limited_classifier.hh"
#include "core/timestamp_classifier.hh"

namespace lacc {
namespace {

SystemConfig
cfg4()
{
    SystemConfig c;
    c.numCores = 8;
    c.meshWidth = 4;
    c.clusterSize = 4;
    c.numMemControllers = 2;
    c.pct = 4;
    c.ratMax = 16;
    c.nRatLevels = 2;
    c.classifierK = 3;
    return c;
}

RemoteAccessContext
ctxWithInvalidWay(Cycle now = 100)
{
    return RemoteAccessContext{now, true, 0};
}

RemoteAccessContext
ctxFullSet(Cycle now = 100, Cycle min_last = 50)
{
    return RemoteAccessContext{now, false, min_last};
}

// ---------------------------------------------------------------------
// Complete classifier
// ---------------------------------------------------------------------

TEST(Complete, AllCoresStartPrivate)
{
    CompleteClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    for (CoreId c = 0; c < 8; ++c)
        EXPECT_EQ(cls.classify(*st, c), Mode::Private);
}

TEST(Complete, DemotionNeedsLowUtilization)
{
    CompleteClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    // privateUtil 4 >= PCT: stays private.
    EXPECT_EQ(cls.onPrivateRemoval(*st, 0, 4, RemovalKind::Eviction),
              Mode::Private);
    // privateUtil 3 < PCT: demoted.
    EXPECT_EQ(cls.onPrivateRemoval(*st, 0, 3, RemovalKind::Eviction),
              Mode::Remote);
    EXPECT_EQ(cls.classify(*st, 0), Mode::Remote);
}

TEST(Complete, RemoteUtilCountsTowardRemovalClassification)
{
    // §3.2: classification at removal uses private + remote util.
    CompleteClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    // Demote core 0 first.
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation);
    // Three remote accesses, then promotion on the 4th (PCT=4, invalid
    // way short-cut).
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(cls.onRemoteAccess(*st, 0, ctxWithInvalidWay()));
    EXPECT_TRUE(cls.onRemoteAccess(*st, 0, ctxWithInvalidWay()));
    cls.onPrivateGrant(*st, 0, 200);
    // Even with private util 1, remote(4) + private(1) >= PCT.
    EXPECT_EQ(cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation),
              Mode::Private);
}

TEST(Complete, EpochConsumedAfterRemoval)
{
    CompleteClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation); // demote
    for (int i = 0; i < 4; ++i)
        cls.onRemoteAccess(*st, 0, ctxWithInvalidWay());
    cls.onPrivateGrant(*st, 0, 200);
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation); // stays P
    // Epoch consumed: a following removal with low util demotes again.
    EXPECT_EQ(cls.onPrivateRemoval(*st, 0, 2, RemovalKind::Invalidation),
              Mode::Remote);
}

TEST(Complete, EvictionDemotionRaisesRat)
{
    auto cfg = cfg4(); // RAT levels: 4, 16
    CompleteClassifier cls(cfg, false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Eviction); // -> level 1
    const auto *rec = cls.peek(*st, 0);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->ratLevel, 1u);
    // Promotion now needs RATmax = 16 accesses (no invalid way).
    for (int i = 0; i < 15; ++i)
        EXPECT_FALSE(cls.onRemoteAccess(*st, 0, ctxFullSet()));
    EXPECT_TRUE(cls.onRemoteAccess(*st, 0, ctxFullSet()));
}

TEST(Complete, InvalidationDemotionKeepsRat)
{
    CompleteClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation);
    EXPECT_EQ(cls.peek(*st, 0)->ratLevel, 0u);
    // Promotion at PCT = 4.
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(cls.onRemoteAccess(*st, 0, ctxFullSet()));
    EXPECT_TRUE(cls.onRemoteAccess(*st, 0, ctxFullSet()));
}

TEST(Complete, ShortCutPromotesAtPctDespiteRat)
{
    CompleteClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Eviction); // RAT -> 16
    // With an invalid way in the requester's set, PCT applies (§3.3).
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(cls.onRemoteAccess(*st, 0, ctxWithInvalidWay()));
    EXPECT_TRUE(cls.onRemoteAccess(*st, 0, ctxWithInvalidWay()));
}

TEST(Complete, RatResetsWhenClassifiedPrivate)
{
    CompleteClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Eviction); // level 1
    EXPECT_EQ(cls.peek(*st, 0)->ratLevel, 1u);
    // Earn promotion, then classify private at the next removal.
    for (int i = 0; i < 4; ++i)
        cls.onRemoteAccess(*st, 0, ctxWithInvalidWay());
    cls.onPrivateGrant(*st, 0, 100);
    cls.onPrivateRemoval(*st, 0, 8, RemovalKind::Eviction);
    EXPECT_EQ(cls.peek(*st, 0)->ratLevel, 0u) << "RAT reset (§3.3)";
}

TEST(Complete, RatSaturatesAtMaxLevel)
{
    auto cfg = cfg4();
    cfg.nRatLevels = 4; // levels 4, 8, 12, 16
    CompleteClassifier cls(cfg, false);
    auto st = cls.makeState();
    for (int i = 0; i < 10; ++i)
        cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Eviction);
    EXPECT_EQ(cls.peek(*st, 0)->ratLevel, 3u);
}

TEST(Complete, WriteByOtherResetsRemoteUtil)
{
    CompleteClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation); // demote
    cls.onRemoteAccess(*st, 0, ctxWithInvalidWay());
    cls.onRemoteAccess(*st, 0, ctxWithInvalidWay());
    EXPECT_EQ(cls.peek(*st, 0)->remoteUtil, 2u);
    cls.onWriteByOther(*st, 5);
    EXPECT_EQ(cls.peek(*st, 0)->remoteUtil, 0u);
    EXPECT_FALSE(cls.peek(*st, 0)->active);
}

TEST(Complete, WriterKeepsOwnUtil)
{
    CompleteClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 3, 1, RemovalKind::Invalidation);
    cls.onRemoteAccess(*st, 3, ctxWithInvalidWay());
    cls.onWriteByOther(*st, 3); // 3 is the writer itself
    EXPECT_EQ(cls.peek(*st, 3)->remoteUtil, 1u);
}

TEST(Complete, OneWayNeverPromotes)
{
    CompleteClassifier cls(cfg4(), true);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(cls.onRemoteAccess(*st, 0, ctxWithInvalidWay()));
    EXPECT_EQ(cls.classify(*st, 0), Mode::Remote);
}

TEST(Complete, LearningShortcutSeedsFromMajority)
{
    auto cfg = cfg4();
    cfg.completeLearningShortcut = true;
    CompleteClassifier cls(cfg, false);
    auto st = cls.makeState();
    // Cores 0-2 touch the line and end up remote.
    for (CoreId c = 0; c < 3; ++c) {
        cls.classify(*st, c);
        cls.onPrivateGrant(*st, c, 10);
        cls.onPrivateRemoval(*st, c, 1, RemovalKind::Invalidation);
    }
    // A newcomer is seeded with the majority (Remote) mode instead of
    // starting private.
    EXPECT_EQ(cls.classify(*st, 6), Mode::Remote);
    // But only on its first touch: once seen, it keeps its own state.
    for (int i = 0; i < 4; ++i)
        cls.onRemoteAccess(*st, 6, ctxWithInvalidWay());
    EXPECT_EQ(cls.classify(*st, 6), Mode::Private);
}

TEST(Complete, ShortcutDisabledKeepsPaperBehavior)
{
    CompleteClassifier cls(cfg4(), false); // default: no short-cut
    auto st = cls.makeState();
    for (CoreId c = 0; c < 3; ++c) {
        cls.classify(*st, c);
        cls.onPrivateGrant(*st, c, 10);
        cls.onPrivateRemoval(*st, c, 1, RemovalKind::Invalidation);
    }
    EXPECT_EQ(cls.classify(*st, 6), Mode::Private)
        << "every core starts private in the paper's Complete scheme";
}

// ---------------------------------------------------------------------
// Limited_k classifier
// ---------------------------------------------------------------------

TEST(Limited, FreeEntriesAllocatePrivate)
{
    LimitedClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    EXPECT_EQ(cls.classify(*st, 0), Mode::Private);
    EXPECT_EQ(cls.classify(*st, 1), Mode::Private);
    EXPECT_EQ(cls.classify(*st, 2), Mode::Private);
    EXPECT_NE(cls.peek(*st, 0), nullptr);
    EXPECT_NE(cls.peek(*st, 2), nullptr);
}

TEST(Limited, UntrackedUsesMajorityVote)
{
    LimitedClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    // Track 0,1,2 as active private sharers.
    for (CoreId c = 0; c < 3; ++c) {
        cls.classify(*st, c);
        cls.onPrivateGrant(*st, c, 10);
    }
    // Core 7 untracked, no free/inactive entry: majority P -> Private.
    EXPECT_EQ(cls.classify(*st, 7), Mode::Private);
    EXPECT_EQ(cls.peek(*st, 7), nullptr) << "list unchanged (§3.4)";
}

TEST(Limited, MajorityRemoteSeedsRemote)
{
    LimitedClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    // Track 0,1,2; demote all three (invalidation, low util), which
    // also makes them inactive.
    for (CoreId c = 0; c < 3; ++c) {
        cls.classify(*st, c);
        cls.onPrivateGrant(*st, c, 10);
        cls.onPrivateRemoval(*st, c, 1, RemovalKind::Invalidation);
    }
    // Core 7 replaces an inactive entry and inherits the majority
    // (Remote) mode.
    EXPECT_EQ(cls.classify(*st, 7), Mode::Remote);
    ASSERT_NE(cls.peek(*st, 7), nullptr);
    EXPECT_EQ(cls.peek(*st, 7)->mode, Mode::Remote);
}

TEST(Limited, ActiveSharersNotReplaced)
{
    LimitedClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    for (CoreId c = 0; c < 3; ++c) {
        cls.classify(*st, c);
        cls.onPrivateGrant(*st, c, 10); // active private sharers
    }
    cls.classify(*st, 7);
    EXPECT_EQ(cls.peek(*st, 7), nullptr);
    // The original three are still tracked.
    for (CoreId c = 0; c < 3; ++c)
        EXPECT_NE(cls.peek(*st, c), nullptr);
}

TEST(Limited, InactivePrivateReplaced)
{
    LimitedClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    for (CoreId c = 0; c < 3; ++c) {
        cls.classify(*st, c);
        cls.onPrivateGrant(*st, c, 10);
    }
    // Core 1 evicted with good utilization: stays private but becomes
    // inactive -> replacement candidate.
    cls.onPrivateRemoval(*st, 1, 8, RemovalKind::Eviction);
    EXPECT_EQ(cls.classify(*st, 7), Mode::Private); // majority P
    EXPECT_NE(cls.peek(*st, 7), nullptr);
    EXPECT_EQ(cls.peek(*st, 1), nullptr) << "core 1 relinquished entry";
}

TEST(Limited, RemoteSharerInactiveAfterWriteByOther)
{
    LimitedClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    for (CoreId c = 0; c < 3; ++c) {
        cls.classify(*st, c);
        cls.onPrivateGrant(*st, c, 10);
    }
    // Demote 2 via invalidation, then make it active again through a
    // remote access; a write by another core makes it inactive.
    cls.onPrivateRemoval(*st, 2, 1, RemovalKind::Invalidation);
    cls.onRemoteAccess(*st, 2, ctxFullSet());
    cls.onWriteByOther(*st, 0);
    // Now core 7 can take core 2's entry.
    cls.classify(*st, 7);
    EXPECT_NE(cls.peek(*st, 7), nullptr);
    EXPECT_EQ(cls.peek(*st, 2), nullptr);
}

TEST(Limited, UntrackedRemovalFallsBackToVote)
{
    LimitedClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    for (CoreId c = 0; c < 3; ++c) {
        cls.classify(*st, c);
        cls.onPrivateGrant(*st, c, 10);
    }
    // Core 7 (untracked, majority private) held a line; on its
    // removal no record exists: result is the majority vote.
    EXPECT_EQ(cls.onPrivateRemoval(*st, 7, 1, RemovalKind::Eviction),
              Mode::Private);
}

TEST(Limited, MajorityVoteTieIsPrivate)
{
    auto cfg = cfg4();
    cfg.classifierK = 2;
    LimitedClassifier cls(cfg, false);
    auto st = cls.makeState();
    cls.classify(*st, 0);
    cls.onPrivateGrant(*st, 0, 5);
    cls.classify(*st, 1);
    cls.onPrivateGrant(*st, 1, 5);
    cls.onPrivateRemoval(*st, 1, 1, RemovalKind::Invalidation); // R
    // 1 P vs 1 R: tie -> Private.
    EXPECT_EQ(cls.classify(*st, 6), Mode::Private);
}

TEST(Limited, UntrackedRemoteCannotEarnPromotion)
{
    LimitedClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    // Fill all 3 entries with *active remote* sharers so there is no
    // replacement candidate but the majority is Remote.
    for (CoreId c = 0; c < 3; ++c) {
        cls.classify(*st, c);
        cls.onPrivateGrant(*st, c, 10);
        cls.onPrivateRemoval(*st, c, 1, RemovalKind::Invalidation);
        cls.onRemoteAccess(*st, c, ctxFullSet()); // active again
    }
    EXPECT_EQ(cls.classify(*st, 7), Mode::Remote);
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(cls.onRemoteAccess(*st, 7, ctxWithInvalidWay()));
}

TEST(Limited, PeekFindsOnlyTracked)
{
    LimitedClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.classify(*st, 4);
    EXPECT_NE(cls.peek(*st, 4), nullptr);
    EXPECT_EQ(cls.peek(*st, 5), nullptr);
}

// ---------------------------------------------------------------------
// Timestamp classifier
// ---------------------------------------------------------------------

TEST(Timestamp, PromotionAtPctWhenCheckPasses)
{
    TimestampClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation);
    // Invalid way: check passes trivially; promote on the 4th access.
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(cls.onRemoteAccess(*st, 0, ctxWithInvalidWay()));
    EXPECT_TRUE(cls.onRemoteAccess(*st, 0, ctxWithInvalidWay()));
}

TEST(Timestamp, FailedCheckResetsUtilToOne)
{
    TimestampClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation);

    // Accesses at times 10, 20, 30 but the L1 set is always hotter
    // (min last access beyond the line's last access): util resets to
    // 1 every time, so no promotion ever happens.
    for (int i = 1; i <= 20; ++i) {
        const Cycle now = 10 * i;
        RemoteAccessContext ctx{now, false, /*l1MinLastAccess=*/now - 1};
        EXPECT_FALSE(cls.onRemoteAccess(*st, 0, ctx));
        EXPECT_EQ(cls.peek(*st, 0)->remoteUtil, 1u);
    }
}

TEST(Timestamp, PassingCheckAccrues)
{
    TimestampClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation);
    // The line is re-accessed more recently than the L1 set's LRU
    // line: check passes (lastAccess > minLast).
    Cycle now = 100;
    for (int i = 0; i < 3; ++i) {
        RemoteAccessContext ctx{now, false, /*min=*/50};
        EXPECT_FALSE(cls.onRemoteAccess(*st, 0, ctx));
        now += 10;
    }
    RemoteAccessContext ctx{now, false, 50};
    EXPECT_TRUE(cls.onRemoteAccess(*st, 0, ctx));
}

TEST(Timestamp, FirstAccessWithColdLineFailsCheck)
{
    TimestampClassifier cls(cfg4(), false);
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation);
    // Never accessed before (lastAccess 0) and a fully valid hot set:
    // the check fails; util resets to 1 (not 0).
    RemoteAccessContext ctx{100, false, 50};
    EXPECT_FALSE(cls.onRemoteAccess(*st, 0, ctx));
    EXPECT_EQ(cls.peek(*st, 0)->remoteUtil, 1u);
}

// ---------------------------------------------------------------------
// Factory / baseline
// ---------------------------------------------------------------------

TEST(Factory, CreatesConfiguredKind)
{
    auto cfg = cfg4();
    cfg.classifierKind = ClassifierKind::Complete;
    EXPECT_NE(dynamic_cast<CompleteClassifier *>(
                  LocalityClassifier::create(cfg).get()),
              nullptr);
    cfg.classifierKind = ClassifierKind::Limited;
    EXPECT_NE(dynamic_cast<LimitedClassifier *>(
                  LocalityClassifier::create(cfg).get()),
              nullptr);
    cfg.classifierKind = ClassifierKind::Timestamp;
    EXPECT_NE(dynamic_cast<TimestampClassifier *>(
                  LocalityClassifier::create(cfg).get()),
              nullptr);
    cfg.classifierKind = ClassifierKind::AlwaysPrivate;
    EXPECT_NE(dynamic_cast<AlwaysPrivateClassifier *>(
                  LocalityClassifier::create(cfg).get()),
              nullptr);
}

TEST(Factory, OneWayFlagFollowsProtocolKind)
{
    auto cfg = cfg4();
    cfg.protocolKind = ProtocolKind::AdaptOneWay;
    EXPECT_TRUE(LocalityClassifier::create(cfg)->oneWay());
    cfg.protocolKind = ProtocolKind::Adaptive;
    EXPECT_FALSE(LocalityClassifier::create(cfg)->oneWay());
}

TEST(AlwaysPrivate, NeverDemotes)
{
    AlwaysPrivateClassifier cls(cfg4());
    auto st = cls.makeState();
    EXPECT_EQ(cls.classify(*st, 0), Mode::Private);
    EXPECT_EQ(cls.onPrivateRemoval(*st, 0, 0, RemovalKind::Eviction),
              Mode::Private);
    EXPECT_EQ(cls.classify(*st, 0), Mode::Private);
}

TEST(RemoteUtil, SaturatesAtRatMax)
{
    CompleteClassifier cls(cfg4(), true); // one-way: never promotes
    auto st = cls.makeState();
    cls.onPrivateRemoval(*st, 0, 1, RemovalKind::Invalidation);
    for (int i = 0; i < 100; ++i)
        cls.onRemoteAccess(*st, 0, ctxFullSet());
    EXPECT_EQ(cls.peek(*st, 0)->remoteUtil, 16u);
}

} // namespace
} // namespace lacc
