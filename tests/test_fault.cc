/**
 * @file
 * Fault-injection layer tests: the (72,64) SECDED code over every
 * single- and double-bit corruption pattern, the fault-plan registry,
 * the injector's pure-hash determinism, fault-schedule equality
 * across execution engines (the --sim-threads contract extended to
 * faults), the transport retransmit path, and the watchdog.
 */

#include <gtest/gtest.h>

#include "fault/injector.hh"
#include "fault/plan.hh"
#include "fault/secded.hh"
#include "sim/abort.hh"
#include "system/experiment.hh"
#include "system/multicore.hh"
#include "system/report.hh"
#include "workload/suite.hh"

namespace lacc {
namespace {

// ---------------------------------------------------------------------------
// SECDED code.
// ---------------------------------------------------------------------------

TEST(Secded, CleanRoundTrip)
{
    for (const std::uint64_t d :
         {std::uint64_t{0}, ~std::uint64_t{0}, std::uint64_t{1},
          std::uint64_t{0xDEADBEEFCAFEF00D}, std::uint64_t{0x5555555555555555}}) {
        const SecdedWord w = secdedEncode(d);
        const SecdedDecode r = secdedDecode(w);
        EXPECT_EQ(r.status, SecdedStatus::Clean);
        EXPECT_EQ(r.data, d);
    }
}

TEST(Secded, EverySingleBitCorrected)
{
    const std::uint64_t d = 0xA5C3F00D12345678;
    for (std::uint32_t bit = 0; bit < 72; ++bit) {
        SecdedWord w = secdedEncode(d);
        secdedFlip(w, bit);
        const SecdedDecode r = secdedDecode(w);
        EXPECT_EQ(r.status, bit < 64 ? SecdedStatus::CorrectedData
                                     : SecdedStatus::CorrectedCheck)
            << "bit " << bit;
        EXPECT_EQ(r.data, d) << "bit " << bit;
    }
}

TEST(Secded, EveryDoubleBitDetected)
{
    const std::uint64_t d = 0x0123456789ABCDEF;
    for (std::uint32_t a = 0; a < 72; ++a) {
        for (std::uint32_t b = a + 1; b < 72; ++b) {
            SecdedWord w = secdedEncode(d);
            secdedFlip(w, a);
            secdedFlip(w, b);
            EXPECT_EQ(secdedDecode(w).status,
                      SecdedStatus::DetectedDouble)
                << "bits " << a << "," << b;
        }
    }
}

// ---------------------------------------------------------------------------
// Plan registry.
// ---------------------------------------------------------------------------

TEST(FaultPlanRegistry, NamesRoundTrip)
{
    const auto &names = faultNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "none");
    for (const auto &name : names) {
        SystemConfig cfg;
        applyFaultName(cfg, name);
        EXPECT_STREQ(faultNameFor(cfg), name.c_str());
    }
}

TEST(FaultPlanRegistry, NonePlanIsInert)
{
    SystemConfig cfg;
    cfg.faultKind = FaultKind::None;
    const FaultPlan p = makeFaultPlan(cfg);
    EXPECT_FALSE(p.linksActive());
    EXPECT_FALSE(p.softActive());
}

TEST(FaultPlanRegistry, RatesScaleWithFaultRate)
{
    SystemConfig cfg;
    cfg.faultKind = FaultKind::Storm;
    cfg.faultRate = 1e-3;
    const FaultPlan p1 = makeFaultPlan(cfg);
    cfg.faultRate = 2e-3;
    const FaultPlan p2 = makeFaultPlan(cfg);
    EXPECT_DOUBLE_EQ(p2.linkDropRate, 2 * p1.linkDropRate);
    EXPECT_DOUBLE_EQ(p2.linkCorruptRate, 2 * p1.linkCorruptRate);
    EXPECT_DOUBLE_EQ(p2.softErrorRate, 2 * p1.softErrorRate);
    EXPECT_TRUE(p1.linksActive());
    EXPECT_TRUE(p1.softActive());
}

TEST(FaultPlanRegistry, ShippedPlansProtectEverything)
{
    // The zero-silent-corruption guarantee rests on full ECC coverage;
    // no shipped plan may quietly drop a structure from it.
    for (const auto &name : faultNames()) {
        SystemConfig cfg;
        applyFaultName(cfg, name);
        const FaultPlan p = makeFaultPlan(cfg);
        EXPECT_TRUE(p.protectL1) << name;
        EXPECT_TRUE(p.protectL2) << name;
        EXPECT_TRUE(p.protectDir) << name;
    }
}

// ---------------------------------------------------------------------------
// Injector: stateless pure-hash rolls.
// ---------------------------------------------------------------------------

SystemConfig
faultCfg(FaultKind kind, double rate, std::uint64_t seed = 0xFA17)
{
    SystemConfig cfg;
    cfg.numCores = 8;
    cfg.meshWidth = 4;
    cfg.clusterSize = 4;
    cfg.numMemControllers = 2;
    cfg.faultKind = kind;
    cfg.faultRate = rate;
    cfg.faultSeed = seed;
    return cfg;
}

TEST(FaultInjectorTest, RollsArePureFunctionsOfEventIdentity)
{
    const SystemConfig cfg = faultCfg(FaultKind::Storm, 0.1);
    FaultInjector a(cfg), b(cfg);
    // Interleave differently ordered queries: stateless hashing means
    // history cannot matter, only the event identity.
    for (std::uint32_t i = 0; i < 2000; ++i) {
        const std::uint32_t link = i % 32;
        const Cycle t = 17 * i;
        EXPECT_EQ(a.rollLink(link, t, 3), b.rollLink(link, t, 3));
    }
    for (std::uint32_t i = 0; i < 2000; ++i) {
        const LineAddr line = 0x1000 + 64 * (i % 64);
        EXPECT_EQ(a.rollSoft(FaultUnit::L2Data, line, i),
                  b.rollSoft(FaultUnit::L2Data, line, i));
    }
}

TEST(FaultInjectorTest, SeedChangesTheSchedule)
{
    FaultInjector a(faultCfg(FaultKind::Links, 0.05, 1));
    FaultInjector b(faultCfg(FaultKind::Links, 0.05, 2));
    std::uint32_t differs = 0;
    for (std::uint32_t i = 0; i < 4000; ++i)
        differs += a.rollLink(i % 16, i, 3) != b.rollLink(i % 16, i, 3);
    EXPECT_GT(differs, 0u);
}

TEST(FaultInjectorTest, RateZeroNeverFiresRateOneAlwaysFires)
{
    FaultInjector zero(faultCfg(FaultKind::Soft, 0.0));
    FaultInjector one(faultCfg(FaultKind::Soft, 1.0));
    for (std::uint32_t i = 0; i < 500; ++i) {
        EXPECT_EQ(zero.rollSoft(FaultUnit::L1Data, 64 * i, i),
                  SoftFault::None);
        EXPECT_NE(one.rollSoft(FaultUnit::L1Data, 64 * i, i),
                  SoftFault::None);
    }
}

TEST(FaultInjectorTest, StrikeBitStaysInRange)
{
    FaultInjector inj(faultCfg(FaultKind::Soft, 1.0));
    for (std::uint32_t i = 0; i < 500; ++i)
        EXPECT_LT(inj.strikeBit(64 * i, i, 512), 512u);
}

// ---------------------------------------------------------------------------
// System level: determinism, recovery accounting, watchdog.
// ---------------------------------------------------------------------------

TEST(FaultSystem, ScheduleIdenticalAcrossEngines)
{
    // The --sim-threads contract extended to fault injection: the
    // sharded engine replays the same event stream at the same
    // timestamps, so the fault schedule — and with it every counter —
    // must be bit-identical to the serial engine's.
    SystemConfig serial = faultCfg(FaultKind::Storm, 3e-6);
    SystemConfig sharded = serial;
    sharded.simThreads = 4;
    sharded.engineKind = EngineKind::Sharded;

    const RunResult rs = runBenchmark("radix", serial, 0.05);
    const RunResult rp = runBenchmark("radix", sharded, 0.05);
    EXPECT_EQ(statsSignature(rs.stats), statsSignature(rp.stats));
    EXPECT_GT(rs.stats.faults.softErrors +
                  rs.stats.faults.linkDrops +
                  rs.stats.faults.linkCorruptions,
              0u)
        << "fault schedule never fired; the equality above is vacuous";
    EXPECT_EQ(rs.stats.faults.retransmits, rp.stats.faults.retransmits);
    EXPECT_EQ(rs.stats.faults.eccCorrected, rp.stats.faults.eccCorrected);
    EXPECT_EQ(rs.stats.faults.silentCorruptions, 0u);
    EXPECT_EQ(rp.stats.faults.silentCorruptions, 0u);
}

TEST(FaultSystem, RetransmitPathRecoversAndCharges)
{
    // Lossy links at a rate low enough that the retry budget always
    // wins: the run completes, reads stay functionally clean, and the
    // recovery work shows up as latency (retransmitted flits traverse
    // the fabric again).
    const SystemConfig clean = faultCfg(FaultKind::None, 0.0);
    const SystemConfig lossy = faultCfg(FaultKind::Links, 2e-3);

    const RunResult rc = runBenchmark("radix", clean, 0.05);
    const RunResult rl = runBenchmark("radix", lossy, 0.05);

    EXPECT_GT(rl.stats.faults.retransmits, 0u);
    EXPECT_EQ(rl.stats.faults.silentCorruptions, 0u);
    EXPECT_EQ(rl.functionalErrors, 0u);
    // Every retransmit re-traverses the route: strictly more flit-hops
    // than the fault-free run, and no faster completion.
    EXPECT_GT(rl.stats.network.flitHops, rc.stats.network.flitHops);
    EXPECT_GE(rl.completionTime, rc.completionTime);
    // The fault-free run's counters stay all-zero (FaultPlan none
    // never constructs an injector).
    EXPECT_FALSE(rc.stats.faults.any());
}

TEST(FaultSystem, ScheduleDeterministicAcrossRepeats)
{
    const SystemConfig cfg = faultCfg(FaultKind::Storm, 3e-6);
    const RunResult a = runBenchmark("barnes", cfg, 0.05);
    const RunResult b = runBenchmark("barnes", cfg, 0.05);
    EXPECT_EQ(statsSignature(a.stats), statsSignature(b.stats));
    EXPECT_EQ(a.stats.faults.retransmits, b.stats.faults.retransmits);
    EXPECT_EQ(a.stats.faults.softErrors, b.stats.faults.softErrors);
}

TEST(FaultSystem, WatchdogAbortsLongRuns)
{
    SystemConfig cfg = faultCfg(FaultKind::None, 0.0);
    try {
        runBenchmark("radix", cfg, 1.0, /*timeout_ms=*/1e-4);
        FAIL() << "watchdog never fired";
    } catch (const RunAbort &a) {
        EXPECT_EQ(a.kind(), AbortKind::Timeout);
        EXPECT_STREQ(a.tag(), "timeout");
    }
}

} // namespace
} // namespace lacc
