/**
 * @file
 * Tests for the workload layer: address-space layout, the synthetic
 * generator's determinism and structural guarantees, the 21-benchmark
 * suite, trace round-trips, and synchronization primitives.
 */

#include <map>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "workload/archetypes.hh"
#include "workload/litmus.hh"
#include "workload/suite.hh"
#include "workload/sync.hh"
#include "workload/trace_file.hh"
#include "workload/workload.hh"

namespace lacc {
namespace {

SystemConfig
cfg8()
{
    SystemConfig c;
    c.numCores = 8;
    c.meshWidth = 4;
    c.clusterSize = 4;
    c.numMemControllers = 2;
    return c;
}

SyntheticSpec
tinySpec()
{
    SyntheticSpec s;
    s.name = "tiny";
    s.numCores = 8;
    s.mix.privateHot = 0.5;
    s.mix.privateStream = 0.3;
    s.mix.sharedRO = 0.2;
    s.opsPerPhase = 200;
    s.numPhases = 2;
    s.computePerMemop = 1;
    s.sharingDegree = 4;
    return s;
}

TEST(AddressSpace, PageAlignedDisjointRegions)
{
    AddressSpace as(4096);
    const Addr a = as.alloc(100);
    const Addr b = as.alloc(5000);
    const Addr c = as.alloc(1);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_EQ(c % 4096, 0u);
    EXPECT_GE(b, a + 4096);
    EXPECT_GE(c, b + 8192);
}

TEST(Synthetic, DeterministicStreams)
{
    auto cfg = cfg8();
    SyntheticWorkload w1(tinySpec(), cfg);
    SyntheticWorkload w2(tinySpec(), cfg);
    for (int i = 0; i < 2000; ++i) {
        const MemOp a = w1.next(3);
        const MemOp b = w2.next(3);
        ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.count, b.count);
    }
}

TEST(Synthetic, CoresDiffer)
{
    auto cfg = cfg8();
    SyntheticWorkload w(tinySpec(), cfg);
    int diff = 0;
    for (int i = 0; i < 200; ++i) {
        const MemOp a = w.next(0);
        const MemOp b = w.next(1);
        diff += !(a.kind == b.kind && a.addr == b.addr);
    }
    EXPECT_GT(diff, 50);
}

TEST(Synthetic, BarrierCountsMatchAcrossCores)
{
    auto cfg = cfg8();
    SyntheticWorkload w(tinySpec(), cfg);
    std::vector<int> barriers(8, 0);
    for (CoreId c = 0; c < 8; ++c) {
        for (;;) {
            const MemOp op = w.next(c);
            if (op.kind == MemOp::Kind::Done)
                break;
            if (op.kind == MemOp::Kind::Barrier)
                ++barriers[c];
        }
    }
    for (CoreId c = 1; c < 8; ++c)
        EXPECT_EQ(barriers[c], barriers[0]);
    EXPECT_EQ(barriers[0], 1); // numPhases - 1
}

TEST(Synthetic, DoneIsSticky)
{
    auto cfg = cfg8();
    auto spec = tinySpec();
    spec.opsPerPhase = 10;
    SyntheticWorkload w(spec, cfg);
    int guard = 0;
    while (w.next(0).kind != MemOp::Kind::Done && guard < 100000)
        ++guard;
    ASSERT_LT(guard, 100000);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(w.next(0).kind, MemOp::Kind::Done);
}

TEST(Synthetic, LockPairsBalanced)
{
    auto cfg = cfg8();
    auto spec = tinySpec();
    spec.mix.lockRMW = 0.3;
    spec.numLocks = 4;
    spec.csLines = 2;
    SyntheticWorkload w(spec, cfg);
    for (CoreId c = 0; c < 8; ++c) {
        int depth = 0;
        std::uint32_t held = 0;
        for (;;) {
            const MemOp op = w.next(c);
            if (op.kind == MemOp::Kind::Done)
                break;
            if (op.kind == MemOp::Kind::LockAcquire) {
                EXPECT_EQ(depth, 0);
                ++depth;
                held = op.lockId;
            } else if (op.kind == MemOp::Kind::LockRelease) {
                EXPECT_EQ(depth, 1);
                EXPECT_EQ(op.lockId, held);
                --depth;
            }
        }
        EXPECT_EQ(depth, 0);
    }
}

TEST(Synthetic, PrivateRegionsAreDisjointAcrossCores)
{
    auto cfg = cfg8();
    SyntheticWorkload w(tinySpec(), cfg);
    std::set<Addr> bases;
    for (CoreId c = 0; c < 8; ++c) {
        bases.insert(w.privateHotBase(c, 0));
        bases.insert(w.privateStreamBase(c, 0));
    }
    EXPECT_EQ(bases.size(), 16u);
}

TEST(Synthetic, PhaseShiftSwapsRegions)
{
    auto cfg = cfg8();
    auto spec = tinySpec();
    spec.phaseShift = true;
    SyntheticWorkload w(spec, cfg);
    EXPECT_EQ(w.privateHotBase(2, 0), w.privateStreamBase(2, 1));
    EXPECT_EQ(w.privateHotBase(2, 1), w.privateStreamBase(2, 0));
    EXPECT_EQ(w.privateHotBase(2, 0), w.privateHotBase(2, 2));
}

TEST(Synthetic, BurstUtilizationMatchesSpec)
{
    // With a pure privateHot mix and no jitter sources, each burst
    // should touch one line exactly privateHotUtil times.
    auto cfg = cfg8();
    SyntheticSpec spec;
    spec.name = "burst";
    spec.numCores = 8;
    spec.mix.privateHot = 1.0;
    spec.privateHotUtil = 6;
    spec.privateWriteFrac = 0.0;
    spec.computePerMemop = 0;
    spec.opsPerPhase = 600;
    spec.numPhases = 1;
    spec.sharingDegree = 4;
    SyntheticWorkload w(spec, cfg);

    std::map<LineAddr, int> touches;
    for (;;) {
        const MemOp op = w.next(0);
        if (op.kind == MemOp::Kind::Done)
            break;
        ASSERT_EQ(static_cast<int>(op.kind),
                  static_cast<int>(MemOp::Kind::Read));
        ++touches[op.addr >> 6];
    }
    for (const auto &[line, n] : touches)
        EXPECT_EQ(n % 6, 0) << "line touched in bursts of 6";
}

TEST(Suite, Has21Benchmarks)
{
    EXPECT_EQ(benchmarkNames().size(), 21u);
    for (const auto &n : benchmarkNames()) {
        EXPECT_TRUE(isBenchmark(n)) << n;
        EXPECT_STRNE(benchmarkProblemSize(n), "?") << n;
    }
    EXPECT_FALSE(isBenchmark("nosuchbench"));
}

TEST(Suite, SpecsConstructOnSmallSystems)
{
    auto cfg = cfg8();
    for (const auto &n : benchmarkNames()) {
        const auto spec = benchmarkSpec(n, cfg, 0.1);
        EXPECT_EQ(spec.numCores, 8u) << n;
        EXPECT_EQ(8u % spec.sharingDegree, 0u) << n;
        // Must construct without fatal().
        SyntheticWorkload w(spec, cfg);
        // And produce some ops.
        int mem = 0;
        for (int i = 0; i < 100; ++i) {
            const auto op = w.next(0);
            mem += op.kind == MemOp::Kind::Read ||
                   op.kind == MemOp::Kind::Write;
            if (op.kind == MemOp::Kind::Done)
                break;
        }
        EXPECT_GT(mem, 0) << n;
    }
}

TEST(Suite, SeedsDifferAcrossBenchmarks)
{
    auto cfg = cfg8();
    const auto a = benchmarkSpec("radix", cfg);
    const auto b = benchmarkSpec("barnes", cfg);
    EXPECT_NE(a.seed, b.seed);
}

TEST(Suite, OpScaleMultiplies)
{
    auto cfg = cfg8();
    const auto a = benchmarkSpec("radix", cfg, 1.0);
    const auto b = benchmarkSpec("radix", cfg, 2.0);
    EXPECT_EQ(b.opsPerPhase, 2 * a.opsPerPhase);
}

TEST(Trace, RoundTrip)
{
    std::vector<std::vector<MemOp>> streams(2);
    streams[0] = {MemOp::read(0x1000), MemOp::write(0x1008),
                  MemOp::compute(5), MemOp::barrier(),
                  MemOp::lockAcquire(1), MemOp::lockRelease(1)};
    streams[1] = {MemOp::ifetch(0x2000), MemOp::barrier()};
    TraceWorkload w("t", streams, 2);

    std::ostringstream os;
    w.save(os);
    std::istringstream is(os.str());
    TraceWorkload r = TraceWorkload::parse(is, "t2");

    ASSERT_EQ(r.numCores(), 2u);
    EXPECT_EQ(r.numLocks(), 2u);
    const MemOp op0 = r.next(0);
    EXPECT_EQ(static_cast<int>(op0.kind),
              static_cast<int>(MemOp::Kind::Read));
    EXPECT_EQ(op0.addr, 0x1000u);
    const MemOp op1 = r.next(0);
    EXPECT_EQ(static_cast<int>(op1.kind),
              static_cast<int>(MemOp::Kind::Write));
    r.next(0); // compute
    const MemOp op3 = r.next(0);
    EXPECT_EQ(static_cast<int>(op3.kind),
              static_cast<int>(MemOp::Kind::Barrier));
    const MemOp op4 = r.next(0);
    EXPECT_EQ(op4.lockId, 1u);
    r.next(0);
    EXPECT_EQ(static_cast<int>(r.next(0).kind),
              static_cast<int>(MemOp::Kind::Done));
    const MemOp f = r.next(1);
    EXPECT_EQ(static_cast<int>(f.kind),
              static_cast<int>(MemOp::Kind::IFetch));
    EXPECT_EQ(f.addr, 0x2000u);
}

TEST(Trace, ParserSkipsCommentsAndBlanks)
{
    std::istringstream is("# hello\n\ntrace 1 0\n0 r ff\n\n# bye\n");
    TraceWorkload w = TraceWorkload::parse(is, "x");
    EXPECT_EQ(w.numCores(), 1u);
    EXPECT_EQ(w.next(0).addr, 0xffu);
}

TEST(Barrier, ReleasesOnLastArrival)
{
    BarrierState b(3);
    EXPECT_FALSE(b.arrive(0, 100));
    EXPECT_FALSE(b.arrive(2, 50));
    EXPECT_TRUE(b.arrive(1, 80));
    EXPECT_EQ(b.releaseTime(), 100u);
    ASSERT_EQ(b.waiters().size(), 2u);
    EXPECT_EQ(b.arrivalOf(0), 100u);
    EXPECT_EQ(b.arrivalOf(2), 50u);
    b.resetGeneration();
    EXPECT_EQ(b.arrivedCount(), 0u);
    EXPECT_FALSE(b.arrive(1, 10));
}

TEST(Lock, FifoHandoff)
{
    LockState lk;
    EXPECT_TRUE(lk.tryAcquire(0));
    EXPECT_FALSE(lk.tryAcquire(1));
    lk.enqueue(1, 100);
    EXPECT_FALSE(lk.tryAcquire(2));
    lk.enqueue(2, 90);
    EXPECT_EQ(lk.queueLength(), 2u);

    LockState::Waiter w{};
    EXPECT_TRUE(lk.release(0, w));
    EXPECT_EQ(w.core, 1);
    EXPECT_EQ(w.readyAt, 100u);
    EXPECT_EQ(lk.holder(), 1);

    EXPECT_TRUE(lk.release(1, w));
    EXPECT_EQ(w.core, 2);
    EXPECT_TRUE(lk.release(2, w) == false);
    EXPECT_FALSE(lk.held());
}

TEST(Litmus, NamesAreRecognizedAndConstructible)
{
    const auto cfg = cfg8();
    EXPECT_GE(litmusNames().size(), 3u);
    for (const auto &name : litmusNames()) {
        EXPECT_TRUE(isLitmus(name));
        TraceWorkload w = makeLitmus(name, cfg);
        EXPECT_EQ(w.name(), name);
        EXPECT_EQ(w.numCores(), cfg.numCores);
    }
    EXPECT_FALSE(isLitmus("radix"));
    EXPECT_FALSE(isLitmus("litmus-"));
}

TEST(Litmus, UnknownNameIsFatal)
{
    EXPECT_EXIT(makeLitmus("litmus-bogus", cfg8()),
                testing::ExitedWithCode(1), "unknown litmus");
}

TEST(Litmus, ProdconsStructure)
{
    const auto cfg = cfg8();
    TraceWorkload w = makeLitmus("litmus-prodcons", cfg);
    const auto &streams = w.streams();
    // Every core has the same barrier count (rounds), producer writes,
    // consumers only read data.
    std::vector<std::size_t> barriers(cfg.numCores, 0);
    std::size_t writes0 = 0;
    for (std::uint32_t c = 0; c < cfg.numCores; ++c)
        for (const auto &op : streams[c]) {
            if (op.kind == MemOp::Kind::Barrier)
                ++barriers[c];
            else if (op.kind == MemOp::Kind::Write) {
                EXPECT_EQ(c, 0u) << "only core 0 writes";
                ++writes0;
            }
        }
    for (std::uint32_t c = 1; c < cfg.numCores; ++c)
        EXPECT_EQ(barriers[c], barriers[0]);
    EXPECT_EQ(writes0, barriers[0] * 5); // 4 payload words + flag
}

TEST(Litmus, FalseshareOneLinePerRoundPerCore)
{
    const auto cfg = cfg8();
    TraceWorkload w = makeLitmus("litmus-falseshare", cfg);
    // All accesses land on a single cache line; each core touches its
    // own word only.
    std::set<Addr> lines;
    std::map<std::uint32_t, std::set<Addr>> wordsByCore;
    const auto &streams = w.streams();
    for (std::uint32_t c = 0; c < cfg.numCores; ++c)
        for (const auto &op : streams[c]) {
            lines.insert(op.addr >> 6);
            wordsByCore[c].insert(op.addr);
        }
    EXPECT_EQ(lines.size(), 1u);
    for (const auto &[c, words] : wordsByCore)
        EXPECT_EQ(words.size(), 1u) << "core " << c;
}

TEST(Litmus, TaslockBalancedAndScaled)
{
    const auto cfg = cfg8();
    TraceWorkload w = makeLitmus("litmus-taslock", cfg);
    EXPECT_EQ(w.numLocks(), 1u);
    for (const auto &stream : w.streams()) {
        long depth = 0;
        for (const auto &op : stream) {
            if (op.kind == MemOp::Kind::LockAcquire)
                ++depth;
            else if (op.kind == MemOp::Kind::LockRelease) {
                --depth;
                EXPECT_GE(depth, 0);
            }
        }
        EXPECT_EQ(depth, 0);
    }
    // op_scale stretches the round count.
    TraceWorkload big = makeLitmus("litmus-taslock", cfg, 2.0);
    EXPECT_GT(big.streams()[0].size(), w.streams()[0].size());
}

TEST(Litmus, TracesRoundTripThroughSaveAndParse)
{
    const auto cfg = cfg8();
    for (const auto &name : litmusNames()) {
        TraceWorkload w = makeLitmus(name, cfg);
        std::ostringstream os;
        w.save(os);
        std::istringstream is(os.str());
        TraceWorkload back = TraceWorkload::parse(is, name);
        EXPECT_EQ(back.numCores(), w.numCores()) << name;
        EXPECT_EQ(back.numLocks(), w.numLocks()) << name;
        for (std::uint32_t c = 0; c < w.numCores(); ++c)
            EXPECT_EQ(back.streams()[c].size(), w.streams()[c].size())
                << name << " core " << c;
    }
}

TEST(Workload, LockLinesDisjoint)
{
    auto cfg = cfg8();
    SyntheticWorkload w(tinySpec(), cfg);
    // Each lock gets its own cache line.
    std::set<Addr> addrs;
    for (std::uint32_t i = 0; i < w.numLocks(); ++i)
        addrs.insert(w.lockAddr(i) >> 6);
    EXPECT_EQ(addrs.size(), w.numLocks());
}

} // namespace
} // namespace lacc
