/**
 * @file
 * Harness coverage: JSON value/writer/parser behavior, registry
 * lookup/filtering, RunResult JSON round-trips, the sink document
 * schema, LACC_SCALE validation, and the determinism guard (a 2-job
 * parallel sweep must be bit-identical to the serial run).
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/registry.hh"
#include "harness/runner.hh"
#include "harness/sink.hh"
#include "sim/json.hh"
#include "system/report.hh"

using namespace lacc;
using namespace lacc::harness;

namespace {

/** Small 16-core config so simulation-backed tests stay fast. */
SystemConfig
smallConfig()
{
    SystemConfig cfg = defaultConfig();
    cfg.numCores = 16;
    cfg.meshWidth = 4;
    return cfg;
}

constexpr double kTinyScale = 0.01;

} // namespace

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(Json, ScalarsAndTypes)
{
    EXPECT_TRUE(Json().isNull());
    EXPECT_TRUE(Json(true).isBool());
    EXPECT_TRUE(Json(42).isNumber());
    EXPECT_TRUE(Json(1.5).isNumber());
    EXPECT_TRUE(Json("hi").isString());
    EXPECT_TRUE(Json::array().isArray());
    EXPECT_TRUE(Json::object().isObject());

    EXPECT_EQ(Json(-7).asInt(), -7);
    EXPECT_EQ(Json(7u).asUint(), 7u);
    EXPECT_DOUBLE_EQ(Json(2.5).asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(Json(7).asDouble(), 7.0);
    EXPECT_EQ(Json("abc").asString(), "abc");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Json j = Json::object();
    j["zeta"] = 1;
    j["alpha"] = 2;
    j["mid"] = 3;
    const auto &items = j.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, "zeta");
    EXPECT_EQ(items[1].first, "alpha");
    EXPECT_EQ(items[2].first, "mid");
    EXPECT_EQ(j.dump(0), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, DumpParseRoundTrip)
{
    Json j = Json::object();
    j["u64"] = std::uint64_t{18446744073709551615ull};
    j["neg"] = -123456789;
    j["pi"] = 3.141592653589793;
    j["text"] = "line\nbreak \"quoted\" \\slash\t";
    j["flag"] = false;
    j["nothing"] = Json();
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    arr.push(Json::array());
    j["arr"] = std::move(arr);

    for (const int indent : {0, 2}) {
        std::string err;
        const Json back = Json::parse(j.dump(indent), &err);
        EXPECT_TRUE(err.empty()) << err;
        EXPECT_EQ(back, j);
        EXPECT_EQ(back.dump(2), j.dump(2));
    }
    EXPECT_EQ(j.at("u64").asUint(), 18446744073709551615ull);
    EXPECT_EQ(j.at("neg").asInt(), -123456789);
}

TEST(Json, ParseAcceptsStandardForms)
{
    std::string err;
    const Json j = Json::parse(
        " { \"a\" : [ 1 , -2.5e3 , true , null , \"\\u0041\\u00e9\" ] } ",
        &err);
    ASSERT_TRUE(err.empty()) << err;
    ASSERT_TRUE(j.isObject());
    const Json &a = j.at("a");
    ASSERT_EQ(a.size(), 5u);
    EXPECT_EQ(a.at(std::size_t{0}).asUint(), 1u);
    EXPECT_DOUBLE_EQ(a.at(1).asDouble(), -2500.0);
    EXPECT_TRUE(a.at(2).asBool());
    EXPECT_TRUE(a.at(3).isNull());
    EXPECT_EQ(a.at(4).asString(), "A\xc3\xa9");
}

TEST(Json, ParseRejectsMalformedInput)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
          "{\"a\":1} trailing", "[1 2]", "nan"}) {
        std::string err;
        const Json j = Json::parse(bad, &err);
        EXPECT_TRUE(j.isNull()) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

TEST(Json, FindAndMissingKeys)
{
    Json j = Json::object();
    j["present"] = 1;
    EXPECT_NE(j.find("present"), nullptr);
    EXPECT_EQ(j.find("absent"), nullptr);
    EXPECT_EQ(Json().find("anything"), nullptr);
}

// ---------------------------------------------------------------------------
// Table JSON
// ---------------------------------------------------------------------------

TEST(TableJson, HeadersAndRows)
{
    Table t({"a", "b"});
    t.addRow({"1", "x"});
    t.addRow({"2", "y"});
    const Json j = t.toJson();
    ASSERT_EQ(j.at("headers").size(), 2u);
    EXPECT_EQ(j.at("headers").at(std::size_t{0}).asString(), "a");
    ASSERT_EQ(j.at("rows").size(), 2u);
    EXPECT_EQ(j.at("rows").at(1).at(1).asString(), "y");
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, BuiltinsRegistered)
{
    const auto names = Registry::instance().names();
    const std::vector<std::string> expected = {
        "fig01", "fig02",  "fig08",  "fig09",    "fig10",
        "fig11", "fig12",  "fig13",  "fig14",    "table1",
        "table2", "ablation", "ackwise", "scaling", "network",
        "litmus", "faults"};
    EXPECT_EQ(names, expected);
}

TEST(Registry, FindAndFilter)
{
    const Registry &r = Registry::instance();
    ASSERT_NE(r.find("fig08"), nullptr);
    EXPECT_EQ(r.find("fig08")->name, "fig08");
    EXPECT_EQ(r.find("not-an-experiment"), nullptr);

    EXPECT_EQ(r.match("").size(), r.names().size());
    const auto tables = r.match("table");
    ASSERT_EQ(tables.size(), 2u);
    EXPECT_EQ(tables[0]->name, "table1");
    EXPECT_EQ(tables[1]->name, "table2");
    const auto fig1x = r.match("fig1");
    ASSERT_EQ(fig1x.size(), 5u); // fig10..fig14 (fig01 does not match)
    EXPECT_EQ(fig1x[0]->name, "fig10");
    EXPECT_TRUE(r.match("zzz").empty());
}

TEST(Registry, EveryExperimentDescribesItsSweep)
{
    for (const auto *exp : Registry::instance().match("")) {
        EXPECT_FALSE(exp->title.empty()) << exp->name;
        EXPECT_FALSE(exp->description.empty()) << exp->name;
        // Job grids are stable: two generations agree in size/labels.
        const auto a = exp->makeJobs();
        const auto b = exp->makeJobs();
        ASSERT_EQ(a.size(), b.size()) << exp->name;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].label, b[i].label);
            EXPECT_EQ(a[i].bench, b[i].bench);
        }
    }
}

// ---------------------------------------------------------------------------
// LACC_SCALE validation (opScaleFromEnv)
// ---------------------------------------------------------------------------

TEST(OpScale, ValidatesEnvironment)
{
    const auto with = [](const char *value) {
        if (value == nullptr)
            unsetenv("LACC_SCALE");
        else
            setenv("LACC_SCALE", value, 1);
        const double v = opScaleFromEnv();
        unsetenv("LACC_SCALE");
        return v;
    };
    EXPECT_DOUBLE_EQ(with(nullptr), 1.0);
    EXPECT_DOUBLE_EQ(with("2.5"), 2.5);
    EXPECT_DOUBLE_EQ(with("  0.125  "), 0.125);
    EXPECT_DOUBLE_EQ(with("1e-2"), 0.01);
    // Garbage, partial parses, and non-positive values fall back to 1.
    EXPECT_DOUBLE_EQ(with("banana"), 1.0);
    EXPECT_DOUBLE_EQ(with("2x"), 1.0);
    EXPECT_DOUBLE_EQ(with("1.5.2"), 1.0);
    EXPECT_DOUBLE_EQ(with(""), 1.0);
    EXPECT_DOUBLE_EQ(with("0"), 1.0);
    EXPECT_DOUBLE_EQ(with("-3"), 1.0);
    EXPECT_DOUBLE_EQ(with("inf"), 1.0);
    EXPECT_DOUBLE_EQ(with("nan"), 1.0);
}

// ---------------------------------------------------------------------------
// RunResult JSON round-trip
// ---------------------------------------------------------------------------

TEST(RunResultJson, RoundTripsThroughTextAndBack)
{
    const RunResult r =
        runBenchmark("matmul", smallConfig(), kTinyScale);
    ASSERT_GT(r.completionTime, 0u);

    const Json j = toJson(r);
    std::string err;
    const Json parsed = Json::parse(j.dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    const RunResult back = runResultFromJson(parsed);

    // Headline scalars and derived aggregates survive.
    EXPECT_EQ(back.completionTime, r.completionTime);
    EXPECT_DOUBLE_EQ(back.energyTotal, r.energyTotal);
    EXPECT_EQ(back.functionalErrors, r.functionalErrors);
    EXPECT_EQ(back.stats.completionTime(), r.stats.completionTime());
    EXPECT_EQ(back.stats.totalL1dAccesses(),
              r.stats.totalL1dAccesses());
    EXPECT_EQ(back.stats.totalMisses().total(),
              r.stats.totalMisses().total());
    EXPECT_EQ(back.stats.totalLatency().total(),
              r.stats.totalLatency().total());
    EXPECT_DOUBLE_EQ(back.stats.energy.total(), r.stats.energy.total());
    EXPECT_EQ(back.stats.protocol.remoteReads,
              r.stats.protocol.remoteReads);
    EXPECT_EQ(back.stats.evictionUtil.total(),
              r.stats.evictionUtil.total());

    // Re-serializing the reconstruction is byte-identical.
    EXPECT_EQ(toJson(back).dump(2), j.dump(2));
}

// ---------------------------------------------------------------------------
// Sweep runner: parallel == serial (determinism guard)
// ---------------------------------------------------------------------------

TEST(Runner, ParallelSweepBitIdenticalToSerial)
{
    std::vector<Job> jobs;
    for (const char *bench : {"matmul", "streamcluster"}) {
        SystemConfig adaptive = smallConfig();
        SystemConfig baseline = smallConfig();
        baseline.classifierKind = ClassifierKind::AlwaysPrivate;
        baseline.pct = 1;
        jobs.push_back({bench, adaptive, std::string(bench) + " a"});
        jobs.push_back({bench, baseline, std::string(bench) + " b"});
    }

    SweepOptions serial;
    serial.jobs = 1;
    serial.opScale = kTinyScale;
    serial.progress = false;
    SweepOptions parallel = serial;
    parallel.jobs = 2;

    const auto rs = runSweep(jobs, serial);
    const auto rp = runSweep(jobs, parallel);
    ASSERT_EQ(rs.size(), jobs.size());
    ASSERT_EQ(rp.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(rs[i].job.label, jobs[i].label);
        EXPECT_EQ(rp[i].job.label, jobs[i].label);
        EXPECT_GT(rs[i].result.completionTime, 0u);
        // Full-stats comparison via the canonical serialization:
        // doubles print shortest-round-trip, so equal text means
        // bit-identical values.
        EXPECT_EQ(toJson(rp[i].result).dump(0),
                  toJson(rs[i].result).dump(0))
            << jobs[i].label;
    }
}

// ---------------------------------------------------------------------------
// Throughput mode: --repeat determinism
// ---------------------------------------------------------------------------

TEST(Runner, RepeatedJobsProduceIdenticalStats)
{
    std::vector<Job> jobs;
    jobs.push_back({"matmul", smallConfig(), "repeat probe"});

    SweepOptions once;
    once.jobs = 1;
    once.opScale = kTinyScale;
    once.progress = false;
    SweepOptions thrice = once;
    thrice.repeat = 3;

    const auto r1 = runSweep(jobs, once);
    const auto r3 = runSweep(jobs, thrice);
    ASSERT_EQ(r1.size(), 1u);
    ASSERT_EQ(r3.size(), 1u);

    // Simulated results are bit-identical across repeats; only the
    // wall-clock bookkeeping differs.
    EXPECT_EQ(toJson(r3[0].result).dump(0), toJson(r1[0].result).dump(0));
    EXPECT_EQ(r1[0].repeats, 1u);
    EXPECT_EQ(r3[0].repeats, 3u);
    EXPECT_GT(r3[0].result.simOps, 0u);
    EXPECT_GE(r3[0].wallSeconds, 0.0);
}

// ---------------------------------------------------------------------------
// Sink: document schema + file emission
// ---------------------------------------------------------------------------

TEST(Sink, DocumentSchemaAndFileEmission)
{
    const Experiment *exp = Registry::instance().find("table1");
    ASSERT_NE(exp, nullptr);
    SweepOptions opts;
    opts.jobs = 1;
    opts.opScale = kTinyScale;
    opts.progress = false;

    std::ostringstream text;
    const ExperimentOutcome outcome = runExperiment(*exp, opts, text);
    EXPECT_NE(text.str().find("Table 1: Architectural parameters"),
              std::string::npos);

    const Json doc = documentFor(outcome);
    EXPECT_EQ(doc.at("schema_version").asInt(),
              kBenchJsonSchemaVersion);
    EXPECT_EQ(doc.at("experiment").asString(), "table1");
    EXPECT_DOUBLE_EQ(doc.at("op_scale").asDouble(), kTinyScale);
    EXPECT_EQ(doc.at("jobs").asUint(), doc.at("runs").size());
    EXPECT_TRUE(doc.at("figure").isObject());
    EXPECT_GE(doc.at("wall_seconds").asDouble(), 0.0);

    namespace fs = std::filesystem;
    const std::string dir = "test_harness_json_out";
    writeJsonFile(dir, exp->name, doc);
    const fs::path path = fs::path(dir) / "BENCH_table1.json";
    ASSERT_TRUE(fs::exists(path));
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string err;
    const Json back = Json::parse(buf.str(), &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(back, doc);
    fs::remove_all(dir);
}

TEST(Sink, SweepDocumentRecordsRuns)
{
    const Experiment *exp = Registry::instance().find("fig14");
    ASSERT_NE(exp, nullptr);

    // Trim to a 2-run slice of the real grid so the test stays fast:
    // run the first benchmark pair through the real report path is
    // unnecessary here; we only validate run-record assembly.
    ExperimentOutcome outcome;
    outcome.exp = exp;
    outcome.opScale = kTinyScale;
    const auto jobs = exp->makeJobs();
    ASSERT_GE(jobs.size(), 2u);
    SweepOptions opts;
    opts.jobs = 2;
    opts.opScale = kTinyScale;
    opts.progress = false;
    outcome.results =
        runSweep({jobs[0], jobs[1]}, opts);
    outcome.figure = Json::object();

    const Json doc = documentFor(outcome);
    ASSERT_EQ(doc.at("runs").size(), 2u);
    const Json &run = doc.at("runs").at(std::size_t{0});
    EXPECT_EQ(run.at("bench").asString(), jobs[0].bench);
    EXPECT_EQ(run.at("label").asString(), jobs[0].label);
    EXPECT_EQ(run.at("config").at("num_cores").asUint(), 64u);
    EXPECT_GT(run.at("result").at("completion_time").asUint(), 0u);
    EXPECT_GE(run.at("wall_seconds").asDouble(), 0.0);

    // Schema-v2 throughput fields: per-run trio consistent with the
    // run's result payload, top level aggregates over runs.
    EXPECT_EQ(doc.at("schema_version").asInt(), 3);
    EXPECT_EQ(doc.at("repeat").asUint(), 1u);
    EXPECT_EQ(run.at("sim_ops").asUint(),
              run.at("result").at("sim_ops").asUint());
    EXPECT_GT(run.at("sim_ops").asUint(), 0u);
    EXPECT_DOUBLE_EQ(run.at("wall_ms").asDouble(),
                     run.at("wall_seconds").asDouble() * 1e3);
    EXPECT_GE(run.at("ops_per_sec").asDouble(), 0.0);
    std::uint64_t total_ops = 0;
    for (const auto &rr : doc.at("runs").elements())
        total_ops += rr.at("sim_ops").asUint();
    EXPECT_EQ(doc.at("sim_ops").asUint(), total_ops);
    EXPECT_GE(doc.at("ops_per_sec").asDouble(), 0.0);
}
